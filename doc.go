// Package unixhash is a Go reproduction of "A New Hashing Package for
// UNIX" (Seltzer & Yigit, USENIX Winter 1991): a linear-hashing key/data
// store unifying disk-resident (dbm/ndbm) and memory-resident (hsearch)
// UNIX hashing, together with the btree and recno access methods of the
// paper's generic database interface, clean-room ports of every baseline
// the paper compares against, and a benchmark harness regenerating every
// figure in its evaluation.
//
// The root package holds the per-figure benchmarks and end-to-end tests;
// the implementation lives under internal/ (see README.md for the map)
// and the tools under cmd/.
package unixhash

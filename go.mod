module unixhash

go 1.22

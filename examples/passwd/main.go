// The paper's motivating workload: keyed access to a password file.
//
//	go run ./examples/passwd /tmp/passwd.db [login-or-uid ...]
//
// The paper observes that for small databases like the password file,
// dbm's one-syscall-per-access design wastes the easy win of caching
// pages in memory. This example builds the password database exactly as
// the paper's evaluation does — two records per account, one keyed by
// login name with the remainder of the entry as data, one keyed by uid
// with the entire entry — then looks accounts up by either key, printing
// the buffer-pool hit statistics that make the paper's point.
package main

import (
	"errors"
	"fmt"
	"log"
	"os"

	"unixhash/internal/core"
	"unixhash/internal/dataset"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: passwd file.db [login-or-uid ...]")
		os.Exit(2)
	}
	path := os.Args[1]
	queries := os.Args[2:]

	accounts := dataset.Passwd(0) // the paper's ~300 synthetic accounts
	pairs := dataset.PasswdPairs(accounts)

	// A quarter-megabyte pool comfortably holds the whole ~260-page
	// database; the default 64 KB sits exactly at its size, where any
	// eviction-order difference costs a read.
	t, err := core.Open(path, &core.Options{Nelem: len(pairs), CacheSize: 256 << 10})
	if err != nil {
		log.Fatal(err)
	}
	defer t.Close()

	if t.Len() == 0 {
		for _, p := range pairs {
			if err := t.Put(p.Key, p.Data); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("built %s: %d records for %d accounts\n", path, t.Len(), len(accounts))
	} else {
		fmt.Printf("opened %s: %d records\n", path, t.Len())
	}

	if len(queries) == 0 {
		// Default demo: look up a few accounts by login and by uid.
		queries = []string{
			accounts[0].Login,
			fmt.Sprintf("%d", accounts[1].UID),
			accounts[2].Login,
			"nosuchuser",
		}
	}
	for _, q := range queries {
		v, err := t.Get([]byte(q))
		switch {
		case errors.Is(err, core.ErrNotFound):
			fmt.Printf("%-12s -> (no such login or uid)\n", q)
		case err != nil:
			log.Fatal(err)
		default:
			fmt.Printf("%-12s -> %s\n", q, v)
		}
	}

	// The paper's point: with the table cached, repeated lookups do no
	// I/O at all. Run every login through the table and report.
	t.Store().Stats().Reset()
	pool := t.Pool()
	c0 := pool.Counters()
	for _, a := range accounts {
		if _, err := t.Get([]byte(a.Login)); err != nil {
			log.Fatal(err)
		}
	}
	snap := t.Store().Stats().Snapshot()
	c := pool.Counters().Sub(c0)
	fmt.Printf("\n%d cached lookups: %d page reads from disk, buffer pool %d hits / %d misses\n",
		len(accounts), snap.Reads, c.Hits, c.Misses)
	fmt.Println("(dbm would have paid a system call and a probable disk access per lookup)")
}

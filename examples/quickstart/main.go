// Quickstart: open a table, store, retrieve, iterate, reopen.
//
//	go run ./examples/quickstart [file.db]
//
// With no argument the table lives purely in memory; with a path it is
// disk-resident and the program shows that contents survive a close and
// reopen — the dbm/hsearch unification the paper is about.
package main

import (
	"fmt"
	"log"
	"os"

	"unixhash/internal/core"
)

func main() {
	path := ""
	if len(os.Args) > 1 {
		path = os.Args[1]
	}

	// Create (or open) a table. All parameters are optional; the paper's
	// defaults are bsize 256, ffactor 8, a 64 KB buffer pool.
	t, err := core.Open(path, &core.Options{
		Nelem: 100, // an estimate of the final size, if known
	})
	if err != nil {
		log.Fatal(err)
	}

	// Store some pairs. Put replaces; PutNew fails on duplicates.
	fruit := map[string]string{
		"apple": "malus domestica", "banana": "musa acuminata",
		"cherry": "prunus avium", "durian": "durio zibethinus",
	}
	for k, v := range fruit {
		if err := t.Put([]byte(k), []byte(v)); err != nil {
			log.Fatal(err)
		}
	}

	// Retrieve.
	v, err := t.Get([]byte("cherry"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cherry  -> %s\n", v)

	// Iterate every pair (sequential retrieval returns key AND data in
	// one call, unlike ndbm).
	it := t.Iter()
	for it.Next() {
		fmt.Printf("scan: %-8s -> %s\n", it.Key(), it.Value())
	}
	if err := it.Err(); err != nil {
		log.Fatal(err)
	}

	// Delete and verify.
	if err := t.Delete([]byte("durian")); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after delete: %d pairs\n", t.Len())

	if err := t.Close(); err != nil {
		log.Fatal(err)
	}

	if path == "" {
		fmt.Println("(memory-resident table discarded on close; pass a path to persist)")
		return
	}

	// Reopen from disk: everything is still there.
	t2, err := core.Open(path, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer t2.Close()
	fmt.Printf("reopened %s: %d pairs\n", path, t2.Len())
	v, err = t2.Get([]byte("apple"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("apple   -> %s\n", v)
}

// One application, every access method. The paper's conclusion: "All of
// the access methods are based on a key/data pair interface and appear
// identical to the application layer, allowing application
// implementations to be largely independent of the database type."
//
//	go run ./examples/dbaccess [dir]
//
// The program defines a tiny address book and runs it unchanged over the
// hash and btree access methods; then it shows the two things only a
// specific method gives you — the btree's ordered range scan, and the
// recno method's view of a plain text file as a database of lines.
package main

import (
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"unixhash/internal/btree"
	"unixhash/internal/db"
	"unixhash/internal/recno"
)

// addressBook is the method-independent application: it only knows the
// db.DB interface.
type addressBook struct {
	d db.DB
}

func (b addressBook) add(name, email string) error {
	return b.d.Put([]byte(name), []byte(email))
}

func (b addressBook) lookup(name string) (string, bool) {
	v, err := b.d.Get([]byte(name))
	if errors.Is(err, db.ErrNotFound) {
		return "", false
	}
	if err != nil {
		log.Fatal(err)
	}
	return string(v), true
}

func (b addressBook) everyone() []string {
	var out []string
	c := b.d.Seq()
	for c.Next() {
		out = append(out, fmt.Sprintf("%s <%s>", c.Key(), c.Value()))
	}
	if c.Err() != nil {
		log.Fatal(c.Err())
	}
	return out
}

var people = map[string]string{
	"margo": "margo@cs.berkeley.edu",
	"oz":    "oz@nexus.yorku.ca",
	"ken":   "ken@research.att.com",
	"kirk":  "mckusick@cs.berkeley.edu",
}

func main() {
	dir := "/tmp/dbaccess-example"
	if len(os.Args) > 1 {
		dir = os.Args[1]
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}

	// The same application code, two storage engines.
	for _, m := range []db.Method{db.Hash, db.Btree} {
		path := filepath.Join(dir, "book-"+m.String()+".db")
		os.Remove(path)
		d, err := db.Open(path, m, nil)
		if err != nil {
			log.Fatal(err)
		}
		book := addressBook{d}
		for name, email := range people {
			if err := book.add(name, email); err != nil {
				log.Fatal(err)
			}
		}
		email, ok := book.lookup("margo")
		fmt.Printf("[%s] lookup margo -> %s (found=%v)\n", m, email, ok)
		fmt.Printf("[%s] %d entries: %v\n", m, d.Len(), book.everyone())
		if err := d.Close(); err != nil {
			log.Fatal(err)
		}
	}

	// What only the btree gives you: an ordered range scan.
	bt, err := btree.Open(filepath.Join(dir, "book-btree.db"), nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("\nbtree-only: names from 'k' onward, in order:")
	c := bt.Seek([]byte("k"))
	for c.Next() {
		fmt.Printf(" %s", c.Key())
	}
	fmt.Println()
	if err := bt.Close(); err != nil {
		log.Fatal(err)
	}

	// What only recno gives you: any text file is a database of lines.
	notes := filepath.Join(dir, "notes.txt")
	if err := os.WriteFile(notes, []byte("groceries\ncall oz about sdbm\nfix the loader\n"), 0o644); err != nil {
		log.Fatal(err)
	}
	rn, err := recno.Open(notes, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrecno-only: %s has %d lines; line 1 is %q\n", notes, rn.Len(), mustGet(rn, 1))
	if err := rn.Put(1, []byte("call oz about the NEW hash package")); err != nil {
		log.Fatal(err)
	}
	if err := rn.Close(); err != nil {
		log.Fatal(err)
	}
	raw, _ := os.ReadFile(notes)
	fmt.Printf("after editing record 1, the text file reads:\n%s", raw)
}

func mustGet(f *recno.File, i int) string {
	rec, err := f.Get(i)
	if err != nil {
		log.Fatal(err)
	}
	return string(rec)
}

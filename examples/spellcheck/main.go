// A spell checker over a memory-resident hash table — the hsearch
// replacement scenario. The paper closes by suggesting that applications
// like the loader, compiler and mail, which implement their own hashing,
// should use the generic routines instead; a spell checker is the
// classic dictionary-shaped consumer.
//
//	go run ./examples/spellcheck [words-to-check ...]
//	echo "som text to chekc" | go run ./examples/spellcheck
//
// The dictionary is the synthetic 24,474-word data set used by the
// benchmarks; real words land in it only by coincidence, so by default
// the program checks a sample drawn from the dictionary itself plus a
// few misspellings of those samples.
package main

import (
	"bufio"
	"fmt"
	"log"
	"os"
	"strings"

	"unixhash/internal/core"
	"unixhash/internal/dataset"
)

func main() {
	words := dataset.Dictionary(0)

	// A purely memory-resident table (empty path), pre-sized: exactly
	// what hsearch offered, without its fixed capacity or its
	// one-global-table interface.
	t, err := core.Open("", &core.Options{
		Nelem:     len(words),
		CacheSize: 4 << 20, // keep the whole dictionary in the pool
	})
	if err != nil {
		log.Fatal(err)
	}
	defer t.Close()

	for _, w := range words {
		if err := t.Put(w.Key, nil); err != nil { // a set: no data needed
			log.Fatal(err)
		}
	}
	fmt.Printf("dictionary loaded: %d words\n\n", t.Len())

	var toCheck []string
	switch {
	case len(os.Args) > 1:
		toCheck = os.Args[1:]
	case stdinIsPipe():
		sc := bufio.NewScanner(os.Stdin)
		sc.Split(bufio.ScanWords)
		for sc.Scan() {
			toCheck = append(toCheck, sc.Text())
		}
	default:
		// Demo mode: five real dictionary words and mangled versions.
		for i := 0; i < 5; i++ {
			w := string(words[i*1000].Key)
			toCheck = append(toCheck, w, mangle(w))
		}
	}

	bad := 0
	for _, w := range toCheck {
		key := strings.ToLower(strings.TrimFunc(w, func(r rune) bool {
			return r < 'a' || r > 'z'
		}))
		if key == "" {
			continue
		}
		ok, err := t.Has([]byte(key))
		if err != nil {
			log.Fatal(err)
		}
		if ok {
			fmt.Printf("  ok        %s\n", w)
		} else {
			fmt.Printf("  MISSPELT  %s\n", w)
			bad++
		}
	}
	fmt.Printf("\n%d of %d words not in the dictionary\n", bad, len(toCheck))
}

// mangle swaps the first two letters, the classic typo.
func mangle(w string) string {
	if len(w) < 2 {
		return w + "x"
	}
	return string(w[1]) + string(w[0]) + w[2:]
}

func stdinIsPipe() bool {
	fi, err := os.Stdin.Stat()
	return err == nil && fi.Mode()&os.ModeCharDevice == 0
}

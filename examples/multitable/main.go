// Everything hsearch could not do, in one program: multiple hash tables
// accessed concurrently, a user-specified hash function, key/data pairs
// far larger than a page, and tables that move between memory and disk —
// the "Enhanced Functionality" list from the paper.
//
//	go run ./examples/multitable /tmp/multitable-dir
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"

	"unixhash/internal/core"
	"unixhash/internal/hashfunc"
)

func main() {
	dir := "/tmp/multitable-example"
	if len(os.Args) > 1 {
		dir = os.Args[1]
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}

	// 1. Multiple tables open concurrently — hsearch's interface
	// embedded the notion of a single table; here four goroutines each
	// own one table, plus they all share a fifth.
	shared, err := core.Open(filepath.Join(dir, "shared.db"), nil)
	if err != nil {
		log.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			own, err := core.Open("", nil) // private, memory-resident
			if err != nil {
				log.Fatal(err)
			}
			defer own.Close()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("worker%d-key%d", w, i)
				if err := own.Put([]byte(k), []byte("private")); err != nil {
					log.Fatal(err)
				}
				// The shared table is safe for concurrent use.
				if err := shared.Put([]byte(k), []byte(fmt.Sprintf("from-%d", w))); err != nil {
					log.Fatal(err)
				}
			}
			fmt.Printf("worker %d: private table holds %d pairs\n", w, own.Len())
		}(w)
	}
	wg.Wait()
	fmt.Printf("shared table holds %d pairs\n\n", shared.Len())
	if err := shared.Close(); err != nil {
		log.Fatal(err)
	}

	// 2. A user-specified hash function, fixed at creation time. The
	// package stores a check value so reopening with the wrong function
	// is detected rather than silently corrupting lookups.
	custom := filepath.Join(dir, "custom-hash.db")
	os.Remove(custom)
	t, err := core.Open(custom, &core.Options{Hash: hashfunc.FNV1a})
	if err != nil {
		log.Fatal(err)
	}
	if err := t.Put([]byte("k"), []byte("v")); err != nil {
		log.Fatal(err)
	}
	if err := t.Close(); err != nil {
		log.Fatal(err)
	}
	if _, err := core.Open(custom, nil); err != nil {
		fmt.Printf("reopening with the default hash correctly fails: %v\n", err)
	}
	t, err = core.Open(custom, &core.Options{Hash: hashfunc.FNV1a})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("reopening with the matching hash function succeeds")
	t.Close()

	// 3. Large key/data pairs: "inserts never fail because key and/or
	// associated data is too large". A 1 MB value on 256-byte pages goes
	// onto a buddy-in-waiting overflow chain transparently.
	big, err := core.Open(filepath.Join(dir, "big.db"), &core.Options{Bsize: 256})
	if err != nil {
		log.Fatal(err)
	}
	defer big.Close()
	blob := bytes.Repeat([]byte("megabyte "), 1<<20/9+1)[:1<<20]
	if err := big.Put([]byte("blob"), blob); err != nil {
		log.Fatal(err)
	}
	back, err := big.Get([]byte("blob"))
	if err != nil {
		log.Fatal(err)
	}
	ovfl, err := big.OverflowPages()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstored and retrieved a %d-byte value on %d-byte pages (%d overflow pages)\n",
		len(back), 256, ovfl)
}

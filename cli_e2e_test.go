package unixhash

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestCLIEndToEnd builds the command-line tools and exercises each one
// against real files — the integration layer the unit tests cannot see.
func TestCLIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short mode")
	}
	bin := t.TempDir()
	for _, tool := range []string{"hashcli", "hashdump", "dbcli", "hashbench"} {
		cmd := exec.Command("go", "build", "-o", filepath.Join(bin, tool), "./cmd/"+tool)
		cmd.Env = os.Environ()
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", tool, err, out)
		}
	}
	run := func(tool string, want int, args ...string) string {
		t.Helper()
		cmd := exec.Command(filepath.Join(bin, tool), args...)
		out, err := cmd.CombinedOutput()
		code := 0
		if ee, ok := err.(*exec.ExitError); ok {
			code = ee.ExitCode()
		} else if err != nil {
			t.Fatalf("%s %v: %v", tool, args, err)
		}
		if code != want {
			t.Fatalf("%s %v: exit %d (want %d)\n%s", tool, args, code, want, out)
		}
		return string(out)
	}

	dir := t.TempDir()
	db := filepath.Join(dir, "cli.db")

	// hashcli: the full verb set.
	run("hashcli", 0, db, "put", "alpha", "1")
	run("hashcli", 0, db, "put", "beta", "2")
	run("hashcli", 0, db, "putnew", "gamma", "3")
	if out := run("hashcli", 1, db, "putnew", "gamma", "3x"); !strings.Contains(out, "exists") {
		t.Fatalf("putnew dup output: %q", out)
	}
	if out := run("hashcli", 0, db, "get", "beta"); strings.TrimSpace(out) != "2" {
		t.Fatalf("get = %q", out)
	}
	run("hashcli", 0, db, "has", "alpha")
	run("hashcli", 1, db, "has", "nope")
	if out := run("hashcli", 0, db, "count"); strings.TrimSpace(out) != "3" {
		t.Fatalf("count = %q", out)
	}
	out := run("hashcli", 0, db, "list")
	for _, want := range []string{"alpha\t1", "beta\t2", "gamma\t3"} {
		if !strings.Contains(out, want) {
			t.Fatalf("list missing %q:\n%s", want, out)
		}
	}
	run("hashcli", 0, db, "del", "beta")
	run("hashcli", 1, db, "get", "beta")
	compacted := filepath.Join(dir, "compacted.db")
	run("hashcli", 0, db, "compact", compacted)
	if out := run("hashcli", 0, compacted, "count"); strings.TrimSpace(out) != "2" {
		t.Fatalf("compacted count = %q", out)
	}
	run("hashdump", 0, "-check", compacted)

	// hashdump over the same file.
	if out := run("hashdump", 0, "-check", db); strings.TrimSpace(out) != "ok" {
		t.Fatalf("hashdump -check = %q", out)
	}
	if out := run("hashdump", 0, "-stats", db); !strings.Contains(out, "keys:") {
		t.Fatalf("hashdump -stats = %q", out)
	}
	if out := run("hashdump", 0, "-v", db); !strings.Contains(out, "hash table:") {
		t.Fatalf("hashdump -v = %q", out)
	}
	run("hashdump", 1, "-check", filepath.Join(dir, "missing.db"))

	// dbcli over btree: ordered behaviour and the checker.
	bt := filepath.Join(dir, "cli.bt")
	run("dbcli", 0, "-method", "btree", bt, "put", "zebra", "z")
	run("dbcli", 0, "-method", "btree", bt, "put", "apple", "a")
	run("dbcli", 0, "-method", "btree", bt, "put", "mango", "m")
	out = run("dbcli", 0, "-method", "btree", bt, "list")
	ai, mi, zi := strings.Index(out, "apple"), strings.Index(out, "mango"), strings.Index(out, "zebra")
	if !(ai >= 0 && ai < mi && mi < zi) {
		t.Fatalf("btree list not ordered:\n%s", out)
	}
	out = run("dbcli", 0, "-method", "btree", bt, "range", "m")
	if strings.Contains(out, "apple") || !strings.Contains(out, "mango") {
		t.Fatalf("range m wrong:\n%s", out)
	}
	if out := run("dbcli", 0, "-method", "btree", bt, "check"); strings.TrimSpace(out) != "ok" {
		t.Fatalf("btree check = %q", out)
	}

	// dbcli over recno: a text file of lines.
	rn := filepath.Join(dir, "cli.txt")
	run("dbcli", 0, "-method", "recno", rn, "append", "line one")
	run("dbcli", 0, "-method", "recno", rn, "append", "line two")
	run("dbcli", 0, "-method", "recno", rn, "put", "0", "line ONE")
	raw, err := os.ReadFile(rn)
	if err != nil || string(raw) != "line ONE\nline two\n" {
		t.Fatalf("recno flat file = %q, %v", raw, err)
	}

	// hashbench smoke: one small figure end to end.
	out = run("hashbench", 0, "-n", "500", "fig7")
	if !strings.Contains(out, "Figure 7") || !strings.Contains(out, "page I/Os") {
		t.Fatalf("hashbench fig7 output:\n%s", out)
	}
}

package unixhash

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"unixhash/internal/core"
)

// TestCLIEndToEnd builds the command-line tools and exercises each one
// against real files — the integration layer the unit tests cannot see.
func TestCLIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short mode")
	}
	bin := t.TempDir()
	for _, tool := range []string{"hashcli", "hashdump", "dbcli", "hashbench"} {
		cmd := exec.Command("go", "build", "-o", filepath.Join(bin, tool), "./cmd/"+tool)
		cmd.Env = os.Environ()
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", tool, err, out)
		}
	}
	run := func(tool string, want int, args ...string) string {
		t.Helper()
		cmd := exec.Command(filepath.Join(bin, tool), args...)
		out, err := cmd.CombinedOutput()
		code := 0
		if ee, ok := err.(*exec.ExitError); ok {
			code = ee.ExitCode()
		} else if err != nil {
			t.Fatalf("%s %v: %v", tool, args, err)
		}
		if code != want {
			t.Fatalf("%s %v: exit %d (want %d)\n%s", tool, args, code, want, out)
		}
		return string(out)
	}

	dir := t.TempDir()
	db := filepath.Join(dir, "cli.db")

	// hashcli: the full verb set.
	run("hashcli", 0, db, "put", "alpha", "1")
	run("hashcli", 0, db, "put", "beta", "2")
	run("hashcli", 0, db, "putnew", "gamma", "3")
	if out := run("hashcli", 1, db, "putnew", "gamma", "3x"); !strings.Contains(out, "exists") {
		t.Fatalf("putnew dup output: %q", out)
	}
	if out := run("hashcli", 0, db, "get", "beta"); strings.TrimSpace(out) != "2" {
		t.Fatalf("get = %q", out)
	}
	run("hashcli", 0, db, "has", "alpha")
	run("hashcli", 1, db, "has", "nope")
	if out := run("hashcli", 0, db, "count"); strings.TrimSpace(out) != "3" {
		t.Fatalf("count = %q", out)
	}
	out := run("hashcli", 0, db, "list")
	for _, want := range []string{"alpha\t1", "beta\t2", "gamma\t3"} {
		if !strings.Contains(out, want) {
			t.Fatalf("list missing %q:\n%s", want, out)
		}
	}
	run("hashcli", 0, db, "del", "beta")
	run("hashcli", 1, db, "get", "beta")
	compacted := filepath.Join(dir, "compacted.db")
	run("hashcli", 0, db, "compact", compacted)
	if out := run("hashcli", 0, compacted, "count"); strings.TrimSpace(out) != "2" {
		t.Fatalf("compacted count = %q", out)
	}
	run("hashdump", 0, "-check", compacted)

	// hashdump over the same file.
	if out := run("hashdump", 0, "-check", db); strings.TrimSpace(out) != "ok" {
		t.Fatalf("hashdump -check = %q", out)
	}
	if out := run("hashdump", 0, "-stats", db); !strings.Contains(out, "keys:") {
		t.Fatalf("hashdump -stats = %q", out)
	}
	if out := run("hashdump", 0, "-v", db); !strings.Contains(out, "hash table:") {
		t.Fatalf("hashdump -v = %q", out)
	}
	run("hashdump", 1, "-check", filepath.Join(dir, "missing.db"))

	// dbcli over btree: ordered behaviour and the checker.
	bt := filepath.Join(dir, "cli.bt")
	run("dbcli", 0, "-method", "btree", bt, "put", "zebra", "z")
	run("dbcli", 0, "-method", "btree", bt, "put", "apple", "a")
	run("dbcli", 0, "-method", "btree", bt, "put", "mango", "m")
	out = run("dbcli", 0, "-method", "btree", bt, "list")
	ai, mi, zi := strings.Index(out, "apple"), strings.Index(out, "mango"), strings.Index(out, "zebra")
	if !(ai >= 0 && ai < mi && mi < zi) {
		t.Fatalf("btree list not ordered:\n%s", out)
	}
	out = run("dbcli", 0, "-method", "btree", bt, "range", "m")
	if strings.Contains(out, "apple") || !strings.Contains(out, "mango") {
		t.Fatalf("range m wrong:\n%s", out)
	}
	if out := run("dbcli", 0, "-method", "btree", bt, "check"); strings.TrimSpace(out) != "ok" {
		t.Fatalf("btree check = %q", out)
	}

	// dbcli over recno: a text file of lines.
	rn := filepath.Join(dir, "cli.txt")
	run("dbcli", 0, "-method", "recno", rn, "append", "line one")
	run("dbcli", 0, "-method", "recno", rn, "append", "line two")
	run("dbcli", 0, "-method", "recno", rn, "put", "0", "line ONE")
	raw, err := os.ReadFile(rn)
	if err != nil || string(raw) != "line ONE\nline two\n" {
		t.Fatalf("recno flat file = %q, %v", raw, err)
	}

	// The batched load verb: a KEY<TAB>VALUE file imported through both
	// tools, then read back through the normal verbs.
	tsv := filepath.Join(dir, "load.tsv")
	if err := os.WriteFile(tsv, []byte("lk1\tlv1\nlk2\tlv2\nlk3\tlv3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	bulk := filepath.Join(dir, "bulk.db")
	if out := run("hashcli", 0, bulk, "load", tsv); strings.TrimSpace(out) != "3" {
		t.Fatalf("hashcli load = %q, want 3", out)
	}
	if out := run("hashcli", 0, bulk, "get", "lk2"); strings.TrimSpace(out) != "lv2" {
		t.Fatalf("get after load = %q", out)
	}
	bulk2 := filepath.Join(dir, "bulk2.db")
	if out := run("dbcli", 0, bulk2, "load", tsv); strings.TrimSpace(out) != "3" {
		t.Fatalf("dbcli load = %q, want 3", out)
	}
	if out := run("dbcli", 0, bulk2, "count"); strings.TrimSpace(out) != "3" {
		t.Fatalf("count after load = %q", out)
	}
	run("hashdump", 0, "-check", bulk)

	// hashbench smoke: one small figure end to end.
	out = run("hashbench", 0, "-n", "500", "fig7")
	if !strings.Contains(out, "Figure 7") || !strings.Contains(out, "page I/Os") {
		t.Fatalf("hashbench fig7 output:\n%s", out)
	}
}

// TestCLICrashAndCorruptionDetection builds the inspection tools and
// verifies they detect — loudly, with nonzero exits — every class of
// damaged hash file: crash-dirty, corrupted pair bytes, torn header,
// and truncation. It also exercises hashdump -recover end to end.
func TestCLICrashAndCorruptionDetection(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short mode")
	}
	bin := t.TempDir()
	for _, tool := range []string{"hashdump", "dbcli"} {
		cmd := exec.Command("go", "build", "-o", filepath.Join(bin, tool), "./cmd/"+tool)
		cmd.Env = os.Environ()
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", tool, err, out)
		}
	}
	run := func(tool string, want int, args ...string) string {
		t.Helper()
		cmd := exec.Command(filepath.Join(bin, tool), args...)
		out, err := cmd.CombinedOutput()
		code := 0
		if ee, ok := err.(*exec.ExitError); ok {
			code = ee.ExitCode()
		} else if err != nil {
			t.Fatalf("%s %v: %v", tool, args, err)
		}
		if code != want {
			t.Fatalf("%s %v: exit %d (want %d)\n%s", tool, args, code, want, out)
		}
		return string(out)
	}

	dir := t.TempDir()
	const bsize = 256 // headerSize 276 -> 2 header pages
	nkeys := 60

	// A healthy, cleanly closed file both tools accept.
	clean := filepath.Join(dir, "clean.db")
	tbl, err := core.Open(clean, &core.Options{Bsize: bsize, Ffactor: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nkeys; i++ {
		if err := tbl.Put([]byte(fmt.Sprintf("key-%06d", i)), []byte(fmt.Sprintf("value-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.Close(); err != nil {
		t.Fatal(err)
	}
	run("hashdump", 0, "-check", clean)
	run("dbcli", 0, clean, "verify")

	raw, err := os.ReadFile(clean)
	if err != nil {
		t.Fatal(err)
	}
	fixture := func(name string, mutate func([]byte) []byte) string {
		t.Helper()
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, mutate(append([]byte(nil), raw...)), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	damaged := []string{
		// Stored pair bytes flipped near the end of every data page: the
		// pair fingerprint (or placement) no longer matches the header.
		fixture("pairbytes.db", func(b []byte) []byte {
			for off := 2*bsize + bsize - 5; off < len(b); off += bsize {
				b[off] ^= 0x5A
			}
			return b
		}),
		// One header byte flipped without fixing the checksum: a torn
		// header write, rejected by the CRC before any field is trusted.
		fixture("tornheader.db", func(b []byte) []byte {
			b[40] ^= 0x01
			return b
		}),
		// Truncated mid-page: not even a whole number of pages.
		fixture("truncated.db", func(b []byte) []byte { return b[:len(b)-100] }),
		// Truncated to the bare header: every stored pair is gone but the
		// header still claims them.
		fixture("headeronly.db", func(b []byte) []byte { return b[:2*bsize] }),
	}
	for _, p := range damaged {
		if out := run("hashdump", 1, "-check", p); strings.TrimSpace(out) == "ok" {
			t.Fatalf("hashdump -check accepted %s", p)
		}
		if out := run("dbcli", 1, p, "verify"); strings.TrimSpace(out) == "ok" {
			t.Fatalf("dbcli verify accepted %s", p)
		}
	}

	// A crash-dirty file: synced contents plus a durable dirty mark (the
	// post-mark mutation never left the buffer pool, as after a power
	// cut). Snapshot the file bytes while the writer is still live.
	work := filepath.Join(dir, "work.db")
	wt, err := core.Open(work, &core.Options{Bsize: bsize, Ffactor: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := wt.Put([]byte(fmt.Sprintf("key-%06d", i)), []byte(fmt.Sprintf("value-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := wt.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := wt.Put([]byte("unsynced"), []byte("lost")); err != nil {
		t.Fatal(err)
	}
	dirtyRaw, err := os.ReadFile(work)
	if err != nil {
		t.Fatal(err)
	}
	if err := wt.Close(); err != nil {
		t.Fatal(err)
	}
	dirty := filepath.Join(dir, "dirty.db")
	if err := os.WriteFile(dirty, dirtyRaw, 0o644); err != nil {
		t.Fatal(err)
	}

	if out := run("hashdump", 1, "-check", dirty); !strings.Contains(out, "recover") {
		t.Fatalf("hashdump -check on dirty file: %q", out)
	}
	run("dbcli", 1, dirty, "verify")
	if out := run("hashdump", 0, "-recover", dirty); !strings.Contains(out, "recovered") {
		t.Fatalf("hashdump -recover: %q", out)
	}
	run("hashdump", 0, "-check", dirty)
	run("dbcli", 0, dirty, "verify")
	if out := run("dbcli", 0, dirty, "count"); strings.TrimSpace(out) != "50" {
		t.Fatalf("recovered count = %q, want 50", out)
	}
	// Recovering an already-clean file is a no-op that reports clean.
	if out := run("hashdump", 0, "-recover", clean); !strings.Contains(out, "clean") {
		t.Fatalf("hashdump -recover on clean file: %q", out)
	}

	// verify on the other access methods: btree runs its structural
	// check; recno has no checker and must say so.
	bt := filepath.Join(dir, "cli.bt")
	run("dbcli", 0, "-method", "btree", bt, "put", "a", "1")
	run("dbcli", 0, "-method", "btree", bt, "verify")
	rn := filepath.Join(dir, "cli.txt")
	run("dbcli", 0, "-method", "recno", rn, "append", "line")
	run("dbcli", 1, "-method", "recno", rn, "verify")
}

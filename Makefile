GO ?= go

# Packages with dedicated concurrency stress tests; the full suite under
# -race is slow, so check races where the locks actually live.
RACE_PKGS = ./internal/core ./internal/buffer ./internal/db ./internal/trace ./internal/server ./internal/oplog

.PHONY: check build vet test race crash fuzz-crash wal-crash fuzz-wal-crash bench concurrency metrics bulkload txn misses serve serveload oplog telemetry clean

check: vet build test race crash

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

# Power-cut simulation: every write prefix of a workload (torn pages
# included) must recover to the last-synced state or fail loudly.
crash:
	$(GO) test -count=1 -run 'Crash|Fault|Recover|Durab|Sync' ./internal/core ./internal/pagefile

fuzz-crash:
	$(GO) test -run=NONE -fuzz=FuzzTableCrashRecovery -fuzztime=30s ./internal/core

# WAL crash matrix: consistent power cuts across the page store AND the
# log (torn page writes, torn log appends, mid-checkpoint cuts) must
# recover every acknowledged commit or fail loudly.
wal-crash:
	$(GO) test -count=1 -run 'WAL|TornTail|Txn' ./internal/core ./internal/wal

fuzz-wal-crash:
	$(GO) test -run=NONE -fuzz=FuzzWALCrashRecovery -fuzztime=30s ./internal/core

bench:
	$(GO) test -run=NONE -bench=. -benchmem .

concurrency:
	$(GO) run ./cmd/hashbench -quick concurrency

# Instrumented workload; refreshes BENCH_metrics.json with the full
# metric registry (splits, chain probes, cache behaviour, sync latency).
metrics:
	$(GO) run ./cmd/hashbench metrics

# Batched write pipeline vs looped Put; refreshes BENCH_bulkload.json
# and fails if PutBatch regresses below looped Put (gate 1.0). The full
# 1M-key sweep; CI runs the 100k smoke variant.
bulkload:
	$(GO) run ./cmd/hashbench -check 1.0 bulkload

# Durable single Put via WAL commit vs the full sync protocol; refreshes
# BENCH_txn.json and fails if the WAL is not at least 10x cheaper on the
# simulated cost model (the acceptance bar).
txn:
	$(GO) run ./cmd/hashbench -check 10 txn

# Negative-lookup latency vs overflow-chain depth, tag filter on vs off,
# plus a cold scan through the vectored chain read-ahead; refreshes
# BENCH_misses.json and fails if a filtered depth-4 miss costs more than
# 2x a depth-0 miss or the scan prefetched nothing.
misses:
	$(GO) run ./cmd/hashbench -check 2.0 misses

# Run the sharded network front end on its defaults (8 in-memory
# shards, WAL on, port 7700, ops dashboard on 7701). Talk to it with
# `printf 'PUT k v\r\nGET k\r\n' | nc localhost 7700`.
serve:
	$(GO) run ./cmd/dbserver -addr :7700 -telemetry :7701

# Network front end benchmark: pipelined write throughput at 1 vs 8
# shards over real TCP plus a mixed workload with window latency
# percentiles; refreshes BENCH_serve.json and fails if 8 shards buy
# less than 3x the single-shard aggregate write throughput.
serveload:
	$(GO) run ./cmd/hashbench -check 3.0 serveload

# Op-ledger overhead contract: the serveload mixed phase ledger-off vs
# ledger-on; refreshes BENCH_obs.json and fails if attribution costs
# more than 5% of mixed throughput or the exemplars' phase sums stray
# more than 10% from end-to-end latency.
oplog:
	$(GO) run ./cmd/hashbench -check 0.95 oplog

# Telemetry smoke: start a live traced workload with the telemetry
# server up, scrape every endpoint (including a 1s CPU profile) and
# watch it through dbcli hashmon; fails on any non-200 or empty body.
telemetry:
	$(GO) test -count=1 -run TestTelemetryEndToEnd -v .

clean:
	rm -f BENCH_concurrency.json BENCH_metrics.json BENCH_bulkload.json BENCH_txn.json BENCH_serve.json BENCH_misses.json BENCH_obs.json

GO ?= go

# Packages with dedicated concurrency stress tests; the full suite under
# -race is slow, so check races where the locks actually live.
RACE_PKGS = ./internal/core ./internal/buffer ./internal/db

.PHONY: check build vet test race bench concurrency clean

check: vet build test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

bench:
	$(GO) test -run=NONE -bench=. -benchmem .

concurrency:
	$(GO) run ./cmd/hashbench -quick concurrency

clean:
	rm -f BENCH_concurrency.json

// Command hashdump inspects a hash file produced by the package: the
// header geometry, the spares array, each bucket's chain shape and page
// fill, and overflow bitmap occupancy.
//
//	hashdump [-v] [-stats] [-check] [-recover] [-metrics] [-heatmap] file.db
//
// With -v every entry's key is listed. With -stats only aggregate
// statistics are printed, including the buffer-pool hit ratio and the
// overflow-chain length distribution of the inspection scan. With
// -heatmap the per-bucket fill factor and overflow-chain depth are
// reported through the same read-locked walker the live
// /debug/heatmap telemetry endpoint uses: a summary line, the chain
// depth distribution, a ten-bin fill histogram, and (with -v) one row
// per bucket. With
// -check the file is verified: a cleanly synced file gets the full
// structural check (key placement, chain and bitmap consistency, leaks,
// pair fingerprint); a file left dirty by a crash gets a dry-run of
// recovery, reporting whether its last-synced state is intact. With
// -recover a dirty file is restored to its last-synced state and
// stamped clean; a table with a write-ahead log (file.db.wal attaches
// automatically) then has its committed transactions past the last
// checkpoint replayed, and the report counts them. A WAL-managed file
// whose log holds unapplied commits is flagged in the default and
// -stats views. With -metrics the file's pairs are read back and
// replayed through an instrumented in-memory table sharing one metric
// registry, and the full registry (gets, splits, buffer hits, sync
// latency buckets, ...) is printed in the Prometheus text format. Any
// problem exits nonzero.
package main

import (
	"flag"
	"fmt"
	"os"

	"unixhash/internal/core"
	"unixhash/internal/metrics"
)

func main() {
	verbose := flag.Bool("v", false, "list every entry's key")
	statsOnly := flag.Bool("stats", false, "print aggregate statistics only")
	check := flag.Bool("check", false, "verify structural and durability invariants and exit")
	doRecover := flag.Bool("recover", false, "recover a crashed file to its last-synced state")
	promDump := flag.Bool("metrics", false, "replay the file through an instrumented table and print Prometheus-text metrics")
	heatmap := flag.Bool("heatmap", false, "print per-bucket fill factor and chain depth (same walker as /debug/heatmap)")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: hashdump [-v] [-stats] [-check] [-recover] [-metrics] [-heatmap] file.db")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	path := flag.Arg(0)

	if *doRecover {
		t, rep, err := core.Recover(path, nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hashdump: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(rep)
		if err := t.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "hashdump: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *promDump {
		if err := dumpMetrics(path); err != nil {
			fmt.Fprintf(os.Stderr, "hashdump: %v\n", err)
			os.Exit(1)
		}
		return
	}

	// Open tolerating the dirty flag: hashdump is an inspection tool, and
	// -check must be able to diagnose a crashed file rather than refuse it.
	t, err := core.Open(path, &core.Options{ReadOnly: true, AllowDirty: true})
	if err != nil {
		fmt.Fprintf(os.Stderr, "hashdump: %v\n", err)
		os.Exit(1)
	}
	defer t.Close()

	if *check {
		if err := t.Verify(); err != nil {
			fmt.Fprintf(os.Stderr, "hashdump: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("ok")
		return
	}
	if g := t.Geometry(); g.Dirty {
		fmt.Fprintf(os.Stderr, "hashdump: warning: %s was not cleanly closed; contents may predate the crash (run -recover)\n", path)
	} else if g.WalPending > 0 {
		// The header is clean but the write-ahead log holds acknowledged
		// commits that never reached the pages: this view is the last
		// checkpoint, not the last commit.
		fmt.Fprintf(os.Stderr, "hashdump: warning: %s has %d committed transactions in its log not yet in the pages (run -recover)\n", path, g.WalPending)
	}
	if *heatmap {
		if err := printHeatmap(t, *verbose); err != nil {
			fmt.Fprintf(os.Stderr, "hashdump: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *statsOnly {
		g := t.Geometry()
		fs, err := t.FillStats()
		if err != nil {
			fmt.Fprintf(os.Stderr, "hashdump: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("keys:            %d\n", g.NKeys)
		fmt.Printf("buckets:         %d (%d empty)\n", fs.Buckets, fs.EmptyBuckets)
		fmt.Printf("bucket size:     %d\n", g.Bsize)
		fmt.Printf("fill factor:     %d\n", g.Ffactor)
		fmt.Printf("overflow pages:  %d chain, %d big-pair, %d bitmap\n",
			fs.OverflowPages, fs.BigPairPages, fs.BitmapPages)
		fmt.Printf("split point:     %d\n", g.OvflPoint)
		if g.WalLSN != 0 || g.WalPending > 0 {
			fmt.Printf("wal checkpoint:  lsn %d (%d commits pending replay)\n", g.WalLSN, g.WalPending)
		}
		fmt.Printf("longest chain:   %d pages\n", fs.MaxChain)
		fmt.Printf("chain lengths:  ")
		for i, n := range fs.ChainDist {
			fmt.Printf(" %dp:%d", i+1, n)
		}
		fmt.Println()
		fmt.Printf("keys/page:       %.2f\n", fs.AvgKeysPerPage)
		fmt.Printf("page fill:       %.0f%%\n", 100*fs.AvgFill)
		c := t.Pool().Counters()
		fmt.Printf("buffer pool:     %.1f%% hit ratio over this scan (%d hits, %d misses)\n",
			100*c.HitRatio(), c.Hits, c.Misses)
		return
	}
	if err := t.Dump(os.Stdout, *verbose); err != nil {
		fmt.Fprintf(os.Stderr, "hashdump: %v\n", err)
		os.Exit(1)
	}
}

// printHeatmap renders core.Table.Heatmap — the exact payload the live
// /debug/heatmap endpoint serves — for offline inspection: summary,
// chain-depth distribution, a ten-bin fill histogram, and with verbose
// one row per bucket.
func printHeatmap(t *core.Table, verbose bool) error {
	h, err := t.Heatmap()
	if err != nil {
		return err
	}
	fmt.Println(h)
	var bins [10]int
	for _, row := range h.PerBucket {
		b := int(row.Fill * 10)
		if b > 9 {
			b = 9
		}
		bins[b]++
	}
	fmt.Println("fill histogram:")
	for i, n := range bins {
		fmt.Printf("  %3d-%3d%%  %6d  %s\n", i*10, (i+1)*10, n, bar(n, len(h.PerBucket)))
	}
	if verbose {
		fmt.Println("bucket  entries  bigrefs  chain  fill  filter")
		for _, row := range h.PerBucket {
			flt := fmt.Sprintf("%d/%d", row.FilterTags, h.FilterTagCap)
			if row.FilterSaturated {
				flt += " sat"
			} else if row.FilterInexact {
				flt += " inex"
			}
			fmt.Printf("%6d  %7d  %7d  %5d  %3.0f%%  %s\n",
				row.Bucket, row.Entries, row.BigRefs, row.ChainPages, 100*row.Fill, flt)
		}
	}
	return nil
}

// bar renders n/total as a proportional strip of hash marks.
func bar(n, total int) string {
	if total == 0 {
		return ""
	}
	w := n * 40 / total
	if n > 0 && w == 0 {
		w = 1
	}
	return "########################################"[:w]
}

// dumpMetrics opens path read-only and an anonymous in-memory table,
// both exporting into one shared registry (same-named series resolve to
// the same counters). Every pair is read from the file and replayed
// into the memory table — real gets, puts, splits and overflow traffic
// — the replay is synced, and the aggregated registry is printed in the
// Prometheus text exposition format.
func dumpMetrics(path string) error {
	reg := metrics.New()
	src, err := core.Open(path, &core.Options{ReadOnly: true, AllowDirty: true, Metrics: reg})
	if err != nil {
		return err
	}
	defer src.Close()
	g := src.Geometry()
	mem, err := core.Open("", &core.Options{Bsize: g.Bsize, Ffactor: g.Ffactor, Metrics: reg})
	if err != nil {
		return err
	}
	defer mem.Close()

	// The replay goes through the batch writer, so the dump also reports
	// the batch-pipeline series (batch puts, presizes, group joins) a
	// production ingest would produce.
	w := mem.NewBatchWriter(0)
	it := src.Iter()
	for it.Next() {
		if _, err := src.Get(it.Key()); err != nil {
			return err
		}
		if err := w.Add(it.Key(), it.Value()); err != nil {
			return err
		}
	}
	if err := it.Err(); err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if err := mem.Sync(); err != nil {
		return err
	}
	return reg.WriteProm(os.Stdout)
}

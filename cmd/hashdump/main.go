// Command hashdump inspects a hash file produced by the package: the
// header geometry, the spares array, each bucket's chain shape and page
// fill, and overflow bitmap occupancy.
//
//	hashdump [-v] [-stats] [-check] file.db
//
// With -v every entry's key is listed. With -stats only aggregate
// statistics are printed. With -check the file's structural invariants
// are verified (key placement, chain and bitmap consistency, leaks).
package main

import (
	"flag"
	"fmt"
	"os"

	"unixhash/internal/core"
)

func main() {
	verbose := flag.Bool("v", false, "list every entry's key")
	statsOnly := flag.Bool("stats", false, "print aggregate statistics only")
	check := flag.Bool("check", false, "verify structural invariants and exit")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: hashdump [-v] [-stats] [-check] file.db")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	path := flag.Arg(0)

	t, err := core.Open(path, &core.Options{ReadOnly: true})
	if err != nil {
		fmt.Fprintf(os.Stderr, "hashdump: %v\n", err)
		os.Exit(1)
	}
	defer t.Close()

	if *check {
		if err := t.Check(); err != nil {
			fmt.Fprintf(os.Stderr, "hashdump: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("ok")
		return
	}
	if *statsOnly {
		g := t.Geometry()
		fs, err := t.FillStats()
		if err != nil {
			fmt.Fprintf(os.Stderr, "hashdump: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("keys:            %d\n", g.NKeys)
		fmt.Printf("buckets:         %d (%d empty)\n", fs.Buckets, fs.EmptyBuckets)
		fmt.Printf("bucket size:     %d\n", g.Bsize)
		fmt.Printf("fill factor:     %d\n", g.Ffactor)
		fmt.Printf("overflow pages:  %d chain, %d big-pair, %d bitmap\n",
			fs.OverflowPages, fs.BigPairPages, fs.BitmapPages)
		fmt.Printf("split point:     %d\n", g.OvflPoint)
		fmt.Printf("longest chain:   %d pages\n", fs.MaxChain)
		fmt.Printf("keys/page:       %.2f\n", fs.AvgKeysPerPage)
		fmt.Printf("page fill:       %.0f%%\n", 100*fs.AvgFill)
		return
	}
	if err := t.Dump(os.Stdout, *verbose); err != nil {
		fmt.Fprintf(os.Stderr, "hashdump: %v\n", err)
		os.Exit(1)
	}
}

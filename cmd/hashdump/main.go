// Command hashdump inspects a hash file produced by the package: the
// header geometry, the spares array, each bucket's chain shape and page
// fill, and overflow bitmap occupancy.
//
//	hashdump [-v] [-stats] [-check] [-recover] file.db
//
// With -v every entry's key is listed. With -stats only aggregate
// statistics are printed. With -check the file is verified: a cleanly
// synced file gets the full structural check (key placement, chain and
// bitmap consistency, leaks, pair fingerprint); a file left dirty by a
// crash gets a dry-run of recovery, reporting whether its last-synced
// state is intact. With -recover a dirty file is restored to its
// last-synced state and stamped clean. Any problem exits nonzero.
package main

import (
	"flag"
	"fmt"
	"os"

	"unixhash/internal/core"
)

func main() {
	verbose := flag.Bool("v", false, "list every entry's key")
	statsOnly := flag.Bool("stats", false, "print aggregate statistics only")
	check := flag.Bool("check", false, "verify structural and durability invariants and exit")
	doRecover := flag.Bool("recover", false, "recover a crashed file to its last-synced state")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: hashdump [-v] [-stats] [-check] [-recover] file.db")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	path := flag.Arg(0)

	if *doRecover {
		t, rep, err := core.Recover(path, nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hashdump: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(rep)
		if err := t.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "hashdump: %v\n", err)
			os.Exit(1)
		}
		return
	}

	// Open tolerating the dirty flag: hashdump is an inspection tool, and
	// -check must be able to diagnose a crashed file rather than refuse it.
	t, err := core.Open(path, &core.Options{ReadOnly: true, AllowDirty: true})
	if err != nil {
		fmt.Fprintf(os.Stderr, "hashdump: %v\n", err)
		os.Exit(1)
	}
	defer t.Close()

	if *check {
		if err := t.Verify(); err != nil {
			fmt.Fprintf(os.Stderr, "hashdump: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("ok")
		return
	}
	if g := t.Geometry(); g.Dirty {
		fmt.Fprintf(os.Stderr, "hashdump: warning: %s was not cleanly closed; contents may predate the crash (run -recover)\n", path)
	}
	if *statsOnly {
		g := t.Geometry()
		fs, err := t.FillStats()
		if err != nil {
			fmt.Fprintf(os.Stderr, "hashdump: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("keys:            %d\n", g.NKeys)
		fmt.Printf("buckets:         %d (%d empty)\n", fs.Buckets, fs.EmptyBuckets)
		fmt.Printf("bucket size:     %d\n", g.Bsize)
		fmt.Printf("fill factor:     %d\n", g.Ffactor)
		fmt.Printf("overflow pages:  %d chain, %d big-pair, %d bitmap\n",
			fs.OverflowPages, fs.BigPairPages, fs.BitmapPages)
		fmt.Printf("split point:     %d\n", g.OvflPoint)
		fmt.Printf("longest chain:   %d pages\n", fs.MaxChain)
		fmt.Printf("keys/page:       %.2f\n", fs.AvgKeysPerPage)
		fmt.Printf("page fill:       %.0f%%\n", 100*fs.AvgFill)
		return
	}
	if err := t.Dump(os.Stdout, *verbose); err != nil {
		fmt.Fprintf(os.Stderr, "hashdump: %v\n", err)
		os.Exit(1)
	}
}

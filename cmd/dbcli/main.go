// Command dbcli is the access-method-independent database tool: the same
// operations run over hash, btree or recno files, demonstrating the
// paper's generic key/data interface ("appear identical to the
// application layer").
//
//	dbcli -method hash  file.db put KEY VALUE
//	dbcli -method btree file.db get KEY
//	dbcli -method btree file.db range FROM      # ordered scan from FROM
//	dbcli -method recno file.db put 3 VALUE     # recno keys are numbers
//	dbcli -method recno file.db append VALUE
//	dbcli [...] load FILE                       # bulk import KEY<TAB>VALUE lines
//	dbcli [...] del KEY | list | count | stats | metrics | check | verify
//	dbcli -wal file.db txn put K V del K ...    # atomic multi-op commit (hash)
//	dbcli hashmon URL [INTERVAL [COUNT]]        # watch a live telemetry endpoint
//
// hashmon polls a running telemetry server's /stats endpoint (started
// with core Options.TelemetryAddr, db.ServeTelemetry or hashbench
// serve) every INTERVAL (default 2s) and renders the numeric fields
// that changed since the previous poll as deltas — a portable
// poor-man's top for a table under load. When the server also exposes
// /debug/oplog (dbserver -oplog), each tick appends the per-command
// phase attribution: end-to-end p50/p99 per command plus its heaviest
// phases, so a latency regression names its phase in the same breath.
// COUNT limits the number of polls (default: until interrupted). URL
// may be a bare host:port; the /stats path is implied.
//
// load reads KEY<TAB>VALUE lines from FILE ('-' for stdin) and imports
// them through the batched write pipeline: records are staged in
// PutBatch-sized chunks so the hash method pays one lock acquisition,
// one dirty epoch and one deferred-split pass per chunk instead of per
// record (btree and recno fall back to a Put loop under the same
// interface). The count of imported records is printed on completion.
//
// check verifies structural invariants (btree only). verify checks a
// file without modifying it: for hash it also diagnoses files left
// dirty by a crash (is the last-synced state intact?), exiting nonzero
// on any problem. stats prints the uniform db.Stats view (keys, pages,
// cache hit ratio, method-specific detail) for any method. metrics
// opens a hash file with a metric registry, runs the statistics scan,
// and prints the registry in the Prometheus text format.
//
// txn (hash only) applies a sequence of put K V / del K groups as one
// atomic transaction through the write-ahead log: durable after a
// single log append + fsync, all-or-nothing on error. Create the table
// with -wal; one that already has log checkpoints re-attaches its log
// automatically.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"unixhash/internal/core"
	"unixhash/internal/db"
	"unixhash/internal/oplog"
	"unixhash/internal/metrics"
)

func main() {
	method := flag.String("method", "hash", "access method: hash, btree, recno")
	useWAL := flag.Bool("wal", false, "hash only: attach a write-ahead log (FILE.wal), enabling txn")
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) >= 2 && args[0] == "hashmon" {
		if err := hashmon(args[1:]); err != nil {
			fatal(err)
		}
		return
	}
	if len(args) < 2 {
		usage()
		os.Exit(2)
	}
	path, cmd := args[0], args[1]
	rest := args[2:]

	var m db.Method
	switch *method {
	case "hash":
		m = db.Hash
	case "btree":
		m = db.Btree
	case "recno":
		m = db.Recno
	default:
		fatal(fmt.Errorf("unknown method %q", *method))
	}

	var cfg *db.Config
	var reg *metrics.Registry
	switch {
	case (cmd == "verify" || cmd == "stats") && m == db.Hash:
		// Inspection verbs must be able to open a file a crashed writer
		// left dirty, and must not modify it.
		cfg = &db.Config{Hash: &core.Options{ReadOnly: true, AllowDirty: true}}
	case cmd == "metrics":
		if m != db.Hash {
			fatal(errors.New("metrics requires -method hash"))
		}
		reg = metrics.New()
		cfg = &db.Config{Hash: &core.Options{ReadOnly: true, AllowDirty: true, Metrics: reg}}
	case *useWAL:
		// A table that already has log checkpoints re-attaches its log
		// automatically; the flag is what creates a transactional table.
		if m != db.Hash {
			fatal(errors.New("-wal requires -method hash"))
		}
		cfg = &db.Config{Hash: &core.Options{WAL: true}}
	}
	d, err := db.Open(path, m, cfg)
	if err != nil {
		fatal(err)
	}
	defer func() {
		if err := d.Close(); err != nil {
			fatal(err)
		}
	}()

	mkKey := func(s string) []byte {
		if m != db.Recno {
			return []byte(s)
		}
		i, err := strconv.Atoi(s)
		if err != nil {
			fatal(fmt.Errorf("recno key %q is not a number", s))
		}
		return db.RecnoKey(i)
	}
	need := func(n int) {
		if len(rest) != n {
			usage()
			os.Exit(2)
		}
	}

	switch cmd {
	case "put":
		need(2)
		if err := d.Put(mkKey(rest[0]), []byte(rest[1])); err != nil {
			fatal(err)
		}
	case "append":
		need(1)
		if m != db.Recno {
			fatal(errors.New("append is a recno operation"))
		}
		if err := d.Put(db.RecnoKey(d.Len()), []byte(rest[0])); err != nil {
			fatal(err)
		}
		fmt.Println(d.Len() - 1)
	case "load":
		need(1)
		n, err := load(d, mkKey, rest[0])
		if err != nil {
			fatal(err)
		}
		fmt.Println(n)
	case "get":
		need(1)
		v, err := d.Get(mkKey(rest[0]))
		if errors.Is(err, db.ErrNotFound) {
			fmt.Fprintf(os.Stderr, "dbcli: %s: not found\n", rest[0])
			os.Exit(1)
		}
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s\n", v)
	case "del":
		need(1)
		if err := d.Delete(mkKey(rest[0])); err != nil {
			fatal(err)
		}
	case "list":
		need(0)
		w := bufio.NewWriter(os.Stdout)
		c := d.Seq()
		for c.Next() {
			printPair(w, m, c.Key(), c.Value())
		}
		if err := c.Err(); err != nil {
			fatal(err)
		}
		if err := w.Flush(); err != nil {
			fatal(err)
		}
	case "range":
		need(1)
		c, err := db.Seek(d, []byte(rest[0]))
		if errors.Is(err, db.ErrUnsupported) {
			fatal(errors.New("range requires -method btree"))
		}
		if err != nil {
			fatal(err)
		}
		w := bufio.NewWriter(os.Stdout)
		for c.Next() {
			fmt.Fprintf(w, "%s\t%s\n", c.Key(), c.Value())
		}
		if err := c.Err(); err != nil {
			fatal(err)
		}
		if err := w.Flush(); err != nil {
			fatal(err)
		}
	case "count":
		need(0)
		fmt.Println(d.Len())
	case "stats":
		need(0)
		s, err := d.Stats()
		if err != nil {
			fatal(err)
		}
		printStats(s)
	case "metrics":
		need(0)
		// The statistics scan generates the traffic the dump reports
		// (page reads through the pool, chain walks).
		if _, err := d.Stats(); err != nil {
			fatal(err)
		}
		if err := reg.WriteProm(os.Stdout); err != nil {
			fatal(err)
		}
	case "txn":
		// A sequence of `put K V` / `del K` groups applied atomically
		// through the redesigned db transaction interface: one
		// Begin/Commit, durable after a single log append + fsync,
		// all-or-nothing. Only the hash method (opened with -wal)
		// supports it; Begin itself reports why when it cannot.
		x, err := d.Begin()
		if errors.Is(err, db.ErrNoTxn) {
			fatal(errors.New("txn requires -method hash (with -wal)"))
		}
		if err != nil {
			fatal(err)
		}
		nops := 0
		for i := 0; i < len(rest); {
			switch rest[i] {
			case "put":
				if i+2 >= len(rest) {
					fatal(errors.New("txn: put needs KEY VALUE"))
				}
				if err := x.Put([]byte(rest[i+1]), []byte(rest[i+2])); err != nil {
					x.Rollback()
					fatal(err)
				}
				i += 3
			case "del":
				if i+1 >= len(rest) {
					fatal(errors.New("txn: del needs KEY"))
				}
				if err := x.Delete([]byte(rest[i+1])); err != nil {
					x.Rollback()
					fatal(err)
				}
				i += 2
			default:
				x.Rollback()
				fatal(fmt.Errorf("txn: want put K V or del K, got %q", rest[i]))
			}
			nops++
		}
		if err := x.Commit(); err != nil {
			fatal(err)
		}
		fmt.Printf("committed %d ops\n", nops)
	case "check":
		need(0)
		if err := db.Check(d); err != nil {
			if errors.Is(err, db.ErrUnsupported) {
				fatal(errors.New("check requires -method btree"))
			}
			fatal(err)
		}
		fmt.Println("ok")
	case "verify":
		need(0)
		if err := db.Verify(d); err != nil {
			if errors.Is(err, db.ErrUnsupported) {
				fatal(errors.New("verify is not supported for recno"))
			}
			fatal(err)
		}
		fmt.Println("ok")
	default:
		usage()
		os.Exit(2)
	}
}

// load bulk-imports KEY<TAB>VALUE lines from path ('-' = stdin),
// submitting them in PutBatch-sized chunks. Within a chunk a repeated
// key keeps the last value, matching what a Put loop would leave behind.
func load(d db.DB, mkKey func(string) []byte, path string) (int, error) {
	in := os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return 0, err
		}
		defer f.Close()
		in = f
	}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	batch := make([]db.Pair, 0, core.DefaultBatchSize)
	n, lineno := 0, 0
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		if err := d.PutBatch(batch); err != nil {
			return err
		}
		n += len(batch)
		batch = batch[:0]
		return nil
	}
	for sc.Scan() {
		lineno++
		line := sc.Text()
		if line == "" {
			continue
		}
		key, val, ok := strings.Cut(line, "\t")
		if !ok || key == "" {
			return n, fmt.Errorf("load: %s line %d: want KEY<TAB>VALUE", path, lineno)
		}
		batch = append(batch, db.Pair{Key: mkKey(key), Data: []byte(val)})
		if len(batch) == core.DefaultBatchSize {
			if err := flush(); err != nil {
				return n, err
			}
		}
	}
	if err := sc.Err(); err != nil {
		return n, err
	}
	return n, flush()
}

// printStats renders the uniform Stats view plus the method detail.
func printStats(s db.Stats) {
	fmt.Printf("method:          %v\n", s.Method)
	fmt.Printf("keys:            %d\n", s.Keys)
	if s.PageSize > 0 {
		fmt.Printf("pages:           %d x %d bytes\n", s.Pages, s.PageSize)
		fmt.Printf("cache:           %.1f%% hit ratio (%d hits, %d misses)\n",
			100*s.CacheHitRatio, s.CacheHits, s.CacheMisses)
	}
	switch {
	case s.Hash != nil:
		h := s.Hash
		fmt.Printf("buckets:         %d (%d empty)\n", h.Buckets, h.EmptyBuckets)
		fmt.Printf("overflow pages:  %d chain, %d big-pair, %d bitmap\n",
			h.OverflowPages, h.BigPairPages, h.BitmapPages)
		fmt.Printf("longest chain:   %d pages\n", h.MaxChain)
		fmt.Printf("page fill:       %.0f%%\n", 100*h.AvgFill)
		fmt.Printf("ops:             %d gets (%d misses), %d puts, %d deletes, %d syncs\n",
			h.Gets, h.GetMisses, h.Puts, h.Deletes, h.Syncs)
		fmt.Printf("splits:          %d controlled, %d uncontrolled\n",
			h.SplitsControlled, h.SplitsUncontrolled)
		if h.WalLSN != 0 || h.WalAppends != 0 {
			fmt.Printf("wal:             checkpoint lsn %d, %d commits, %d appends, %d fsyncs\n",
				h.WalLSN, h.TxnCommits, h.WalAppends, h.WalFsyncs)
		}
	case s.Btree != nil:
		b := s.Btree
		fmt.Printf("depth:           %d\n", b.Depth)
		fmt.Printf("free pages:      %d\n", b.FreePages)
		fmt.Printf("ops:             %d gets (%d misses), %d puts, %d deletes, %d syncs\n",
			b.Gets, b.GetMisses, b.Puts, b.Deletes, b.Syncs)
	case s.Recno != nil:
		r := s.Recno
		fmt.Printf("record bytes:    %d\n", r.Bytes)
		if r.Reclen > 0 {
			fmt.Printf("record length:   %d (fixed)\n", r.Reclen)
		} else {
			fmt.Printf("delimiter:       %q (variable-length)\n", r.Bval)
		}
		fmt.Printf("ops:             %d gets (%d misses), %d puts, %d deletes, %d syncs\n",
			r.Gets, r.GetMisses, r.Puts, r.Deletes, r.Syncs)
	}
}

func printPair(w *bufio.Writer, m db.Method, k, v []byte) {
	if m == db.Recno {
		if i, err := db.ParseRecnoKey(k); err == nil {
			fmt.Fprintf(w, "%d\t%s\n", i, v)
			return
		}
	}
	fmt.Fprintf(w, "%s\t%s\n", k, v)
}

// hashmon polls a telemetry /stats endpoint and renders deltas. It is
// schema-agnostic: the JSON document is flattened to path -> number,
// and each tick prints the paths whose values changed, with their
// delta. Non-counter fields (gauges going down) render negative deltas
// just as usefully. If the same server answers /debug/oplog, each tick
// also renders the op-ledger attribution per command.
func hashmon(args []string) error {
	if len(args) < 1 || len(args) > 3 {
		usage()
		os.Exit(2)
	}
	url := args[0]
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	url = strings.TrimSuffix(url, "/")
	if !strings.HasSuffix(url, "/stats") {
		url += "/stats"
	}
	interval := 2 * time.Second
	if len(args) >= 2 {
		d, err := time.ParseDuration(args[1])
		if err != nil || d <= 0 {
			return fmt.Errorf("hashmon: bad interval %q", args[1])
		}
		interval = d
	}
	count := 0 // 0: poll until interrupted
	if len(args) == 3 {
		c, err := strconv.Atoi(args[2])
		if err != nil || c < 1 {
			return fmt.Errorf("hashmon: bad count %q", args[2])
		}
		count = c
	}

	client := &http.Client{Timeout: interval + 10*time.Second}
	poll := func() (map[string]float64, error) {
		resp, err := client.Get(url)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("hashmon: %s: HTTP %d", url, resp.StatusCode)
		}
		var doc any
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			return nil, fmt.Errorf("hashmon: %s: %v", url, err)
		}
		flat := map[string]float64{}
		flattenJSON("", doc, flat)
		return flat, nil
	}

	// The op ledger is optional on the server side: one probe decides,
	// a 404 (telemetry without -oplog) just drops the extra table.
	oplogURL := strings.TrimSuffix(url, "/stats") + "/debug/oplog"
	pollOplog := func() *oplog.Summary {
		resp, err := client.Get(oplogURL)
		if err != nil {
			return nil
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil
		}
		var sum oplog.Summary
		if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
			return nil
		}
		return &sum
	}

	prev, err := poll()
	if err != nil {
		return err
	}
	withOplog := pollOplog() != nil
	fmt.Printf("hashmon %s: %d numeric series, polling every %v\n", url, len(prev), interval)
	if withOplog {
		fmt.Printf("op ledger live on %s\n", oplogURL)
	}
	start := time.Now()
	for i := 1; count == 0 || i < count; i++ {
		time.Sleep(interval)
		cur, err := poll()
		if err != nil {
			return err
		}
		var changed []string
		for path, v := range cur {
			if v != prev[path] {
				changed = append(changed, path)
			}
		}
		sort.Strings(changed)
		fmt.Printf("--- t=%s (%d changed)\n", time.Since(start).Round(time.Second), len(changed))
		for _, path := range changed {
			fmt.Printf("  %-50s %14.6g  %+g\n", path, cur[path], cur[path]-prev[path])
		}
		if withOplog {
			if sum := pollOplog(); sum != nil {
				printOplog(sum)
			}
		}
		prev = cur
	}
	return nil
}

// printOplog renders the attribution table: per command the end-to-end
// percentiles, then its phases heaviest-first with their own p50/p99 —
// the columns that turn "puts got slow" into "puts got slow in fsync".
func printOplog(sum *oplog.Summary) {
	if len(sum.Commands) == 0 {
		return
	}
	fmt.Printf("  %-22s %10s %10s %10s\n", "oplog", "count", "p50", "p99")
	for _, cs := range sum.Commands {
		fmt.Printf("  %-22s %10d %8.0fus %8.0fus\n", cs.Cmd, cs.Count, cs.P50us, cs.P99us)
		phases := append([]oplog.PhaseStat(nil), cs.Phases...)
		sort.Slice(phases, func(i, j int) bool { return phases[i].Total > phases[j].Total })
		for i, ps := range phases {
			if i == 4 {
				break
			}
			fmt.Printf("    %-20s %10d %8.0fus %8.0fus\n", ps.Phase, ps.Count, ps.P50us, ps.P99us)
		}
	}
}

// flattenJSON walks a decoded JSON document collecting numeric leaves
// as dotted-path -> value.
func flattenJSON(prefix string, v any, out map[string]float64) {
	switch x := v.(type) {
	case map[string]any:
		for k, v := range x {
			p := k
			if prefix != "" {
				p = prefix + "." + k
			}
			flattenJSON(p, v, out)
		}
	case []any:
		for i, v := range x {
			flattenJSON(fmt.Sprintf("%s[%d]", prefix, i), v, out)
		}
	case float64:
		out[prefix] = x
	case bool:
		if x {
			out[prefix] = 1
		} else {
			out[prefix] = 0
		}
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "dbcli: %v\n", err)
	os.Exit(1)
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: dbcli [-method hash|btree|recno] [-wal] file.db {put K V|append V|load FILE|get K|del K|list|range FROM|count|stats|metrics|check|verify|txn {put K V|del K}...}
       dbcli hashmon URL [INTERVAL [COUNT]]`)
	flag.PrintDefaults()
}

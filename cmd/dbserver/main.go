// Command dbserver serves a sharded hash database over TCP: the
// package's network front end. Keys hash across N shards, each its own
// WAL-backed linear-hash table with a private buffer pool, so writes
// from many connections apply in parallel instead of serializing on
// one table lock. The wire protocol is the small RESP-like text
// protocol of internal/server (GET/PUT/DEL/BATCH/TXN/STATS); try it by
// hand with nc:
//
//	dbserver -addr :7700 -dir /var/tmp/kv &
//	printf 'PUT greeting hello\r\nGET greeting\r\n' | nc localhost 7700
//
// Flags:
//
//	-addr HOST:PORT   listen address (default :7700; :0 picks a port)
//	-shards N         shard count (default 8; fixed at directory creation)
//	-dir PATH         database directory; empty serves memory-resident
//	                  shards (data lost on exit)
//	-wal              write-ahead logs per shard, enabling TXN (default
//	                  true; -wal=false serves a txn-less store)
//	-cache N          buffer pool bytes per shard
//	-bsize N          bucket size for new shards
//	-ffactor N        fill factor for new shards
//	-nelem N          expected total element count (divided across shards)
//	-telemetry ADDR   ops dashboard: /metrics aggregates every shard and
//	                  the server_* series on one page, /stats breaks the
//	                  aggregate down per shard, /debug/heatmap maps every
//	                  shard's buckets
//	-oplog            per-request phase attribution (default true): every
//	                  command runs under an op ledger; phase-latency
//	                  histograms land on /metrics (oplog_*), the summary
//	                  on /debug/oplog and in STATS, and the slowest
//	                  request ledgers on /debug/oplog/exemplars
//
// SIGINT/SIGTERM shut down gracefully: stop accepting, drain in-flight
// commands and pending coalesced writes, then sync and close every
// shard.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"unixhash/internal/core"
	"unixhash/internal/db"
	"unixhash/internal/metrics"
	"unixhash/internal/oplog"
	"unixhash/internal/server"
)

func main() {
	addr := flag.String("addr", ":7700", "listen address")
	shards := flag.Int("shards", 8, "shard count (fixed when the directory is created)")
	dir := flag.String("dir", "", "database directory; empty = memory-resident")
	wal := flag.Bool("wal", true, "write-ahead log per shard (enables TXN)")
	cache := flag.Int("cache", 0, "buffer pool bytes per shard")
	bsize := flag.Int("bsize", 0, "bucket size for new shards")
	ffactor := flag.Int("ffactor", 0, "fill factor for new shards")
	nelem := flag.Int("nelem", 0, "expected total element count")
	telemetry := flag.String("telemetry", "", "serve the ops dashboard on this address")
	oplogOn := flag.Bool("oplog", true, "per-request phase attribution (op ledger)")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "dbserver: unexpected argument %q\n", flag.Arg(0))
		flag.Usage()
		os.Exit(2)
	}

	// One registry spans the stack: every shard's engine metrics
	// aggregate into it, and the server's connection counters join them.
	reg := metrics.New()
	d, err := db.OpenSharded(*dir, *shards, &db.Config{Hash: &core.Options{
		Bsize: *bsize, Ffactor: *ffactor, Nelem: *nelem, CacheSize: *cache,
		WAL: *wal, Metrics: reg,
	}})
	if err != nil {
		fatal(err)
	}

	// The op-ledger recorder spans the stack like the registry: the
	// server charges each command's phases, the recorder's histograms
	// land in the shared registry, and telemetry serves the summary.
	var rec *oplog.Recorder
	if *oplogOn {
		rec = oplog.NewRecorder(reg, d.NShards())
	}

	s, err := server.Serve(*addr, server.Options{DB: d, Metrics: reg, Oplog: rec})
	if err != nil {
		d.Close()
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "dbserver: serving %d shards on %s\n", d.NShards(), s.Addr())

	if *telemetry != "" {
		// Serving the EnableOplog wrapper mounts /debug/oplog alongside
		// the usual endpoints; the database underneath is the same.
		td := db.DB(d)
		if rec != nil {
			td = db.EnableOplog(d, rec)
		}
		ts, err := db.ServeTelemetry(td, *telemetry)
		if err != nil {
			s.Close()
			d.Close()
			fatal(err)
		}
		defer ts.Close()
		fmt.Fprintf(os.Stderr, "dbserver: telemetry http://%s\n", ts.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Fprintln(os.Stderr, "dbserver: shutting down")
	if err := s.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "dbserver: close: %v\n", err)
	}
	if err := d.Close(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "dbserver: %v\n", err)
	os.Exit(1)
}

// Command hashbench regenerates every table and figure in the paper's
// evaluation section ("A New Hashing Package for UNIX", Seltzer & Yigit,
// USENIX Winter 1991):
//
//	hashbench fig5            Figures 5a-c: page size x fill factor sweep
//	hashbench fig6            Figure 6: known vs dynamically grown table
//	hashbench fig7            Figure 7: buffer pool size sweep
//	hashbench fig8a           Figure 8a: dictionary DB vs ndbm and hsearch
//	hashbench fig8b           Figure 8b: password DB vs ndbm and hsearch
//	hashbench methods         hash vs btree under the same workload
//	hashbench ablate          ablations: split policy, hash functions
//	hashbench concurrency     read + write scaling at 1-8 goroutines
//	                          (read-only, mixed, write-heavy, hot-key);
//	                          writes BENCH_concurrency.json
//	hashbench metrics         instrumented workload; writes
//	                          BENCH_metrics.json
//	hashbench bulkload        batched write pipeline vs looped Put; writes
//	                          BENCH_bulkload.json
//	hashbench txn             durable single Put via WAL commit vs full
//	                          sync, with commit latency percentiles;
//	                          writes BENCH_txn.json
//	hashbench misses          negative-lookup latency vs overflow-chain
//	                          depth with the per-bucket tag filter on
//	                          vs off, plus a cold scan through the
//	                          vectored chain read-ahead; writes
//	                          BENCH_misses.json
//	hashbench serve           live traced workload with the telemetry
//	                          endpoint up (watch with dbcli hashmon)
//	hashbench serveload       the network front end over real TCP:
//	                          pipelined write throughput at 1 vs 8
//	                          shards plus a mixed workload with window
//	                          latency percentiles; writes
//	                          BENCH_serve.json
//	hashbench oplog           op-ledger overhead contract: the mixed
//	                          phase ledger-off vs ledger-on, with the
//	                          recorder's phase breakdown and exemplar
//	                          phase coverage; writes BENCH_obs.json
//	hashbench all             everything above except concurrency,
//	                          metrics, bulkload, txn, serve,
//	                          serveload and oplog
//
// Flags:
//
//	-n N      dictionary size (default: the paper's 24474; smaller is
//	          faster and preserves the shapes). For bulkload, the key
//	          ceiling: points above N keys are skipped (0 = all, up
//	          to 1M).
//	-quick    shorthand for -n 4000
//	-check X  bulkload: exit nonzero if the PutBatch speedup at the
//	          largest size falls below X, or if presized PutBatch
//	          does not beat unsized. concurrency: exit nonzero if the
//	          8-goroutine write-heavy speedup falls below X (skipped
//	          on GOMAXPROCS=1 hosts). txn: exit nonzero if the WAL
//	          durable-put speedup over full sync falls below X.
//	          serveload: exit nonzero if the 8-shard aggregate write
//	          throughput speedup over 1 shard falls below X. oplog:
//	          exit nonzero if ledger-on throughput falls below X of
//	          ledger-off, or the exemplars' phase sums stray more
//	          than 10% from end-to-end latency. misses:
//	          exit nonzero if a filtered depth-4 miss costs more than
//	          X times a depth-0 miss, or the scan phase prefetched no
//	          pages. The CI regression gates.
//	-conns M  serveload: client connection count (default 8)
//	-pipeline D
//	          serveload: commands pipelined per window (default 64)
//	-mix P    serveload: write percentage of the mixed phase
//	          (default 30)
//	-telemetry ADDR
//	          serve only: telemetry listen address (":0" picks a free
//	          port; the first output line reports the choice)
//	-dur D    serve only: how long to run the workload (0 = until
//	          killed)
package main

import (
	"flag"
	"fmt"
	"os"

	"unixhash/internal/bench"
)

func main() {
	n := flag.Int("n", 0, "dictionary size (0 = the paper's 24474 keys)")
	quick := flag.Bool("quick", false, "use a 4000-key dictionary")
	check := flag.Float64("check", 0, "bulkload/concurrency: fail below this speedup (0 = no gate)")
	telemetry := flag.String("telemetry", "127.0.0.1:0", "serve: telemetry listen address")
	dur := flag.Duration("dur", 0, "serve: workload duration (0 = until killed)")
	conns := flag.Int("conns", 0, "serveload: client connections (0 = 8)")
	pipeline := flag.Int("pipeline", 0, "serveload: pipeline depth (0 = 64)")
	mix := flag.Int("mix", 0, "serveload: mixed-phase write percentage (0 = 30)")
	flag.Usage = usage
	flag.Parse()
	if *quick && *n == 0 {
		*n = 4000
	}
	if flag.NArg() != 1 {
		usage()
		os.Exit(2)
	}
	cmd := flag.Arg(0)
	run := func(name string) error {
		switch name {
		case "fig5":
			res, err := bench.Fig5(*n, 1<<20, nil, nil)
			if err != nil {
				return err
			}
			fmt.Print(res)
		case "fig6":
			res, err := bench.Fig6(*n, nil)
			if err != nil {
				return err
			}
			fmt.Print(res)
		case "fig7":
			res, err := bench.Fig7(*n, nil)
			if err != nil {
				return err
			}
			fmt.Print(res)
		case "fig8a":
			res, err := bench.Fig8Dict(*n)
			if err != nil {
				return err
			}
			fmt.Print(res)
		case "fig8b":
			res, err := bench.Fig8Passwd(0)
			if err != nil {
				return err
			}
			fmt.Print(res)
		case "methods":
			res, err := bench.Methods(*n)
			if err != nil {
				return err
			}
			fmt.Print(res)
		case "ablate":
			sp, err := bench.AblateSplitPolicy(*n)
			if err != nil {
				return err
			}
			fmt.Print(sp)
			fmt.Println()
			hf, err := bench.AblateHashFuncs(*n)
			if err != nil {
				return err
			}
			count := *n
			if count <= 0 {
				count = 24474
			}
			fmt.Print(bench.FormatHashFuncs(hf, count))
		case "concurrency":
			res, err := bench.Concurrency(*n, 0)
			if err != nil {
				return err
			}
			fmt.Print(res)
			data, err := res.JSON()
			if err != nil {
				return err
			}
			if err := os.WriteFile("BENCH_concurrency.json", data, 0o644); err != nil {
				return err
			}
			fmt.Println("\nwrote BENCH_concurrency.json")
			if *check > 0 {
				if err := res.Gate(*check); err != nil {
					return err
				}
			}
		case "metrics":
			res, err := bench.MetricsRun(*n)
			if err != nil {
				return err
			}
			fmt.Print(res)
			data, err := res.JSON()
			if err != nil {
				return err
			}
			if err := os.WriteFile("BENCH_metrics.json", data, 0o644); err != nil {
				return err
			}
			fmt.Println("\nwrote BENCH_metrics.json")
		case "bulkload":
			res, err := bench.Bulkload(*n)
			if err != nil {
				return err
			}
			fmt.Print(res)
			data, err := res.JSON()
			if err != nil {
				return err
			}
			if err := os.WriteFile("BENCH_bulkload.json", data, 0o644); err != nil {
				return err
			}
			fmt.Println("\nwrote BENCH_bulkload.json")
			if *check > 0 {
				if err := res.Gate(*check); err != nil {
					return err
				}
				fmt.Printf("gate passed: batch speedup %.2fx >= %.2fx, presized beats unsized\n",
					res.SpeedupAtMax, *check)
			}
		case "txn":
			res, err := bench.Txn(*n)
			if err != nil {
				return err
			}
			fmt.Print(res)
			data, err := res.JSON()
			if err != nil {
				return err
			}
			if err := os.WriteFile("BENCH_txn.json", data, 0o644); err != nil {
				return err
			}
			fmt.Println("\nwrote BENCH_txn.json")
			if *check > 0 {
				if err := res.Gate(*check); err != nil {
					return err
				}
				fmt.Printf("gate passed: WAL durable-put speedup %.2fx >= %.2fx\n",
					res.WalSpeedup, *check)
			}
		case "misses":
			res, err := bench.Misses(*n)
			if err != nil {
				return err
			}
			fmt.Print(res)
			data, err := res.JSON()
			if err != nil {
				return err
			}
			if err := os.WriteFile("BENCH_misses.json", data, 0o644); err != nil {
				return err
			}
			fmt.Println("\nwrote BENCH_misses.json")
			if *check > 0 {
				if err := res.Gate(*check); err != nil {
					return err
				}
				fmt.Printf("gate passed: filtered depth-4/depth-0 miss ratio %.2fx <= %.2fx, %d pages prefetched\n",
					res.Depth4Over0, *check, res.ScanPrefetchedPages)
			}
		case "serve":
			return bench.Serve(*n, *telemetry, *dur, os.Stdout)
		case "oplog":
			res, err := bench.Oplog(*conns, *pipeline, *mix)
			if err != nil {
				return err
			}
			fmt.Print(res)
			data, err := res.JSON()
			if err != nil {
				return err
			}
			if err := os.WriteFile("BENCH_obs.json", data, 0o644); err != nil {
				return err
			}
			fmt.Println("\nwrote BENCH_obs.json")
			if *check > 0 {
				if err := res.Gate(*check); err != nil {
					return err
				}
				fmt.Printf("gate passed: ledger-on throughput %.2fx >= %.2fx, median phase coverage %.2f\n",
					res.ThroughputRatio, *check, res.Coverage.Median)
			}
		case "serveload":
			res, err := bench.Serveload(*conns, *pipeline, *mix)
			if err != nil {
				return err
			}
			fmt.Print(res)
			data, err := res.JSON()
			if err != nil {
				return err
			}
			if err := os.WriteFile("BENCH_serve.json", data, 0o644); err != nil {
				return err
			}
			fmt.Println("\nwrote BENCH_serve.json")
			if *check > 0 {
				if err := res.Gate(*check); err != nil {
					return err
				}
				fmt.Printf("gate passed: 8-shard write speedup %.2fx >= %.2fx\n",
					res.WriteSpeedup, *check)
			}
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		return nil
	}

	var names []string
	if cmd == "all" {
		names = []string{"fig5", "fig6", "fig7", "fig8a", "fig8b", "methods", "ablate"}
	} else {
		names = []string{cmd}
	}
	for i, name := range names {
		if i > 0 {
			fmt.Println()
			fmt.Println("================================================================")
			fmt.Println()
		}
		if err := run(name); err != nil {
			fmt.Fprintf(os.Stderr, "hashbench %s: %v\n", name, err)
			os.Exit(1)
		}
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: hashbench [-n N | -quick] {fig5|fig6|fig7|fig8a|fig8b|methods|ablate|concurrency|metrics|bulkload|txn|misses|serve|serveload|oplog|all}

Regenerates the evaluation figures of "A New Hashing Package for UNIX"
(Seltzer & Yigit, USENIX Winter 1991). See EXPERIMENTS.md for the
mapping between output and the paper's figures.
`)
	flag.PrintDefaults()
}

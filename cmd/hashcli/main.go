// Command hashcli is a small key/data database tool over the package's
// native interface — the kind of utility the paper imagines replacing
// ad-hoc application hash tables:
//
//	hashcli file.db put KEY VALUE      store (replacing)
//	hashcli file.db putnew KEY VALUE   store (fail if present)
//	hashcli file.db get KEY            print the value
//	hashcli file.db del KEY            delete
//	hashcli file.db has KEY            exit 0 if present, 1 if not
//	hashcli file.db list               print every key<TAB>value
//	hashcli file.db count              print the number of pairs
//	hashcli file.db load FILE          bulk import KEY<TAB>VALUE lines
//	                                   ('-' = stdin) via the batch writer
//	hashcli file.db compact NEW.db     rebuild into a right-sized file
//	hashcli -wal file.db txn OPS...    apply several ops atomically, where
//	                                   OPS is a sequence of put K V and
//	                                   del K groups; all-or-nothing, made
//	                                   durable by one log append + fsync
//
// Flags (creation-time parameters; ignored when the file exists):
//
//	-bsize N     bucket size (default 256)
//	-ffactor N   fill factor (default 8)
//	-nelem N     expected final element count
//	-cache N     buffer pool bytes (default 65536)
//	-wal         attach a write-ahead log (file.db.wal) and enable txn;
//	             a table that already has log checkpoints re-attaches
//	             its log automatically, flag or no flag
//
//	-telemetry ADDR   serve live telemetry (/metrics, /stats,
//	                  /debug/events, ...) for the duration of the
//	                  command; mainly useful to watch a long load.
//	                  The resolved address is printed to stderr.
package main

import (
	"bufio"
	"bytes"
	"errors"
	"flag"
	"fmt"
	"os"

	"unixhash/internal/core"
	"unixhash/internal/db"
	"unixhash/internal/trace"
)

func main() {
	bsize := flag.Int("bsize", 0, "bucket size for a new table")
	ffactor := flag.Int("ffactor", 0, "fill factor for a new table")
	nelem := flag.Int("nelem", 0, "expected final element count for a new table")
	cache := flag.Int("cache", 0, "buffer pool size in bytes")
	useWAL := flag.Bool("wal", false, "attach a write-ahead log (FILE.wal); required to create a transactional table")
	telemetry := flag.String("telemetry", "", "serve telemetry on this address while the command runs")
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) < 2 {
		usage()
		os.Exit(2)
	}
	path, cmd := args[0], args[1]
	rest := args[2:]

	readonly := cmd == "get" || cmd == "has" || cmd == "list" || cmd == "count" || cmd == "compact"
	opts := &core.Options{
		Bsize: *bsize, Ffactor: *ffactor, Nelem: *nelem, CacheSize: *cache,
		ReadOnly: readonly, WAL: *useWAL,
	}
	if *telemetry != "" {
		opts.Trace = trace.New(0)
		opts.TelemetryAddr = *telemetry
	}
	t, err := core.Open(path, opts)
	if err != nil {
		fatal(err)
	}
	if *telemetry != "" {
		fmt.Fprintf(os.Stderr, "hashcli: telemetry http://%s\n", t.TelemetryAddr())
	}
	defer func() {
		if err := t.Close(); err != nil {
			fatal(err)
		}
	}()

	need := func(n int) {
		if len(rest) != n {
			usage()
			os.Exit(2)
		}
	}
	switch cmd {
	case "put":
		need(2)
		if err := t.Put([]byte(rest[0]), []byte(rest[1])); err != nil {
			fatal(err)
		}
	case "putnew":
		need(2)
		if err := t.PutNew([]byte(rest[0]), []byte(rest[1])); err != nil {
			fatal(err)
		}
	case "get":
		need(1)
		v, err := t.Get([]byte(rest[0]))
		if errors.Is(err, core.ErrNotFound) {
			fmt.Fprintf(os.Stderr, "hashcli: %s: not found\n", rest[0])
			os.Exit(1)
		}
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s\n", v)
	case "del":
		need(1)
		if err := t.Delete([]byte(rest[0])); err != nil {
			fatal(err)
		}
	case "has":
		need(1)
		ok, err := t.Has([]byte(rest[0]))
		if err != nil {
			fatal(err)
		}
		if !ok {
			os.Exit(1)
		}
	case "list":
		need(0)
		w := bufio.NewWriter(os.Stdout)
		it := t.Iter()
		for it.Next() {
			fmt.Fprintf(w, "%s\t%s\n", it.Key(), it.Value())
		}
		if err := it.Err(); err != nil {
			fatal(err)
		}
		if err := w.Flush(); err != nil {
			fatal(err)
		}
	case "count":
		need(0)
		fmt.Println(t.Len())
	case "load":
		need(1)
		in := os.Stdin
		if rest[0] != "-" {
			f, err := os.Open(rest[0])
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			in = f
		}
		// The batch writer copies each pair into its staging arena, so the
		// scanner's reused line buffer is safe to hand straight in. Pass
		// -nelem when creating the target to presize it for the import.
		w := t.NewBatchWriter(0)
		sc := bufio.NewScanner(in)
		sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
		n, lineno := 0, 0
		for sc.Scan() {
			lineno++
			line := sc.Bytes()
			if len(line) == 0 {
				continue
			}
			key, val, ok := bytes.Cut(line, []byte{'\t'})
			if !ok || len(key) == 0 {
				fatal(fmt.Errorf("load: %s line %d: want KEY<TAB>VALUE", rest[0], lineno))
			}
			if err := w.Add(key, val); err != nil {
				fatal(err)
			}
			n++
		}
		if err := sc.Err(); err != nil {
			fatal(err)
		}
		if err := w.Flush(); err != nil {
			fatal(err)
		}
		fmt.Println(n)
	case "txn":
		// A sequence of `put K V` / `del K` groups, applied atomically:
		// either every op is durable after one log append + fsync, or
		// (on any parse or apply error) none of them happened. The verb
		// drives the transaction through the db.Txn interface — the
		// same surface dbcli and dbserver use — which the core
		// transaction satisfies directly.
		var x db.Txn
		x, err := t.Begin()
		if err != nil {
			fatal(err)
		}
		nops := 0
		for i := 0; i < len(rest); {
			switch rest[i] {
			case "put":
				if i+2 >= len(rest) {
					fatal(fmt.Errorf("txn: put needs KEY VALUE"))
				}
				if err := x.Put([]byte(rest[i+1]), []byte(rest[i+2])); err != nil {
					x.Rollback()
					fatal(err)
				}
				i += 3
			case "del":
				if i+1 >= len(rest) {
					fatal(fmt.Errorf("txn: del needs KEY"))
				}
				if err := x.Delete([]byte(rest[i+1])); err != nil {
					x.Rollback()
					fatal(err)
				}
				i += 2
			default:
				x.Rollback()
				fatal(fmt.Errorf("txn: want put K V or del K, got %q", rest[i]))
			}
			nops++
		}
		if err := x.Commit(); err != nil {
			fatal(err)
		}
		fmt.Printf("committed %d ops\n", nops)
	case "compact":
		need(1)
		g := t.Geometry()
		dst, err := core.Open(rest[0], &core.Options{
			Bsize: g.Bsize, Ffactor: g.Ffactor, Nelem: t.Len(), CacheSize: *cache,
		})
		if err != nil {
			fatal(err)
		}
		if err := t.Compact(dst); err != nil {
			dst.Close()
			fatal(err)
		}
		if err := dst.Close(); err != nil {
			fatal(err)
		}
		ng := g.MaxBucket + 1
		fmt.Printf("compacted %d keys into %s (%d buckets before)\n", t.Len(), rest[0], ng)
	default:
		usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "hashcli: %v\n", err)
	os.Exit(1)
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: hashcli [flags] file.db {put K V|putnew K V|get K|del K|has K|list|count|load FILE|compact NEW|txn {put K V|del K}...}`)
	flag.PrintDefaults()
}

package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"time"

	"unixhash/internal/db"
)

// maxCoalesce caps the write-coalescing buffer: this many consecutive
// pipelined PUTs collapse into one PutBatch call. It matches
// core.DefaultBatchSize so a full window is exactly one batched
// table-lock acquisition per shard.
const maxCoalesce = 4096

// conn serves one client connection. The loop reads pipelined
// commands, coalescing consecutive plain PUTs into a pending batch;
// the batch — and the reply buffer — flush when the pipeline window
// ends (no more request bytes in memory), when a non-PUT command
// arrives (replies must stay in request order, and a following GET
// must observe the writes), or when the batch is full.
type conn struct {
	srv *Server
	nc  net.Conn
	r   *reader
	w   *writer

	pending []db.Pair // coalesced PUTs not yet applied
	txn     db.Txn    // open transaction, or nil
	getBuf  []byte    // reused GetBuf storage
}

func (c *conn) serve() {
	defer func() {
		if c.txn != nil {
			c.txn.Rollback()
		}
		c.nc.Close()
		c.srv.connDone(c)
	}()
	for {
		if c.r.buffered() == 0 {
			// Pipeline-window boundary: everything the client has sent is
			// handled, so apply pending writes and push replies before
			// blocking on the network.
			c.flushPending()
			if c.w.Flush() != nil {
				return
			}
		}
		args, err := c.r.ReadCommand()
		if err != nil {
			c.readFailed(err)
			return
		}
		if args == nil { // blank line between commands
			continue
		}
		c.srv.mCmds.Inc()
		if !c.dispatch(args) {
			c.flushPending()
			c.w.Flush()
			return
		}
	}
}

// readFailed ends the loop on a read error: shutdown drain, clean
// disconnect, or protocol violation. Pending coalesced writes are
// applied in every case — the client pipelined them before the
// connection died, and the pipelining contract (below) promises
// acceptance once read.
func (c *conn) readFailed(err error) {
	c.flushPending()
	switch {
	case c.srv.draining() && errors.Is(err, os.ErrDeadlineExceeded):
		// Graceful shutdown nudged the blocked read. In-flight work is
		// done (the read was at a window boundary); say goodbye.
		c.w.Error("server shutting down")
	case errors.Is(err, io.EOF):
		// Clean close between commands.
	default:
		c.srv.mErrors.Inc()
		c.w.Error(err.Error())
	}
	c.w.Flush()
}

// dispatch executes one command, returning false to close the
// connection. Replies are buffered, not yet flushed.
func (c *conn) dispatch(args [][]byte) bool {
	cmd := asciiUpper(args[0])
	// Every command except a plain PUT is a coalescing barrier: the
	// pending batch must land first so replies stay ordered and reads
	// observe earlier pipelined writes.
	if cmd != "PUT" || c.txn != nil {
		c.flushPending()
	}
	switch cmd {
	case "GET":
		if !c.arity(args, 2) {
			return true
		}
		v, err := c.srv.db.GetBuf(args[1], c.getBuf)
		switch {
		case errors.Is(err, db.ErrNotFound):
			c.w.Nil()
		case err != nil:
			c.cmdErr(err)
		default:
			c.getBuf = v[:0]
			c.w.Bulk(v)
		}
	case "PUT":
		if !c.arity(args, 3) {
			return true
		}
		if c.txn != nil {
			if err := c.txn.Put(args[1], args[2]); err != nil {
				c.cmdErr(err)
			} else {
				c.w.Status("QUEUED")
			}
			return true
		}
		// Coalesce: park the pair, owe the +OK. The parser allocated the
		// argument slices, so they stay valid until the batch applies.
		c.pending = append(c.pending, db.Pair{Key: args[1], Data: args[2]})
		if len(c.pending) >= maxCoalesce {
			c.flushPending()
		}
	case "DEL":
		if !c.arity(args, 2) {
			return true
		}
		if c.txn != nil {
			if err := c.txn.Delete(args[1]); err != nil {
				c.cmdErr(err)
			} else {
				c.w.Status("QUEUED")
			}
			return true
		}
		switch err := c.srv.db.Delete(args[1]); {
		case errors.Is(err, db.ErrNotFound):
			c.w.Int(0)
		case err != nil:
			c.cmdErr(err)
		default:
			c.w.Int(1)
		}
	case "BATCH":
		c.batch(args)
	case "TXN":
		c.txnCmd(args)
	case "STATS":
		s, err := c.srv.db.Stats()
		if err != nil {
			c.cmdErr(err)
			return true
		}
		j, err := json.Marshal(s)
		if err != nil {
			c.cmdErr(err)
			return true
		}
		c.w.Bulk(j)
	case "PING":
		c.w.Status("PONG")
	case "QUIT":
		c.w.Status("OK")
		return false
	default:
		c.srv.mErrors.Inc()
		c.w.Error(fmt.Sprintf("unknown command %q", cmd))
	}
	return true
}

// batch applies BATCH k1 v1 [k2 v2 ...]: the explicit form of what
// coalescing does implicitly — one PutBatch, one reply (:n pairs).
func (c *conn) batch(args [][]byte) {
	if len(args) < 3 || len(args)%2 == 0 {
		c.srv.mErrors.Inc()
		c.w.Error("BATCH wants KEY VALUE pairs")
		return
	}
	pairs := make([]db.Pair, 0, (len(args)-1)/2)
	for i := 1; i < len(args); i += 2 {
		pairs = append(pairs, db.Pair{Key: args[i], Data: args[i+1]})
	}
	if err := c.srv.db.PutBatch(pairs); err != nil {
		c.cmdErr(err)
		return
	}
	c.srv.mBatchPuts.Add(int64(len(pairs)))
	c.w.Int(int64(len(pairs)))
}

// txnCmd handles TXN BEGIN|COMMIT|ROLLBACK. Between BEGIN and COMMIT,
// PUT and DEL queue into the transaction (+QUEUED) and become visible
// and durable as one unit at COMMIT; GET does not observe the
// transaction's own queued writes. On a sharded database the unit is
// per shard (see db.Sharded.Begin).
func (c *conn) txnCmd(args [][]byte) {
	if len(args) != 2 {
		c.srv.mErrors.Inc()
		c.w.Error("TXN wants BEGIN, COMMIT or ROLLBACK")
		return
	}
	switch asciiUpper(args[1]) {
	case "BEGIN":
		if c.txn != nil {
			c.srv.mErrors.Inc()
			c.w.Error("transaction already open")
			return
		}
		x, err := c.srv.db.Begin()
		if err != nil {
			c.cmdErr(err)
			return
		}
		c.txn = x
		c.w.Status("OK")
	case "COMMIT":
		if c.txn == nil {
			c.srv.mErrors.Inc()
			c.w.Error("no transaction")
			return
		}
		err := c.txn.Commit()
		c.txn = nil
		if err != nil {
			c.cmdErr(err)
			return
		}
		c.srv.mTxnCommits.Inc()
		c.w.Status("OK")
	case "ROLLBACK":
		if c.txn == nil {
			c.srv.mErrors.Inc()
			c.w.Error("no transaction")
			return
		}
		err := c.txn.Rollback()
		c.txn = nil
		if err != nil {
			c.cmdErr(err)
			return
		}
		c.w.Status("OK")
	default:
		c.srv.mErrors.Inc()
		c.w.Error("TXN wants BEGIN, COMMIT or ROLLBACK")
	}
}

// flushPending applies the coalesced PUTs as one PutBatch and writes
// the owed +OK replies. On failure every owed reply becomes the same
// -ERR: the batch is all-or-nothing per shard, and per-key blame is
// not available.
func (c *conn) flushPending() {
	if len(c.pending) == 0 {
		return
	}
	n := len(c.pending)
	err := c.srv.db.PutBatch(c.pending)
	c.pending = c.pending[:0]
	if err != nil {
		c.srv.mErrors.Inc()
		for i := 0; i < n; i++ {
			c.w.Error(err.Error())
		}
		return
	}
	if n > 1 {
		c.srv.mCoalesced.Add(int64(n))
	}
	for i := 0; i < n; i++ {
		c.w.Status("OK")
	}
}

// cmdErr reports a command-level failure: the connection survives, the
// client sees -ERR.
func (c *conn) cmdErr(err error) {
	c.srv.mErrors.Inc()
	c.w.Error(err.Error())
}

// arity checks the argument count, replying -ERR on mismatch.
func (c *conn) arity(args [][]byte, n int) bool {
	if len(args) != n {
		c.srv.mErrors.Inc()
		c.w.Error(fmt.Sprintf("%s wants %d arguments", asciiUpper(args[0]), n-1))
		return false
	}
	return true
}

// nudge unblocks a read parked on the network so the connection can
// notice a shutdown; the past deadline makes the read fail immediately
// with os.ErrDeadlineExceeded.
func (c *conn) nudge() { c.nc.SetReadDeadline(time.Unix(1, 0)) }

// asciiUpper returns the verb upper-cased without allocating for the
// already-upper-case common case.
func asciiUpper(b []byte) string {
	if !bytes.ContainsFunc(b, func(r rune) bool { return r >= 'a' && r <= 'z' }) {
		return string(b)
	}
	u := make([]byte, len(b))
	for i, c := range b {
		if c >= 'a' && c <= 'z' {
			c -= 'a' - 'A'
		}
		u[i] = c
	}
	return string(u)
}

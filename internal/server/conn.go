package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"time"

	"unixhash/internal/db"
	"unixhash/internal/oplog"
)

// maxCoalesce caps the write-coalescing buffer: this many consecutive
// pipelined PUTs collapse into one PutBatch call. It matches
// core.DefaultBatchSize so a full window is exactly one batched
// table-lock acquisition per shard.
const maxCoalesce = 4096

// conn serves one client connection. The loop reads pipelined
// commands, coalescing consecutive plain PUTs into a pending batch;
// the batch — and the reply buffer — flush when the pipeline window
// ends (no more request bytes in memory), when a non-PUT command
// arrives (replies must stay in request order, and a following GET
// must observe the writes), or when the batch is full.
type conn struct {
	srv *Server
	nc  net.Conn
	r   *reader
	w   *writer

	pending []db.Pair // coalesced PUTs not yet applied
	txn     db.Txn    // open transaction, or nil
	getBuf  []byte    // reused GetBuf storage

	// Op-ledger state, touched only when srv.rec is non-nil. led is the
	// per-command scratch ledger (one command runs at a time on a
	// connection); txnLed is pinned for the life of an open transaction
	// because BeginOp hands its address to the sub-transactions.
	led        oplog.Ledger
	txnLed     oplog.Ledger
	txnTracked bool  // txn was begun with txnLed attached
	pendSt     int64 // clock when the oldest pending PUT parked
}

// tracked reports whether this command should run under a ledger.
func (c *conn) tracked() bool { return c.srv.rec != nil && c.srv.opdb != nil }

func (c *conn) serve() {
	defer func() {
		if c.txn != nil {
			c.txn.Rollback()
		}
		c.nc.Close()
		c.srv.connDone(c)
	}()
	for {
		if c.r.buffered() == 0 {
			// Pipeline-window boundary: everything the client has sent is
			// handled, so apply pending writes and push replies before
			// blocking on the network.
			c.flushPending()
			if c.flushReplies() != nil {
				return
			}
		}
		// Parse attribution: only meaningful when the command's bytes are
		// already in memory — otherwise the read is network idle, not
		// parsing, and charging it would swamp every other phase.
		var parseSt int64
		timeParse := c.srv.rec != nil && c.r.buffered() > 0
		if timeParse {
			parseSt = oplog.Clock()
		}
		args, err := c.r.ReadCommand()
		if err != nil {
			c.readFailed(err)
			return
		}
		if args == nil { // blank line between commands
			continue
		}
		var parseNS int64
		if timeParse {
			parseNS = oplog.Clock() - parseSt
		}
		c.srv.mCmds.Inc()
		if !c.dispatch(args, parseNS) {
			c.flushPending()
			c.w.Flush()
			return
		}
	}
}

// flushReplies pushes buffered replies to the socket, attributing the
// write to a reply-phase ledger when attribution is on and the window
// actually owes bytes.
func (c *conn) flushReplies() error {
	if c.srv.rec == nil || c.w.buffered() == 0 {
		return c.w.Flush()
	}
	led := &c.led
	led.StartOp(oplog.CmdOther, nil)
	st := oplog.Clock()
	err := c.w.Flush()
	led.Since(oplog.PhaseReply, st)
	led.Finish()
	c.srv.rec.Record(led)
	return err
}

// readFailed ends the loop on a read error: shutdown drain, clean
// disconnect, or protocol violation. Pending coalesced writes are
// applied in every case — the client pipelined them before the
// connection died, and the pipelining contract (below) promises
// acceptance once read.
func (c *conn) readFailed(err error) {
	c.flushPending()
	switch {
	case c.srv.draining() && errors.Is(err, os.ErrDeadlineExceeded):
		// Graceful shutdown nudged the blocked read. In-flight work is
		// done (the read was at a window boundary); say goodbye.
		c.w.Error("server shutting down")
	case errors.Is(err, io.EOF):
		// Clean close between commands.
	default:
		c.srv.mErrors.Inc()
		c.w.Error(err.Error())
	}
	c.w.Flush()
}

// dispatch executes one command, returning false to close the
// connection. Replies are buffered, not yet flushed. parseNS is the
// command's attributable parse time (0 when attribution is off or the
// read blocked on the network).
func (c *conn) dispatch(args [][]byte, parseNS int64) bool {
	cmd := asciiUpper(args[0])
	// Every command except a plain PUT is a coalescing barrier: the
	// pending batch must land first so replies stay ordered and reads
	// observe earlier pipelined writes.
	if cmd != "PUT" || c.txn != nil {
		c.flushPending()
	}
	switch cmd {
	case "GET":
		if !c.arity(args, 2) {
			return true
		}
		var v []byte
		var err error
		if c.tracked() {
			led := &c.led
			led.StartOp(oplog.CmdGet, args[1])
			if parseNS > 0 {
				led.Add(oplog.PhaseParse, parseNS)
			}
			v, err = c.srv.opdb.GetBufOp(led, args[1], c.getBuf)
			led.Finish()
			c.srv.rec.Record(led)
		} else {
			v, err = c.srv.db.GetBuf(args[1], c.getBuf)
		}
		switch {
		case errors.Is(err, db.ErrNotFound):
			c.w.Nil()
		case err != nil:
			c.cmdErr(err)
		default:
			c.getBuf = v[:0]
			c.w.Bulk(v)
		}
	case "PUT":
		if !c.arity(args, 3) {
			return true
		}
		if c.txn != nil {
			if err := c.txn.Put(args[1], args[2]); err != nil {
				c.cmdErr(err)
			} else {
				c.w.Status("QUEUED")
			}
			return true
		}
		// Coalesce: park the pair, owe the +OK. The parser allocated the
		// argument slices, so they stay valid until the batch applies.
		// With attribution on, the batch ledger opens at the first park —
		// its elapsed time then brackets the coalesce wait flushPending
		// settles — and later parked PUTs fold their parse time in.
		if c.tracked() {
			if len(c.pending) == 0 {
				c.led.StartOp(oplog.CmdPut, args[1])
				c.pendSt = oplog.Clock()
			}
			if parseNS > 0 {
				c.led.Add(oplog.PhaseParse, parseNS)
			}
		}
		c.pending = append(c.pending, db.Pair{Key: args[1], Data: args[2]})
		if len(c.pending) >= maxCoalesce {
			c.flushPending()
		}
	case "DEL":
		if !c.arity(args, 2) {
			return true
		}
		if c.txn != nil {
			if err := c.txn.Delete(args[1]); err != nil {
				c.cmdErr(err)
			} else {
				c.w.Status("QUEUED")
			}
			return true
		}
		var err error
		if c.tracked() {
			led := &c.led
			led.StartOp(oplog.CmdDelete, args[1])
			if parseNS > 0 {
				led.Add(oplog.PhaseParse, parseNS)
			}
			err = c.srv.opdb.DeleteOp(led, args[1])
			led.Finish()
			c.srv.rec.Record(led)
		} else {
			err = c.srv.db.Delete(args[1])
		}
		switch {
		case errors.Is(err, db.ErrNotFound):
			c.w.Int(0)
		case err != nil:
			c.cmdErr(err)
		default:
			c.w.Int(1)
		}
	case "BATCH":
		c.batch(args, parseNS)
	case "TXN":
		c.txnCmd(args, parseNS)
	case "STATS":
		c.stats(parseNS)
	case "PING":
		c.w.Status("PONG")
	case "QUIT":
		c.w.Status("OK")
		return false
	default:
		c.srv.mErrors.Inc()
		c.w.Error(fmt.Sprintf("unknown command %q", cmd))
	}
	return true
}

// batch applies BATCH k1 v1 [k2 v2 ...]: the explicit form of what
// coalescing does implicitly — one PutBatch, one reply (:n pairs).
func (c *conn) batch(args [][]byte, parseNS int64) {
	if len(args) < 3 || len(args)%2 == 0 {
		c.srv.mErrors.Inc()
		c.w.Error("BATCH wants KEY VALUE pairs")
		return
	}
	pairs := make([]db.Pair, 0, (len(args)-1)/2)
	for i := 1; i < len(args); i += 2 {
		pairs = append(pairs, db.Pair{Key: args[i], Data: args[i+1]})
	}
	var err error
	if c.tracked() {
		led := &c.led
		led.StartOp(oplog.CmdBatch, pairs[0].Key)
		if parseNS > 0 {
			led.Add(oplog.PhaseParse, parseNS)
		}
		err = c.srv.opdb.PutBatchOp(led, pairs)
		led.Finish()
		c.srv.rec.Record(led)
	} else {
		err = c.srv.db.PutBatch(pairs)
	}
	if err != nil {
		c.cmdErr(err)
		return
	}
	c.srv.mBatchPuts.Add(int64(len(pairs)))
	c.w.Int(int64(len(pairs)))
}

// stats answers STATS with the database's JSON statistics; with
// attribution on, the document gains an "Oplog" member carrying the
// recorder's per-command phase summary.
func (c *conn) stats(parseNS int64) {
	led := &c.led
	if c.srv.rec != nil {
		led.StartOp(oplog.CmdStats, nil)
		if parseNS > 0 {
			led.Add(oplog.PhaseParse, parseNS)
		}
	}
	s, err := c.srv.db.Stats()
	if err != nil {
		c.cmdErr(err)
		return
	}
	var doc any = s
	if c.srv.rec != nil {
		sum := c.srv.rec.Snapshot()
		doc = struct {
			db.Stats
			Oplog *oplog.Summary
		}{s, &sum}
	}
	j, err := json.Marshal(doc)
	if err != nil {
		c.cmdErr(err)
		return
	}
	c.w.Bulk(j)
	if c.srv.rec != nil {
		led.Finish()
		c.srv.rec.Record(led)
	}
}

// txnCmd handles TXN BEGIN|COMMIT|ROLLBACK. Between BEGIN and COMMIT,
// PUT and DEL queue into the transaction (+QUEUED) and become visible
// and durable as one unit at COMMIT; GET does not observe the
// transaction's own queued writes. On a sharded database the unit is
// per shard (see db.Sharded.Begin).
func (c *conn) txnCmd(args [][]byte, parseNS int64) {
	if len(args) != 2 {
		c.srv.mErrors.Inc()
		c.w.Error("TXN wants BEGIN, COMMIT or ROLLBACK")
		return
	}
	switch asciiUpper(args[1]) {
	case "BEGIN":
		if c.txn != nil {
			c.srv.mErrors.Inc()
			c.w.Error("transaction already open")
			return
		}
		var x db.Txn
		var err error
		if c.tracked() {
			// The ledger is attached now (the sub-transactions hold its
			// address) but started at COMMIT, where the phases happen.
			x, err = c.srv.opdb.BeginOp(&c.txnLed)
			c.txnTracked = err == nil
		} else {
			x, err = c.srv.db.Begin()
			c.txnTracked = false
		}
		if err != nil {
			c.cmdErr(err)
			return
		}
		c.txn = x
		c.w.Status("OK")
	case "COMMIT":
		if c.txn == nil {
			c.srv.mErrors.Inc()
			c.w.Error("no transaction")
			return
		}
		tracked := c.txnTracked && c.srv.rec != nil
		led := &c.txnLed
		if tracked {
			led.StartOp(oplog.CmdTxn, nil)
			if parseNS > 0 {
				led.Add(oplog.PhaseParse, parseNS)
			}
		}
		err := c.txn.Commit()
		if tracked {
			led.Finish()
			c.srv.rec.Record(led)
		}
		c.txn = nil
		c.txnTracked = false
		if err != nil {
			c.cmdErr(err)
			return
		}
		c.srv.mTxnCommits.Inc()
		c.w.Status("OK")
	case "ROLLBACK":
		if c.txn == nil {
			c.srv.mErrors.Inc()
			c.w.Error("no transaction")
			return
		}
		err := c.txn.Rollback()
		c.txn = nil
		if err != nil {
			c.cmdErr(err)
			return
		}
		c.w.Status("OK")
	default:
		c.srv.mErrors.Inc()
		c.w.Error("TXN wants BEGIN, COMMIT or ROLLBACK")
	}
}

// flushPending applies the coalesced PUTs as one PutBatch and writes
// the owed +OK replies. On failure every owed reply becomes the same
// -ERR: the batch is all-or-nothing per shard, and per-key blame is
// not available.
func (c *conn) flushPending() {
	if len(c.pending) == 0 {
		return
	}
	n := len(c.pending)
	var err error
	if c.tracked() {
		// One ledger stands for the whole coalesced batch: it opened at
		// the first park (the dispatch PUT case), so the wait the PUTs
		// spent parked is the coalesce phase (counted once per pair) and
		// the db phases below are the batch's own.
		led := &c.led
		led.AddN(oplog.PhaseCoalesce, oplog.Clock()-c.pendSt, n)
		err = c.srv.opdb.PutBatchOp(led, c.pending)
		led.Finish()
		c.srv.rec.Record(led)
	} else {
		err = c.srv.db.PutBatch(c.pending)
	}
	c.pending = c.pending[:0]
	if err != nil {
		c.srv.mErrors.Inc()
		for i := 0; i < n; i++ {
			c.w.Error(err.Error())
		}
		return
	}
	if n > 1 {
		c.srv.mCoalesced.Add(int64(n))
	}
	for i := 0; i < n; i++ {
		c.w.Status("OK")
	}
}

// cmdErr reports a command-level failure: the connection survives, the
// client sees -ERR.
func (c *conn) cmdErr(err error) {
	c.srv.mErrors.Inc()
	c.w.Error(err.Error())
}

// arity checks the argument count, replying -ERR on mismatch.
func (c *conn) arity(args [][]byte, n int) bool {
	if len(args) != n {
		c.srv.mErrors.Inc()
		c.w.Error(fmt.Sprintf("%s wants %d arguments", asciiUpper(args[0]), n-1))
		return false
	}
	return true
}

// nudge unblocks a read parked on the network so the connection can
// notice a shutdown; the past deadline makes the read fail immediately
// with os.ErrDeadlineExceeded.
func (c *conn) nudge() { c.nc.SetReadDeadline(time.Unix(1, 0)) }

// asciiUpper returns the verb upper-cased without allocating for the
// already-upper-case common case.
func asciiUpper(b []byte) string {
	if !bytes.ContainsFunc(b, func(r rune) bool { return r >= 'a' && r <= 'z' }) {
		return string(b)
	}
	u := make([]byte, len(b))
	for i, c := range b {
		if c >= 'a' && c <= 'z' {
			c -= 'a' - 'A'
		}
		u[i] = c
	}
	return string(u)
}

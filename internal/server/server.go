package server

import (
	"errors"
	"fmt"
	"net"
	"sync"

	"unixhash/internal/db"
	"unixhash/internal/metrics"
	"unixhash/internal/oplog"
)

// Options configures Serve.
type Options struct {
	// DB is the database the server fronts. Required. For parallel
	// write throughput this should be a db.Sharded database: the
	// server's coalesced writes apply as PutBatch calls, which take
	// each table's lock exclusively — one table serializes them, N
	// shards run N at once.
	DB db.DB
	// Metrics, when non-nil, receives the server_* series (connection
	// and command counters). Pass the same registry the database's
	// shards aggregate into and one /metrics page carries the whole
	// stack, storage to sockets.
	Metrics *metrics.Registry
	// Oplog, when non-nil, turns on per-request phase attribution:
	// every command runs under an op ledger (parse, coalesce wait,
	// shard route, latch wait, WAL, buffer pool, reply write) recorded
	// into this recorder. Requires a DB implementing db.OpDB (the hash
	// shapes do); otherwise the option is ignored. Nil keeps the
	// zero-overhead path: no ledger is ever touched.
	Oplog *oplog.Recorder
}

// Server is a listening network front end. Close stops it gracefully:
// the listener closes, every blocked connection is nudged awake, each
// applies its in-flight work (pending coalesced writes included) and
// says goodbye, and Close returns when the last one has drained.
type Server struct {
	db   db.DB
	ln   net.Listener
	rec  *oplog.Recorder // nil: attribution off
	opdb db.OpDB         // non-nil iff rec is set and db carries ledgers

	mu     sync.Mutex
	conns  map[*conn]struct{}
	closed bool
	wg     sync.WaitGroup

	mConns      *metrics.Counter
	mActive     *metrics.Gauge
	mCmds       *metrics.Counter
	mErrors     *metrics.Counter
	mCoalesced  *metrics.Counter
	mBatchPuts  *metrics.Counter
	mTxnCommits *metrics.Counter
}

// Serve starts listening on addr ("host:port"; ":0" picks a free port,
// read it back with Addr) and serves o.DB until Close.
func Serve(addr string, o Options) (*Server, error) {
	if o.DB == nil {
		return nil, errors.New("server: Options.DB is required")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	s := &Server{db: o.DB, ln: ln, conns: make(map[*conn]struct{})}
	if o.Oplog != nil {
		if od, ok := o.DB.(db.OpDB); ok {
			s.rec, s.opdb = o.Oplog, od
		}
	}
	reg := o.Metrics
	if reg == nil {
		reg = metrics.New() // private sink: the counters still work
	}
	reg.Help("server_conns_total", "Connections accepted")
	s.mConns = reg.Counter("server_conns_total")
	reg.Help("server_conns_active", "Connections currently open")
	s.mActive = reg.Gauge("server_conns_active")
	reg.Help("server_cmds_total", "Commands executed")
	s.mCmds = reg.Counter("server_cmds_total")
	reg.Help("server_errors_total", "Commands answered with -ERR")
	s.mErrors = reg.Counter("server_errors_total")
	reg.Help("server_puts_coalesced_total", "PUTs applied through a coalesced batch")
	s.mCoalesced = reg.Counter("server_puts_coalesced_total")
	reg.Help("server_batch_puts_total", "Pairs applied through explicit BATCH commands")
	s.mBatchPuts = reg.Counter("server_batch_puts_total")
	reg.Help("server_txn_commits_total", "TXN COMMIT commands that succeeded")
	s.mTxnCommits = reg.Counter("server_txn_commits_total")

	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listener's resolved address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		c := &conn{srv: s, nc: nc, r: newReader(nc), w: newWriter(nc)}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			nc.Close()
			return
		}
		s.conns[c] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		s.mConns.Inc()
		s.mActive.Add(1)
		go c.serve()
	}
}

// connDone unregisters a finished connection.
func (s *Server) connDone(c *conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
	s.mActive.Add(-1)
	s.wg.Done()
}

// draining reports whether Close has begun; connections use it to tell
// a shutdown nudge from a real timeout.
func (s *Server) draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Close stops accepting, wakes every connection parked on a read, and
// waits for all of them to drain: a connection mid-command finishes
// it, applies any pending coalesced writes, flushes its replies, and
// exits. The database is not closed — the caller owns it and typically
// wants a final Sync after the server is quiet.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for c := range s.conns {
		c.nudge()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

package server

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"unixhash/internal/core"
	"unixhash/internal/db"
	"unixhash/internal/metrics"
)

// client is a minimal test-side speaker of the wire protocol.
type client struct {
	t  *testing.T
	nc net.Conn
	bw *bufio.Writer
	br *bufio.Reader
}

func dial(t *testing.T, addr string) *client {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	return &client{t: t, nc: nc, bw: bufio.NewWriter(nc), br: bufio.NewReader(nc)}
}

// send queues one command in array framing without flushing, so tests
// control the pipeline window explicitly.
func (c *client) send(args ...string) {
	fmt.Fprintf(c.bw, "*%d\r\n", len(args))
	for _, a := range args {
		fmt.Fprintf(c.bw, "$%d\r\n%s\r\n", len(a), a)
	}
}

// recv flushes queued commands and reads one reply, rendered as
// "+OK", "-ERR ...", ":3", "$hello" or "$nil".
func (c *client) recv() string {
	c.t.Helper()
	if err := c.bw.Flush(); err != nil {
		c.t.Fatal(err)
	}
	line, err := c.br.ReadString('\n')
	if err != nil {
		c.t.Fatalf("recv: %v", err)
	}
	line = strings.TrimRight(line, "\r\n")
	if !strings.HasPrefix(line, "$") {
		return line
	}
	var n int
	if _, err := fmt.Sscanf(line, "$%d", &n); err != nil {
		c.t.Fatalf("bad bulk header %q", line)
	}
	if n < 0 {
		return "$nil"
	}
	buf := make([]byte, n+2)
	if _, err := ioReadFull(c.br, buf); err != nil {
		c.t.Fatal(err)
	}
	return "$" + string(buf[:n])
}

func ioReadFull(r *bufio.Reader, buf []byte) (int, error) {
	n := 0
	for n < len(buf) {
		m, err := r.Read(buf[n:])
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// do is send-then-recv for unpipelined use.
func (c *client) do(args ...string) string {
	c.t.Helper()
	c.send(args...)
	return c.recv()
}

func (c *client) expect(want string, args ...string) {
	c.t.Helper()
	if got := c.do(args...); got != want {
		c.t.Fatalf("%v = %q, want %q", args, got, want)
	}
}

func startServer(t *testing.T, d db.DB, reg *metrics.Registry) *Server {
	t.Helper()
	s, err := Serve("127.0.0.1:0", Options{DB: d, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestServerBasicCommands(t *testing.T) {
	d, err := db.OpenSharded("", 4, &db.Config{Hash: &core.Options{WAL: true}})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	s := startServer(t, d, nil)
	c := dial(t, s.Addr())

	c.expect("+PONG", "PING")
	c.expect("$nil", "GET", "missing")
	c.expect("+OK", "PUT", "alpha", "one")
	c.expect("$one", "GET", "alpha")
	c.expect(":1", "DEL", "alpha")
	c.expect(":0", "DEL", "alpha")
	c.expect(":3", "BATCH", "a", "1", "b", "2", "c", "3")
	c.expect("$2", "GET", "b")
	if got := c.do("STATS"); !strings.Contains(got, `"Shards"`) {
		t.Fatalf("STATS = %.120q, want per-shard breakdown", got)
	}
	if got := c.do("NOPE"); !strings.HasPrefix(got, "-ERR") {
		t.Fatalf("unknown command = %q", got)
	}
	if got := c.do("PUT", "only-key"); !strings.HasPrefix(got, "-ERR") {
		t.Fatalf("bad arity = %q", got)
	}
	c.expect("+OK", "QUIT")
}

func TestServerInlineCommands(t *testing.T) {
	d, err := db.OpenSharded("", 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	s := startServer(t, d, nil)
	c := dial(t, s.Addr())

	fmt.Fprintf(c.bw, "put k v\r\n") // lower case, inline framing
	if got := c.recv(); got != "+OK" {
		t.Fatalf("inline put = %q", got)
	}
	fmt.Fprintf(c.bw, "GET k\r\n")
	if got := c.recv(); got != "$v" {
		t.Fatalf("inline get = %q", got)
	}
}

func TestServerPipelining(t *testing.T) {
	reg := metrics.New()
	d, err := db.OpenSharded("", 4, &db.Config{Hash: &core.Options{Metrics: reg}})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	s := startServer(t, d, reg)
	c := dial(t, s.Addr())

	// One pipeline window: a run of PUTs (coalesced into one batch), a
	// GET that must observe them, more PUTs, and a final read. Replies
	// come back strictly in request order.
	const run = 50
	for i := 0; i < run; i++ {
		c.send("PUT", fmt.Sprintf("p%02d", i), "v")
	}
	c.send("GET", "p17")
	c.send("PUT", "tail", "end")
	c.send("GET", "tail")
	for i := 0; i < run; i++ {
		if got := c.recv(); got != "+OK" {
			t.Fatalf("pipelined PUT %d = %q", i, got)
		}
	}
	if got := c.recv(); got != "$v" {
		t.Fatalf("pipelined GET after PUT run = %q (read-your-writes broken)", got)
	}
	if got := c.recv(); got != "+OK" {
		t.Fatalf("tail PUT = %q", got)
	}
	if got := c.recv(); got != "$end" {
		t.Fatalf("tail GET = %q", got)
	}

	// The PUT run must have been coalesced, not applied one by one.
	coalesced := reg.Snapshot().Counter("server_puts_coalesced_total")
	if coalesced < run {
		t.Fatalf("server_puts_coalesced_total = %d, want >= %d", coalesced, run)
	}
}

func TestServerTxnAtomicityAcrossConnections(t *testing.T) {
	d, err := db.OpenSharded("", 4, &db.Config{Hash: &core.Options{WAL: true}})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	s := startServer(t, d, nil)
	writer := dial(t, s.Addr())
	reader := dial(t, s.Addr())

	writer.expect("+OK", "TXN", "BEGIN")
	for i := 0; i < 16; i++ {
		writer.expect("+QUEUED", "PUT", fmt.Sprintf("t%02d", i), "v")
	}
	// A second connection must not see any queued write before commit.
	reader.expect("$nil", "GET", "t00")
	reader.expect("$nil", "GET", "t15")
	writer.expect("+OK", "TXN", "COMMIT")
	// After commit every write is visible to everyone.
	reader.expect("$v", "GET", "t00")
	reader.expect("$v", "GET", "t15")

	// Rollback discards.
	writer.expect("+OK", "TXN", "BEGIN")
	writer.expect("+QUEUED", "PUT", "ghost", "boo")
	writer.expect("+OK", "TXN", "ROLLBACK")
	reader.expect("$nil", "GET", "ghost")

	// Txn misuse is a command error, not a dead connection.
	if got := writer.do("TXN", "COMMIT"); !strings.HasPrefix(got, "-ERR") {
		t.Fatalf("commit without begin = %q", got)
	}
	writer.expect("+PONG", "PING")
}

func TestServerTxnWithoutWAL(t *testing.T) {
	d, err := db.OpenSharded("", 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	s := startServer(t, d, nil)
	c := dial(t, s.Addr())
	if got := c.do("TXN", "BEGIN"); !strings.Contains(got, "write-ahead log") && !strings.HasPrefix(got, "-ERR") {
		t.Fatalf("TXN BEGIN without WAL = %q, want -ERR", got)
	}
	c.expect("+PONG", "PING") // connection survives
}

func TestServerShutdownDrains(t *testing.T) {
	d, err := db.OpenSharded("", 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	s, err := Serve("127.0.0.1:0", Options{DB: d})
	if err != nil {
		t.Fatal(err)
	}
	c := dial(t, s.Addr())
	// Park a pipeline the server has read but whose window hasn't been
	// answered when Close lands: the writes must still apply.
	for i := 0; i < 20; i++ {
		c.send("PUT", fmt.Sprintf("d%02d", i), "v")
	}
	if err := c.bw.Flush(); err != nil {
		t.Fatal(err)
	}
	// Give the server a moment to absorb the window, then close.
	time.Sleep(50 * time.Millisecond)
	closed := make(chan error, 1)
	go func() { closed <- s.Close() }()
	select {
	case err := <-closed:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not drain")
	}
	// Every pipelined write landed before the server went quiet.
	if n := d.Len(); n != 20 {
		t.Fatalf("after drain Len = %d, want 20", n)
	}
	// And the client got its replies before the goodbye.
	for i := 0; i < 20; i++ {
		if got := c.recv(); got != "+OK" {
			t.Fatalf("drained reply %d = %q", i, got)
		}
	}
}

func TestServerConcurrentConnections(t *testing.T) {
	reg := metrics.New()
	d, err := db.OpenSharded("", 8, &db.Config{Hash: &core.Options{Metrics: reg, WAL: true}})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	s := startServer(t, d, reg)

	const (
		conns = 8
		ops   = 300
	)
	var wg sync.WaitGroup
	errs := make(chan error, conns)
	for w := 0; w < conns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			nc, err := net.Dial("tcp", s.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer nc.Close()
			bw := bufio.NewWriter(nc)
			br := bufio.NewReader(nc)
			// Pipelined writes, a txn, then verify reads — all raw so the
			// workers stay independent of testing.T.
			for i := 0; i < ops; i++ {
				fmt.Fprintf(bw, "PUT w%d-%03d v%d\r\n", w, i, i)
			}
			fmt.Fprintf(bw, "TXN BEGIN\r\nPUT w%d-txn committed\r\nTXN COMMIT\r\n", w)
			bw.Flush()
			for i := 0; i < ops+3; i++ {
				if _, err := br.ReadString('\n'); err != nil {
					errs <- fmt.Errorf("worker %d reply %d: %w", w, i, err)
					return
				}
			}
			for _, probe := range []string{fmt.Sprintf("w%d-000", w), fmt.Sprintf("w%d-txn", w)} {
				fmt.Fprintf(bw, "GET %s\r\n", probe)
				bw.Flush()
				head, err := br.ReadString('\n')
				if err != nil || strings.HasPrefix(head, "$-1") || strings.HasPrefix(head, "-") {
					errs <- fmt.Errorf("worker %d GET %s = %q, %v", w, probe, head, err)
					return
				}
				var n int
				fmt.Sscanf(head, "$%d", &n)
				if _, err := ioReadFull(br, make([]byte, n+2)); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if n := d.Len(); n != conns*(ops+1) {
		t.Fatalf("Len = %d, want %d", n, conns*(ops+1))
	}
}

func TestServerProtocolErrors(t *testing.T) {
	d, err := db.OpenSharded("", 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	s := startServer(t, d, nil)

	// A malformed array header poisons the stream: -ERR then close.
	nc, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	fmt.Fprintf(nc, "*notanumber\r\n")
	br := bufio.NewReader(nc)
	line, err := br.ReadString('\n')
	if err != nil || !strings.HasPrefix(line, "-ERR") {
		t.Fatalf("malformed header reply = %q, %v", line, err)
	}
	if _, err := br.ReadString('\n'); err == nil {
		t.Fatal("connection survived a framing error")
	}
}

// Package server is the network front end: a concurrent key/data
// server that speaks a small RESP-like text protocol over TCP and
// serves a db.DB — in production a db.Sharded database, so that N
// shards (each its own WAL-backed hash table and buffer pool) absorb
// writes from many connections in parallel instead of serializing on
// one table lock.
//
// # Wire protocol
//
// Requests are commands; a command is an array of bulk strings in the
// RESP framing, or a space-separated inline line for hand-typed use:
//
//	*3\r\n$3\r\nPUT\r\n$1\r\nk\r\n$1\r\nv\r\n
//	PUT k v\r\n
//
// Inline commands cannot carry spaces or CR/LF in arguments; the array
// form is binary-clean. Replies are typed by their first byte:
//
//	+OK\r\n          status
//	-ERR message\r\n error
//	:12\r\n          integer
//	$5\r\nhello\r\n  bulk value
//	$-1\r\n          nil (key not found)
//
// Commands: GET k · PUT k v · DEL k · BATCH k1 v1 [k2 v2 ...] ·
// TXN BEGIN|COMMIT|ROLLBACK · STATS · PING · QUIT. See conn.go for
// their semantics, pipelining, and the write-coalescing rules.
package server

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
)

// Framing limits: a command that exceeds them is a protocol error and
// closes the connection (the stream position can no longer be trusted).
const (
	// maxArgs bounds one command's argument count. BATCH is the widest
	// command: core.DefaultBatchSize pairs plus the verb.
	maxArgs = 2*4096 + 1
	// maxBulk bounds one bulk string (a key or value).
	maxBulk = 8 << 20
	// readerSize is the connection read-buffer size; it also bounds one
	// inline command line.
	readerSize = 64 << 10
)

// errProtocol marks unrecoverable framing errors; the connection is
// closed after reporting one.
var errProtocol = errors.New("protocol error")

// reader parses the request stream. Argument slices are freshly
// allocated per command: callers may retain them (the coalescing
// buffer does, across commands, until its batch flushes).
type reader struct {
	br *bufio.Reader
}

func newReader(r io.Reader) *reader {
	return &reader{br: bufio.NewReaderSize(r, readerSize)}
}

// buffered reports how many request bytes are already in memory; zero
// means the next ReadCommand will block on the network, which is the
// pipeline-window boundary the connection flushes at.
func (r *reader) buffered() int { return r.br.Buffered() }

// ReadCommand reads one command, in either framing. io.EOF is returned
// bare for a clean close between commands; inside a command it becomes
// ErrUnexpectedEOF.
func (r *reader) ReadCommand() ([][]byte, error) {
	line, err := r.readLine()
	if err != nil {
		return nil, err
	}
	if len(line) == 0 { // bare CRLF between commands: tolerate
		return nil, nil
	}
	if line[0] != '*' {
		return splitInline(line), nil
	}
	n, err := parseInt(line[1:])
	if err != nil || n < 1 || n > maxArgs {
		return nil, fmt.Errorf("%w: bad array header %q", errProtocol, line)
	}
	args := make([][]byte, n)
	for i := range args {
		if args[i], err = r.readBulk(); err != nil {
			return nil, err
		}
	}
	return args, nil
}

// readBulk reads one $-framed string: a length line, the payload, and
// its trailing CRLF.
func (r *reader) readBulk() ([]byte, error) {
	line, err := r.readLine()
	if err != nil {
		return nil, inCommand(err)
	}
	if len(line) == 0 || line[0] != '$' {
		return nil, fmt.Errorf("%w: want bulk header, got %q", errProtocol, line)
	}
	n, err := parseInt(line[1:])
	if err != nil || n < 0 || n > maxBulk {
		return nil, fmt.Errorf("%w: bad bulk length %q", errProtocol, line)
	}
	buf := make([]byte, n+2)
	if _, err := io.ReadFull(r.br, buf); err != nil {
		return nil, inCommand(err)
	}
	if buf[n] != '\r' || buf[n+1] != '\n' {
		return nil, fmt.Errorf("%w: bulk string missing CRLF terminator", errProtocol)
	}
	return buf[:n:n], nil
}

// readLine reads up to CRLF (LF alone is accepted for hand-typed
// sessions) and strips the terminator. A line longer than the read
// buffer is a protocol error.
func (r *reader) readLine() ([]byte, error) {
	line, err := r.br.ReadSlice('\n')
	if err != nil {
		if errors.Is(err, bufio.ErrBufferFull) {
			return nil, fmt.Errorf("%w: line exceeds %d bytes", errProtocol, readerSize)
		}
		return nil, err
	}
	line = line[:len(line)-1]
	if len(line) > 0 && line[len(line)-1] == '\r' {
		line = line[:len(line)-1]
	}
	out := make([]byte, len(line))
	copy(out, line)
	return out, nil
}

// inCommand upgrades a mid-command EOF so callers can distinguish a
// clean close from a truncated request.
func inCommand(err error) error {
	if errors.Is(err, io.EOF) {
		return io.ErrUnexpectedEOF
	}
	return err
}

// splitInline tokenizes an inline command on runs of spaces.
func splitInline(line []byte) [][]byte {
	var args [][]byte
	i := 0
	for i < len(line) {
		for i < len(line) && line[i] == ' ' {
			i++
		}
		j := i
		for j < len(line) && line[j] != ' ' {
			j++
		}
		if j > i {
			args = append(args, line[i:j:j])
		}
		i = j
	}
	return args
}

// parseInt is strconv.Atoi over a byte slice without the string copy.
func parseInt(b []byte) (int, error) {
	if len(b) == 0 {
		return 0, strconv.ErrSyntax
	}
	neg := false
	if b[0] == '-' {
		neg = true
		b = b[1:]
		if len(b) == 0 {
			return 0, strconv.ErrSyntax
		}
	}
	n := 0
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, strconv.ErrSyntax
		}
		n = n*10 + int(c-'0')
		if n > 1<<40 {
			return 0, strconv.ErrRange
		}
	}
	if neg {
		n = -n
	}
	return n, nil
}

// writer emits replies into a buffered stream; the connection decides
// when to Flush (at pipeline-window boundaries, not per reply).
type writer struct {
	bw  *bufio.Writer
	num [24]byte // scratch for integer formatting
}

func newWriter(w io.Writer) *writer {
	return &writer{bw: bufio.NewWriterSize(w, readerSize)}
}

func (w *writer) Flush() error { return w.bw.Flush() }

// buffered reports how many reply bytes await a Flush; the connection
// uses it to skip reply-write attribution for an empty window.
func (w *writer) buffered() int { return w.bw.Buffered() }

func (w *writer) Status(s string) {
	w.bw.WriteByte('+')
	w.bw.WriteString(s)
	w.bw.WriteString("\r\n")
}

// Error writes an -ERR reply; CR/LF in the message would break framing,
// so they are replaced.
func (w *writer) Error(msg string) {
	w.bw.WriteString("-ERR ")
	for i := 0; i < len(msg); i++ {
		if c := msg[i]; c == '\r' || c == '\n' {
			w.bw.WriteByte(' ')
		} else {
			w.bw.WriteByte(c)
		}
	}
	w.bw.WriteString("\r\n")
}

func (w *writer) Int(n int64) {
	w.bw.WriteByte(':')
	w.bw.Write(strconv.AppendInt(w.num[:0], n, 10))
	w.bw.WriteString("\r\n")
}

func (w *writer) Bulk(b []byte) {
	w.bw.WriteByte('$')
	w.bw.Write(strconv.AppendInt(w.num[:0], int64(len(b)), 10))
	w.bw.WriteString("\r\n")
	w.bw.Write(b)
	w.bw.WriteString("\r\n")
}

func (w *writer) Nil() { w.bw.WriteString("$-1\r\n") }

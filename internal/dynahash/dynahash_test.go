package dynahash

import (
	"fmt"
	"math/rand"
	"testing"
)

func TestEnterFind(t *testing.T) {
	tbl := New(1, 0)
	const n = 10000
	for i := 0; i < n; i++ {
		tbl.Enter(fmt.Sprintf("key%d", i), []byte(fmt.Sprintf("v%d", i)))
	}
	if tbl.Len() != n {
		t.Fatalf("Len = %d", tbl.Len())
	}
	for i := 0; i < n; i++ {
		got, ok := tbl.Find(fmt.Sprintf("key%d", i))
		if !ok || string(got) != fmt.Sprintf("v%d", i) {
			t.Fatalf("Find %d = %q, %v", i, got, ok)
		}
	}
	if _, ok := tbl.Find("missing"); ok {
		t.Fatal("found missing key")
	}
}

func TestGrowsUnboundedUnlikeHsearch(t *testing.T) {
	// nelem is only a hint: the table keeps growing past it.
	tbl := New(8, 2)
	for i := 0; i < 5000; i++ {
		tbl.Enter(fmt.Sprintf("key%d", i), nil)
	}
	if tbl.Len() != 5000 {
		t.Fatalf("Len = %d", tbl.Len())
	}
	if tbl.Splits == 0 {
		t.Fatal("table never split")
	}
}

func TestControlledSplittingBoundsLoad(t *testing.T) {
	const ff = 4
	tbl := New(1, ff)
	for i := 0; i < 20000; i++ {
		tbl.Enter(fmt.Sprintf("key-%d", i), nil)
	}
	load := float64(tbl.Len()) / float64(tbl.Buckets())
	if load > ff+1 {
		t.Fatalf("load factor %.2f exceeds fill factor %d", load, ff)
	}
	// Chains stay short when the hash behaves: generous bound.
	if mc := tbl.MaxChain(); mc > ff*16 {
		t.Fatalf("longest chain %d for fill factor %d", mc, ff)
	}
}

func TestPresizingReducesSplits(t *testing.T) {
	grown := New(1, 5)
	sized := New(10000, 5)
	for i := 0; i < 10000; i++ {
		k := fmt.Sprintf("key%d", i)
		grown.Enter(k, nil)
		sized.Enter(k, nil)
	}
	if sized.Splits >= grown.Splits {
		t.Fatalf("pre-sized table split %d times, grown %d", sized.Splits, grown.Splits)
	}
}

func TestEnterReplaces(t *testing.T) {
	tbl := New(10, 0)
	tbl.Enter("k", []byte("v1"))
	tbl.Enter("k", []byte("v2"))
	if tbl.Len() != 1 {
		t.Fatalf("Len = %d", tbl.Len())
	}
	got, _ := tbl.Find("k")
	if string(got) != "v2" {
		t.Fatalf("Find = %q", got)
	}
}

func TestDelete(t *testing.T) {
	tbl := New(100, 0)
	for i := 0; i < 1000; i++ {
		tbl.Enter(fmt.Sprintf("key%d", i), nil)
	}
	for i := 0; i < 1000; i += 2 {
		if !tbl.Delete(fmt.Sprintf("key%d", i)) {
			t.Fatalf("Delete %d failed", i)
		}
	}
	if tbl.Len() != 500 {
		t.Fatalf("Len = %d", tbl.Len())
	}
	if tbl.Delete("key0") {
		t.Fatal("double delete succeeded")
	}
	for i := 1; i < 1000; i += 2 {
		if _, ok := tbl.Find(fmt.Sprintf("key%d", i)); !ok {
			t.Fatalf("kept key%d lost", i)
		}
	}
}

func TestModelEquivalence(t *testing.T) {
	tbl := New(4, 3)
	rng := rand.New(rand.NewSource(17))
	model := map[string]string{}
	for op := 0; op < 10000; op++ {
		k := fmt.Sprintf("k%d", rng.Intn(700))
		switch rng.Intn(3) {
		case 0, 1:
			v := fmt.Sprintf("v%d", op)
			tbl.Enter(k, []byte(v))
			model[k] = v
		case 2:
			ok := tbl.Delete(k)
			if _, in := model[k]; in != ok {
				t.Fatalf("op %d: Delete(%q) = %v, model %v", op, k, ok, in)
			}
			delete(model, k)
		}
		if tbl.Len() != len(model) {
			t.Fatalf("op %d: Len = %d, model %d", op, tbl.Len(), len(model))
		}
	}
	seen := 0
	tbl.ForEach(func(k string, v []byte) bool {
		want, ok := model[k]
		if !ok || want != string(v) {
			t.Fatalf("ForEach saw %q=%q, model %q,%v", k, v, want, ok)
		}
		seen++
		return true
	})
	if seen != len(model) {
		t.Fatalf("ForEach visited %d, model %d", seen, len(model))
	}
}

func TestSegmentedDirectoryGrowth(t *testing.T) {
	tbl := New(1, 1)
	for i := 0; i < 3000; i++ {
		tbl.Enter(fmt.Sprintf("key%d", i), nil)
	}
	if tbl.Buckets() <= segmentSize {
		t.Fatalf("table with ffactor 1 and 3000 keys has only %d buckets", tbl.Buckets())
	}
	if len(tbl.directory) < 2 {
		t.Fatalf("directory never grew past one segment (%d buckets)", tbl.Buckets())
	}
}

// Package dynahash is a clean-room Go port of Esmond Pitt's dynahash
// library as the paper describes it: Larson's in-memory adaptation
// [LAR88] of linear hashing [LIT80] behind an hsearch-compatible
// interface.
//
// The table begins as a single bucket and grows in generations, each
// generation doubling the table by splitting every bucket that existed
// at its start. Buckets are linked lists of elements; the directory of
// bucket pointers is arranged in segments of 256. Splitting is purely
// controlled: a bucket is split whenever the number of keys divided by
// the number of buckets exceeds the fill factor — the half of the hybrid
// policy that the new package combines with dbm-style overflow splitting.
//
// Since the hsearch create interface calls for an estimate of the final
// table size (nelem), dynahash rounds it to the next higher power of two
// for the initial bucket count.
package dynahash

import (
	"unixhash/internal/hashfunc"
)

// DefaultFfactor is the default number of keys per bucket tolerated
// before a split.
const DefaultFfactor = 5

const (
	segmentSize  = 256 // bucket pointers per directory segment
	segmentShift = 8
)

type element struct {
	key  string
	data []byte
	next *element
}

// Table is a dynahash hash table.
type Table struct {
	directory [][]*element // segments of bucket heads

	maxBucket uint32 // highest bucket in use
	lowMask   uint32
	highMask  uint32
	ffactor   int
	count     int
	hash      hashfunc.Func

	// Splits counts bucket splits for the comparison harness.
	Splits int64
}

// New creates a table pre-sized for about nelem elements, with the given
// fill factor (<=0 selects DefaultFfactor).
func New(nelem, ffactor int) *Table {
	if ffactor <= 0 {
		ffactor = DefaultFfactor
	}
	if nelem < 1 {
		nelem = 1
	}
	nbuckets := nextPow2(uint32((nelem + ffactor - 1) / ffactor))
	t := &Table{
		ffactor:   ffactor,
		hash:      hashfunc.Default,
		maxBucket: nbuckets - 1,
		lowMask:   nbuckets - 1,
		highMask:  nbuckets<<1 - 1,
	}
	t.ensureSegments(t.maxBucket)
	return t
}

func nextPow2(x uint32) uint32 {
	v := uint32(1)
	for v < x {
		v <<= 1
	}
	return v
}

// ensureSegments grows the directory to address bucket b.
func (t *Table) ensureSegments(b uint32) {
	need := int(b>>segmentShift) + 1
	for len(t.directory) < need {
		t.directory = append(t.directory, make([]*element, segmentSize))
	}
}

func (t *Table) bucketPtr(b uint32) **element {
	return &t.directory[b>>segmentShift][b&(segmentSize-1)]
}

// calc locates the bucket for a hash value: mask with the high mask,
// remask with the low mask if the result exceeds the maximum bucket.
func (t *Table) calc(h uint32) uint32 {
	b := h & t.highMask
	if b > t.maxBucket {
		b = h & t.lowMask
	}
	return b
}

// Find returns the data stored under key.
func (t *Table) Find(key string) ([]byte, bool) {
	for e := *t.bucketPtr(t.calc(t.hash([]byte(key)))); e != nil; e = e.next {
		if e.key == key {
			return e.data, true
		}
	}
	return nil, false
}

// Enter stores data under key, replacing an existing entry. Unlike
// hsearch, the table grows instead of filling: inserting never fails.
func (t *Table) Enter(key string, data []byte) {
	head := t.bucketPtr(t.calc(t.hash([]byte(key))))
	for e := *head; e != nil; e = e.next {
		if e.key == key {
			e.data = data
			return
		}
	}
	*head = &element{key: key, data: data, next: *head}
	t.count++
	// Controlled splitting: keep keys/buckets at or below the fill
	// factor, splitting buckets in the predefined linear order.
	if t.count > t.ffactor*int(t.maxBucket+1) {
		t.expand()
	}
}

// expand performs one linear-hashing split.
func (t *Table) expand() {
	newBucket := t.maxBucket + 1
	oldBucket := newBucket & t.lowMask
	t.maxBucket = newBucket
	if newBucket > t.highMask {
		t.lowMask = t.highMask
		t.highMask = newBucket | t.lowMask
	}
	t.ensureSegments(newBucket)
	t.Splits++

	// Divide oldBucket's chain between oldBucket and newBucket by the
	// newly revealed hash bit.
	oldHead := t.bucketPtr(oldBucket)
	newHead := t.bucketPtr(newBucket)
	var keep, moved *element
	for e := *oldHead; e != nil; {
		next := e.next
		if t.calc(t.hash([]byte(e.key))) == newBucket {
			e.next = moved
			moved = e
		} else {
			e.next = keep
			keep = e
		}
		e = next
	}
	*oldHead = keep
	*newHead = moved
}

// Delete removes key.
func (t *Table) Delete(key string) bool {
	head := t.bucketPtr(t.calc(t.hash([]byte(key))))
	for e, prev := *head, (*element)(nil); e != nil; prev, e = e, e.next {
		if e.key == key {
			if prev == nil {
				*head = e.next
			} else {
				prev.next = e.next
			}
			t.count--
			return true
		}
	}
	return false
}

// Len returns the number of stored entries.
func (t *Table) Len() int { return t.count }

// Buckets returns the current bucket count.
func (t *Table) Buckets() int { return int(t.maxBucket) + 1 }

// ForEach visits every entry.
func (t *Table) ForEach(fn func(key string, data []byte) bool) {
	for b := uint32(0); b <= t.maxBucket; b++ {
		for e := *t.bucketPtr(b); e != nil; e = e.next {
			if !fn(e.key, e.data) {
				return
			}
		}
	}
}

// MaxChain returns the longest bucket chain, for tests.
func (t *Table) MaxChain() int {
	maxLen := 0
	for b := uint32(0); b <= t.maxBucket; b++ {
		n := 0
		for e := *t.bucketPtr(b); e != nil; e = e.next {
			n++
		}
		if n > maxLen {
			maxLen = n
		}
	}
	return maxLen
}

package core

import (
	"fmt"
	"math/bits"
	"sync"
	"time"

	"unixhash/internal/buffer"
	"unixhash/internal/trace"
)

// Bucket-granular write concurrency.
//
// The table lock no longer serializes writers: Get, Put and Delete take
// it shared and latch only the stripe covering the one bucket chain they
// touch. The split pointer (hdr.maxBucket) is published through a single
// atomic (t.geo) that every operation routes against, seqlock-style: an
// operation routes, latches the stripe, then re-checks the route — if a
// split moved its bucket boundary in between, it unlatches and retries.
// Splits themselves are incremental and cooperative: the writer that
// trips the split policy empties the old bucket under both bucket
// latches, publishes the gathered pairs as a shared job, and moves them
// back in bounded chunks; any writer that lands on one of the two
// involved buckets claims chunks of its own instead of queueing, so no
// writer ever stalls the world behind a rehash.
//
// The lock order, top to bottom (never taken upward):
//
//	t.mu (shared for bucket ops, exclusive for Sync/Close/PutBatch/...)
//	→ wal.Log.mu (txn commit appends while holding t.mu shared)
//	→ t.splitMu (one split at a time)
//	→ bucket stripe latches (single ops take two at most; a txn commit
//	  takes every stripe its ops route to — always in ascending stripe
//	  index, so multi-latch acquisition cannot deadlock single ops
//	  or other commits)
//	→ t.split.mu / t.ovflMu / t.dirtyMu
//	→ buffer shard locks
//
// A split initiator holds its shared table lock until the split
// completes, so an exclusive acquirer (Sync, Close, PutBatch) can never
// observe a half-redistributed bucket. The WAL's own mutex sits above
// the stripe latches: a commit finishes its log append and fsync before
// latching any bucket, and nothing that holds a latch ever appends.

const (
	// nStripes is the number of bucket latches. Buckets map to stripes by
	// their low bits, so the two buckets of a split (new = old + 2^k)
	// land on distinct stripes until 2^k reaches nStripes, after which
	// they coincide and one acquisition covers both.
	nStripes   = 128
	stripeMask = nStripes - 1

	// splitChunk bounds the slice of pairs one cooperative split step
	// moves while holding the two bucket latches — the paper's "split one
	// bucket at a time" made finer: move a few pairs at a time.
	splitChunk = 16
)

func (t *Table) stripeFor(b uint32) *sync.RWMutex { return &t.stripes[b&stripeMask] }

// routeBucket is calcBucket restated over the split pointer alone, so
// the shared phase routes against one atomic word instead of the three
// header fields. The identity: the bit length L of maxBucket fixes
// highMask = 2^L-1 and lowMask = 2^(L-1)-1 for every state expansion can
// reach, and for the freshly initialized table (maxBucket = 2^k-1 with
// stored masks one generation wider) both formulations reduce to
// h & (2^k - 1). TestRouteBucketMatchesCalc pins the equivalence.
func routeBucket(h, maxBucket uint32) uint32 {
	m := uint32(1)<<bits.Len32(maxBucket) - 1
	b := h & m
	if b > maxBucket {
		b = h & (m >> 1)
	}
	return b
}

// publishGeo publishes hdr.maxBucket to the routing atomic. Called after
// any geometry change: header init/read, expand, presize, recovery.
func (t *Table) publishGeo() { t.geo.Store(t.hdr.maxBucket) }

// xorPairSum folds one pair fingerprint into the live checksum (XOR has
// no sync/atomic primitive, so CAS).
func (t *Table) xorPairSum(v uint64) {
	for {
		old := t.pairSumA.Load()
		if t.pairSumA.CompareAndSwap(old, old^v) {
			return
		}
	}
}

// splitState encodes the in-flight split in one atomic word: zero when
// no split is running, else splitActive | newBucket. The old bucket is
// derivable — it is the new bucket with its top bit cleared — so one
// load tells any operation whether its bucket is mid-split.
const splitActive = 1 << 63

func splitOld(newBucket uint32) uint32 {
	return newBucket &^ (1 << (bits.Len32(newBucket) - 1))
}

// splitInvolves reports whether bucket b is one of the two buckets of
// the split in flight, if any.
func (t *Table) splitInvolves(b uint32) bool {
	s := t.splitState.Load()
	if s == 0 {
		return false
	}
	nb := uint32(s)
	return b == nb || b == splitOld(nb)
}

// lockBucket routes hash h to its bucket and latches that bucket's
// stripe (exclusive for writers, shared for readers). The route is
// validated after the latch is held: a concurrent split may have moved
// the boundary (stale t.geo read) or may still be redistributing the
// bucket's pairs, in which case the operation backs off — helping the
// split along if it is a writer — and re-routes. Returns the bucket
// number; the caller unlatches t.stripeFor(bucket).
func (t *Table) lockBucket(h uint32, write bool) uint32 {
	for {
		b := routeBucket(h, t.geo.Load())
		s := t.stripeFor(b)
		if write {
			s.Lock()
		} else {
			s.RLock()
		}
		if routeBucket(h, t.geo.Load()) == b && !t.splitInvolves(b) {
			return b
		}
		if write {
			s.Unlock()
		} else {
			s.RUnlock()
		}
		if t.splitInvolves(b) {
			if write {
				t.helpSplit(b)
			} else {
				t.waitSplit(b)
			}
		}
	}
}

// latchBucketRead read-latches a known live bucket number (scans walk
// buckets directly rather than routing a hash), waiting out any split
// that involves it. The caller unlatches t.stripeFor(b).
func (t *Table) latchBucketRead(b uint32) {
	for {
		s := t.stripeFor(b)
		s.RLock()
		if !t.splitInvolves(b) {
			return
		}
		s.RUnlock()
		t.waitSplit(b)
	}
}

// latchPair write-latches the stripes of the two buckets of a split in
// ascending stripe order — the canonical order that keeps two-bucket
// acquisitions deadlock-free — collapsing to one acquisition when both
// buckets share a stripe.
func (t *Table) latchPair(a, b uint32) {
	sa, sb := a&stripeMask, b&stripeMask
	switch {
	case sa == sb:
		t.stripes[sa].Lock()
	case sa < sb:
		t.stripes[sa].Lock()
		t.stripes[sb].Lock()
	default:
		t.stripes[sb].Lock()
		t.stripes[sa].Lock()
	}
}

func (t *Table) unlatchPair(a, b uint32) {
	sa, sb := a&stripeMask, b&stripeMask
	t.stripes[sa].Unlock()
	if sa != sb {
		t.stripes[sb].Unlock()
	}
}

// splitJob is the shared state of the one in-flight cooperative split.
// The initiator gathers the old bucket's pairs into entries; initiator
// and helpers then claim [lo, hi) slices with the next cursor and insert
// them under the pair of bucket latches. moved tracks completed chunks;
// the goroutine that completes the last chunk finishes the split.
type splitJob struct {
	mu       sync.Mutex
	cond     *sync.Cond
	old, new uint32
	entries  []splitEntry
	nchain   int  // overflow pages the old chain held, for the end event
	next     int  // claim cursor into entries
	claimed  int  // total entries claimed
	moved    int  // total entries whose chunk completed
	gathered bool // entries is populated; chunks may be claimed
	done     bool // split complete; splitState already cleared
	helped   bool // at least one chunk was moved by a helper
	err      error
	t0       time.Time
}

// maybeExpand runs one growth step of the hybrid split policy from a
// shared-phase writer. At most one split runs at a time; a writer that
// finds one already in flight simply continues — the controlled trigger
// re-fires while nkeys stays high, and an uncontrolled trigger is
// re-armed so it is not lost.
func (t *Table) maybeExpand(uncontrolled bool) error {
	if !t.splitMu.TryLock() {
		if uncontrolled {
			t.addedOvfl.Store(true)
		}
		return nil
	}
	defer t.splitMu.Unlock()
	if t.hdr.maxBucket == ^uint32(0) {
		return fmt.Errorf("hash: table is at maximum size")
	}
	oldBucket, newBucket := t.growGeometry()

	j := &t.split
	j.mu.Lock()
	j.old, j.new = oldBucket, newBucket
	j.entries = nil
	j.nchain, j.next, j.claimed, j.moved = 0, 0, 0, 0
	j.gathered, j.done, j.helped = false, false, false
	j.err = nil
	if t.tr != nil {
		j.t0 = time.Now()
	}
	j.mu.Unlock()

	// Publish the split before the new geometry: an operation that
	// routes with the new split pointer must find the split in progress
	// (both stores are sequentially consistent, so a load that observes
	// the new geometry also observes the split state).
	t.splitState.Store(splitActive | uint64(newBucket))
	t.publishGeo()

	if uncontrolled {
		t.m.splitsUncontrolled.Inc()
	} else {
		t.m.splitsControlled.Inc()
	}
	t.tr.Emit(trace.EvSplitBegin, uint64(oldBucket), uint64(newBucket), uint64(t.hdr.maxBucket), boolArg(uncontrolled))
	return t.runSplit(j)
}

// growGeometry advances the split pointer and masks — one step of linear
// hashing. The caller holds either splitMu (shared phase) or the
// exclusive table lock (batch, recovery); the spares advance shares
// ovflMu with the overflow allocator.
func (t *Table) growGeometry() (oldBucket, newBucket uint32) {
	t.hdr.maxBucket++
	newBucket = t.hdr.maxBucket
	oldBucket = newBucket & t.hdr.lowMask
	if newBucket > t.hdr.highMask {
		// A generation completed: every bucket that existed at the start
		// of the generation has split. Double the address space.
		t.hdr.lowMask = t.hdr.highMask
		t.hdr.highMask = newBucket | t.hdr.lowMask
	}
	// Advance the overflow split point when a new generation begins, so
	// subsequent overflow pages are allocated after the new primaries.
	t.ovflMu.Lock()
	if spareIdx := ceilLog2(newBucket + 1); spareIdx > t.hdr.ovflPoint {
		t.hdr.spares[spareIdx] = t.hdr.spares[t.hdr.ovflPoint]
		t.hdr.ovflPoint = spareIdx
	}
	t.ovflMu.Unlock()
	t.dirtyHdr.Store(true)
	return oldBucket, newBucket
}

// runSplit is the initiator's protocol: gather, claim chunks until none
// are left, then wait for helpers' in-flight chunks to complete.
func (t *Table) runSplit(j *splitJob) error {
	if err := t.gatherSplit(j); err != nil {
		j.mu.Lock()
		j.err = err
		t.finishSplitLocked(j)
		j.mu.Unlock()
		return err
	}
	for t.splitStep(j, false) {
	}
	j.mu.Lock()
	for !j.done {
		j.cond.Wait()
	}
	err := j.err
	j.mu.Unlock()
	return err
}

// gatherSplit empties the old bucket under both bucket latches: pairs
// are copied out (the pages are reformatted in place), the overflow
// chain reclaimed and the new primary initialized. Once the latches
// drop, the published splitState keeps every other operation off both
// buckets until redistribution completes, so the gathered pairs being
// reachable only through the job is safe.
func (t *Table) gatherSplit(j *splitJob) error {
	t.latchPair(j.old, j.new)
	err := t.gatherLatched(j)
	t.unlatchPair(j.old, j.new)
	if err != nil {
		return err
	}
	j.mu.Lock()
	j.gathered = true
	if len(j.entries) == 0 {
		// An empty bucket split: there are no chunks whose completion
		// could finish the job, so finish it here.
		t.finishSplitLocked(j)
	} else {
		j.cond.Broadcast() // helpers may be waiting for chunks to claim
	}
	j.mu.Unlock()
	return nil
}

func (t *Table) gatherLatched(j *splitJob) error {
	var entries []splitEntry
	var chain []oaddr
	err := t.walkChain(j.old, func(buf *buffer.Buf) (bool, error) {
		if buf.Addr.Ovfl {
			chain = append(chain, oaddr(buf.Addr.N))
		}
		pg := page(buf.Page)
		return false, pg.forEach(func(i int, e entry) bool {
			switch e.kind {
			case entryRegular:
				entries = append(entries, splitEntry{
					key:  append([]byte(nil), e.key...),
					data: append([]byte(nil), e.data...),
				})
			case entryBig:
				entries = append(entries, splitEntry{ref: e.ref})
			}
			return true
		})
	})
	if err != nil {
		return err
	}

	// Reset the old primary page and reclaim the chain (freeOvfl discards
	// any resident buffer for each freed page).
	ob, err := t.getBucketPage(j.old)
	if err != nil {
		return err
	}
	clear(ob.Page)
	initPage(page(ob.Page))
	ob.Dirty.Store(true)
	t.pool.Put(ob)
	for _, o := range chain {
		if err := t.freeOvfl(o); err != nil {
			return err
		}
	}

	// Initialize the new bucket's primary page.
	nb, err := t.getBucketPage(j.new)
	if err != nil {
		return err
	}
	clear(nb.Page)
	initPage(page(nb.Page))
	nb.Dirty.Store(true)
	t.pool.Put(nb)

	j.entries = entries
	j.nchain = len(chain)
	return nil
}

// splitStep claims one bounded chunk of the gathered pairs and inserts
// them under the pair of bucket latches, redistributing by the newly
// revealed hash bit. It reports false when there is nothing to claim —
// the gather is still running, the split is done, or every chunk is
// claimed (possibly still in flight on other goroutines).
func (t *Table) splitStep(j *splitJob, helper bool) bool {
	j.mu.Lock()
	if !j.gathered || j.done || j.next >= len(j.entries) {
		j.mu.Unlock()
		return false
	}
	lo := j.next
	hi := lo + splitChunk
	if hi > len(j.entries) {
		hi = len(j.entries)
	}
	j.next = hi
	j.claimed += hi - lo
	if helper {
		j.helped = true
	}
	oldB, newB := j.old, j.new
	j.mu.Unlock()

	var err error
	t.latchPair(oldB, newB)
	for _, e := range j.entries[lo:hi] {
		if err = t.placeSplitEntry(oldB, newB, e); err != nil {
			break
		}
	}
	t.unlatchPair(oldB, newB)
	if t.tr != nil {
		t.tr.Emit(trace.EvSplitChunk, uint64(oldB), uint64(newB), uint64(hi-lo), boolArg(helper))
	}

	j.mu.Lock()
	j.moved += hi - lo
	if err != nil {
		if j.err == nil {
			j.err = err
		}
		j.next = len(j.entries) // stop further claims
	}
	if j.moved == j.claimed && j.next >= len(j.entries) {
		t.finishSplitLocked(j)
	}
	j.mu.Unlock()
	return true
}

// placeSplitEntry inserts one gathered pair into whichever of the two
// buckets the new geometry routes it to. Caller holds both latches.
func (t *Table) placeSplitEntry(oldB, newB uint32, e splitEntry) error {
	key := e.key
	var err error
	if e.ref != 0 {
		key, err = t.bigKey(e.ref)
		if err != nil {
			return err
		}
	}
	h := t.hash(key)
	dest := routeBucket(h, t.geo.Load())
	if dest != oldB && dest != newB {
		return fmt.Errorf("%w: split of bucket %d sent key to bucket %d (new %d)", ErrCorrupt, oldB, dest, newB)
	}
	if e.ref != 0 {
		return t.insertRef(dest, h, e.ref)
	}
	return t.insert(dest, h, key, e.data)
}

// finishSplitLocked completes the split: clears the published state so
// blocked operations may proceed, emits the end event and wakes every
// waiter. Caller holds j.mu.
func (t *Table) finishSplitLocked(j *splitJob) {
	j.done = true
	t.splitState.Store(0)
	if t.tr != nil {
		t.tr.EmitDur(trace.EvSplitEnd, time.Since(j.t0), uint64(j.old), uint64(j.new), uint64(len(j.entries)), uint64(j.nchain))
	}
	j.cond.Broadcast()
}

// helpSplit is the cooperative path: a writer that routed onto a bucket
// mid-split moves chunks of the pending rehash itself until none are
// left to claim, waits out any stragglers, and returns to retry its own
// operation.
func (t *Table) helpSplit(b uint32) {
	if t.tr != nil {
		t.tr.Emit(trace.EvLatchWait, uint64(b), 1, 0, 0)
	}
	j := &t.split
	for t.splitInvolves(b) {
		if t.splitStep(j, true) {
			continue
		}
		j.mu.Lock()
		if !j.done && (!j.gathered || j.next >= len(j.entries)) {
			j.cond.Wait()
		}
		j.mu.Unlock()
	}
}

// waitSplit blocks a reader until the split over its bucket completes.
func (t *Table) waitSplit(b uint32) {
	if t.tr != nil {
		t.tr.Emit(trace.EvLatchWait, uint64(b), 0, 0, 0)
	}
	j := &t.split
	j.mu.Lock()
	for !j.done && t.splitInvolves(b) {
		j.cond.Wait()
	}
	j.mu.Unlock()
}

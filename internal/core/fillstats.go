package core

import (
	"fmt"

	"unixhash/internal/buffer"
)

// FillStats describes how the table's keys are spread over its pages —
// the observable side of the bucket-size/fill-factor tradeoff the paper
// tells time-critical applications to experiment with.
type FillStats struct {
	Buckets        uint32  // primary buckets (maxBucket + 1)
	OverflowPages  int     // overflow pages in bucket chains
	BigPairPages   int     // overflow pages holding big pairs
	BitmapPages    int     // allocator bitmap pages
	Keys           int64   // stored pairs
	MaxChain       int     // longest bucket chain in pages (1 = no overflow)
	AvgKeysPerPage float64 // keys / (buckets + overflow pages)
	AvgFill        float64 // used bytes / available bytes on data pages
	EmptyBuckets   int     // buckets with no keys at all
	// ChainDist is the chain-length distribution: ChainDist[i] buckets
	// have a chain of i+1 pages (index 0 = no overflow). Its length is
	// MaxChain.
	ChainDist []int
}

func (s FillStats) String() string {
	return fmt.Sprintf(
		"buckets=%d ovfl=%d big=%d keys=%d maxchain=%d keys/page=%.2f fill=%.0f%% empty=%d",
		s.Buckets, s.OverflowPages, s.BigPairPages, s.Keys, s.MaxChain,
		s.AvgKeysPerPage, 100*s.AvgFill, s.EmptyBuckets)
}

// FillStats scans the table and reports its space statistics.
func (t *Table) FillStats() (FillStats, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.checkOpen(); err != nil {
		return FillStats{}, err
	}
	s := FillStats{Buckets: t.hdr.maxBucket + 1, Keys: t.nkeysA.Load()}
	usable := int(t.hdr.bsize) - slotBaseFor(int(t.hdr.bsize))

	var usedBytes, availBytes int64
	for b := uint32(0); b <= t.hdr.maxBucket; b++ {
		chainLen := 0
		bucketKeys := 0
		err := t.walkChain(b, func(buf *buffer.Buf) (bool, error) {
			chainLen++
			if buf.Addr.Ovfl {
				s.OverflowPages++
			}
			pg := page(buf.Page)
			bucketKeys += pg.nentries()
			usedBytes += int64(usable - pg.freeSpace())
			availBytes += int64(usable)
			return false, nil
		})
		if err != nil {
			return FillStats{}, err
		}
		if chainLen > s.MaxChain {
			s.MaxChain = chainLen
		}
		for len(s.ChainDist) < chainLen {
			s.ChainDist = append(s.ChainDist, 0)
		}
		if chainLen > 0 {
			s.ChainDist[chainLen-1]++
		}
		if bucketKeys == 0 {
			s.EmptyBuckets++
		}
	}

	// Count big-pair and bitmap pages from the allocator's view.
	for sp := uint32(0); sp < maxSplits; sp++ {
		if t.hdr.bitmaps[sp] == 0 {
			continue
		}
		s.BitmapPages++
		bm, err := t.bitmapFor(sp)
		if err != nil {
			return FillStats{}, err
		}
		for pn := uint32(1); pn <= t.hdr.allocatedAt(sp); pn++ {
			if bitmapGet(bm, pn-1) && uint16(makeOaddr(sp, pn)) != t.hdr.bitmaps[sp] {
				s.BigPairPages++
			}
		}
	}
	// Chain pages were counted among the allocated; what remains after
	// removing them is big-pair storage.
	s.BigPairPages -= s.OverflowPages
	if s.BigPairPages < 0 {
		s.BigPairPages = 0
	}

	dataPages := int(s.Buckets) + s.OverflowPages
	if dataPages > 0 {
		s.AvgKeysPerPage = float64(s.Keys) / float64(dataPages)
	}
	if availBytes > 0 {
		s.AvgFill = float64(usedBytes) / float64(availBytes)
	}
	return s, nil
}

package core

import (
	"bytes"
	"fmt"

	"unixhash/internal/trace"
)

// Big key/data pairs. A pair whose key and data cannot fit on a single
// bucket page is stored on a dedicated chain of overflow pages — the same
// pages, allocated by the same buddy-in-waiting mechanism, that handle
// bucket overflow, so one mechanism serves both purposes as the paper
// prescribes. The bucket page holds only a two-slot reference
// [markBig, chain-start].
//
// Chain page layout:
//
//	bytes 0..1  uint16 bigMagic
//	bytes 2..3  uint16 next overflow address (0 on the last page)
//	bytes 4..   payload
//
// The first page's payload begins with uint32 key length and uint32 data
// length, followed by the key bytes and then the data bytes, streaming
// across the chain. Chain pages move through the buffer pool like every
// other data page: a chain write leaves dirty buffers that reach the
// store only at the next sync. Writing chains straight to the store
// (the original design) broke crash recovery — a chain that reused a
// page freed since the last sync would overwrite, before any checkpoint,
// a page the last-synced state still contained, so the recovery gate's
// fingerprint walk no longer reproduced the synced state and a WAL
// replay had nothing sound to replay onto. Chain reads borrow a
// page-sized scratch copy per call (t.getScratch), so concurrent
// readers never share a buffer.
const (
	bigHdrSize     = 4
	bigLenPrefix   = 8 // uint32 klen + uint32 dlen on the first page
	bigNextOffset  = 2
	bigMagicOffset = 0
)

// bigPayload is the payload capacity of one chain page.
func (t *Table) bigPayload() int { return int(t.hdr.bsize) - bigHdrSize }

// isBig reports whether a pair must be stored on a big-pair chain: a
// regular pair needs two slots, its bytes, and the link reserve on an
// otherwise empty page (whose slot array starts after the filter region).
func (t *Table) isBig(klen, dlen int) bool {
	return 2*slotSize+klen+dlen > int(t.hdr.bsize)-slotBaseFor(int(t.hdr.bsize))-linkReserve
}

// putBigPair writes key and data to a fresh chain and returns its start
// address. The pair is streamed into the chain's pool buffers segment by
// segment — length prefix, key, data — so no contiguous payload copy of
// the pair is ever materialized (for multi-megabyte pairs that copy
// doubled the insert's memory traffic; see TestPutAllocs).
func (t *Table) putBigPair(key, data []byte) (oaddr, error) {
	var prefix [bigLenPrefix]byte
	le.PutUint32(prefix[0:], uint32(len(key)))
	le.PutUint32(prefix[4:], uint32(len(data)))
	total := bigLenPrefix + len(key) + len(data)

	cap_ := t.bigPayload()
	npages := (total + cap_ - 1) / cap_
	var addrsArr [16]oaddr
	addrs := addrsArr[:0]
	if npages > len(addrsArr) {
		addrs = make([]oaddr, 0, npages)
	}
	for i := 0; i < npages; i++ {
		o, err := t.allocOvfl()
		if err != nil {
			// Roll back pages already claimed.
			for _, a := range addrs {
				_ = t.freeOvfl(a)
			}
			return 0, err
		}
		addrs = append(addrs, o)
	}
	segs := [3][]byte{prefix[:], key, data}
	seg, segOff := 0, 0
	for i, o := range addrs {
		b, err := t.pool.GetOwned(ovflBufAddr(o), uint32(o), true)
		if err != nil {
			for _, a := range addrs {
				_ = t.freeOvfl(a)
			}
			return 0, err
		}
		clear(b.Page)
		le.PutUint16(b.Page[bigMagicOffset:], bigMagic)
		next := oaddr(0)
		if i+1 < npages {
			next = addrs[i+1]
		}
		le.PutUint16(b.Page[bigNextOffset:], uint16(next))
		out := b.Page[bigHdrSize:]
		for len(out) > 0 && seg < len(segs) {
			n := copy(out, segs[seg][segOff:])
			out = out[n:]
			segOff += n
			if segOff == len(segs[seg]) {
				seg, segOff = seg+1, 0
			}
		}
		b.Dirty.Store(true)
		t.pool.Put(b)
	}
	t.m.bigPairs.Inc()
	t.tr.Emit(trace.EvBigPairWrite, uint64(len(addrs)), uint64(len(key)), uint64(len(data)), uint64(addrs[0]))
	return addrs[0], nil
}

// readBigChainPage fetches one chain page into buf (a page-sized scratch
// buffer owned by the caller) and returns (payload view, next address).
func (t *Table) readBigChainPage(o oaddr, buf []byte) ([]byte, oaddr, error) {
	b, err := t.pool.GetOwned(ovflBufAddr(o), uint32(o), false)
	if err != nil {
		return nil, 0, fmt.Errorf("hash: big pair chain page %v: %w", o, err)
	}
	copy(buf, b.Page)
	t.pool.Put(b)
	if !isBigPage(buf) {
		return nil, 0, fmt.Errorf("%w: page %v is not a big-pair page", ErrCorrupt, o)
	}
	next := oaddr(le.Uint16(buf[bigNextOffset:]))
	return buf[bigHdrSize:], next, nil
}

// readBig materializes the whole pair stored on the chain at o.
func (t *Table) readBig(o oaddr) (key, data []byte, err error) {
	buf := t.getScratch()
	defer t.putScratch(buf)
	payload, next, err := t.readBigChainPage(o, buf)
	if err != nil {
		return nil, nil, err
	}
	klen := int(le.Uint32(payload[0:]))
	dlen := int(le.Uint32(payload[4:]))
	out := make([]byte, 0, klen+dlen)
	out = append(out, payload[bigLenPrefix:]...)
	for len(out) < klen+dlen {
		if next == 0 {
			return nil, nil, fmt.Errorf("%w: big-pair chain truncated (%d of %d bytes)", ErrCorrupt, len(out), klen+dlen)
		}
		payload, next, err = t.readBigChainPage(next, buf)
		if err != nil {
			return nil, nil, err
		}
		out = append(out, payload...)
	}
	out = out[:klen+dlen]
	return out[:klen:klen], out[klen:], nil
}

// readBigData appends just the data bytes of the chain at o to dst,
// skipping the key — the GetBuf path, which avoids materializing the key
// a second time after bigKeyEquals has already matched it.
func (t *Table) readBigData(o oaddr, dst []byte) ([]byte, error) {
	buf := t.getScratch()
	defer t.putScratch(buf)
	payload, next, err := t.readBigChainPage(o, buf)
	if err != nil {
		return nil, err
	}
	klen := int(le.Uint32(payload[0:]))
	dlen := int(le.Uint32(payload[4:]))
	if cap(dst)-len(dst) < dlen {
		grown := make([]byte, len(dst), len(dst)+dlen)
		copy(grown, dst)
		dst = grown
	}
	skip := klen // key bytes still to skip before data starts
	chunk := payload[bigLenPrefix:]
	need := dlen
	for {
		if skip > 0 {
			n := min(skip, len(chunk))
			chunk = chunk[n:]
			skip -= n
		}
		if skip == 0 && len(chunk) > 0 {
			n := min(need, len(chunk))
			dst = append(dst, chunk[:n]...)
			need -= n
			if need == 0 {
				return dst, nil
			}
		}
		if next == 0 {
			return nil, fmt.Errorf("%w: big-pair chain truncated (%d data bytes missing)", ErrCorrupt, need)
		}
		chunk, next, err = t.readBigChainPage(next, buf)
		if err != nil {
			return nil, err
		}
	}
}

// bigKeyEquals streams the chain's key bytes, comparing against key
// without materializing the data.
func (t *Table) bigKeyEquals(o oaddr, key []byte) (bool, error) {
	buf := t.getScratch()
	defer t.putScratch(buf)
	payload, next, err := t.readBigChainPage(o, buf)
	if err != nil {
		return false, err
	}
	klen := int(le.Uint32(payload[0:]))
	if klen != len(key) {
		return false, nil
	}
	rest := key
	chunk := payload[bigLenPrefix:]
	for {
		n := len(chunk)
		if n > len(rest) {
			n = len(rest)
		}
		if !bytes.Equal(chunk[:n], rest[:n]) {
			return false, nil
		}
		rest = rest[n:]
		if len(rest) == 0 {
			return true, nil
		}
		if next == 0 {
			return false, fmt.Errorf("%w: big-pair chain truncated during key compare", ErrCorrupt)
		}
		chunk, next, err = t.readBigChainPage(next, buf)
		if err != nil {
			return false, err
		}
	}
}

// bigKey materializes just the key of the chain at o (used when splitting
// a bucket, where the key must be rehashed).
func (t *Table) bigKey(o oaddr) ([]byte, error) {
	buf := t.getScratch()
	defer t.putScratch(buf)
	payload, next, err := t.readBigChainPage(o, buf)
	if err != nil {
		return nil, err
	}
	klen := int(le.Uint32(payload[0:]))
	key := make([]byte, 0, klen)
	chunk := payload[bigLenPrefix:]
	for {
		n := len(chunk)
		if n > klen-len(key) {
			n = klen - len(key)
		}
		key = append(key, chunk[:n]...)
		if len(key) == klen {
			return key, nil
		}
		if next == 0 {
			return nil, fmt.Errorf("%w: big-pair chain truncated during key read", ErrCorrupt)
		}
		chunk, next, err = t.readBigChainPage(next, buf)
		if err != nil {
			return nil, err
		}
	}
}

// freeBigChain reclaims every page of the chain starting at o.
func (t *Table) freeBigChain(o oaddr) error {
	buf := t.getScratch()
	defer t.putScratch(buf)
	for o != 0 {
		_, next, err := t.readBigChainPage(o, buf)
		if err != nil {
			return err
		}
		if err := t.freeOvfl(o); err != nil {
			return err
		}
		o = next
	}
	return nil
}

package core

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"unixhash/internal/trace"
)

// TestTraceDisabledZeroAlloc is the zero-overhead guard for the tracing
// hooks: with no tracer attached (the default), the instrumented
// wrappers must add nothing to the hot paths — a steady-state GetBuf
// and a small-pair replace Put stay at 0 allocations per op, exactly as
// TestGetBufZeroAlloc and TestPutAllocs demand of the uninstrumented
// code.
func TestTraceDisabledZeroAlloc(t *testing.T) {
	tbl := mustOpen(t, "", &Options{Bsize: 1024, Ffactor: 16})
	defer tbl.Close()
	if tbl.Tracer() != nil {
		t.Fatal("tracer attached without Options.Trace")
	}
	const n = 200
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key-%04d", i))
		if err := tbl.Put(keys[i], []byte("value")); err != nil {
			t.Fatal(err)
		}
	}

	buf := make([]byte, 0, 64)
	i := 0
	allocs := testing.AllocsPerRun(500, func() {
		var err error
		buf, err = tbl.GetBuf(keys[i%n], buf)
		if err != nil {
			t.Fatal(err)
		}
		i++
	})
	if allocs != 0 {
		t.Fatalf("disabled tracer: GetBuf allocated %.1f times per op, want 0", allocs)
	}

	val := []byte("value2")
	i = 0
	allocs = testing.AllocsPerRun(500, func() {
		if err := tbl.Put(keys[i%n], val); err != nil {
			t.Fatal(err)
		}
		i++
	})
	if allocs != 0 {
		t.Fatalf("disabled tracer: small replace Put allocated %.1f times per op, want 0", allocs)
	}
}

// TestTraceEvents drives a table with a tracer attached through growth,
// deletion and sync and checks that the structural events land in the
// ring: splits begin and end in pairs, overflow pages are allocated,
// the two-phase sync emits begin/phase/end, and a zero threshold makes
// every operation a captured slow op.
func TestTraceEvents(t *testing.T) {
	tr := trace.New(4096)
	tr.SetSlowOpThreshold(0) // capture everything
	tbl := mustOpen(t, "", &Options{Bsize: 512, Ffactor: 4, Trace: tr})
	defer tbl.Close()

	for i := 0; i < 300; i++ {
		if err := tbl.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	// A pair larger than a page goes onto a big-pair overflow chain,
	// exercising the allocator events; deleting it frees the chain.
	big := make([]byte, 2000)
	if err := tbl.Put([]byte("big"), big); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Delete([]byte("big")); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Delete(key(0)); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Sync(); err != nil {
		t.Fatal(err)
	}

	count := map[trace.Type]int{}
	for _, ev := range tr.Events(0) {
		count[ev.Type]++
	}
	if count[trace.EvSplitBegin] == 0 || count[trace.EvSplitBegin] != count[trace.EvSplitEnd] {
		t.Fatalf("split events unbalanced: %d begin, %d end", count[trace.EvSplitBegin], count[trace.EvSplitEnd])
	}
	if count[trace.EvOvflAlloc] == 0 {
		t.Fatal("no overflow allocations traced for the big-pair chain")
	}
	if count[trace.EvBigPairWrite] == 0 {
		t.Fatal("no big-pair write traced")
	}
	if count[trace.EvOvflFree] == 0 {
		t.Fatal("no overflow frees traced after deleting the big pair")
	}
	if count[trace.EvSyncBegin] == 0 || count[trace.EvSyncEnd] == 0 || count[trace.EvSyncPhase] == 0 {
		t.Fatalf("sync events missing: %d begin, %d phase, %d end",
			count[trace.EvSyncBegin], count[trace.EvSyncPhase], count[trace.EvSyncEnd])
	}

	// A split-end must carry the buckets it redistributed.
	ends := tr.Events(1, trace.EvSplitEnd)
	if len(ends) != 1 {
		t.Fatalf("filtered Events returned %d split-ends, want 1", len(ends))
	}

	ops, seen := tr.SlowOps()
	if seen == 0 || len(ops) == 0 {
		t.Fatalf("zero threshold captured no slow ops (seen=%d retained=%d)", seen, len(ops))
	}
	wantOps := map[trace.Op]bool{}
	for _, op := range ops {
		wantOps[op.Op] = true
	}
	if !wantOps[trace.OpSync] {
		t.Fatal("no Sync span among captured slow ops")
	}
}

// TestTelemetryEndpoints opens a table with TelemetryAddr and scrapes
// every endpoint the issue promises: /metrics, /stats, /debug/events,
// /debug/heatmap and pprof all answer 200 with non-empty bodies while
// the table serves traffic.
func TestTelemetryEndpoints(t *testing.T) {
	tr := trace.New(1024)
	tbl := mustOpen(t, "", &Options{Bsize: 512, Ffactor: 8, Trace: tr, TelemetryAddr: "127.0.0.1:0"})
	defer tbl.Close()
	addr := tbl.TelemetryAddr()
	if addr == "" {
		t.Fatal("TelemetryAddr empty after Open with TelemetryAddr set")
	}
	for i := 0; i < 100; i++ {
		if err := tbl.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}

	client := &http.Client{Timeout: 10 * time.Second}
	get := func(path string) []byte {
		t.Helper()
		resp, err := client.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read body: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d: %s", path, resp.StatusCode, body)
		}
		if len(body) == 0 {
			t.Fatalf("GET %s: empty body", path)
		}
		return body
	}

	if body := string(get("/metrics")); !strings.Contains(body, "# TYPE ") {
		t.Fatalf("/metrics has no TYPE lines:\n%s", body)
	}

	var stats struct {
		Method   string          `json:"method"`
		Geometry json.RawMessage `json:"geometry"`
		Metrics  json.RawMessage `json:"metrics"`
	}
	if err := json.Unmarshal(get("/stats"), &stats); err != nil {
		t.Fatalf("/stats not JSON: %v", err)
	}
	if stats.Method != "hash" || len(stats.Geometry) == 0 || len(stats.Metrics) == 0 {
		t.Fatalf("/stats payload incomplete: %+v", stats)
	}

	var events struct {
		Count  int               `json:"count"`
		Events []json.RawMessage `json:"events"`
	}
	if err := json.Unmarshal(get("/debug/events"), &events); err != nil {
		t.Fatalf("/debug/events not JSON: %v", err)
	}
	if events.Count == 0 {
		t.Fatal("/debug/events empty after 100 puts on ffactor 8")
	}
	get("/debug/events?type=split-begin&n=5")

	var hm struct {
		Buckets   uint32            `json:"buckets"`
		NKeys     int64             `json:"nkeys"`
		PerBucket []json.RawMessage `json:"per_bucket"`
	}
	if err := json.Unmarshal(get("/debug/heatmap"), &hm); err != nil {
		t.Fatalf("/debug/heatmap not JSON: %v", err)
	}
	if hm.NKeys != 100 || int(hm.Buckets) != len(hm.PerBucket) {
		t.Fatalf("/debug/heatmap inconsistent: %d keys, %d buckets, %d rows", hm.NKeys, hm.Buckets, len(hm.PerBucket))
	}

	get("/debug/slowops")
	get("/debug/pprof/")

	// Unknown filter type is a client error, not a 500.
	resp, err := client.Get("http://" + addr + "/debug/events?type=no-such-event")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad type filter: status %d, want 400", resp.StatusCode)
	}

	// Close stops the server; the port must stop answering.
	if err := tbl.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Get("http://" + addr + "/stats"); err == nil {
		t.Fatal("telemetry server still answering after Close")
	}
}

// TestTelemetryBadAddr: an unusable TelemetryAddr must fail Open
// cleanly, not leak a table.
func TestTelemetryBadAddr(t *testing.T) {
	_, err := Open("", &Options{TelemetryAddr: "256.256.256.256:99999"})
	if err == nil {
		t.Fatal("Open succeeded with an unusable TelemetryAddr")
	}
}

package core

import (
	"fmt"
	"io"

	"unixhash/internal/buffer"
)

// Dump writes a human-readable description of the table's structure to
// w: header geometry, the spares array, per-bucket chain shapes and page
// fill, and overflow bitmap occupancy. With verbose set, every entry's
// key is listed. It is the engine behind the hashdump tool.
func (t *Table) Dump(w io.Writer, verbose bool) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.checkOpen(); err != nil {
		return err
	}
	h := &t.hdr
	fmt.Fprintf(w, "hash table: bsize=%d ffactor=%d nkeys=%d\n", h.bsize, h.ffactor, h.nkeys)
	fmt.Fprintf(w, "  maxBucket=%d lowMask=%#x highMask=%#x ovflPoint=%d hdrPages=%d\n",
		h.maxBucket, h.lowMask, h.highMask, h.ovflPoint, h.hdrPages)
	if h.walLSN != 0 || t.wal != nil {
		fmt.Fprintf(w, "  wal: checkpoint lsn=%d applied=%d pending=%d\n",
			h.walLSN, t.appliedLSN.Load(), len(t.walPending))
	}
	fmt.Fprintf(w, "  spares (cumulative):")
	for s := uint32(0); s <= h.ovflPoint; s++ {
		fmt.Fprintf(w, " %d:%d", s, h.spares[s])
	}
	fmt.Fprintln(w)

	// Bitmap occupancy.
	for s := uint32(0); s <= h.ovflPoint && s < maxSplits; s++ {
		if h.bitmaps[s] == 0 {
			continue
		}
		bm, err := t.bitmapFor(s)
		if err != nil {
			return err
		}
		used, limit := 0, h.allocatedAt(s)
		for pn := uint32(1); pn <= limit; pn++ {
			if bitmapGet(bm, pn-1) {
				used++
			}
		}
		fmt.Fprintf(w, "  split point %d: %d/%d overflow pages in use (bitmap at %v)\n",
			s, used, limit, oaddr(h.bitmaps[s]))
	}

	// Buckets.
	for b := uint32(0); b <= h.maxBucket; b++ {
		if err := t.dumpBucket(w, b, verbose); err != nil {
			return err
		}
	}
	return nil
}

func (t *Table) dumpBucket(w io.Writer, bucket uint32, verbose bool) error {
	first := true
	return t.walkChain(bucket, func(buf *buffer.Buf) (bool, error) {
		pg := page(buf.Page)
		tag := fmt.Sprintf("ovfl %v", oaddr(buf.Addr.N))
		if !buf.Addr.Ovfl {
			tag = fmt.Sprintf("bucket %d", buf.Addr.N)
		}
		if first || buf.Addr.Ovfl {
			fmt.Fprintf(w, "  %-14s page=%-6d entries=%-4d free=%-5d link=%v\n",
				tag, t.mapPage(buf.Addr), pg.nentries(), pg.freeSpace(), pg.ovflLink())
		}
		first = false
		if verbose {
			return false, pg.forEach(func(i int, e entry) bool {
				switch e.kind {
				case entryRegular:
					fmt.Fprintf(w, "      [%d] %q (%d bytes data)\n", i, truncKey(e.key), len(e.data))
				case entryBig:
					k, d, err := t.readBig(e.ref)
					if err != nil {
						fmt.Fprintf(w, "      [%d] BIG @%v (unreadable: %v)\n", i, e.ref, err)
						return true
					}
					fmt.Fprintf(w, "      [%d] BIG %q (%d bytes data) chain@%v\n", i, truncKey(k), len(d), e.ref)
				}
				return true
			})
		}
		return false, nil
	})
}

func truncKey(k []byte) string {
	if len(k) > 32 {
		return string(k[:29]) + "..."
	}
	return string(k)
}

func (t *Table) mapPage(a buffer.Addr) uint32 {
	if a.Ovfl {
		return t.hdr.oaddrToPage(oaddr(a.N))
	}
	return t.hdr.bucketToPage(a.N)
}

package core

import (
	"fmt"

	"unixhash/internal/buffer"
)

// Check walks the whole table verifying its structural invariants:
//
//   - every key hashes to the bucket whose chain holds it;
//   - chains are acyclic and every linked overflow page is marked
//     allocated in its split point's bitmap;
//   - big-pair chains are intact, marked allocated, and not shared;
//   - no overflow page is referenced twice;
//   - every allocated bitmap bit is accounted for by a chain page, a
//     big-pair page or the bitmap page itself (no leaked pages);
//   - the key count matches the header;
//   - every bucket's tag filter covers its chain: an unsaturated filter
//     must hold a matching tag for every resident key (a false negative
//     would make Get answer "absent" for a stored key), exact position
//     hints must point at the page actually holding each key, the tag
//     count must equal the bucket's key count, and the recorded chain
//     length must match the real one while below its saturation point.
//
// It is exported for tests and the hashdump -check command.
func (t *Table) Check() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.checkOpen(); err != nil {
		return err
	}

	used := make(map[oaddr]string) // page -> what references it
	claim := func(o oaddr, what string) error {
		if prev, dup := used[o]; dup {
			return fmt.Errorf("hash check: overflow page %v used by both %s and %s", o, prev, what)
		}
		if err := t.checkAllocated(o); err != nil {
			return err
		}
		used[o] = what
		return nil
	}

	var count int64
	var sum uint64
	for b := uint32(0); b <= t.hdr.maxBucket; b++ {
		if err := t.checkBucket(b, claim, &count, &sum); err != nil {
			return err
		}
	}
	if count != t.nkeysA.Load() {
		return fmt.Errorf("hash check: %d keys found, header says %d", count, t.nkeysA.Load())
	}
	if sum != t.pairSumA.Load() {
		return fmt.Errorf("hash check: pair fingerprint %#x, header says %#x", sum, t.pairSumA.Load())
	}

	// Leak detection: every allocated bit must be claimed or be a
	// bitmap page.
	for s := uint32(0); s < maxSplits; s++ {
		if t.hdr.bitmaps[s] == 0 {
			continue
		}
		bm, err := t.bitmapFor(s)
		if err != nil {
			return err
		}
		for pn := uint32(1); pn <= t.hdr.allocatedAt(s); pn++ {
			if !bitmapGet(bm, pn-1) {
				continue
			}
			o := makeOaddr(s, pn)
			if uint16(o) == t.hdr.bitmaps[s] {
				continue
			}
			if _, ok := used[o]; !ok {
				return fmt.Errorf("hash check: overflow page %v allocated but unreferenced (leak)", o)
			}
		}
	}
	return nil
}

// checkAllocated verifies o's bitmap bit is set.
func (t *Table) checkAllocated(o oaddr) error {
	s, pn := o.split(), o.pagenum()
	if s >= maxSplits || pn == 0 || pn > t.hdr.allocatedAt(s) {
		return fmt.Errorf("hash check: overflow address %v out of allocated range", o)
	}
	bm, err := t.bitmapFor(s)
	if err != nil {
		return err
	}
	if bm == nil || !bitmapGet(bm, pn-1) {
		return fmt.Errorf("hash check: overflow page %v referenced but not allocated", o)
	}
	return nil
}

// checkBucket walks one bucket's chain, accumulating the key count and
// the XOR pair fingerprint, then validates the primary page's tag
// filter against the keys the walk actually found.
func (t *Table) checkBucket(bucket uint32, claim func(oaddr, string) error, count *int64, sum *uint64) error {
	seen := 0
	var chainErr error
	// Filter state snapshot from the primary, and every key's (hash,
	// chain position) as found by the walk.
	var fltSat, fltInex bool
	var fltTags []byte
	fltChain := 0
	var keys []fltOp
	err := t.walkChain(bucket, func(buf *buffer.Buf) (bool, error) {
		if seen++; seen > 1<<16 {
			return false, fmt.Errorf("hash check: bucket %d chain exceeds 65536 pages (cycle?)", bucket)
		}
		pos := seen - 1
		pg := page(buf.Page)
		if buf.Addr.Ovfl {
			if err := claim(oaddr(buf.Addr.N), fmt.Sprintf("bucket %d chain", bucket)); err != nil {
				return false, err
			}
		} else {
			fltSat, fltInex = pg.fltSaturatedBit(), pg.fltInexactBit()
			fltChain = pg.fltChainLen()
			fltTags = append([]byte(nil), pg[fltTagsOff:fltTagsOff+pg.fltCount()]...)
		}
		ferr := pg.forEach(func(i int, e entry) bool {
			switch e.kind {
			case entryRegular:
				if want := t.calcBucket(t.hash(e.key)); want != bucket {
					chainErr = fmt.Errorf("hash check: key %q stored in bucket %d, hashes to %d",
						truncKey(e.key), bucket, want)
					return false
				}
				keys = append(keys, fltOp{h: t.hash(e.key), pos: pos})
				*count++
				*sum ^= pairHash(e.key, e.data)
			case entryBig:
				key, pages, err := t.bigChainPages(e.ref)
				if err != nil {
					chainErr = err
					return false
				}
				for _, p := range pages {
					if err := claim(p, fmt.Sprintf("big pair %q", truncKey(key))); err != nil {
						chainErr = err
						return false
					}
				}
				if want := t.calcBucket(t.hash(key)); want != bucket {
					chainErr = fmt.Errorf("hash check: big key %q referenced from bucket %d, hashes to %d",
						truncKey(key), bucket, want)
					return false
				}
				data, err := t.readBigData(e.ref, nil)
				if err != nil {
					chainErr = err
					return false
				}
				keys = append(keys, fltOp{h: t.hash(key), pos: pos})
				*count++
				*sum ^= pairHash(key, data)
			}
			return true
		})
		if ferr != nil {
			return false, ferr
		}
		if chainErr != nil {
			return false, chainErr
		}
		return false, nil
	})
	if err != nil {
		return err
	}
	return t.checkFilter(bucket, fltSat, fltInex, fltChain, fltTags, seen-1, keys)
}

// checkFilter validates one bucket's tag filter against the keys its
// chain walk found. A saturated filter answers nothing and is vacuously
// valid; fltChainLen is validated whenever it is below its saturation
// point (a value under 255 is maintained exactly).
func (t *Table) checkFilter(bucket uint32, sat, inexact bool, chainLen int, tags []byte, novfl int, keys []fltOp) error {
	if t.needsRecovery {
		return nil // torn filter bytes are rebuilt by Recover, not Check
	}
	if chainLen < 255 && chainLen != novfl {
		return fmt.Errorf("hash check: bucket %d filter records %d overflow pages, chain has %d",
			bucket, chainLen, novfl)
	}
	if sat {
		return nil
	}
	if len(tags) != len(keys) {
		return fmt.Errorf("hash check: bucket %d filter holds %d tags for %d keys",
			bucket, len(tags), len(keys))
	}
	for _, k := range keys {
		hints := tagHints(tags, k.h)
		if hints == 0 {
			return fmt.Errorf("hash check: bucket %d filter has no tag for a key at chain position %d (false negative)",
				bucket, k.pos)
		}
		if !inexact {
			hb := k.pos
			if hb > maxHint {
				hb = maxHint
			}
			if hints&(1<<hb) == 0 {
				return fmt.Errorf("hash check: bucket %d filter hints %#x miss a key at chain position %d",
					bucket, hints, k.pos)
			}
		}
	}
	return nil
}

// bigChainPages returns a big pair's key and the chain's page list,
// validating chain integrity along the way.
func (t *Table) bigChainPages(start oaddr) ([]byte, []oaddr, error) {
	key, err := t.bigKey(start)
	if err != nil {
		return nil, nil, err
	}
	var pages []oaddr
	buf := t.getScratch()
	defer t.putScratch(buf)
	o := start
	for o != 0 {
		if len(pages) > 1<<16 {
			return nil, nil, fmt.Errorf("hash check: big chain at %v exceeds 65536 pages (cycle?)", start)
		}
		pages = append(pages, o)
		_, next, err := t.readBigChainPage(o, buf)
		if err != nil {
			return nil, nil, err
		}
		o = next
	}
	return key, pages, nil
}

package core

import (
	"bytes"
	"strings"
	"testing"
)

func TestFillStatsEmpty(t *testing.T) {
	tbl := mustOpen(t, "", nil)
	defer tbl.Close()
	s, err := tbl.FillStats()
	if err != nil {
		t.Fatal(err)
	}
	if s.Keys != 0 || s.Buckets != 1 || s.OverflowPages != 0 || s.EmptyBuckets != 1 {
		t.Fatalf("empty table stats = %+v", s)
	}
	if !strings.Contains(s.String(), "keys=0") {
		t.Fatalf("String = %q", s.String())
	}
}

func TestFillStatsTracksLoad(t *testing.T) {
	tbl := mustOpen(t, "", &Options{Bsize: 256, Ffactor: 8})
	defer tbl.Close()
	for i := 0; i < 2000; i++ {
		if err := tbl.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	s, err := tbl.FillStats()
	if err != nil {
		t.Fatal(err)
	}
	if s.Keys != 2000 {
		t.Fatalf("Keys = %d", s.Keys)
	}
	// The fill factor bounds average keys per page near 8.
	if s.AvgKeysPerPage < 2 || s.AvgKeysPerPage > 10 {
		t.Fatalf("AvgKeysPerPage = %.2f with ffactor 8", s.AvgKeysPerPage)
	}
	if s.AvgFill <= 0 || s.AvgFill > 1 {
		t.Fatalf("AvgFill = %.2f", s.AvgFill)
	}
	if s.MaxChain < 1 {
		t.Fatalf("MaxChain = %d", s.MaxChain)
	}
}

func TestFillStatsSeparatesBigPairPages(t *testing.T) {
	tbl := mustOpen(t, "", &Options{Bsize: 256, Ffactor: 8})
	defer tbl.Close()
	for i := 0; i < 100; i++ {
		if err := tbl.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.Put([]byte("big"), bytes.Repeat([]byte("B"), 10000)); err != nil {
		t.Fatal(err)
	}
	s, err := tbl.FillStats()
	if err != nil {
		t.Fatal(err)
	}
	// 10 KB on 252-byte payload pages: ~40 pages.
	if s.BigPairPages < 30 {
		t.Fatalf("BigPairPages = %d, want ~40", s.BigPairPages)
	}
	if s.BitmapPages < 1 {
		t.Fatalf("BitmapPages = %d", s.BitmapPages)
	}
}

func TestFillStatsChainLength(t *testing.T) {
	// One bucket, no splits: the chain must grow and MaxChain see it.
	tbl := mustOpen(t, "", &Options{Bsize: 64, Ffactor: 1000, ControlledOnly: true})
	defer tbl.Close()
	for i := 0; i < 200; i++ {
		if err := tbl.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	s, err := tbl.FillStats()
	if err != nil {
		t.Fatal(err)
	}
	if s.Buckets != 1 {
		t.Fatalf("Buckets = %d", s.Buckets)
	}
	if s.MaxChain < 10 {
		t.Fatalf("MaxChain = %d for 200 keys on 64-byte pages", s.MaxChain)
	}
	if s.OverflowPages != s.MaxChain-1 {
		t.Fatalf("OverflowPages = %d, MaxChain = %d", s.OverflowPages, s.MaxChain)
	}
}

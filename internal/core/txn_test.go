package core

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"unixhash/internal/pagefile"
	"unixhash/internal/wal"
)

// walOpts returns small-page options with a caller-held WAL device, so a
// test can "crash" by materializing the store and re-opening against a
// copy of the log bytes.
func walOpts(dev wal.Device, store pagefile.Store) *Options {
	// The cache must hold every dirty page between checkpoints: a steal
	// would write post-checkpoint bytes over last-synced state.
	return &Options{Store: store, WALDevice: dev, Bsize: 128, Ffactor: 4, CacheSize: 4096}
}

func memWalFrom(b []byte) *wal.MemDevice {
	d := wal.NewMemDevice()
	d.WriteAt(b, 0)
	return d
}

func TestTxnRequiresWAL(t *testing.T) {
	tbl := mustOpen(t, "", nil)
	defer tbl.Close()
	if _, err := tbl.Begin(); !errors.Is(err, ErrNoWAL) {
		t.Fatalf("Begin without WAL: %v, want ErrNoWAL", err)
	}
}

func TestTxnCommitVisible(t *testing.T) {
	dev := wal.NewMemDevice()
	tbl := mustOpen(t, "", walOpts(dev, nil))
	defer tbl.Close()

	if err := tbl.Put(key(0), val(0)); err != nil {
		t.Fatalf("baseline put: %v", err)
	}
	x, err := tbl.Begin()
	if err != nil {
		t.Fatalf("begin: %v", err)
	}
	for i := 1; i <= 5; i++ {
		if err := x.Put(key(i), val(i)); err != nil {
			t.Fatalf("txn put %d: %v", i, err)
		}
	}
	if err := x.Put(key(0), val2(0)); err != nil { // replace
		t.Fatalf("txn replace: %v", err)
	}
	if err := x.Delete(key(3)); err != nil { // delete a key this txn put
		t.Fatalf("txn delete: %v", err)
	}
	// Nothing visible before commit.
	if _, err := tbl.Get(key(1)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("uncommitted key visible: %v", err)
	}
	if err := x.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
	for _, i := range []int{1, 2, 4, 5} {
		got, err := tbl.Get(key(i))
		if err != nil || !bytes.Equal(got, val(i)) {
			t.Fatalf("key %d after commit: %q, %v", i, got, err)
		}
	}
	if _, err := tbl.Get(key(3)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted key present after commit: %v", err)
	}
	if got, err := tbl.Get(key(0)); err != nil || !bytes.Equal(got, val2(0)) {
		t.Fatalf("replaced key: %q, %v", got, err)
	}
	if err := tbl.Check(); err != nil {
		t.Fatalf("check: %v", err)
	}
	if err := x.Commit(); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("double commit: %v, want ErrTxnDone", err)
	}
}

// TestTxnDurability is the tentpole contract: a committed transaction
// survives a crash with no table Sync — the pages never saw it; only the
// log did — and Recover replays it.
func TestTxnDurability(t *testing.T) {
	dev := wal.NewMemDevice()
	cs := pagefile.NewCrash(pagefile.NewMem(128, pagefile.CostModel{}))
	tbl := mustOpen(t, "", walOpts(dev, cs))

	for i := 0; i < 20; i++ {
		if err := tbl.Put(key(i), val(i)); err != nil {
			t.Fatalf("baseline put %d: %v", i, err)
		}
	}
	if err := tbl.Sync(); err != nil {
		t.Fatalf("baseline sync: %v", err)
	}

	// Three committed transactions, never synced into the pages. One
	// carries a big pair (300 bytes cannot fit a 128-byte page).
	big := bytes.Repeat([]byte{'B'}, 300)
	for txn := 0; txn < 3; txn++ {
		x, err := tbl.Begin()
		if err != nil {
			t.Fatalf("begin %d: %v", txn, err)
		}
		if err := x.Put(key(100+txn), val(100+txn)); err != nil {
			t.Fatalf("txn put: %v", err)
		}
		if err := x.Delete(key(txn)); err != nil {
			t.Fatalf("txn delete: %v", err)
		}
		if txn == 1 {
			if err := x.Put([]byte("bigkey"), big); err != nil {
				t.Fatalf("txn big put: %v", err)
			}
		}
		if err := x.Commit(); err != nil {
			t.Fatalf("commit %d: %v", txn, err)
		}
	}

	// Crash: the store is whatever reached it (header dirty-mark only,
	// since nothing forced a flush), the log is fully fsynced.
	ms, err := cs.Materialize(cs.Len(), 0)
	if err != nil {
		t.Fatalf("materialize: %v", err)
	}
	wdev := memWalFrom(dev.Bytes())

	// A plain Open must refuse to serve: there are unapplied commits.
	if _, err := Open("", walOpts(wdev, ms)); !errors.Is(err, ErrNeedsRecovery) {
		t.Fatalf("open with pending commits: %v, want ErrNeedsRecovery", err)
	}

	re, rep, err := Recover("", walOpts(wdev, ms))
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	defer re.Close()
	if rep.WALTxns != 3 || rep.WALOps != 7 {
		t.Fatalf("report: %d txns / %d ops replayed, want 3 / 7 (%s)", rep.WALTxns, rep.WALOps, rep)
	}
	for txn := 0; txn < 3; txn++ {
		if got, err := re.Get(key(100 + txn)); err != nil || !bytes.Equal(got, val(100+txn)) {
			t.Fatalf("txn %d key after recovery: %q, %v", txn, got, err)
		}
		if _, err := re.Get(key(txn)); !errors.Is(err, ErrNotFound) {
			t.Fatalf("txn %d deleted key after recovery: %v", txn, err)
		}
	}
	if got, err := re.Get([]byte("bigkey")); err != nil || !bytes.Equal(got, big) {
		t.Fatalf("big pair after recovery: %d bytes, %v", len(got), err)
	}
	if err := re.Check(); err != nil {
		t.Fatalf("check after recovery: %v", err)
	}
	// The replay checkpointed: the log was truncated and the header
	// carries the replayed LSN.
	g := re.Geometry()
	if g.WalLSN == 0 || g.WalLSN != g.AppliedLSN {
		t.Fatalf("post-recovery LSNs: wal=%d applied=%d", g.WalLSN, g.AppliedLSN)
	}
	snap, err := re.MetricsSnapshot()
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	if n := snap.Counter(MetricWalReplays); n != 3 {
		t.Fatalf("%s = %d, want 3", MetricWalReplays, n)
	}
}

// TestTxnRollback pins the acceptance criterion: Begin / mixed ops /
// Rollback leaves the table identical — same pairs, same geometry, and
// not a byte appended to the log.
func TestTxnRollback(t *testing.T) {
	dev := wal.NewMemDevice()
	tbl := mustOpen(t, "", walOpts(dev, nil))
	defer tbl.Close()

	for i := 0; i < 50; i++ {
		if err := tbl.Put(key(i), val(i)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	if err := tbl.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	before := tbl.Geometry()
	logBefore := dev.Bytes()

	x, err := tbl.Begin()
	if err != nil {
		t.Fatalf("begin: %v", err)
	}
	for i := 0; i < 10; i++ {
		if err := x.Put(key(200+i), val(200+i)); err != nil {
			t.Fatalf("txn put: %v", err)
		}
		if err := x.Delete(key(i)); err != nil {
			t.Fatalf("txn delete: %v", err)
		}
	}
	if err := x.Rollback(); err != nil {
		t.Fatalf("rollback: %v", err)
	}
	if err := x.Commit(); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("commit after rollback: %v, want ErrTxnDone", err)
	}

	if after := tbl.Geometry(); after != before {
		t.Fatalf("geometry changed across rollback:\n before %+v\n after  %+v", before, after)
	}
	if !bytes.Equal(dev.Bytes(), logBefore) {
		t.Fatalf("rollback appended %d log bytes", len(dev.Bytes())-len(logBefore))
	}
	for i := 0; i < 50; i++ {
		if got, err := tbl.Get(key(i)); err != nil || !bytes.Equal(got, val(i)) {
			t.Fatalf("key %d after rollback: %q, %v", i, got, err)
		}
	}
	if _, err := tbl.Get(key(200)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("rolled-back key visible: %v", err)
	}
	if err := tbl.Check(); err != nil {
		t.Fatalf("check: %v", err)
	}
}

func TestTxnEmptyAndErrors(t *testing.T) {
	tbl := mustOpen(t, "", walOpts(wal.NewMemDevice(), nil))
	defer tbl.Close()

	x, err := tbl.Begin()
	if err != nil {
		t.Fatalf("begin: %v", err)
	}
	if err := x.Put(nil, val(0)); !errors.Is(err, ErrEmptyKey) {
		t.Fatalf("empty key: %v", err)
	}
	if err := x.Delete(nil); !errors.Is(err, ErrEmptyKey) {
		t.Fatalf("empty delete key: %v", err)
	}
	if x.Len() != 0 {
		t.Fatalf("rejected ops buffered: %d", x.Len())
	}
	if err := x.Commit(); err != nil { // empty commit is a no-op
		t.Fatalf("empty commit: %v", err)
	}
	if err := x.Put(key(1), val(1)); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("put on done txn: %v", err)
	}

	// Deleting an absent key commits fine: redo semantics are
	// "ensure absent".
	x2, _ := tbl.Begin()
	if err := x2.Delete(key(42)); err != nil {
		t.Fatalf("buffer delete: %v", err)
	}
	if err := x2.Commit(); err != nil {
		t.Fatalf("commit ensure-absent: %v", err)
	}
}

// TestTxnCheckpoint verifies the checkpoint protocol: Sync folds the
// applied LSN into the header and truncates the log back to its header.
func TestTxnCheckpoint(t *testing.T) {
	dev := wal.NewMemDevice()
	tbl := mustOpen(t, "", walOpts(dev, nil))
	defer tbl.Close()

	for i := 0; i < 5; i++ {
		x, _ := tbl.Begin()
		if err := x.Put(key(i), val(i)); err != nil {
			t.Fatalf("txn put: %v", err)
		}
		if err := x.Commit(); err != nil {
			t.Fatalf("commit: %v", err)
		}
	}
	g := tbl.Geometry()
	if g.AppliedLSN == 0 || g.WalLSN != 0 {
		t.Fatalf("pre-checkpoint LSNs: applied=%d wal=%d", g.AppliedLSN, g.WalLSN)
	}
	if sz, _ := dev.Size(); sz <= wal.HeaderSize {
		t.Fatalf("log did not grow: %d bytes", sz)
	}
	if err := tbl.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	g = tbl.Geometry()
	if g.WalLSN != g.AppliedLSN {
		t.Fatalf("post-checkpoint LSNs: applied=%d wal=%d", g.AppliedLSN, g.WalLSN)
	}
	if sz, _ := dev.Size(); sz != wal.HeaderSize {
		t.Fatalf("log not truncated at checkpoint: %d bytes", sz)
	}
	snap, err := tbl.MetricsSnapshot()
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	if snap.Counter(MetricCheckpoints) == 0 {
		t.Fatalf("no checkpoint counted")
	}
	if snap.Counter(MetricTxnCommits) != 5 {
		t.Fatalf("%s = %d, want 5", MetricTxnCommits, snap.Counter(MetricTxnCommits))
	}
}

// TestTxnConcurrent drives parallel committers (with splits in flight)
// and checks atomic application: every transaction's keys land together.
func TestTxnConcurrent(t *testing.T) {
	dev := wal.NewMemDevice()
	tbl := mustOpen(t, "", walOpts(dev, nil))
	defer tbl.Close()

	const (
		workers = 8
		txns    = 40
		opsPer  = 4
	)
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < txns; i++ {
				x, err := tbl.Begin()
				if err != nil {
					errc <- err
					return
				}
				for j := 0; j < opsPer; j++ {
					n := w*100000 + i*opsPer + j
					if err := x.Put(key(n), val(n)); err != nil {
						errc <- err
						return
					}
				}
				if err := x.Commit(); err != nil {
					errc <- fmt.Errorf("worker %d txn %d: %w", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	for w := 0; w < workers; w++ {
		for i := 0; i < txns*opsPer; i++ {
			n := w*100000 + i
			if got, err := tbl.Get(key(n)); err != nil || !bytes.Equal(got, val(n)) {
				t.Fatalf("key %d: %q, %v", n, got, err)
			}
		}
	}
	if got, want := int64(tbl.Len()), int64(workers*txns*opsPer); got != want {
		t.Fatalf("Len = %d, want %d", got, want)
	}
	if err := tbl.Check(); err != nil {
		t.Fatalf("check: %v", err)
	}
	snap, err := tbl.MetricsSnapshot()
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	if n := snap.Counter(MetricTxnCommits); n != workers*txns {
		t.Fatalf("%s = %d, want %d", MetricTxnCommits, n, workers*txns)
	}
	if err := tbl.Sync(); err != nil {
		t.Fatalf("final sync: %v", err)
	}
}

// TestTxnFileBacked runs transactions against a real file pair (table +
// sibling .wal) and checks a clean close/reopen round-trip.
func TestTxnFileBacked(t *testing.T) {
	path := t.TempDir() + "/txn.db"
	tbl := mustOpen(t, path, &Options{WAL: true, Bsize: 256, Ffactor: 8})
	for i := 0; i < 30; i++ {
		x, err := tbl.Begin()
		if err != nil {
			t.Fatalf("begin: %v", err)
		}
		if err := x.Put(key(i), val(i)); err != nil {
			t.Fatalf("put: %v", err)
		}
		if err := x.Commit(); err != nil {
			t.Fatalf("commit: %v", err)
		}
	}
	if err := tbl.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	re := mustOpen(t, path, &Options{WAL: true})
	defer re.Close()
	for i := 0; i < 30; i++ {
		if got, err := re.Get(key(i)); err != nil || !bytes.Equal(got, val(i)) {
			t.Fatalf("key %d after reopen: %q, %v", i, got, err)
		}
	}
	if err := re.Check(); err != nil {
		t.Fatalf("check: %v", err)
	}
}

// TestWALAutoAttach pins the open-path guard: a header whose checkpoint
// LSN is nonzero proves the table is WAL-managed, so opening it without
// Options.WAL must not silently orphan the log (and with it any commit
// since the last checkpoint). Path-backed tables re-attach the sidecar
// log on their own; store-backed tables refuse loudly when the device
// is missing.
func TestWALAutoAttach(t *testing.T) {
	path := t.TempDir() + "/auto.db"
	tbl := mustOpen(t, path, &Options{WAL: true, Bsize: 256, Ffactor: 8})
	x, err := tbl.Begin()
	if err != nil {
		t.Fatalf("begin: %v", err)
	}
	if err := x.Put(key(1), val(1)); err != nil {
		t.Fatalf("put: %v", err)
	}
	if err := x.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
	if err := tbl.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Reopen WITHOUT Options.WAL: the sidecar log must come back on its
	// own — observable because Begin works and the checkpoint survives.
	re := mustOpen(t, path, nil)
	if g := re.Geometry(); g.WalLSN == 0 {
		t.Fatal("reopen lost the wal checkpoint LSN")
	}
	x, err = re.Begin()
	if err != nil {
		t.Fatalf("begin after plain reopen: %v", err)
	}
	if err := x.Put(key(2), val(2)); err != nil {
		t.Fatalf("put: %v", err)
	}
	if err := x.Commit(); err != nil {
		t.Fatalf("commit after plain reopen: %v", err)
	}
	if err := re.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// A store-backed WAL table whose device is not handed back must
	// refuse to open rather than silently roll back to the checkpoint.
	store := pagefile.NewMem(256, pagefile.CostModel{})
	dev := wal.NewMemDevice()
	mt := mustOpen(t, "", &Options{Store: store, WALDevice: dev, Bsize: 256, Ffactor: 8})
	x, err = mt.Begin()
	if err != nil {
		t.Fatalf("begin: %v", err)
	}
	if err := x.Put(key(3), val(3)); err != nil {
		t.Fatalf("put: %v", err)
	}
	if err := x.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
	if err := mt.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, err := Open("", &Options{Store: store, Bsize: 256, Ffactor: 8}); !errors.Is(err, ErrUnrecoverable) {
		t.Fatalf("open without device: err = %v, want ErrUnrecoverable", err)
	}
	if re, err := Open("", &Options{Store: store, WALDevice: dev, Bsize: 256, Ffactor: 8}); err != nil {
		t.Fatalf("open with device: %v", err)
	} else {
		re.Close()
	}
}

// TestWALAutoAttachBeforeFirstCheckpoint pins the nastiest auto-attach
// window: a table that attached a log and acknowledged a commit but
// crashed before its FIRST checkpoint still has walLSN == 0 in the
// header, so only the hdrWAL flag proves the log exists. Recover called
// without WAL options must still find the log and replay the commit —
// the original walLSN-keyed guard silently discarded it.
func TestWALAutoAttachBeforeFirstCheckpoint(t *testing.T) {
	path := t.TempDir() + "/first.db"
	tbl := mustOpen(t, path, &Options{WAL: true, Bsize: 256, Ffactor: 8})
	x, err := tbl.Begin()
	if err != nil {
		t.Fatalf("begin: %v", err)
	}
	if err := x.Put(key(1), val(1)); err != nil {
		t.Fatalf("put: %v", err)
	}
	if err := x.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
	if g := tbl.Geometry(); g.WalLSN != 0 {
		t.Fatalf("premise broken: checkpoint already ran (walLSN=%d)", g.WalLSN)
	}
	// Crash: abandon the handle without Close, so no checkpoint runs.
	// Every acknowledged byte is already on disk (markDirty synced the
	// dirty header, Commit fsynced the log).
	tbl = nil

	// A plain open must refuse (the file is dirty AND the log holds an
	// unapplied commit), never silently serve the pre-commit state.
	if _, err := Open(path, nil); !errors.Is(err, ErrNeedsRecovery) {
		t.Fatalf("plain open: err = %v, want ErrNeedsRecovery", err)
	}

	re, rep, err := Recover(path, nil)
	if err != nil {
		t.Fatalf("recover without wal options: %v", err)
	}
	defer re.Close()
	if rep.WALTxns != 1 {
		t.Fatalf("recover replayed %d txns, want 1 (report: %s)", rep.WALTxns, rep)
	}
	got, err := re.Get(key(1))
	if err != nil || !bytes.Equal(got, val(1)) {
		t.Fatalf("acknowledged commit lost: Get = %q, %v", got, err)
	}
	if g := re.Geometry(); g.WalLSN == 0 {
		t.Fatal("recovery did not checkpoint the replayed commit")
	}
}

package core

import (
	"fmt"
)

// Compact rebuilds the table into dst, which must be empty. The paper
// notes the file "does not contract when keys are deleted, so the number
// of buckets is actually equal to the maximum number of keys ever
// present in the table divided by the fill factor"; Compact is the
// recovery from that: the destination is created pre-sized for the
// *current* key count, so dead buckets, reclaimed-but-allocated overflow
// pages and loose page fill all disappear.
//
// Typical use:
//
//	dst, _ := core.Open(newPath, &core.Options{
//		Bsize: g.Bsize, Ffactor: g.Ffactor, Nelem: src.Len(),
//	})
//	err := src.Compact(dst)
//
// Compact does not close either table and copies through the iterator,
// so src may be read-only.
func (t *Table) Compact(dst *Table) error {
	if dst.Len() != 0 {
		return fmt.Errorf("hash: compact destination is not empty (%d keys)", dst.Len())
	}
	it := t.Iter()
	for it.Next() {
		if err := dst.Put(it.Key(), it.Value()); err != nil {
			return fmt.Errorf("hash: compact: %w", err)
		}
	}
	if err := it.Err(); err != nil {
		return fmt.Errorf("hash: compact scan: %w", err)
	}
	if dst.Len() != t.Len() {
		return fmt.Errorf("hash: compact copied %d of %d keys", dst.Len(), t.Len())
	}
	return nil
}

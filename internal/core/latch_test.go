package core

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"unixhash/internal/pagefile"
	"unixhash/internal/trace"
)

// TestRouteBucketMatchesCalc pins the identity routeBucket relies on:
// routing over the split pointer alone agrees with the stored-mask
// calcBucket in every state the header can be in — both the states
// expansion reaches (lowMask = highMask>>1) and the freshly initialized
// state (maxBucket = 2^k-1 with masks one generation wider).
func TestRouteBucketMatchesCalc(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	hashes := make([]uint32, 200)
	for i := range hashes {
		hashes[i] = rng.Uint32()
	}
	ref := func(h, maxB, high, low uint32) uint32 {
		b := h & high
		if b > maxB {
			b = h & low
		}
		return b
	}
	// Expansion-reachable states.
	for maxB := uint32(1); maxB <= 4097; maxB++ {
		high := uint32(1)<<len32(maxB) - 1
		low := high >> 1
		for _, h := range hashes {
			if got, want := routeBucket(h, maxB), ref(h, maxB, high, low); got != want {
				t.Fatalf("maxBucket=%d h=%#x: routeBucket=%d calcBucket=%d", maxB, h, got, want)
			}
		}
	}
	// Freshly initialized states: maxBucket = 2^k-1, stored masks one
	// generation wider than the derived ones.
	for k := uint32(0); k < 16; k++ {
		maxB := uint32(1)<<k - 1
		low := maxB
		high := uint32(1)<<(k+1) - 1
		for _, h := range hashes {
			if got, want := routeBucket(h, maxB), ref(h, maxB, high, low); got != want {
				t.Fatalf("init k=%d h=%#x: routeBucket=%d calcBucket=%d", k, h, got, want)
			}
		}
	}
	// And against a live table through a run of real expansions.
	tbl := mustOpen(t, "", &Options{Bsize: 128, Ffactor: 4})
	defer tbl.Close()
	for i := 0; i < 600; i++ {
		if err := tbl.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
		if i%37 == 0 {
			h := rng.Uint32()
			if got, want := routeBucket(h, tbl.geo.Load()), tbl.calcBucket(h); got != want {
				t.Fatalf("live table at %d keys, h=%#x: routeBucket=%d calcBucket=%d", i, h, got, want)
			}
		}
	}
}

func len32(x uint32) int {
	n := 0
	for x != 0 {
		x >>= 1
		n++
	}
	return n
}

// TestSplitStormConcurrentOps is the tentpole -race stress: several
// writers insert disjoint key ranges fast enough to force a continuous
// split storm while deleters and readers interleave on the same buckets.
// Afterwards every surviving key must read back exactly, the structural
// Check must pass, and the trace ring must show balanced split begin/end
// events — splits ran to completion under concurrent traffic.
func TestSplitStormConcurrentOps(t *testing.T) {
	tr := trace.New(1 << 15)
	tbl := mustOpen(t, "", &Options{
		Bsize:     256,
		Ffactor:   4, // splits early and often
		CacheSize: 64 * 1024,
		Trace:     tr,
	})
	defer tbl.Close()

	const (
		writers   = 4
		perWriter = 2500
		churn     = 200
	)
	wkey := func(w, i int) []byte { return []byte(fmt.Sprintf("storm-%d-%05d", w, i)) }
	wval := func(w, i int) []byte { return []byte(fmt.Sprintf("v-%d-%d", w, i)) }
	ckey := func(i int) []byte { return []byte(fmt.Sprintf("churn-%03d", i)) }

	for i := 0; i < churn; i++ {
		if err := tbl.Put(ckey(i), []byte("c0")); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, writers+4)

	// Writers: disjoint ranges, so every insert is a fresh key and the
	// fill-factor trigger fires continuously.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if err := tbl.Put(wkey(w, i), wval(w, i)); err != nil {
					errs <- fmt.Errorf("writer %d put %d: %w", w, i, err)
					return
				}
			}
		}(w)
	}

	// Deleter/re-inserter over the churn keys: Delete and Put race the
	// splits the writers force.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 4000; i++ {
			k := ckey(rng.Intn(churn))
			if rng.Intn(2) == 0 {
				if err := tbl.Delete(k); err != nil && !errors.Is(err, ErrNotFound) {
					errs <- fmt.Errorf("deleter: %w", err)
					return
				}
			} else {
				if err := tbl.Put(k, []byte(fmt.Sprintf("c%d", i))); err != nil {
					errs <- fmt.Errorf("deleter put: %w", err)
					return
				}
			}
		}
	}()

	// Readers: writers' keys must be exact once written; churn keys may
	// be absent but never torn.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + r)))
			dst := make([]byte, 0, 64)
			for i := 0; i < 6000; i++ {
				if rng.Intn(3) == 0 {
					k := ckey(rng.Intn(churn))
					v, err := tbl.Get(k)
					switch {
					case errors.Is(err, ErrNotFound):
					case err != nil:
						errs <- fmt.Errorf("reader %d churn: %w", r, err)
						return
					case v[0] != 'c':
						errs <- fmt.Errorf("reader %d churn: torn value %q", r, v)
						return
					}
				} else {
					w, i := rng.Intn(writers), rng.Intn(perWriter)
					var err error
					dst, err = tbl.GetBuf(wkey(w, i), dst)
					if errors.Is(err, ErrNotFound) {
						continue // not written yet
					}
					if err != nil {
						errs <- fmt.Errorf("reader %d: %w", r, err)
						return
					}
					if !bytes.Equal(dst, wval(w, i)) {
						errs <- fmt.Errorf("reader %d: key %d-%d: got %q", r, w, i, dst)
						return
					}
				}
			}
		}(r)
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		return
	}

	// Every written key must be intact.
	dst := make([]byte, 0, 64)
	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i++ {
			var err error
			dst, err = tbl.GetBuf(wkey(w, i), dst)
			if err != nil {
				t.Fatalf("after storm: key %d-%d: %v", w, i, err)
			}
			if !bytes.Equal(dst, wval(w, i)) {
				t.Fatalf("after storm: key %d-%d: got %q", w, i, dst)
			}
		}
	}
	if err := tbl.Check(); err != nil {
		t.Fatalf("table corrupt after split storm: %v", err)
	}

	// The ring overwrites oldest-first, so an end whose begin was
	// evicted is benign — but a begin with no later end means a split
	// never finished. Replay the surviving window in sequence order:
	// the open-split balance must return to zero.
	begins := tr.Events(0, trace.EvSplitBegin)
	ends := tr.Events(0, trace.EvSplitEnd)
	if len(begins) == 0 {
		t.Fatal("split storm produced no splits")
	}
	marks := append(append([]trace.Event{}, begins...), ends...)
	sort.Slice(marks, func(i, j int) bool { return marks[i].Seq < marks[j].Seq })
	open := 0
	for _, e := range marks {
		if e.Type == trace.EvSplitBegin {
			open++
		} else if open > 0 {
			open-- // an end with no begin in the window: begin evicted
		}
	}
	if open != 0 {
		t.Fatalf("unbalanced splits: %d begins never ended (%d begins, %d ends in window)",
			open, len(begins), len(ends))
	}
	chunks := tr.Events(0, trace.EvSplitChunk)
	helped := 0
	for _, e := range chunks {
		if e.Args[3] == 1 {
			helped++
		}
	}
	waits := len(tr.Events(0, trace.EvLatchWait))
	t.Logf("storm: %d splits, %d chunks (%d by helpers), %d latch waits",
		len(begins), len(chunks), helped, waits)
}

// TestCrashMidIncrementalSplit power-cuts a table in the middle of a
// split storm: after one completed sync, a burst of inserts forces a run
// of incremental splits whose page writes stream into the crash journal
// via evictions (the cache is tiny). Every prefix cut inside that storm
// must recover to exactly the synced state — a half-moved bucket never
// leaks into what Recover accepts.
func TestCrashMidIncrementalSplit(t *testing.T) {
	cs := pagefile.NewCrash(pagefile.NewMem(128, pagefile.CostModel{}))
	// CacheSize of a few pages: split page writes reach the journal
	// immediately through eviction, so prefixes cut mid-split.
	tbl := mustOpen(t, "", &Options{Store: cs, Bsize: 128, Ffactor: 4, CacheSize: 1024})

	model := map[string]string{}
	for i := 0; i < 80; i++ {
		k, v := key(i), val(i)
		if err := tbl.Put(k, v); err != nil {
			t.Fatal(err)
		}
		model[string(k)] = string(v)
	}
	if err := tbl.Sync(); err != nil {
		t.Fatal(err)
	}
	syncLen := cs.Len()
	epoch := tbl.Geometry().SyncEpoch
	splitsBefore := tbl.Stats().Expansions

	// The storm: unsynced inserts that force splits.
	for i := 80; i < 200; i++ {
		if err := tbl.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := tbl.Stats().Expansions - splitsBefore; got == 0 {
		t.Fatal("storm forced no splits; test is vacuous")
	}
	events := cs.Len()
	if events == syncLen {
		t.Fatal("storm wrote no pages; shrink the cache")
	}
	// Abandon the table without Close: the power cut.

	// The contract, prefix by prefix: Recover either reproduces exactly
	// the synced 80-key state, or fails loudly (ErrUnrecoverable for a
	// state whose post-sync writes are not provably discardable). It
	// never silently lands anywhere else — a half-moved bucket cannot
	// pass the (nkeys, pairSum) gate. The prefix cut exactly at the sync
	// must recover.
	recovered, loud := 0, 0
	for n := syncLen; n <= events; n++ {
		ms, err := cs.Materialize(n, 0)
		if err != nil {
			t.Fatalf("materialize(%d): %v", n, err)
		}
		rt, rep, err := Recover("", &Options{Store: ms, Bsize: 128, Ffactor: 4})
		if err != nil {
			if n == syncLen {
				t.Fatalf("prefix exactly at sync: recover failed: %v", err)
			}
			if !errors.Is(err, ErrUnrecoverable) {
				t.Fatalf("prefix %d: unexpected recover error: %v", n, err)
			}
			loud++
			continue
		}
		recovered++
		got := readAll(t, rt)
		if !mapsEqual(got, model) {
			rt.Close()
			t.Fatalf("prefix %d: recovered %d keys, want the %d-key synced state (report %+v)",
				n, len(got), len(model), rep)
		}
		if rep.SyncEpoch < epoch {
			rt.Close()
			t.Fatalf("prefix %d: epoch went backwards: %d < %d", n, rep.SyncEpoch, epoch)
		}
		if err := rt.Check(); err != nil {
			rt.Close()
			t.Fatalf("prefix %d: post-recovery check: %v", n, err)
		}
		rt.Close()
	}
	t.Logf("mid-split storm: %d prefixes, %d recovered to the synced state, %d failed loud",
		events-syncLen+1, recovered, loud)
}

package core

import (
	"bytes"
	"fmt"
	"sort"

	"unixhash/internal/buffer"
	"unixhash/internal/oplog"
	"unixhash/internal/trace"
)

// Batched write pipeline. PutBatch ingests many key/data pairs under a
// single acquisition of the table lock: the pairs are grouped by
// destination bucket, each bucket's chain is walked exactly once
// (removing stale copies and packing new pairs page by page), and the
// split work the inserts imply is deferred to one pass at the end of
// the batch. An empty table takes a presize fast path that expands
// straight to the final bucket count — the same geometry Nelem would
// have produced at create time — instead of splitting one generation
// at a time. See DESIGN.md §10.

// Pair is one key/data pair for batched insertion.
type Pair struct {
	Key  []byte
	Data []byte
}

// PutBatch stores every pair with Put (replace) semantics. The whole
// batch is applied under one table lock acquisition: concurrent
// readers observe either none or all of it. When a key appears more
// than once in the batch the last occurrence wins, matching the
// sequential-Put outcome. An empty key anywhere in the batch rejects
// the entire batch with ErrEmptyKey before anything is written.
func (t *Table) PutBatch(pairs []Pair) error {
	if t.tr == nil {
		return t.putBatch(pairs, nil)
	}
	sp := t.tr.OpBegin()
	err := t.putBatch(pairs, nil)
	t.tr.OpEnd(trace.OpBatch, uint64(len(pairs)), sp)
	return err
}

// PutBatchOp is PutBatch with an op ledger: the table-lock wait, the
// deferred split pass, and the pool traffic of the distribution pass are
// charged to led, and the batch's trace-event span is recorded on it.
func (t *Table) PutBatchOp(led *oplog.Ledger, pairs []Pair) error {
	if led == nil {
		return t.PutBatch(pairs)
	}
	if t.tr == nil {
		return t.putBatch(pairs, led)
	}
	seq0 := t.tr.Ring().Next()
	sp := t.tr.OpBegin()
	err := t.putBatch(pairs, led)
	t.tr.OpEnd(trace.OpBatch, uint64(len(pairs)), sp)
	led.SetTraceSpan(seq0, t.tr.Ring().Next())
	return err
}

func (t *Table) putBatch(pairs []Pair, led *oplog.Ledger) error {
	var st int64
	if led != nil {
		st = oplog.Clock()
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if led != nil {
		led.Since(oplog.PhaseLatchWait, st)
	}
	return t.putBatchLocked(pairs, led)
}

func (t *Table) putBatchLocked(pairs []Pair, led *oplog.Ledger) error {
	if err := t.checkWritable(); err != nil {
		return err
	}
	for i := range pairs {
		if len(pairs[i].Key) == 0 {
			return ErrEmptyKey
		}
	}
	if len(pairs) == 0 {
		return nil
	}
	t.tr.Emit(trace.EvBatchBegin, uint64(len(pairs)), 0, 0, 0)
	// Bumped even on a failed batch: pages may already have been
	// mutated, and group commit must only ever over-sync.
	defer t.mutSeq.Add(1)
	// One durable dirty mark covers the whole batch.
	if err := t.markDirty(); err != nil {
		return err
	}

	// Presize fast path: an empty table jumps straight to the bucket
	// count the batch implies, so no pair is ever placed in a bucket
	// that a later split would move it out of.
	if t.nkeysA.Load() == 0 {
		t.presizeLocked(len(pairs))
	}

	// Group the pairs by destination bucket. Splits are deferred to the
	// end of the batch, so the bucket mapping is stable throughout the
	// distribution pass; sorting by bucket number makes the pass touch
	// primary pages in ascending file order.
	type slot struct {
		bucket uint32
		idx    int
	}
	order := make([]slot, len(pairs))
	for i := range pairs {
		order[i] = slot{bucket: t.calcBucket(t.hash(pairs[i].Key)), idx: i}
	}
	sort.SliceStable(order, func(a, b int) bool { return order[a].bucket < order[b].bucket })

	groups := 0
	idxs := make([]int, 0, 64)
	for lo := 0; lo < len(order); {
		hi := lo
		idxs = idxs[:0]
		for hi < len(order) && order[hi].bucket == order[lo].bucket {
			idxs = append(idxs, order[hi].idx)
			hi++
		}
		if err := t.putBucketGroup(order[lo].bucket, pairs, idxs, led); err != nil {
			return err
		}
		groups++
		lo = hi
	}
	t.dirtyHdr.Store(true)
	t.tr.Emit(trace.EvBatchPhase, trace.BatchPhaseDistribute, uint64(groups), 0, 0)

	// Deferred split pass: all the fill-factor splits the batch earned,
	// in one sweep, plus at most one uncontrolled split if the batch
	// grew an overflow chain and the fill factor did not already force
	// growth — the same hybrid policy as the single-Put path, settled
	// once per batch instead of once per insert.
	uncontrolled := t.addedOvfl.Swap(false) && !t.controlledOnly
	splits := 0
	var splitSt int64
	if led != nil {
		splitSt = oplog.Clock()
	}
	for t.nkeysA.Load() > int64(t.hdr.ffactor)*int64(t.hdr.maxBucket+1) {
		if err := t.expand(false); err != nil {
			return err
		}
		splits++
	}
	if splits == 0 && uncontrolled {
		if err := t.expand(true); err != nil {
			return err
		}
		splits++
	}
	if led != nil && splits > 0 {
		led.Since(oplog.PhaseSplitAssist, splitSt)
	}
	t.tr.Emit(trace.EvBatchPhase, trace.BatchPhaseSplits, uint64(splits), 0, 0)

	// Amortized accounting: one batch, len(pairs) logical puts.
	t.m.puts.Add(int64(len(pairs)))
	t.m.batchPuts.Inc()
	t.m.batchPairs.Add(int64(len(pairs)))
	t.m.setShape(t.nkeysA.Load(), t.hdr.maxBucket)
	t.tr.Emit(trace.EvBatchEnd, uint64(len(pairs)), uint64(splits), 0, 0)
	return nil
}

// presizeLocked expands an empty table's geometry straight to the
// bucket count that storing n keys at the configured fill factor
// implies — the computation initHeader performs for Options.Nelem —
// skipping the one-generation-at-a-time split sequence. With no keys
// there is nothing to redistribute, so only the header changes: masks,
// maxBucket and the overflow split point advance together (carrying
// the cumulative spares count forward across skipped generations,
// exactly as expand does), preserving every existing overflow page
// address. A target at or below the current size is a no-op.
func (t *Table) presizeLocked(n int) {
	if t.nkeysA.Load() != 0 {
		return
	}
	want := nextPow2(uint32((int64(n) + int64(t.hdr.ffactor) - 1) / int64(t.hdr.ffactor)))
	if want < 1 {
		want = 1
	}
	if want <= t.hdr.maxBucket+1 {
		return
	}
	t.hdr.maxBucket = want - 1
	t.hdr.lowMask = want - 1
	t.hdr.highMask = want<<1 - 1
	if newPoint := ceilLog2(want); newPoint > t.hdr.ovflPoint {
		for s := t.hdr.ovflPoint + 1; s <= newPoint; s++ {
			t.hdr.spares[s] = t.hdr.spares[t.hdr.ovflPoint]
		}
		t.hdr.ovflPoint = newPoint
	}
	t.publishGeo()
	t.dirtyHdr.Store(true)
	t.m.presizes.Inc()
	t.m.setShape(t.nkeysA.Load(), t.hdr.maxBucket)
	t.tr.Emit(trace.EvBatchPhase, trace.BatchPhasePresize, uint64(want), 0, 0)
}

// pendingPair tracks one deduplicated batch pair during a bucket pass.
type pendingPair struct {
	idx      int  // index into the batch (last occurrence of the key)
	inserted bool // new copy has been placed on a page
	removed  bool // stale copy from before the batch has been removed
}

// fltOp records one tag-filter mutation — a key's hash and its chain
// position — deferred until a bucket pass can settle them all on the
// primary page in a single pin.
type fltOp struct {
	h   uint32
	pos int
}

// putBucketGroup applies the batch pairs at idxs (all hashing to
// bucket) in one walk of the bucket's chain. Each page is visited
// exactly once: stale copies of batch keys found on it are removed
// first, then pending pairs are packed into the space. Pairs that do
// not fit anywhere on the existing chain go onto fresh overflow pages
// appended at the tail.
func (t *Table) putBucketGroup(bucket uint32, pairs []Pair, idxs []int, led *oplog.Ledger) error {
	// Deduplicate within the group, last occurrence winning — the
	// outcome sequential Puts would produce. Small groups use a linear
	// scan; large ones (a batch concentrated on few buckets) a map.
	pending := make([]pendingPair, 0, len(idxs))
	var byKey map[string]int
	if len(idxs) > 16 {
		byKey = make(map[string]int, len(idxs))
	}
	for _, i := range idxs {
		k := pairs[i].Key
		at := -1
		if byKey != nil {
			if j, ok := byKey[string(k)]; ok {
				at = j
			}
		} else {
			for j := range pending {
				if bytes.Equal(pairs[pending[j].idx].Key, k) {
					at = j
					break
				}
			}
		}
		if at >= 0 {
			pending[at].idx = i
		} else {
			pending = append(pending, pendingPair{idx: i})
			if byKey != nil {
				byKey[string(k)] = len(pending) - 1
			}
		}
	}
	// findPending locates the pending entry for a key found on a page.
	findPending := func(k []byte) int {
		if byKey != nil {
			if j, ok := byKey[string(k)]; ok {
				return j
			}
			return -1
		}
		for j := range pending {
			if bytes.Equal(pairs[pending[j].idx].Key, k) {
				return j
			}
		}
		return -1
	}

	// stale describes one on-page entry superseded by the batch.
	type stale struct {
		entry int // entry index on the page
		ref   oaddr
		sum   uint64 // regular pairs: fingerprint captured during the scan
		pi    int
	}
	left := len(pending)
	pos := -1
	var tailAddr buffer.Addr
	var rems []stale
	// Filter maintenance is incremental, like the single-Put path: stale
	// removals and placements are recorded with their chain positions
	// during the walk (the batch never unlinks pages, so positions stay
	// valid) and settled on the primary in one pin at the end. The keys'
	// hashes come from the in-memory batch, so big refs need no re-read.
	var fRems, fAdds []fltOp

	err := t.walkChainOp(led, bucket, func(buf *buffer.Buf) (bool, error) {
		pos++
		pg := page(buf.Page)
		tailAddr = buf.Addr

		// Pass 1 over the page: find entries the batch replaces. The
		// page is not modified during forEach; removals are applied
		// after, in descending entry order so indices stay valid.
		rems = rems[:0]
		var inner error
		ferr := pg.forEach(func(i int, e entry) bool {
			switch e.kind {
			case entryRegular:
				if pi := findPending(e.key); pi >= 0 && !pending[pi].removed {
					rems = append(rems, stale{entry: i, sum: pairHash(e.key, e.data), pi: pi})
				}
			case entryBig:
				bk, err := t.bigKey(e.ref)
				if err != nil {
					inner = err
					return false
				}
				if pi := findPending(bk); pi >= 0 && !pending[pi].removed {
					rems = append(rems, stale{entry: i, ref: e.ref, pi: pi})
				}
			}
			return true
		})
		if ferr != nil {
			return false, ferr
		}
		if inner != nil {
			return false, inner
		}
		for j := len(rems) - 1; j >= 0; j-- {
			r := rems[j]
			sum := r.sum
			if r.ref != 0 {
				// Fingerprint the replaced big pair before its chain is
				// freed.
				old, err := t.readBigData(r.ref, nil)
				if err != nil {
					return false, err
				}
				sum = pairHash(pairs[pending[r.pi].idx].Key, old)
				if err := t.freeBigChain(r.ref); err != nil {
					return false, err
				}
			}
			if err := pg.removeEntry(r.entry); err != nil {
				return false, err
			}
			buf.Dirty.Store(true)
			t.nkeysA.Add(-1)
			t.xorPairSum(sum)
			pending[r.pi].removed = true
			fRems = append(fRems, fltOp{h: t.hash(pairs[pending[r.pi].idx].Key), pos: pos})
		}

		// Pass 2: pack pending pairs into whatever space the page has
		// (including space the removals just opened).
		if left > 0 {
			if err := t.packPending(buf, pairs, pending, &left, pos, &fAdds); err != nil {
				return false, err
			}
		}
		// Always walk to the end: stale copies of batch keys may sit on
		// later pages even when every pair has been placed.
		return false, nil
	})
	if err != nil {
		return err
	}

	// Whatever did not fit on the existing chain goes onto fresh
	// overflow pages appended at the tail.
	if left > 0 {
		tail, err := t.fetchAddrOp(led, tailAddr, bucket)
		if err != nil {
			return err
		}
		tailPos := pos
		for left > 0 {
			nb, err := t.appendOvfl(tail)
			if err != nil {
				t.pool.Put(tail)
				return err
			}
			tailPos++
			before := left
			if err := t.packPending(nb, pairs, pending, &left, tailPos, &fAdds); err != nil {
				t.pool.Put(nb)
				t.pool.Put(tail)
				return err
			}
			if left == before {
				t.pool.Put(nb)
				t.pool.Put(tail)
				return fmt.Errorf("%w: pair does not fit on empty page", ErrCorrupt)
			}
			t.pool.Put(tail)
			tail = nb
		}
		t.pool.Put(tail)
	}

	// Settle the deferred filter ops on the primary in one pin. Removals
	// first: a replaced key's old tag must leave before its new one (at a
	// possibly different position) lands, or the remove could cancel the
	// wrong byte.
	if len(fRems) > 0 || len(fAdds) > 0 {
		pb, err := t.getBucketPageOp(led, bucket)
		if err != nil {
			return err
		}
		fpg := page(pb.Page)
		for _, op := range fRems {
			fpg.filterRemove(op.h, op.pos)
		}
		for _, op := range fAdds {
			fpg.filterAdd(op.h, op.pos)
		}
		pb.Dirty.Store(true)
		t.pool.Put(pb)
	}
	return nil
}

// packPending inserts every uninserted pending pair that fits on buf's
// page, decrementing *left and keeping nkeys and the pair checksum
// current. Big pairs are written to their chain first, then referenced.
// Each placement records a filter add at pos (buf's chain position) in
// *adds for the caller to settle on the primary.
func (t *Table) packPending(buf *buffer.Buf, pairs []Pair, pending []pendingPair, left *int, pos int, adds *[]fltOp) error {
	pg := page(buf.Page)
	for pi := range pending {
		p := &pending[pi]
		if p.inserted {
			continue
		}
		k, d := pairs[p.idx].Key, pairs[p.idx].Data
		if t.isBig(len(k), len(d)) {
			if !pg.fitsRef() {
				continue
			}
			ref, err := t.putBigPair(k, d)
			if err != nil {
				return err
			}
			pg.addRef(ref)
		} else {
			if !pg.fitsRegular(len(k), len(d)) {
				continue
			}
			pg.addRegular(k, d)
		}
		buf.Dirty.Store(true)
		p.inserted = true
		*left--
		t.nkeysA.Add(1)
		t.xorPairSum(pairHash(k, d))
		*adds = append(*adds, fltOp{h: t.hash(k), pos: pos})
	}
	return nil
}

// DefaultBatchSize is the flush threshold a BatchWriter uses when the
// caller passes zero.
const DefaultBatchSize = 4096

// batchArenaBlock is the allocation unit for a BatchWriter's staging
// arena.
const batchArenaBlock = 64 * 1024

// BatchWriter accumulates key/data pairs and applies them with
// PutBatch whenever the buffered count reaches its flush threshold,
// turning a stream of inserts into amortized bucket-grouped batches.
// Add copies the key and data into an internal arena, so callers may
// reuse their buffers between calls. A BatchWriter is not safe for
// concurrent use; give each ingesting goroutine its own (their flushes
// serialize on the table lock).
type BatchWriter struct {
	t     *Table
	limit int
	pairs []Pair
	cur   []byte   // staging block currently being filled
	full  [][]byte // filled blocks kept alive until Flush
}

// NewBatchWriter returns a writer that flushes every limit pairs
// (DefaultBatchSize if limit <= 0).
func (t *Table) NewBatchWriter(limit int) *BatchWriter {
	if limit <= 0 {
		limit = DefaultBatchSize
	}
	return &BatchWriter{t: t, limit: limit, pairs: make([]Pair, 0, limit)}
}

// stage copies b into the arena and returns the stable copy.
func (w *BatchWriter) stage(b []byte) []byte {
	if len(b) == 0 {
		return nil
	}
	if cap(w.cur)-len(w.cur) < len(b) {
		if w.cur != nil {
			w.full = append(w.full, w.cur)
		}
		size := batchArenaBlock
		if len(b) > size {
			size = len(b)
		}
		w.cur = make([]byte, 0, size)
	}
	off := len(w.cur)
	w.cur = append(w.cur, b...)
	return w.cur[off:len(w.cur):len(w.cur)]
}

// Add buffers one pair, flushing the accumulated batch if the
// threshold is reached.
func (w *BatchWriter) Add(key, data []byte) error {
	if len(key) == 0 {
		return ErrEmptyKey
	}
	w.pairs = append(w.pairs, Pair{Key: w.stage(key), Data: w.stage(data)})
	if len(w.pairs) >= w.limit {
		return w.Flush()
	}
	return nil
}

// Pending reports the number of buffered, not yet flushed pairs.
func (w *BatchWriter) Pending() int { return len(w.pairs) }

// Flush applies the buffered pairs with PutBatch. It is a no-op when
// nothing is buffered; callers must Flush once after the last Add.
func (w *BatchWriter) Flush() error {
	if len(w.pairs) == 0 {
		return nil
	}
	err := w.t.PutBatch(w.pairs)
	w.pairs = w.pairs[:0]
	w.full = nil
	w.cur = w.cur[:0]
	return err
}

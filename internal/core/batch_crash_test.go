package core

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"unixhash/internal/pagefile"
)

// Batch-path crash consistency. The batched write pipeline changes the
// order mutations reach the store — one dirty epoch covers a whole
// batch, splits run deferred at batch end, and FlushAll rewrites the
// dirty set in file order — so the PR 2 recovery contract is re-proven
// over a PutBatch workload: every journal prefix (a power cut inside a
// batch, between batches, or inside the deferred-split pass) plus torn
// variants of the final write must recover to the exact contents of a
// completed sync, or fail loudly.

// crashBatchWorkload drives PutBatch chunks (with big pairs and
// interleaved deletes) over a CrashStore, syncing after each batch. The
// first batch is large enough to take the presize fast path on the empty
// table, so crash points inside presized geometry are in the matrix too.
func crashBatchWorkload(t *testing.T, batches, perBatch int) (*pagefile.CrashStore, []crashSnap) {
	t.Helper()
	cs := pagefile.NewCrash(pagefile.NewMem(128, pagefile.CostModel{}))
	opts := &Options{Store: cs, Bsize: 128, Ffactor: 4, CacheSize: 1024, GroupCommit: true}
	tbl := mustOpen(t, "", opts)

	model := map[string]string{}
	snaps := []crashSnap{{events: 0, epoch: 0, state: map[string]string{}}}
	record := func() {
		snaps = append(snaps, crashSnap{
			events: cs.Len(),
			epoch:  tbl.Geometry().SyncEpoch,
			state:  cloneState(model),
		})
	}

	next := 0
	for b := 0; b < batches; b++ {
		pairs := make([]Pair, 0, perBatch)
		for j := 0; j < perBatch; j++ {
			i := next
			next++
			k := key(i)
			var v []byte
			if i%17 == 13 {
				// Big pair: 300 bytes cannot fit a 128-byte page.
				v = bytes.Repeat([]byte{byte('A' + i%26)}, 300)
			} else if i%11 == 3 && b > 0 {
				// Replace a key from an earlier, already-synced batch.
				k = key(i - perBatch)
				v = []byte(fmt.Sprintf("replaced-%d", i))
			} else {
				v = val(i)
			}
			pairs = append(pairs, Pair{Key: k, Data: v})
			model[string(k)] = string(v)
		}
		if err := tbl.PutBatch(pairs); err != nil {
			t.Fatalf("batch %d: %v", b, err)
		}
		// A few deletes between the batch and its sync: the crash matrix
		// then holds prefixes where a batch epoch contains mixed mutations.
		for j := 0; j < 3; j++ {
			i := b*perBatch + j*5 + 1
			k := key(i)
			err := tbl.Delete(k)
			if _, present := model[string(k)]; present {
				if err != nil {
					t.Fatalf("delete %d: %v", i, err)
				}
				delete(model, string(k))
			} else if !errors.Is(err, ErrNotFound) {
				t.Fatalf("delete absent %d: %v", i, err)
			}
		}
		if err := tbl.Sync(); err != nil {
			t.Fatalf("sync after batch %d: %v", b, err)
		}
		record()
	}
	if err := tbl.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	record() // Close syncs
	return cs, snaps
}

// TestBatchCrashMatrix is the batch-pipeline analogue of
// TestCrashMatrix: every write prefix of the batched workload, and torn
// variants of each final write, must satisfy the recovery contract.
func TestBatchCrashMatrix(t *testing.T) {
	batches, perBatch := 4, 40
	if testing.Short() {
		batches, perBatch = 2, 20
	}
	cs, snaps := crashBatchWorkload(t, batches, perBatch)
	events := cs.Len()
	t.Logf("journal: %d events, %d sync snapshots", events, len(snaps))

	outcomes := map[string]int{}
	for n := 0; n <= events; n++ {
		outcomes[checkCrashState(t, cs, snaps, n, 0)]++
	}
	evs := cs.Events()
	for n := 1; n <= events; n++ {
		if evs[n-1].Sync {
			continue
		}
		for _, torn := range []int{1, 64, 127} {
			outcomes[checkCrashState(t, cs, snaps, n, torn)]++
		}
	}
	t.Logf("outcomes: %v", outcomes)
	for _, want := range []string{"recovered-clean", "recovered-dirty", "failed-loud"} {
		if outcomes[want] == 0 {
			t.Errorf("matrix never produced outcome %q", want)
		}
	}
}

// TestBatchCrashInsideSplitPass pins a crash point inside the deferred
// split pass specifically: a batch into a table held at one bucket
// (huge ffactor would prevent splits, so instead a small table gets a
// batch big enough that the fill factor forces many splits at batch
// end). The journal suffix after the last pair insert and before the
// sync is dominated by split writes; every prefix in that window must
// recover to the pre-batch synced state.
func TestBatchCrashInsideSplitPass(t *testing.T) {
	cs := pagefile.NewCrash(pagefile.NewMem(128, pagefile.CostModel{}))
	opts := &Options{Store: cs, Bsize: 128, Ffactor: 4, CacheSize: 1024}
	tbl := mustOpen(t, "", opts)

	model := map[string]string{}
	snaps := []crashSnap{{events: 0, epoch: 0, state: map[string]string{}}}
	// Seed + sync so the table is non-empty (no presize fast path) and
	// the deferred pass has real splitting to do.
	seed := batchPairs(0, 30, "seed")
	if err := tbl.PutBatch(seed); err != nil {
		t.Fatal(err)
	}
	for _, p := range seed {
		model[string(p.Key)] = string(p.Data)
	}
	if err := tbl.Sync(); err != nil {
		t.Fatal(err)
	}
	snaps = append(snaps, crashSnap{events: cs.Len(), epoch: tbl.Geometry().SyncEpoch, state: cloneState(model)})
	preSplitEvents := cs.Len()
	preBuckets := tbl.Geometry().MaxBucket

	// The second batch quadruples the key count: the deferred pass must
	// split repeatedly to restore the fill factor.
	grow := batchPairs(30, 150, "grow")
	if err := tbl.PutBatch(grow); err != nil {
		t.Fatal(err)
	}
	if got := tbl.Geometry().MaxBucket; got <= preBuckets {
		t.Fatalf("deferred split pass did not grow the table (%d -> %d buckets)", preBuckets+1, got+1)
	}
	for _, p := range grow {
		model[string(p.Key)] = string(p.Data)
	}
	if err := tbl.Close(); err != nil {
		t.Fatal(err)
	}
	snaps = append(snaps, crashSnap{events: cs.Len(), epoch: tbl.Geometry().SyncEpoch, state: cloneState(model)})

	// Every crash point from mid-batch through the split pass to the
	// final sync: recovery lands on the seed state or the final state,
	// never a hybrid.
	events := cs.Len()
	outcomes := map[string]int{}
	for n := preSplitEvents; n <= events; n++ {
		outcomes[checkCrashState(t, cs, snaps, n, 0)]++
	}
	t.Logf("split-pass window: %d states, outcomes %v", events-preSplitEvents+1, outcomes)
	if outcomes["recovered-clean"] == 0 {
		t.Error("no crash point recovered clean (expected at least the window edges)")
	}
}

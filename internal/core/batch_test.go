package core

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

func batchPairs(lo, hi int, tag string) []Pair {
	pairs := make([]Pair, 0, hi-lo)
	for i := lo; i < hi; i++ {
		pairs = append(pairs, Pair{
			Key:  []byte(fmt.Sprintf("key-%06d", i)),
			Data: []byte(fmt.Sprintf("%s-value-%06d", tag, i)),
		})
	}
	return pairs
}

func TestPutBatchBasic(t *testing.T) {
	tbl := mustOpen(t, "", &Options{Bsize: 256, Ffactor: 8})
	defer tbl.Close()

	pairs := batchPairs(0, 2000, "v1")
	if err := tbl.PutBatch(pairs); err != nil {
		t.Fatal(err)
	}
	if got := tbl.Len(); got != 2000 {
		t.Fatalf("Len = %d, want 2000", got)
	}
	for _, p := range pairs {
		v, err := tbl.Get(p.Key)
		if err != nil {
			t.Fatalf("Get %q: %v", p.Key, err)
		}
		if !bytes.Equal(v, p.Data) {
			t.Fatalf("Get %q = %q, want %q", p.Key, v, p.Data)
		}
	}
	if err := tbl.Check(); err != nil {
		t.Fatal(err)
	}
	snap, err := tbl.MetricsSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if got := snap.Counter(MetricBatchPuts); got != 1 {
		t.Errorf("batch puts = %d, want 1", got)
	}
	if got := snap.Counter(MetricBatchPairs); got != 2000 {
		t.Errorf("batch pairs = %d, want 2000", got)
	}
	if got := snap.Counter(MetricPuts); got != 2000 {
		t.Errorf("puts = %d, want 2000 (batch pairs count as puts)", got)
	}
}

func TestPutBatchReplaceAndDedupe(t *testing.T) {
	tbl := mustOpen(t, "", &Options{Bsize: 128, Ffactor: 4})
	defer tbl.Close()

	if err := tbl.PutBatch(batchPairs(0, 500, "old")); err != nil {
		t.Fatal(err)
	}
	// Replace half of them, and include every key twice in the same
	// batch — the later occurrence must win, as with sequential Puts.
	batch := append(batchPairs(0, 250, "mid"), batchPairs(0, 250, "new")...)
	if err := tbl.PutBatch(batch); err != nil {
		t.Fatal(err)
	}
	if got := tbl.Len(); got != 500 {
		t.Fatalf("Len = %d, want 500 (replaces must not grow the table)", got)
	}
	for i := 0; i < 500; i++ {
		key := []byte(fmt.Sprintf("key-%06d", i))
		want := fmt.Sprintf("old-value-%06d", i)
		if i < 250 {
			want = fmt.Sprintf("new-value-%06d", i)
		}
		v, err := tbl.Get(key)
		if err != nil {
			t.Fatalf("Get %q: %v", key, err)
		}
		if string(v) != want {
			t.Fatalf("Get %q = %q, want %q", key, v, want)
		}
	}
	if err := tbl.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestPutBatchBigPairs(t *testing.T) {
	tbl := mustOpen(t, "", &Options{Bsize: 128, Ffactor: 4})
	defer tbl.Close()

	big := bytes.Repeat([]byte("B"), 600)
	var pairs []Pair
	for i := 0; i < 200; i++ {
		data := []byte(fmt.Sprintf("small-%d", i))
		if i%5 == 0 {
			data = append([]byte(fmt.Sprintf("big-%d-", i)), big...)
		}
		pairs = append(pairs, Pair{Key: []byte(fmt.Sprintf("key-%04d", i)), Data: data})
	}
	if err := tbl.PutBatch(pairs); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Check(); err != nil {
		t.Fatal(err)
	}
	// Replace big with small and small with big, in one batch.
	var swap []Pair
	for i := 0; i < 200; i++ {
		data := []byte(fmt.Sprintf("now-big-%d-", i))
		if i%5 == 0 {
			data = []byte(fmt.Sprintf("now-small-%d", i))
		} else {
			data = append(data, big...)
		}
		swap = append(swap, Pair{Key: []byte(fmt.Sprintf("key-%04d", i)), Data: data})
	}
	if err := tbl.PutBatch(swap); err != nil {
		t.Fatal(err)
	}
	if got := tbl.Len(); got != 200 {
		t.Fatalf("Len = %d, want 200", got)
	}
	for _, p := range swap {
		v, err := tbl.Get(p.Key)
		if err != nil {
			t.Fatalf("Get %q: %v", p.Key, err)
		}
		if !bytes.Equal(v, p.Data) {
			t.Fatalf("Get %q: got %d bytes, want %d", p.Key, len(v), len(p.Data))
		}
	}
	if err := tbl.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestPutBatchEmptyKeyRejectsWholeBatch(t *testing.T) {
	tbl := mustOpen(t, "", &Options{Bsize: 256, Ffactor: 8})
	defer tbl.Close()

	batch := batchPairs(0, 10, "v")
	batch = append(batch, Pair{Key: nil, Data: []byte("x")})
	if err := tbl.PutBatch(batch); !errors.Is(err, ErrEmptyKey) {
		t.Fatalf("err = %v, want ErrEmptyKey", err)
	}
	if got := tbl.Len(); got != 0 {
		t.Fatalf("Len = %d after rejected batch, want 0", got)
	}
	if err := tbl.PutBatch(nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
}

func TestPutBatchReadOnly(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/batch.db"
	tbl := mustOpen(t, path, &Options{})
	if err := tbl.PutBatch(batchPairs(0, 10, "v")); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Close(); err != nil {
		t.Fatal(err)
	}
	ro := mustOpen(t, path, &Options{ReadOnly: true})
	defer ro.Close()
	if err := ro.PutBatch(batchPairs(0, 1, "v")); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("err = %v, want ErrReadOnly", err)
	}
}

// TestPutBatchMatchesSequentialPut drives a batch table and a
// sequential-Put table through the same randomized workload (duplicates,
// replaces, big pairs) and requires identical visible state.
func TestPutBatchMatchesSequentialPut(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	opts := func() *Options { return &Options{Bsize: 128, Ffactor: 4} }
	batched := mustOpen(t, "", opts())
	defer batched.Close()
	looped := mustOpen(t, "", opts())
	defer looped.Close()

	model := make(map[string]string)
	for round := 0; round < 20; round++ {
		n := 1 + rng.Intn(400)
		pairs := make([]Pair, 0, n)
		for i := 0; i < n; i++ {
			key := fmt.Sprintf("k%04d", rng.Intn(600))
			var val string
			if rng.Intn(13) == 0 {
				val = fmt.Sprintf("big:%d:%s", round, bytes.Repeat([]byte("x"), 200+rng.Intn(300)))
			} else {
				val = fmt.Sprintf("r%d-i%d", round, i)
			}
			pairs = append(pairs, Pair{Key: []byte(key), Data: []byte(val)})
			model[key] = val
		}
		if err := batched.PutBatch(pairs); err != nil {
			t.Fatalf("round %d: PutBatch: %v", round, err)
		}
		for _, p := range pairs {
			if err := looped.Put(p.Key, p.Data); err != nil {
				t.Fatalf("round %d: Put: %v", round, err)
			}
		}
	}
	if bl, ll := batched.Len(), looped.Len(); bl != ll || bl != len(model) {
		t.Fatalf("Len: batched %d, looped %d, model %d", bl, ll, len(model))
	}
	for key, want := range model {
		v, err := batched.Get([]byte(key))
		if err != nil {
			t.Fatalf("batched Get %q: %v", key, err)
		}
		if string(v) != want {
			t.Fatalf("batched Get %q = %.32q..., want %.32q...", key, v, want)
		}
	}
	if err := batched.Check(); err != nil {
		t.Fatalf("batched: %v", err)
	}
	if err := looped.Check(); err != nil {
		t.Fatalf("looped: %v", err)
	}
}

// TestPutBatchPresize: a batch into an empty table must jump straight to
// the nelem-derived geometry — the same shape Options.Nelem would have
// produced — and perform zero splits on the way.
func TestPutBatchPresize(t *testing.T) {
	const n = 10000
	presized := mustOpen(t, "", &Options{Bsize: 256, Ffactor: 8, Nelem: n})
	defer presized.Close()
	wantGeo := presized.Geometry()

	batched := mustOpen(t, "", &Options{Bsize: 256, Ffactor: 8})
	defer batched.Close()
	if err := batched.PutBatch(batchPairs(0, n, "v")); err != nil {
		t.Fatal(err)
	}
	geo := batched.Geometry()
	if geo.MaxBucket < wantGeo.MaxBucket {
		t.Errorf("presize fast path reached maxBucket %d, Nelem-created table has %d", geo.MaxBucket, wantGeo.MaxBucket)
	}
	snap, err := batched.MetricsSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if got := snap.Counter(MetricPresizes); got != 1 {
		t.Errorf("presizes = %d, want 1", got)
	}
	// The fill factor cannot force a split below ffactor*(maxBucket+1)
	// keys, and the presized geometry holds n keys exactly at that bound.
	splits := snap.Counter(MetricSplitsControlled)
	if splits > 1 {
		t.Errorf("presized batch performed %d controlled splits, want <= 1", splits)
	}
	if err := batched.Check(); err != nil {
		t.Fatal(err)
	}

	// A second batch must not re-presize a non-empty table.
	if err := batched.PutBatch(batchPairs(n, n+100, "v")); err != nil {
		t.Fatal(err)
	}
	snap, _ = batched.MetricsSnapshot()
	if got := snap.Counter(MetricPresizes); got != 1 {
		t.Errorf("presizes after second batch = %d, want still 1", got)
	}
}

// TestPresizeAfterDrain: emptying a table (nkeys back to 0) leaves
// non-trivial geometry and possibly freed overflow pages; a presize on
// the next batch must keep every invariant.
func TestPresizeAfterDrain(t *testing.T) {
	tbl := mustOpen(t, "", &Options{Bsize: 128, Ffactor: 2})
	defer tbl.Close()
	pairs := batchPairs(0, 300, "v")
	if err := tbl.PutBatch(pairs); err != nil {
		t.Fatal(err)
	}
	for _, p := range pairs {
		if err := tbl.Delete(p.Key); err != nil {
			t.Fatal(err)
		}
	}
	if got := tbl.Len(); got != 0 {
		t.Fatalf("Len = %d after drain", got)
	}
	// Much larger second load: presize wants to expand the geometry.
	if err := tbl.PutBatch(batchPairs(0, 5000, "w")); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Check(); err != nil {
		t.Fatal(err)
	}
	if got := tbl.Len(); got != 5000 {
		t.Fatalf("Len = %d, want 5000", got)
	}
}

func TestBatchWriter(t *testing.T) {
	tbl := mustOpen(t, "", &Options{Bsize: 256, Ffactor: 8})
	defer tbl.Close()

	w := tbl.NewBatchWriter(100)
	key := make([]byte, 0, 32)
	val := make([]byte, 0, 32)
	for i := 0; i < 1234; i++ {
		// Reuse the caller buffers across Adds: the writer must copy.
		key = append(key[:0], fmt.Sprintf("key-%06d", i)...)
		val = append(val[:0], fmt.Sprintf("val-%06d", i)...)
		if err := w.Add(key, val); err != nil {
			t.Fatal(err)
		}
	}
	if p := w.Pending(); p != 1234%100 {
		t.Fatalf("Pending = %d, want %d", p, 1234%100)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := tbl.Len(); got != 1234 {
		t.Fatalf("Len = %d, want 1234", got)
	}
	for i := 0; i < 1234; i++ {
		v, err := tbl.Get([]byte(fmt.Sprintf("key-%06d", i)))
		if err != nil || string(v) != fmt.Sprintf("val-%06d", i) {
			t.Fatalf("Get key-%06d = %q, %v", i, v, err)
		}
	}
	if err := w.Add(nil, []byte("x")); !errors.Is(err, ErrEmptyKey) {
		t.Fatalf("Add empty key: %v, want ErrEmptyKey", err)
	}
	if err := tbl.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestBatchWriterArenaStaging exercises the staging arena's block
// rollover: pairs large enough that several fill one block, forcing new
// blocks mid-batch, must all survive intact until Flush.
func TestBatchWriterArenaStaging(t *testing.T) {
	tbl := mustOpen(t, "", &Options{Bsize: 4096, Ffactor: 16})
	defer tbl.Close()
	w := tbl.NewBatchWriter(500)
	want := make(map[string]byte)
	for i := 0; i < 300; i++ {
		key := []byte(fmt.Sprintf("key-%04d", i))
		data := bytes.Repeat([]byte{byte(i)}, 700) // ~93 pairs per 64 KB block
		want[string(key)] = byte(i)
		if err := w.Add(key, data); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	for key, b := range want {
		v, err := tbl.Get([]byte(key))
		if err != nil {
			t.Fatalf("Get %q: %v", key, err)
		}
		if len(v) != 700 || v[0] != b || v[699] != b {
			t.Fatalf("Get %q: staged bytes corrupted (len %d, first %d, want %d)", key, len(v), v[0], b)
		}
	}
}

// TestGroupCommitJoins: with GroupCommit, a Sync covering no new
// mutations joins the previous one instead of issuing another fsync.
func TestGroupCommitJoins(t *testing.T) {
	tbl := mustOpen(t, "", &Options{Bsize: 256, Ffactor: 8, GroupCommit: true})
	defer tbl.Close()

	if err := tbl.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Sync(); err != nil {
		t.Fatal(err)
	}
	syncsAfterFirst := tbl.Store().Stats().Snapshot().Syncs
	// No mutation since: this Sync must join, not touch the store.
	if err := tbl.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := tbl.Store().Stats().Snapshot().Syncs; got != syncsAfterFirst {
		t.Errorf("joined Sync performed store syncs (%d -> %d)", syncsAfterFirst, got)
	}
	snap, err := tbl.MetricsSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if got := snap.Counter(MetricGroupJoins); got != 1 {
		t.Errorf("group commit joins = %d, want 1", got)
	}
	// A new mutation makes the next Sync lead again.
	if err := tbl.Put([]byte("k2"), []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := tbl.Store().Stats().Snapshot().Syncs; got == syncsAfterFirst {
		t.Error("Sync after new mutation did not reach the store")
	}
}

// TestGroupCommitConcurrent hammers PutBatch + shared Sync from many
// goroutines (run under -race in CI) and verifies every batch that
// Synced successfully is fully readable afterwards.
func TestGroupCommitConcurrent(t *testing.T) {
	tbl := mustOpen(t, "", &Options{Bsize: 256, Ffactor: 8, GroupCommit: true, CacheSize: 1 << 20})
	defer tbl.Close()

	const writers = 8
	const perWriter = 300
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lo := w * perWriter
			for chunk := 0; chunk < 3; chunk++ {
				base := lo + chunk*perWriter/3
				if err := tbl.PutBatch(batchPairs(base, base+perWriter/3, "gc")); err != nil {
					errs <- fmt.Errorf("writer %d: %w", w, err)
					return
				}
				if err := tbl.Sync(); err != nil {
					errs <- fmt.Errorf("writer %d sync: %w", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := tbl.Len(); got != writers*perWriter {
		t.Fatalf("Len = %d, want %d", got, writers*perWriter)
	}
	if err := tbl.Check(); err != nil {
		t.Fatal(err)
	}
	snap, err := tbl.MetricsSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	syncCalls := snap.Counter(MetricSyncs) + snap.Counter(MetricGroupJoins)
	if syncCalls == 0 {
		t.Error("no syncs recorded")
	}
}

func TestCeilLog2MatchesLoop(t *testing.T) {
	for x := uint32(0); x < 1<<16; x++ {
		if got, want := ceilLog2(x), ceilLog2Loop(x); got != want {
			t.Fatalf("ceilLog2(%d) = %d, loop says %d", x, got, want)
		}
	}
	for _, x := range []uint32{1<<31 - 1, 1 << 31, 1<<31 + 1, ^uint32(0)} {
		if got, want := ceilLog2(x), ceilLog2Loop(x); got != want {
			t.Fatalf("ceilLog2(%d) = %d, loop says %d", x, got, want)
		}
	}
}

// ceilLog2Loop is the 4.4BSD __log2 shift loop this package used before
// the bits.Len32 replacement, kept as the reference implementation for
// the equivalence test and the microbenchmark.
func ceilLog2Loop(x uint32) uint32 {
	var p uint32
	for v := uint32(1); v < x; v <<= 1 {
		p++
		if p >= 32 {
			break
		}
	}
	return p
}

var sinkU32 uint32

func BenchmarkCeilLog2(b *testing.B) {
	b.Run("loop", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sinkU32 += ceilLog2Loop(uint32(i) | 1)
		}
	})
	b.Run("bits", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sinkU32 += ceilLog2(uint32(i) | 1)
		}
	})
}

func BenchmarkBucketToPage(b *testing.B) {
	h := &header{hdrPages: 1}
	for i := range h.spares {
		h.spares[i] = uint32(i * 3)
	}
	b.Run("bits", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sinkU32 += h.bucketToPage(uint32(i) & 0xffff)
		}
	})
}

func BenchmarkPutBatch(b *testing.B) {
	pairs := batchPairs(0, 10000, "v")
	b.Run("looped", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tbl, _ := Open("", &Options{Bsize: 1024, Ffactor: 16, CacheSize: 1 << 22})
			for _, p := range pairs {
				if err := tbl.Put(p.Key, p.Data); err != nil {
					b.Fatal(err)
				}
			}
			tbl.Close()
		}
	})
	b.Run("batch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tbl, _ := Open("", &Options{Bsize: 1024, Ffactor: 16, CacheSize: 1 << 22})
			if err := tbl.PutBatch(pairs); err != nil {
				b.Fatal(err)
			}
			tbl.Close()
		}
	})
}

package core

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"

	"unixhash/internal/pagefile"
)

// Crash-consistency tests. A workload runs over a CrashStore, which
// journals every page write and sync barrier. Every prefix of that
// journal — including torn variants of the final write — is a possible
// power-cut state; each one is materialized, recovered, and checked
// against the model: recovery either restores the exact contents of a
// completed sync no older than the last one fully inside the prefix, or
// fails loudly. It never silently returns anything else.

// crashSnap records the model state at one completed table-level sync.
type crashSnap struct {
	events int // journal length when the sync completed
	epoch  uint64
	state  map[string]string
}

func cloneState(m map[string]string) map[string]string {
	c := make(map[string]string, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

// crashWorkload builds a table over a fresh CrashStore, running inserts,
// deletes and big pairs with periodic syncs. It returns the journal and
// the snapshot at every completed sync (snapshot 0 is the empty
// pre-create state).
func crashWorkload(t *testing.T, nops, syncEvery int) (*pagefile.CrashStore, []crashSnap) {
	t.Helper()
	cs := pagefile.NewCrash(pagefile.NewMem(128, pagefile.CostModel{}))
	opts := &Options{Store: cs, Bsize: 128, Ffactor: 4, CacheSize: 1024}
	tbl := mustOpen(t, "", opts)

	model := map[string]string{}
	snaps := []crashSnap{{events: 0, epoch: 0, state: map[string]string{}}}
	record := func() {
		snaps = append(snaps, crashSnap{
			events: cs.Len(),
			epoch:  tbl.Geometry().SyncEpoch,
			state:  cloneState(model),
		})
	}

	bigVal := func(i int) []byte { return bytes.Repeat([]byte{byte('A' + i%26)}, 300) }
	for i := 0; i < nops; i++ {
		switch {
		case i%17 == 13:
			// A big pair: 300 bytes of data cannot fit a 128-byte page.
			k, v := key(i), bigVal(i)
			if err := tbl.Put(k, v); err != nil {
				t.Fatalf("put big %d: %v", i, err)
			}
			model[string(k)] = string(v)
		case i%7 == 5 && i > 7:
			k := key(i - 5)
			err := tbl.Delete(k)
			if _, present := model[string(k)]; present {
				if err != nil {
					t.Fatalf("delete %d: %v", i-5, err)
				}
				delete(model, string(k))
			} else if !errors.Is(err, ErrNotFound) {
				t.Fatalf("delete absent %d: %v", i-5, err)
			}
		default:
			k, v := key(i), val(i)
			if err := tbl.Put(k, v); err != nil {
				t.Fatalf("put %d: %v", i, err)
			}
			model[string(k)] = string(v)
		}
		if (i+1)%syncEvery == 0 {
			if err := tbl.Sync(); err != nil {
				t.Fatalf("sync at %d: %v", i, err)
			}
			record()
		}
	}
	if err := tbl.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	record() // Close syncs
	return cs, snaps
}

// readAll iterates the whole table into a map.
func readAll(t *testing.T, tbl *Table) map[string]string {
	t.Helper()
	out := map[string]string{}
	it := tbl.Iter()
	for it.Next() {
		out[string(it.Key())] = string(it.Value())
	}
	if err := it.Err(); err != nil {
		t.Fatalf("iterate: %v", err)
	}
	return out
}

// checkCrashState materializes one crash state and verifies the
// recovery contract, returning a short outcome label for counters.
func checkCrashState(t *testing.T, cs *pagefile.CrashStore, snaps []crashSnap, n, torn int) string {
	t.Helper()
	ms, err := cs.Materialize(n, torn)
	if err != nil {
		t.Fatalf("materialize(%d, %d): %v", n, torn, err)
	}

	// The newest snapshot fully inside the prefix is the floor: recovery
	// may land there or on any later sync whose writes made it in.
	floor := 0
	for i, s := range snaps {
		if s.events <= n {
			floor = i
		}
	}

	tbl, rep, err := Recover("", &Options{Store: ms, Bsize: 128, Ffactor: 4})
	if err != nil {
		// Loud failure is within contract for mid-protocol states, but a
		// crash exactly at a completed sync (untorn) must recover.
		if torn == 0 && snaps[floor].events == n {
			t.Fatalf("prefix %d (exactly at sync %d): recover failed: %v", n, floor, err)
		}
		return "failed-loud"
	}
	defer tbl.Close()

	got := readAll(t, tbl)
	matched := -1
	for i := floor; i < len(snaps); i++ {
		if mapsEqual(got, snaps[i].state) {
			matched = i
			break
		}
	}
	if matched < 0 {
		t.Fatalf("prefix %d torn %d: recovered %d keys matching no snapshot >= %d (report %+v)",
			n, torn, len(got), floor, rep)
	}
	if rep.SyncEpoch < snaps[floor].epoch {
		t.Fatalf("prefix %d torn %d: epoch went backwards: %d < %d", n, torn, rep.SyncEpoch, snaps[floor].epoch)
	}
	if err := tbl.Check(); err != nil {
		t.Fatalf("prefix %d torn %d: post-recovery Check: %v", n, torn, err)
	}
	// The recovered table must be fully usable.
	probe := []byte("post-recovery-probe")
	if err := tbl.Put(probe, probe); err != nil {
		t.Fatalf("prefix %d torn %d: post-recovery put: %v", n, torn, err)
	}
	if v, err := tbl.Get(probe); err != nil || !bytes.Equal(v, probe) {
		t.Fatalf("prefix %d torn %d: post-recovery get: %v", n, torn, err)
	}
	if rep.WasDirty {
		return "recovered-dirty"
	}
	return "recovered-clean"
}

func mapsEqual(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// TestCrashMatrix replays every write prefix of a synced workload —
// including torn final pages — and asserts the recovery contract on
// each: exact last-synced contents or a loud error, never silent wrong
// answers.
func TestCrashMatrix(t *testing.T) {
	nops, syncEvery := 120, 25
	if testing.Short() {
		nops, syncEvery = 40, 10
	}
	cs, snaps := crashWorkload(t, nops, syncEvery)
	events := cs.Len()
	t.Logf("journal: %d events, %d sync snapshots", events, len(snaps))

	outcomes := map[string]int{}
	for n := 0; n <= events; n++ {
		outcomes[checkCrashState(t, cs, snaps, n, 0)]++
	}
	// Torn variants of every prefix ending in a write: the final page
	// lands partially (first k bytes new, tail old or zero).
	evs := cs.Events()
	for n := 1; n <= events; n++ {
		if evs[n-1].Sync {
			continue
		}
		for _, torn := range []int{1, 64, 127} {
			outcomes[checkCrashState(t, cs, snaps, n, torn)]++
		}
	}
	t.Logf("outcomes: %v", outcomes)
	// The matrix must exercise every leg of the contract: clean reopens
	// at sync boundaries, genuine dirty-flag recoveries, and loud
	// refusals for states that cannot reproduce a synced state.
	for _, want := range []string{"recovered-clean", "recovered-dirty", "failed-loud"} {
		if outcomes[want] == 0 {
			t.Errorf("matrix never produced outcome %q", want)
		}
	}
}

// TestCrashDirtyOpenRefused: a crash after the durable dirty mark but
// before the next sync must refuse a normal Open with ErrNeedsRecovery;
// AllowDirty opens it for inspection only — Verify reports the problem,
// mutations and Sync are rejected, and Close does not stamp it clean.
func TestCrashDirtyOpenRefused(t *testing.T) {
	cs := pagefile.NewCrash(pagefile.NewMem(128, pagefile.CostModel{}))
	tbl := mustOpen(t, "", &Options{Store: cs, Bsize: 128, Ffactor: 4})
	for i := 0; i < 20; i++ {
		if err := tbl.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.Sync(); err != nil {
		t.Fatal(err)
	}
	// This Put durably marks the file dirty before mutating anything;
	// the mutation itself stays in the buffer pool.
	if err := tbl.Put(key(100), val(100)); err != nil {
		t.Fatal(err)
	}
	ms, err := cs.Materialize(cs.Len(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Close(); err != nil {
		t.Fatal(err)
	}

	if _, err := Open("", &Options{Store: ms, Bsize: 128, Ffactor: 4}); !errors.Is(err, ErrNeedsRecovery) {
		t.Fatalf("open of dirty crash state = %v, want ErrNeedsRecovery", err)
	}

	ro, err := Open("", &Options{Store: ms, Bsize: 128, Ffactor: 4, AllowDirty: true, ReadOnly: true})
	if err != nil {
		t.Fatalf("AllowDirty open: %v", err)
	}
	// The synced keys are readable for inspection.
	if v, err := ro.Get(key(3)); err != nil || !bytes.Equal(v, val(3)) {
		t.Fatalf("inspection get: %v", err)
	}
	// Verify of a dirty file never returns nil — here the last-synced
	// state is intact, so it reports that recovery is needed.
	if err := ro.Verify(); !errors.Is(err, ErrNeedsRecovery) {
		t.Fatalf("Verify of intact dirty file = %v, want ErrNeedsRecovery", err)
	}
	if err := ro.Close(); err != nil {
		t.Fatalf("close inspection table: %v", err)
	}

	tblW, err := Open("", &Options{Store: ms, Bsize: 128, Ffactor: 4, AllowDirty: true})
	if err != nil {
		t.Fatalf("AllowDirty writable open: %v", err)
	}
	if err := tblW.Put([]byte("x"), []byte("y")); !errors.Is(err, ErrNeedsRecovery) {
		t.Fatalf("put on unrecovered table = %v, want ErrNeedsRecovery", err)
	}
	if err := tblW.Delete(key(0)); !errors.Is(err, ErrNeedsRecovery) {
		t.Fatalf("delete on unrecovered table = %v, want ErrNeedsRecovery", err)
	}
	if err := tblW.Sync(); !errors.Is(err, ErrNeedsRecovery) {
		t.Fatalf("sync on unrecovered table = %v, want ErrNeedsRecovery", err)
	}
	if err := tblW.Close(); err != nil {
		t.Fatalf("close unrecovered table: %v", err)
	}
	// Close must not have blessed the file: it still refuses normal opens.
	if _, err := Open("", &Options{Store: ms, Bsize: 128, Ffactor: 4}); !errors.Is(err, ErrNeedsRecovery) {
		t.Fatalf("open after inspection close = %v, want ErrNeedsRecovery", err)
	}
}

// TestCrashUnrecoverableIsLoud: a dirty file whose pages cannot
// reproduce the last-synced pairs must fail recovery with
// ErrUnrecoverable and be left untouched. No silent answers.
func TestCrashUnrecoverableIsLoud(t *testing.T) {
	cs, _ := crashWorkload(t, 40, 10)
	ms, err := cs.Materialize(cs.Len(), 0)
	if err != nil {
		t.Fatal(err)
	}

	// Re-mark the header dirty, as a crashed writer would have left it.
	var h header
	buf := make([]byte, 3*128) // headerSize 284 -> 3 pages at bsize 128
	for i := 0; i < 3; i++ {
		if err := ms.ReadPage(uint32(i), buf[i*128:(i+1)*128]); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.decode(buf); err != nil {
		t.Fatalf("decode clean header: %v", err)
	}
	h.flags |= hdrDirty
	h.encode(buf)
	for i := 0; i < 3; i++ {
		if err := ms.WritePage(uint32(i), buf[i*128:(i+1)*128]); err != nil {
			t.Fatal(err)
		}
	}

	// Corrupt pair bytes that are provably in use: find a slot-structured
	// page with entries and flip its packed data region [low, end) —
	// stored key/data bytes change under an intact page structure.
	pg := make([]byte, 128)
	corrupted := false
	for pn := h.hdrPages; pn < ms.NPages() && !corrupted; pn++ {
		if err := ms.ReadPage(pn, pg); err != nil {
			t.Fatal(err)
		}
		if isBigPage(pg) || isBitmapPage(pg) {
			continue
		}
		p := page(pg)
		if p.nslots() < 2 || p.slot(0) == markOvfl || p.low() >= len(pg) {
			continue
		}
		for i := p.low(); i < len(pg); i++ {
			pg[i] ^= 0x5A
		}
		if err := ms.WritePage(pn, pg); err != nil {
			t.Fatal(err)
		}
		corrupted = true
	}
	if !corrupted {
		t.Fatal("found no data page with live pairs to corrupt")
	}

	if _, _, err := Recover("", &Options{Store: ms, Bsize: 128, Ffactor: 4}); !errors.Is(err, ErrUnrecoverable) {
		t.Fatalf("recover of trashed file = %v, want ErrUnrecoverable", err)
	}
	// Verify agrees, and the failed recovery left the file dirty: normal
	// opens still refuse it.
	insp, err := Open("", &Options{Store: ms, Bsize: 128, Ffactor: 4, AllowDirty: true, ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := insp.Verify(); !errors.Is(err, ErrUnrecoverable) {
		t.Fatalf("Verify of trashed file = %v, want ErrUnrecoverable", err)
	}
	insp.Close()
	if _, err := Open("", &Options{Store: ms, Bsize: 128, Ffactor: 4}); !errors.Is(err, ErrNeedsRecovery) {
		t.Fatalf("open after failed recovery = %v, want ErrNeedsRecovery", err)
	}
}

// TestSyncEpochMonotonic: every sync that persists changes bumps the
// epoch exactly once; a sync with nothing to persist leaves it alone.
func TestSyncEpochMonotonic(t *testing.T) {
	tbl := mustOpen(t, "", &Options{Bsize: 128, Ffactor: 4})
	defer tbl.Close()

	if got := tbl.Geometry().SyncEpoch; got != 0 {
		t.Fatalf("fresh table epoch = %d", got)
	}
	if err := tbl.Sync(); err != nil {
		t.Fatal(err)
	}
	first := tbl.Geometry().SyncEpoch
	if first != 1 {
		t.Fatalf("first sync epoch = %d, want 1", first)
	}
	// No mutations since: another sync must not bump the epoch.
	if err := tbl.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := tbl.Geometry().SyncEpoch; got != first {
		t.Fatalf("no-op sync bumped epoch to %d", got)
	}
	if err := tbl.Put(key(1), val(1)); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := tbl.Geometry().SyncEpoch; got != first+1 {
		t.Fatalf("epoch after mutation+sync = %d, want %d", got, first+1)
	}
}

// TestSyncFaultPaths exercises Table.Sync error handling: injected
// write and sync faults mid-protocol must leave the table usable, keep
// the on-disk header dirty until a sync truly completes, and leave the
// file consistent for a reopen.
func TestSyncFaultPaths(t *testing.T) {
	errBoom := errors.New("boom")

	cases := []struct {
		name string
		// inject receives the number of syncs performed so far and
		// returns the fault to arm before the failing Table.Sync call.
		inject func(syncs int64) pagefile.Fault
	}{
		// The phase-1 barrier (data before header) fails.
		{"data-sync-fault", func(syncs int64) pagefile.Fault {
			return pagefile.Fault{Op: pagefile.OpSync, After: syncs + 1, Err: errBoom}
		}},
		// A data/bitmap page write fails during the pool flush.
		{"write-fault", func(int64) pagefile.Fault {
			return pagefile.Fault{Op: pagefile.OpWrite, After: 1, Err: errBoom, Page: pagefile.AnyPage}
		}},
		// The phase-2 header write fails (page 0 is a header page).
		{"header-write-fault", func(int64) pagefile.Fault {
			return pagefile.Fault{Op: pagefile.OpWrite, After: 1, Err: errBoom, Page: 0}
		}},
		// The trailing barrier after the clean header fails.
		{"final-sync-fault", func(syncs int64) pagefile.Fault {
			return pagefile.Fault{Op: pagefile.OpSync, After: syncs + 2, Err: errBoom}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			inner := pagefile.NewMem(128, pagefile.CostModel{})
			fs := pagefile.NewFault(inner)
			tbl := mustOpen(t, "", &Options{Store: fs, Bsize: 128, Ffactor: 4})

			for i := 0; i < 30; i++ {
				if err := tbl.Put(key(i), val(i)); err != nil {
					t.Fatalf("put %d: %v", i, err)
				}
			}
			fs.Inject(tc.inject(fs.Stats().Snapshot().Syncs))
			if err := tbl.Sync(); !errors.Is(err, errBoom) {
				t.Fatalf("faulted sync = %v, want boom", err)
			}
			fs.Clear()

			// The table stays fully usable after the failed sync.
			if v, err := tbl.Get(key(7)); err != nil || !bytes.Equal(v, val(7)) {
				t.Fatalf("get after failed sync: %v", err)
			}
			if err := tbl.Put(key(100), val(100)); err != nil {
				t.Fatalf("put after failed sync: %v", err)
			}

			// The retry must run the full protocol — the header was not
			// prematurely marked clean — so a reopen of the raw store sees
			// a clean, complete file.
			if err := tbl.Sync(); err != nil {
				t.Fatalf("retry sync: %v", err)
			}
			if err := tbl.Close(); err != nil {
				t.Fatalf("close: %v", err)
			}

			re, err := Open("", &Options{Store: inner, Bsize: 128, Ffactor: 4})
			if err != nil {
				t.Fatalf("reopen after faulted sync cycle: %v", err)
			}
			defer re.Close()
			if err := re.Check(); err != nil {
				t.Fatalf("post-reopen check: %v", err)
			}
			for i := 0; i < 30; i++ {
				if v, err := re.Get(key(i)); err != nil || !bytes.Equal(v, val(i)) {
					t.Fatalf("reopen get %d: %v", i, err)
				}
			}
			if v, err := re.Get(key(100)); err != nil || !bytes.Equal(v, val(100)) {
				t.Fatalf("reopen get 100: %v", err)
			}
		})
	}
}

// TestMarkDirtyFaultLeavesTableUnchanged: if the durable dirty mark
// itself fails, the mutation that triggered it must not happen.
func TestMarkDirtyFaultLeavesTableUnchanged(t *testing.T) {
	errBoom := errors.New("boom")
	inner := pagefile.NewMem(128, pagefile.CostModel{})
	fs := pagefile.NewFault(inner)
	tbl := mustOpen(t, "", &Options{Store: fs, Bsize: 128, Ffactor: 4})

	fs.Inject(pagefile.Fault{Op: pagefile.OpWrite, After: 1, Err: errBoom, Page: pagefile.AnyPage})
	if err := tbl.Put(key(1), val(1)); !errors.Is(err, errBoom) {
		t.Fatalf("put with failing dirty mark = %v, want boom", err)
	}
	if tbl.Len() != 0 {
		t.Fatalf("failed put changed Len to %d", tbl.Len())
	}
	fs.Clear()
	if err := tbl.Put(key(1), val(1)); err != nil {
		t.Fatalf("put after clearing fault: %v", err)
	}
	if err := tbl.Close(); err != nil {
		t.Fatal(err)
	}
}

// FuzzTableCrashRecovery drives a randomized workload/crash-point pair
// through the recovery contract. It is the smoke target for the CI
// crash job (-fuzz=FuzzTable matches only this function).
func FuzzTableCrashRecovery(f *testing.F) {
	f.Add(uint8(30), uint8(7), uint16(40), uint8(0))
	f.Add(uint8(50), uint8(11), uint16(500), uint8(63))
	f.Add(uint8(10), uint8(3), uint16(2), uint8(127))

	f.Fuzz(func(t *testing.T, nops, syncEvery uint8, prefix uint16, torn uint8) {
		if syncEvery == 0 {
			syncEvery = 1
		}
		cs := pagefile.NewCrash(pagefile.NewMem(128, pagefile.CostModel{}))
		tbl, err := Open("", &Options{Store: cs, Bsize: 128, Ffactor: 4, CacheSize: 1024})
		if err != nil {
			t.Fatal(err)
		}
		model := map[string]string{}
		snaps := []crashSnap{{events: 0, epoch: 0, state: map[string]string{}}}
		for i := 0; i < int(nops); i++ {
			if i%5 == 4 && i > 5 {
				k := key(i - 4)
				if _, ok := model[string(k)]; ok {
					if err := tbl.Delete(k); err != nil {
						t.Fatal(err)
					}
					delete(model, string(k))
				}
			} else {
				if err := tbl.Put(key(i), val(i)); err != nil {
					t.Fatal(err)
				}
				model[string(key(i))] = string(val(i))
			}
			if (i+1)%int(syncEvery) == 0 {
				if err := tbl.Sync(); err != nil {
					t.Fatal(err)
				}
				snaps = append(snaps, crashSnap{events: cs.Len(), epoch: tbl.Geometry().SyncEpoch, state: cloneState(model)})
			}
		}
		if err := tbl.Close(); err != nil {
			t.Fatal(err)
		}
		snaps = append(snaps, crashSnap{events: cs.Len(), epoch: tbl.Geometry().SyncEpoch, state: cloneState(model)})

		n := int(prefix) % (cs.Len() + 1)
		checkCrashState(t, cs, snaps, n, int(torn)%128)
	})
}

// Recover must not manufacture an empty table from a typo'd path: Open
// creates missing files, so Recover has to check existence first.
func TestRecoverMissingFileFails(t *testing.T) {
	if _, _, err := Recover(filepath.Join(t.TempDir(), "nope.db"), nil); err == nil {
		t.Fatal("Recover on a missing file succeeded")
	}
}

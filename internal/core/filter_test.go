package core

import (
	"errors"
	"fmt"
	"testing"

	"unixhash/internal/oplog"
)

// TestMissAllocs guards the negative-lookup hot path's allocation
// budget: with filters enabled, a Get of an absent key — the case the
// tag filter turns into a pure header consult — must not allocate.
// Observability (skip counters) and the filter probe both work on the
// pinned page and pre-resolved atomics, so "definitely absent" is free.
func TestMissAllocs(t *testing.T) {
	tbl := mustOpen(t, "", &Options{Bsize: 1024, Ffactor: 16})
	defer tbl.Close()
	const n = 200
	for i := 0; i < n; i++ {
		if err := tbl.Put([]byte(fmt.Sprintf("key-%04d", i)), []byte("value")); err != nil {
			t.Fatal(err)
		}
	}
	misses := make([][]byte, n)
	for i := range misses {
		misses[i] = []byte(fmt.Sprintf("absent-%04d", i))
	}
	buf := make([]byte, 0, 64)
	i := 0
	allocs := testing.AllocsPerRun(500, func() {
		var err error
		buf, err = tbl.GetBuf(misses[i%n], buf)
		if !errors.Is(err, ErrNotFound) {
			t.Fatalf("miss returned %v", err)
		}
		i++
	})
	if allocs != 0 {
		t.Fatalf("filtered miss allocated %.1f times per op, want 0", allocs)
	}
	if skips := tbl.m.filterSkips.Load(); skips == 0 {
		t.Fatal("miss storm never took the filter skip path")
	}

	// Same storm through the op-ledger entry point: a nil ledger must
	// compile down to dead nil checks, and a live ledger charges phases
	// into caller-owned fixed storage — both stay allocation-free.
	for name, led := range map[string]*oplog.Ledger{"nil-ledger": nil, "live-ledger": new(oplog.Ledger)} {
		led := led
		t.Run(name, func(t *testing.T) {
			led.StartOp(oplog.CmdGet, misses[0])
			allocs := testing.AllocsPerRun(500, func() {
				var err error
				buf, err = tbl.GetBufOp(led, misses[i%n], buf)
				if !errors.Is(err, ErrNotFound) {
					t.Fatalf("miss returned %v", err)
				}
				i++
			})
			if allocs != 0 {
				t.Fatalf("filtered miss GetBufOp (%s) allocated %.1f times per op, want 0", name, allocs)
			}
			if led != nil && led.PhaseCount(oplog.PhaseFilter) == 0 {
				t.Fatal("live ledger recorded no filter consults")
			}
		})
	}
}

// TestFilterCounters checks the three Get outcomes land in the right
// counters: a present key is a hit, an absent key is (almost always) a
// skip, and consults always equal gets on a filtered table.
func TestFilterCounters(t *testing.T) {
	tbl := mustOpen(t, "", &Options{Bsize: 1024, Ffactor: 16})
	defer tbl.Close()
	const n = 100
	for i := 0; i < n; i++ {
		if err := tbl.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		if _, err := tbl.Get(key(i)); err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
		if _, err := tbl.Get([]byte(fmt.Sprintf("no-such-%04d", i))); !errors.Is(err, ErrNotFound) {
			t.Fatalf("miss %d: %v", i, err)
		}
	}
	hits := tbl.m.filterHits.Load()
	skips := tbl.m.filterSkips.Load()
	fps := tbl.m.filterFPs.Load()
	if hits != n {
		t.Errorf("filter hits = %d, want %d (every present key consults and passes)", hits, n)
	}
	if skips == 0 {
		t.Error("no miss was answered by the filter alone")
	}
	if hits+skips+fps != 2*n {
		t.Errorf("consults %d+%d+%d != %d gets", hits, skips, fps, 2*n)
	}
}

// TestDisableFilterStillCorrect runs the same workload with filter
// consults and read-ahead off: results must be identical and no filter
// counter may move — DisableFilter gates reads only, maintenance still
// runs so a later reopen with filters on sees valid tags.
func TestDisableFilterStillCorrect(t *testing.T) {
	tbl := mustOpen(t, "", &Options{Bsize: 1024, Ffactor: 16, DisableFilter: true, DisableReadAhead: true})
	defer tbl.Close()
	const n = 100
	for i := 0; i < n; i++ {
		if err := tbl.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		if _, err := tbl.Get(key(i)); err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
		if _, err := tbl.Get([]byte(fmt.Sprintf("no-such-%04d", i))); !errors.Is(err, ErrNotFound) {
			t.Fatalf("miss %d: %v", i, err)
		}
	}
	if c := tbl.m.filterHits.Load() + tbl.m.filterSkips.Load() + tbl.m.filterFPs.Load(); c != 0 {
		t.Errorf("DisableFilter consulted the filter %d times", c)
	}
	// Maintenance ran regardless: the structural check's filter leg
	// (tag count vs key count, no false negatives) must hold.
	if err := tbl.Check(); err != nil {
		t.Fatalf("check with filters disabled: %v", err)
	}
}

package core

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"sort"

	"unixhash/internal/pagefile"
	"unixhash/internal/trace"
)

// Crash recovery.
//
// The durable dirty mark (markDirty) guarantees that a dirty
// on-disk header is always the header of the last completed sync, plus
// the flag: geometry, spares, key count and pair fingerprint all describe
// the state every pair of which was durably on disk. Recovery therefore
// has an exact target. The walker below reads the pages directly from
// the store (bypassing the buffer pool), recomputes (nkeys, pairSum) for
// the reachable pairs, and plans repairs for artifacts that are provably
// post-sync:
//
//   - an overflow link or big-pair reference pointing beyond the
//     last-synced allocation (those pages did not exist at the sync, so
//     the pointer was written after it) — cut the link / drop the ref;
//   - an unparseable, torn or overwritten page reached by such a walk —
//     reset (primaries) or cut at the predecessor (chain pages).
//
// Repairs are candidates, not conclusions: the file is accepted only if
// the recomputed count and fingerprint exactly equal the header's. That
// strict gate is what makes liberal repair planning sound — dropping
// anything that was actually part of the last-synced state changes the
// fingerprint and the file is declared unrecoverable, loudly, instead of
// silently returning wrong answers. (A superset check would not be
// sound: a crash mid-split can lose pre-sync pairs while post-sync
// inserts mask the count.)
//
// After acceptance the repairs are applied, the overflow-use bitmaps are
// rebuilt from reachability, and a normal two-phase sync stamps the file
// clean. Recovery crashing mid-repair is itself recoverable: the header
// stays dirty until the final sync, and re-running recovery converges
// (repairs only remove post-sync artifacts).

// errPostSync marks a structural anomaly that a planned repair can
// remove: the content is provably (or gate-checkably) post-sync.
var errPostSync = errors.New("post-sync artifact")

// RecoveryReport describes what Recover found and did.
type RecoveryReport struct {
	WasDirty       bool   // the on-disk header carried the dirty flag
	Recovered      bool   // a dirty file was restored to its last-synced state
	NKeys          int64  // pairs present after recovery
	SyncEpoch      uint64 // sync epoch after recovery
	PagesReset     int    // torn primary pages reset to empty
	LinksCut       int    // post-sync overflow links cut
	RefsDropped    int    // post-sync entries dropped
	BitmapsRebuilt int    // overflow-use bitmaps rebuilt from reachability
	FiltersRebuilt int    // primary pages whose tag filters were rewritten
	WALTxns        int    // committed transactions replayed from the log
	WALOps         int    // puts/deletes those transactions contained
}

// String renders the report for the CLIs.
func (r RecoveryReport) String() string {
	wal := ""
	if r.WALTxns > 0 {
		wal = fmt.Sprintf(", %d txns (%d ops) replayed from the log", r.WALTxns, r.WALOps)
	}
	if !r.WasDirty {
		return fmt.Sprintf("clean (epoch %d, %d keys)%s", r.SyncEpoch, r.NKeys, wal)
	}
	return fmt.Sprintf("recovered to epoch %d: %d keys, %d pages reset, %d links cut, %d entries dropped, %d bitmaps rebuilt, %d filters rewritten%s",
		r.SyncEpoch, r.NKeys, r.PagesReset, r.LinksCut, r.RefsDropped, r.BitmapsRebuilt, r.FiltersRebuilt, wal)
}

// pageRepair is the planned edit for one physical page.
type pageRepair struct {
	reset   bool  // rewrite as an empty data page
	cutLink bool  // clear the trailing overflow link
	drops   []int // entry indices to remove (as seen by forEach)
}

// recovery is one dry-run walk over a dirty file.
type recovery struct {
	t       *Table
	claimed map[oaddr]string       // overflow page -> what references it
	plans   map[uint32]*pageRepair // physical page -> planned repair
	order   []uint32               // deterministic apply order
	count   int64
	sum     uint64
	filters int // primary pages whose tag filters applyRecovery rewrote
}

func (r *recovery) plan(pageno uint32) *pageRepair {
	p, ok := r.plans[pageno]
	if !ok {
		p = &pageRepair{}
		r.plans[pageno] = p
		r.order = append(r.order, pageno)
	}
	return p
}

// linkValid reports whether o addresses a page that existed at the last
// sync, per the header's spares. Anything else is a post-sync pointer.
func (r *recovery) linkValid(o oaddr) bool {
	s, pn := o.split(), o.pagenum()
	return s < maxSplits && s <= r.t.hdr.ovflPoint && pn >= 1 && pn <= r.t.hdr.allocatedAt(s)
}

// scanResult is what one page contributes if it survives intact. Side
// effects are deferred so a parse failure mid-page commits nothing.
type scanResult struct {
	next   oaddr // trailing overflow link (0 if none)
	count  int64
	sum    uint64
	drops  []int
	claims []oaddr // big-chain pages claimed by entries on this page
}

// recoverLocked dry-runs the walk and the acceptance gate. On success the
// returned recovery holds the verified accounting, the claims and the
// planned repairs; nothing has been written. The caller holds t.mu.
func (t *Table) recoverLocked() (*recovery, error) {
	r := &recovery{t: t, claimed: map[oaddr]string{}, plans: map[uint32]*pageRepair{}}

	// The bitmap addressing invariants must hold before any oaddr can be
	// trusted: each populated split point's bitmap is its first page.
	for s := uint32(0); s <= t.hdr.ovflPoint; s++ {
		alloc, bm := t.hdr.allocatedAt(s), t.hdr.bitmaps[s]
		if alloc > 0 && bm != uint16(makeOaddr(s, 1)) {
			return nil, fmt.Errorf("%w: split point %d has %d pages but bitmap address %v", ErrUnrecoverable, s, alloc, oaddr(bm))
		}
		if alloc == 0 && bm != 0 {
			return nil, fmt.Errorf("%w: split point %d has a bitmap but no pages", ErrUnrecoverable, s)
		}
	}

	for b := uint32(0); b <= t.hdr.maxBucket; b++ {
		if err := r.walkBucket(b); err != nil {
			return nil, err
		}
	}

	if r.count != t.hdr.nkeys || r.sum != t.hdr.pairSum {
		return nil, fmt.Errorf("%w: pages hold %d pairs (fingerprint %#x); the last sync recorded %d (%#x)",
			ErrUnrecoverable, r.count, r.sum, t.hdr.nkeys, t.hdr.pairSum)
	}
	return r, nil
}

// walkBucket walks one bucket's chain with direct store reads.
func (r *recovery) walkBucket(b uint32) error {
	t := r.t
	buf := make([]byte, t.hdr.bsize)
	pageno := t.hdr.bucketToPage(b)

	if err := t.store.ReadPage(pageno, buf); err != nil {
		if errors.Is(err, pagefile.ErrNotAllocated) {
			return nil // never written: an empty bucket
		}
		return fmt.Errorf("%w: bucket %d primary page %d unreadable: %v", ErrUnrecoverable, b, pageno, err)
	}
	res, err := r.scanPage(b, page(buf))
	if err != nil {
		if errors.Is(err, errPostSync) {
			// A torn or overwritten primary: plan a reset to empty. Any
			// chain behind it is unreachable and stays unclaimed — if it
			// held last-synced pairs the gate rejects the file.
			r.plan(pageno).reset = true
			return nil
		}
		return err
	}
	r.commit(pageno, res)

	holder := pageno // the page whose link points at the page under scan
	next := res.next
	for hops := 0; next != 0; hops++ {
		if hops > 1<<16 {
			return fmt.Errorf("%w: bucket %d chain exceeds 65536 pages", ErrUnrecoverable, b)
		}
		if !r.linkValid(next) {
			r.plan(holder).cutLink = true
			return nil
		}
		if prev, dup := r.claimed[next]; dup {
			return fmt.Errorf("%w: overflow page %v claimed by both %s and bucket %d's chain", ErrUnrecoverable, next, prev, b)
		}
		pageno = t.hdr.oaddrToPage(next)
		if err := t.store.ReadPage(pageno, buf); err != nil {
			if errors.Is(err, pagefile.ErrNotAllocated) {
				r.plan(holder).cutLink = true
				return nil
			}
			return fmt.Errorf("%w: overflow page %v unreadable: %v", ErrUnrecoverable, next, err)
		}
		res, err := r.scanPage(b, page(buf))
		if err != nil {
			if errors.Is(err, errPostSync) {
				r.plan(holder).cutLink = true
				return nil
			}
			return err
		}
		r.claimed[next] = fmt.Sprintf("bucket %d's chain", b)
		r.commit(pageno, res)
		holder, next = pageno, res.next
	}
	return nil
}

// commit applies a surviving page's deferred contributions.
func (r *recovery) commit(pageno uint32, res scanResult) {
	r.count += res.count
	r.sum ^= res.sum
	if len(res.drops) > 0 {
		p := r.plan(pageno)
		p.drops = append(p.drops, res.drops...)
	}
	for _, o := range res.claims {
		r.claimed[o] = fmt.Sprintf("big pair via page %d", pageno)
	}
}

// scanPage validates one chain page and computes its contribution. It
// returns errPostSync (wrapped) when the page itself cannot be part of
// the last-synced state and the caller should reset or cut it.
func (r *recovery) scanPage(b uint32, pg page) (scanResult, error) {
	t := r.t
	var res scanResult
	var inner error
	pending := map[oaddr]bool{} // big-chain claims local to this page
	ferr := pg.forEach(func(i int, e entry) bool {
		switch e.kind {
		case entryRegular:
			if want := t.calcBucket(t.hash(e.key)); want != b {
				// Hashes elsewhere under the last-synced masks: a
				// post-sync insert under grown masks. Drop candidate.
				res.drops = append(res.drops, i)
				return true
			}
			res.count++
			res.sum ^= pairHash(e.key, e.data)
		case entryBig:
			key, data, pages, droppable, err := r.walkBigChain(e.ref, pending)
			if err != nil {
				inner = err
				return false
			}
			if !droppable {
				if want := t.calcBucket(t.hash(key)); want != b {
					droppable = true
				}
			}
			if droppable {
				res.drops = append(res.drops, i)
				return true
			}
			for _, o := range pages {
				pending[o] = true
			}
			res.claims = append(res.claims, pages...)
			res.count++
			res.sum ^= pairHash(key, data)
		}
		return true
	})
	if ferr != nil {
		// Structural damage (bad slots, wrong magic, torn write): the
		// page content is not the last-synced content.
		return res, fmt.Errorf("%w: %v", errPostSync, ferr)
	}
	if inner != nil {
		return res, inner
	}
	res.next = pg.ovflLink()
	return res, nil
}

// walkBigChain reads a big-pair chain directly from the store. droppable
// reports a structural anomaly that marks the referencing entry as a
// post-sync drop candidate; err is reserved for unrecoverable conflicts
// (a page claimed by two owners).
func (r *recovery) walkBigChain(start oaddr, pending map[oaddr]bool) (key, data []byte, pages []oaddr, droppable bool, err error) {
	t := r.t
	buf := make([]byte, t.hdr.bsize)
	var payload []byte
	local := map[oaddr]bool{}
	for o := start; o != 0; {
		if !r.linkValid(o) || local[o] || len(pages) > 1<<16 {
			return nil, nil, nil, true, nil
		}
		if prev, dup := r.claimed[o]; dup {
			return nil, nil, nil, false, fmt.Errorf("%w: overflow page %v claimed by both %s and the big chain at %v", ErrUnrecoverable, o, prev, start)
		}
		if pending[o] {
			return nil, nil, nil, false, fmt.Errorf("%w: overflow page %v claimed by two big chains on one page", ErrUnrecoverable, o)
		}
		local[o] = true
		pages = append(pages, o)
		if err := t.store.ReadPage(t.hdr.oaddrToPage(o), buf); err != nil {
			if errors.Is(err, pagefile.ErrNotAllocated) {
				return nil, nil, nil, true, nil
			}
			return nil, nil, nil, false, fmt.Errorf("%w: big chain page %v unreadable: %v", ErrUnrecoverable, o, err)
		}
		if !isBigPage(buf) {
			return nil, nil, nil, true, nil
		}
		payload = append(payload, buf[bigHdrSize:]...)
		o = oaddr(le.Uint16(buf[bigNextOffset:]))
	}
	if len(payload) < bigLenPrefix {
		return nil, nil, nil, true, nil
	}
	klen := int(le.Uint32(payload[0:]))
	dlen := int(le.Uint32(payload[4:]))
	if bigLenPrefix+klen+dlen > len(payload) || klen == 0 {
		return nil, nil, nil, true, nil
	}
	key = payload[bigLenPrefix : bigLenPrefix+klen]
	data = payload[bigLenPrefix+klen : bigLenPrefix+klen+dlen]
	return key, data, pages, false, nil
}

// applyRecovery writes the planned repairs, rebuilds the overflow-use
// bitmaps from reachability, and stamps the file clean with a two-phase
// sync. The caller holds t.mu and the gate has passed.
func (t *Table) applyRecovery(r *recovery) error {
	buf := make([]byte, t.hdr.bsize)
	for _, pageno := range r.order {
		p := r.plans[pageno]
		if p.reset {
			clear(buf)
			initPage(page(buf))
			if err := t.store.WritePage(pageno, buf); err != nil {
				return err
			}
			continue
		}
		if err := t.store.ReadPage(pageno, buf); err != nil {
			return err
		}
		pg := page(buf)
		sort.Sort(sort.Reverse(sort.IntSlice(p.drops)))
		for _, i := range p.drops {
			if err := pg.removeEntry(i); err != nil {
				return err
			}
		}
		if p.cutLink {
			pg.clearOvflLink()
		}
		if err := t.store.WritePage(pageno, buf); err != nil {
			return err
		}
	}
	t.tr.Emit(trace.EvRecoveryStep, trace.RecoveryStepRepairs, uint64(len(r.order)), 0, 0)

	// Rebuild every bitmap from the claim map: a bit is set for the
	// bitmap page itself and for each page a verified chain reaches.
	// Everything else at that split point is free for reuse.
	used := make([]int, maxSplits)
	rebuilt := 0
	for s := range t.bitmapBuf {
		t.bitmapBuf[s] = nil
		t.bitmapDirty[s] = false
		t.freeCount[s] = 0
	}
	for s := uint32(0); s <= t.hdr.ovflPoint; s++ {
		if t.hdr.bitmaps[s] == 0 {
			continue
		}
		bm := make([]byte, t.hdr.bsize)
		le.PutUint16(bm[0:2], bitmapMagic)
		bm[bitmapHdrSize] |= 1 // bit 0: the bitmap page itself
		t.bitmapBuf[s] = bm
		t.bitmapDirty[s] = true
		used[s] = 1
		rebuilt++
	}
	for o := range r.claimed {
		s, pn := o.split(), o.pagenum()
		bm := t.bitmapBuf[s]
		if bm == nil {
			return fmt.Errorf("%w: claimed page %v at split point without a bitmap", ErrCorrupt, o)
		}
		bitmapSet(bm, pn-1)
		used[s]++
	}
	for s := uint32(0); s <= t.hdr.ovflPoint; s++ {
		if t.bitmapBuf[s] != nil {
			t.freeCount[s] = int(t.hdr.allocatedAt(s)) - used[s]
		}
	}
	t.hdr.lastFreed = 0
	t.dirtyHdr.Store(true)
	t.needsRecovery = false
	// The surviving pairs are exactly the last-synced state, so resync
	// the shared-phase running counters with the header before syncLocked
	// folds them back.
	t.nkeysA.Store(t.hdr.nkeys)
	t.pairSumA.Store(t.hdr.pairSum)
	t.publishGeo()
	t.tr.Emit(trace.EvRecoveryStep, trace.RecoveryStepBitmaps, uint64(rebuilt), 0, 0)

	// Tag filters are pure acceleration state and are never trusted
	// across a crash: a torn filter write could hide a surviving pair (a
	// false-negative hazard) without perturbing the count/fingerprint
	// gate, which deliberately ignores the filter bytes. Rebuild every
	// bucket's filter from the (now repaired) pair data. The header is
	// still dirty until syncLocked below, so a crash mid-rebuild re-runs
	// recovery and converges.
	filters, err := t.rebuildFilters()
	if err != nil {
		return err
	}
	r.filters = filters
	t.tr.Emit(trace.EvRecoveryStep, trace.RecoveryStepFilters, uint64(filters), 0, 0)
	if err := t.syncLocked(); err != nil {
		return err
	}
	t.tr.Emit(trace.EvRecoveryStep, trace.RecoveryStepDone, uint64(t.hdr.nkeys), t.hdr.syncEpoch, 0)
	return nil
}

// rebuildFilters recomputes every bucket's tag-filter region from the
// surviving pair data, with direct store I/O (the buffer pool is still
// cold at this point, apart from big-pair reads). A bucket's primary is
// rewritten only when the rebuilt region differs from what was on disk.
// Returns the number of primary pages rewritten. The caller holds t.mu.
func (t *Table) rebuildFilters() (int, error) {
	bsize := int(t.hdr.bsize)
	base := slotBaseFor(bsize)
	buf := make([]byte, bsize)
	cbuf := make([]byte, bsize)
	before := make([]byte, base-pageHdrSize)
	written := 0
	for b := uint32(0); b <= t.hdr.maxBucket; b++ {
		pageno := t.hdr.bucketToPage(b)
		if err := t.store.ReadPage(pageno, buf); err != nil {
			if errors.Is(err, pagefile.ErrNotAllocated) {
				continue // never written: an empty bucket
			}
			return written, err
		}
		pg := page(buf)
		copy(before, buf[pageHdrSize:base])
		pg.filterReset()
		// Walk the (already repaired) chain, tagging every key at its
		// chain position. Filter bytes always live on the primary, so
		// filterAdd targets pg regardless of which page holds the pair.
		pos, novfl := 0, 0
		cur := pg
		for {
			var inner error
			ferr := cur.forEach(func(_ int, e entry) bool {
				switch e.kind {
				case entryRegular:
					pg.filterAdd(t.hash(e.key), pos)
				case entryBig:
					bk, err := t.bigKey(e.ref)
					if err != nil {
						inner = err
						return false
					}
					pg.filterAdd(t.hash(bk), pos)
				}
				return true
			})
			if ferr != nil {
				return written, fmt.Errorf("%w: bucket %d filter rebuild: %v", ErrCorrupt, b, ferr)
			}
			if inner != nil {
				return written, inner
			}
			next := cur.ovflLink()
			if next == 0 {
				break
			}
			novfl++
			if novfl > 1<<16 {
				return written, fmt.Errorf("%w: bucket %d chain exceeds 65536 pages during filter rebuild", ErrUnrecoverable, b)
			}
			if err := t.store.ReadPage(t.hdr.oaddrToPage(next), cbuf); err != nil {
				return written, err
			}
			cur = page(cbuf)
			pos++
		}
		pg.setFltChainLen(novfl)
		if !bytes.Equal(before, buf[pageHdrSize:base]) {
			if err := t.store.WritePage(pageno, buf); err != nil {
				return written, err
			}
			written++
		}
	}
	return written, nil
}

// Recover opens the table at path (or Options.Store), and if its dirty
// flag is set verifies that the pages reproduce the exact state of the
// last completed sync — repairing provably post-sync artifacts — before
// stamping it clean. A file whose pages cannot reproduce that state
// fails loudly with ErrUnrecoverable and is left untouched. The returned
// table is open and ready for use.
func Recover(path string, o *Options) (*Table, RecoveryReport, error) {
	var rep RecoveryReport
	var opts Options
	if o != nil {
		opts = *o
	}
	if opts.ReadOnly {
		return nil, rep, fmt.Errorf("hash: recovery requires write access")
	}
	// Open would create a missing file; recovering one is a caller
	// mistake (a typo'd path) that must not manufacture an empty table.
	if path != "" && opts.Store == nil {
		if _, err := os.Stat(path); err != nil {
			return nil, rep, fmt.Errorf("hash: recover %s: %w", path, err)
		}
	}
	opts.AllowDirty = true
	t, err := Open(path, &opts)
	if err != nil {
		return nil, rep, err
	}

	t.mu.Lock()
	rep.WasDirty = t.needsRecovery
	if !t.needsRecovery {
		rep.NKeys = t.hdr.nkeys
		rep.SyncEpoch = t.hdr.syncEpoch
		t.mu.Unlock()
		if err := t.replayWAL(&rep); err != nil {
			t.m.recoverFailures.Inc()
			t.Close()
			return nil, rep, err
		}
		return t, rep, nil
	}
	t.m.recoverAttempts.Inc()
	t.tr.Emit(trace.EvRecoveryStep, trace.RecoveryStepWalk, uint64(t.hdr.maxBucket+1), 0, 0)
	r, err := t.recoverLocked()
	if err == nil {
		t.tr.Emit(trace.EvRecoveryStep, trace.RecoveryStepGate, uint64(r.count), uint64(len(r.order)), 0)
		err = t.applyRecovery(r)
	}
	if err != nil {
		t.m.recoverFailures.Inc()
		t.mu.Unlock()
		t.Close()
		return nil, rep, err
	}
	t.m.recoverSuccess.Inc()
	rep.Recovered = true
	rep.NKeys = t.hdr.nkeys
	rep.SyncEpoch = t.hdr.syncEpoch
	for _, pageno := range r.order {
		p := r.plans[pageno]
		if p.reset {
			rep.PagesReset++
		}
		if p.cutLink {
			rep.LinksCut++
		}
		rep.RefsDropped += len(p.drops)
	}
	for s := range t.bitmapBuf {
		if t.bitmapBuf[s] != nil {
			rep.BitmapsRebuilt++
		}
	}
	rep.FiltersRebuilt = r.filters
	t.m.recoverRepairs.Add(int64(rep.PagesReset + rep.LinksCut + rep.RefsDropped))
	t.m.setShape(t.hdr.nkeys, t.hdr.maxBucket)
	t.mu.Unlock()
	if err := t.replayWAL(&rep); err != nil {
		t.m.recoverFailures.Inc()
		t.Close()
		return nil, rep, err
	}
	return t, rep, nil
}

// replayWAL re-applies the committed transactions the write-ahead log
// holds past the last checkpoint. The page-level recovery above restored
// (or confirmed) the exact checkpoint state, so the redo records apply
// onto precisely the state they were logged against. Called without t.mu
// held: each op goes through the normal Put/Delete path, so splits,
// overflow allocation and accounting behave exactly as they did at
// commit time. The final Sync is a checkpoint — it stamps the replayed
// LSN into the header and truncates the log.
func (t *Table) replayWAL(rep *RecoveryReport) error {
	pending := t.walPending
	t.walPending = nil
	if t.wal == nil || len(pending) == 0 {
		return nil
	}
	for _, tx := range pending {
		for _, op := range tx.Ops {
			var err error
			if op.Delete {
				// Redo semantics are "ensure absent": the delete may have
				// reached the pages before the crash.
				if err = t.Delete(op.Key); errors.Is(err, ErrNotFound) {
					err = nil
				}
			} else {
				err = t.Put(op.Key, op.Data)
			}
			if err != nil {
				return fmt.Errorf("hash: replay txn %d: %w", tx.LSN, err)
			}
			rep.WALOps++
		}
		t.appliedLSN.Store(tx.LSN)
		t.m.walReplays.Inc()
		rep.WALTxns++
	}
	if err := t.Sync(); err != nil {
		return fmt.Errorf("hash: post-replay checkpoint: %w", err)
	}
	t.mu.RLock()
	rep.NKeys = t.hdr.nkeys
	rep.SyncEpoch = t.hdr.syncEpoch
	t.mu.RUnlock()
	return nil
}

// Verify checks the table without modifying it. On a cleanly synced
// table it runs the full structural Check. On a table opened dirty
// (AllowDirty) it dry-runs recovery: the result is ErrNeedsRecovery if
// the last-synced state is intact and recoverable, or an
// ErrUnrecoverable error describing what was lost. Verify of a dirty
// file therefore never returns nil.
func (t *Table) Verify() error {
	t.mu.Lock()
	if err := t.checkOpen(); err != nil {
		t.mu.Unlock()
		return err
	}
	if t.needsRecovery {
		_, err := t.recoverLocked()
		t.mu.Unlock()
		if err != nil {
			return err
		}
		return fmt.Errorf("%w (last-synced state intact; run recovery)", ErrNeedsRecovery)
	}
	t.mu.Unlock()
	return t.Check()
}

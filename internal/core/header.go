package core

import (
	"fmt"
	"hash/crc32"
	"math/bits"
)

// File header. The header occupies the first hdrPages pages of the file
// and records everything needed to reopen the table: the table geometry
// (bucket size, fill factor, masks, split state), the cumulative count of
// overflow pages at each split point (spares), and the addresses of the
// overflow-use bitmap pages (bitmaps), as the paper describes.
//
// Version 4 adds the durability fields: a monotonically increasing sync
// epoch (bumped on every successful two-phase sync), a dirty flag (set
// durably before the first mutation after an open or sync, cleared only
// after all data pages have reached stable storage), an order-independent
// checksum of the stored key/data pairs (pairSum, used by crash recovery
// to verify that the pages hold exactly the last-synced state), and a
// CRC-32 over the header bytes so a torn header write is detected rather
// than decoded. The checkpoint LSN (walLSN) extends v4 for write-ahead
// logging: every transaction with a commit LSN at or below it has been
// flushed into the pages; commits above it live only in the sibling log
// file and are replayed by Recover.
//
// spares[i] is cumulative: the total number of overflow pages allocated
// at split points 0..i. The page-address calculations depend on it:
//
//	BUCKET_TO_PAGE(b) = b + hdrPages + (b>0 ? spares[ceilLog2(b+1)-1] : 0)
//	OADDR_TO_PAGE(o)  = BUCKET_TO_PAGE((1 << o.split()) - 1) + o.pagenum()
const (
	magic   = 0x061561 // the 4.4BSD hash magic
	version = 5 // v5 reserves the in-page tag-filter region (see filter.go)

	// hdrCrcOff is the offset of the trailing CRC-32; the checksum
	// covers every header byte before it.
	hdrCrcOff = 4 + // magic
		4 + // version
		4 + // lorder
		4 + // bsize
		4 + // bshift
		4 + // ffactor
		4 + // maxBucket
		4 + // highMask
		4 + // lowMask
		4 + // ovflPoint
		4 + // lastFreed
		8 + // nkeys
		4 + // hdrPages
		4 + // checkHash
		4*maxSplits + // spares
		2*maxSplits + // bitmaps
		8 + // syncEpoch
		4 + // flags
		8 + // pairSum
		8 // walLSN

	headerSize = hdrCrcOff + 4 // + crc32
)

// Header flag bits.
const (
	hdrDirty = 1 << 0 // mutations may not have reached stable storage
	// hdrWAL marks the table as WAL-managed. It is stamped durably the
	// first time a writable open attaches a log — before any commit can
	// be acknowledged — so a crashed table proves it has a log even when
	// its checkpoint LSN is still zero (no checkpoint has run yet).
	// Opening a flagged table without its log would silently roll back
	// acknowledged commits; Open refuses, or auto-attaches the sidecar.
	hdrWAL = 1 << 1
)

type header struct {
	lorder    uint32 // byte order tag; this implementation writes 1234
	bsize     uint32
	bshift    uint32
	ffactor   uint32
	maxBucket uint32
	highMask  uint32
	lowMask   uint32
	ovflPoint uint32
	lastFreed uint32 // oaddr hint of the most recently freed overflow page
	nkeys     int64
	hdrPages  uint32
	checkHash uint32 // hash(CheckKey), to detect mismatched hash functions
	spares    [maxSplits]uint32
	bitmaps   [maxSplits]uint16
	syncEpoch uint64 // bumped on every successful sync
	flags     uint32 // hdrDirty
	pairSum   uint64 // XOR of pairHash over every stored pair
	walLSN    uint64 // checkpoint LSN: WAL commits <= this are in the pages
}

const lorderLittle = 1234

func (h *header) dirty() bool { return h.flags&hdrDirty != 0 }

// encode serializes the header into buf, which must be at least headerSize
// bytes (the first header page or a staging buffer), appending a CRC-32
// over the preceding bytes.
func (h *header) encode(buf []byte) {
	le.PutUint32(buf[0:], magic)
	le.PutUint32(buf[4:], version)
	le.PutUint32(buf[8:], h.lorder)
	le.PutUint32(buf[12:], h.bsize)
	le.PutUint32(buf[16:], h.bshift)
	le.PutUint32(buf[20:], h.ffactor)
	le.PutUint32(buf[24:], h.maxBucket)
	le.PutUint32(buf[28:], h.highMask)
	le.PutUint32(buf[32:], h.lowMask)
	le.PutUint32(buf[36:], h.ovflPoint)
	le.PutUint32(buf[40:], h.lastFreed)
	le.PutUint64(buf[44:], uint64(h.nkeys))
	le.PutUint32(buf[52:], h.hdrPages)
	le.PutUint32(buf[56:], h.checkHash)
	off := 60
	for i := range h.spares {
		le.PutUint32(buf[off:], h.spares[i])
		off += 4
	}
	for i := range h.bitmaps {
		le.PutUint16(buf[off:], h.bitmaps[i])
		off += 2
	}
	le.PutUint64(buf[off:], h.syncEpoch)
	le.PutUint32(buf[off+8:], h.flags)
	le.PutUint64(buf[off+12:], h.pairSum)
	le.PutUint64(buf[off+20:], h.walLSN)
	le.PutUint32(buf[hdrCrcOff:], crc32.ChecksumIEEE(buf[:hdrCrcOff]))
}

// decode parses and validates a header from buf. A checksum mismatch —
// a torn or corrupted header write — fails with ErrCorrupt before any
// field is trusted.
func (h *header) decode(buf []byte) error {
	if len(buf) < headerSize {
		return fmt.Errorf("%w: short header (%d bytes)", ErrCorrupt, len(buf))
	}
	if le.Uint32(buf[0:]) != magic {
		return ErrBadMagic
	}
	if v := le.Uint32(buf[4:]); v != version {
		return fmt.Errorf("%w: version %d, want %d", ErrBadVersion, v, version)
	}
	if got, want := crc32.ChecksumIEEE(buf[:hdrCrcOff]), le.Uint32(buf[hdrCrcOff:]); got != want {
		return fmt.Errorf("%w: header checksum %#x, want %#x (torn header write?)", ErrCorrupt, got, want)
	}
	h.lorder = le.Uint32(buf[8:])
	h.bsize = le.Uint32(buf[12:])
	h.bshift = le.Uint32(buf[16:])
	h.ffactor = le.Uint32(buf[20:])
	h.maxBucket = le.Uint32(buf[24:])
	h.highMask = le.Uint32(buf[28:])
	h.lowMask = le.Uint32(buf[32:])
	h.ovflPoint = le.Uint32(buf[36:])
	h.lastFreed = le.Uint32(buf[40:])
	h.nkeys = int64(le.Uint64(buf[44:]))
	h.hdrPages = le.Uint32(buf[52:])
	h.checkHash = le.Uint32(buf[56:])
	off := 60
	for i := range h.spares {
		h.spares[i] = le.Uint32(buf[off:])
		off += 4
	}
	for i := range h.bitmaps {
		h.bitmaps[i] = le.Uint16(buf[off:])
		off += 2
	}
	h.syncEpoch = le.Uint64(buf[off:])
	h.flags = le.Uint32(buf[off+8:])
	h.pairSum = le.Uint64(buf[off+12:])
	h.walLSN = le.Uint64(buf[off+20:])
	return h.validate()
}

// validate sanity-checks decoded geometry so that a corrupt file fails
// cleanly instead of producing wild page addresses.
func (h *header) validate() error {
	if h.lorder != lorderLittle {
		return fmt.Errorf("%w: byte order %d not supported", ErrBadVersion, h.lorder)
	}
	if h.bsize < MinBsize || h.bsize > MaxBsize || !isPow2(int(h.bsize)) {
		return fmt.Errorf("%w: bucket size %d", ErrCorrupt, h.bsize)
	}
	if uint32(1)<<h.bshift != h.bsize {
		return fmt.Errorf("%w: bshift %d does not match bsize %d", ErrCorrupt, h.bshift, h.bsize)
	}
	if h.ffactor == 0 {
		return fmt.Errorf("%w: zero fill factor", ErrCorrupt)
	}
	if h.highMask == 0 || h.maxBucket > h.highMask || h.lowMask != h.highMask>>1 {
		return fmt.Errorf("%w: masks low=%#x high=%#x max=%d", ErrCorrupt, h.lowMask, h.highMask, h.maxBucket)
	}
	if h.ovflPoint >= maxSplits {
		return fmt.Errorf("%w: split point %d", ErrCorrupt, h.ovflPoint)
	}
	if h.nkeys < 0 {
		return fmt.Errorf("%w: negative key count", ErrCorrupt)
	}
	if h.flags&^uint32(hdrDirty|hdrWAL) != 0 {
		return fmt.Errorf("%w: unknown header flags %#x", ErrCorrupt, h.flags)
	}
	want := (uint32(headerSize) + h.bsize - 1) / h.bsize
	if h.hdrPages != want {
		return fmt.Errorf("%w: header pages %d, want %d", ErrCorrupt, h.hdrPages, want)
	}
	for i := 1; i <= int(h.ovflPoint); i++ {
		if h.spares[i] < h.spares[i-1] {
			return fmt.Errorf("%w: spares not cumulative at %d", ErrCorrupt, i)
		}
	}
	return nil
}

// bucketToPage maps a bucket number to its physical page in the store.
// The spares index is the bucket's generation, ceilLog2(b+1)-1, which
// for b > 0 equals bits.Len32(b)-1 — one leading-zero-count instruction
// on the path under every page fetch (see BenchmarkBucketToPage).
func (h *header) bucketToPage(b uint32) uint32 {
	p := b + h.hdrPages
	if b > 0 {
		p += h.spares[bits.Len32(b)-1]
	}
	return p
}

// oaddrToPage maps an overflow address to its physical page.
func (h *header) oaddrToPage(o oaddr) uint32 {
	return h.bucketToPage(1<<o.split()-1) + o.pagenum()
}

// allocatedAt returns the number of overflow pages allocated at split
// point s (spares is cumulative).
func (h *header) allocatedAt(s uint32) uint32 {
	if s == 0 {
		return h.spares[0]
	}
	return h.spares[s] - h.spares[s-1]
}

package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"
)

func TestCheckAfterWorkloads(t *testing.T) {
	cases := []struct {
		name string
		opts *Options
	}{
		{"default", nil},
		{"tiny-pages", &Options{Bsize: 64, Ffactor: 2}},
		{"overflow-heavy", &Options{Bsize: 128, Ffactor: 64, ControlledOnly: true}},
		{"presized", &Options{Nelem: 5000}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			tbl := mustOpen(t, "", c.opts)
			defer tbl.Close()
			rng := rand.New(rand.NewSource(5))
			for op := 0; op < 4000; op++ {
				k := []byte(fmt.Sprintf("k%04d", rng.Intn(900)))
				switch rng.Intn(4) {
				case 0, 1:
					if err := tbl.Put(k, val(op)); err != nil {
						t.Fatal(err)
					}
				case 2:
					_ = tbl.Delete(k)
				case 3:
					if rng.Intn(5) == 0 {
						if err := tbl.Put(k, bytes.Repeat([]byte{1}, 2000)); err != nil {
							t.Fatal(err)
						}
					}
				}
				if op%1000 == 999 {
					if err := tbl.Check(); err != nil {
						t.Fatalf("op %d: %v", op, err)
					}
				}
			}
			if err := tbl.Check(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestCheckAfterReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "chk.db")
	tbl := mustOpen(t, path, &Options{Bsize: 128, Ffactor: 8})
	for i := 0; i < 3000; i++ {
		if err := tbl.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	tbl.Put([]byte("big"), bytes.Repeat([]byte("B"), 9000))
	if err := tbl.Close(); err != nil {
		t.Fatal(err)
	}
	tbl = mustOpen(t, path, nil)
	defer tbl.Close()
	if err := tbl.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestCheckDetectsWrongBucket(t *testing.T) {
	// Plant a key in the wrong bucket by writing a page directly.
	store := newMemTable(t)
	defer store.Close()
	if err := store.Check(); err != nil {
		t.Fatal(err)
	}

	// Find the primary page of bucket 0 and shove a key that belongs
	// elsewhere onto it.
	var wrong []byte
	for i := 0; ; i++ {
		k := []byte(fmt.Sprintf("wrong%d", i))
		if store.calcBucket(store.hash(k)) != 0 {
			wrong = k
			break
		}
	}
	buf, err := store.getBucketPage(0)
	if err != nil {
		t.Fatal(err)
	}
	page(buf.Page).addRegular(wrong, []byte("x"))
	buf.Dirty.Store(true)
	store.pool.Put(buf)
	store.nkeysA.Add(1)

	if err := store.Check(); err == nil {
		t.Fatal("Check accepted a key in the wrong bucket")
	}
}

func TestCheckDetectsCountMismatch(t *testing.T) {
	tbl := newMemTable(t)
	defer tbl.Close()
	tbl.nkeysA.Add(5)
	if err := tbl.Check(); err == nil {
		t.Fatal("Check accepted a wrong key count")
	}
}

func TestCheckDetectsLeakedOverflowPage(t *testing.T) {
	tbl := newMemTable(t)
	defer tbl.Close()
	// Allocate an overflow page and reference it from nowhere.
	if _, err := tbl.allocOvfl(); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Check(); err == nil {
		t.Fatal("Check accepted a leaked overflow page")
	}
}

// newMemTable builds a small populated in-memory table for corruption
// tests.
func newMemTable(t *testing.T) *Table {
	t.Helper()
	tbl := mustOpen(t, "", &Options{Bsize: 128, Ffactor: 4})
	for i := 0; i < 500; i++ {
		if err := tbl.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

package core

import (
	"unixhash/internal/metrics"
	"unixhash/internal/telemetry"
	"unixhash/internal/trace"
)

// Telemetry wiring: Options.TelemetryAddr starts an HTTP server over the
// table's own registry, tracer and walkers (internal/telemetry). The
// server's sources only ever take the shared lock, so scrapes run in
// parallel with readers and queue briefly behind writers.

// statsPayload is the core-served /stats document: the table's geometry
// plus a full metrics snapshot. It is assembled from Geometry() (shared
// lock) and the registry (lock-free), so polling it is cheap — the
// walking views live under /debug/heatmap.
type statsPayload struct {
	Method   string           `json:"method"`
	Geometry Geometry         `json:"geometry"`
	Metrics  metrics.Snapshot `json:"metrics"`
}

// startTelemetry launches the table's telemetry server on addr. Called
// from Open before the table is published, so the fields it captures are
// immutable from the handlers' point of view.
func (t *Table) startTelemetry(addr string) error {
	srv, err := telemetry.Serve(addr, telemetry.Options{
		Registry: t.m.reg,
		Tracer:   t.tr,
		Stats: func() (any, error) {
			if err := func() error {
				t.mu.RLock()
				defer t.mu.RUnlock()
				return t.checkOpen()
			}(); err != nil {
				return nil, err
			}
			return statsPayload{Method: "hash", Geometry: t.Geometry(), Metrics: t.m.reg.Snapshot()}, nil
		},
		Heatmap: func() (any, error) { return t.Heatmap() },
	})
	if err != nil {
		return err
	}
	t.tel = srv
	return nil
}

// TelemetryAddr reports the listen address of the table's telemetry
// server ("" when none was requested). With Options.TelemetryAddr ":0"
// this is how the chosen port is discovered.
func (t *Table) TelemetryAddr() string {
	if t.tel == nil {
		return ""
	}
	return t.tel.Addr()
}

// Tracer exposes the tracer the table was opened with (nil when tracing
// is disabled).
func (t *Table) Tracer() *trace.Tracer { return t.tr }

package core

import (
	"hash/crc32"
	"testing"
	"testing/quick"
)

func TestCeilLog2(t *testing.T) {
	cases := []struct{ in, want uint32 }{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4},
		{1 << 20, 20}, {1<<20 + 1, 21},
	}
	for _, c := range cases {
		if got := ceilLog2(c.in); got != c.want {
			t.Errorf("ceilLog2(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestNextPow2(t *testing.T) {
	cases := []struct{ in, want uint32 }{
		{0, 1}, {1, 1}, {2, 2}, {3, 4}, {5, 8}, {1024, 1024}, {1025, 2048},
	}
	for _, c := range cases {
		if got := nextPow2(c.in); got != c.want {
			t.Errorf("nextPow2(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestOaddrEncoding(t *testing.T) {
	o := makeOaddr(5, 123)
	if o.split() != 5 || o.pagenum() != 123 {
		t.Fatalf("oaddr roundtrip: split=%d pagenum=%d", o.split(), o.pagenum())
	}
	if o.String() != "5/123" {
		t.Fatalf("String = %q", o.String())
	}
	// Boundaries: split 31, page 2047.
	o = makeOaddr(31, 2047)
	if o.split() != 31 || o.pagenum() != 2047 {
		t.Fatalf("max oaddr: split=%d pagenum=%d", o.split(), o.pagenum())
	}
}

// testHeader builds a header with plausible spares for address tests.
func testHeader(spares []uint32) *header {
	h := &header{bsize: 256, bshift: 8, ffactor: 8, hdrPages: 1, highMask: 1}
	copy(h.spares[:], spares)
	if len(spares) > 0 {
		h.ovflPoint = uint32(len(spares) - 1)
	}
	return h
}

func TestBucketToPageNoSpares(t *testing.T) {
	h := testHeader(nil)
	// With no overflow pages, bucket b is page b + hdrPages.
	for b := uint32(0); b < 100; b++ {
		if got := h.bucketToPage(b); got != b+1 {
			t.Fatalf("bucketToPage(%d) = %d, want %d", b, got, b+1)
		}
	}
}

func TestBucketToPageWithSpares(t *testing.T) {
	// Paper example: overflow pages allocated at split points shift later
	// generations' primaries. spares cumulative: 2 pages at split 1,
	// 3 more at split 2.
	h := testHeader([]uint32{0, 2, 5})
	cases := []struct{ bucket, want uint32 }{
		{0, 1},         // before any spares
		{1, 1 + 1 + 0}, // log2(2)-1 = 0 -> spares[0]=0
		{2, 2 + 1 + 2}, // log2(3)-1 = 1 -> spares[1]=2
		{3, 3 + 1 + 2},
		{4, 4 + 1 + 5}, // log2(5)-1 = 2 -> spares[2]=5
		{7, 7 + 1 + 5},
	}
	for _, c := range cases {
		if got := h.bucketToPage(c.bucket); got != c.want {
			t.Errorf("bucketToPage(%d) = %d, want %d", c.bucket, got, c.want)
		}
	}
}

func TestOaddrToPage(t *testing.T) {
	h := testHeader([]uint32{0, 2, 5})
	// Overflow page s/p lives p pages after the primary of bucket 2^s-1.
	cases := []struct {
		o    oaddr
		want uint32
	}{
		{makeOaddr(1, 1), h.bucketToPage(1) + 1},
		{makeOaddr(1, 2), h.bucketToPage(1) + 2},
		{makeOaddr(2, 1), h.bucketToPage(3) + 1},
		{makeOaddr(2, 3), h.bucketToPage(3) + 3},
	}
	for _, c := range cases {
		if got := h.oaddrToPage(c.o); got != c.want {
			t.Errorf("oaddrToPage(%v) = %d, want %d", c.o, got, c.want)
		}
	}
}

// TestAddressingInjective verifies the core invariant of buddy-in-waiting
// addressing: no primary page and overflow page ever map to the same
// physical page, across random (but valid) spares configurations.
func TestAddressingInjective(t *testing.T) {
	f := func(rawSpares [8]uint16, nbits uint8) bool {
		// Build a valid cumulative spares array with up to 8 split
		// points, each adding < 2048 pages.
		h := testHeader(nil)
		points := int(nbits%8) + 1
		var cum uint32
		for i := 0; i < points; i++ {
			cum += uint32(rawSpares[i] % 200)
			h.spares[i] = cum
		}
		h.ovflPoint = uint32(points - 1)
		maxBucket := uint32(1)<<uint(points) - 1

		seen := make(map[uint32]string)
		for b := uint32(0); b <= maxBucket; b++ {
			pg := h.bucketToPage(b)
			if prev, dup := seen[pg]; dup {
				t.Logf("bucket %d and %s both map to page %d", b, prev, pg)
				return false
			}
			seen[pg] = "bucket"
		}
		for s := uint32(0); s < uint32(points); s++ {
			for pn := uint32(1); pn <= h.allocatedAt(s); pn++ {
				pg := h.oaddrToPage(makeOaddr(s, pn))
				if prev, dup := seen[pg]; dup {
					t.Logf("oaddr %d/%d and %s both map to page %d", s, pn, prev, pg)
					return false
				}
				seen[pg] = "ovfl"
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestHeaderRoundtrip(t *testing.T) {
	h := header{
		lorder: lorderLittle, bsize: 1024, bshift: 10, ffactor: 32,
		maxBucket: 77, highMask: 127, lowMask: 63, ovflPoint: 7,
		lastFreed: uint32(makeOaddr(3, 9)), nkeys: 123456, hdrPages: 1,
		checkHash: 0xdeadbeef,
		syncEpoch: 42, flags: hdrDirty, pairSum: 0xfeedface12345678,
	}
	for i := 0; i <= 7; i++ {
		h.spares[i] = uint32(i * 3)
		h.bitmaps[i] = uint16(makeOaddr(uint32(i), 1))
	}
	h.bitmaps[0] = 0

	buf := make([]byte, headerSize)
	h.encode(buf)
	var got header
	if err := got.decode(buf); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got != h {
		t.Fatalf("roundtrip mismatch:\n got  %+v\n want %+v", got, h)
	}
}

func TestHeaderRejectsGarbage(t *testing.T) {
	var h header
	buf := make([]byte, headerSize)
	if err := h.decode(buf); err == nil {
		t.Fatal("decoded all-zero header")
	}
	// Valid header with each field corrupted in turn. The CRC is
	// recomputed after each corruption so the per-field validators are
	// exercised, not just the checksum.
	good := header{
		lorder: lorderLittle, bsize: 256, bshift: 8, ffactor: 8,
		maxBucket: 0, highMask: 1, lowMask: 0, hdrPages: 2,
	}
	corrupt := []func(b []byte){
		func(b []byte) { le.PutUint32(b[0:], 0x12345) },      // magic
		func(b []byte) { le.PutUint32(b[4:], 99) },           // version
		func(b []byte) { le.PutUint32(b[8:], 4321) },         // lorder
		func(b []byte) { le.PutUint32(b[12:], 100) },         // bsize not pow2
		func(b []byte) { le.PutUint32(b[16:], 3) },           // bshift mismatch
		func(b []byte) { le.PutUint32(b[20:], 0) },           // ffactor 0
		func(b []byte) { le.PutUint32(b[24:], 7) },           // maxBucket > highMask
		func(b []byte) { le.PutUint32(b[36:], 99) },          // ovflPoint
		func(b []byte) { le.PutUint64(b[44:], 1<<63) },       // negative nkeys
		func(b []byte) { le.PutUint32(b[52:], 9) },           // hdrPages
		func(b []byte) { le.PutUint32(b[hdrCrcOff-20:], 4) }, // unknown flags
	}
	for i, f := range corrupt {
		buf := make([]byte, headerSize)
		good.encode(buf)
		f(buf)
		le.PutUint32(buf[hdrCrcOff:], crc32.ChecksumIEEE(buf[:hdrCrcOff]))
		var h header
		if err := h.decode(buf); err == nil {
			t.Errorf("corruption %d: decode succeeded", i)
		}
	}
}

// A bit flip anywhere in the header without a matching CRC — a torn or
// corrupted header write — must be rejected by the checksum alone.
func TestHeaderRejectsTornWrite(t *testing.T) {
	good := header{
		lorder: lorderLittle, bsize: 256, bshift: 8, ffactor: 8,
		maxBucket: 0, highMask: 1, lowMask: 0, hdrPages: 2,
	}
	for off := 8; off < headerSize; off += 7 {
		buf := make([]byte, headerSize)
		good.encode(buf)
		buf[off] ^= 0x40
		var h header
		if err := h.decode(buf); err == nil {
			t.Errorf("bit flip at %d: decode succeeded", off)
		}
	}
}

func TestHeaderRejectsNonCumulativeSpares(t *testing.T) {
	h := header{
		lorder: lorderLittle, bsize: 256, bshift: 8, ffactor: 8,
		maxBucket: 3, highMask: 3, lowMask: 1, ovflPoint: 2, hdrPages: 2,
	}
	h.spares[0] = 5
	h.spares[1] = 3 // decreasing: invalid
	h.spares[2] = 3
	buf := make([]byte, headerSize)
	h.encode(buf)
	var got header
	if err := got.decode(buf); err == nil {
		t.Fatal("decoded header with non-cumulative spares")
	}
}

package core

import (
	"errors"
	"strings"
	"testing"
)

// Closed-handle behaviour: every entry point fails cleanly, including
// iterators and maintenance operations created before the close.
func TestOperationsOnClosedTable(t *testing.T) {
	tbl := mustOpen(t, "", nil)
	tbl.Put([]byte("k"), []byte("v"))
	it := tbl.Iter() // created while open
	if err := tbl.Close(); err != nil {
		t.Fatal(err)
	}

	if it.Next() {
		t.Fatal("iterator advanced on a closed table")
	}
	if !errors.Is(it.Err(), ErrClosed) {
		t.Fatalf("iterator error = %v, want ErrClosed", it.Err())
	}
	if err := tbl.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Sync = %v", err)
	}
	if err := tbl.Check(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Check = %v", err)
	}
	if _, err := tbl.FillStats(); !errors.Is(err, ErrClosed) {
		t.Fatalf("FillStats = %v", err)
	}
	var sb strings.Builder
	if err := tbl.Dump(&sb, false); !errors.Is(err, ErrClosed) {
		t.Fatalf("Dump = %v", err)
	}
	if _, err := tbl.Has([]byte("k")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Has = %v", err)
	}
}

func TestSyncOnReadOnlyIsNoop(t *testing.T) {
	path := t.TempDir() + "/ro.db"
	w := mustOpen(t, path, nil)
	w.Put([]byte("k"), []byte("v"))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r := mustOpen(t, path, &Options{ReadOnly: true})
	defer r.Close()
	if err := r.Sync(); err != nil {
		t.Fatalf("Sync on read-only = %v", err)
	}
	// Close on read-only must not attempt writes either.
	if err := r.Close(); err != nil {
		t.Fatalf("Close on read-only = %v", err)
	}
}

func TestGeometryAccessors(t *testing.T) {
	tbl := mustOpen(t, "", &Options{Bsize: 512, Ffactor: 16, Nelem: 100})
	defer tbl.Close()
	g := tbl.Geometry()
	if g.Bsize != 512 || g.Ffactor != 16 {
		t.Fatalf("Geometry = %+v", g)
	}
	if tbl.Pool() == nil || tbl.Store() == nil {
		t.Fatal("accessors returned nil")
	}
	if tbl.Store().PageSize() != 512 {
		t.Fatalf("store page size = %d", tbl.Store().PageSize())
	}
}

package core

// Per-bucket tag filter. Every slot page reserves a small region right
// after the 4-byte page header; on a primary bucket page it holds a
// compact summary of the bucket's whole chain, maintained incrementally
// by Put/Delete/splits/batch and rebuilt from pair data on recovery:
//
//	byte 4        count     — tag bytes in use
//	byte 5        flags     — fltSaturated, fltInexact
//	byte 6        chainLen  — overflow pages in the chain (saturates 255)
//	bytes 7..7+C  tags      — one byte per resident key (C = tagCapFor)
//
// Each tag byte packs a 2-bit position hint with 6 bits of the key's
// hash: hint<<6 | (h>>26)&0x3f, where hint = min(chainPos, 3) and
// chainPos 0 is the primary page. A Get consults the filter before
// touching the chain: no tag with matching hash bits means the key is
// definitely absent (zero chain-page reads); on a possible hit the
// hints say which chain positions can hold it, so non-matching overflow
// pages are skipped. False positives cost a wasted probe; false
// negatives are forbidden, so any anomaly degrades the filter toward
// "search everything":
//
//   - more resident keys than tag capacity sets fltSaturated: the
//     filter answers nothing until a rebuild shrinks the bucket's load
//     (adds and removes become no-ops; chainLen stays maintained).
//   - unlinking an overflow page shifts later positions, so it sets
//     fltInexact: membership answers (tag bits) stay exact, position
//     hints are ignored until a rebuild.
//   - a remove that cannot find its tag means the filter lost sync
//     with the pair data; it self-saturates rather than risk a miss.
//
// Overflow pages carry the region too (the slot codec is uniform) but
// leave it zeroed — which is exactly an empty filter, so zero-filled
// fresh pages and the split path's clear+initPage need no extra code.
const (
	fltCountOff = pageHdrSize
	fltFlagsOff = pageHdrSize + 1
	fltChainOff = pageHdrSize + 2
	fltTagsOff  = pageHdrSize + 3
	fltMetaSize = 3

	fltSaturated = 1 << 0 // tag set incomplete: filter answers nothing
	fltInexact   = 1 << 1 // position hints stale: membership only

	tagMask = 0x3f // low 6 bits of a tag byte hold hash bits

	// maxHint caps the position hint: hint 3 means "chain position 3 or
	// beyond", so pages past position 2 can never be skipped by hints.
	maxHint = 3
)

// tagCapFor returns the tag capacity for a page of n bytes: one eighth
// of the page, clamped to [8, 120]. At the default geometry (256-byte
// pages, fill factor ~8) the 32 tags cover a bucket several times over;
// saturation only happens on pathological skew, where the filter would
// not help anyway.
func tagCapFor(n int) int {
	c := n / 8
	if c < 8 {
		c = 8
	}
	if c > 120 {
		c = 120
	}
	return c
}

// slotBaseFor returns the offset of the first slot on a page of n bytes.
func slotBaseFor(n int) int { return pageHdrSize + fltMetaSize + tagCapFor(n) }

func (p page) slotBase() int { return slotBaseFor(len(p)) }

// filterTag6 extracts the 6 hash bits stored in a tag. The top of the
// hash is used because bucket routing consumes the low bits; high and
// low bits are nearly independent, keeping the false-positive rate near
// the ideal n/64 per probe.
func filterTag6(h uint32) byte { return byte(h>>26) & tagMask }

// filterTagByte packs hash bits and a chain-position hint into one tag.
func filterTagByte(h uint32, pos int) byte {
	if pos > maxHint {
		pos = maxHint
	}
	return byte(pos)<<6 | filterTag6(h)
}

func (p page) fltSaturatedBit() bool { return p[fltFlagsOff]&fltSaturated != 0 }
func (p page) fltInexactBit() bool   { return p[fltFlagsOff]&fltInexact != 0 }
func (p page) fltCount() int         { return int(p[fltCountOff]) }

// fltChainLen returns the recorded number of overflow pages chained
// after the primary. It is exact below 255 and is only used to size
// read-ahead, where an overestimate is harmless (the chain walk stops
// at the real end).
func (p page) fltChainLen() int { return int(p[fltChainOff]) }

func (p page) fltChainInc() {
	if p[fltChainOff] < 255 {
		p[fltChainOff]++
	}
}

func (p page) fltChainDec() {
	// Once saturated the true length is unknown; stay pinned high (an
	// overestimate only costs prefetch sizing).
	if c := p[fltChainOff]; c > 0 && c < 255 {
		p[fltChainOff] = c - 1
	}
}

// setFltChainLen records the chain length directly (rebuild paths).
func (p page) setFltChainLen(n int) {
	if n > 255 {
		n = 255
	}
	p[fltChainOff] = byte(n)
}

// setFltInexact marks the position hints stale (an unlink renumbered
// chain positions); membership answers stay exact.
func (p page) setFltInexact() { p[fltFlagsOff] |= fltInexact }

// filterReset clears the filter to empty (no tags, no flags, chain
// length zero). Tag bytes beyond count are never read, so they need not
// be zeroed.
func (p page) filterReset() {
	p[fltCountOff] = 0
	p[fltFlagsOff] = 0
	p[fltChainOff] = 0
}

// filterAdd records a resident key with hash h at chain position pos.
func (p page) filterAdd(h uint32, pos int) {
	if p[fltFlagsOff]&fltSaturated != 0 {
		return
	}
	c := int(p[fltCountOff])
	if c >= p.tagCap() {
		p[fltFlagsOff] |= fltSaturated
		return
	}
	p[fltTagsOff+c] = filterTagByte(h, pos)
	p[fltCountOff] = byte(c + 1)
}

func (p page) tagCap() int { return tagCapFor(len(p)) }

// filterRemove drops the tag recorded for a key with hash h at chain
// position pos. If the exact tag is gone (hints already stale, or the
// filter lost sync) it falls back to removing any tag with the same
// hash bits — membership stays exact — and failing that, saturates: a
// filter that cannot account for its keys must not answer "absent".
func (p page) filterRemove(h uint32, pos int) {
	if p[fltFlagsOff]&fltSaturated != 0 {
		return
	}
	c := int(p[fltCountOff])
	tags := p[fltTagsOff : fltTagsOff+c]
	if p[fltFlagsOff]&fltInexact == 0 {
		want := filterTagByte(h, pos)
		for i, t := range tags {
			if t == want {
				tags[i] = tags[c-1]
				p[fltCountOff] = byte(c - 1)
				return
			}
		}
	}
	t6 := filterTag6(h)
	for i, t := range tags {
		if t&tagMask == t6 {
			tags[i] = tags[c-1]
			p[fltCountOff] = byte(c - 1)
			p[fltFlagsOff] |= fltInexact
			return
		}
	}
	p[fltFlagsOff] |= fltSaturated
}

// filterHints reports which chain positions may hold a key with hash h:
// bit i set means position i (0 = primary) must be searched, bit 3
// means some position >= 3 must be. Zero means the key is definitely
// absent. Membership (zero vs nonzero) is exact even when fltInexact is
// set; the per-position bits are only meaningful while hints are exact.
// The caller must check fltSaturatedBit first.
func (p page) filterHints(h uint32) uint8 {
	return tagHints(p[fltTagsOff:fltTagsOff+int(p[fltCountOff])], h)
}

// tagHints is filterHints over a bare tag slice (Check validates a
// snapshot of the region taken before the chain walk).
func tagHints(tags []byte, h uint32) uint8 {
	t6 := filterTag6(h)
	var m uint8
	for _, t := range tags {
		if t&tagMask == t6 {
			m |= 1 << (t >> 6)
		}
	}
	return m
}

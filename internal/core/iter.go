package core

import (
	"errors"
	"fmt"

	"unixhash/internal/buffer"
	"unixhash/internal/pagefile"
)

// Iterator walks every key/data pair in the table, bucket by bucket and
// page by page — the hash package's sequential retrieval, which (unlike
// ndbm's) returns both the key and the data in one call.
//
// The iterator addresses pages logically and refetches them through the
// buffer pool on each advance, so it holds no pins between calls and an
// arbitrarily large table can be scanned with a small pool. Each Next
// takes the table's shared lock, so scans run in parallel with Gets and
// with other scans. Mutating the table during a scan is permitted but the
// scan may then skip or repeat entries, as with the original package; the
// iterator itself never corrupts the table. An Iterator value is not
// itself safe for use from multiple goroutines; give each its own.
type Iterator struct {
	t        *Table
	bucket   uint32
	o        oaddr // current page within the chain; 0 = primary page
	idx      int   // next entry index on the current page
	nextLink oaddr // chain successor recorded by the last page fetch
	key      []byte
	val      []byte
	err      error
	done     bool
}

// Iter returns an iterator positioned before the first pair.
func (t *Table) Iter() *Iterator {
	return &Iterator{t: t}
}

// Next advances to the next pair, reporting false at the end of the table
// or on error (check Err).
func (it *Iterator) Next() bool {
	if it.done || it.err != nil {
		return false
	}
	it.t.mu.RLock()
	defer it.t.mu.RUnlock()
	if err := it.t.checkOpen(); err != nil {
		it.err = err
		return false
	}
	for {
		// Latch the bucket whose chain the cursor is on: a split that
		// involves it finishes (or is waited out) first, so the page walk
		// never observes a chain mid-redistribution.
		it.t.latchBucketRead(it.bucket)
		ok, err := it.nextOnPage()
		it.t.stripeFor(it.bucket).RUnlock()
		if err != nil {
			it.err = err
			return false
		}
		if ok {
			return true
		}
		if !it.advancePage() {
			it.done = true
			return false
		}
	}
}

// nextOnPage fetches the current page and materializes entry idx if it
// exists.
func (it *Iterator) nextOnPage() (bool, error) {
	t := it.t
	var buf *buffer.Buf
	var err error
	if it.o == 0 {
		buf, err = t.pool.Get(t.bucketAddr(it.bucket), nil, true)
	} else {
		// An unlinked overflow fetch: name the owning bucket so the page
		// lands in its chain's shard.
		buf, err = t.pool.GetOwned(ovflBufAddr(it.o), it.bucket, false)
	}
	if err != nil {
		// A never-written primary page of a pre-sized table is empty.
		if it.o == 0 && errors.Is(err, pagefile.ErrNotAllocated) {
			return false, nil
		}
		return false, err
	}
	defer t.pool.Put(buf)
	pg := page(buf.Page)

	// First touch of a bucket's primary: prefetch its overflow chain in
	// one vectored read, since the scan is about to walk all of it.
	if it.o == 0 && it.idx == 0 {
		t.prefetchChain(buf, pg, nil)
	}

	e, n, err := entryAtWithCount(pg, it.idx)
	if err != nil {
		return false, err
	}
	it.nextLink = pg.ovflLink()
	if it.idx >= n {
		return false, nil
	}
	it.idx++
	switch e.kind {
	case entryRegular:
		it.key = append(it.key[:0], e.key...)
		it.val = append(it.val[:0], e.data...)
	case entryBig:
		k, v, err := t.readBig(e.ref)
		if err != nil {
			return false, err
		}
		it.key = append(it.key[:0], k...)
		it.val = append(it.val[:0], v...)
	default:
		return false, fmt.Errorf("%w: unknown entry kind", ErrCorrupt)
	}
	return true, nil
}

// advancePage moves the cursor to the next page in scan order: the chain
// successor recorded by the last page fetch, else the next bucket's
// primary page. It reports false when the table is exhausted.
func (it *Iterator) advancePage() bool {
	it.idx = 0
	if it.nextLink != 0 {
		it.o = it.nextLink
		it.nextLink = 0
		return true
	}
	it.o = 0
	if it.bucket >= it.t.geo.Load() {
		return false
	}
	it.bucket++
	return true
}

// entryAtWithCount returns entry i and the total entry count in one walk.
func entryAtWithCount(pg page, i int) (entry, int, error) {
	var out entry
	n := 0
	err := pg.forEach(func(j int, e entry) bool {
		if j == i {
			out = e
		}
		n = j + 1
		return true
	})
	return out, n, err
}

// Key returns the current pair's key. The slice is reused by Next; copy
// it to retain it.
func (it *Iterator) Key() []byte { return it.key }

// Value returns the current pair's data. The slice is reused by Next.
func (it *Iterator) Value() []byte { return it.val }

// Err reports the error that terminated the scan, if any.
func (it *Iterator) Err() error { return it.err }

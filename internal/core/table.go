package core

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"unixhash/internal/buffer"
	"unixhash/internal/hashfunc"
	"unixhash/internal/metrics"
	"unixhash/internal/oplog"
	"unixhash/internal/pagefile"
	"unixhash/internal/telemetry"
	"unixhash/internal/trace"
	"unixhash/internal/wal"
)

// Options parameterizes a hash table at creation time, mirroring the
// paper's create interface: bucket size, fill factor, the expected final
// number of elements, the number of bytes of main memory used for
// caching, and a user-defined hash function.
type Options struct {
	// Bsize is the bucket (page) size in bytes; power of two in
	// [MinBsize, MaxBsize]. Default 256.
	Bsize int
	// Ffactor is the desired density: the approximate number of keys
	// allowed to accumulate in one bucket before the table grows.
	// Default 8. The paper's guidance: (avgPairLen+4)*ffactor >= bsize.
	Ffactor int
	// Nelem estimates the final number of elements. When given, keys
	// hash into a full-sized table immediately instead of growing it
	// from a single bucket. Default 1.
	Nelem int
	// CacheSize is the buffer pool budget in bytes. Default 64 KB.
	CacheSize int
	// Hash overrides the built-in hash function. A table remembers a
	// check hash so that reopening it with a different function fails
	// with ErrHashMismatch.
	Hash hashfunc.Func
	// ReadOnly opens an existing table for reading only.
	ReadOnly bool
	// AllowDirty opens a file whose dirty flag is set (a crashed or
	// still-open table) without recovery, for inspection tools. Without
	// it, Open fails with ErrNeedsRecovery; see Recover.
	AllowDirty bool
	// Store overrides the backing store (for tests, fault injection and
	// benchmarks with simulated disks). The caller retains ownership:
	// Close leaves it open. When set, the path argument is ignored.
	Store pagefile.Store
	// Cost is the simulated I/O cost model for stores the table creates
	// itself. Zero means no simulated cost.
	Cost pagefile.CostModel
	// GroupCommit makes Sync a shared operation: concurrent syncers whose
	// mutations are already covered by an in-flight or completed sync
	// return without issuing another fsync, so N batch writers calling
	// Sync pay for one durable flush instead of N. The durability
	// guarantee is unchanged — a Sync never returns before every mutation
	// that preceded it is on stable storage.
	GroupCommit bool
	// ControlledOnly disables uncontrolled (overflow-triggered) splits,
	// leaving only the fill-factor policy — dynahash's behaviour. It
	// exists for the ablation benchmarks of the paper's hybrid split
	// policy and is not part of the original interface.
	ControlledOnly bool
	// Lock takes an advisory whole-file lock on file-backed tables:
	// shared for read-only opens, exclusive otherwise. Open fails with
	// pagefile.ErrLocked if another process holds a conflicting lock.
	// This implements the multi-user access the paper's conclusion says
	// "could be incorporated relatively easily".
	Lock bool
	// Metrics is the registry the table exports its observability series
	// into (hash_*, buffer_*, pagefile_*; see DESIGN.md). Nil creates a
	// private registry — instrumentation is always on; the option only
	// decides who else can read it. Sharing one registry between tables
	// (e.g. the shards of a db.Sharded) aggregates same-named series:
	// plain counters share one cell, and computed collectors and
	// histograms are summed across every registrant at read time.
	Metrics *metrics.Registry
	// Trace, when set, receives structured events (splits, overflow page
	// traffic, sync phases, recovery steps, batch phases, buffer
	// evictions, slow device I/O) and captures slow-operation spans. Nil
	// disables tracing entirely: the instrumented paths pay one pointer
	// comparison and nothing else — no atomics, no allocation (enforced
	// by TestTraceDisabledZeroAlloc). See internal/trace and DESIGN.md
	// §11.
	Trace *trace.Tracer
	// TelemetryAddr, when non-empty, serves live telemetry over HTTP on
	// the given host:port for the lifetime of the table: /metrics
	// (Prometheus text), /stats (JSON), /debug/events and /debug/slowops
	// (the trace ring), /debug/heatmap (per-bucket fill and chain depth)
	// and /debug/pprof. ":0" picks a free port, reported by
	// Table.TelemetryAddr. The server stops when the table closes.
	TelemetryAddr string
	// WAL attaches a write-ahead redo log to the table and enables the
	// Begin/Commit transaction API (see Table.Begin): a committed
	// transaction is durable after one sequential log append plus one log
	// fsync, instead of a full two-phase Sync. Sync becomes a checkpoint —
	// it flushes the pages as before, stamps the applied LSN in the
	// header, and truncates the log. Plain Put/Delete remain
	// volatile-until-checkpoint exactly as without the option. File-backed
	// tables keep the log in a sibling "<path>.wal" file; memory tables
	// use an in-memory device.
	WAL bool
	// WALDevice overrides the log device (tests, crash simulation,
	// benchmarks). Implies WAL. The caller retains ownership: Close
	// leaves the device open.
	WALDevice wal.Device
	// WALCost is the simulated I/O cost model charged to log appends and
	// log fsyncs, the sequential-I/O counterpart of Cost. Zero charges
	// nothing.
	WALCost wal.CostModel
	// DisableFilter stops reads from consulting the per-bucket tag
	// filters (see filter.go). The filter bytes are still maintained by
	// every write — they are persistent page state, and a table mutated
	// with filters off must still answer correctly when reopened without
	// the option — so this only removes the read-side consult. It exists
	// for the A/B miss benchmarks.
	DisableFilter bool
	// DisableReadAhead stops reads and iteration from issuing vectored
	// chain read-ahead through the buffer pool (see
	// buffer.Pool.PrefetchChain). For the A/B miss benchmarks.
	DisableReadAhead bool
}

// Validate checks the option fields without applying defaults: a zero
// value means "use the default" and always passes. It reports the first
// offending field by name, so callers (db.Open) can surface exactly what
// was rejected instead of silently clamping.
func (o *Options) Validate() error {
	if o == nil {
		return nil
	}
	if o.Bsize != 0 && (o.Bsize < MinBsize || o.Bsize > MaxBsize || !isPow2(o.Bsize)) {
		return fmt.Errorf("Bsize: %d must be a power of two in [%d, %d]", o.Bsize, MinBsize, MaxBsize)
	}
	if o.Ffactor < 0 {
		return fmt.Errorf("Ffactor: %d must not be negative", o.Ffactor)
	}
	if o.Nelem < 0 {
		return fmt.Errorf("Nelem: %d must not be negative", o.Nelem)
	}
	if o.CacheSize < 0 {
		return fmt.Errorf("CacheSize: %d must not be negative", o.CacheSize)
	}
	return nil
}

func (o *Options) withDefaults() (Options, error) {
	var opts Options
	if o != nil {
		opts = *o
	}
	if err := o.Validate(); err != nil {
		return opts, fmt.Errorf("hash: invalid option %w", err)
	}
	if opts.Bsize == 0 {
		opts.Bsize = DefaultBsize
	}
	if opts.Ffactor == 0 {
		opts.Ffactor = DefaultFfactor
	}
	if opts.Nelem == 0 {
		opts.Nelem = 1
	}
	if opts.CacheSize == 0 {
		opts.CacheSize = DefaultCacheSize
	}
	if opts.Hash == nil {
		opts.Hash = hashfunc.Default
	}
	return opts, nil
}

// Table is a linear-hash table of byte-string key/data pairs. All methods
// are safe for concurrent use. Bucket-granular operations — Get, GetBuf,
// Has, Put, PutNew, Delete, Len, Stats and iteration — take the table
// lock shared and latch only the stripe covering the bucket chain they
// touch, so readers AND writers on different buckets run in parallel;
// splits are incremental and cooperative (see latch.go). Whole-table
// operations (Sync, Close, PutBatch, Check, Recover, Geometry and the
// dump/fillstats walkers) take the lock exclusively. The lock order is
// table lock → splitMu → bucket stripes (ascending) → split-job/ovfl/
// dirty mutexes → buffer shard lock, and never the reverse.
type Table struct {
	mu sync.RWMutex

	hdr   header
	hash  hashfunc.Func
	store pagefile.Store
	pool  *buffer.Pool

	path           string
	ownStore       bool
	readonly       bool
	closed         bool
	controlledOnly bool
	filtersOn      bool // reads consult the per-bucket tag filters
	prefetchOn     bool // chain walks issue vectored read-ahead

	// Bucket-granular concurrency state (see latch.go). geo publishes
	// hdr.maxBucket for shared-phase routing; stripes are the per-bucket
	// latches; splitMu admits one split at a time, with its shared
	// progress in split/splitState. nkeysA and pairSumA are the live key
	// count and pair fingerprint — hdr.nkeys/hdr.pairSum hold the
	// last-synced values between syncs and are folded from the atomics by
	// syncLocked. dirtyHdr and addedOvfl are the shared-phase forms of
	// the old exclusive-writer booleans.
	geo        atomic.Uint32
	stripes    [nStripes]sync.RWMutex
	splitMu    sync.Mutex
	split      splitJob
	splitState atomic.Uint64
	nkeysA     atomic.Int64
	pairSumA   atomic.Uint64
	dirtyHdr   atomic.Bool
	addedOvfl  atomic.Bool // an insert grew a chain: uncontrolled split pending

	// ovflMu serializes the overflow allocator and bitmap state (ovfl.go)
	// under concurrent bucket writers.
	ovflMu sync.Mutex

	// dirtyMarked records that the on-disk header carries the dirty flag:
	// it is set by markDirty before the first mutation after an open or
	// sync, and cleared when a sync durably writes a clean header. While
	// it is set, further mutations need no header write — the file is
	// already marked (one atomic load on the write path). dirtyMu
	// serializes the slow path, which is the only place a shared-phase
	// writer encodes the header: safe precisely because every mutation is
	// preceded by markDirty, so when the slow path runs, nothing has
	// mutated since the last sync and the header image is the last-synced
	// one. See the Durability model section of DESIGN.md.
	dirtyMarked atomic.Bool
	dirtyMu     sync.Mutex

	// needsRecovery is set when an existing file is opened with its dirty
	// flag set (AllowDirty). Until Recover clears it, the table is
	// inspection-only: mutations and syncs fail with ErrNeedsRecovery, and
	// Close must not stamp a clean header over an unrecovered file.
	needsRecovery bool

	// Bitmap pages are owned by the table, outside the LRU pool. They are
	// touched by the allocator and the dump/recovery walkers, under
	// ovflMu (shared phase) or the exclusive table lock.
	bitmapBuf   [maxSplits][]byte
	bitmapDirty [maxSplits]bool
	freeCount   [maxSplits]int

	// scratch recycles page-sized buffers for big-pair chain I/O; each
	// operation takes its own so concurrent readers never share one.
	scratch sync.Pool

	// Group commit (Options.GroupCommit). mutSeq counts completed write
	// attempts. Since PR 6 it is bumped under the *shared* table lock
	// (deferred in putInner/deleteInner/Commit), so a load taken before a
	// leader acquires the exclusive lock is a lower bound on what that
	// leader's syncLocked will cover: the exclusive acquisition waits out
	// every in-flight shared-phase writer, including the deferred bump.
	// gc coordinates the leader/follower protocol in syncShared; round
	// and lastErr let followers of a failed round report the leader's
	// error instead of dog-piling fresh fsyncs onto a failing store.
	groupCommit bool
	mutSeq      atomic.Uint64
	gc          struct {
		mu       sync.Mutex
		cond     *sync.Cond
		inflight bool   // a leader is running syncLocked
		synced   uint64 // highest mutSeq value durably covered
		round    uint64 // completed leader rounds (successful or not)
		lastErr  error  // outcome of the most recent round
	}

	// Write-ahead log state (Options.WAL). appliedLSN is the commit LSN
	// of the last transaction whose effects are in the table (memory or
	// pages); syncLocked folds it into hdr.walLSN at checkpoint.
	// walPending holds committed-but-unapplied transactions found in the
	// log at open; Recover replays them. walOwnDev records that Close
	// must close the device. walErr poisons the transaction path after a
	// commit applied only partially (see Txn.Commit).
	wal        *wal.Log
	walOwnDev  bool
	appliedLSN atomic.Uint64
	walPending []wal.Txn
	walErrMu   sync.Mutex
	walErr     error

	// m holds the table's resolved metric handles (see metrics.go). All
	// structural counters live here; TableStats is a compatibility view.
	m tableMetrics

	// tr is the structured event tracer (Options.Trace); nil disables
	// tracing. tel is the telemetry server started for
	// Options.TelemetryAddr, if any. Both are set in Open before the
	// table is published and never change.
	tr  *trace.Tracer
	tel *telemetry.Server
}

// TableStats is a compatibility view over the table's metric counters,
// kept for tests and the bench harness. The full series — including
// controlled/uncontrolled split breakdown, chain probes, sync latency
// and the buffer/pagefile layers — lives in the metrics registry
// (MetricsSnapshot, MetricsRegistry).
type TableStats struct {
	Expansions int64 // bucket splits (table growth steps)
	OvflAllocs int64 // fresh overflow pages allocated
	OvflReuses int64 // reclaimed overflow pages reused
	OvflFrees  int64 // overflow pages freed
	BigPairs   int64 // big key/data pairs written
	Gets       int64
	Puts       int64
	Dels       int64
}

// Open opens or creates the hash table at path. An empty path creates a
// purely memory-resident table (the hsearch replacement mode); it behaves
// identically but is discarded on Close.
func Open(path string, o *Options) (*Table, error) {
	opts, err := o.withDefaults()
	if err != nil {
		return nil, err
	}

	t := &Table{hash: opts.Hash, path: path, readonly: opts.ReadOnly, controlledOnly: opts.ControlledOnly, groupCommit: opts.GroupCommit, tr: opts.Trace,
		filtersOn: !opts.DisableFilter, prefetchOn: !opts.DisableReadAhead}
	t.gc.cond = sync.NewCond(&t.gc.mu)
	t.split.cond = sync.NewCond(&t.split.mu)

	existing := false
	switch {
	case opts.Store != nil:
		t.store = opts.Store
		existing = t.store.NPages() > 0
	case path == "":
		t.store = pagefile.NewMem(opts.Bsize, opts.Cost)
		t.ownStore = true
	default:
		bsize, exists, err := peekBsize(path)
		if err != nil {
			return nil, err
		}
		if exists {
			existing = true
		} else {
			bsize = opts.Bsize
			if opts.ReadOnly {
				return nil, fmt.Errorf("hash: %s: %w", path, os.ErrNotExist)
			}
		}
		fs, err := pagefile.OpenFile(path, bsize, opts.Cost)
		if err != nil {
			return nil, err
		}
		if opts.Lock {
			if err := fs.Lock(!opts.ReadOnly); err != nil {
				fs.Close()
				return nil, err
			}
		}
		t.store = fs
		t.ownStore = true
	}

	if existing {
		err = t.readHeader()
		if err == nil && t.hdr.dirty() {
			// The last writer crashed (or is still live) between marking
			// the file dirty and completing a sync: the pages may not
			// reproduce the last-synced state. Refuse unless the caller
			// explicitly tolerates it (inspection tools, Recover).
			if !opts.AllowDirty {
				err = fmt.Errorf("hash: %s: %w", path, ErrNeedsRecovery)
			}
			t.dirtyMarked.Store(true)
			t.needsRecovery = true
		}
	} else {
		err = t.initHeader(opts)
	}
	if err != nil {
		if t.ownStore {
			t.store.Close()
		}
		return nil, err
	}
	// Seed the shared-phase routing and accounting atomics from the
	// freshly loaded header.
	t.publishGeo()
	t.nkeysA.Store(t.hdr.nkeys)
	t.pairSumA.Store(t.hdr.pairSum)

	// The hdrWAL flag (stamped durably at the first writable WAL attach,
	// before any commit can be acknowledged) proves this table is
	// WAL-managed: opening it without its log would silently roll back
	// every commit since the last checkpoint — including commits made
	// before the *first* checkpoint, when walLSN is still zero.
	// Path-backed tables auto-attach the sidecar log; a store-backed
	// table needs its device handed in. walLSN != 0 is kept as a belt
	// for pre-flag files.
	if (t.hdr.flags&hdrWAL != 0 || t.hdr.walLSN != 0) && !opts.WAL && opts.WALDevice == nil {
		if t.path == "" {
			if t.ownStore {
				t.store.Close()
			}
			return nil, fmt.Errorf("hash: table is wal-managed (checkpoint %d) but no log device was provided: %w",
				t.hdr.walLSN, ErrUnrecoverable)
		}
		opts.WAL = true
	}
	if opts.WAL || opts.WALDevice != nil {
		if err := t.openWAL(&opts); err != nil {
			t.closeWAL()
			if t.ownStore {
				t.store.Close()
			}
			return nil, err
		}
	}

	t.scratch.New = func() any { return make([]byte, t.hdr.bsize) }
	cfg := buffer.Config{OnLoad: onPageLoad}
	if t.tr != nil {
		// The eviction hook exists only when tracing is on, so a disabled
		// tracer costs the pool nothing — not even a nil-func check that
		// the compiler can't elide.
		cfg.OnEvict = func(a buffer.Addr, dirty bool) {
			t.tr.Emit(trace.EvBufEvict, uint64(a.N), boolArg(a.Ovfl), boolArg(dirty), 0)
		}
	}
	t.pool = buffer.NewConfig(t.store, opts.CacheSize, func(a buffer.Addr) uint32 {
		if a.Ovfl {
			return t.hdr.oaddrToPage(oaddr(a.N))
		}
		return t.hdr.bucketToPage(a.N)
	}, cfg)

	// Resolve the metric handles and let the layers below export their
	// series into the same registry.
	t.m.init(opts.Metrics)
	t.pool.RegisterMetrics(t.m.reg, "buffer_")
	t.store.Stats().Register(t.m.reg, "pagefile_")
	if t.wal != nil {
		t.wal.RegisterMetrics(t.m.reg)
	}
	t.m.setShape(t.hdr.nkeys, t.hdr.maxBucket)
	if t.tr != nil {
		t.store.Stats().SetTrace(t.tr)
	}
	if opts.TelemetryAddr != "" {
		if err := t.startTelemetry(opts.TelemetryAddr); err != nil {
			t.pool.InvalidateAll()
			t.closeWAL()
			if t.ownStore {
				t.store.Close()
			}
			return nil, err
		}
	}
	return t, nil
}

// openWAL attaches the write-ahead log: it opens (or creates) the device,
// scans it for committed transactions, and reconciles the log against the
// header's checkpoint LSN. Commits past the checkpoint have not reached
// the pages — the table then needs Recover, exactly like a dirty header.
// Called from Open with the table not yet published; the caller cleans up
// via closeWAL on error.
func (t *Table) openWAL(opts *Options) error {
	dev := opts.WALDevice
	switch {
	case dev != nil:
		// Caller-owned device.
	case t.path == "":
		dev = wal.NewMemDevice()
		t.walOwnDev = true
	default:
		fd, err := wal.OpenFileDevice(t.path + ".wal")
		if err != nil {
			return fmt.Errorf("hash: open wal: %w", err)
		}
		dev = fd
		t.walOwnDev = true
	}
	l, sr, err := wal.Open(dev, opts.WALCost, t.tr)
	if err != nil {
		if t.walOwnDev {
			dev.Close()
		}
		t.walOwnDev = false
		return fmt.Errorf("hash: open wal: %w", err)
	}
	t.wal = l
	t.appliedLSN.Store(t.hdr.walLSN)
	l.EnsureLSN(t.hdr.walLSN)

	if sr.HeaderOK && (sr.Epoch > t.hdr.syncEpoch || sr.CheckpointLSN > t.hdr.walLSN) {
		// The log claims a checkpoint the table never took: the table file
		// was replaced or rolled back underneath its log. No automatic
		// answer is safe here.
		return fmt.Errorf("hash: %w: wal is ahead of the table (log epoch %d lsn %d, table epoch %d lsn %d)",
			ErrUnrecoverable, sr.Epoch, sr.CheckpointLSN, t.hdr.syncEpoch, t.hdr.walLSN)
	}
	// Stamp the table as WAL-managed before any commit can be
	// acknowledged, so even a crash before the first checkpoint (walLSN
	// still zero) leaves a header that proves a log exists and must be
	// consulted at the next open.
	if !t.readonly && t.hdr.flags&hdrWAL == 0 {
		t.hdr.flags |= hdrWAL
		if err := t.writeHeader(t.hdr.dirty()); err != nil {
			return err
		}
		if err := t.store.Sync(); err != nil {
			return fmt.Errorf("hash: stamp wal flag: %w", err)
		}
	}
	// Committed transactions past the header's checkpoint LSN are durable
	// in the log but not in the pages. Stale ones (at or below the
	// checkpoint) are already folded in and are skipped.
	for _, tx := range sr.Txns {
		if tx.LSN > t.hdr.walLSN {
			t.walPending = append(t.walPending, tx)
		}
	}
	if len(t.walPending) > 0 {
		// Replay happens in Recover, not here: it needs the recovery gate
		// to bless the page state first. A clean header still means the
		// pages hold exactly the checkpoint state (markDirty precedes any
		// page write), so the gate passes trivially there.
		t.needsRecovery = true
		if !opts.AllowDirty {
			return fmt.Errorf("hash: %s: unapplied wal commits: %w", t.path, ErrNeedsRecovery)
		}
		return nil
	}
	if !t.readonly && !t.needsRecovery &&
		(!sr.HeaderOK || sr.Torn || sr.LastLSN != 0 || sr.CheckpointLSN != t.hdr.walLSN || sr.Epoch != t.hdr.syncEpoch) {
		// No pending commits but the log is fresh, stale or torn:
		// normalize it so the next commit appends to a clean file.
		if err := t.wal.Reset(t.hdr.walLSN, t.hdr.syncEpoch); err != nil {
			return fmt.Errorf("hash: reset wal: %w", err)
		}
	}
	return nil
}

// closeWAL closes the log device if the table owns it.
func (t *Table) closeWAL() {
	if t.wal != nil && t.walOwnDev {
		_ = t.wal.Close()
	}
	t.wal = nil
	t.walOwnDev = false
}

// boolArg renders a bool as a trace event argument.
func boolArg(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// onPageLoad runs under the shard lock whenever the pool faults a page
// in. A primary page that has never been written (all zeros — a fresh
// create, or a hole in a pre-sized table) is formatted here, exactly
// once, so concurrent readers never race to initialize it.
func onPageLoad(a buffer.Addr, pg []byte) bool {
	if a.Ovfl {
		return false // overflow pages are formatted by their allocator
	}
	if p := page(pg); p.low() == 0 {
		initPage(p)
		return true
	}
	return false
}

// getScratch borrows a page-sized buffer for big-pair chain I/O.
func (t *Table) getScratch() []byte { return t.scratch.Get().([]byte) }

func (t *Table) putScratch(buf []byte) { t.scratch.Put(buf) }

// peekBsize reads an existing file's header prefix to learn its page size
// before the page store is opened. It reports exists=false for missing or
// empty files.
func peekBsize(path string) (bsize int, exists bool, err error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, false, nil
	}
	if err != nil {
		return 0, false, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return 0, false, err
	}
	if fi.Size() == 0 {
		return 0, false, nil
	}
	buf := make([]byte, headerSize)
	if _, err := f.ReadAt(buf, 0); err != nil {
		return 0, false, fmt.Errorf("hash: %s: %w", path, ErrCorrupt)
	}
	var h header
	if err := h.decode(buf); err != nil {
		return 0, false, fmt.Errorf("hash: %s: %w", path, err)
	}
	return int(h.bsize), true, nil
}

// initHeader sets up a brand-new table. If an approximation of the number
// of elements ultimately to be stored is known (Nelem), entries hash into
// the full-sized table immediately rather than growing from one bucket.
func (t *Table) initHeader(opts Options) error {
	nbuckets := nextPow2(uint32((opts.Nelem + opts.Ffactor - 1) / opts.Ffactor))
	if nbuckets < 1 {
		nbuckets = 1
	}
	h := &t.hdr
	h.lorder = lorderLittle
	h.bsize = uint32(opts.Bsize)
	h.bshift = ceilLog2(uint32(opts.Bsize))
	h.ffactor = uint32(opts.Ffactor)
	h.maxBucket = nbuckets - 1
	h.lowMask = nbuckets - 1
	h.highMask = nbuckets<<1 - 1
	h.ovflPoint = ceilLog2(nbuckets)
	h.nkeys = 0
	h.hdrPages = (uint32(headerSize) + h.bsize - 1) / h.bsize
	h.checkHash = t.hash(hashfunc.CheckKey)
	t.dirtyHdr.Store(true)
	return nil
}

// readHeader loads and verifies the header of an existing table and
// checks that the supplied hash function matches the one the table was
// created with.
func (t *Table) readHeader() error {
	ps := t.store.PageSize()
	npg := (headerSize + ps - 1) / ps
	buf := make([]byte, npg*ps)
	for i := 0; i < npg; i++ {
		if err := t.store.ReadPage(uint32(i), buf[i*ps:(i+1)*ps]); err != nil {
			return fmt.Errorf("hash: read header: %w", err)
		}
	}
	if err := t.hdr.decode(buf); err != nil {
		return err
	}
	if int(t.hdr.bsize) != ps {
		return fmt.Errorf("%w: store page size %d != header bucket size %d", ErrCorrupt, ps, t.hdr.bsize)
	}
	if t.hash(hashfunc.CheckKey) != t.hdr.checkHash {
		return ErrHashMismatch
	}
	return nil
}

// writeHeader encodes the header with the given dirty flag and writes its
// pages. It deliberately does not touch t.dirtyHdr — only a completed
// two-phase sync may declare the in-memory header persisted.
func (t *Table) writeHeader(dirty bool) error {
	if dirty {
		t.hdr.flags |= hdrDirty
	} else {
		t.hdr.flags &^= hdrDirty
	}
	ps := int(t.hdr.bsize)
	npg := int(t.hdr.hdrPages)
	buf := make([]byte, npg*ps)
	t.hdr.encode(buf)
	for i := 0; i < npg; i++ {
		if err := t.store.WritePage(uint32(i), buf[i*ps:(i+1)*ps]); err != nil {
			return fmt.Errorf("hash: write header: %w", err)
		}
	}
	return nil
}

// markDirty durably sets the file's dirty flag before the first mutation
// after an open or sync. At that moment the in-memory header still
// equals the last-synced header — every mutation path calls markDirty
// before touching anything, live counters live in the atomics rather
// than the header, and geometry only moves after an earlier mutation
// already marked the file — so the on-disk dirty header records exactly
// the last-synced geometry, key count and pair checksum, which is what
// recovery verifies against. While dirtyMarked is set this is one atomic
// load, so steady-state writes pay nothing; concurrent first-writers
// serialize on dirtyMu and all but one find the flag already set.
func (t *Table) markDirty() error {
	if t.dirtyMarked.Load() {
		return nil
	}
	t.dirtyMu.Lock()
	defer t.dirtyMu.Unlock()
	if t.dirtyMarked.Load() {
		return nil
	}
	if err := t.writeHeader(true); err != nil {
		return err
	}
	if err := t.store.Sync(); err != nil {
		return err
	}
	t.dirtyMarked.Store(true)
	return nil
}

// calcBucket implements the paper's lookup: mask the 32-bit hash value
// with the high mask; if the result exceeds the maximum bucket, remask
// with the low mask. It reads the header masks directly, so it is only
// for exclusive-lock paths (batch, check, recovery); the shared phase
// routes with routeBucket over the geo atomic instead.
func (t *Table) calcBucket(h uint32) uint32 {
	b := h & t.hdr.highMask
	if b > t.hdr.maxBucket {
		b = h & t.hdr.lowMask
	}
	return b
}

func (t *Table) bucketAddr(b uint32) buffer.Addr { return buffer.Addr{N: b} }
func ovflBufAddr(o oaddr) buffer.Addr            { return buffer.Addr{N: uint32(o), Ovfl: true} }

// getPage pins the page at the head of bucket b's chain. Fresh zero
// pages were already formatted by the pool's load hook.
func (t *Table) getBucketPage(b uint32) (*buffer.Buf, error) {
	return t.pool.Get(t.bucketAddr(b), nil, true)
}

// getBucketPageOp is getBucketPage charging the fetch to led.
func (t *Table) getBucketPageOp(led *oplog.Ledger, b uint32) (*buffer.Buf, error) {
	return t.pool.GetOp(led, t.bucketAddr(b), nil, true)
}

func (t *Table) checkOpen() error {
	if t.closed {
		return ErrClosed
	}
	return nil
}

func (t *Table) checkWritable() error {
	if t.closed {
		return ErrClosed
	}
	if t.readonly {
		return ErrReadOnly
	}
	if t.needsRecovery {
		return ErrNeedsRecovery
	}
	return nil
}

// Get returns a copy of the data stored under key, or ErrNotFound.
// Gets may run concurrently with one another and with iteration.
func (t *Table) Get(key []byte) ([]byte, error) {
	return t.GetBuf(key, nil)
}

// GetBuf is Get with a caller-supplied destination: the value is appended
// to dst[:0] and the resulting slice returned, so a reader looping over
// keys with a reused buffer performs no per-call value allocation. A nil
// dst behaves like Get.
func (t *Table) GetBuf(key, dst []byte) ([]byte, error) {
	// The nil check (not a nil-safe method call) keeps the disabled-trace
	// read path byte-identical to the untraced one: no span, no clock
	// reads, zero allocations (TestTraceDisabledZeroAlloc).
	if t.tr == nil {
		return t.getBuf(key, dst, nil)
	}
	sp := t.tr.OpBegin()
	out, err := t.getBuf(key, dst, nil)
	t.tr.OpEnd(trace.OpGet, uint64(len(key)), sp)
	return out, err
}

// GetBufOp is GetBuf carrying an op ledger: latch waits, filter
// consults, buffer traffic and read-ahead on this lookup are charged to
// led's phases, and the trace-ring span of the op is recorded so an
// exemplar can be joined back to its events. A nil ledger is exactly
// GetBuf — the disabled path stays allocation- and clock-free.
func (t *Table) GetBufOp(led *oplog.Ledger, key, dst []byte) ([]byte, error) {
	if led == nil {
		return t.GetBuf(key, dst)
	}
	if t.tr == nil {
		out, err := t.getBuf(key, dst, led)
		return out, err
	}
	seq0 := t.tr.Ring().Next()
	sp := t.tr.OpBegin()
	out, err := t.getBuf(key, dst, led)
	t.tr.OpEnd(trace.OpGet, uint64(len(key)), sp)
	led.SetTraceSpan(seq0, t.tr.Ring().Next())
	return out, err
}

func (t *Table) getBuf(key, dst []byte, led *oplog.Ledger) ([]byte, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if err := t.checkOpen(); err != nil {
		return nil, err
	}
	if len(key) == 0 {
		return nil, ErrEmptyKey
	}
	t.m.gets.Inc()
	h := t.hash(key)
	var st int64
	if led != nil {
		st = oplog.Clock()
	}
	bucket := t.lockBucket(h, false)
	if led != nil {
		led.Since(oplog.PhaseLatchWait, st)
	}
	out, err := t.getFromBucket(bucket, h, key, dst, led)
	t.stripeFor(bucket).RUnlock()
	return out, err
}

// getFromBucket walks one latched bucket chain for key (h is the key's
// hash, computed once by the caller). The primary page's tag filter is
// consulted before anything else: no tag matching the hash means the key
// is definitely absent and the miss costs zero chain-page reads; exact
// position hints let the walk skip pages that cannot hold the key; and
// when the walk will descend a chain, the chain's pages are installed
// ahead of it with one vectored read (prefetchChain). Caller holds the
// bucket's stripe shared.
func (t *Table) getFromBucket(bucket, h uint32, key, dst []byte, led *oplog.Ledger) ([]byte, error) {
	out := dst[:0]
	found := false
	filtered := false // the primary's filter was consulted
	exact := false    // ... and its position hints are trustworthy
	skipped := false  // ... and it answered "definitely absent"
	var hints uint8
	pos := -1
	err := t.walkChainOp(led, bucket, func(buf *buffer.Buf) (bool, error) {
		pos++
		pg := page(buf.Page)
		if pos == 0 {
			if t.filtersOn && !t.needsRecovery && !pg.fltSaturatedBit() {
				var fst int64
				if led != nil {
					fst = oplog.Clock()
				}
				filtered = true
				exact = !pg.fltInexactBit()
				hints = pg.filterHints(h)
				if led != nil {
					led.Since(oplog.PhaseFilter, fst)
				}
				if hints == 0 {
					// Definitely absent: stop before any chain read.
					skipped = true
					t.m.filterSkips.Inc()
					t.tr.Emit(trace.EvFilterSkip, uint64(bucket), uint64(pg.fltChainLen()), 0, 0)
					return true, nil
				}
			}
			if !filtered || !exact || hints>>1 != 0 {
				// The walk may descend the chain: read it ahead.
				t.prefetchChain(buf, pg, led)
			}
		}
		if filtered && exact {
			hb := pos
			if hb > maxHint {
				hb = maxHint
			}
			if hints&(1<<hb) == 0 {
				// No tag points at this chain position: skip the search
				// (the page itself stays on the walk — it carries the
				// link to its successor).
				t.m.filterPageSkips.Inc()
				return false, nil
			}
		}
		var inner error
		ferr := pg.forEach(func(i int, e entry) bool {
			switch e.kind {
			case entryRegular:
				if bytes.Equal(e.key, key) {
					out = append(out, e.data...)
					found = true
					return false
				}
			case entryBig:
				eq, err := t.bigKeyEquals(e.ref, key)
				if err != nil {
					inner = err
					return false
				}
				if eq {
					out, inner = t.readBigData(e.ref, out)
					found = inner == nil
					return false
				}
			}
			return true
		})
		if ferr != nil {
			return false, ferr
		}
		if inner != nil {
			return false, inner
		}
		return found, nil
	})
	if err != nil {
		return nil, err
	}
	if !found {
		t.m.getMisses.Inc()
		if filtered && !skipped {
			// The filter said "maybe" and the chain said no.
			t.m.filterFPs.Inc()
		}
		return nil, ErrNotFound
	}
	if filtered {
		t.m.filterHits.Inc()
	}
	return out, nil
}

// safeChainLink parses the trailing overflow link of an unvalidated page
// image (freshly prefetched bytes no reader has seen): a page whose slot
// array does not parse yields no link, stopping the read-ahead.
func safeChainLink(pg []byte) (buffer.Addr, bool) {
	p := page(pg)
	if p.slotBase()+p.nslots()*slotSize > len(p) {
		return buffer.Addr{}, false
	}
	o := p.ovflLink()
	if o == 0 {
		return buffer.Addr{}, false
	}
	return ovflBufAddr(o), true
}

// prefetchChain installs primary's overflow chain into the buffer pool
// with one vectored read, sized by the filter region's chain counter. A
// no-op for chains short enough that demand paging is just as cheap,
// when read-ahead is disabled, or on an unrecovered table (whose chain
// counter bytes cannot be trusted).
func (t *Table) prefetchChain(primary *buffer.Buf, pg page, led *oplog.Ledger) {
	if !t.prefetchOn || t.needsRecovery {
		return
	}
	want := pg.fltChainLen()
	if want < 2 {
		return
	}
	first := pg.ovflLink()
	if first == 0 {
		return
	}
	var st int64
	if led != nil {
		st = oplog.Clock()
	}
	n := t.pool.PrefetchChain(primary, ovflBufAddr(first), want, safeChainLink)
	if led != nil {
		led.Since(oplog.PhasePrefetch, st)
	}
	if n > 0 {
		t.m.prefetches.Inc()
		t.m.prefetchedPages.Add(int64(n))
		t.tr.Emit(trace.EvPrefetch, uint64(primary.Addr.N), uint64(n), uint64(want), 0)
	}
}

// Has reports whether key is present.
func (t *Table) Has(key []byte) (bool, error) {
	_, err := t.Get(key)
	if errors.Is(err, ErrNotFound) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	return true, nil
}

// walkChain pins each page of bucket's chain in order, calling fn; fn
// returns done=true to stop early. The predecessor page stays pinned
// while its successor is fetched, preserving the buffer-chain linkage.
func (t *Table) walkChain(bucket uint32, fn func(*buffer.Buf) (bool, error)) error {
	return t.walkChainOp(nil, bucket, fn)
}

// walkChainOp is walkChain charging the walk's page fetches to led
// (buffer hit/fault phases discriminated inside the pool).
func (t *Table) walkChainOp(led *oplog.Ledger, bucket uint32, fn func(*buffer.Buf) (bool, error)) error {
	cur, err := t.getBucketPageOp(led, bucket)
	if err != nil {
		return err
	}
	// Chain metrics count only traversal past the primary page, and are
	// settled once per walk from a local tally: the no-overflow fast
	// path pays zero atomics here, and a walk that does probe overflow
	// amortizes two adds over its page fetches. Pages are added before
	// the walk is counted so a concurrent scrape never observes more
	// walks than overflow pages probed.
	ovflPages := int64(0)
	var prev *buffer.Buf
	defer func() {
		if prev != nil {
			t.pool.Put(prev)
		}
		if cur != nil {
			t.pool.Put(cur)
		}
		if ovflPages > 0 {
			t.m.chainPages.Add(ovflPages)
			t.m.chainWalks.Inc()
		}
	}()
	for {
		done, err := fn(cur)
		if err != nil || done {
			return err
		}
		next := page(cur.Page).ovflLink()
		if next == 0 {
			return nil
		}
		nb, err := t.pool.GetOp(led, ovflBufAddr(next), cur, false)
		if err != nil {
			return err
		}
		ovflPages++
		if prev != nil {
			t.pool.Put(prev)
		}
		prev, cur = cur, nb
	}
}

// Put stores data under key, replacing any existing value.
func (t *Table) Put(key, data []byte) error { return t.put(key, data, true, nil) }

// PutNew stores data under key, failing with ErrKeyExists if the key is
// already present (the ndbm DBM_INSERT behaviour).
func (t *Table) PutNew(key, data []byte) error { return t.put(key, data, false, nil) }

// PutOp is Put carrying an op ledger: latch waits, buffer traffic and
// any cooperative split work triggered by this insert are charged to
// led's phases. A nil ledger is exactly Put.
func (t *Table) PutOp(led *oplog.Ledger, key, data []byte) error {
	return t.put(key, data, true, led)
}

// putScan is what one pass over a bucket chain learns for an insert: the
// existing entry if any, the first page with room, and the chain tail.
type putScan struct {
	found     bool
	foundAddr buffer.Addr
	foundIdx  int
	foundPos  int // chain position of foundAddr (0 = primary)
	foundRef  oaddr
	foundSum  uint64 // pairHash of the existing pair (big: filled later)
	room      bool
	roomAddr  buffer.Addr
	roomPos   int // chain position of roomAddr
	tailAddr  buffer.Addr
	tailPos   int // chain position of tailAddr
}

// scanBucket walks the chain once, locating key and an insertion point.
// needRef selects whether "room" means space for a big-pair ref or for a
// regular pair of the given sizes.
func (t *Table) scanBucket(bucket uint32, key []byte, needRef bool, klen, dlen int, led *oplog.Ledger) (putScan, error) {
	var s putScan
	s.foundIdx = -1
	pos := -1
	err := t.walkChainOp(led, bucket, func(buf *buffer.Buf) (bool, error) {
		pos++
		pg := page(buf.Page)
		s.tailAddr, s.tailPos = buf.Addr, pos
		if !s.found {
			var inner error
			ferr := pg.forEach(func(i int, e entry) bool {
				switch e.kind {
				case entryRegular:
					if bytes.Equal(e.key, key) {
						s.found, s.foundAddr, s.foundIdx, s.foundPos = true, buf.Addr, i, pos
						s.foundSum = pairHash(e.key, e.data)
						return false
					}
				case entryBig:
					eq, err := t.bigKeyEquals(e.ref, key)
					if err != nil {
						inner = err
						return false
					}
					if eq {
						s.found, s.foundAddr, s.foundIdx, s.foundPos, s.foundRef = true, buf.Addr, i, pos, e.ref
						return false
					}
				}
				return true
			})
			if ferr != nil {
				return false, ferr
			}
			if inner != nil {
				return false, inner
			}
		}
		if !s.room {
			fits := pg.fitsRegular(klen, dlen)
			if needRef {
				fits = pg.fitsRef()
			}
			if fits {
				s.room, s.roomAddr, s.roomPos = true, buf.Addr, pos
			}
		}
		return false, nil // continue: the tail address is needed
	})
	return s, err
}

// fetchAddr pins the page at a previously scanned address on bucket's
// chain (the owning bucket routes overflow pages to the chain's shard).
func (t *Table) fetchAddr(a buffer.Addr, bucket uint32) (*buffer.Buf, error) {
	return t.fetchAddrOp(nil, a, bucket)
}

// fetchAddrOp is fetchAddr charging the fetch to led.
func (t *Table) fetchAddrOp(led *oplog.Ledger, a buffer.Addr, bucket uint32) (*buffer.Buf, error) {
	if a.Ovfl {
		return t.pool.GetOwnedOp(led, a, bucket, false)
	}
	return t.getBucketPageOp(led, a.N)
}

func (t *Table) put(key, data []byte, replace bool, led *oplog.Ledger) error {
	if t.tr == nil {
		return t.putInner(key, data, replace, led)
	}
	var seq0 uint64
	if led != nil {
		seq0 = t.tr.Ring().Next()
	}
	sp := t.tr.OpBegin()
	err := t.putInner(key, data, replace, led)
	t.tr.OpEnd(trace.OpPut, uint64(len(key)+len(data)), sp)
	if led != nil {
		led.SetTraceSpan(seq0, t.tr.Ring().Next())
	}
	return err
}

func (t *Table) putInner(key, data []byte, replace bool, led *oplog.Ledger) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if err := t.checkWritable(); err != nil {
		return err
	}
	if len(key) == 0 {
		return ErrEmptyKey
	}
	t.m.puts.Inc()
	// Bumped even if the attempt fails partway: pages may already have
	// been mutated, and group commit must only ever over-sync, never
	// under-sync.
	defer t.mutSeq.Add(1)

	h := t.hash(key)
	big := t.isBig(len(key), len(data))
	// A big pair's chain is written before the bucket latch is taken:
	// chain pages are private until the ref lands on the bucket, so the
	// chain I/O never extends a latch hold, and an allocation failure
	// leaves the bucket unchanged. The file must be durably marked dirty
	// before those writes reach the store.
	var ref oaddr
	if big {
		if err := t.markDirty(); err != nil {
			return err
		}
		var err error
		if ref, err = t.putBigPair(key, data); err != nil {
			return err
		}
	}

	var st int64
	if led != nil {
		st = oplog.Clock()
	}
	bucket := t.lockBucket(h, true)
	if led != nil {
		led.Since(oplog.PhaseLatchWait, st)
	}
	err := t.putInBucket(bucket, h, key, data, replace, big, ref, led)
	t.stripeFor(bucket).Unlock()
	if err != nil {
		if big && errors.Is(err, ErrKeyExists) {
			// The pre-written chain never became reachable; reclaim it.
			_ = t.freeBigChain(ref)
		}
		return err
	}

	// Hybrid split policy: split the next bucket in linear order when an
	// insert grew an overflow chain (uncontrolled) or when the table
	// exceeds its fill factor (controlled). The bucket latch is already
	// released — the split takes its own pair of latches.
	uncontrolled := t.addedOvfl.Swap(false) && !t.controlledOnly
	if uncontrolled || t.nkeysA.Load() > int64(t.hdr.ffactor)*int64(t.geo.Load()+1) {
		if led != nil {
			st = oplog.Clock()
		}
		if err := t.maybeExpand(uncontrolled); err != nil {
			return err
		}
		if led != nil {
			led.Since(oplog.PhaseSplitAssist, st)
		}
	}
	t.m.setShape(t.nkeysA.Load(), t.geo.Load())
	return nil
}

// putInBucket performs the insert-or-replace against one latched bucket
// chain (h is key's hash). Caller holds the bucket's stripe exclusively;
// for big pairs the chain at ref is already written.
func (t *Table) putInBucket(bucket, h uint32, key, data []byte, replace, big bool, ref oaddr, led *oplog.Ledger) error {
	s, err := t.scanBucket(bucket, key, big, len(key), len(data), led)
	if err != nil {
		return err
	}
	if s.found && !replace {
		return ErrKeyExists
	}

	// Durably mark the file dirty before the first page mutation (a
	// no-op when a big-pair chain was already written).
	if err := t.markDirty(); err != nil {
		return err
	}

	inserted := false
	insPos := 0
	if s.found {
		if s.foundRef != 0 {
			// The replaced pair lives on a big chain: fingerprint it
			// before the chain is freed.
			old, err := t.readBigData(s.foundRef, nil)
			if err != nil {
				return err
			}
			s.foundSum = pairHash(key, old)
		}
		buf, err := t.fetchAddrOp(led, s.foundAddr, bucket)
		if err != nil {
			return err
		}
		if s.foundRef != 0 {
			if err := t.freeBigChain(s.foundRef); err != nil {
				t.pool.Put(buf)
				return err
			}
		}
		pg := page(buf.Page)
		if err := pg.removeEntry(s.foundIdx); err != nil {
			t.pool.Put(buf)
			return err
		}
		buf.Dirty.Store(true)
		t.nkeysA.Add(-1)
		t.xorPairSum(s.foundSum)
		// The vacated page is the preferred insertion point.
		if big && pg.fitsRef() {
			pg.addRef(ref)
			inserted, insPos = true, s.foundPos
		} else if !big && pg.fitsRegular(len(key), len(data)) {
			pg.addRegular(key, data)
			inserted, insPos = true, s.foundPos
		}
		t.pool.Put(buf)
	}

	if !inserted && s.room {
		buf, err := t.fetchAddrOp(led, s.roomAddr, bucket)
		if err != nil {
			return err
		}
		pg := page(buf.Page)
		switch {
		case big && pg.fitsRef():
			pg.addRef(ref)
			inserted = true
		case !big && pg.fitsRegular(len(key), len(data)):
			pg.addRegular(key, data)
			inserted = true
		}
		if inserted {
			insPos = s.roomPos
			buf.Dirty.Store(true)
		}
		t.pool.Put(buf)
	}

	if !inserted {
		tail, err := t.fetchAddrOp(led, s.tailAddr, bucket)
		if err != nil {
			return err
		}
		nb, err := t.appendOvfl(tail)
		if err != nil {
			t.pool.Put(tail)
			return err
		}
		pg := page(nb.Page)
		if big {
			pg.addRef(ref)
		} else {
			if !pg.fitsRegular(len(key), len(data)) {
				t.pool.Put(nb)
				t.pool.Put(tail)
				return fmt.Errorf("%w: pair does not fit on empty page", ErrCorrupt)
			}
			pg.addRegular(key, data)
		}
		insPos = s.tailPos + 1
		nb.Dirty.Store(true)
		t.pool.Put(nb)
		t.pool.Put(tail)
	}

	// Settle the primary page's tag filter: the replaced copy's tag
	// leaves, the new copy's tag lands at its insertion position. One
	// extra pin of the primary — a pool hit, the scan just touched it.
	pb, err := t.getBucketPageOp(led, bucket)
	if err != nil {
		return err
	}
	fpg := page(pb.Page)
	if s.found {
		fpg.filterRemove(h, s.foundPos)
	}
	fpg.filterAdd(h, insPos)
	pb.Dirty.Store(true)
	t.pool.Put(pb)

	t.nkeysA.Add(1)
	t.xorPairSum(pairHash(key, data))
	t.dirtyHdr.Store(true)
	return nil
}

// insert places a pair into bucket without checking for duplicates
// (h is key's hash; the split paths have already computed it).
func (t *Table) insert(bucket, h uint32, key, data []byte) error {
	if t.isBig(len(key), len(data)) {
		ref, err := t.putBigPair(key, data)
		if err != nil {
			return err
		}
		return t.insertRef(bucket, h, ref)
	}

	pos, insPos := -1, -1
	err := t.walkChain(bucket, func(buf *buffer.Buf) (bool, error) {
		pos++
		pg := page(buf.Page)
		if pg.fitsRegular(len(key), len(data)) {
			pg.addRegular(key, data)
			buf.Dirty.Store(true)
			insPos = pos
			return true, nil
		}
		if pg.ovflLink() == 0 {
			// End of chain: grow it.
			nb, err := t.appendOvfl(buf)
			if err != nil {
				return false, err
			}
			npg := page(nb.Page)
			if !npg.fitsRegular(len(key), len(data)) {
				t.pool.Put(nb)
				return false, fmt.Errorf("%w: pair does not fit on empty page", ErrCorrupt)
			}
			npg.addRegular(key, data)
			nb.Dirty.Store(true)
			t.pool.Put(nb)
			insPos = pos + 1
			return true, nil
		}
		return false, nil
	})
	if err != nil {
		return err
	}
	if insPos < 0 {
		return fmt.Errorf("%w: insert walked off chain", ErrCorrupt)
	}
	return t.filterAddPrimary(bucket, h, insPos)
}

// insertRef places a big-pair reference into bucket's chain (h is the
// hash of the big pair's key).
func (t *Table) insertRef(bucket, h uint32, ref oaddr) error {
	pos, insPos := -1, -1
	err := t.walkChain(bucket, func(buf *buffer.Buf) (bool, error) {
		pos++
		pg := page(buf.Page)
		if pg.fitsRef() {
			pg.addRef(ref)
			buf.Dirty.Store(true)
			insPos = pos
			return true, nil
		}
		if pg.ovflLink() == 0 {
			nb, err := t.appendOvfl(buf)
			if err != nil {
				return false, err
			}
			page(nb.Page).addRef(ref)
			nb.Dirty.Store(true)
			t.pool.Put(nb)
			insPos = pos + 1
			return true, nil
		}
		return false, nil
	})
	if err != nil {
		return err
	}
	if insPos < 0 {
		return fmt.Errorf("%w: ref insert walked off chain", ErrCorrupt)
	}
	return t.filterAddPrimary(bucket, h, insPos)
}

// filterAddPrimary tags a freshly inserted key on bucket's primary page.
func (t *Table) filterAddPrimary(bucket, h uint32, insPos int) error {
	pb, err := t.getBucketPage(bucket)
	if err != nil {
		return err
	}
	page(pb.Page).filterAdd(h, insPos)
	pb.Dirty.Store(true)
	t.pool.Put(pb)
	return nil
}

// appendOvfl allocates an overflow page, links it after tail (which must
// be the last page of a chain) and returns it pinned and initialized.
// It records that an uncontrolled split is due.
func (t *Table) appendOvfl(tail *buffer.Buf) (*buffer.Buf, error) {
	o, err := t.allocOvfl()
	if err != nil {
		return nil, err
	}
	nb, err := t.pool.Get(ovflBufAddr(o), tail, true)
	if err != nil {
		return nil, err
	}
	// The page may hold stale contents (reclaimed page): reformat.
	clear(nb.Page)
	initPage(page(nb.Page))
	nb.Dirty.Store(true)
	if err := page(tail.Page).setOvflLink(o); err != nil {
		t.pool.Put(nb)
		return nil, err
	}
	tail.Dirty.Store(true)
	// Record the growth in the primary page's chain counter (tail.Owner
	// names the owning bucket even when tail is itself an overflow page).
	pb, err := t.getBucketPage(tail.Owner())
	if err != nil {
		t.pool.Put(nb)
		return nil, err
	}
	page(pb.Page).fltChainInc()
	pb.Dirty.Store(true)
	t.pool.Put(pb)
	t.addedOvfl.Store(true)
	return nb, nil
}

// Delete removes key, returning ErrNotFound if absent.
func (t *Table) Delete(key []byte) error { return t.DeleteOp(nil, key) }

// DeleteOp is Delete carrying an op ledger (see PutOp). A nil ledger
// is exactly Delete.
func (t *Table) DeleteOp(led *oplog.Ledger, key []byte) error {
	if t.tr == nil {
		return t.deleteInner(key, led)
	}
	var seq0 uint64
	if led != nil {
		seq0 = t.tr.Ring().Next()
	}
	sp := t.tr.OpBegin()
	err := t.deleteInner(key, led)
	t.tr.OpEnd(trace.OpDelete, uint64(len(key)), sp)
	if led != nil {
		led.SetTraceSpan(seq0, t.tr.Ring().Next())
	}
	return err
}

func (t *Table) deleteInner(key []byte, led *oplog.Ledger) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if err := t.checkWritable(); err != nil {
		return err
	}
	if len(key) == 0 {
		return ErrEmptyKey
	}
	t.m.dels.Inc()
	defer t.mutSeq.Add(1)
	if err := t.markDirty(); err != nil {
		return err
	}
	h := t.hash(key)
	var st int64
	if led != nil {
		st = oplog.Clock()
	}
	bucket := t.lockBucket(h, true)
	if led != nil {
		led.Since(oplog.PhaseLatchWait, st)
	}
	removed, err := t.deleteFromBucket(bucket, h, key, led)
	t.stripeFor(bucket).Unlock()
	if err != nil {
		return err
	}
	t.m.setShape(t.nkeysA.Load(), t.geo.Load())
	if !removed {
		return ErrNotFound
	}
	return nil
}

// deleteFromBucket removes key from bucket if present (h is key's
// hash), freeing big-pair chains and unlinking overflow pages that
// become empty. It decrements nkeys when it removes something.
func (t *Table) deleteFromBucket(bucket, h uint32, key []byte, led *oplog.Ledger) (bool, error) {
	removed := false
	pos := 0                 // chain position of the page under examination
	var prevBuf *buffer.Buf // predecessor of the page under examination

	cur, err := t.getBucketPageOp(led, bucket)
	if err != nil {
		return false, err
	}
	defer func() {
		if prevBuf != nil {
			t.pool.Put(prevBuf)
		}
		if cur != nil {
			t.pool.Put(cur)
		}
	}()

	for {
		pg := page(cur.Page)
		idx := -1
		var bigRef oaddr
		var sum uint64
		var inner error
		ferr := pg.forEach(func(i int, e entry) bool {
			switch e.kind {
			case entryRegular:
				if bytes.Equal(e.key, key) {
					idx = i
					sum = pairHash(e.key, e.data)
					return false
				}
			case entryBig:
				eq, err := t.bigKeyEquals(e.ref, key)
				if err != nil {
					inner = err
					return false
				}
				if eq {
					idx = i
					bigRef = e.ref
					return false
				}
			}
			return true
		})
		if ferr != nil {
			return false, ferr
		}
		if inner != nil {
			return false, inner
		}
		if idx >= 0 {
			if bigRef != 0 {
				// Fingerprint the pair before its chain is freed.
				data, err := t.readBigData(bigRef, nil)
				if err != nil {
					return false, err
				}
				sum = pairHash(key, data)
				if err := t.freeBigChain(bigRef); err != nil {
					return false, err
				}
			}
			if err := pg.removeEntry(idx); err != nil {
				return false, err
			}
			cur.Dirty.Store(true)
			removed = true
			t.nkeysA.Add(-1)
			t.xorPairSum(sum)
			t.dirtyHdr.Store(true)
			// Drop the pair's tag from the primary's filter, at the
			// position it was found, before any unlink renumbers chain
			// positions.
			if pos == 0 {
				pg.filterRemove(h, 0)
			} else {
				pb, perr := t.getBucketPage(bucket)
				if perr != nil {
					return false, perr
				}
				page(pb.Page).filterRemove(h, pos)
				pb.Dirty.Store(true)
				t.pool.Put(pb)
			}
			// An overflow page left with no entries is unlinked from the
			// chain and reclaimed.
			if cur.Addr.Ovfl && pg.nentries() == 0 && prevBuf != nil {
				if err := t.unlinkOvfl(prevBuf, cur); err != nil {
					return false, err
				}
				cur = nil
			}
			return true, nil
		}
		next := pg.ovflLink()
		if next == 0 {
			return removed, nil
		}
		nb, err := t.pool.GetOp(led, ovflBufAddr(next), cur, false)
		if err != nil {
			return false, err
		}
		if prevBuf != nil {
			t.pool.Put(prevBuf)
		}
		prevBuf, cur = cur, nb
		pos++
	}
}

// unlinkOvfl removes the empty overflow page held in buf from the chain:
// prev's link is redirected to buf's successor and buf's page is freed.
// buf is consumed (unpinned and dropped).
func (t *Table) unlinkOvfl(prev, buf *buffer.Buf) error {
	pg := page(buf.Page)
	succ := pg.ovflLink()
	ppg := page(prev.Page)
	if succ != 0 {
		if err := ppg.setOvflLink(succ); err != nil {
			return err
		}
	} else {
		ppg.clearOvflLink()
	}
	prev.Dirty.Store(true)
	// Account the unlink on the primary's filter region: the chain is
	// one page shorter, and when the removed page had successors their
	// positions all shifted down — position hints can no longer be
	// trusted (a hint one past a key's real page would make a hinted
	// walk skip it: a forbidden false negative).
	pb, err := t.getBucketPage(prev.Owner())
	if err != nil {
		return err
	}
	fpg := page(pb.Page)
	fpg.fltChainDec()
	if succ != 0 {
		fpg.setFltInexact()
	}
	pb.Dirty.Store(true)
	t.pool.Put(pb)
	o := oaddr(buf.Addr.N)
	t.pool.Put(buf) // unpin before dropping
	t.pool.Drop(prev, buf)
	return t.freeOvfl(o)
}

// expand performs one step of linear-hash growth under the exclusive
// table lock (the batch and recovery paths — no concurrent operations,
// so the split runs synchronously rather than through the cooperative
// job). The shared-phase equivalent is maybeExpand in latch.go; both
// share growGeometry. uncontrolled records which half of the hybrid
// policy triggered the split (chain growth vs. fill factor).
func (t *Table) expand(uncontrolled bool) error {
	if t.hdr.maxBucket == ^uint32(0) {
		return fmt.Errorf("hash: table is at maximum size")
	}
	oldBucket, newBucket := t.growGeometry()
	t.publishGeo()
	if uncontrolled {
		t.m.splitsUncontrolled.Inc()
	} else {
		t.m.splitsControlled.Inc()
	}
	t.tr.Emit(trace.EvSplitBegin, uint64(oldBucket), uint64(newBucket), uint64(t.hdr.maxBucket), boolArg(uncontrolled))
	return t.splitBucket(oldBucket, newBucket)
}

// splitEntry is one entry gathered from a splitting bucket.
type splitEntry struct {
	key  []byte
	data []byte
	ref  oaddr // non-zero: big pair, key/data stay on their chain
}

// splitBucket redistributes oldBucket's entries between oldBucket and
// newBucket by the newly revealed hash bit, reclaiming overflow pages
// that the redistribution empties.
func (t *Table) splitBucket(oldBucket, newBucket uint32) error {
	var t0 time.Time
	if t.tr != nil {
		t0 = time.Now()
	}
	// Gather all entries (copying bytes: the pages are about to be
	// reformatted) and the chain's overflow page addresses.
	var entries []splitEntry
	var chain []oaddr
	err := t.walkChain(oldBucket, func(buf *buffer.Buf) (bool, error) {
		if buf.Addr.Ovfl {
			chain = append(chain, oaddr(buf.Addr.N))
		}
		pg := page(buf.Page)
		return false, pg.forEach(func(i int, e entry) bool {
			switch e.kind {
			case entryRegular:
				entries = append(entries, splitEntry{
					key:  append([]byte(nil), e.key...),
					data: append([]byte(nil), e.data...),
				})
			case entryBig:
				entries = append(entries, splitEntry{ref: e.ref})
			}
			return true
		})
	})
	if err != nil {
		return err
	}

	// Reset the old primary page and reclaim the chain (freeOvfl discards
	// any resident buffer for each freed page).
	ob, err := t.getBucketPage(oldBucket)
	if err != nil {
		return err
	}
	clear(ob.Page)
	initPage(page(ob.Page))
	ob.Dirty.Store(true)
	t.pool.Put(ob)
	for _, o := range chain {
		if err := t.freeOvfl(o); err != nil {
			return err
		}
	}

	// Initialize the new bucket's primary page.
	nb, err := t.getBucketPage(newBucket)
	if err != nil {
		return err
	}
	clear(nb.Page)
	initPage(page(nb.Page))
	nb.Dirty.Store(true)
	t.pool.Put(nb)

	// Redistribute.
	for _, e := range entries {
		key := e.key
		if e.ref != 0 {
			key, err = t.bigKey(e.ref)
			if err != nil {
				return err
			}
		}
		h := t.hash(key)
		dest := t.calcBucket(h)
		if dest != oldBucket && dest != newBucket {
			return fmt.Errorf("%w: split of bucket %d sent key to bucket %d (new %d)", ErrCorrupt, oldBucket, dest, newBucket)
		}
		if e.ref != 0 {
			if err := t.insertRef(dest, h, e.ref); err != nil {
				return err
			}
		} else {
			if err := t.insert(dest, h, key, e.data); err != nil {
				return err
			}
		}
	}
	if t.tr != nil {
		t.tr.EmitDur(trace.EvSplitEnd, time.Since(t0), uint64(oldBucket), uint64(newBucket), uint64(len(entries)), uint64(len(chain)))
	}
	return nil
}

// Len returns the number of keys in the table.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return int(t.nkeysA.Load())
}

// Sync flushes all dirty pages, bitmaps and the header to the store.
// With Options.GroupCommit, concurrent Syncs share one durable flush
// (see syncShared).
func (t *Table) Sync() error {
	if t.tr == nil {
		return t.syncImpl()
	}
	sp := t.tr.OpBegin()
	err := t.syncImpl()
	t.tr.OpEnd(trace.OpSync, 0, sp)
	return err
}

func (t *Table) syncImpl() error {
	if t.groupCommit {
		t.mu.RLock()
		err := t.checkOpen()
		ro := t.readonly
		t.mu.RUnlock()
		if err != nil {
			return err
		}
		if ro {
			return nil
		}
		return t.syncShared()
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.checkOpen(); err != nil {
		return err
	}
	if t.readonly {
		return nil
	}
	return t.syncLocked()
}

// syncShared is the group-commit protocol. Each caller snapshots the
// mutation sequence number it needs covered; if a completed sync already
// covers it the call returns immediately (a "join"), if a sync is in
// flight the caller waits for it, and otherwise the caller elects itself
// leader and runs one syncLocked on behalf of everyone waiting. A
// leader's sync covers every mutation sequenced before it took the table
// lock, so a successful round satisfies all joined followers at the cost
// of a single fsync pair. A follower that waited out a round whose leader
// failed gets that leader's error: the store just refused an fsync, and a
// retry-as-leader from every waiter would turn one failure into a stampede
// of doomed flush attempts against a poisoned store (each burning its own
// FlushAll and fsync). The next explicit Sync call still retries the
// protocol from scratch.
func (t *Table) syncShared() error {
	want := t.mutSeq.Load()
	t.gc.mu.Lock()
	for {
		if t.gc.synced >= want {
			t.gc.mu.Unlock()
			t.m.gcJoins.Inc()
			return nil
		}
		if !t.gc.inflight {
			break
		}
		round := t.gc.round
		t.gc.cond.Wait()
		if t.gc.round != round && t.gc.synced < want && t.gc.lastErr != nil {
			err := t.gc.lastErr
			t.gc.mu.Unlock()
			return err
		}
	}
	t.gc.inflight = true
	t.gc.mu.Unlock()

	t.mu.Lock()
	covered := t.mutSeq.Load()
	err := t.checkOpen()
	if err == nil && !t.readonly {
		err = t.syncLocked()
	}
	t.mu.Unlock()

	t.gc.mu.Lock()
	t.gc.inflight = false
	t.gc.round++
	t.gc.lastErr = err
	if err == nil && covered > t.gc.synced {
		t.gc.synced = covered
	}
	t.gc.cond.Broadcast()
	t.gc.mu.Unlock()
	return err
}

// syncLocked is the ordered two-phase durability protocol. Phase one
// writes every dirty data page and bitmap and syncs, so the pages are on
// stable storage before the header that describes them. Phase two stamps
// the header with the next sync epoch and a clear dirty flag, writes it,
// and syncs again. A power cut before the second sync completes leaves
// the old dirty header (or a torn one, caught by its CRC) in place, and
// recovery falls back to the last-synced state; a crash after it leaves
// a clean header that is trustworthy precisely because everything it
// describes was synced first. On any error the dirty flags stay set, so
// a later sync retries the whole protocol.
func (t *Table) syncLocked() error {
	if t.needsRecovery {
		// An unrecovered dirty file must never receive a clean header:
		// that would bless pages that do not reproduce any synced state.
		return ErrNeedsRecovery
	}
	t0 := time.Now()
	t.tr.Emit(trace.EvSyncBegin, t.hdr.syncEpoch+1, 0, 0, 0)
	// Sorted, coalesced flush: dirty pages reach the store in ascending
	// file order (see buffer.Pool.FlushAll).
	if err := t.pool.FlushAll(); err != nil {
		return err
	}
	if err := t.flushBitmaps(); err != nil {
		return err
	}
	// Fold the shared-phase running counters back into the header image
	// before it is written: between syncs hdr.nkeys/hdr.pairSum hold the
	// last-synced values and the atomics carry the live state. With a WAL
	// attached the applied LSN rides along — after this sync completes,
	// every transaction at or below it is in the pages, so this sync is a
	// checkpoint.
	t.hdr.nkeys = t.nkeysA.Load()
	t.hdr.pairSum = t.pairSumA.Load()
	applied := uint64(0)
	if t.wal != nil {
		applied = t.appliedLSN.Load()
		if t.hdr.walLSN != applied {
			t.hdr.walLSN = applied
			t.dirtyHdr.Store(true)
		}
	}
	if !t.dirtyHdr.Load() && !t.dirtyMarked.Load() {
		// Nothing changed since the last completed sync: the on-disk
		// header is already clean and current.
		err := t.store.Sync()
		if err == nil {
			t.m.syncs.Inc()
			t.m.syncLatency.Observe(time.Since(t0))
			t.tr.EmitDur(trace.EvSyncEnd, time.Since(t0), t.hdr.syncEpoch, 1, 0, 0)
		}
		return err
	}
	if err := t.store.Sync(); err != nil {
		return err
	}
	t.tr.Emit(trace.EvSyncPhase, trace.SyncPhaseData, t.hdr.syncEpoch+1, 0, 0)
	t.hdr.syncEpoch++
	if err := t.writeHeader(false); err != nil {
		t.hdr.syncEpoch-- // keep the epoch in step with what is on disk
		return err
	}
	if err := t.store.Sync(); err != nil {
		return err
	}
	t.tr.Emit(trace.EvSyncPhase, trace.SyncPhaseHeader, t.hdr.syncEpoch, 0, 0)
	t.dirtyHdr.Store(false)
	t.dirtyMarked.Store(false)
	t.m.syncs.Inc()
	t.m.syncLatency.Observe(time.Since(t0))
	t.tr.EmitDur(trace.EvSyncEnd, time.Since(t0), t.hdr.syncEpoch, 0, 0, 0)
	return t.checkpointWAL(applied)
}

// checkpointWAL completes a checkpoint after a successful header sync:
// every commit at or below applied is durably in the pages, so the log
// records are dead weight and the file is truncated back to its header.
// The reset is skipped when the log holds commits beyond applied — that
// happens during recovery, whose internal sync runs before the pending
// transactions are replayed, and after a partially applied commit
// (walErr), where the un-replayed records are precisely what makes the
// next Recover converge. Skipping is always safe: a stale log only costs
// a scan-and-skip at the next open. A reset failure is returned loudly
// but does not undo the sync — the pages and header are already durable.
func (t *Table) checkpointWAL(applied uint64) error {
	if t.wal == nil || t.walDamaged() != nil || t.wal.LastLSN() > applied {
		return nil
	}
	logBytes := t.wal.Size()
	if err := t.wal.Reset(applied, t.hdr.syncEpoch); err != nil {
		return fmt.Errorf("hash: wal checkpoint: %w", err)
	}
	t.m.checkpoints.Inc()
	t.tr.Emit(trace.EvCheckpoint, applied, t.hdr.syncEpoch, uint64(logBytes), 0)
	return nil
}

// walDamaged returns the poison error set after a commit applied only
// partially, or nil.
func (t *Table) walDamaged() error {
	t.walErrMu.Lock()
	defer t.walErrMu.Unlock()
	return t.walErr
}

func (t *Table) setWALDamaged(err error) {
	t.walErrMu.Lock()
	if t.walErr == nil {
		t.walErr = err
	}
	t.walErrMu.Unlock()
}

// Close flushes (unless read-only) and closes the table. Closing a
// memory-resident table discards it.
func (t *Table) Close() error {
	// Stop the telemetry server first, without the table lock: its
	// handlers may be queued on t.mu, and Close does not wait for them
	// (see telemetry.Server.Close). t.tel is set once in Open.
	if t.tel != nil {
		_ = t.tel.Close()
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil
	}
	var err error
	if !t.readonly && !t.needsRecovery {
		err = t.syncLocked()
	}
	if e := t.pool.InvalidateAll(); err == nil {
		err = e
	}
	if t.wal != nil && t.walOwnDev {
		if e := t.wal.Close(); err == nil {
			err = e
		}
	}
	if t.ownStore {
		if e := t.store.Close(); err == nil {
			err = e
		}
	}
	t.closed = true
	return err
}

// Stats returns a copy of the table's structural counters, assembled
// from the metric registry (Expansions is the sum of both split kinds).
func (t *Table) Stats() TableStats {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return TableStats{
		Expansions: t.m.splitsControlled.Load() + t.m.splitsUncontrolled.Load(),
		OvflAllocs: t.m.ovflAllocs.Load(),
		OvflReuses: t.m.ovflReuses.Load(),
		OvflFrees:  t.m.ovflFrees.Load(),
		BigPairs:   t.m.bigPairs.Load(),
		Gets:       t.m.gets.Load(),
		Puts:       t.m.puts.Load(),
		Dels:       t.m.dels.Load(),
	}
}

// Pool exposes the buffer pool for tests and the bench harness.
func (t *Table) Pool() *buffer.Pool { return t.pool }

// Store exposes the backing store for tests and the bench harness.
func (t *Table) Store() pagefile.Store { return t.store }

// Geometry reports the table's current shape.
type Geometry struct {
	Bsize     int
	Ffactor   int
	MaxBucket uint32
	OvflPoint uint32
	HdrPages  uint32
	NKeys     int64
	SyncEpoch uint64
	Dirty     bool // the on-disk header carried the dirty flag at open
	// WalLSN is the checkpoint LSN from the header; AppliedLSN the last
	// commit applied in memory. They differ between a commit and the
	// next checkpoint. Both zero without Options.WAL.
	WalLSN     uint64
	AppliedLSN uint64
	// WalPending counts committed transactions found in the log but not
	// yet replayed into the pages — nonzero only on a table opened with
	// AllowDirty after a crash, before Recover runs.
	WalPending int
	Spares     [maxSplits]uint32
}

// Geometry returns the table's current shape for tools and tests. It
// takes the exclusive lock: the spares array and header geometry mutate
// under ovflMu/splitMu during the shared phase, and the exclusive lock
// is the one order that quiesces both.
func (t *Table) Geometry() Geometry {
	t.mu.Lock()
	defer t.mu.Unlock()
	return Geometry{
		Bsize:      int(t.hdr.bsize),
		Ffactor:    int(t.hdr.ffactor),
		MaxBucket:  t.hdr.maxBucket,
		OvflPoint:  t.hdr.ovflPoint,
		HdrPages:   t.hdr.hdrPages,
		NKeys:      t.nkeysA.Load(),
		SyncEpoch:  t.hdr.syncEpoch,
		Dirty:      t.dirtyMarked.Load(),
		WalLSN:     t.hdr.walLSN,
		AppliedLSN: t.appliedLSN.Load(),
		WalPending: len(t.walPending),
		Spares:     t.hdr.spares,
	}
}

// WALStats returns the attached log's activity counters (appends,
// fsyncs, joins, simulated I/O time). ok is false when the table has no
// write-ahead log.
func (t *Table) WALStats() (st wal.Stats, ok bool) {
	if t.wal == nil {
		return wal.Stats{}, false
	}
	return t.wal.Stats(), true
}

// WALLastLSN reports the last appended commit LSN (0 without a log).
// Together with Geometry().WalLSN — the checkpoint LSN — it measures
// checkpoint lag: the commits a crash would have to replay.
func (t *Table) WALLastLSN() uint64 {
	if t.wal == nil {
		return 0
	}
	return t.wal.LastLSN()
}

package core

import (
	"unixhash/internal/metrics"
)

// Metric names exported by a table into its registry. The hash_ series
// are the table's own structural and operational counters; the buffer_
// and pagefile_ series are registered by the layers below (see
// buffer.Pool.RegisterMetrics and pagefile.Stats.Register).
const (
	MetricGets               = "hash_gets_total"
	MetricGetMisses          = "hash_get_misses_total"
	MetricPuts               = "hash_puts_total"
	MetricDeletes            = "hash_deletes_total"
	MetricSplitsControlled   = "hash_splits_controlled_total"
	MetricSplitsUncontrolled = "hash_splits_uncontrolled_total"
	MetricOvflAllocs         = "hash_ovfl_allocs_total"
	MetricOvflReuses         = "hash_ovfl_reuses_total"
	MetricOvflFrees          = "hash_ovfl_frees_total"
	MetricBigPairs           = "hash_bigpair_writes_total"
	// Chain metrics count traversal past a bucket's primary page only:
	// walks that entered an overflow chain, and the overflow pages they
	// probed (so pages/walks is the mean overflow depth per such walk).
	// The primary-page fast path stays one atomic add per operation.
	MetricChainWalks      = "hash_chain_walks_total"
	MetricChainPages      = "hash_chain_pages_total"
	MetricBatchPuts       = "hash_batch_puts_total"
	MetricBatchPairs      = "hash_batch_pairs_total"
	MetricPresizes        = "hash_presizes_total"
	MetricGroupJoins      = "hash_group_commit_joins_total"
	MetricSyncs           = "hash_syncs_total"
	MetricSyncLatency     = "hash_sync_seconds"
	MetricKeys            = "hash_keys"
	MetricBuckets         = "hash_buckets"
	MetricRecoverAttempts = "hash_recover_attempts_total"
	MetricRecoverSuccess  = "hash_recover_success_total"
	MetricRecoverFailures = "hash_recover_failures_total"
	MetricRecoverRepairs  = "hash_recover_repairs_total"
	// Write-ahead logging (Options.WAL). Commits are completed
	// transactions; replays are committed transactions reapplied by
	// Recover; checkpoints are syncs that truncated the log. The log's
	// own I/O counters are exported by wal.Log.RegisterMetrics (wal_*).
	MetricTxnCommits  = "hash_txn_commits_total"
	MetricWalReplays  = "hash_wal_replayed_txns_total"
	MetricCheckpoints = "hash_checkpoints_total"
	// Read acceleration (see filter.go and buffer.Pool.PrefetchChain).
	// Skips are filter consults that proved a key absent with zero chain
	// reads; hits are consults confirmed by a found key; false positives
	// are consults that passed but found nothing; page skips are overflow
	// pages a walk bypassed on position hints. Prefetches count vectored
	// chain read-ahead batches and the pages they installed.
	MetricFilterHits      = "hash_filter_hits_total"
	MetricFilterSkips     = "hash_filter_skips_total"
	MetricFilterFPs       = "hash_filter_false_positives_total"
	MetricFilterPageSkips = "hash_filter_page_skips_total"
	MetricPrefetches      = "hash_prefetches_total"
	MetricPrefetchedPages = "hash_prefetched_pages_total"
)

// tableMetrics holds the table's resolved metric handles. Handles are
// resolved once at open time so hot-path updates are a single padded
// atomic add — no registry lookups, no locks, no allocation.
type tableMetrics struct {
	reg *metrics.Registry

	gets               *metrics.Counter
	getMisses          *metrics.Counter
	puts               *metrics.Counter
	dels               *metrics.Counter
	splitsControlled   *metrics.Counter
	splitsUncontrolled *metrics.Counter
	ovflAllocs         *metrics.Counter
	ovflReuses         *metrics.Counter
	ovflFrees          *metrics.Counter
	bigPairs           *metrics.Counter
	chainWalks         *metrics.Counter
	chainPages         *metrics.Counter
	batchPuts          *metrics.Counter
	batchPairs         *metrics.Counter
	presizes           *metrics.Counter
	gcJoins            *metrics.Counter
	syncs              *metrics.Counter
	syncLatency        *metrics.Histogram
	keys               *metrics.Gauge
	buckets            *metrics.Gauge
	recoverAttempts    *metrics.Counter
	recoverSuccess     *metrics.Counter
	recoverFailures    *metrics.Counter
	recoverRepairs     *metrics.Counter
	txnCommits         *metrics.Counter
	walReplays         *metrics.Counter
	checkpoints        *metrics.Counter
	filterHits         *metrics.Counter
	filterSkips        *metrics.Counter
	filterFPs          *metrics.Counter
	filterPageSkips    *metrics.Counter
	prefetches         *metrics.Counter
	prefetchedPages    *metrics.Counter
}

// init resolves every handle from reg, creating a private registry when
// the caller supplied none — the counters always work; a registry option
// only decides who else can see them.
func (m *tableMetrics) init(reg *metrics.Registry) {
	if reg == nil {
		reg = metrics.New()
	}
	m.reg = reg
	m.gets = reg.Counter(MetricGets)
	m.getMisses = reg.Counter(MetricGetMisses)
	m.puts = reg.Counter(MetricPuts)
	m.dels = reg.Counter(MetricDeletes)
	m.splitsControlled = reg.Counter(MetricSplitsControlled)
	m.splitsUncontrolled = reg.Counter(MetricSplitsUncontrolled)
	m.ovflAllocs = reg.Counter(MetricOvflAllocs)
	m.ovflReuses = reg.Counter(MetricOvflReuses)
	m.ovflFrees = reg.Counter(MetricOvflFrees)
	m.bigPairs = reg.Counter(MetricBigPairs)
	m.chainWalks = reg.Counter(MetricChainWalks)
	m.chainPages = reg.Counter(MetricChainPages)
	m.batchPuts = reg.Counter(MetricBatchPuts)
	m.batchPairs = reg.Counter(MetricBatchPairs)
	m.presizes = reg.Counter(MetricPresizes)
	m.gcJoins = reg.Counter(MetricGroupJoins)
	m.syncs = reg.Counter(MetricSyncs)
	m.syncLatency = reg.Histogram(MetricSyncLatency)
	m.keys = reg.Gauge(MetricKeys)
	m.buckets = reg.Gauge(MetricBuckets)
	m.recoverAttempts = reg.Counter(MetricRecoverAttempts)
	m.recoverSuccess = reg.Counter(MetricRecoverSuccess)
	m.recoverFailures = reg.Counter(MetricRecoverFailures)
	m.recoverRepairs = reg.Counter(MetricRecoverRepairs)
	m.txnCommits = reg.Counter(MetricTxnCommits)
	m.walReplays = reg.Counter(MetricWalReplays)
	m.checkpoints = reg.Counter(MetricCheckpoints)
	// Curated HELP for the read-acceleration group, so a registry dump
	// (hashdump -metrics, /metrics) labels it next to the other series
	// instead of leaving the names to speak for themselves.
	reg.Help(MetricFilterHits, "Tag-filter consults that matched: the key may be present, the walk proceeds")
	m.filterHits = reg.Counter(MetricFilterHits)
	reg.Help(MetricFilterSkips, "Tag-filter consults that proved the key absent without touching the chain")
	m.filterSkips = reg.Counter(MetricFilterSkips)
	reg.Help(MetricFilterFPs, "Tag-filter matches where the full walk then missed (false positives)")
	m.filterFPs = reg.Counter(MetricFilterFPs)
	reg.Help(MetricFilterPageSkips, "Chain pages bypassed on tag-filter position hints")
	m.filterPageSkips = reg.Counter(MetricFilterPageSkips)
	reg.Help(MetricPrefetches, "Vectored chain read-ahead calls issued on long-chain walks")
	m.prefetches = reg.Counter(MetricPrefetches)
	reg.Help(MetricPrefetchedPages, "Overflow pages loaded ahead of the walk by chain read-ahead")
	m.prefetchedPages = reg.Counter(MetricPrefetchedPages)
}

// setShape publishes the table's key count and bucket count as gauges.
// Called under the exclusive table lock wherever the header changes, so
// the gauges never require taking the table lock at scrape time (a
// GaugeFunc reading the header from inside Snapshot would deadlock
// against a writer snapshotting its own table).
func (m *tableMetrics) setShape(nkeys int64, maxBucket uint32) {
	m.keys.Set(nkeys)
	m.buckets.Set(int64(maxBucket) + 1)
}

// MetricsRegistry exposes the table's metric registry. It is the one the
// caller passed in Options.Metrics, or a private one created at open
// time. The registry remains readable after Close (counters are final).
func (t *Table) MetricsRegistry() *metrics.Registry { return t.m.reg }

// MetricsSnapshot captures every metric the table and its layers
// (buffer pool, page store) export. A closed table returns ErrClosed
// rather than a stale snapshot.
func (t *Table) MetricsSnapshot() (metrics.Snapshot, error) {
	t.mu.RLock()
	closed := t.closed
	t.mu.RUnlock()
	if closed {
		return metrics.Snapshot{}, ErrClosed
	}
	// Taken outside the table lock: the pool's computed gauges take shard
	// locks of their own, and a scrape must not block table writers.
	return t.m.reg.Snapshot(), nil
}

package core

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// TestOvflPointAdvancesEarly drives one split point's page-number space
// to exhaustion so allocation must move to the next split point ahead of
// table growth, the rarely-exercised branch of the buddy-in-waiting
// allocator. bsize 64 caps a split point at (64-4)*8 = 480 pages.
func TestOvflPointAdvancesEarly(t *testing.T) {
	tbl := mustOpen(t, "", &Options{Bsize: 64, Ffactor: 1, Nelem: 1, CacheSize: 4 << 10, ControlledOnly: true})
	defer tbl.Close()

	// Big pairs burn overflow pages without advancing the table (with
	// controlled-only splitting and ffactor 1, splits track nkeys, so
	// use few keys with huge data).
	startPoint := tbl.Geometry().OvflPoint
	for i := 0; i < 12; i++ {
		key := []byte(fmt.Sprintf("big%02d", i))
		data := bytes.Repeat([]byte{byte(i)}, 60*64) // ~60 overflow pages each
		if err := tbl.Put(key, data); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	if got := tbl.Geometry().OvflPoint; got <= startPoint+1 {
		t.Fatalf("ovflPoint = %d (start %d): early advancement never happened", got, startPoint)
	}
	// Everything must still read back.
	for i := 0; i < 12; i++ {
		key := []byte(fmt.Sprintf("big%02d", i))
		got, err := tbl.Get(key)
		if err != nil || len(got) != 60*64 || got[0] != byte(i) {
			t.Fatalf("Get %d after advancement: %d bytes, %v", i, len(got), err)
		}
	}
}

// TestOvflPointAdvancePersists makes sure the early-advanced allocator
// state survives a close/reopen (spares carried forward in the header).
func TestOvflPointAdvancePersists(t *testing.T) {
	path := filepath.Join(t.TempDir(), "adv.db")
	tbl := mustOpen(t, path, &Options{Bsize: 64, Ffactor: 1, Nelem: 1, ControlledOnly: true})
	for i := 0; i < 12; i++ {
		if err := tbl.Put([]byte(fmt.Sprintf("big%02d", i)), bytes.Repeat([]byte{byte(i)}, 60*64)); err != nil {
			t.Fatal(err)
		}
	}
	g1 := tbl.Geometry()
	if err := tbl.Close(); err != nil {
		t.Fatal(err)
	}

	tbl = mustOpen(t, path, nil)
	defer tbl.Close()
	g2 := tbl.Geometry()
	if g1.OvflPoint != g2.OvflPoint || g1.Spares != g2.Spares {
		t.Fatalf("allocator state changed across reopen:\n %+v\n %+v", g1, g2)
	}
	for i := 0; i < 12; i++ {
		got, err := tbl.Get([]byte(fmt.Sprintf("big%02d", i)))
		if err != nil || len(got) != 60*64 {
			t.Fatalf("Get %d after reopen: %d bytes, %v", i, len(got), err)
		}
	}
	// And the table must still be writable with a consistent allocator.
	if err := tbl.Put([]byte("more"), bytes.Repeat([]byte{9}, 30*64)); err != nil {
		t.Fatalf("Put after reopen: %v", err)
	}
}

// TestOverflowReclaimAndReuse checks that pages freed by deleting big
// pairs are reused by later allocations instead of growing the file.
func TestOverflowReclaimAndReuse(t *testing.T) {
	tbl := mustOpen(t, "", &Options{Bsize: 256, Nelem: 64})
	defer tbl.Close()

	put := func(k string, n int) {
		t.Helper()
		if err := tbl.Put([]byte(k), bytes.Repeat([]byte("x"), n)); err != nil {
			t.Fatal(err)
		}
	}
	put("a", 10000)
	put("b", 10000)
	allocsBefore := tbl.Stats().OvflAllocs
	if err := tbl.Delete([]byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Delete([]byte("b")); err != nil {
		t.Fatal(err)
	}
	frees := tbl.Stats().OvflFrees
	if frees == 0 {
		t.Fatal("deleting big pairs freed nothing")
	}
	// Rewriting the same data must reuse the freed pages, not allocate.
	put("c", 10000)
	put("d", 10000)
	st := tbl.Stats()
	if st.OvflAllocs != allocsBefore {
		t.Fatalf("fresh allocations grew %d -> %d despite %d freed pages (reuses: %d)",
			allocsBefore, st.OvflAllocs, frees, st.OvflReuses)
	}
	if st.OvflReuses == 0 {
		t.Fatal("no reuse recorded")
	}
}

// TestDeleteShrinksChains verifies that emptying overflow pages unlinks
// and reclaims them (the delete path's unlink logic).
func TestDeleteShrinksChains(t *testing.T) {
	tbl := mustOpen(t, "", &Options{Bsize: 64, Ffactor: 64, Nelem: 1, ControlledOnly: true})
	defer tbl.Close()
	// Everything lands in one bucket (one bucket, no splits): the chain
	// grows long.
	const n = 100
	for i := 0; i < n; i++ {
		if err := tbl.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	before, err := tbl.OverflowPages()
	if err != nil {
		t.Fatal(err)
	}
	if before == 0 {
		t.Fatal("no overflow chain was built")
	}
	for i := 0; i < n; i++ {
		if err := tbl.Delete(key(i)); err != nil {
			t.Fatal(err)
		}
	}
	after, err := tbl.OverflowPages()
	if err != nil {
		t.Fatal(err)
	}
	if after >= before {
		t.Fatalf("overflow pages %d -> %d after deleting everything", before, after)
	}
}

// TestIteratorDuringMutation: mutating while scanning must never corrupt
// the table or crash; the scan may skip or repeat (documented), but keys
// it returns must have existed at some point and the table must stay
// model-consistent afterwards.
func TestIteratorDuringMutation(t *testing.T) {
	tbl := mustOpen(t, "", &Options{Bsize: 128, Ffactor: 4})
	defer tbl.Close()
	const n = 500
	for i := 0; i < n; i++ {
		if err := tbl.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	it := tbl.Iter()
	seen := 0
	for it.Next() {
		seen++
		if seen%10 == 0 {
			// Delete some and insert some mid-scan.
			_ = tbl.Delete(key(seen))
			if err := tbl.Put([]byte(fmt.Sprintf("new-%d", seen)), []byte("x")); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := it.Err(); err != nil {
		t.Fatalf("iterator errored during mutation: %v", err)
	}
	// Table integrity after the storm: every key Get-able, count sane.
	count := 0
	it2 := tbl.Iter()
	for it2.Next() {
		k := append([]byte(nil), it2.Key()...)
		if _, err := tbl.Get(k); err != nil {
			t.Fatalf("key %q from scan not gettable: %v", k, err)
		}
		count++
	}
	if err := it2.Err(); err != nil {
		t.Fatal(err)
	}
	if count != tbl.Len() {
		t.Fatalf("clean rescan saw %d keys, Len says %d", count, tbl.Len())
	}
}

// TestConcurrentAccess hammers one table from many goroutines; run with
// -race this verifies the mutex discipline.
func TestConcurrentAccess(t *testing.T) {
	tbl := mustOpen(t, "", &Options{Bsize: 256, Ffactor: 8})
	defer tbl.Close()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				k := []byte(fmt.Sprintf("w%d-k%d", w, i))
				if err := tbl.Put(k, val(i)); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
				if _, err := tbl.Get(k); err != nil {
					t.Errorf("Get: %v", err)
					return
				}
				if i%3 == 0 {
					if err := tbl.Delete(k); err != nil {
						t.Errorf("Delete: %v", err)
						return
					}
				}
			}
		}(w)
	}
	// A concurrent scanner.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for r := 0; r < 5; r++ {
			it := tbl.Iter()
			for it.Next() {
			}
			if err := it.Err(); err != nil {
				t.Errorf("concurrent scan: %v", err)
			}
		}
	}()
	wg.Wait()
	want := 8 * 200 // each worker keeps 2/3 of 300
	if tbl.Len() != want {
		t.Fatalf("Len = %d, want %d", tbl.Len(), want)
	}
}

// TestDumpSmoke exercises the dump path on a table with splits, chains,
// big pairs and reclaimed pages.
func TestDumpSmoke(t *testing.T) {
	tbl := mustOpen(t, "", &Options{Bsize: 128, Ffactor: 8})
	defer tbl.Close()
	for i := 0; i < 300; i++ {
		if err := tbl.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.Put([]byte("big"), bytes.Repeat([]byte("B"), 5000)); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := tbl.Dump(&sb, true); err != nil {
		t.Fatalf("Dump: %v", err)
	}
	out := sb.String()
	for _, want := range []string{"hash table:", "spares", "bucket 0", "BIG"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump output missing %q:\n%s", want, out[:min(len(out), 600)])
		}
	}
}

// TestKeysWithNULsAndBinaryData: keys and data are arbitrary byte
// strings; nothing may assume text.
func TestKeysWithNULsAndBinaryData(t *testing.T) {
	tbl := mustOpen(t, "", nil)
	defer tbl.Close()
	keys := [][]byte{
		{0},
		{0, 0, 0},
		{0xFF, 0x00, 0xFF},
		bytes.Repeat([]byte{0}, 100),
		[]byte("ends with nul\x00"),
	}
	for i, k := range keys {
		if err := tbl.Put(k, []byte{byte(i)}); err != nil {
			t.Fatalf("Put %x: %v", k, err)
		}
	}
	if tbl.Len() != len(keys) {
		t.Fatalf("Len = %d, want %d (binary keys conflated?)", tbl.Len(), len(keys))
	}
	for i, k := range keys {
		got, err := tbl.Get(k)
		if err != nil || len(got) != 1 || got[0] != byte(i) {
			t.Fatalf("Get %x = %x, %v", k, got, err)
		}
	}
}

// TestZeroLengthData: empty data values are legal and distinct from
// missing keys.
func TestZeroLengthData(t *testing.T) {
	tbl := mustOpen(t, "", nil)
	defer tbl.Close()
	if err := tbl.Put([]byte("empty"), nil); err != nil {
		t.Fatal(err)
	}
	got, err := tbl.Get([]byte("empty"))
	if err != nil {
		t.Fatalf("Get = %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("Get = %x, want empty", got)
	}
	ok, err := tbl.Has([]byte("empty"))
	if err != nil || !ok {
		t.Fatalf("Has = %v, %v", ok, err)
	}
}

// TestMaxKeySizes: keys at and around the big-pair boundary.
func TestAroundBigBoundary(t *testing.T) {
	tbl := mustOpen(t, "", &Options{Bsize: 256})
	defer tbl.Close()
	// The boundary: 2*slot + klen + dlen > bsize - hdr - reserve.
	for total := 240; total <= 252; total++ {
		k := bytes.Repeat([]byte("k"), 10)
		d := bytes.Repeat([]byte("d"), total-10)
		kk := append([]byte(fmt.Sprintf("%03d", total)), k...)
		if err := tbl.Put(kk, d); err != nil {
			t.Fatalf("total %d: %v", total, err)
		}
		got, err := tbl.Get(kk)
		if err != nil || !bytes.Equal(got, d) {
			t.Fatalf("total %d roundtrip: %v", total, err)
		}
	}
}

func TestErrorsAreDistinguishable(t *testing.T) {
	tbl := mustOpen(t, "", nil)
	defer tbl.Close()
	tbl.Put([]byte("k"), []byte("v"))
	if err := tbl.PutNew([]byte("k"), nil); !errors.Is(err, ErrKeyExists) {
		t.Fatalf("PutNew dup = %v", err)
	}
	if _, err := tbl.Get([]byte("zz")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get missing = %v", err)
	}
	if err := tbl.Delete([]byte("zz")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Delete missing = %v", err)
	}
}

package core

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// FuzzOpenArbitraryFile: Open must never panic on arbitrary file
// contents — corrupt files fail with an error, cleanly.
func FuzzOpenArbitraryFile(f *testing.F) {
	// Seeds: empty, tiny, a valid header prefix, a valid header with a
	// trashed tail, and random-looking garbage.
	f.Add([]byte{})
	f.Add([]byte("not a database"))
	var h header
	h.lorder = lorderLittle
	h.bsize = 256
	h.bshift = 8
	h.ffactor = 8
	h.highMask = 1
	h.hdrPages = 2
	valid := make([]byte, 512)
	h.encode(valid)
	f.Add(valid)
	trashed := append([]byte(nil), valid...)
	trashed[40] ^= 0xFF
	f.Add(trashed)
	f.Add(bytes.Repeat([]byte{0xA5}, 600))

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.db")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		tbl, err := Open(path, nil)
		if err != nil {
			return // rejected cleanly: fine
		}
		// If it opened, basic operations must not panic either.
		_, _ = tbl.Get([]byte("k"))
		_ = tbl.Put([]byte("k"), []byte("v"))
		it := tbl.Iter()
		for i := 0; it.Next() && i < 100; i++ {
		}
		_ = tbl.Close()
	})
}

// FuzzPutGetDelete: arbitrary keys and values must round-trip.
func FuzzPutGetDelete(f *testing.F) {
	f.Add([]byte("key"), []byte("value"), []byte("other"))
	f.Add([]byte{0}, []byte{}, []byte{0xFF})
	f.Add(bytes.Repeat([]byte("k"), 1000), bytes.Repeat([]byte("v"), 5000), []byte("x"))

	f.Fuzz(func(t *testing.T, k1, v1, k2 []byte) {
		tbl, err := Open("", &Options{Bsize: 128, Ffactor: 4})
		if err != nil {
			t.Fatal(err)
		}
		defer tbl.Close()

		err = tbl.Put(k1, v1)
		if len(k1) == 0 {
			if !errors.Is(err, ErrEmptyKey) {
				t.Fatalf("empty key Put = %v", err)
			}
			return
		}
		if err != nil {
			t.Fatalf("Put: %v", err)
		}
		got, err := tbl.Get(k1)
		if err != nil || !bytes.Equal(got, v1) {
			t.Fatalf("Get = %d bytes, %v; want %d", len(got), err, len(v1))
		}
		if len(k2) > 0 && !bytes.Equal(k1, k2) {
			if _, err := tbl.Get(k2); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Get of absent key = %v", err)
			}
		}
		if err := tbl.Delete(k1); err != nil {
			t.Fatalf("Delete: %v", err)
		}
		if tbl.Len() != 0 {
			t.Fatalf("Len = %d after delete", tbl.Len())
		}
		if err := tbl.Check(); err != nil {
			t.Fatalf("Check: %v", err)
		}
	})
}

package core

import (
	"bytes"
	"errors"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"unixhash/internal/pagefile"
)

// gateStore wraps a store so a test can arm its Sync: once armed, the
// first Sync blocks until released and then fails, and every later Sync
// fails immediately. Attempts are counted so a test can detect waiters
// dog-piling onto the failing device.
type gateStore struct {
	pagefile.Store
	armed   atomic.Bool
	entered chan struct{} // closed when the first armed Sync is in flight
	release chan struct{}
	once    sync.Once
	syncs   atomic.Int64
	err     error
}

func (g *gateStore) Sync() error {
	if !g.armed.Load() {
		return g.Store.Sync()
	}
	g.syncs.Add(1)
	g.once.Do(func() {
		close(g.entered)
		<-g.release
	})
	return g.err
}

// TestGroupCommitFollowerSeesLeaderError pins the satellite-2 fix: when
// a group-commit leader's store fsync fails, every follower that waited
// on that round must observe the failure — not return nil (their
// mutations were never made durable), and not retry as a fresh leader
// against a store that just refused an fsync.
func TestGroupCommitFollowerSeesLeaderError(t *testing.T) {
	errBoom := errors.New("injected fsync failure")
	gs := &gateStore{
		Store:   pagefile.NewMem(128, pagefile.CostModel{}),
		entered: make(chan struct{}),
		release: make(chan struct{}),
		err:     errBoom,
	}
	tbl := mustOpen(t, "", &Options{Store: gs, GroupCommit: true, Bsize: 128, Ffactor: 4})

	// A pending mutation, written while the gate is still open (the
	// durable dirty-mark syncs once on the way in).
	if err := tbl.Put(key(0), val(0)); err != nil {
		t.Fatalf("put: %v", err)
	}
	gs.armed.Store(true)

	const followers = 8
	errs := make(chan error, followers+1)
	go func() { errs <- tbl.Sync() }() // leader
	<-gs.entered
	for i := 0; i < followers; i++ {
		go func() { errs <- tbl.Sync() }()
	}
	// Let the followers enqueue on the in-flight round, then fail it.
	time.Sleep(50 * time.Millisecond)
	close(gs.release)

	for i := 0; i < followers+1; i++ {
		if err := <-errs; !errors.Is(err, errBoom) {
			t.Fatalf("waiter %d: err = %v, want %v", i, err, errBoom)
		}
	}
	if n := gs.syncs.Load(); n > 3 {
		t.Fatalf("%d store fsync attempts for one failed round; followers retried as leaders", n)
	}

	// The failure is not sticky: disarm and the next sync succeeds.
	gs.armed.Store(false)
	if err := tbl.Sync(); err != nil {
		t.Fatalf("sync after disarm: %v", err)
	}
	if err := tbl.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// TestSharedAccountingUnderConcurrentSyncs is the satellite-1 regression
// net for the suspected lost-update window between syncLocked's fold of
// the running counters (nkeysA, pairSumA) into the header and a
// concurrent writer's updates. The fold runs under the exclusive table
// lock, so no window should exist; this test drives writers, deleters
// and group-commit syncers together under -race and then verifies the
// final count, the structural Check, and a clean reopen (whose header
// decode would catch a fingerprint that drifted from the pages).
func TestSharedAccountingUnderConcurrentSyncs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "acct.db")
	tbl := mustOpen(t, path, &Options{GroupCommit: true, Bsize: 128, Ffactor: 4, CacheSize: 1 << 16})

	const (
		workers = 8
		perW    = 150
	)
	var writerWG, syncerWG sync.WaitGroup
	errc := make(chan error, workers+4)
	stop := make(chan struct{})

	// Syncers race the writers the whole time.
	for s := 0; s < 4; s++ {
		syncerWG.Add(1)
		go func() {
			defer syncerWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := tbl.Sync(); err != nil {
					errc <- err
					return
				}
			}
		}()
	}
	expected := int64(0)
	var expMu sync.Mutex
	for w := 0; w < workers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			count := int64(0)
			for i := 0; i < perW; i++ {
				n := w*10000 + i
				v := val(n)
				if i%11 == 3 {
					v = bytes.Repeat([]byte{byte('a' + w)}, 300) // big pair
				}
				if err := tbl.Put(key(n), v); err != nil {
					errc <- err
					return
				}
				count++
				if err := tbl.Put(key(n), val2(n)); err != nil { // replace: count unchanged
					errc <- err
					return
				}
				if i%3 == 0 {
					if err := tbl.Delete(key(n)); err != nil {
						errc <- err
						return
					}
					count--
				}
			}
			expMu.Lock()
			expected += count
			expMu.Unlock()
		}(w)
	}

	writerWG.Wait()
	close(stop)
	syncerWG.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}

	if got := int64(tbl.Len()); got != expected {
		t.Fatalf("Len = %d, want %d", got, expected)
	}
	if err := tbl.Sync(); err != nil {
		t.Fatalf("final sync: %v", err)
	}
	if err := tbl.Check(); err != nil {
		t.Fatalf("check: %v", err)
	}
	g := tbl.Geometry()
	if g.NKeys != expected {
		t.Fatalf("header nkeys %d, want %d", g.NKeys, expected)
	}
	if err := tbl.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Reopen and re-verify: the stored fingerprint and count must match
	// the pages exactly (Verify dry-runs the recovery gate on a dirty
	// file and Check walks the structure on a clean one).
	re := mustOpen(t, path, nil)
	defer re.Close()
	if got := int64(re.Len()); got != expected {
		t.Fatalf("reopened Len = %d, want %d", got, expected)
	}
	if err := re.Verify(); err != nil {
		t.Fatalf("verify after reopen: %v", err)
	}
}

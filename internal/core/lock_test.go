//go:build unix

package core

import (
	"errors"
	"path/filepath"
	"testing"

	"unixhash/internal/pagefile"
)

func TestLockExcludesSecondWriter(t *testing.T) {
	path := filepath.Join(t.TempDir(), "locked.db")
	w1 := mustOpen(t, path, &Options{Lock: true})
	defer w1.Close()
	if err := w1.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := w1.Sync(); err != nil {
		t.Fatal(err)
	}

	// A second locking writer must be refused while the first holds the
	// exclusive lock. (flock is per-open-file-description, so two opens
	// in one process conflict just as two processes would.)
	if _, err := Open(path, &Options{Lock: true}); !errors.Is(err, pagefile.ErrLocked) {
		t.Fatalf("second writer = %v, want ErrLocked", err)
	}
	// A locking reader is also refused while a writer holds the lock.
	if _, err := Open(path, &Options{Lock: true, ReadOnly: true}); !errors.Is(err, pagefile.ErrLocked) {
		t.Fatalf("reader during write = %v, want ErrLocked", err)
	}
	// Opening without Lock bypasses the discipline (as with flock).
	free, err := Open(path, &Options{ReadOnly: true})
	if err != nil {
		t.Fatalf("non-locking reader: %v", err)
	}
	free.Close()
}

func TestSharedReaders(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shared.db")
	w := mustOpen(t, path, nil)
	if err := w.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Many shared readers coexist.
	r1 := mustOpen(t, path, &Options{Lock: true, ReadOnly: true})
	defer r1.Close()
	r2 := mustOpen(t, path, &Options{Lock: true, ReadOnly: true})
	defer r2.Close()
	if _, err := r1.Get([]byte("k")); err != nil {
		t.Fatal(err)
	}
	if _, err := r2.Get([]byte("k")); err != nil {
		t.Fatal(err)
	}
	// But a locking writer is refused while readers hold shared locks.
	if _, err := Open(path, &Options{Lock: true}); !errors.Is(err, pagefile.ErrLocked) {
		t.Fatalf("writer during reads = %v, want ErrLocked", err)
	}
}

func TestLockReleasedOnClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rel.db")
	w := mustOpen(t, path, &Options{Lock: true})
	if err := w.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, err := Open(path, &Options{Lock: true})
	if err != nil {
		t.Fatalf("reopen after close: %v", err)
	}
	w2.Close()
}

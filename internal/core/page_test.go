package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func newTestPage(size int) page {
	p := page(make([]byte, size))
	initPage(p)
	return p
}

func TestPageInit(t *testing.T) {
	p := newTestPage(256)
	if p.nslots() != 0 || p.low() != 256 {
		t.Fatalf("fresh page: nslots=%d low=%d", p.nslots(), p.low())
	}
	if p.freeSpace() != 256-slotBaseFor(256) {
		t.Fatalf("freeSpace = %d", p.freeSpace())
	}
	if p.nentries() != 0 || p.ovflLink() != 0 {
		t.Fatal("fresh page not empty")
	}
}

func TestPageAddAndIterate(t *testing.T) {
	p := newTestPage(256)
	pairs := [][2]string{{"alpha", "1"}, {"beta", "22"}, {"gamma", "333"}}
	for _, kv := range pairs {
		if !p.fitsRegular(len(kv[0]), len(kv[1])) {
			t.Fatalf("pair %q does not fit", kv[0])
		}
		p.addRegular([]byte(kv[0]), []byte(kv[1]))
	}
	if p.nentries() != len(pairs) {
		t.Fatalf("nentries = %d, want %d", p.nentries(), len(pairs))
	}
	var got [][2]string
	err := p.forEach(func(i int, e entry) bool {
		if e.kind != entryRegular {
			t.Fatalf("entry %d kind = %v", i, e.kind)
		}
		got = append(got, [2]string{string(e.key), string(e.data)})
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, kv := range pairs {
		if got[i] != kv {
			t.Fatalf("entry %d = %v, want %v", i, got[i], kv)
		}
	}
}

func TestPageOvflLink(t *testing.T) {
	p := newTestPage(128)
	p.addRegular([]byte("k"), []byte("v"))
	if err := p.setOvflLink(makeOaddr(2, 7)); err != nil {
		t.Fatal(err)
	}
	if got := p.ovflLink(); got != makeOaddr(2, 7) {
		t.Fatalf("ovflLink = %v", got)
	}
	// Adding a pair keeps the link last.
	p.addRegular([]byte("k2"), []byte("v2"))
	if got := p.ovflLink(); got != makeOaddr(2, 7) {
		t.Fatalf("ovflLink after add = %v", got)
	}
	n := 0
	if err := p.forEach(func(i int, e entry) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("forEach visited %d entries, want 2", n)
	}
	// Rewriting the link keeps one link.
	if err := p.setOvflLink(makeOaddr(3, 1)); err != nil {
		t.Fatal(err)
	}
	if got := p.ovflLink(); got != makeOaddr(3, 1) {
		t.Fatalf("rewritten ovflLink = %v", got)
	}
	p.clearOvflLink()
	if p.ovflLink() != 0 {
		t.Fatal("clearOvflLink left a link")
	}
	if p.nentries() != 2 {
		t.Fatalf("nentries after clear = %d", p.nentries())
	}
}

func TestPageBigRef(t *testing.T) {
	p := newTestPage(128)
	p.addRegular([]byte("a"), []byte("1"))
	p.addRef(makeOaddr(1, 3))
	p.addRegular([]byte("b"), []byte("2"))
	if p.nentries() != 3 {
		t.Fatalf("nentries = %d", p.nentries())
	}
	var kinds []entryKind
	if err := p.forEach(func(i int, e entry) bool {
		kinds = append(kinds, e.kind)
		if e.kind == entryBig && e.ref != makeOaddr(1, 3) {
			t.Fatalf("big ref = %v", e.ref)
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	want := []entryKind{entryRegular, entryBig, entryRegular}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("kinds = %v, want %v", kinds, want)
		}
	}
}

func TestPageRemoveEntry(t *testing.T) {
	p := newTestPage(256)
	keys := []string{"one", "two", "three", "four", "five"}
	for i, k := range keys {
		p.addRegular([]byte(k), []byte(fmt.Sprintf("v%d", i)))
	}
	// Remove the middle entry, then the first, then the last.
	if err := p.removeEntry(2); err != nil {
		t.Fatal(err)
	}
	if err := p.removeEntry(0); err != nil {
		t.Fatal(err)
	}
	if err := p.removeEntry(2); err != nil {
		t.Fatal(err)
	}
	var got []string
	if err := p.forEach(func(i int, e entry) bool {
		got = append(got, string(e.key)+"="+string(e.data))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	want := []string{"two=v1", "four=v3"}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("remaining = %v, want %v", got, want)
	}
	// Free space must be fully recovered after removing the rest.
	if err := p.removeEntry(1); err != nil {
		t.Fatal(err)
	}
	if err := p.removeEntry(0); err != nil {
		t.Fatal(err)
	}
	if p.nentries() != 0 || p.freeSpace() != 256-slotBaseFor(256) {
		t.Fatalf("after removing all: nentries=%d free=%d", p.nentries(), p.freeSpace())
	}
}

func TestPageRemoveWithMixedEntries(t *testing.T) {
	p := newTestPage(256)
	p.addRegular([]byte("k0"), []byte("v0"))
	p.addRef(makeOaddr(1, 1))
	p.addRegular([]byte("k1"), []byte("v1"))
	if err := p.setOvflLink(makeOaddr(2, 2)); err != nil {
		t.Fatal(err)
	}
	p.addRegular([]byte("k2"), []byte("longer-value-2"))

	// Remove the big ref; the regular pairs and link survive.
	if err := p.removeEntry(1); err != nil {
		t.Fatal(err)
	}
	var got []string
	if err := p.forEach(func(i int, e entry) bool {
		got = append(got, string(e.key))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != "k0" || got[1] != "k1" || got[2] != "k2" {
		t.Fatalf("keys after ref removal = %v", got)
	}
	if p.ovflLink() != makeOaddr(2, 2) {
		t.Fatalf("link lost: %v", p.ovflLink())
	}
	// Remove a regular pair before the others.
	if err := p.removeEntry(0); err != nil {
		t.Fatal(err)
	}
	got = got[:0]
	if err := p.forEach(func(i int, e entry) bool {
		got = append(got, string(e.key)+"="+string(e.data))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "k1=v1" || got[1] != "k2=longer-value-2" {
		t.Fatalf("keys after pair removal = %v", got)
	}
}

func TestPageFillToCapacity(t *testing.T) {
	p := newTestPage(128)
	n := 0
	for {
		k := []byte(fmt.Sprintf("k%02d", n))
		v := []byte(fmt.Sprintf("v%02d", n))
		if !p.fitsRegular(len(k), len(v)) {
			break
		}
		p.addRegular(k, v)
		n++
	}
	if n == 0 {
		t.Fatal("nothing fit on a 128-byte page")
	}
	// The link reserve guarantees a link still fits on a "full" page.
	if err := p.setOvflLink(makeOaddr(1, 1)); err != nil {
		t.Fatalf("setOvflLink on full page: %v", err)
	}
	if p.nentries() != n {
		t.Fatalf("nentries = %d, want %d", p.nentries(), n)
	}
}

// TestPageRandomOps drives the page codec against a slice model.
func TestPageRandomOps(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for round := 0; round < 200; round++ {
		size := []int{64, 128, 256, 1024}[rng.Intn(4)]
		p := newTestPage(size)
		type kv struct{ k, v []byte }
		var model []kv
		for op := 0; op < 300; op++ {
			if rng.Intn(3) != 0 || len(model) == 0 { // add
				k := randBytes(rng, 1+rng.Intn(10))
				v := randBytes(rng, rng.Intn(20))
				if p.fitsRegular(len(k), len(v)) {
					p.addRegular(k, v)
					model = append(model, kv{k, v})
				}
			} else { // remove
				i := rng.Intn(len(model))
				if err := p.removeEntry(i); err != nil {
					t.Fatalf("round %d: removeEntry(%d): %v", round, i, err)
				}
				model = append(model[:i], model[i+1:]...)
			}
			// Verify.
			var got []kv
			if err := p.forEach(func(i int, e entry) bool {
				got = append(got, kv{append([]byte(nil), e.key...), append([]byte(nil), e.data...)})
				return true
			}); err != nil {
				t.Fatalf("round %d: forEach: %v", round, err)
			}
			if len(got) != len(model) {
				t.Fatalf("round %d op %d: %d entries, want %d", round, op, len(got), len(model))
			}
			for i := range model {
				if !bytes.Equal(got[i].k, model[i].k) || !bytes.Equal(got[i].v, model[i].v) {
					t.Fatalf("round %d op %d entry %d: got %q=%q want %q=%q",
						round, op, i, got[i].k, got[i].v, model[i].k, model[i].v)
				}
			}
		}
	}
}

func randBytes(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(rng.Intn(256))
	}
	return b
}

// Property: a pair added to an empty page always reads back.
func TestPageRoundtripProperty(t *testing.T) {
	f := func(k, v []byte) bool {
		if len(k) == 0 || len(k)+len(v) > 1024-slotBaseFor(1024)-2*slotSize-linkReserve {
			return true // out of scope for a single 1K page
		}
		p := newTestPage(1024)
		if !p.fitsRegular(len(k), len(v)) {
			return false
		}
		p.addRegular(k, v)
		e, err := p.entryAt(0)
		if err != nil {
			return false
		}
		return bytes.Equal(e.key, k) && bytes.Equal(e.data, v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

package core

import (
	"bytes"
	"path/filepath"
	"testing"
)

func TestCompactShrinksAChurnedTable(t *testing.T) {
	src := mustOpen(t, "", &Options{Bsize: 256, Ffactor: 8})
	defer src.Close()

	// Grow big, then delete most of it: the bucket count stays at its
	// high-water mark (the paper's footnote 6).
	const n = 8000
	for i := 0; i < n; i++ {
		if err := src.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	src.Put([]byte("big"), bytes.Repeat([]byte("B"), 20000))
	for i := 0; i < n; i++ {
		if i%10 != 0 {
			if err := src.Delete(key(i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	gSrc := src.Geometry()

	dst := mustOpen(t, filepath.Join(t.TempDir(), "compacted.db"),
		&Options{Bsize: 256, Ffactor: 8, Nelem: src.Len()})
	defer dst.Close()
	if err := src.Compact(dst); err != nil {
		t.Fatal(err)
	}

	gDst := dst.Geometry()
	if gDst.MaxBucket >= gSrc.MaxBucket/2 {
		t.Fatalf("compaction kept %d of %d buckets", gDst.MaxBucket+1, gSrc.MaxBucket+1)
	}
	// Content preserved exactly.
	if dst.Len() != src.Len() {
		t.Fatalf("Len: dst %d, src %d", dst.Len(), src.Len())
	}
	it := src.Iter()
	for it.Next() {
		got, err := dst.Get(it.Key())
		if err != nil || !bytes.Equal(got, it.Value()) {
			t.Fatalf("dst lost %q: %v", it.Key(), err)
		}
	}
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
	if err := dst.Check(); err != nil {
		t.Fatalf("compacted table fails check: %v", err)
	}
}

func TestCompactRejectsNonEmptyDestination(t *testing.T) {
	src := mustOpen(t, "", nil)
	defer src.Close()
	src.Put([]byte("k"), []byte("v"))
	dst := mustOpen(t, "", nil)
	defer dst.Close()
	dst.Put([]byte("existing"), nil)
	if err := src.Compact(dst); err == nil {
		t.Fatal("Compact into a non-empty table succeeded")
	}
}

func TestCompactFromReadOnly(t *testing.T) {
	path := filepath.Join(t.TempDir(), "src.db")
	w := mustOpen(t, path, nil)
	for i := 0; i < 200; i++ {
		w.Put(key(i), val(i))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	src := mustOpen(t, path, &Options{ReadOnly: true})
	defer src.Close()
	dst := mustOpen(t, "", &Options{Nelem: 200})
	defer dst.Close()
	if err := src.Compact(dst); err != nil {
		t.Fatal(err)
	}
	if dst.Len() != 200 {
		t.Fatalf("dst.Len = %d", dst.Len())
	}
}

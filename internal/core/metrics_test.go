package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"unixhash/internal/metrics"
)

// TestMetricsCounting checks that the headline counters track a known
// workload exactly: gets, misses, puts, deletes, syncs, and the shape
// gauges.
func TestMetricsCounting(t *testing.T) {
	reg := metrics.New()
	tbl := mustOpen(t, "", &Options{Bsize: 512, Ffactor: 8, Metrics: reg})
	defer tbl.Close()

	const n = 500
	for i := 0; i < n; i++ {
		if err := tbl.Put([]byte(fmt.Sprintf("key-%04d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		if _, err := tbl.Get([]byte(fmt.Sprintf("key-%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		if _, err := tbl.Get([]byte(fmt.Sprintf("missing-%d", i))); !errors.Is(err, ErrNotFound) {
			t.Fatalf("get missing: %v", err)
		}
	}
	for i := 0; i < 50; i++ {
		if err := tbl.Delete([]byte(fmt.Sprintf("key-%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.Sync(); err != nil {
		t.Fatal(err)
	}

	s, err := tbl.MetricsSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int64{
		MetricGets:      n + 10,
		MetricGetMisses: 10,
		MetricPuts:      n,
		MetricDeletes:   50,
		MetricSyncs:     1,
	}
	for name, v := range want {
		if got := s.Counter(name); got != v {
			t.Errorf("%s = %d, want %d", name, got, v)
		}
	}
	if got := s.Gauge(MetricKeys); got != n-50 {
		t.Errorf("%s = %d, want %d", MetricKeys, got, n-50)
	}
	if sc := s.Counter(MetricSplitsControlled); sc == 0 {
		t.Errorf("%s = 0, want splits from growing %d keys in one bucket", MetricSplitsControlled, n)
	}
	if got := s.Gauge(MetricBuckets); got < 2 {
		t.Errorf("%s = %d, want >= 2 after splits", MetricBuckets, got)
	}
	h, ok := s.Histograms[MetricSyncLatency]
	if !ok || h.Count != 1 {
		t.Errorf("%s count = %+v, want 1 observation", MetricSyncLatency, h)
	}
	if s.Counter("buffer_hits_total") == 0 {
		t.Error("buffer_hits_total = 0, want hot-page hits")
	}
}

// TestMetricsConcurrentMonotonic hammers one table with concurrent
// readers plus one writer while a scraper takes repeated snapshots:
// every counter must be non-decreasing between successive snapshots,
// and derived identities (gets >= misses, chain pages >= chain walks)
// must hold in every snapshot. Run with -race.
func TestMetricsConcurrentMonotonic(t *testing.T) {
	reg := metrics.New()
	tbl := mustOpen(t, "", &Options{
		Bsize:     512,
		Ffactor:   8,
		CacheSize: 512 * 16, // small pool: evictions under read load
		Metrics:   reg,
	})
	defer tbl.Close()

	const seed = 800
	for i := 0; i < seed; i++ {
		if err := tbl.Put([]byte(fmt.Sprintf("seed-%04d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			buf := make([]byte, 0, 64)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := []byte(fmt.Sprintf("seed-%04d", (i*7+r)%seed))
				var err error
				if buf, err = tbl.GetBuf(k, buf); err != nil && !errors.Is(err, ErrNotFound) {
					t.Errorf("reader: %v", err)
					return
				}
			}
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			k := []byte(fmt.Sprintf("churn-%04d", i%200))
			var err error
			if i%3 == 2 {
				err = tbl.Delete(k)
				if errors.Is(err, ErrNotFound) {
					err = nil
				}
			} else {
				err = tbl.Put(k, []byte(fmt.Sprintf("value-%d", i)))
			}
			if err != nil {
				t.Errorf("writer: %v", err)
				return
			}
		}
	}()

	prev, err := tbl.MetricsSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		s, err := tbl.MetricsSnapshot()
		if err != nil {
			t.Fatal(err)
		}
		for name, v := range prev.Counters {
			if s.Counters[name] < v {
				t.Errorf("snapshot %d: counter %s went backwards: %d -> %d",
					i, name, v, s.Counters[name])
			}
		}
		if s.Counter(MetricGetMisses) > s.Counter(MetricGets) {
			t.Errorf("snapshot %d: misses %d > gets %d",
				i, s.Counter(MetricGetMisses), s.Counter(MetricGets))
		}
		if s.Counter(MetricChainPages) < s.Counter(MetricChainWalks) {
			t.Errorf("snapshot %d: chain pages %d < walks %d (a counted walk probes >= 1 overflow page)",
				i, s.Counter(MetricChainPages), s.Counter(MetricChainWalks))
		}
		prev = s
	}
	close(stop)
	wg.Wait()
}

// TestMetricsClosed: a closed table reports ErrClosed from
// MetricsSnapshot rather than serving a stale snapshot; the registry
// handle itself stays readable for callers that shared it.
func TestMetricsClosed(t *testing.T) {
	reg := metrics.New()
	tbl := mustOpen(t, "", &Options{Metrics: reg})
	if err := tbl.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.MetricsSnapshot(); !errors.Is(err, ErrClosed) {
		t.Fatalf("MetricsSnapshot on closed table = %v, want ErrClosed", err)
	}
	// The shared registry still works: final counter values remain visible.
	if got := reg.Snapshot().Counter(MetricPuts); got != 1 {
		t.Fatalf("registry after close: %s = %d, want 1", MetricPuts, got)
	}
}

// TestMetricsSharedRegistry: two tables exporting into one registry
// aggregate into one series (the expvar semantic the registry promises).
func TestMetricsSharedRegistry(t *testing.T) {
	reg := metrics.New()
	a := mustOpen(t, "", &Options{Metrics: reg})
	defer a.Close()
	b := mustOpen(t, "", &Options{Metrics: reg})
	defer b.Close()

	if err := a.Put([]byte("ka"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := b.Put([]byte("kb"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if got := reg.Snapshot().Counter(MetricPuts); got != 2 {
		t.Fatalf("shared %s = %d, want 2 (one per table)", MetricPuts, got)
	}
}

// TestGetBufZeroAlloc: the instrumented read hot path must not allocate
// — the counters are pre-resolved padded atomics, so observability is
// free on Get.
func TestGetBufZeroAlloc(t *testing.T) {
	tbl := mustOpen(t, "", &Options{Bsize: 1024, Ffactor: 16})
	defer tbl.Close()
	const n = 200
	for i := 0; i < n; i++ {
		if err := tbl.Put([]byte(fmt.Sprintf("key-%04d", i)), []byte("value")); err != nil {
			t.Fatal(err)
		}
	}
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key-%04d", i))
	}
	buf := make([]byte, 0, 64)
	i := 0
	allocs := testing.AllocsPerRun(500, func() {
		var err error
		buf, err = tbl.GetBuf(keys[i%n], buf)
		if err != nil {
			t.Fatal(err)
		}
		i++
	})
	if allocs != 0 {
		t.Fatalf("GetBuf allocated %.1f times per op, want 0", allocs)
	}
}

// TestMetricsChainCounters: chain metrics count only traversal past the
// primary page. A table prevented from splitting grows real overflow
// chains; reads through them must register walks and pages, with
// pages >= walks (each counted walk probes at least one overflow page).
func TestMetricsChainCounters(t *testing.T) {
	reg := metrics.New()
	tbl := mustOpen(t, "", &Options{Bsize: 256, Ffactor: 5000, Metrics: reg})
	defer tbl.Close()

	const n = 300
	for i := 0; i < n; i++ {
		if err := tbl.Put([]byte(fmt.Sprintf("chain-key-%05d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	base, err := tbl.MetricsSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if base.Counter(MetricOvflAllocs) == 0 {
		t.Fatal("no overflow pages allocated; the workload did not build chains")
	}
	for i := 0; i < n; i++ {
		if _, err := tbl.Get([]byte(fmt.Sprintf("chain-key-%05d", i))); err != nil {
			t.Fatal(err)
		}
	}
	s, err := tbl.MetricsSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	walks := s.Counter(MetricChainWalks) - base.Counter(MetricChainWalks)
	pages := s.Counter(MetricChainPages) - base.Counter(MetricChainPages)
	if walks == 0 {
		t.Error("chain walks = 0, want walks into overflow during reads")
	}
	if pages < walks {
		t.Errorf("chain pages %d < walks %d", pages, walks)
	}
}

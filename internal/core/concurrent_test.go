package core

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
)

// TestConcurrentReadersOneWriter is the tentpole stress test: many
// reader goroutines (point lookups and full scans) run against one
// writer that replaces, deletes and inserts keys — forcing bucket
// splits, overflow allocation and buffer-pool eviction while reads are
// in flight. Run with -race; every read must see either a consistent
// committed value or ErrNotFound for churned keys.
func TestConcurrentReadersOneWriter(t *testing.T) {
	const (
		stable = 1500 // keys written once, then immutable
		churn  = 100  // keys the writer mutates throughout
	)
	tbl := mustOpen(t, "", &Options{
		Bsize:     512,
		Ffactor:   8,
		CacheSize: 512 * 16, // small pool: reads fault and evict constantly
	})
	defer tbl.Close()

	stableVal := func(i int) []byte {
		if i%37 == 0 {
			// A big pair: streams through the scratch-page chain reader.
			return bytes.Repeat([]byte{byte(i), byte(i >> 8)}, 800+i%50)
		}
		return []byte(fmt.Sprintf("stable-value-%06d", i))
	}
	churnKey := func(i int) []byte { return []byte(fmt.Sprintf("churn-%04d", i)) }

	for i := 0; i < stable; i++ {
		if err := tbl.Put(key(i), stableVal(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < churn; i++ {
		if err := tbl.Put(churnKey(i), []byte("churn-v0")); err != nil {
			t.Fatal(err)
		}
	}

	readers := runtime.GOMAXPROCS(0) * 2
	if readers < 4 {
		readers = 4
	}
	var wg sync.WaitGroup
	errs := make(chan error, readers+3)

	// Point-lookup readers: stable keys must match exactly; churned keys
	// may be absent or hold any well-formed churn value.
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(r)))
			dst := make([]byte, 0, 2048)
			for i := 0; i < 4000; i++ {
				if rng.Intn(4) > 0 {
					k := rng.Intn(stable)
					var err error
					dst, err = tbl.GetBuf(key(k), dst)
					if err != nil {
						errs <- fmt.Errorf("reader %d: stable key %d: %w", r, k, err)
						return
					}
					if !bytes.Equal(dst, stableVal(k)) {
						errs <- fmt.Errorf("reader %d: stable key %d: got %d bytes, want %d",
							r, k, len(dst), len(stableVal(k)))
						return
					}
				} else {
					k := rng.Intn(churn)
					v, err := tbl.Get(churnKey(k))
					switch {
					case errors.Is(err, ErrNotFound):
					case err != nil:
						errs <- fmt.Errorf("reader %d: churn key %d: %w", r, k, err)
						return
					case !bytes.HasPrefix(v, []byte("churn-v")):
						errs <- fmt.Errorf("reader %d: churn key %d: torn value %q", r, k, v)
						return
					}
				}
			}
		}(r)
	}

	// Scanners: full sequential passes run in parallel with everything.
	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for pass := 0; pass < 3; pass++ {
				n := 0
				it := tbl.Iter()
				for it.Next() {
					n++
				}
				if err := it.Err(); err != nil {
					errs <- fmt.Errorf("scanner %d: %w", s, err)
					return
				}
				// Concurrent mutation may skip or repeat churned pairs, but
				// the stable majority must always be seen.
				if n < stable {
					errs <- fmt.Errorf("scanner %d: saw %d pairs, want >= %d", s, n, stable)
					return
				}
			}
		}(s)
	}

	// The writer: replaces churn values, deletes and reinserts, and adds
	// fresh keys so the table keeps splitting under the readers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(99))
		next := stable
		for i := 0; i < 3000; i++ {
			switch rng.Intn(4) {
			case 0: // replace
				k := rng.Intn(churn)
				if err := tbl.Put(churnKey(k), []byte(fmt.Sprintf("churn-v%d", i))); err != nil {
					errs <- fmt.Errorf("writer put: %w", err)
					return
				}
			case 1: // delete (absent is fine: it may already be gone)
				k := rng.Intn(churn)
				if err := tbl.Delete(churnKey(k)); err != nil && !errors.Is(err, ErrNotFound) {
					errs <- fmt.Errorf("writer delete: %w", err)
					return
				}
			default: // grow: forces splits while readers hold the read path
				if err := tbl.Put(key(next), stableVal(next)); err != nil {
					errs <- fmt.Errorf("writer grow: %w", err)
					return
				}
				next++
			}
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		return
	}
	if err := tbl.Check(); err != nil {
		t.Fatalf("table corrupt after concurrent run: %v", err)
	}
}

// TestConcurrentGetBufReuse verifies GetBuf's append-into-dst contract
// under concurrency: each goroutine reuses one buffer across thousands
// of lookups and must never observe another goroutine's data.
func TestConcurrentGetBufReuse(t *testing.T) {
	tbl := mustOpen(t, "", nil)
	defer tbl.Close()
	const n = 500
	for i := 0; i < n; i++ {
		if err := tbl.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(r)))
			var dst []byte
			for i := 0; i < 5000; i++ {
				k := rng.Intn(n)
				var err error
				dst, err = tbl.GetBuf(key(k), dst)
				if err != nil || !bytes.Equal(dst, val(k)) {
					errs <- fmt.Errorf("reader %d: key %d: %q, %v", r, k, dst, err)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestGetBufAppendSemantics pins down the non-concurrent contract: the
// result reuses dst's storage when capacity suffices and dst may be nil.
func TestGetBufAppendSemantics(t *testing.T) {
	tbl := mustOpen(t, "", nil)
	defer tbl.Close()
	if err := tbl.Put([]byte("k"), []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := tbl.GetBuf([]byte("k"), nil)
	if err != nil || string(got) != "hello" {
		t.Fatalf("GetBuf(nil dst) = %q, %v", got, err)
	}
	dst := make([]byte, 0, 64)
	got2, err := tbl.GetBuf([]byte("k"), dst)
	if err != nil || string(got2) != "hello" {
		t.Fatalf("GetBuf = %q, %v", got2, err)
	}
	if &got2[0] != &dst[:1][0] {
		t.Fatal("GetBuf did not reuse dst's storage")
	}
	if _, err := tbl.GetBuf([]byte("missing"), dst); !errors.Is(err, ErrNotFound) {
		t.Fatalf("GetBuf missing = %v, want ErrNotFound", err)
	}
}

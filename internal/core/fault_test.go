package core

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"unixhash/internal/pagefile"
)

func TestOpenCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "garbage.db")
	if err := os.WriteFile(path, make([]byte, 512), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, nil); err == nil {
		t.Fatal("opened an all-zero file as a hash table")
	}
}

func TestOpenTruncatedFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trunc.db")
	tbl := mustOpen(t, path, nil)
	for i := 0; i < 100; i++ {
		if err := tbl.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.Close(); err != nil {
		t.Fatal(err)
	}
	// Truncate to a fraction of the header.
	if err := os.Truncate(path, 40); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, nil); err == nil {
		t.Fatal("opened a truncated file")
	}
}

func TestOpenNotAFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "short.db")
	if err := os.WriteFile(path, []byte("not a hash db"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, nil); err == nil {
		t.Fatal("opened a 13-byte text file")
	}
}

func TestWriteFaultSurfaces(t *testing.T) {
	inner := pagefile.NewMem(256, pagefile.CostModel{})
	fs := pagefile.NewFault(inner)
	tbl, err := Open("", &Options{Store: fs, Bsize: 256, CacheSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer tbl.Close()

	fs.Inject(pagefile.Fault{Op: pagefile.OpWrite, After: 5, Err: errors.New("disk full"), Page: pagefile.AnyPage})

	// With a minimal cache, inserts force evictions and hence writes;
	// the injected error must surface rather than be swallowed.
	var sawErr bool
	for i := 0; i < 5000; i++ {
		if err := tbl.Put(key(i), val(i)); err != nil {
			sawErr = true
			break
		}
	}
	if !sawErr {
		if err := tbl.Sync(); err == nil {
			t.Fatal("write fault never surfaced through Put or Sync")
		}
	}
}

func TestReadFaultSurfaces(t *testing.T) {
	inner := pagefile.NewMem(256, pagefile.CostModel{})
	{
		tbl, err := Open("", &Options{Store: inner, Bsize: 256})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2000; i++ {
			if err := tbl.Put(key(i), val(i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := tbl.Close(); err != nil {
			t.Fatal(err)
		}
	}

	fs := pagefile.NewFault(inner)
	fs.Inject(pagefile.Fault{Op: pagefile.OpRead, After: 10, Err: errors.New("I/O error"), Page: pagefile.AnyPage})
	tbl, err := Open("", &Options{Store: fs, Bsize: 256, CacheSize: 1})
	if err != nil {
		// The fault may hit during open; that is a valid surface too.
		return
	}
	defer tbl.Close()
	var sawErr bool
	for i := 0; i < 2000; i++ {
		if _, err := tbl.Get(key(i)); err != nil && !errors.Is(err, ErrNotFound) {
			sawErr = true
			break
		}
	}
	if !sawErr {
		t.Fatal("read fault never surfaced through Get")
	}
}

func TestCallerOwnedStoreStaysOpen(t *testing.T) {
	store := pagefile.NewMem(256, pagefile.CostModel{})
	tbl, err := Open("", &Options{Store: store, Bsize: 256})
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Close(); err != nil {
		t.Fatal(err)
	}
	// The store is caller-owned: reopening over it must find the data.
	tbl2, err := Open("", &Options{Store: store, Bsize: 256})
	if err != nil {
		t.Fatalf("reopen over caller store: %v", err)
	}
	defer tbl2.Close()
	got, err := tbl2.Get([]byte("k"))
	if err != nil || string(got) != "v" {
		t.Fatalf("Get after reopen = %q, %v", got, err)
	}
}

func TestStorePageSizeMismatch(t *testing.T) {
	store := pagefile.NewMem(256, pagefile.CostModel{})
	tbl, err := Open("", &Options{Store: store, Bsize: 256})
	if err != nil {
		t.Fatal(err)
	}
	tbl.Put([]byte("k"), []byte("v"))
	tbl.Close()

	// A store whose page size disagrees with the header must be refused.
	// Simulate by wrapping the same pages in a differently-sized reader:
	// here we simply corrupt the recorded bsize.
	buf := make([]byte, 256)
	if err := store.ReadPage(0, buf); err != nil {
		t.Fatal(err)
	}
	le.PutUint32(buf[12:], 512) // bsize field
	le.PutUint32(buf[16:], 9)   // matching bshift
	if err := store.WritePage(0, buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Open("", &Options{Store: store}); err == nil {
		t.Fatal("opened table whose header bsize disagrees with the store")
	}
}

package core

import (
	"fmt"

	"unixhash/internal/buffer"
	"unixhash/internal/trace"
)

// Overflow page allocation — the buddy-in-waiting mechanism.
//
// Overflow pages are allocated between generations of primary pages: all
// pages at split point s live physically after the primary page of bucket
// 2^s - 1. New pages are only ever allocated at the current split point
// (hdr.ovflPoint); when a bucket later splits, pages whose contents were
// redistributed are reclaimed by clearing their bit, and reuse scans the
// bitmaps before growing the file. Each split point's use bitmap lives on
// that split point's first overflow page (addresses kept in hdr.bitmaps),
// exactly as the paper prescribes: "Overflow page use information is
// recorded in bitmaps which are themselves stored on overflow pages."

// bitmapHdrSize reserves the magic word at the front of a bitmap page.
const bitmapHdrSize = 4

// maxPagesPerSplit bounds page numbers at one split point: the 11-bit
// page-number field, or the bitmap capacity of one page, whichever is
// smaller.
func (t *Table) maxPagesPerSplit() uint32 {
	byBits := (t.hdr.bsize - bitmapHdrSize) * 8
	if byBits > maxSplitPage {
		return maxSplitPage
	}
	return byBits
}

// bitmapFor returns the in-core bitmap for split point s, loading it from
// the store if needed. Returns nil if split point s has no bitmap page.
func (t *Table) bitmapFor(s uint32) ([]byte, error) {
	if t.hdr.bitmaps[s] == 0 {
		return nil, nil
	}
	if t.bitmapBuf[s] != nil {
		return t.bitmapBuf[s], nil
	}
	buf := make([]byte, t.hdr.bsize)
	pageno := t.hdr.oaddrToPage(oaddr(t.hdr.bitmaps[s]))
	if err := t.store.ReadPage(pageno, buf); err != nil {
		return nil, fmt.Errorf("hash: load bitmap for split point %d: %w", s, err)
	}
	if !isBitmapPage(buf) {
		return nil, fmt.Errorf("%w: page %d is not a bitmap page", ErrCorrupt, pageno)
	}
	t.bitmapBuf[s] = buf
	// Count reclaimed (clear) bits so allocation can skip empty bitmaps.
	free := 0
	for pn := uint32(1); pn <= t.hdr.allocatedAt(s); pn++ {
		if !bitmapGet(buf, pn-1) {
			free++
		}
	}
	t.freeCount[s] = free
	return buf, nil
}

// createBitmap allocates split point s's first overflow page as its use
// bitmap. The bitmap's own bit (page number 1, bit 0) is set.
func (t *Table) createBitmap(s uint32) error {
	if t.hdr.bitmaps[s] != 0 {
		return fmt.Errorf("%w: duplicate bitmap for split point %d", ErrCorrupt, s)
	}
	if t.hdr.allocatedAt(s) != 0 {
		return fmt.Errorf("%w: split point %d has pages but no bitmap", ErrCorrupt, s)
	}
	buf := make([]byte, t.hdr.bsize)
	le.PutUint16(buf[0:2], bitmapMagic)
	buf[bitmapHdrSize] |= 1 // bit 0: the bitmap page itself
	t.hdr.spares[s]++
	t.hdr.bitmaps[s] = uint16(makeOaddr(s, 1))
	t.bitmapBuf[s] = buf
	t.bitmapDirty[s] = true
	t.dirtyHdr.Store(true)
	return nil
}

func bitmapGet(bm []byte, bit uint32) bool {
	return bm[bitmapHdrSize+bit/8]&(1<<(bit%8)) != 0
}

func bitmapSet(bm []byte, bit uint32) {
	bm[bitmapHdrSize+bit/8] |= 1 << (bit % 8)
}

func bitmapClear(bm []byte, bit uint32) {
	bm[bitmapHdrSize+bit/8] &^= 1 << (bit % 8)
}

// allocOvfl returns the address of a usable overflow page: a reclaimed
// page if one exists, otherwise a fresh page at the current split point
// (advancing the split point early if its page-number space is full).
// The caller is responsible for initializing the page contents.
//
// The allocator state (bitmaps, spares, lastFreed, ovflPoint) is guarded
// by ovflMu, taken here — callers may hold bucket latches but must not
// hold ovflMu. Crucially, allocation only ever mutates spares at or past
// the current split point, so concurrent readers mapping bucket pages
// through frozen lower spares entries (see header.bucketToPage) are
// unaffected.
func (t *Table) allocOvfl() (oaddr, error) {
	t.ovflMu.Lock()
	defer t.ovflMu.Unlock()
	// Fast path: the most recently freed page.
	if lf := oaddr(t.hdr.lastFreed); lf != 0 {
		s, pn := lf.split(), lf.pagenum()
		if s < maxSplits && pn >= 1 && pn <= t.hdr.allocatedAt(s) {
			if bm, err := t.bitmapFor(s); err != nil {
				return 0, err
			} else if bm != nil && !bitmapGet(bm, pn-1) {
				bitmapSet(bm, pn-1)
				t.bitmapDirty[s] = true
				t.freeCount[s]--
				t.hdr.lastFreed = 0
				t.dirtyHdr.Store(true)
				t.m.ovflReuses.Inc()
				t.tr.Emit(trace.EvOvflReuse, uint64(s), uint64(pn), uint64(lf), 0)
				return lf, nil
			}
		}
		t.hdr.lastFreed = 0
	}

	// Scan every split point's bitmap for a reclaimed page, newest first
	// (locality: recent split points are nearest the working set).
	for si := int(t.hdr.ovflPoint); si >= 0; si-- {
		s := uint32(si)
		if t.hdr.bitmaps[s] == 0 {
			continue
		}
		bm, err := t.bitmapFor(s)
		if err != nil {
			return 0, err
		}
		if t.freeCount[s] == 0 {
			continue
		}
		limit := t.hdr.allocatedAt(s)
		for pn := uint32(1); pn <= limit; pn++ {
			if !bitmapGet(bm, pn-1) {
				bitmapSet(bm, pn-1)
				t.bitmapDirty[s] = true
				t.freeCount[s]--
				t.m.ovflReuses.Inc()
				t.tr.Emit(trace.EvOvflReuse, uint64(s), uint64(pn), uint64(makeOaddr(s, pn)), 0)
				return makeOaddr(s, pn), nil
			}
		}
	}

	// Allocate fresh at the current split point, advancing past full
	// split points (carrying the cumulative spares count forward).
	s := t.hdr.ovflPoint
	for {
		if t.hdr.bitmaps[s] == 0 {
			if err := t.createBitmap(s); err != nil {
				return 0, err
			}
		}
		cnt := t.hdr.allocatedAt(s)
		if cnt < t.maxPagesPerSplit() {
			pn := cnt + 1
			t.hdr.spares[s]++
			bm, err := t.bitmapFor(s)
			if err != nil {
				return 0, err
			}
			bitmapSet(bm, pn-1)
			t.bitmapDirty[s] = true
			t.dirtyHdr.Store(true)
			t.m.ovflAllocs.Inc()
			t.tr.Emit(trace.EvOvflAlloc, uint64(s), uint64(pn), uint64(makeOaddr(s, pn)), 0)
			return makeOaddr(s, pn), nil
		}
		if s+1 >= maxSplits {
			return 0, ErrTooManyPages
		}
		s++
		t.hdr.spares[s] = t.hdr.spares[s-1]
		t.hdr.ovflPoint = s
		t.dirtyHdr.Store(true)
	}
}

// freeOvfl reclaims an overflow page: its bit is cleared so a later
// allocation can reuse it, and any resident buffer is discarded.
// Like allocOvfl, it takes ovflMu itself.
func (t *Table) freeOvfl(o oaddr) error {
	t.ovflMu.Lock()
	defer t.ovflMu.Unlock()
	s, pn := o.split(), o.pagenum()
	if s >= maxSplits || pn == 0 || pn > t.hdr.allocatedAt(s) {
		return fmt.Errorf("%w: free of invalid overflow page %v", ErrCorrupt, o)
	}
	if uint16(o) == t.hdr.bitmaps[s] {
		return fmt.Errorf("%w: free of bitmap page %v", ErrCorrupt, o)
	}
	bm, err := t.bitmapFor(s)
	if err != nil {
		return err
	}
	if bm == nil || !bitmapGet(bm, pn-1) {
		return fmt.Errorf("%w: double free of overflow page %v", ErrCorrupt, o)
	}
	bitmapClear(bm, pn-1)
	t.bitmapDirty[s] = true
	t.freeCount[s]++
	t.hdr.lastFreed = uint32(o)
	t.dirtyHdr.Store(true)
	t.m.ovflFrees.Inc()
	t.tr.Emit(trace.EvOvflFree, uint64(s), uint64(pn), uint64(o), 0)
	t.pool.Discard(buffer.Addr{N: uint32(o), Ovfl: true})
	return nil
}

// flushBitmaps writes dirty bitmap pages straight to the store (bitmap
// pages are owned by the table, not the buffer pool).
func (t *Table) flushBitmaps() error {
	for s := range t.bitmapBuf {
		if !t.bitmapDirty[s] || t.bitmapBuf[s] == nil {
			continue
		}
		pageno := t.hdr.oaddrToPage(oaddr(t.hdr.bitmaps[s]))
		if err := t.store.WritePage(pageno, t.bitmapBuf[s]); err != nil {
			return err
		}
		t.bitmapDirty[s] = false
	}
	return nil
}

// OverflowPages reports the number of live (allocated, non-bitmap)
// overflow pages, for tests and the dump tool.
func (t *Table) OverflowPages() (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for si := uint32(0); si < maxSplits; si++ {
		bm, err := t.bitmapFor(si)
		if err != nil {
			return 0, err
		}
		if bm == nil {
			continue
		}
		limit := t.hdr.allocatedAt(si)
		for pn := uint32(1); pn <= limit; pn++ {
			if bitmapGet(bm, pn-1) && uint16(makeOaddr(si, pn)) != t.hdr.bitmaps[si] {
				n++
			}
		}
	}
	return n, nil
}

package core

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"
)

// runModel drives a table and a map through the same operations and
// checks equivalence after every step.
func runModel(t *testing.T, tbl *Table, rng *rand.Rand, nops int) {
	t.Helper()
	model := make(map[string][]byte)
	keyOf := func(i uint16) []byte { return []byte(fmt.Sprintf("k%05d", i%400)) }
	valOf := func(i uint16, big bool) []byte {
		if big {
			return bytes.Repeat([]byte{byte(i)}, 1000+int(i%3000))
		}
		return []byte(fmt.Sprintf("v%d", i))
	}

	for op := 0; op < nops; op++ {
		k := keyOf(uint16(rng.Intn(1 << 16)))
		switch rng.Intn(4) {
		case 0, 1: // put (twice as likely, so the table grows)
			v := valOf(uint16(rng.Intn(1<<16)), rng.Intn(10) == 0)
			if err := tbl.Put(k, v); err != nil {
				t.Fatalf("op %d: Put(%q): %v", op, k, err)
			}
			model[string(k)] = v
		case 2: // delete
			err := tbl.Delete(k)
			_, inModel := model[string(k)]
			if inModel && err != nil {
				t.Fatalf("op %d: Delete(%q) = %v, model has it", op, k, err)
			}
			if !inModel && !errors.Is(err, ErrNotFound) {
				t.Fatalf("op %d: Delete(%q) = %v, want ErrNotFound", op, k, err)
			}
			delete(model, string(k))
		case 3: // get
			got, err := tbl.Get(k)
			want, inModel := model[string(k)]
			if inModel {
				if err != nil || !bytes.Equal(got, want) {
					t.Fatalf("op %d: Get(%q) = %d bytes, %v; want %d bytes", op, k, len(got), err, len(want))
				}
			} else if !errors.Is(err, ErrNotFound) {
				t.Fatalf("op %d: Get(%q) = %v, want ErrNotFound", op, k, err)
			}
		}
		if tbl.Len() != len(model) {
			t.Fatalf("op %d: Len = %d, model has %d", op, tbl.Len(), len(model))
		}
	}

	// Final full equivalence via iterator.
	seen := make(map[string]bool, len(model))
	it := tbl.Iter()
	for it.Next() {
		k := string(it.Key())
		if seen[k] {
			t.Fatalf("iterator repeated key %q", k)
		}
		seen[k] = true
		want, ok := model[k]
		if !ok {
			t.Fatalf("iterator returned key %q not in model", k)
		}
		if !bytes.Equal(it.Value(), want) {
			t.Fatalf("iterator value for %q: %d bytes, want %d", k, len(it.Value()), len(want))
		}
	}
	if err := it.Err(); err != nil {
		t.Fatalf("iterator: %v", err)
	}
	if len(seen) != len(model) {
		t.Fatalf("iterator returned %d keys, model has %d", len(seen), len(model))
	}
}

func TestModelRandomOpsMemory(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			opts := &Options{Bsize: 128, Ffactor: 4, CacheSize: 4 * 1024}
			if seed%2 == 0 {
				opts = &Options{Bsize: 512, Ffactor: 32}
			}
			tbl := mustOpen(t, "", opts)
			defer tbl.Close()
			runModel(t, tbl, rand.New(rand.NewSource(seed)), 3000)
		})
	}
}

func TestModelRandomOpsDisk(t *testing.T) {
	tbl := mustOpen(t, filepath.Join(t.TempDir(), "model.db"),
		&Options{Bsize: 256, Ffactor: 8, CacheSize: 2 * 1024})
	defer tbl.Close()
	runModel(t, tbl, rand.New(rand.NewSource(99)), 4000)
}

func TestModelSurvivesReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "model-reopen.db")
	rng := rand.New(rand.NewSource(7))
	model := make(map[string][]byte)

	for round := 0; round < 4; round++ {
		tbl := mustOpen(t, path, &Options{Bsize: 256, Ffactor: 8})
		for op := 0; op < 800; op++ {
			k := []byte(fmt.Sprintf("key%04d", rng.Intn(600)))
			if rng.Intn(3) == 0 {
				err := tbl.Delete(k)
				if _, ok := model[string(k)]; ok && err != nil {
					t.Fatalf("round %d: Delete: %v", round, err)
				}
				delete(model, string(k))
			} else {
				v := []byte(fmt.Sprintf("val-%d-%d", round, op))
				if err := tbl.Put(k, v); err != nil {
					t.Fatalf("round %d: Put: %v", round, err)
				}
				model[string(k)] = v
			}
		}
		if err := tbl.Close(); err != nil {
			t.Fatalf("round %d: Close: %v", round, err)
		}

		check := mustOpen(t, path, nil)
		if check.Len() != len(model) {
			t.Fatalf("round %d: Len = %d, model %d", round, check.Len(), len(model))
		}
		for k, v := range model {
			got, err := check.Get([]byte(k))
			if err != nil || !bytes.Equal(got, v) {
				t.Fatalf("round %d: Get(%q) = %q, %v; want %q", round, k, got, err, v)
			}
		}
		if err := check.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// Property: any batch of distinct key/value pairs stores and reads back,
// whatever the bytes look like.
func TestQuickPutGet(t *testing.T) {
	f := func(keys [][]byte, vals [][]byte) bool {
		tbl, err := Open("", &Options{Bsize: 128, Ffactor: 4})
		if err != nil {
			return false
		}
		defer tbl.Close()
		model := make(map[string][]byte)
		for i, k := range keys {
			if len(k) == 0 {
				continue
			}
			var v []byte
			if i < len(vals) {
				v = vals[i]
			}
			if err := tbl.Put(k, v); err != nil {
				t.Logf("Put(%x): %v", k, err)
				return false
			}
			model[string(k)] = v
		}
		for k, v := range model {
			got, err := tbl.Get([]byte(k))
			if err != nil {
				t.Logf("Get(%x): %v", k, err)
				return false
			}
			if !bytes.Equal(got, v) {
				t.Logf("Get(%x) = %x, want %x", k, got, v)
				return false
			}
		}
		return tbl.Len() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: keys that differ only in their last byte never collide as
// stored entries (bit-randomizing hash requirement made observable).
func TestQuickSimilarKeys(t *testing.T) {
	f := func(prefix []byte, n uint8) bool {
		tbl, err := Open("", nil)
		if err != nil {
			return false
		}
		defer tbl.Close()
		count := int(n%64) + 2
		for i := 0; i < count; i++ {
			k := append(append([]byte(nil), prefix...), byte(i), 'k')
			if err := tbl.Put(k, []byte{byte(i)}); err != nil {
				return false
			}
		}
		for i := 0; i < count; i++ {
			k := append(append([]byte(nil), prefix...), byte(i), 'k')
			got, err := tbl.Get(k)
			if err != nil || len(got) != 1 || got[0] != byte(i) {
				return false
			}
		}
		return tbl.Len() == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

package core

import (
	"errors"
	"fmt"
	"sort"

	"unixhash/internal/oplog"
	"unixhash/internal/trace"
	"unixhash/internal/wal"
)

// Transactions. Begin returns a Txn that buffers intent records; nothing
// touches the table until Commit. Commit appends every op plus a commit
// frame to the write-ahead log in one contiguous write, fsyncs the log
// (sharing the fsync with concurrent committers), and only then applies
// the ops to the live table under the PR 6 bucket latches — all buckets
// involved are write-latched together, in ascending stripe order, so the
// transaction becomes visible as a unit. Durability comes from the log:
// after Commit returns, a crash at any point is repaired by Recover
// replaying the committed transactions past the last checkpoint. The
// pages themselves reach the store lazily, at the next Sync (now a
// checkpoint) — which is why a durable single Put through a transaction
// costs one sequential log append instead of a full page flush.

var (
	// ErrNoWAL reports a transaction attempt on a table opened without
	// Options.WAL.
	ErrNoWAL = errors.New("hash: transactions require Options.WAL")
	// ErrTxnDone reports reuse of a committed or rolled-back Txn.
	ErrTxnDone = errors.New("hash: transaction already committed or rolled back")
)

// Txn is an atomic batch of puts and deletes. It is not safe for
// concurrent use by multiple goroutines; independent Txns may commit
// concurrently.
type Txn struct {
	t    *Table
	ops  []wal.Op
	led  *oplog.Ledger
	done bool
}

// SetOplog attaches an op ledger to the transaction. Commit charges its
// WAL marshal/fsync, latch wait, and split-assist time to the ledger.
// A nil ledger (the default) keeps the commit path unchanged.
func (x *Txn) SetOplog(led *oplog.Ledger) { x.led = led }

// Begin starts a transaction. The table must have been opened with
// Options.WAL.
func (t *Table) Begin() (*Txn, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if err := t.checkWritable(); err != nil {
		return nil, err
	}
	if t.wal == nil {
		return nil, ErrNoWAL
	}
	if err := t.walDamaged(); err != nil {
		return nil, err
	}
	return &Txn{t: t}, nil
}

// Put buffers an insert-or-replace of key → data. Bytes are copied, so
// the caller may reuse its slices.
func (x *Txn) Put(key, data []byte) error {
	if x.done {
		return ErrTxnDone
	}
	if len(key) == 0 {
		return ErrEmptyKey
	}
	x.ops = append(x.ops, wal.Op{
		Key:  append([]byte(nil), key...),
		Data: append([]byte(nil), data...),
	})
	return nil
}

// Delete buffers a delete of key. Deleting an absent key is not an
// error at commit time — the redo-log semantics are "ensure absent".
func (x *Txn) Delete(key []byte) error {
	if x.done {
		return ErrTxnDone
	}
	if len(key) == 0 {
		return ErrEmptyKey
	}
	x.ops = append(x.ops, wal.Op{Delete: true, Key: append([]byte(nil), key...)})
	return nil
}

// Len returns the number of buffered ops.
func (x *Txn) Len() int { return len(x.ops) }

// Rollback discards the transaction. The table is untouched — no log
// record, no page mutation.
func (x *Txn) Rollback() error {
	if x.done {
		return ErrTxnDone
	}
	x.done = true
	x.ops = nil
	return nil
}

// Commit makes the transaction durable and visible: log append, log
// fsync, then application under the bucket latches. An empty transaction
// commits trivially. On a log error nothing was applied and the table is
// unchanged; if application fails after the log fsync (an I/O error from
// the buffer pool mid-transaction), the commit is durable but only
// partially visible — the table poisons its transaction path and keeps
// the log so that a reopen (or Recover) replays the commit and
// re-converges.
func (x *Txn) Commit() error {
	if x.done {
		return ErrTxnDone
	}
	x.done = true
	if len(x.ops) == 0 {
		return nil
	}
	t := x.t
	if t.tr == nil {
		return t.commitOps(x.ops, x.led)
	}
	var seq0 uint64
	if x.led != nil {
		seq0 = t.tr.Ring().Next()
	}
	sp := t.tr.OpBegin()
	err := t.commitOps(x.ops, x.led)
	t.tr.OpEnd(trace.OpCommit, uint64(len(x.ops)), sp)
	if x.led != nil {
		x.led.SetTraceSpan(seq0, t.tr.Ring().Next())
	}
	return err
}

func (t *Table) commitOps(ops []wal.Op, led *oplog.Ledger) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if err := t.checkWritable(); err != nil {
		return err
	}
	if t.wal == nil {
		return ErrNoWAL
	}
	if err := t.walDamaged(); err != nil {
		return err
	}
	// Bumped even if the attempt fails partway, like putInner: group
	// commit must only ever over-sync.
	defer t.mutSeq.Add(1)

	commitLSN, end, err := t.wal.AppendOp(led, ops)
	if err != nil {
		return fmt.Errorf("hash: txn append: %w", err)
	}
	if err := t.wal.SyncToOp(led, end); err != nil {
		return fmt.Errorf("hash: txn fsync: %w", err)
	}
	// The transaction is durable. Everything from here on is replayable
	// from the log, so a failure below must freeze appliedLSN (via the
	// damage poison) rather than roll anything back.
	if err := t.applyTxn(ops, led); err != nil {
		err = fmt.Errorf("hash: committed transaction %d applied partially (reopen or Recover to converge): %w", commitLSN, err)
		t.setWALDamaged(err)
		return err
	}
	t.appliedLSN.Store(commitLSN)
	t.m.txnCommits.Inc()

	// Split trigger, as after putInner: the latches are released, the
	// split takes its own.
	uncontrolled := t.addedOvfl.Swap(false) && !t.controlledOnly
	if uncontrolled || t.nkeysA.Load() > int64(t.hdr.ffactor)*int64(t.geo.Load()+1) {
		var st int64
		if led != nil {
			st = oplog.Clock()
		}
		if err := t.maybeExpand(uncontrolled); err != nil {
			return err
		}
		if led != nil {
			led.Since(oplog.PhaseSplitAssist, st)
		}
	}
	t.m.setShape(t.nkeysA.Load(), t.geo.Load())
	return nil
}

// txnTarget is one op's routing state during application.
type txnTarget struct {
	hash   uint32
	bucket uint32
	big    bool
	ref    oaddr
}

// applyTxn applies the ops to the live table as one unit. Big-pair
// chains are pre-written outside the latches (private until their ref
// lands, as in putInner); then every involved bucket's stripe is
// write-latched in ascending order, the routes revalidated against the
// split pointer, and the ops applied in order. A route invalidated by a
// concurrent split backs off, helps the split, and retries — the same
// protocol as lockBucket, extended to a set of buckets.
func (t *Table) applyTxn(ops []wal.Op, led *oplog.Ledger) error {
	if err := t.markDirty(); err != nil {
		return err
	}
	targets := make([]txnTarget, len(ops))
	for i := range ops {
		op := &ops[i]
		tg := &targets[i]
		tg.hash = t.hash(op.Key)
		if !op.Delete && t.isBig(len(op.Key), len(op.Data)) {
			tg.big = true
			ref, err := t.putBigPair(op.Key, op.Data)
			if err != nil {
				return err
			}
			tg.ref = ref
		}
	}

	stripes := make([]int, 0, len(ops))
	for {
		// Route every op and collect the distinct stripes, ascending.
		geo := t.geo.Load()
		stripes = stripes[:0]
		for i := range targets {
			targets[i].bucket = routeBucket(targets[i].hash, geo)
			stripes = append(stripes, int(targets[i].bucket&stripeMask))
		}
		sort.Ints(stripes)
		n := 0
		for i, s := range stripes {
			if i == 0 || s != stripes[n-1] {
				stripes[n] = s
				n++
			}
		}
		stripes = stripes[:n]
		var st int64
		if led != nil {
			st = oplog.Clock()
		}
		for _, s := range stripes {
			t.stripes[s].Lock()
		}
		if led != nil {
			led.Since(oplog.PhaseLatchWait, st)
		}

		// Revalidate under the latches: a split may have moved a route or
		// may still be redistributing one of our buckets.
		conflict := int64(-1)
		for i := range targets {
			tg := &targets[i]
			if routeBucket(tg.hash, t.geo.Load()) != tg.bucket || t.splitInvolves(tg.bucket) {
				conflict = int64(tg.bucket)
				break
			}
		}
		if conflict >= 0 {
			for _, s := range stripes {
				t.stripes[s].Unlock()
			}
			if t.splitInvolves(uint32(conflict)) {
				t.helpSplit(uint32(conflict))
			}
			continue
		}

		var err error
		for i := range ops {
			op, tg := &ops[i], &targets[i]
			if op.Delete {
				_, err = t.deleteFromBucket(tg.bucket, tg.hash, op.Key, led)
			} else {
				err = t.putInBucket(tg.bucket, tg.hash, op.Key, op.Data, true, tg.big, tg.ref, led)
			}
			if err != nil {
				break
			}
		}
		for _, s := range stripes {
			t.stripes[s].Unlock()
		}
		return err
	}
}

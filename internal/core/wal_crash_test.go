package core

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"unixhash/internal/pagefile"
	"unixhash/internal/wal"
)

// The WAL crash matrix: power cuts across BOTH journals — the page store
// and the log file — at consistent cut pairs, including torn page writes
// and torn log appends. The recovery contract under a WAL is stronger
// than PR 2's: the table must come back holding the state of the last
// checkpoint plus every acknowledged transaction commit (all of which
// are fsynced in the log), or fail loudly with ErrUnrecoverable. Plain
// (non-transactional) Puts between checkpoints are volatile by contract
// and may be lost.
//
// The workload runs with a cache large enough that no dirty page is
// evicted between checkpoints: pages reach the store only through Sync.
// (With evictions, post-checkpoint pages can reach the store and the
// strict recovery gate then refuses the file — the "fails loudly" leg of
// the contract, exercised separately in the fuzz harness.)

// walPoint is one moment in the workload timeline at which both journals
// were quiescent, with the state recovery must reproduce there.
type walPoint struct {
	sEvents int  // store journal length at this point
	dEvents int  // log journal length at this point
	kind    byte // 'o' open, 'p' plain op, 'c' txn commit, 's' sync/checkpoint
	state   map[string]string
}

const walCrashCache = 1 << 20 // no evictions: pages move only at checkpoints

func walCrashOpts(store pagefile.Store, dev wal.Device) *Options {
	return &Options{Store: store, WALDevice: dev, Bsize: 128, Ffactor: 4, CacheSize: walCrashCache}
}

// walCrashWorkload drives plain ops, transactions (with deletes and big
// pairs) and periodic checkpoints over journaling store+log, recording a
// timeline point after every operation. The table is deliberately
// abandoned un-synced so the tail of the timeline has commits that live
// only in the log.
func walCrashWorkload(t *testing.T, nops, syncEvery int) (*pagefile.CrashStore, *wal.CrashDevice, []walPoint) {
	t.Helper()
	cs := pagefile.NewCrash(pagefile.NewMem(128, pagefile.CostModel{}))
	cd := wal.NewCrashDevice()
	tbl := mustOpen(t, "", walCrashOpts(cs, cd))

	live := map[string]string{}    // what the open table serves
	durable := map[string]string{} // what recovery must reproduce
	var points []walPoint
	record := func(kind byte) {
		points = append(points, walPoint{
			sEvents: cs.Len(),
			dEvents: cd.Len(),
			kind:    kind,
			state:   cloneState(durable),
		})
	}
	record('o')

	bigVal := func(i int) []byte { return bytes.Repeat([]byte{byte('A' + i%26)}, 300) }
	for i := 0; i < nops; i++ {
		switch {
		case i%syncEvery == syncEvery-1:
			if err := tbl.Sync(); err != nil {
				t.Fatalf("sync %d: %v", i, err)
			}
			durable = cloneState(live)
			record('s')
		case i%5 == 2:
			// A transaction: one or two puts (periodically big) plus a
			// delete of an older key.
			x, err := tbl.Begin()
			if err != nil {
				t.Fatalf("begin %d: %v", i, err)
			}
			k, v := key(i), val(i)
			if i%15 == 7 {
				v = bigVal(i)
			}
			if err := x.Put(k, v); err != nil {
				t.Fatalf("txn put %d: %v", i, err)
			}
			ops := [][2]string{{string(k), string(v)}}
			if i%10 == 2 {
				k2, v2 := key(1000+i), val(1000+i)
				if err := x.Put(k2, v2); err != nil {
					t.Fatalf("txn put2 %d: %v", i, err)
				}
				ops = append(ops, [2]string{string(k2), string(v2)})
			}
			dk := string(key(i - 4))
			if err := x.Delete(key(i - 4)); err != nil {
				t.Fatalf("txn del %d: %v", i, err)
			}
			if err := x.Commit(); err != nil {
				t.Fatalf("commit %d: %v", i, err)
			}
			for _, kv := range ops {
				live[kv[0]] = kv[1]
				durable[kv[0]] = kv[1]
			}
			delete(live, dk)
			delete(durable, dk)
			record('c')
		case i%7 == 5:
			k := string(key(i - 3))
			err := tbl.Delete(key(i - 3))
			if _, ok := live[k]; ok {
				if err != nil {
					t.Fatalf("delete %d: %v", i, err)
				}
				delete(live, k)
			} else if !errors.Is(err, ErrNotFound) {
				t.Fatalf("delete absent %d: %v", i, err)
			}
			record('p')
		default:
			if err := tbl.Put(key(i), val(i)); err != nil {
				t.Fatalf("put %d: %v", i, err)
			}
			live[string(key(i))] = string(val(i))
			record('p')
		}
	}
	return cs, cd, points
}

// checkWALCrashState materializes one (store, log) cut pair and verifies
// the recovery contract there. exact marks a cut that lands precisely on
// a recorded quiescent point with nothing torn — recovery MUST succeed
// there; elsewhere a loud failure is within contract.
func checkWALCrashState(t *testing.T, cs *pagefile.CrashStore, cd *wal.CrashDevice, points []walPoint, sCut, dCut, sTorn, dTorn int) string {
	t.Helper()
	ms, err := cs.Materialize(sCut, sTorn)
	if err != nil {
		t.Fatalf("materialize store (%d, %d): %v", sCut, sTorn, err)
	}
	wdev := cd.Materialize(dCut, dTorn)

	floor, exact := 0, false
	for i, p := range points {
		if p.sEvents <= sCut && p.dEvents <= dCut {
			floor = i
			exact = p.sEvents == sCut && p.dEvents == dCut && sTorn == 0 && dTorn == 0
		}
	}

	tbl, rep, err := Recover("", walCrashOpts(ms, wdev))
	if err != nil {
		if exact {
			t.Fatalf("cut (%d,%d) exactly at point %d (%c): recover failed: %v",
				sCut, dCut, floor, points[floor].kind, err)
		}
		return "failed-loud"
	}
	defer tbl.Close()

	got := readAll(t, tbl)
	// The recovered state is the floor's durable state, or the next
	// point's if the in-flight operation's effects fully made it in.
	hi := floor + 1
	if hi >= len(points) {
		hi = len(points) - 1
	}
	if !mapsEqual(got, points[floor].state) && !mapsEqual(got, points[hi].state) {
		t.Fatalf("cut (%d,%d) torn (%d,%d): recovered %d keys matching neither point %d (%d keys) nor %d (%d keys); report %+v",
			sCut, dCut, sTorn, dTorn, len(got), floor, len(points[floor].state), hi, len(points[hi].state), rep)
	}
	if err := tbl.Check(); err != nil {
		t.Fatalf("cut (%d,%d): post-recovery Check: %v", sCut, dCut, err)
	}
	probe := []byte("post-recovery-probe")
	if err := tbl.Put(probe, probe); err != nil {
		t.Fatalf("cut (%d,%d): post-recovery put: %v", sCut, dCut, err)
	}
	if v, err := tbl.Get(probe); err != nil || !bytes.Equal(v, probe) {
		t.Fatalf("cut (%d,%d): post-recovery get: %v", sCut, dCut, err)
	}
	if rep.WALTxns > 0 {
		return "recovered-replayed"
	}
	if rep.WasDirty {
		return "recovered-dirty"
	}
	return "recovered-clean"
}

// TestWALCrashMatrix sweeps consistent cut pairs across the whole
// workload: every quiescent point, every mid-operation journal prefix on
// the side the operation touches first, and torn variants of both the
// final page write and the final log append. Within one operation the
// ordering is deterministic — a commit touches the log before the store
// (append, fsync, then apply under latches), a checkpoint touches the
// store before the log (flush, header, then reset) — so the two sweeps
// per interval cover every real power-cut instant.
func TestWALCrashMatrix(t *testing.T) {
	nops, syncEvery := 100, 18
	if testing.Short() {
		nops, syncEvery = 40, 12
	}
	cs, cd, points := walCrashWorkload(t, nops, syncEvery)
	t.Logf("journals: %d store events, %d log events, %d points", cs.Len(), cd.Len(), len(points))

	outcomes := map[string]int{}
	for i := 1; i < len(points); i++ {
		prev, cur := points[i-1], points[i]
		// Exact boundary: must recover.
		outcomes[checkWALCrashState(t, cs, cd, points, cur.sEvents, cur.dEvents, 0, 0)]++

		switch cur.kind {
		case 'c':
			// Log first: sweep log prefixes with the store as it was, then
			// store prefixes with the log complete.
			for d := prev.dEvents; d <= cur.dEvents; d++ {
				outcomes[checkWALCrashState(t, cs, cd, points, prev.sEvents, d, 0, 0)]++
				if wl := cd.NextWriteLen(d); wl > 0 {
					for _, torn := range []int{1, wl / 2, wl - 1} {
						if torn <= 0 {
							continue
						}
						outcomes[checkWALCrashState(t, cs, cd, points, prev.sEvents, d, 0, torn)]++
					}
				}
			}
			for s := prev.sEvents; s <= cur.sEvents; s++ {
				outcomes[checkWALCrashState(t, cs, cd, points, s, cur.dEvents, 0, 0)]++
				outcomes[checkWALCrashState(t, cs, cd, points, s, cur.dEvents, 64, 0)]++
			}
		case 's':
			// Store first: mid-checkpoint cuts leave partially flushed
			// pages against the pre-reset log.
			for s := prev.sEvents; s <= cur.sEvents; s++ {
				outcomes[checkWALCrashState(t, cs, cd, points, s, prev.dEvents, 0, 0)]++
				for _, torn := range []int{1, 64, 127} {
					outcomes[checkWALCrashState(t, cs, cd, points, s, prev.dEvents, torn, 0)]++
				}
			}
			for d := prev.dEvents; d <= cur.dEvents; d++ {
				outcomes[checkWALCrashState(t, cs, cd, points, cur.sEvents, d, 0, 0)]++
				if wl := cd.NextWriteLen(d); wl > 0 {
					outcomes[checkWALCrashState(t, cs, cd, points, cur.sEvents, d, 0, wl/2)]++
				}
			}
		default:
			for s := prev.sEvents; s <= cur.sEvents; s++ {
				outcomes[checkWALCrashState(t, cs, cd, points, s, prev.dEvents, 0, 0)]++
			}
		}
	}
	t.Logf("outcomes: %v", outcomes)
	if outcomes["recovered-replayed"] == 0 {
		t.Error("matrix never exercised log replay")
	}
	if outcomes["recovered-clean"] == 0 {
		t.Error("matrix never exercised a clean checkpoint-boundary reopen")
	}
	if outcomes["recovered-dirty"] == 0 {
		t.Error("matrix never exercised a dirty page-level recovery")
	}
}

// TestWALRecoverMidSplitTornTail is the PR 2 × PR 6 × WAL matrix cell
// called out in the issue: transactions whose commits trigger incremental
// splits, crashed with the NEXT transaction's log append torn at every
// byte boundary. Replay must re-run the splits deterministically and land
// on the committed state, never on a half-split table.
func TestWALRecoverMidSplitTornTail(t *testing.T) {
	cs := pagefile.NewCrash(pagefile.NewMem(128, pagefile.CostModel{}))
	cd := wal.NewCrashDevice()
	tbl := mustOpen(t, "", walCrashOpts(cs, cd))

	// Checkpointed baseline near the split threshold, then transactions
	// that push bucket after bucket over it — each commit runs its
	// cooperative split before returning.
	want := map[string]string{}
	for i := 0; i < 30; i++ {
		if err := tbl.Put(key(i), val(i)); err != nil {
			t.Fatalf("baseline put: %v", err)
		}
		want[string(key(i))] = string(val(i))
	}
	if err := tbl.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	preBuckets := tbl.Geometry().MaxBucket
	for i := 30; i < 60; i++ {
		x, err := tbl.Begin()
		if err != nil {
			t.Fatalf("begin: %v", err)
		}
		if err := x.Put(key(i), val(i)); err != nil {
			t.Fatalf("txn put: %v", err)
		}
		if err := x.Commit(); err != nil {
			t.Fatalf("commit: %v", err)
		}
		want[string(key(i))] = string(val(i))
	}
	if tbl.Geometry().MaxBucket == preBuckets {
		t.Fatalf("workload triggered no splits (maxBucket still %d)", preBuckets)
	}
	sCut, dCut := cs.Len(), cd.Len()

	// One more transaction whose append we tear at every byte length: it
	// was never acknowledged, so recovery may not contain it — and at no
	// tear length may the torn frame corrupt what came before.
	x, err := tbl.Begin()
	if err != nil {
		t.Fatalf("begin last: %v", err)
	}
	if err := x.Put(key(99), val(99)); err != nil {
		t.Fatalf("txn put: %v", err)
	}
	if err := x.Commit(); err != nil {
		t.Fatalf("commit last: %v", err)
	}
	appendLen := cd.NextWriteLen(dCut)
	if appendLen == 0 {
		t.Fatalf("event %d is not the torn append", dCut)
	}

	for torn := 0; torn <= appendLen; torn++ {
		ms, err := cs.Materialize(sCut, 0)
		if err != nil {
			t.Fatalf("materialize: %v", err)
		}
		wdev := cd.Materialize(dCut, torn)
		re, rep, err := Recover("", walCrashOpts(ms, wdev))
		if err != nil {
			t.Fatalf("torn %d/%d: recover: %v", torn, appendLen, err)
		}
		got := readAll(t, re)
		expect := want
		if torn == appendLen {
			// The whole append (ops + commit frame in one write) made it:
			// the commit is replayable even though never acknowledged.
			expect = cloneState(want)
			expect[string(key(99))] = string(val(99))
		}
		if !mapsEqual(got, expect) {
			t.Fatalf("torn %d/%d: recovered %d keys, want %d (report %+v)", torn, appendLen, len(got), len(expect), rep)
		}
		if rep.WALTxns == 0 {
			t.Fatalf("torn %d: nothing replayed (report %+v)", torn, rep)
		}
		if g := re.Geometry(); g.MaxBucket == preBuckets {
			t.Fatalf("torn %d: replay did not re-run the splits", torn)
		}
		if err := re.Check(); err != nil {
			t.Fatalf("torn %d: check: %v", torn, err)
		}
		re.Close()
	}
}

// Shared workload for the fuzz harness, built once per process.
var (
	fuzzOnce   sync.Once
	fuzzStore  *pagefile.CrashStore
	fuzzDev    *wal.CrashDevice
	fuzzPoints []walPoint
)

func fuzzWorkload(t *testing.T) (*pagefile.CrashStore, *wal.CrashDevice, []walPoint) {
	fuzzOnce.Do(func() {
		fuzzStore, fuzzDev, fuzzPoints = walCrashWorkload(t, 60, 14)
	})
	return fuzzStore, fuzzDev, fuzzPoints
}

// FuzzWALCrashRecovery extends the PR 2 fuzz harness with power-cut
// prefixes of the log file itself: an arbitrary log journal cut, an
// arbitrary torn tail of the in-flight append, and an optional flipped
// byte, recovered against the consistent store state. The invariant is
// the loud-or-exact contract: recovery either fails with an error or
// produces a structurally sound table matching a recorded durable state.
func FuzzWALCrashRecovery(f *testing.F) {
	f.Add(0, 0, false, 0)
	f.Add(3, 1, false, 0)
	f.Add(7, 0, true, 40)
	f.Add(11, 5, true, 9)
	f.Fuzz(func(t *testing.T, dCut, dTorn int, flip bool, flipAt int) {
		cs, cd, points := fuzzWorkload(t)
		if dCut < 0 {
			dCut = -dCut
		}
		dCut %= cd.Len() + 1
		if wl := cd.NextWriteLen(dCut); wl > 0 && dTorn != 0 {
			if dTorn < 0 {
				dTorn = -dTorn
			}
			dTorn %= wl + 1
		} else {
			dTorn = 0
		}
		// The store state journaled at the newest point whose log events
		// are all inside the cut — the state a real power cut at this log
		// moment would have left.
		floor := 0
		for i, p := range points {
			if p.dEvents <= dCut {
				floor = i
			}
		}
		sCut := points[floor].sEvents

		ms, err := cs.Materialize(sCut, 0)
		if err != nil {
			t.Fatalf("materialize store: %v", err)
		}
		wdev := cd.Materialize(dCut, dTorn)
		if flip {
			b := wdev.Bytes()
			if len(b) > 0 {
				if flipAt < 0 {
					flipAt = -flipAt
				}
				b[flipAt%len(b)] ^= 0x40
				wdev = wal.NewMemDevice()
				wdev.WriteAt(b, 0)
			}
		}

		tbl, rep, err := Recover("", walCrashOpts(ms, wdev))
		if err != nil {
			return // loud failure is within contract for damaged logs
		}
		defer tbl.Close()
		got := readAll(t, tbl)
		matched := false
		for _, p := range points {
			if mapsEqual(got, p.state) {
				matched = true
				break
			}
		}
		if !matched {
			t.Fatalf("dCut %d torn %d flip %v: recovered %d keys matching no recorded durable state (report %+v)",
				dCut, dTorn, flip, len(got), rep)
		}
		if err := tbl.Check(); err != nil {
			t.Fatalf("dCut %d torn %d: post-recovery Check: %v", dCut, dTorn, err)
		}
	})
}

var _ = fmt.Sprintf // keep fmt imported if assertions change

package core

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	"unixhash/internal/hashfunc"
)

func mustOpen(t *testing.T, path string, opts *Options) *Table {
	t.Helper()
	tbl, err := Open(path, opts)
	if err != nil {
		t.Fatalf("Open(%q): %v", path, err)
	}
	return tbl
}

func key(i int) []byte  { return []byte(fmt.Sprintf("key-%06d", i)) }
func val(i int) []byte  { return []byte(fmt.Sprintf("value-%d", i)) }
func val2(i int) []byte { return []byte(fmt.Sprintf("other-value-%d", i)) }

func TestPutGetRoundtrip(t *testing.T) {
	tbl := mustOpen(t, "", nil)
	defer tbl.Close()

	if err := tbl.Put([]byte("hello"), []byte("world")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, err := tbl.Get([]byte("hello"))
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if string(got) != "world" {
		t.Fatalf("Get = %q, want %q", got, "world")
	}
	if _, err := tbl.Get([]byte("missing")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get missing = %v, want ErrNotFound", err)
	}
	if n := tbl.Len(); n != 1 {
		t.Fatalf("Len = %d, want 1", n)
	}
}

func TestPutReplaces(t *testing.T) {
	tbl := mustOpen(t, "", nil)
	defer tbl.Close()

	for i := 0; i < 3; i++ {
		if err := tbl.Put([]byte("k"), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	got, err := tbl.Get([]byte("k"))
	if err != nil || string(got) != "v2" {
		t.Fatalf("Get = %q, %v; want v2", got, err)
	}
	if n := tbl.Len(); n != 1 {
		t.Fatalf("Len = %d after replacing puts, want 1", n)
	}
}

func TestPutNew(t *testing.T) {
	tbl := mustOpen(t, "", nil)
	defer tbl.Close()

	if err := tbl.PutNew([]byte("k"), []byte("v1")); err != nil {
		t.Fatalf("PutNew: %v", err)
	}
	if err := tbl.PutNew([]byte("k"), []byte("v2")); !errors.Is(err, ErrKeyExists) {
		t.Fatalf("second PutNew = %v, want ErrKeyExists", err)
	}
	// The original value must be untouched.
	got, err := tbl.Get([]byte("k"))
	if err != nil || string(got) != "v1" {
		t.Fatalf("Get = %q, %v; want v1 intact", got, err)
	}
}

func TestEmptyKeyRejected(t *testing.T) {
	tbl := mustOpen(t, "", nil)
	defer tbl.Close()
	if err := tbl.Put(nil, []byte("v")); !errors.Is(err, ErrEmptyKey) {
		t.Fatalf("Put(nil) = %v, want ErrEmptyKey", err)
	}
	if _, err := tbl.Get(nil); !errors.Is(err, ErrEmptyKey) {
		t.Fatalf("Get(nil) = %v, want ErrEmptyKey", err)
	}
	if err := tbl.Delete(nil); !errors.Is(err, ErrEmptyKey) {
		t.Fatalf("Delete(nil) = %v, want ErrEmptyKey", err)
	}
}

func TestManyKeysWithSplits(t *testing.T) {
	const n = 5000
	tbl := mustOpen(t, "", &Options{Bsize: 256, Ffactor: 8})
	defer tbl.Close()

	for i := 0; i < n; i++ {
		if err := tbl.Put(key(i), val(i)); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	if got := tbl.Len(); got != n {
		t.Fatalf("Len = %d, want %d", got, n)
	}
	if tbl.Stats().Expansions == 0 {
		t.Fatal("no bucket splits occurred over 5000 inserts")
	}
	for i := 0; i < n; i++ {
		got, err := tbl.Get(key(i))
		if err != nil {
			t.Fatalf("Get %d: %v", i, err)
		}
		if !bytes.Equal(got, val(i)) {
			t.Fatalf("Get %d = %q, want %q", i, got, val(i))
		}
	}
}

func TestDelete(t *testing.T) {
	const n = 1000
	tbl := mustOpen(t, "", &Options{Bsize: 128, Ffactor: 4})
	defer tbl.Close()

	for i := 0; i < n; i++ {
		if err := tbl.Put(key(i), val(i)); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	// Delete the even keys.
	for i := 0; i < n; i += 2 {
		if err := tbl.Delete(key(i)); err != nil {
			t.Fatalf("Delete %d: %v", i, err)
		}
	}
	if got := tbl.Len(); got != n/2 {
		t.Fatalf("Len = %d, want %d", got, n/2)
	}
	for i := 0; i < n; i++ {
		_, err := tbl.Get(key(i))
		if i%2 == 0 {
			if !errors.Is(err, ErrNotFound) {
				t.Fatalf("Get deleted %d = %v, want ErrNotFound", i, err)
			}
		} else if err != nil {
			t.Fatalf("Get kept %d: %v", i, err)
		}
	}
	if err := tbl.Delete(key(0)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double Delete = %v, want ErrNotFound", err)
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	const n = 2000
	path := filepath.Join(t.TempDir(), "test.db")

	tbl := mustOpen(t, path, &Options{Bsize: 512, Ffactor: 16})
	for i := 0; i < n; i++ {
		if err := tbl.Put(key(i), val(i)); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	if err := tbl.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	tbl = mustOpen(t, path, nil) // geometry comes from the file
	defer tbl.Close()
	if g := tbl.Geometry(); g.Bsize != 512 || g.Ffactor != 16 {
		t.Fatalf("reopened geometry = %+v, want bsize 512 ffactor 16", g)
	}
	if got := tbl.Len(); got != n {
		t.Fatalf("Len after reopen = %d, want %d", got, n)
	}
	for i := 0; i < n; i++ {
		got, err := tbl.Get(key(i))
		if err != nil || !bytes.Equal(got, val(i)) {
			t.Fatalf("Get %d after reopen = %q, %v", i, got, err)
		}
	}
}

func TestReopenReadOnly(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ro.db")
	tbl := mustOpen(t, path, nil)
	if err := tbl.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Close(); err != nil {
		t.Fatal(err)
	}

	tbl = mustOpen(t, path, &Options{ReadOnly: true})
	defer tbl.Close()
	if _, err := tbl.Get([]byte("k")); err != nil {
		t.Fatalf("Get on read-only table: %v", err)
	}
	if err := tbl.Put([]byte("k2"), []byte("v2")); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Put on read-only table = %v, want ErrReadOnly", err)
	}
	if err := tbl.Delete([]byte("k")); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Delete on read-only table = %v, want ErrReadOnly", err)
	}
}

func TestOpenMissingReadOnly(t *testing.T) {
	_, err := Open(filepath.Join(t.TempDir(), "missing.db"), &Options{ReadOnly: true})
	if err == nil {
		t.Fatal("Open(missing, ReadOnly) succeeded, want error")
	}
}

func TestHashFunctionMismatchDetected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hf.db")
	tbl := mustOpen(t, path, &Options{Hash: hashfunc.Default})
	if err := tbl.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Close(); err != nil {
		t.Fatal(err)
	}

	_, err := Open(path, &Options{Hash: hashfunc.FNV1a})
	if !errors.Is(err, ErrHashMismatch) {
		t.Fatalf("Open with different hash = %v, want ErrHashMismatch", err)
	}
	// The original function still works.
	tbl = mustOpen(t, path, &Options{Hash: hashfunc.Default})
	tbl.Close()
}

func TestBigPairs(t *testing.T) {
	tbl := mustOpen(t, "", &Options{Bsize: 256})
	defer tbl.Close()

	big := func(c byte, n int) []byte { return bytes.Repeat([]byte{c}, n) }

	cases := []struct {
		name string
		key  []byte
		data []byte
	}{
		{"big-data", []byte("bk1"), big('d', 10000)},
		{"big-key", big('K', 5000), []byte("small")},
		{"big-both", big('B', 4000), big('b', 4000)},
		{"just-over", []byte("bk2"), big('x', 256)},
		{"multi-page", []byte("bk3"), big('y', 100000)},
	}
	for _, c := range cases {
		if err := tbl.Put(c.key, c.data); err != nil {
			t.Fatalf("%s: Put: %v", c.name, err)
		}
	}
	if tbl.Stats().BigPairs != int64(len(cases)) {
		t.Fatalf("BigPairs = %d, want %d", tbl.Stats().BigPairs, len(cases))
	}
	for _, c := range cases {
		got, err := tbl.Get(c.key)
		if err != nil {
			t.Fatalf("%s: Get: %v", c.name, err)
		}
		if !bytes.Equal(got, c.data) {
			t.Fatalf("%s: Get returned %d bytes, want %d", c.name, len(got), len(c.data))
		}
	}
	// Replace a big pair with a small one and vice versa.
	if err := tbl.Put([]byte("bk1"), []byte("now small")); err != nil {
		t.Fatal(err)
	}
	got, err := tbl.Get([]byte("bk1"))
	if err != nil || string(got) != "now small" {
		t.Fatalf("Get bk1 = %q, %v", got, err)
	}
	if err := tbl.Put([]byte("bk1"), big('z', 20000)); err != nil {
		t.Fatal(err)
	}
	got, err = tbl.Get([]byte("bk1"))
	if err != nil || len(got) != 20000 {
		t.Fatalf("Get bk1 = %d bytes, %v; want 20000", len(got), err)
	}

	// Delete big pairs; their chains must be reclaimed.
	before, err := tbl.OverflowPages()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cases {
		if err := tbl.Delete(c.key); err != nil {
			t.Fatalf("%s: Delete: %v", c.name, err)
		}
	}
	after, err := tbl.OverflowPages()
	if err != nil {
		t.Fatal(err)
	}
	if after >= before {
		t.Fatalf("overflow pages %d -> %d: big-pair chains not reclaimed", before, after)
	}
	if tbl.Len() != 0 {
		t.Fatalf("Len = %d, want 0", tbl.Len())
	}
}

func TestBigPairsPersist(t *testing.T) {
	path := filepath.Join(t.TempDir(), "big.db")
	data := bytes.Repeat([]byte("payload!"), 4096) // 32 KB
	tbl := mustOpen(t, path, &Options{Bsize: 256})
	if err := tbl.Put([]byte("big"), data); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Close(); err != nil {
		t.Fatal(err)
	}
	tbl = mustOpen(t, path, nil)
	defer tbl.Close()
	got, err := tbl.Get([]byte("big"))
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("big pair lost across reopen: %d bytes, %v", len(got), err)
	}
}

func TestIterator(t *testing.T) {
	const n = 3000
	tbl := mustOpen(t, "", &Options{Bsize: 256, Ffactor: 8})
	defer tbl.Close()

	want := make(map[string]string, n)
	for i := 0; i < n; i++ {
		if err := tbl.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
		want[string(key(i))] = string(val(i))
	}
	// One big pair so the scan crosses a big-pair chain too.
	bigData := bytes.Repeat([]byte("B"), 5000)
	if err := tbl.Put([]byte("bigkey"), bigData); err != nil {
		t.Fatal(err)
	}
	want["bigkey"] = string(bigData)

	got := make(map[string]string, n+1)
	it := tbl.Iter()
	for it.Next() {
		if _, dup := got[string(it.Key())]; dup {
			t.Fatalf("iterator returned key %q twice", it.Key())
		}
		got[string(it.Key())] = string(it.Value())
	}
	if err := it.Err(); err != nil {
		t.Fatalf("iterator error: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("iterator returned %d pairs, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("iterator value for %q = %q, want %q", k, got[k], v)
		}
	}
}

func TestIteratorEmptyTable(t *testing.T) {
	tbl := mustOpen(t, "", nil)
	defer tbl.Close()
	it := tbl.Iter()
	if it.Next() {
		t.Fatal("Next on empty table returned true")
	}
	if it.Err() != nil {
		t.Fatalf("Err on empty table: %v", it.Err())
	}
}

func TestNelemPresizing(t *testing.T) {
	// With nelem given, the table starts at full size and grows little.
	pre := mustOpen(t, "", &Options{Nelem: 10000, Ffactor: 8, Bsize: 256})
	defer pre.Close()
	g := pre.Geometry()
	if g.MaxBucket < 1023 { // 10000/8 -> 1250 -> next pow2 2048 buckets
		t.Fatalf("pre-sized MaxBucket = %d, want >= 1023", g.MaxBucket)
	}
	for i := 0; i < 10000; i++ {
		if err := pre.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}

	grown := mustOpen(t, "", &Options{Ffactor: 8, Bsize: 256})
	defer grown.Close()
	for i := 0; i < 10000; i++ {
		if err := grown.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	if exp := grown.Stats().Expansions; exp < 1000 {
		t.Fatalf("grown table split only %d times", exp)
	}
	// Pre-sizing avoids the bulk of the split work (only uncontrolled
	// splits from unlucky buckets remain).
	if pre.Stats().Expansions >= grown.Stats().Expansions {
		t.Fatalf("pre-sized table split %d times, grown %d — pre-sizing saved nothing",
			pre.Stats().Expansions, grown.Stats().Expansions)
	}
	// Both must hold identical contents.
	for i := 0; i < 10000; i++ {
		a, err1 := pre.Get(key(i))
		b, err2 := grown.Get(key(i))
		if err1 != nil || err2 != nil || !bytes.Equal(a, b) {
			t.Fatalf("mismatch at %d: %v %v", i, err1, err2)
		}
	}
}

func TestTinyCache(t *testing.T) {
	// A pool at the minimum size must still support a large table.
	tbl := mustOpen(t, "", &Options{Bsize: 64, Ffactor: 1, CacheSize: 1})
	defer tbl.Close()
	const n = 2000
	for i := 0; i < n; i++ {
		if err := tbl.Put(key(i), val(i)); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	for i := 0; i < n; i++ {
		got, err := tbl.Get(key(i))
		if err != nil || !bytes.Equal(got, val(i)) {
			t.Fatalf("Get %d = %q, %v", i, got, err)
		}
	}
	if tbl.Pool().Counters().Evictions == 0 {
		t.Fatal("tiny cache produced no evictions")
	}
}

func TestCloseIdempotent(t *testing.T) {
	tbl := mustOpen(t, "", nil)
	if err := tbl.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := tbl.Get([]byte("k")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Get after Close = %v, want ErrClosed", err)
	}
	if err := tbl.Put([]byte("k"), []byte("v")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Put after Close = %v, want ErrClosed", err)
	}
}

func TestBadOptions(t *testing.T) {
	cases := []Options{
		{Bsize: 100},   // not a power of two
		{Bsize: 32},    // too small
		{Bsize: 65536}, // too large
		{Ffactor: -1},
	}
	for _, o := range cases {
		o := o
		if _, err := Open("", &o); err == nil {
			t.Fatalf("Open with %+v succeeded, want error", o)
		}
	}
}

func TestVariousGeometries(t *testing.T) {
	for _, bsize := range []int{64, 128, 256, 1024, 4096} {
		for _, ff := range []int{1, 8, 64} {
			t.Run(fmt.Sprintf("bsize=%d,ff=%d", bsize, ff), func(t *testing.T) {
				tbl := mustOpen(t, "", &Options{Bsize: bsize, Ffactor: ff})
				defer tbl.Close()
				const n = 700
				for i := 0; i < n; i++ {
					if err := tbl.Put(key(i), val(i)); err != nil {
						t.Fatalf("Put %d: %v", i, err)
					}
				}
				for i := 0; i < n; i += 3 {
					if err := tbl.Delete(key(i)); err != nil {
						t.Fatalf("Delete %d: %v", i, err)
					}
				}
				for i := 0; i < n; i++ {
					got, err := tbl.Get(key(i))
					if i%3 == 0 {
						if !errors.Is(err, ErrNotFound) {
							t.Fatalf("Get %d = %v, want ErrNotFound", i, err)
						}
						continue
					}
					if err != nil || !bytes.Equal(got, val(i)) {
						t.Fatalf("Get %d = %q, %v", i, got, err)
					}
				}
			})
		}
	}
}

func TestUpdateChangesSize(t *testing.T) {
	tbl := mustOpen(t, "", &Options{Bsize: 128, Ffactor: 4})
	defer tbl.Close()
	const n = 300
	for i := 0; i < n; i++ {
		if err := tbl.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		if err := tbl.Put(key(i), val2(i)); err != nil {
			t.Fatal(err)
		}
	}
	if tbl.Len() != n {
		t.Fatalf("Len = %d, want %d", tbl.Len(), n)
	}
	for i := 0; i < n; i++ {
		got, err := tbl.Get(key(i))
		if err != nil || !bytes.Equal(got, val2(i)) {
			t.Fatalf("Get %d = %q, %v; want %q", i, got, err, val2(i))
		}
	}
}

func TestSyncThenCrashSimulation(t *testing.T) {
	// Everything written before Sync must be readable by a second handle
	// opened on the same file (simulating a reader after a crash of the
	// writer process post-sync).
	path := filepath.Join(t.TempDir(), "sync.db")
	tbl := mustOpen(t, path, nil)
	defer tbl.Close()
	for i := 0; i < 500; i++ {
		if err := tbl.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}

	reader := mustOpen(t, path, &Options{ReadOnly: true})
	defer reader.Close()
	for i := 0; i < 500; i++ {
		got, err := reader.Get(key(i))
		if err != nil || !bytes.Equal(got, val(i)) {
			t.Fatalf("reader Get %d = %q, %v", i, got, err)
		}
	}
}

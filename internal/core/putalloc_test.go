package core

import (
	"bytes"
	"fmt"
	"testing"

	"unixhash/internal/oplog"
)

// TestPutAllocs guards the write hot path's allocation budget, the
// companion to TestGetBufZeroAlloc. A steady-state small-pair replace
// must not allocate at all: the slot encode works in place on the pinned
// page, and fingerprint/metric updates use pre-resolved atomics. A
// big-pair replace is allowed a small fixed budget (chain fingerprint
// readback plus pool bookkeeping) but must stay flat regardless of value
// size — putBigPair streams segments straight into recycled pool buffers
// and keeps its chain-address list on the stack for chains up to 16
// pages, so the encode itself contributes zero.
func TestPutAllocs(t *testing.T) {
	t.Run("small-replace", func(t *testing.T) {
		tbl := mustOpen(t, "", &Options{Bsize: 1024, Ffactor: 16})
		defer tbl.Close()
		const n = 200
		keys := make([][]byte, n)
		for i := range keys {
			keys[i] = []byte(fmt.Sprintf("key-%04d", i))
			if err := tbl.Put(keys[i], []byte("value")); err != nil {
				t.Fatal(err)
			}
		}
		val := []byte("value2")
		i := 0
		allocs := testing.AllocsPerRun(500, func() {
			if err := tbl.Put(keys[i%n], val); err != nil {
				t.Fatal(err)
			}
			i++
		})
		if allocs != 0 {
			t.Fatalf("small replace Put allocated %.1f times per op, want 0", allocs)
		}
		// The op-ledger entry point must cost nothing extra: with no
		// ledger attached the guards are dead nil checks, and with a live
		// ledger every charge is an atomic add into caller-owned fixed
		// storage — neither side of the gate may allocate.
		for name, led := range map[string]*oplog.Ledger{"nil-ledger": nil, "live-ledger": new(oplog.Ledger)} {
			led := led
			t.Run(name, func(t *testing.T) {
				led.StartOp(oplog.CmdPut, keys[0])
				allocs := testing.AllocsPerRun(500, func() {
					if err := tbl.PutOp(led, keys[i%n], val); err != nil {
						t.Fatal(err)
					}
					i++
				})
				if allocs != 0 {
					t.Fatalf("small replace PutOp (%s) allocated %.1f times per op, want 0", name, allocs)
				}
			})
		}
	})
	t.Run("big-replace", func(t *testing.T) {
		tbl := mustOpen(t, "", &Options{Bsize: 1024, Ffactor: 16})
		defer tbl.Close()
		const n = 50
		keys := make([][]byte, n)
		val := bytes.Repeat([]byte("x"), 5000) // 6 chain pages, stack-backed addrs
		for i := range keys {
			keys[i] = []byte(fmt.Sprintf("big-key-%04d", i))
			if err := tbl.Put(keys[i], val); err != nil {
				t.Fatal(err)
			}
		}
		i := 0
		allocs := testing.AllocsPerRun(200, func() {
			if err := tbl.Put(keys[i%n], val); err != nil {
				t.Fatal(err)
			}
			i++
		})
		// Measured 5.0 at the time of writing; 8 leaves slack for runtime
		// variation without masking a regression back to per-page or
		// per-byte allocation (which lands in the hundreds).
		if allocs > 8 {
			t.Fatalf("big replace Put allocated %.1f times per op, want <= 8", allocs)
		}
	})
}

// Package core implements the paper's hashing package: a linear-hash table
// (Litwin 1980, Larson 1988) with the hybrid split policy, buddy-in-waiting
// overflow pages, large key/data support and LRU buffer management
// described in "A New Hashing Package for UNIX" (Seltzer & Yigit, USENIX
// Winter 1991).
//
// A Table maps byte-string keys to byte-string values. It may live purely
// in memory or be backed by a page file on disk; both modes use the same
// page-oriented representation, so in-memory tables can be written to disk
// and disk tables cached in memory — the unification of dbm and hsearch
// that motivates the paper.
//
// Splits occur in the predefined order of linear hashing, but the time at
// which a bucket is split is decided both by page overflow (uncontrolled
// splitting) and by exceeding the table fill factor (controlled
// splitting). Buckets are pages of a configurable size (bsize); when the
// keys in a bucket exceed its primary page, overflow pages are chained to
// it. Overflow pages are allocated between generations of primary pages
// and addressed by a 16-bit (splitpoint, pagenumber) code so that both
// primary and overflow pages map to file locations without reorganizing
// the file. Key/data pairs too large for a page are stored on dedicated
// chains of overflow pages — the same mechanism, as the paper prescribes,
// so inserts never fail because a pair is too large or because too many
// keys collide.
package core

import (
	"errors"
	"fmt"
	"math/bits"
)

// Table-parameter defaults, from the paper's "Table Parameterization"
// section: the bucket size defaults to 256 bytes, the fill factor to
// eight, and the package allocates up to 64 KB of buffered pages.
const (
	DefaultBsize     = 256
	DefaultFfactor   = 8
	DefaultCacheSize = 64 * 1024

	// MinBsize and MaxBsize bound the bucket size. Offsets within pages
	// are 16 bits, limiting the maximum page size to 32 KB; a bucket
	// smaller than 64 bytes is not recommended (and not supported).
	MinBsize = 64
	MaxBsize = 32768
)

// Overflow addressing: the top five bits of a 16-bit overflow address are
// the split point, the lower eleven the page number within the split
// point. Files may split 32 times, yielding a maximum file size of 2^32
// buckets and 32*2^11 overflow pages.
const (
	splitShift   = 11
	splitMask    = 1<<splitShift - 1 // low eleven bits: page number
	maxSplits    = 32
	maxSplitPage = splitMask // page numbers are 1..2047; 0 means "none"
)

// Errors returned by Table operations.
var (
	ErrNotFound     = errors.New("hash: key not found")
	ErrKeyExists    = errors.New("hash: key already exists")
	ErrReadOnly     = errors.New("hash: table is read-only")
	ErrClosed       = errors.New("hash: table is closed")
	ErrBadMagic     = errors.New("hash: not a hash file")
	ErrBadVersion   = errors.New("hash: unsupported version")
	ErrHashMismatch = errors.New("hash: file was created with a different hash function")
	ErrCorrupt      = errors.New("hash: file is corrupt")
	ErrTooManyPages = errors.New("hash: out of overflow pages")
	ErrEmptyKey     = errors.New("hash: empty key")

	// ErrNeedsRecovery is returned by Open when the file's dirty flag is
	// set — the table was not cleanly synced (a crash, or a writer is
	// still live) — and the caller did not set Options.AllowDirty. Run
	// Recover to rebuild it, or open with AllowDirty for inspection.
	ErrNeedsRecovery = errors.New("hash: file was not cleanly closed; recovery required")
	// ErrUnrecoverable is returned by Recover and Verify when a dirty
	// file's pages do not reproduce the state recorded at the last
	// successful sync: data has been lost or corrupted and no repair can
	// restore it.
	ErrUnrecoverable = errors.New("hash: file is unrecoverable")
)

// pairHash is an order-independent fingerprint component for one key/data
// pair: FNV-1a over the key length, the key bytes and the data bytes. The
// header's pairSum is the XOR of pairHash over every stored pair, so it
// can be maintained incrementally (XOR in on insert, XOR out on delete)
// and recomputed by a walk in any order. Folding the key length keeps
// ("ab","c") and ("a","bc") from colliding.
func pairHash(key, data []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for n := len(key); ; n >>= 8 {
		h = (h ^ uint64(n&0xff)) * prime64
		if n < 0x100 {
			break
		}
	}
	for _, b := range key {
		h = (h ^ uint64(b)) * prime64
	}
	for _, b := range data {
		h = (h ^ uint64(b)) * prime64
	}
	return h
}

// oaddr is a 16-bit overflow page address. Zero is never a valid address
// (page numbers start at one), so zero means "no page".
type oaddr uint16

func makeOaddr(split uint32, pagenum uint32) oaddr {
	return oaddr(split<<splitShift | pagenum&splitMask)
}

func (o oaddr) split() uint32   { return uint32(o) >> splitShift }
func (o oaddr) pagenum() uint32 { return uint32(o) & splitMask }

func (o oaddr) String() string {
	return fmt.Sprintf("%d/%d", o.split(), o.pagenum())
}

// ceilLog2 returns the smallest p such that 1<<p >= x. It is the __log2
// of the 4.4BSD implementation — there a shift loop, here a single
// hardware leading-zero count: for x > 1 the answer is the bit length of
// x-1. This sits on the BUCKET_TO_PAGE path, i.e. under every page
// fetch; see BenchmarkCeilLog2 for the loop-vs-bits comparison.
func ceilLog2(x uint32) uint32 {
	if x <= 1 {
		return 0
	}
	return uint32(bits.Len32(x - 1))
}

// nextPow2 rounds x up to a power of two (minimum 1).
func nextPow2(x uint32) uint32 {
	if x <= 1 {
		return 1
	}
	if x > 1<<31 {
		return 1 << 31
	}
	return 1 << bits.Len32(x-1)
}

func isPow2(x int) bool { return x > 0 && x&(x-1) == 0 }

package core

import (
	"bytes"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"unixhash/internal/pagefile"
)

// Crash and concurrency coverage for the read-acceleration layer. The
// per-bucket tag filter lives in a reserved region of each primary
// page, so a torn page write can corrupt filter bytes independently of
// the pairs on the same page. The recovery contract is that filters are
// pure acceleration state: Recover rebuilds every bucket's tags from
// the pair data it verified and never trusts a byte that was on disk —
// a torn filter must never surface as a false negative (a stored key
// answered "absent").

// TestCrashTornFilterBytes sweeps the standard crash workload with the
// final page write torn inside the filter region specifically (the
// bytes between the page header and the slot area: count, flags,
// chainLen and the tag array at bsize 128 span offsets 4..23). Every
// recovery must pass Check, whose filter leg fails on any false
// negative or miscounted tag set.
func TestCrashTornFilterBytes(t *testing.T) {
	nops, syncEvery := 60, 12
	if testing.Short() {
		nops, syncEvery = 30, 10
	}
	cs, snaps := crashWorkload(t, nops, syncEvery)
	evs := cs.Events()
	outcomes := map[string]int{}
	for n := 1; n <= cs.Len(); n++ {
		if evs[n-1].Sync {
			continue
		}
		// Tear mid-count, mid-flags/chainLen, and mid-tag-array.
		for _, torn := range []int{fltCountOff + 1, fltChainOff + 1, fltTagsOff + 9} {
			outcomes[checkCrashState(t, cs, snaps, n, torn)]++
		}
	}
	t.Logf("outcomes: %v", outcomes)
	if outcomes["recovered-dirty"] == 0 {
		t.Error("sweep never exercised a dirty recovery with torn filter bytes")
	}
}

// TestRecoverIgnoresGarbageFilterBytes plants adversarial filter state
// on a dirty file — regions rewritten to claim "no keys here" and
// regions full of wrong tags — and verifies Recover rebuilds every
// filter from pair data: the report says so, every stored key is still
// found (the planted bytes would answer "absent" if trusted), and
// Check's filter invariants pass.
func TestRecoverIgnoresGarbageFilterBytes(t *testing.T) {
	ms := pagefile.NewMem(128, pagefile.CostModel{})
	opts := &Options{Store: ms, Bsize: 128, Ffactor: 4}
	tbl := mustOpen(t, "", opts)
	const nkeys = 60
	for i := 0; i < nkeys; i++ {
		if err := tbl.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.Sync(); err != nil {
		t.Fatal(err)
	}
	// Record the primaries of the synced state before dirtying the file:
	// the extra Put below may split in memory, and the on-disk header
	// Recover reads still describes this geometry.
	var primaries []uint32
	for b := uint32(0); b <= tbl.hdr.maxBucket; b++ {
		primaries = append(primaries, tbl.hdr.bucketToPage(b))
	}
	if len(primaries) < 4 {
		t.Fatalf("workload built only %d buckets; want splits", len(primaries))
	}
	// Durably mark the file dirty (the mutation itself stays in the
	// pool), then abandon the table: ms now holds the synced state of a
	// crashed process.
	if err := tbl.Put(key(nkeys), val(nkeys)); err != nil {
		t.Fatal(err)
	}

	// Plant garbage in every primary's filter region, alternating
	// between "filter claims empty" (the nastiest lie: every stored key
	// would be a false negative) and "filter full of wrong tags".
	buf := make([]byte, 128)
	base := slotBaseFor(128)
	for i, pn := range primaries {
		if err := ms.ReadPage(pn, buf); err != nil {
			t.Fatalf("read primary %d: %v", pn, err)
		}
		if i%2 == 0 {
			for off := fltCountOff; off < base; off++ {
				buf[off] = 0
			}
		} else {
			buf[fltCountOff] = byte(tagCapFor(128))
			buf[fltFlagsOff] = 0
			buf[fltChainOff] = 200
			for off := fltTagsOff; off < base; off++ {
				buf[off] = 0xAA
			}
		}
		if err := ms.WritePage(pn, buf); err != nil {
			t.Fatalf("write primary %d: %v", pn, err)
		}
	}

	rec, rep, err := Recover("", &Options{Store: ms, Bsize: 128, Ffactor: 4})
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	defer rec.Close()
	if rep.FiltersRebuilt == 0 {
		t.Fatalf("recovery rebuilt no filters; report %+v", rep)
	}
	// Every synced key must be found: a trusted garbage filter would
	// answer "absent" for all of them.
	for i := 0; i < nkeys; i++ {
		v, err := rec.Get(key(i))
		if err != nil {
			t.Fatalf("get key %d after rebuild: %v (false negative from planted filter bytes?)", i, err)
		}
		if !bytes.Equal(v, val(i)) {
			t.Fatalf("get key %d = %q, want %q", i, v, val(i))
		}
	}
	if err := rec.Check(); err != nil {
		t.Fatalf("post-recovery check: %v", err)
	}
}

// TestConcurrentMissStormDuringSplits is the read-acceleration race
// stress: a storm of negative lookups (the filter's fast path) runs
// against writers whose inserts continuously force incremental bucket
// splits and chain rebuilds, with a pool small enough to keep the
// read-ahead path evicting and reinstalling chain pages. Run with
// -race. Stored keys probed concurrently must never be reported absent
// — the filter is only allowed false positives, under any interleaving
// with split-driven filter rewrites.
func TestConcurrentMissStormDuringSplits(t *testing.T) {
	tbl := mustOpen(t, "", &Options{
		Bsize:     256,
		Ffactor:   8,
		CacheSize: 256 * 16, // small pool: misses fault, prefetch evicts
	})
	defer tbl.Close()

	const seed = 400
	for i := 0; i < seed; i++ {
		if err := tbl.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}

	var stop atomic.Bool
	var inserted atomic.Int64
	inserted.Store(seed)
	readers := runtime.GOMAXPROCS(0) * 2
	if readers < 4 {
		readers = 4
	}
	errs := make(chan error, readers+2)
	var writerWG, readerWG sync.WaitGroup

	// Two writers force splits for the storm's whole duration; they run
	// until the readers have finished their quota.
	for w := 0; w < 2; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			for !stop.Load() {
				n := int(inserted.Add(1))
				if err := tbl.Put(key(n), val(n)); err != nil {
					errs <- fmt.Errorf("writer %d: put %d: %v", w, n, err)
					return
				}
			}
		}(w)
	}

	for r := 0; r < readers; r++ {
		readerWG.Add(1)
		go func(r int) {
			defer readerWG.Done()
			for i := 0; i < 4000; i++ {
				// Misses exercise the filter's "definitely absent" path.
				miss := []byte(fmt.Sprintf("absent-%d-%d", r, i))
				if _, err := tbl.Get(miss); !errors.Is(err, ErrNotFound) {
					errs <- fmt.Errorf("reader %d: miss %q: %v", r, miss, err)
					return
				}
				// A seed key must never be a false negative, no matter
				// what the concurrent splits do to its bucket's filter.
				probe := (r*7 + i) % seed
				if v, err := tbl.Get(key(probe)); err != nil {
					errs <- fmt.Errorf("reader %d: stored key %d reported %v (false negative)", r, probe, err)
					return
				} else if !bytes.Equal(v, val(probe)) {
					errs <- fmt.Errorf("reader %d: stored key %d = %q", r, probe, v)
					return
				}
			}
		}(r)
	}

	readerWG.Wait()
	stop.Store(true)
	writerWG.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := int(inserted.Load()); got <= seed {
		t.Fatalf("writers inserted nothing beyond the seed (%d)", got)
	}
	if err := tbl.Check(); err != nil {
		t.Fatalf("post-storm check: %v", err)
	}
}

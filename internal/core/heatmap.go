package core

import (
	"fmt"

	"unixhash/internal/buffer"
)

// The heatmap is the live, read-locked view of how the table's keys and
// bytes are spread over its buckets: per-bucket fill factor and
// overflow-chain depth, cheap enough to serve from the telemetry
// endpoint while a workload runs. It deliberately walks only bucket
// chains under the shared lock (the same path Get uses), unlike
// FillStats, whose allocator accounting needs the exclusive lock.

// BucketHeat is one bucket's row in the heatmap.
type BucketHeat struct {
	Bucket     uint32  `json:"bucket"`
	Entries    int     `json:"entries"`
	BigRefs    int     `json:"big_refs,omitempty"`
	ChainPages int     `json:"chain_pages"` // overflow pages past the primary
	Fill       float64 `json:"fill"`        // used/usable bytes over the chain's pages
}

// Heatmap is the full per-bucket report.
type Heatmap struct {
	Buckets  uint32  `json:"buckets"`
	Bsize    int     `json:"bsize"`
	NKeys    int64   `json:"nkeys"`
	MaxChain int     `json:"max_chain_pages"` // deepest overflow chain
	AvgFill  float64 `json:"avg_fill"`
	// ChainDist[i] counts buckets with exactly i overflow pages.
	ChainDist []int        `json:"chain_dist"`
	PerBucket []BucketHeat `json:"per_bucket"`
}

// String renders a compact summary plus a fill histogram for the CLIs.
func (h *Heatmap) String() string {
	s := fmt.Sprintf("buckets=%d keys=%d avgfill=%.0f%% maxchain=%d",
		h.Buckets, h.NKeys, 100*h.AvgFill, h.MaxChain)
	for depth, n := range h.ChainDist {
		if n > 0 {
			s += fmt.Sprintf(" chain[%d]=%d", depth, n)
		}
	}
	return s
}

// Heatmap walks every bucket chain under the shared lock and reports
// per-bucket fill and chain depth. Readers and the walk run in parallel;
// writers are excluded for the duration (the same cost as a long scan).
func (t *Table) Heatmap() (*Heatmap, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if err := t.checkOpen(); err != nil {
		return nil, err
	}
	maxB := t.geo.Load()
	h := &Heatmap{
		Buckets:   maxB + 1,
		Bsize:     int(t.hdr.bsize),
		NKeys:     t.nkeysA.Load(),
		PerBucket: make([]BucketHeat, 0, maxB+1),
	}
	usable := int(t.hdr.bsize) - pageHdrSize
	var usedTotal, availTotal int64
	for b := uint32(0); b <= maxB; b++ {
		row := BucketHeat{Bucket: b}
		used := 0
		pages := 0
		t.latchBucketRead(b)
		err := t.walkChain(b, func(buf *buffer.Buf) (bool, error) {
			if buf.Addr.Ovfl {
				row.ChainPages++
			}
			pages++
			pg := page(buf.Page)
			used += usable - pg.freeSpace()
			return false, pg.forEach(func(_ int, e entry) bool {
				row.Entries++
				if e.kind == entryBig {
					row.BigRefs++
				}
				return true
			})
		})
		t.stripeFor(b).RUnlock()
		if err != nil {
			return nil, err
		}
		if pages > 0 {
			row.Fill = float64(used) / float64(pages*usable)
		}
		usedTotal += int64(used)
		availTotal += int64(pages * usable)
		if row.ChainPages > h.MaxChain {
			h.MaxChain = row.ChainPages
		}
		for len(h.ChainDist) <= row.ChainPages {
			h.ChainDist = append(h.ChainDist, 0)
		}
		h.ChainDist[row.ChainPages]++
		h.PerBucket = append(h.PerBucket, row)
	}
	if availTotal > 0 {
		h.AvgFill = float64(usedTotal) / float64(availTotal)
	}
	return h, nil
}

package core

import (
	"fmt"

	"unixhash/internal/buffer"
)

// The heatmap is the live, read-locked view of how the table's keys and
// bytes are spread over its buckets: per-bucket fill factor and
// overflow-chain depth, cheap enough to serve from the telemetry
// endpoint while a workload runs. It deliberately walks only bucket
// chains under the shared lock (the same path Get uses), unlike
// FillStats, whose allocator accounting needs the exclusive lock.

// BucketHeat is one bucket's row in the heatmap.
type BucketHeat struct {
	Bucket     uint32  `json:"bucket"`
	Entries    int     `json:"entries"`
	BigRefs    int     `json:"big_refs,omitempty"`
	ChainPages int     `json:"chain_pages"` // overflow pages past the primary
	Fill       float64 `json:"fill"`        // used/usable bytes over the chain's pages
	// Tag-filter occupancy on the primary page: tags in use (out of the
	// table-wide FilterTagCap) and the degraded states.
	FilterTags      int  `json:"filter_tags"`
	FilterSaturated bool `json:"filter_saturated,omitempty"`
	FilterInexact   bool `json:"filter_inexact,omitempty"`
}

// Heatmap is the full per-bucket report.
type Heatmap struct {
	Buckets  uint32  `json:"buckets"`
	Bsize    int     `json:"bsize"`
	NKeys    int64   `json:"nkeys"`
	MaxChain int     `json:"max_chain_pages"` // deepest overflow chain
	AvgFill  float64 `json:"avg_fill"`
	// ChainDist[i] counts buckets with exactly i overflow pages.
	ChainDist []int        `json:"chain_dist"`
	PerBucket []BucketHeat `json:"per_bucket"`
	// Tag-filter state across the table: per-page tag capacity, mean
	// occupancy (tags in use over capacity), and degraded-bucket counts.
	FilterTagCap    int     `json:"filter_tag_cap"`
	FilterOccupancy float64 `json:"filter_occupancy"`
	FilterSaturated int     `json:"filter_saturated_buckets"`
	FilterInexact   int     `json:"filter_inexact_buckets"`
	// Filter effectiveness so far (lifetime counters): of the Gets that
	// consulted a filter, the fraction answered "absent" with zero chain
	// reads (skip rate) and the fraction that probed and still missed
	// (false-positive rate).
	FilterSkips     int64   `json:"filter_skips"`
	FilterHits      int64   `json:"filter_hits"`
	FilterFPs       int64   `json:"filter_false_positives"`
	FilterSkipRate  float64 `json:"filter_skip_rate"`
	FilterFPRate    float64 `json:"filter_fp_rate"`
	Prefetches      int64   `json:"prefetches"`
	PrefetchedPages int64   `json:"prefetched_pages"`
}

// String renders a compact summary plus a fill histogram for the CLIs.
func (h *Heatmap) String() string {
	s := fmt.Sprintf("buckets=%d keys=%d avgfill=%.0f%% maxchain=%d",
		h.Buckets, h.NKeys, 100*h.AvgFill, h.MaxChain)
	for depth, n := range h.ChainDist {
		if n > 0 {
			s += fmt.Sprintf(" chain[%d]=%d", depth, n)
		}
	}
	s += fmt.Sprintf("\nfilters: occupancy=%.0f%% (cap %d/bucket) saturated=%d inexact=%d skiprate=%.0f%% fprate=%.0f%% prefetched=%d pages",
		100*h.FilterOccupancy, h.FilterTagCap, h.FilterSaturated, h.FilterInexact,
		100*h.FilterSkipRate, 100*h.FilterFPRate, h.PrefetchedPages)
	return s
}

// Heatmap walks every bucket chain under the shared lock and reports
// per-bucket fill and chain depth. Readers and the walk run in parallel;
// writers are excluded for the duration (the same cost as a long scan).
func (t *Table) Heatmap() (*Heatmap, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if err := t.checkOpen(); err != nil {
		return nil, err
	}
	maxB := t.geo.Load()
	h := &Heatmap{
		Buckets:   maxB + 1,
		Bsize:     int(t.hdr.bsize),
		NKeys:     t.nkeysA.Load(),
		PerBucket: make([]BucketHeat, 0, maxB+1),
	}
	usable := int(t.hdr.bsize) - slotBaseFor(int(t.hdr.bsize))
	var usedTotal, availTotal int64
	for b := uint32(0); b <= maxB; b++ {
		row := BucketHeat{Bucket: b}
		used := 0
		pages := 0
		t.latchBucketRead(b)
		err := t.walkChain(b, func(buf *buffer.Buf) (bool, error) {
			if buf.Addr.Ovfl {
				row.ChainPages++
			}
			pages++
			pg := page(buf.Page)
			if !buf.Addr.Ovfl {
				row.FilterTags = pg.fltCount()
				row.FilterSaturated = pg.fltSaturatedBit()
				row.FilterInexact = pg.fltInexactBit()
			}
			used += usable - pg.freeSpace()
			return false, pg.forEach(func(_ int, e entry) bool {
				row.Entries++
				if e.kind == entryBig {
					row.BigRefs++
				}
				return true
			})
		})
		t.stripeFor(b).RUnlock()
		if err != nil {
			return nil, err
		}
		if pages > 0 {
			row.Fill = float64(used) / float64(pages*usable)
		}
		usedTotal += int64(used)
		availTotal += int64(pages * usable)
		if row.ChainPages > h.MaxChain {
			h.MaxChain = row.ChainPages
		}
		for len(h.ChainDist) <= row.ChainPages {
			h.ChainDist = append(h.ChainDist, 0)
		}
		h.ChainDist[row.ChainPages]++
		h.PerBucket = append(h.PerBucket, row)
	}
	if availTotal > 0 {
		h.AvgFill = float64(usedTotal) / float64(availTotal)
	}

	// Filter roll-up: per-page occupancy plus the lifetime skip and
	// false-positive rates from the table's counters.
	h.FilterTagCap = tagCapFor(int(t.hdr.bsize))
	tagsTotal := 0
	for _, row := range h.PerBucket {
		tagsTotal += row.FilterTags
		if row.FilterSaturated {
			h.FilterSaturated++
		}
		if row.FilterInexact {
			h.FilterInexact++
		}
	}
	if n := int(h.Buckets) * h.FilterTagCap; n > 0 {
		h.FilterOccupancy = float64(tagsTotal) / float64(n)
	}
	h.FilterSkips = t.m.filterSkips.Load()
	h.FilterHits = t.m.filterHits.Load()
	h.FilterFPs = t.m.filterFPs.Load()
	if consults := h.FilterSkips + h.FilterHits + h.FilterFPs; consults > 0 {
		h.FilterSkipRate = float64(h.FilterSkips) / float64(consults)
		h.FilterFPRate = float64(h.FilterFPs) / float64(consults)
	}
	h.Prefetches = t.m.prefetches.Load()
	h.PrefetchedPages = t.m.prefetchedPages.Load()
	return h, nil
}

package core

import (
	"encoding/binary"
	"fmt"
)

// Data-page layout. Every primary and (non-big, non-bitmap) overflow page
// is slot-structured, in the style of the 4.4BSD implementation:
//
//	bytes 0..1   uint16 nslots  — number of 16-bit slots in use
//	bytes 2..3   uint16 low     — offset of the lowest used data byte
//	bytes 4..    tag-filter region (see filter.go): count, flags,
//	             chain length, then one tag byte per resident key;
//	             live only on primary bucket pages, zero elsewhere
//	bytes sB..   slot array, two slots per entry (sB = slotBaseFor)
//	...free space...
//	bytes low..  key/data bytes, packed downward from the page end
//
// Entries occupy two consecutive slots each and come in three kinds,
// distinguished by the first slot's value (real offsets are < 32768, so
// values >= 0xFFF0 are available as markers):
//
//	regular pair   [keyOff, dataOff]   key and data bytes are on this page
//	big-pair ref   [markBig, oaddr]    pair lives on a chain of overflow
//	                                   pages starting at oaddr
//	overflow link  [markOvfl, oaddr]   rest of this bucket continues on
//	                                   the overflow page at oaddr; always
//	                                   the last entry if present
//
// For regular pairs the byte regions are delimited by the preceding
// regular pair: pair i's key occupies [keyOff, prevLow) and its data
// [dataOff, keyOff), where prevLow is the data offset of the previous
// regular pair on the page (or the page size for the first).
const (
	pageHdrSize = 4
	slotSize    = 2

	markOvfl = 0xFFFE // second slot holds the chain's next overflow address
	markBig  = 0xFFFD // second slot holds the big-pair chain's first page

	// bigMagic and bitmapMagic occupy the nslots field of raw (non-slot)
	// pages so every page in the file is self-describing.
	bigMagic    = 0xFFFF
	bitmapMagic = 0xFFFC
)

var le = binary.LittleEndian

// page wraps a page buffer with the slot codec. It is a view, not a copy.
type page []byte

func (p page) nslots() int     { return int(le.Uint16(p[0:2])) }
func (p page) setNslots(n int) { le.PutUint16(p[0:2], uint16(n)) }
func (p page) low() int        { return int(le.Uint16(p[2:4])) }
func (p page) setLow(n int)    { le.PutUint16(p[2:4], uint16(n)) }

func (p page) slot(i int) uint16 { return le.Uint16(p[p.slotBase()+i*slotSize:]) }
func (p page) setSlot(i int, v uint16) {
	le.PutUint16(p[p.slotBase()+i*slotSize:], v)
}

// initPage formats a zeroed buffer as an empty data page.
func initPage(p page) {
	p.setNslots(0)
	p.setLow(len(p))
}

// isBigPage reports whether the buffer holds a big-pair chain page.
func isBigPage(p []byte) bool { return len(p) >= 2 && le.Uint16(p[0:2]) == bigMagic }

// isBitmapPage reports whether the buffer holds an overflow-use bitmap.
func isBitmapPage(p []byte) bool { return len(p) >= 2 && le.Uint16(p[0:2]) == bitmapMagic }

// nentries returns the number of key/data entries on the page (regular
// pairs and big-pair refs; the overflow link does not count).
func (p page) nentries() int {
	n := p.nslots() / 2
	if p.ovflLink() != 0 {
		n--
	}
	return n
}

// ovflLink returns the overflow address chained after this page, or 0.
func (p page) ovflLink() oaddr {
	ns := p.nslots()
	if ns >= 2 && p.slot(ns-2) == markOvfl {
		return oaddr(p.slot(ns - 1))
	}
	return 0
}

// setOvflLink appends or rewrites the page's trailing overflow link.
// It requires slot space (4 bytes) if the link is not already present.
func (p page) setOvflLink(o oaddr) error {
	ns := p.nslots()
	if ns >= 2 && p.slot(ns-2) == markOvfl {
		p.setSlot(ns-1, uint16(o))
		return nil
	}
	if p.freeSpace() < 2*slotSize {
		return fmt.Errorf("%w: no slot space for overflow link", ErrCorrupt)
	}
	p.setSlot(ns, markOvfl)
	p.setSlot(ns+1, uint16(o))
	p.setNslots(ns + 2)
	return nil
}

// clearOvflLink removes the trailing overflow link if present.
func (p page) clearOvflLink() {
	ns := p.nslots()
	if ns >= 2 && p.slot(ns-2) == markOvfl {
		p.setNslots(ns - 2)
	}
}

// freeSpace returns the bytes available between the slot array and the
// packed data region.
func (p page) freeSpace() int {
	return p.low() - p.slotBase() - p.nslots()*slotSize
}

// linkReserve is kept free on every page so that a full page can always
// accept a trailing overflow link (two slots).
const linkReserve = 2 * slotSize

// fitsRegular reports whether a regular pair of the given sizes can be
// added to this page, leaving the link reserve intact.
func (p page) fitsRegular(klen, dlen int) bool {
	need := 2*slotSize + klen + dlen
	free := p.freeSpace()
	if p.ovflLink() == 0 {
		free -= linkReserve
	}
	return need <= free
}

// fitsRef reports whether a big-pair ref (slot space only) can be added.
func (p page) fitsRef() bool {
	free := p.freeSpace()
	if p.ovflLink() == 0 {
		free -= linkReserve
	}
	return 2*slotSize <= free
}

// entry describes one entry on a page as returned by entryAt.
type entry struct {
	kind entryKind
	key  []byte // regular: view into the page
	data []byte // regular: view into the page
	ref  oaddr  // big: chain start
}

type entryKind uint8

const (
	entryRegular entryKind = iota
	entryBig
)

// forEach calls fn for each key/data entry on the page in slot order,
// passing the entry index (0-based over entries, not slots). fn may not
// modify the page. Iteration stops early if fn returns false.
func (p page) forEach(fn func(i int, e entry) bool) error {
	ns := p.nslots()
	// Bounds-check the slot array before indexing: on a garbage page
	// (torn write, corruption) nslots can claim more slots than fit.
	if p.slotBase()+ns*slotSize > len(p) {
		return fmt.Errorf("%w: %d slots do not fit on a %d-byte page", ErrCorrupt, ns, len(p))
	}
	if p.low() > len(p) {
		return fmt.Errorf("%w: data low watermark %d beyond page end %d", ErrCorrupt, p.low(), len(p))
	}
	low := len(p)
	idx := 0
	for s := 0; s+1 < ns; s += 2 {
		first := p.slot(s)
		second := p.slot(s + 1)
		switch first {
		case markOvfl:
			if s != ns-2 {
				return fmt.Errorf("%w: overflow link not last on page", ErrCorrupt)
			}
			return p.checkLow(low)
		case markBig:
			if !fn(idx, entry{kind: entryBig, ref: oaddr(second)}) {
				return nil
			}
			idx++
		default:
			ko, do := int(first), int(second)
			if !(pageHdrSize <= do && do <= ko && ko <= low) {
				return fmt.Errorf("%w: bad slot offsets k=%d d=%d low=%d", ErrCorrupt, ko, do, low)
			}
			if !fn(idx, entry{kind: entryRegular, key: p[ko:low], data: p[do:ko]}) {
				return nil
			}
			low = do
			idx++
		}
	}
	return p.checkLow(low)
}

// checkLow verifies the stored low watermark against the lowest pair
// offset an exhaustive slot walk decoded. The field is redundant with
// the slot array, but a later insert trusts it when packing new bytes
// while readers delimit pairs by the neighboring slot offsets — a
// mismatch (a torn write merging a new watermark with old slots) would
// silently corrupt the next key stored on the page.
func (p page) checkLow(low int) error {
	if p.low() != low {
		return fmt.Errorf("%w: low watermark %d, lowest pair offset %d", ErrCorrupt, p.low(), low)
	}
	return nil
}

// entryAt returns entry i (0-based over entries). It walks the slot array
// because regular-pair boundaries depend on preceding entries.
func (p page) entryAt(i int) (entry, error) {
	var out entry
	found := false
	err := p.forEach(func(j int, e entry) bool {
		if j == i {
			out, found = e, true
			return false
		}
		return true
	})
	if err != nil {
		return entry{}, err
	}
	if !found {
		return entry{}, fmt.Errorf("%w: entry %d out of range", ErrCorrupt, i)
	}
	return out, nil
}

// addRegular inserts a regular pair. The caller must have checked
// fitsRegular. The pair is inserted before the trailing overflow link if
// one is present, otherwise appended.
func (p page) addRegular(key, data []byte) {
	ns := p.nslots()
	insert := ns
	if p.ovflLink() != 0 {
		insert = ns - 2
		// Shift the link's two slots up to make room.
		p.setSlot(ns, p.slot(ns-2))
		p.setSlot(ns+1, p.slot(ns-1))
	}
	low := p.low()
	ko := low - len(key)
	do := ko - len(data)
	copy(p[ko:low], key)
	copy(p[do:ko], data)
	p.setSlot(insert, uint16(ko))
	p.setSlot(insert+1, uint16(do))
	p.setNslots(ns + 2)
	p.setLow(do)
}

// addRef inserts a big-pair reference. The caller must have checked
// fitsRef.
func (p page) addRef(ref oaddr) {
	ns := p.nslots()
	insert := ns
	if p.ovflLink() != 0 {
		insert = ns - 2
		p.setSlot(ns, p.slot(ns-2))
		p.setSlot(ns+1, p.slot(ns-1))
	}
	p.setSlot(insert, markBig)
	p.setSlot(insert+1, uint16(ref))
	p.setNslots(ns + 2)
}

// removeEntry deletes entry i (0-based over entries), compacting the data
// region and adjusting later slots.
func (p page) removeEntry(i int) error {
	ns := p.nslots()
	low := len(p)
	idx := 0
	for s := 0; s+1 < ns; s += 2 {
		first := p.slot(s)
		if first == markOvfl {
			break
		}
		isBig := first == markBig
		var do int
		if !isBig {
			do = int(p.slot(s + 1))
		}
		if idx == i {
			if isBig {
				p.shiftSlotsDown(s+2, 2)
				return nil
			}
			// Remove the pair's bytes [do, low) — low here is the pair's
			// upper boundary — by sliding everything below it up.
			size := low - do
			plow := p.low()
			copy(p[plow+size:low], p[plow:do])
			p.setLow(plow + size)
			// Later regular slots move up by size.
			p.shiftSlotsDown(s+2, 2)
			p.adjustOffsets(s, size)
			return nil
		}
		if !isBig {
			low = do
		}
		idx++
	}
	return fmt.Errorf("%w: removeEntry(%d) out of range", ErrCorrupt, i)
}

// shiftSlotsDown moves slots [from, nslots) down by n slot positions and
// shrinks the slot count.
func (p page) shiftSlotsDown(from, n int) {
	ns := p.nslots()
	for s := from; s < ns; s++ {
		p.setSlot(s-n, p.slot(s))
	}
	p.setNslots(ns - n)
}

// adjustOffsets adds size to every regular-pair offset in slots
// [from, nslots): those pairs' bytes were slid up by size.
func (p page) adjustOffsets(from, size int) {
	ns := p.nslots()
	for s := from; s+1 < ns; s += 2 {
		first := p.slot(s)
		if first == markOvfl || first == markBig {
			continue
		}
		p.setSlot(s, first+uint16(size))
		p.setSlot(s+1, p.slot(s+1)+uint16(size))
	}
}

package wal

import "sync"

// CrashDevice journals every mutation so tests can materialize the device
// state after a power cut at any point — the log-file counterpart of
// pagefile.CrashStore. Reads and sizes are served from the live state;
// Materialize replays a prefix of the journal into a fresh MemDevice,
// optionally applying only the first bytes of the next write (a torn
// append).
type CrashDevice struct {
	mu     sync.Mutex
	live   *MemDevice
	events []crashEvent
}

type crashEvent struct {
	kind byte  // 'w' write, 't' truncate, 's' sync
	off  int64 // write offset, or truncate size
	data []byte
}

// NewCrashDevice returns an empty journaling device.
func NewCrashDevice() *CrashDevice {
	return &CrashDevice{live: NewMemDevice()}
}

// ReadAt implements Device.
func (c *CrashDevice) ReadAt(p []byte, off int64) (int, error) { return c.live.ReadAt(p, off) }

// Size implements Device.
func (c *CrashDevice) Size() (int64, error) { return c.live.Size() }

// WriteAt implements Device, journaling the write.
func (c *CrashDevice) WriteAt(p []byte, off int64) (int, error) {
	c.mu.Lock()
	c.events = append(c.events, crashEvent{kind: 'w', off: off, data: cloneBytes(p)})
	c.mu.Unlock()
	return c.live.WriteAt(p, off)
}

// Truncate implements Device, journaling the truncate.
func (c *CrashDevice) Truncate(size int64) error {
	c.mu.Lock()
	c.events = append(c.events, crashEvent{kind: 't', off: size})
	c.mu.Unlock()
	return c.live.Truncate(size)
}

// Sync implements Device. The sync itself is journaled so tests can
// identify durable cut points.
func (c *CrashDevice) Sync() error {
	c.mu.Lock()
	c.events = append(c.events, crashEvent{kind: 's'})
	c.mu.Unlock()
	return nil
}

// Close implements Device.
func (c *CrashDevice) Close() error { return nil }

// Len returns the number of journaled events so far.
func (c *CrashDevice) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.events)
}

// Materialize replays the first n journal events into a fresh MemDevice.
// If tornBytes > 0 and event n is a write, its first tornBytes bytes are
// applied too — the write that was in flight when the power failed.
//
// Note this models a device with no write-back cache reordering: bytes
// from acknowledged writes are assumed present even without an
// intervening sync. Torn tails are modeled explicitly via tornBytes.
func (c *CrashDevice) Materialize(n, tornBytes int) *MemDevice {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n > len(c.events) {
		n = len(c.events)
	}
	dev := NewMemDevice()
	for _, ev := range c.events[:n] {
		applyEvent(dev, ev, len(ev.data))
	}
	if tornBytes > 0 && n < len(c.events) && c.events[n].kind == 'w' {
		ev := c.events[n]
		if tornBytes > len(ev.data) {
			tornBytes = len(ev.data)
		}
		applyEvent(dev, ev, tornBytes)
	}
	return dev
}

// NextWriteLen returns the data length of event n if it is a write, else
// zero — the range of useful tornBytes values for Materialize(n, ...).
func (c *CrashDevice) NextWriteLen(n int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n < len(c.events) && c.events[n].kind == 'w' {
		return len(c.events[n].data)
	}
	return 0
}

func applyEvent(dev *MemDevice, ev crashEvent, nbytes int) {
	switch ev.kind {
	case 'w':
		dev.WriteAt(ev.data[:nbytes], ev.off)
	case 't':
		dev.Truncate(ev.off)
	}
}

var _ Device = (*CrashDevice)(nil)

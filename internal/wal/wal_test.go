package wal

import (
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// openEmpty opens a fresh MemDevice and stamps a header, the way the
// table layer normalizes a new log before first use.
func openEmpty(t *testing.T) (*Log, *MemDevice) {
	t.Helper()
	dev := NewMemDevice()
	l, sr, err := Open(dev, CostModel{}, nil)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if sr.HeaderOK || sr.Torn || len(sr.Txns) != 0 {
		t.Fatalf("fresh device scanned as %+v", sr)
	}
	if err := l.Reset(0, 0); err != nil {
		t.Fatalf("reset: %v", err)
	}
	return l, dev
}

func txnOps(i int) []Op {
	return []Op{
		{Key: fmt.Appendf(nil, "key-%04d", i), Data: fmt.Appendf(nil, "val-%04d", i)},
		{Delete: true, Key: fmt.Appendf(nil, "dead-%04d", i)},
	}
}

func TestLogRoundtrip(t *testing.T) {
	l, dev := openEmpty(t)
	const n = 7
	var lastLSN uint64
	for i := 0; i < n; i++ {
		lsn, end, err := l.Append(txnOps(i))
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if lsn <= lastLSN {
			t.Fatalf("append %d: LSN %d not increasing past %d", i, lsn, lastLSN)
		}
		lastLSN = lsn
		if err := l.SyncTo(end); err != nil {
			t.Fatalf("sync %d: %v", i, err)
		}
	}
	if got := l.LastLSN(); got != lastLSN {
		t.Fatalf("LastLSN %d, want %d", got, lastLSN)
	}

	re, sr, err := Open(NewMemDeviceFrom(dev.Bytes()), CostModel{}, nil)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if !sr.HeaderOK || sr.Torn {
		t.Fatalf("reopen scan: %+v", sr)
	}
	if len(sr.Txns) != n || sr.LastLSN != lastLSN {
		t.Fatalf("reopen found %d txns (last %d), want %d (last %d)", len(sr.Txns), sr.LastLSN, n, lastLSN)
	}
	for i, tx := range sr.Txns {
		want := txnOps(i)
		if len(tx.Ops) != len(want) {
			t.Fatalf("txn %d: %d ops, want %d", i, len(tx.Ops), len(want))
		}
		for j := range want {
			got := tx.Ops[j]
			if got.Delete != want[j].Delete || !bytes.Equal(got.Key, want[j].Key) || !bytes.Equal(got.Data, want[j].Data) {
				t.Fatalf("txn %d op %d: got %+v want %+v", i, j, got, want[j])
			}
		}
	}
	// Appends after a reopen stay monotonic.
	lsn, _, err := re.Append(txnOps(99))
	if err != nil {
		t.Fatalf("append after reopen: %v", err)
	}
	if lsn <= lastLSN {
		t.Fatalf("post-reopen LSN %d not past %d", lsn, lastLSN)
	}
}

// NewMemDeviceFrom builds a MemDevice preloaded with b (test helper).
func NewMemDeviceFrom(b []byte) *MemDevice {
	d := NewMemDevice()
	d.WriteAt(b, 0)
	return d
}

// TestTornTail cuts the device at every byte length and verifies the
// scan degrades monotonically: some prefix of the committed transactions,
// never an error, never a phantom commit.
func TestTornTail(t *testing.T) {
	l, dev := openEmpty(t)
	const n = 4
	ends := make([]int64, 0, n) // valid end after each commit
	for i := 0; i < n; i++ {
		_, end, err := l.Append(txnOps(i))
		if err != nil {
			t.Fatalf("append: %v", err)
		}
		ends = append(ends, end)
	}
	full := dev.Bytes()
	for cut := 0; cut <= len(full); cut++ {
		_, sr, err := Open(NewMemDeviceFrom(full[:cut]), CostModel{}, nil)
		if err != nil {
			t.Fatalf("cut %d: open: %v", cut, err)
		}
		// The replayable transactions are exactly those whose commit
		// frame fits inside the cut.
		want := 0
		for _, e := range ends {
			if int64(cut) >= e {
				want++
			}
		}
		if len(sr.Txns) != want {
			t.Fatalf("cut %d: %d txns, want %d", cut, len(sr.Txns), want)
		}
		if want > 0 && sr.ValidEnd != ends[want-1] {
			t.Fatalf("cut %d: ValidEnd %d, want %d", cut, sr.ValidEnd, ends[want-1])
		}
		if wantTorn := int64(cut) != sr.ValidEnd; sr.Torn != wantTorn {
			t.Fatalf("cut %d: Torn=%v, want %v", cut, sr.Torn, wantTorn)
		}
	}
}

// TestCorruptFrame flips one byte in an early frame: the scan must stop
// there, keeping the transactions before it and dropping everything after
// (which is no longer provably ordered).
func TestCorruptFrame(t *testing.T) {
	l, dev := openEmpty(t)
	var ends []int64
	for i := 0; i < 3; i++ {
		_, end, err := l.Append(txnOps(i))
		if err != nil {
			t.Fatalf("append: %v", err)
		}
		ends = append(ends, end)
	}
	full := dev.Bytes()
	// A byte inside the second transaction's frames.
	full[ends[0]+10] ^= 0xff
	_, sr, err := Open(NewMemDeviceFrom(full), CostModel{}, nil)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if len(sr.Txns) != 1 || !sr.Torn || sr.ValidEnd != ends[0] {
		t.Fatalf("after corruption: %d txns, torn=%v, end=%d; want 1, true, %d",
			len(sr.Txns), sr.Torn, sr.ValidEnd, ends[0])
	}
}

// TestCommitCountMismatch hand-corrupts a commit frame's op count; the
// commit must not be honored.
func TestCommitCountMismatch(t *testing.T) {
	l, dev := openEmpty(t)
	if _, _, err := l.Append(txnOps(0)); err != nil {
		t.Fatalf("append: %v", err)
	}
	full := dev.Bytes()
	// The commit frame is the last one: length u32 | crc | u64 lsn | type | u32 nops.
	commitOff := len(full) - (frameHdrSize + recFixedSize + 4)
	payload := full[commitOff+frameHdrSize:]
	le.PutUint32(payload[recFixedSize:], 7) // claim 7 ops
	le.PutUint32(full[commitOff+4:], crc32.ChecksumIEEE(payload))
	_, sr, err := Open(NewMemDeviceFrom(full), CostModel{}, nil)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if len(sr.Txns) != 0 || !sr.Torn {
		t.Fatalf("mismatched commit honored: %+v", sr)
	}
}

// TestStaleRecords simulates leftovers of an older log generation: a
// record whose LSN is not past the header's checkpoint must stop the scan.
func TestStaleRecords(t *testing.T) {
	l, dev := openEmpty(t)
	lsn, _, err := l.Append(txnOps(0))
	if err != nil {
		t.Fatalf("append: %v", err)
	}
	full := dev.Bytes()
	// Stamp a header claiming the checkpoint is already past this commit.
	hb := make([]byte, HeaderSize)
	le.PutUint32(hb[0:], logMagic)
	le.PutUint32(hb[4:], logVersion)
	le.PutUint64(hb[8:], lsn) // checkpoint == the commit's LSN
	le.PutUint64(hb[16:], 1)
	le.PutUint32(hb[HeaderSize-4:], crc32.ChecksumIEEE(hb[:HeaderSize-4]))
	copy(full, hb)
	re, sr, err := Open(NewMemDeviceFrom(full), CostModel{}, nil)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if len(sr.Txns) != 0 || sr.LastLSN != 0 {
		t.Fatalf("stale records replayed: %+v", sr)
	}
	// And the allocator must still move past them.
	nlsn, _, err := re.Append(txnOps(1))
	if err != nil {
		t.Fatalf("append: %v", err)
	}
	if nlsn <= lsn {
		t.Fatalf("LSN %d not past stale %d", nlsn, lsn)
	}
}

func TestHeaderDamage(t *testing.T) {
	l, dev := openEmpty(t)
	if _, _, err := l.Append(txnOps(0)); err != nil {
		t.Fatalf("append: %v", err)
	}
	full := dev.Bytes()

	// CRC-damaged header: treated as empty (power cut during Reset).
	bad := append([]byte(nil), full...)
	bad[8] ^= 1
	_, sr, err := Open(NewMemDeviceFrom(bad), CostModel{}, nil)
	if err != nil || sr.HeaderOK || len(sr.Txns) != 0 || !sr.Torn {
		t.Fatalf("damaged header: sr=%+v err=%v", sr, err)
	}

	// CRC-valid but wrong version: a foreign file, fail loudly.
	bad = append([]byte(nil), full...)
	le.PutUint32(bad[4:], 99)
	le.PutUint32(bad[HeaderSize-4:], crc32.ChecksumIEEE(bad[:HeaderSize-4]))
	_, _, err = Open(NewMemDeviceFrom(bad), CostModel{}, nil)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("wrong version: err=%v, want ErrCorrupt", err)
	}
}

func TestReset(t *testing.T) {
	l, dev := openEmpty(t)
	var lastLSN uint64
	for i := 0; i < 3; i++ {
		lsn, end, err := l.Append(txnOps(i))
		if err != nil {
			t.Fatalf("append: %v", err)
		}
		lastLSN = lsn
		if err := l.SyncTo(end); err != nil {
			t.Fatalf("sync: %v", err)
		}
	}
	if err := l.Reset(lastLSN, 5); err != nil {
		t.Fatalf("reset: %v", err)
	}
	if l.Size() != HeaderSize || l.LastLSN() != 0 {
		t.Fatalf("after reset: size=%d lastLSN=%d", l.Size(), l.LastLSN())
	}
	_, sr, err := Open(NewMemDeviceFrom(dev.Bytes()), CostModel{}, nil)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if !sr.HeaderOK || sr.CheckpointLSN != lastLSN || sr.Epoch != 5 || len(sr.Txns) != 0 || sr.Torn {
		t.Fatalf("reopen after reset: %+v", sr)
	}
	// New appends start past the checkpoint.
	lsn, _, err := l.Append(txnOps(9))
	if err != nil {
		t.Fatalf("append: %v", err)
	}
	if lsn <= lastLSN {
		t.Fatalf("post-reset LSN %d not past checkpoint %d", lsn, lastLSN)
	}
}

func TestEnsureLSN(t *testing.T) {
	l, _ := openEmpty(t)
	l.EnsureLSN(1000)
	lsn, _, err := l.Append(txnOps(0))
	if err != nil {
		t.Fatalf("append: %v", err)
	}
	if lsn <= 1000 {
		t.Fatalf("LSN %d not past 1000", lsn)
	}
}

// blockingDev blocks its first Sync until released, then fails it — and
// every later Sync — with syncErr. It counts Sync attempts.
type blockingDev struct {
	*MemDevice
	entered chan struct{} // closed when the first Sync is in flight
	release chan struct{}
	once    sync.Once
	syncs   atomic.Int64
}

var errDevSync = errors.New("simulated fsync failure")

func (d *blockingDev) Sync() error {
	d.syncs.Add(1)
	d.once.Do(func() {
		close(d.entered)
		<-d.release
	})
	return errDevSync
}

// TestSyncToFollowerError pins the group-fsync error contract: followers
// that waited out a round whose leader's fsync failed must see that
// error, not retry as fresh leaders against the failing device.
func TestSyncToFollowerError(t *testing.T) {
	dev := &blockingDev{
		MemDevice: NewMemDevice(),
		entered:   make(chan struct{}),
		release:   make(chan struct{}),
	}
	l, _, err := Open(dev, CostModel{}, nil)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	// Reset would Sync; seed the size by hand instead.
	l.mu.Lock()
	l.size = HeaderSize
	l.mu.Unlock()

	_, end, err := l.Append(txnOps(0))
	if err != nil {
		t.Fatalf("append: %v", err)
	}

	const followers = 8
	errs := make(chan error, followers+1)
	go func() { errs <- l.SyncTo(end) }() // leader
	<-dev.entered
	for i := 0; i < followers; i++ {
		go func() { errs <- l.SyncTo(end) }()
	}
	// Give the followers time to enqueue on the round, then fail it.
	time.Sleep(50 * time.Millisecond)
	close(dev.release)

	for i := 0; i < followers+1; i++ {
		if err := <-errs; !errors.Is(err, errDevSync) {
			t.Fatalf("waiter %d: err=%v, want %v", i, err, errDevSync)
		}
	}
	if n := dev.syncs.Load(); n > 3 {
		t.Fatalf("%d device fsync attempts; followers dog-piled onto the failing device", n)
	}
}

// failWriteDev fails WriteAt after a set number of successful calls.
type failWriteDev struct {
	*MemDevice
	allow    int
	failTrun bool
}

var errDevWrite = errors.New("simulated write failure")

func (d *failWriteDev) WriteAt(p []byte, off int64) (int, error) {
	if d.allow <= 0 {
		return 0, errDevWrite
	}
	d.allow--
	return d.MemDevice.WriteAt(p, off)
}

func (d *failWriteDev) Truncate(size int64) error {
	if d.failTrun {
		return errors.New("simulated truncate failure")
	}
	return d.MemDevice.Truncate(size)
}

func TestAppendFailureRepairsTail(t *testing.T) {
	dev := &failWriteDev{MemDevice: NewMemDevice(), allow: 3}
	l, _, err := Open(dev, CostModel{}, nil)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if err := l.Reset(0, 0); err != nil { // one write
		t.Fatalf("reset: %v", err)
	}
	if _, _, err := l.Append(txnOps(0)); err != nil { // one write
		t.Fatalf("append: %v", err)
	}
	sizeBefore := l.Size()
	if _, _, err := l.Append(txnOps(1)); err == nil { // fails after one more
		if _, _, err := l.Append(txnOps(2)); err == nil {
			t.Fatal("appends kept succeeding; fault never hit")
		}
	}
	// The tail was repaired: the log still works and holds only intact
	// transactions.
	if l.Size() > sizeBefore+1024 {
		t.Fatalf("size grew past the failed append: %d > %d", l.Size(), sizeBefore)
	}
	dev.allow = 1 << 30
	if _, _, err := l.Append(txnOps(3)); err != nil {
		t.Fatalf("append after repaired failure: %v", err)
	}
	_, sr, err := Open(NewMemDeviceFrom(dev.Bytes()), CostModel{}, nil)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	for _, tx := range sr.Txns {
		if len(tx.Ops) != 2 {
			t.Fatalf("reopened txn has %d ops: %+v", len(tx.Ops), tx)
		}
	}
}

func TestAppendFailurePoisonsWhenUnrepairable(t *testing.T) {
	dev := &failWriteDev{MemDevice: NewMemDevice(), allow: 2}
	l, _, err := Open(dev, CostModel{}, nil)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if err := l.Reset(0, 0); err != nil {
		t.Fatalf("reset: %v", err)
	}
	dev.failTrun = true // the repair path is now unavailable
	if _, _, err := l.Append(txnOps(0)); err != nil {
		t.Fatalf("append: %v", err)
	}
	if _, _, err := l.Append(txnOps(1)); err == nil {
		t.Fatal("append succeeded past the fault")
	}
	if _, _, err := l.Append(txnOps(2)); !errors.Is(err, ErrBroken) {
		t.Fatalf("append on poisoned log: err=%v, want ErrBroken", err)
	}
}

func TestFileDevice(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.wal")
	dev, err := OpenFileDevice(path)
	if err != nil {
		t.Fatalf("open device: %v", err)
	}
	l, _, err := Open(dev, CostModel{}, nil)
	if err != nil {
		t.Fatalf("open log: %v", err)
	}
	if err := l.Reset(0, 0); err != nil {
		t.Fatalf("reset: %v", err)
	}
	var last uint64
	for i := 0; i < 5; i++ {
		lsn, end, err := l.Append(txnOps(i))
		if err != nil {
			t.Fatalf("append: %v", err)
		}
		last = lsn
		if err := l.SyncTo(end); err != nil {
			t.Fatalf("sync: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	dev2, err := OpenFileDevice(path)
	if err != nil {
		t.Fatalf("reopen device: %v", err)
	}
	l2, sr, err := Open(dev2, CostModel{}, nil)
	if err != nil {
		t.Fatalf("reopen log: %v", err)
	}
	defer l2.Close()
	if len(sr.Txns) != 5 || sr.LastLSN != last || sr.Torn {
		t.Fatalf("file reopen: %+v", sr)
	}
}

func TestStatsAndCost(t *testing.T) {
	dev := NewMemDevice()
	l, _, err := Open(dev, CostModel{AppendCost: 2 * time.Millisecond, SyncCost: time.Millisecond}, nil)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if err := l.Reset(0, 0); err != nil {
		t.Fatalf("reset: %v", err)
	}
	_, end, err := l.Append(txnOps(0))
	if err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := l.SyncTo(end); err != nil {
		t.Fatalf("sync: %v", err)
	}
	if err := l.SyncTo(end); err != nil { // already covered: a join
		t.Fatalf("sync join: %v", err)
	}
	st := l.Stats()
	if st.Appends != 1 || st.Fsyncs != 1 || st.FsyncJoins != 1 || st.Resets != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if st.AppendedBytes <= 0 {
		t.Fatalf("no appended bytes accounted: %+v", st)
	}
	// 1 reset (2+1ms) + 1 append (2ms) + 1 fsync (1ms) = 6ms simulated.
	if want := 6 * time.Millisecond; st.IOTime != want {
		t.Fatalf("IOTime %v, want %v", st.IOTime, want)
	}
}

// TestCrashDevice exercises the journal/materialize used by the WAL
// crash matrix.
func TestCrashDevice(t *testing.T) {
	cd := NewCrashDevice()
	l, _, err := Open(cd, CostModel{}, nil)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if err := l.Reset(0, 0); err != nil {
		t.Fatalf("reset: %v", err)
	}
	for i := 0; i < 3; i++ {
		_, end, err := l.Append(txnOps(i))
		if err != nil {
			t.Fatalf("append: %v", err)
		}
		if err := l.SyncTo(end); err != nil {
			t.Fatalf("sync: %v", err)
		}
	}
	total := cd.Len()
	seen := -1
	for n := 0; n <= total; n++ {
		for _, torn := range []int{0, 1, cd.NextWriteLen(n) / 2} {
			if torn > 0 && cd.NextWriteLen(n) == 0 {
				continue
			}
			_, sr, err := Open(cd.Materialize(n, torn), CostModel{}, nil)
			if err != nil {
				t.Fatalf("cut %d torn %d: %v", n, torn, err)
			}
			if torn == 0 {
				if len(sr.Txns) < seen {
					t.Fatalf("cut %d: replayable txns shrank from %d to %d", n, seen, len(sr.Txns))
				}
				seen = len(sr.Txns)
			}
			if len(sr.Txns) > 3 {
				t.Fatalf("cut %d torn %d: phantom txns: %d", n, torn, len(sr.Txns))
			}
		}
	}
	if seen != 3 {
		t.Fatalf("full journal replay found %d txns, want 3", seen)
	}
}

func TestConcurrentCommitters(t *testing.T) {
	l, dev := openEmpty(t)
	const (
		workers = 8
		each    = 50
	)
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				_, end, err := l.Append(txnOps(w*1000 + i))
				if err != nil {
					errc <- err
					return
				}
				if err := l.SyncTo(end); err != nil {
					errc <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatalf("worker: %v", err)
	}
	_, sr, err := Open(NewMemDeviceFrom(dev.Bytes()), CostModel{}, nil)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if len(sr.Txns) != workers*each || sr.Torn {
		t.Fatalf("reopen found %d txns (torn=%v), want %d", len(sr.Txns), sr.Torn, workers*each)
	}
	st := l.Stats()
	if st.Fsyncs+st.FsyncJoins < workers*each {
		t.Fatalf("fsyncs %d + joins %d < %d commits", st.Fsyncs, st.FsyncJoins, workers*each)
	}
}

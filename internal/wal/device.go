package wal

import (
	"fmt"
	"io"
	"os"
	"sync"
)

// Device is the byte-granular append target a Log writes to. Unlike the
// page stores in internal/pagefile, a log device is addressed in bytes:
// records are variable-length and always appended at the tail, so the
// natural device contract is positioned read/write plus truncate. All
// implementations must be safe for concurrent use.
type Device interface {
	// ReadAt fills p from offset off, returning io.EOF semantics like
	// io.ReaderAt.
	ReadAt(p []byte, off int64) (int, error)
	// WriteAt writes p at offset off, extending the device if needed.
	WriteAt(p []byte, off int64) (int, error)
	// Size reports the current device length in bytes.
	Size() (int64, error)
	// Truncate cuts (or zero-extends) the device to size bytes.
	Truncate(size int64) error
	// Sync forces written bytes to stable storage.
	Sync() error
	// Close releases the device.
	Close() error
}

// ---------------------------------------------------------------------------
// FileDevice

// FileDevice is a Device backed by an operating-system file — the
// table's sibling ".wal" file in the normal configuration.
type FileDevice struct {
	mu     sync.Mutex
	f      *os.File
	closed bool
}

// OpenFileDevice opens (creating if necessary) the log file at path.
func OpenFileDevice(path string) (*FileDevice, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	return &FileDevice{f: f}, nil
}

func (d *FileDevice) checkOpen() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return os.ErrClosed
	}
	return nil
}

// ReadAt implements Device.
func (d *FileDevice) ReadAt(p []byte, off int64) (int, error) {
	if err := d.checkOpen(); err != nil {
		return 0, err
	}
	return d.f.ReadAt(p, off)
}

// WriteAt implements Device.
func (d *FileDevice) WriteAt(p []byte, off int64) (int, error) {
	if err := d.checkOpen(); err != nil {
		return 0, err
	}
	return d.f.WriteAt(p, off)
}

// Size implements Device.
func (d *FileDevice) Size() (int64, error) {
	if err := d.checkOpen(); err != nil {
		return 0, err
	}
	fi, err := d.f.Stat()
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

// Truncate implements Device.
func (d *FileDevice) Truncate(size int64) error {
	if err := d.checkOpen(); err != nil {
		return err
	}
	return d.f.Truncate(size)
}

// Sync implements Device.
func (d *FileDevice) Sync() error {
	if err := d.checkOpen(); err != nil {
		return err
	}
	return d.f.Sync()
}

// Close implements Device. The file is synced first, mirroring the page
// stores' close contract.
func (d *FileDevice) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	d.mu.Unlock()
	err := d.f.Sync()
	if cerr := d.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// ---------------------------------------------------------------------------
// MemDevice

// MemDevice is a Device kept entirely in memory, used by memory-resident
// tables, benchmarks and tests.
type MemDevice struct {
	mu  sync.Mutex
	buf []byte
}

// NewMemDevice creates an empty in-memory log device.
func NewMemDevice() *MemDevice { return &MemDevice{} }

// ReadAt implements Device.
func (d *MemDevice) ReadAt(p []byte, off int64) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if off < 0 {
		return 0, fmt.Errorf("wal: negative read offset %d", off)
	}
	if off >= int64(len(d.buf)) {
		return 0, io.EOF
	}
	n := copy(p, d.buf[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// WriteAt implements Device.
func (d *MemDevice) WriteAt(p []byte, off int64) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if off < 0 {
		return 0, fmt.Errorf("wal: negative write offset %d", off)
	}
	end := off + int64(len(p))
	if end > int64(len(d.buf)) {
		grown := make([]byte, end)
		copy(grown, d.buf)
		d.buf = grown
	}
	copy(d.buf[off:end], p)
	return len(p), nil
}

// Size implements Device.
func (d *MemDevice) Size() (int64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return int64(len(d.buf)), nil
}

// Truncate implements Device.
func (d *MemDevice) Truncate(size int64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	switch {
	case size < 0:
		return fmt.Errorf("wal: negative truncate size %d", size)
	case size <= int64(len(d.buf)):
		d.buf = d.buf[:size]
	default:
		grown := make([]byte, size)
		copy(grown, d.buf)
		d.buf = grown
	}
	return nil
}

// Sync implements Device (a memory device has nothing to flush).
func (d *MemDevice) Sync() error { return nil }

// Close implements Device.
func (d *MemDevice) Close() error { return nil }

// Bytes returns a copy of the device contents, for tests.
func (d *MemDevice) Bytes() []byte {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]byte, len(d.buf))
	copy(out, d.buf)
	return out
}

var (
	_ Device = (*FileDevice)(nil)
	_ Device = (*MemDevice)(nil)
)

// Package wal implements the append-only redo log behind the hash
// package's atomic transactions.
//
// The log makes a single durable Put cost one sequential append plus one
// log fsync instead of the table's full two-phase Sync (FlushAll of every
// dirty page, a data fsync, a header rewrite and a second fsync). Only
// committed transactions are ever appended: the caller buffers intent
// records and hands the whole batch to Append, which writes the op frames
// and the commit frame in one contiguous WriteAt. A power cut during the
// append therefore always leaves a cleanly torn tail — there is no window
// where a commit frame lands without its ops.
//
// Frame format (all little-endian):
//
//	u32 length   // of the payload that follows
//	u32 crc32    // IEEE, over the payload
//	payload:
//	  u64 lsn    // strictly increasing across the whole log
//	  u8  type   // recPut | recDelete | recCommit
//	  body       // recPut: u32 klen | key | data
//	             // recDelete: key
//	             // recCommit: u32 nops (frames since the previous commit)
//
// The file starts with a fixed header (magic, version, the checkpoint LSN
// the log was last reset at, the table's sync epoch at that reset, CRC32)
// rewritten only by Reset. Recovery scans forward from the header and
// stops at the first short, CRC-damaged, non-monotonic or malformed
// frame: everything before the last valid commit frame is replayable,
// everything after is a torn tail and is discarded.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"unixhash/internal/metrics"
	"unixhash/internal/oplog"
	"unixhash/internal/trace"
)

const (
	logMagic   = 0x1a6c09 // "log" in spirit; distinct from the table magic
	logVersion = 1

	// HeaderSize is the fixed log file header: magic, version,
	// checkpoint LSN, table sync epoch, CRC32.
	HeaderSize = 4 + 4 + 8 + 8 + 4

	frameHdrSize = 4 + 4 // length, crc32
	recFixedSize = 8 + 1 // lsn, type

	// maxRecLen bounds a single payload; anything larger in a length
	// field is garbage, not a record.
	maxRecLen = 1 << 28
)

// Record types.
const (
	recPut    = 1
	recDelete = 2
	recCommit = 3
)

var le = binary.LittleEndian

var (
	// ErrCorrupt reports a log file that is structurally valid enough to
	// read but inconsistent with itself or with the table — unlike a torn
	// tail, this is never the result of a clean power cut.
	ErrCorrupt = errors.New("wal: log corrupt")
	// ErrBroken reports a log whose device failed in a way that could
	// not be repaired in place; further appends are refused so that no
	// commit is acknowledged behind an unreadable gap.
	ErrBroken = errors.New("wal: log device failed; commits refused")
)

// CostModel charges simulated latencies to log I/O, mirroring
// pagefile.CostModel so benchmarks can compare a seek-bound page flush
// against a sequential log append on the same footing. Zero values charge
// nothing.
type CostModel struct {
	// AppendCost per Append call: a sequential write at the tail, no
	// seek, so typically one to two orders of magnitude below a random
	// page write.
	AppendCost time.Duration
	// SyncCost per device fsync: settles a short sequential tail, so
	// cheaper than fsyncing scattered dirty pages.
	SyncCost time.Duration
	// Sleep actually sleeps for the simulated durations when true;
	// otherwise they are only accounted in Stats.IOTime.
	Sleep bool
}

// Stats counts log activity. IOTime accumulates the simulated CostModel
// charges, not wall-clock time.
type Stats struct {
	Appends       int64
	AppendedBytes int64
	Fsyncs        int64
	FsyncJoins    int64
	Resets        int64
	Errors        int64
	IOTime        time.Duration
}

// Op is one logical mutation inside a transaction.
type Op struct {
	Delete bool
	Key    []byte
	Data   []byte // nil for deletes
}

// Txn is a committed transaction recovered from the log.
type Txn struct {
	LSN uint64 // the commit frame's LSN
	Ops []Op
}

// ScanResult describes what Open found in the device.
type ScanResult struct {
	// HeaderOK is false when the file header is missing, short or
	// CRC-damaged. A torn header can only be the result of a power cut
	// during Reset — which runs only after the table header was durably
	// stamped with the same checkpoint — so the caller may treat the log
	// as empty.
	HeaderOK bool
	// CheckpointLSN and Epoch are the values stamped at the last Reset
	// (zero when HeaderOK is false).
	CheckpointLSN uint64
	Epoch         uint64
	// Txns lists every committed transaction in LSN order.
	Txns []Txn
	// LastLSN is the commit LSN of the last committed transaction, or
	// zero if none.
	LastLSN uint64
	// ValidEnd is the byte offset just past the last committed frame;
	// bytes beyond it are a torn tail or uncommitted ops.
	ValidEnd int64
	// Torn is true when the device held bytes past ValidEnd.
	Torn bool
}

// Log is an append-only redo log over a Device. All methods are safe for
// concurrent use; Append serializes writers while SyncTo runs the same
// leader/follower group-fsync protocol as the table's GroupCommit, so
// concurrent committers share one device fsync.
type Log struct {
	dev  Device
	cost CostModel
	tr   *trace.Tracer

	mu            sync.Mutex // serializes Append/Reset and guards the fields below
	size          int64      // valid end of the log; next append offset
	nextLSN       uint64
	checkpointLSN uint64
	epoch         uint64
	broken        error
	buf           []byte // frame build scratch, reused across appends

	lastLSN atomic.Uint64 // commit LSN of the last append (or scan)

	// sc implements the offset-based group fsync: a leader syncs the
	// device and publishes the synced size; followers whose target
	// offset is already covered return without touching the device. A
	// follower that slept through a failed round reports the leader's
	// error instead of dog-piling onto a failing device.
	sc struct {
		mu      sync.Mutex
		cond    *sync.Cond
		syncing bool
		synced  int64
		round   uint64
		lastErr error
	}

	stMu sync.Mutex
	st   Stats
}

// Open scans the device and returns a Log positioned to append after the
// last committed transaction. Torn tails are not erased — the size is
// simply rewound so the next append overwrites them. tr may be nil.
func Open(dev Device, cost CostModel, tr *trace.Tracer) (*Log, ScanResult, error) {
	l := &Log{dev: dev, cost: cost, tr: tr}
	l.sc.cond = sync.NewCond(&l.sc.mu)
	sr, err := l.scan()
	if err != nil {
		return nil, sr, err
	}
	l.size = sr.ValidEnd
	l.checkpointLSN = sr.CheckpointLSN
	l.epoch = sr.Epoch
	l.lastLSN.Store(sr.LastLSN)
	l.sc.synced = sr.ValidEnd // everything already on the device predates us
	return l, sr, nil
}

// scan walks the device from the header forward, populating a ScanResult
// and leaving l.nextLSN one past the highest LSN it saw (valid or not, so
// appends after a torn tail stay monotonic).
func (l *Log) scan() (ScanResult, error) {
	var sr ScanResult
	l.nextLSN = 1
	size, err := l.dev.Size()
	if err != nil {
		return sr, err
	}
	if size < HeaderSize {
		// Missing or short header: an empty device, or a power cut
		// during Reset's header write. Either way there is nothing
		// replayable here.
		sr.Torn = size > 0
		return sr, nil
	}
	hb := make([]byte, HeaderSize)
	if _, err := readFull(l.dev, hb, 0); err != nil {
		return sr, err
	}
	if le.Uint32(hb[HeaderSize-4:]) != crc32.ChecksumIEEE(hb[:HeaderSize-4]) ||
		le.Uint32(hb[0:]) != logMagic {
		// Damaged or foreign header: same treatment as a short one.
		sr.Torn = true
		return sr, nil
	}
	if v := le.Uint32(hb[4:]); v != logVersion {
		return sr, fmt.Errorf("%w: log version %d, want %d", ErrCorrupt, v, logVersion)
	}
	sr.HeaderOK = true
	sr.CheckpointLSN = le.Uint64(hb[8:])
	sr.Epoch = le.Uint64(hb[16:])
	sr.ValidEnd = HeaderSize
	lastLSN := sr.CheckpointLSN
	if lastLSN >= l.nextLSN {
		l.nextLSN = lastLSN + 1
	}

	var pending []Op
	var fh [frameHdrSize]byte
	payload := make([]byte, 0, 256)
	off := int64(HeaderSize)
scan:
	for off+frameHdrSize <= size {
		if _, err := readFull(l.dev, fh[:], off); err != nil {
			return sr, err
		}
		ln := le.Uint32(fh[0:])
		if ln < recFixedSize || ln > maxRecLen || off+frameHdrSize+int64(ln) > size {
			break
		}
		if cap(payload) < int(ln) {
			payload = make([]byte, ln)
		}
		payload = payload[:ln]
		if _, err := readFull(l.dev, payload, off+frameHdrSize); err != nil {
			return sr, err
		}
		if crc32.ChecksumIEEE(payload) != le.Uint32(fh[4:]) {
			break
		}
		lsn := le.Uint64(payload[0:])
		if lsn <= lastLSN {
			// Non-monotonic LSN: leftovers of an older log generation
			// beyond a shrunken valid region. Not replayable.
			break
		}
		body := payload[recFixedSize:]
		switch payload[8] {
		case recPut:
			if len(body) < 4 {
				break scan
			}
			klen := le.Uint32(body)
			if klen == 0 || int64(4+klen) > int64(len(body)) {
				break scan
			}
			pending = append(pending, Op{
				Key:  cloneBytes(body[4 : 4+klen]),
				Data: cloneBytes(body[4+klen:]),
			})
		case recDelete:
			if len(body) == 0 {
				break scan
			}
			pending = append(pending, Op{Delete: true, Key: cloneBytes(body)})
		case recCommit:
			if len(body) != 4 || int(le.Uint32(body)) != len(pending) {
				break scan
			}
			sr.Txns = append(sr.Txns, Txn{LSN: lsn, Ops: pending})
			pending = nil
			sr.LastLSN = lsn
			sr.ValidEnd = off + frameHdrSize + int64(ln)
		default:
			break scan
		}
		lastLSN = lsn
		if lsn >= l.nextLSN {
			l.nextLSN = lsn + 1
		}
		off += frameHdrSize + int64(ln)
	}
	sr.Torn = sr.ValidEnd < size
	return sr, nil
}

// Append writes one transaction — every op frame plus the commit frame —
// in a single contiguous device write at the current tail, and returns
// the commit LSN and the end offset to pass to SyncTo. The transaction is
// not durable until SyncTo (or Sync) covers that offset. On a write
// error the tail is truncated back so the failed bytes cannot entomb a
// later commit behind a garbage gap; if even that fails the log is
// poisoned and all further appends return ErrBroken.
func (l *Log) Append(ops []Op) (commitLSN uint64, end int64, err error) {
	if len(ops) == 0 {
		return 0, 0, errors.New("wal: empty transaction")
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.broken != nil {
		return 0, 0, l.broken
	}
	buf := l.buf[:0]
	for i := range ops {
		buf = appendFrame(buf, l.nextLSN, &ops[i])
		l.nextLSN++
	}
	commitLSN = l.nextLSN
	l.nextLSN++
	var body [4]byte
	le.PutUint32(body[:], uint32(len(ops)))
	buf = appendRawFrame(buf, commitLSN, recCommit, body[:])
	l.buf = buf[:0]

	n, werr := l.dev.WriteAt(buf, l.size)
	if werr == nil && n != len(buf) {
		werr = io.ErrShortWrite
	}
	if werr != nil {
		l.countError()
		// A partial frame at the tail is harmless to recovery (the CRC
		// stops the scan there) but a *later* successful append would
		// start past it and strand its commit behind the garbage. Cut
		// the tail back; if the device cannot even do that, refuse
		// further commits.
		if terr := l.dev.Truncate(l.size); terr != nil {
			l.broken = fmt.Errorf("%w: append failed (%v) and truncate failed (%v)", ErrBroken, werr, terr)
		}
		return 0, 0, werr
	}
	l.size += int64(len(buf))
	l.lastLSN.Store(commitLSN)
	l.charge(l.cost.AppendCost, func(s *Stats) {
		s.Appends++
		s.AppendedBytes += int64(len(buf))
	})
	if l.tr != nil {
		l.tr.Emit(trace.EvWalAppend, commitLSN, uint64(len(ops)), uint64(len(buf)), 0)
	}
	return commitLSN, l.size, nil
}

// SyncTo makes every byte below end durable, sharing one device fsync
// among concurrent committers: the first caller in becomes the leader and
// fsyncs for everyone who arrived while it ran; followers covered by the
// published synced offset return without an fsync of their own. A
// follower that waited out a round whose leader failed gets the leader's
// error — retrying as a fresh leader against a device that just refused
// an fsync would only pile errors onto a poisoned store.
func (l *Log) SyncTo(end int64) error { return l.SyncToOp(nil, end) }

// SyncToOp is SyncTo with op-ledger attribution: a caller whose offset
// is covered by another committer's fsync (before or after parking on
// the group-commit round) charges the follower-join phase; the caller
// that performs the device fsync charges the leader phase, including
// any time it first spent parked. A nil ledger is exactly SyncTo.
func (l *Log) SyncToOp(led *oplog.Ledger, end int64) error {
	var st int64
	if led != nil {
		st = oplog.Clock()
	}
	l.sc.mu.Lock()
	for {
		if l.sc.synced >= end {
			l.sc.mu.Unlock()
			l.stMu.Lock()
			l.st.FsyncJoins++
			l.stMu.Unlock()
			if led != nil {
				led.Since(oplog.PhaseWALFsyncJoin, st)
			}
			return nil
		}
		if !l.sc.syncing {
			break
		}
		round := l.sc.round
		l.sc.cond.Wait()
		if l.sc.round != round && l.sc.synced < end && l.sc.lastErr != nil {
			err := l.sc.lastErr
			l.sc.mu.Unlock()
			if led != nil {
				led.Since(oplog.PhaseWALFsyncJoin, st)
			}
			return err
		}
	}
	l.sc.syncing = true
	l.sc.mu.Unlock()

	// Snapshot the tail under mu: everything appended so far rides this
	// fsync, including commits that landed after our own.
	l.mu.Lock()
	covered := l.size
	l.mu.Unlock()
	err := l.dev.Sync()
	if err != nil {
		l.countError()
	} else {
		l.charge(l.cost.SyncCost, func(s *Stats) { s.Fsyncs++ })
		if l.tr != nil {
			l.tr.Emit(trace.EvWalFsync, l.lastLSN.Load(), uint64(covered), 0, 0)
		}
	}

	l.sc.mu.Lock()
	l.sc.syncing = false
	l.sc.round++
	l.sc.lastErr = err
	if err == nil && covered > l.sc.synced {
		l.sc.synced = covered
	}
	l.sc.cond.Broadcast()
	l.sc.mu.Unlock()
	if led != nil {
		led.Since(oplog.PhaseWALFsyncLead, st)
	}
	return err
}

// AppendOp is Append with op-ledger attribution: transaction frame
// marshal plus the single contiguous log write charge the WAL-marshal
// phase. A nil ledger is exactly Append.
func (l *Log) AppendOp(led *oplog.Ledger, ops []Op) (commitLSN uint64, end int64, err error) {
	if led == nil {
		return l.Append(ops)
	}
	st := oplog.Clock()
	commitLSN, end, err = l.Append(ops)
	led.Since(oplog.PhaseWALMarshal, st)
	return commitLSN, end, err
}

// Sync makes every appended byte durable.
func (l *Log) Sync() error {
	l.mu.Lock()
	end := l.size
	l.mu.Unlock()
	if end == 0 {
		return nil
	}
	return l.SyncTo(end)
}

// Reset truncates the log after a checkpoint: the caller has durably
// flushed every applied transaction into the table pages and stamped
// checkpointLSN (and its sync epoch) in the table header, so the records
// are dead weight. The new header is written and fsynced before Reset
// returns.
func (l *Log) Reset(checkpointLSN, epoch uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.broken != nil {
		return l.broken
	}
	if err := l.dev.Truncate(0); err != nil {
		l.countError()
		return err
	}
	hb := make([]byte, HeaderSize)
	le.PutUint32(hb[0:], logMagic)
	le.PutUint32(hb[4:], logVersion)
	le.PutUint64(hb[8:], checkpointLSN)
	le.PutUint64(hb[16:], epoch)
	le.PutUint32(hb[HeaderSize-4:], crc32.ChecksumIEEE(hb[:HeaderSize-4]))
	if _, err := l.dev.WriteAt(hb, 0); err != nil {
		l.countError()
		return err
	}
	if err := l.dev.Sync(); err != nil {
		l.countError()
		return err
	}
	l.size = HeaderSize
	l.checkpointLSN = checkpointLSN
	l.epoch = epoch
	if l.nextLSN <= checkpointLSN {
		l.nextLSN = checkpointLSN + 1
	}
	l.lastLSN.Store(0)
	l.sc.mu.Lock()
	l.sc.synced = HeaderSize
	l.sc.mu.Unlock()
	l.charge(l.cost.AppendCost+l.cost.SyncCost, func(s *Stats) { s.Resets++ })
	return nil
}

// LastLSN returns the commit LSN of the most recent append, or zero when
// the log holds no commits (e.g. right after a Reset).
func (l *Log) LastLSN() uint64 { return l.lastLSN.Load() }

// EnsureLSN bumps the LSN allocator so the next record's LSN is strictly
// greater than min. Used at open to keep LSNs monotonic across log resets
// recorded only in the table header.
func (l *Log) EnsureLSN(min uint64) {
	l.mu.Lock()
	if l.nextLSN <= min {
		l.nextLSN = min + 1
	}
	l.mu.Unlock()
}

// Size returns the current valid end of the log in bytes.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Stats returns a snapshot of the log's counters.
func (l *Log) Stats() Stats {
	l.stMu.Lock()
	defer l.stMu.Unlock()
	return l.st
}

// RegisterMetrics exposes the log counters on reg under wal_-prefixed
// names.
func (l *Log) RegisterMetrics(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	get := func(f func(*Stats) int64) func() int64 {
		return func() int64 {
			l.stMu.Lock()
			defer l.stMu.Unlock()
			return f(&l.st)
		}
	}
	reg.CounterFunc("wal_appends_total", get(func(s *Stats) int64 { return s.Appends }))
	reg.CounterFunc("wal_appended_bytes_total", get(func(s *Stats) int64 { return s.AppendedBytes }))
	reg.CounterFunc("wal_fsyncs_total", get(func(s *Stats) int64 { return s.Fsyncs }))
	reg.CounterFunc("wal_fsync_joins_total", get(func(s *Stats) int64 { return s.FsyncJoins }))
	reg.CounterFunc("wal_resets_total", get(func(s *Stats) int64 { return s.Resets }))
	reg.CounterFunc("wal_errors_total", get(func(s *Stats) int64 { return s.Errors }))
	reg.CounterFunc("wal_simulated_io_seconds_total", get(func(s *Stats) int64 { return int64(s.IOTime.Seconds()) }))
}

// Close closes the underlying device.
func (l *Log) Close() error { return l.dev.Close() }

func (l *Log) charge(d time.Duration, f func(*Stats)) {
	if l.cost.Sleep && d > 0 {
		time.Sleep(d)
	}
	l.stMu.Lock()
	f(&l.st)
	l.st.IOTime += d
	l.stMu.Unlock()
}

func (l *Log) countError() {
	l.stMu.Lock()
	l.st.Errors++
	l.stMu.Unlock()
}

func appendFrame(buf []byte, lsn uint64, op *Op) []byte {
	if op.Delete {
		return appendRawFrame(buf, lsn, recDelete, op.Key)
	}
	body := make([]byte, 4+len(op.Key)+len(op.Data))
	le.PutUint32(body, uint32(len(op.Key)))
	copy(body[4:], op.Key)
	copy(body[4+len(op.Key):], op.Data)
	return appendRawFrame(buf, lsn, recPut, body)
}

func appendRawFrame(buf []byte, lsn uint64, typ byte, body []byte) []byte {
	ln := recFixedSize + len(body)
	var hdr [frameHdrSize + recFixedSize]byte
	le.PutUint32(hdr[0:], uint32(ln))
	le.PutUint64(hdr[frameHdrSize:], lsn)
	hdr[frameHdrSize+8] = typ
	// CRC covers the payload: lsn, type, body.
	crc := crc32.ChecksumIEEE(hdr[frameHdrSize:])
	crc = crc32.Update(crc, crc32.IEEETable, body)
	le.PutUint32(hdr[4:], crc)
	buf = append(buf, hdr[:]...)
	return append(buf, body...)
}

func readFull(dev Device, p []byte, off int64) (int, error) {
	n, err := dev.ReadAt(p, off)
	if n == len(p) {
		return n, nil
	}
	if err == nil {
		err = io.ErrUnexpectedEOF
	}
	return n, err
}

func cloneBytes(b []byte) []byte {
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

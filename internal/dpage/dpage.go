// Package dpage implements the simple slotted-page layout shared by the
// dbm-family baselines (ndbm, sdbm, gdbm). Unlike the new hashing
// package's pages, these have no overflow links or big-pair references —
// reproducing the limitation the paper calls out: a dbm page must hold
// every colliding pair whole, or the store fails.
package dpage

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

var le = binary.LittleEndian

// Layout:
//
//	bytes 0..1  uint16 n      — number of pairs
//	bytes 2..3  uint16 low    — offset of lowest used data byte
//	bytes 4..   uint16 slots, two per pair (key offset, data offset)
//	...free...
//	bytes low.. key/data bytes packed downward from the page end
//
// Pair i's key occupies [keyOff, prevLow) and data [dataOff, keyOff),
// where prevLow is pair i-1's data offset (or the page size).
const (
	hdrSize  = 4
	slotSize = 2
)

// Page is a view over one page buffer.
type Page []byte

// Init formats an empty page.
func (p Page) Init() {
	le.PutUint16(p[0:2], 0)
	le.PutUint16(p[2:4], uint16(len(p)))
}

// InitIfNew formats the page if it is all-zero (fresh from the store).
func (p Page) InitIfNew() {
	if le.Uint16(p[2:4]) == 0 {
		p.Init()
	}
}

// N returns the number of pairs on the page.
func (p Page) N() int { return int(le.Uint16(p[0:2])) }

func (p Page) low() int     { return int(le.Uint16(p[2:4])) }
func (p Page) setN(n int)   { le.PutUint16(p[0:2], uint16(n)) }
func (p Page) setLow(n int) { le.PutUint16(p[2:4], uint16(n)) }

func (p Page) slot(i int) int   { return int(le.Uint16(p[hdrSize+i*slotSize:])) }
func (p Page) setSlot(i, v int) { le.PutUint16(p[hdrSize+i*slotSize:], uint16(v)) }

// FreeBytes returns the space available for a new pair (slots + bytes).
func (p Page) FreeBytes() int {
	return p.low() - hdrSize - p.N()*2*slotSize
}

// Fits reports whether a pair of the given sizes fits.
func (p Page) Fits(klen, dlen int) bool {
	return 2*slotSize+klen+dlen <= p.FreeBytes()
}

// MaxPair returns the largest total key+data size an empty page of size
// pagesize can hold.
func MaxPair(pagesize int) int { return pagesize - hdrSize - 2*slotSize }

// Pair returns views of pair i's key and data. The views alias the page.
func (p Page) Pair(i int) (key, data []byte) {
	bound := len(p)
	for j := 0; j < i; j++ {
		bound = p.slot(2*j + 1)
	}
	ko, do := p.slot(2*i), p.slot(2*i+1)
	return p[ko:bound], p[do:ko]
}

// Find returns the index of key, or -1.
func (p Page) Find(key []byte) int {
	n := p.N()
	bound := len(p)
	for i := 0; i < n; i++ {
		ko, do := p.slot(2*i), p.slot(2*i+1)
		if bytes.Equal(p[ko:bound], key) {
			return i
		}
		bound = do
	}
	return -1
}

// Insert appends a pair; the caller must have checked Fits.
func (p Page) Insert(key, data []byte) {
	n := p.N()
	low := p.low()
	ko := low - len(key)
	do := ko - len(data)
	copy(p[ko:low], key)
	copy(p[do:ko], data)
	p.setSlot(2*n, ko)
	p.setSlot(2*n+1, do)
	p.setN(n + 1)
	p.setLow(do)
}

// Remove deletes pair i, compacting the page.
func (p Page) Remove(i int) error {
	n := p.N()
	if i < 0 || i >= n {
		return fmt.Errorf("dpage: remove %d of %d", i, n)
	}
	bound := len(p)
	for j := 0; j < i; j++ {
		bound = p.slot(2*j + 1)
	}
	do := p.slot(2*i + 1)
	size := bound - do
	low := p.low()
	// Slide the packed region below this pair up by size.
	copy(p[low+size:bound], p[low:do])
	// Shift later slots down and adjust their offsets.
	for j := i + 1; j < n; j++ {
		p.setSlot(2*(j-1), p.slot(2*j)+size)
		p.setSlot(2*(j-1)+1, p.slot(2*j+1)+size)
	}
	p.setN(n - 1)
	p.setLow(low + size)
	return nil
}

// ForEach calls fn for every pair in slot order; stop early by returning
// false.
func (p Page) ForEach(fn func(i int, key, data []byte) bool) {
	n := p.N()
	bound := len(p)
	for i := 0; i < n; i++ {
		ko, do := p.slot(2*i), p.slot(2*i+1)
		if !fn(i, p[ko:bound], p[do:ko]) {
			return
		}
		bound = do
	}
}

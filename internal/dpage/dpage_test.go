package dpage

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

func TestInitAndEmpty(t *testing.T) {
	p := Page(make([]byte, 256))
	p.Init()
	if p.N() != 0 {
		t.Fatalf("N = %d", p.N())
	}
	if p.FreeBytes() != 256-hdrSize {
		t.Fatalf("FreeBytes = %d", p.FreeBytes())
	}
	if p.Find([]byte("x")) != -1 {
		t.Fatal("found key on empty page")
	}
}

func TestInitIfNew(t *testing.T) {
	p := Page(make([]byte, 128))
	p.InitIfNew()
	if p.low() != 128 {
		t.Fatal("InitIfNew did not format zero page")
	}
	p.Insert([]byte("k"), []byte("v"))
	p.InitIfNew()
	if p.N() != 1 {
		t.Fatal("InitIfNew reformatted a used page")
	}
}

func TestInsertFindPair(t *testing.T) {
	p := Page(make([]byte, 256))
	p.Init()
	pairs := map[string]string{"a": "1", "bb": "22", "ccc": "333", "": "empty-key-ok"}
	keys := []string{"a", "bb", "ccc", ""}
	for _, k := range keys {
		if !p.Fits(len(k), len(pairs[k])) {
			t.Fatalf("%q does not fit", k)
		}
		p.Insert([]byte(k), []byte(pairs[k]))
	}
	for _, k := range keys {
		i := p.Find([]byte(k))
		if i < 0 {
			t.Fatalf("Find(%q) = -1", k)
		}
		key, data := p.Pair(i)
		if string(key) != k || string(data) != pairs[k] {
			t.Fatalf("Pair(%d) = %q=%q, want %q=%q", i, key, data, k, pairs[k])
		}
	}
}

func TestRemove(t *testing.T) {
	p := Page(make([]byte, 256))
	p.Init()
	for i := 0; i < 6; i++ {
		p.Insert([]byte(fmt.Sprintf("key%d", i)), []byte(fmt.Sprintf("val%d", i)))
	}
	if err := p.Remove(0); err != nil {
		t.Fatal(err)
	}
	if err := p.Remove(4); err != nil { // was last
		t.Fatal(err)
	}
	if err := p.Remove(1); err != nil { // middle
		t.Fatal(err)
	}
	left := map[string]string{}
	p.ForEach(func(i int, k, v []byte) bool {
		left[string(k)] = string(v)
		return true
	})
	want := map[string]string{"key1": "val1", "key3": "val3", "key4": "val4"}
	if len(left) != len(want) {
		t.Fatalf("left = %v", left)
	}
	for k, v := range want {
		if left[k] != v {
			t.Fatalf("left[%q] = %q, want %q", k, left[k], v)
		}
	}
	if err := p.Remove(5); err == nil {
		t.Fatal("Remove out of range succeeded")
	}
}

func TestSpaceReclaimed(t *testing.T) {
	p := Page(make([]byte, 128))
	p.Init()
	free := p.FreeBytes()
	p.Insert([]byte("key"), []byte("value"))
	if err := p.Remove(0); err != nil {
		t.Fatal(err)
	}
	if p.FreeBytes() != free {
		t.Fatalf("FreeBytes = %d, want %d after remove", p.FreeBytes(), free)
	}
}

func TestModelRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for round := 0; round < 100; round++ {
		p := Page(make([]byte, 256))
		p.Init()
		type kv struct{ k, v []byte }
		var model []kv
		for op := 0; op < 200; op++ {
			if rng.Intn(3) != 0 || len(model) == 0 {
				k := make([]byte, rng.Intn(8)+1)
				v := make([]byte, rng.Intn(16))
				rng.Read(k)
				rng.Read(v)
				if p.Fits(len(k), len(v)) {
					p.Insert(k, v)
					model = append(model, kv{k, v})
				}
			} else {
				i := rng.Intn(len(model))
				if err := p.Remove(i); err != nil {
					t.Fatal(err)
				}
				model = append(model[:i], model[i+1:]...)
			}
			if p.N() != len(model) {
				t.Fatalf("N = %d, model %d", p.N(), len(model))
			}
			for i, kv := range model {
				k, v := p.Pair(i)
				if !bytes.Equal(k, kv.k) || !bytes.Equal(v, kv.v) {
					t.Fatalf("round %d op %d: pair %d mismatch", round, op, i)
				}
			}
		}
	}
}

func TestMaxPair(t *testing.T) {
	for _, ps := range []int{64, 256, 1024} {
		p := Page(make([]byte, ps))
		p.Init()
		m := MaxPair(ps)
		if !p.Fits(m/2, m-m/2) {
			t.Fatalf("MaxPair(%d)=%d does not fit", ps, m)
		}
		if p.Fits(m/2, m-m/2+1) {
			t.Fatalf("MaxPair(%d)=%d is not maximal", ps, m)
		}
	}
}

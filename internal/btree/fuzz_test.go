package btree

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// FuzzOpenArbitraryFile: Open must reject arbitrary bytes cleanly.
func FuzzOpenArbitraryFile(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("garbage"))
	f.Add(bytes.Repeat([]byte{0}, 4096))
	meta := make([]byte, 4096)
	le.PutUint16(meta[0:], typeMeta)
	le.PutUint32(meta[4:], metaMagic)
	le.PutUint32(meta[8:], metaVersion)
	le.PutUint32(meta[12:], 4096)
	le.PutUint32(meta[16:], 1) // root
	le.PutUint32(meta[20:], 2) // nextPage
	f.Add(meta)

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.bt")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		tr, err := Open(path, nil)
		if err != nil {
			return
		}
		_, _ = tr.Get([]byte("k"))
		_ = tr.Put([]byte("k"), []byte("v"))
		c := tr.Cursor()
		for i := 0; c.Next() && i < 100; i++ {
		}
		_ = tr.Close()
	})
}

// FuzzTreeOps: arbitrary pairs round-trip and keep the tree invariants.
func FuzzTreeOps(f *testing.F) {
	f.Add([]byte("a"), []byte("1"), []byte("b"), []byte("2"))
	f.Add([]byte{0}, []byte{}, []byte{0, 0}, bytes.Repeat([]byte("v"), 4000))

	f.Fuzz(func(t *testing.T, k1, v1, k2, v2 []byte) {
		tr, err := Open("", &Options{PageSize: 128})
		if err != nil {
			t.Fatal(err)
		}
		defer tr.Close()
		put := func(k, v []byte) bool {
			err := tr.Put(k, v)
			switch {
			case len(k) == 0:
				if !errors.Is(err, ErrEmptyKey) {
					t.Fatalf("empty key = %v", err)
				}
				return false
			case len(k) > tr.maxKey:
				if !errors.Is(err, ErrKeyTooBig) {
					t.Fatalf("huge key = %v", err)
				}
				return false
			case err != nil:
				t.Fatalf("Put: %v", err)
			}
			return true
		}
		ok1 := put(k1, v1)
		ok2 := put(k2, v2)
		if ok1 && (!ok2 || !bytes.Equal(k1, k2)) {
			got, err := tr.Get(k1)
			if err != nil || !bytes.Equal(got, v1) {
				t.Fatalf("Get(k1) = %d bytes, %v", len(got), err)
			}
		}
		if ok2 {
			got, err := tr.Get(k2)
			if err != nil || !bytes.Equal(got, v2) {
				t.Fatalf("Get(k2) = %d bytes, %v", len(got), err)
			}
		}
		if err := tr.Check(); err != nil {
			t.Fatalf("Check: %v", err)
		}
	})
}

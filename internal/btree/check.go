package btree

import (
	"bytes"
	"fmt"
)

// Check walks the whole tree verifying its structural invariants:
//
//   - every page reachable from the root is a leaf or internal node;
//   - internal keys are strictly ascending within a node;
//   - every key in child[i]'s subtree is >= key[i] (and < key[i+1]);
//   - leaf keys are strictly ascending within and across leaves;
//   - the leaf sibling chain visits exactly the tree's leaves, in order,
//     with consistent back links;
//   - the record count matches the meta page.
//
// It is exported for tests and the dbcli check command.
func (t *Tree) Check() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.checkOpen(); err != nil {
		return err
	}
	var leaves []uint32
	count := int64(0)
	if err := t.checkNode(t.root, nil, nil, 0, &leaves, &count); err != nil {
		return err
	}
	if count != t.nrecords {
		return fmt.Errorf("btree check: %d records found, meta says %d", count, t.nrecords)
	}
	return t.checkLeafChain(leaves)
}

// checkNode verifies the subtree at pg; every key in it must satisfy
// lo <= key < hi (nil bounds are open).
func (t *Tree) checkNode(pg uint32, lo, hi []byte, depth int, leaves *[]uint32, count *int64) error {
	if depth > 64 {
		return fmt.Errorf("btree check: depth exceeds 64 at page %d", pg)
	}
	buf, err := t.fetch(pg)
	if err != nil {
		return err
	}
	n := node(buf.Page)
	typ := n.typ()
	switch typ {
	case typeLeaf:
		var prev []byte
		for i := 0; i < n.nkeys(); i++ {
			k := n.leafKey(i)
			if prev != nil && bytes.Compare(prev, k) >= 0 {
				t.pool.Put(buf)
				return fmt.Errorf("btree check: leaf %d keys out of order at %d", pg, i)
			}
			if lo != nil && bytes.Compare(k, lo) < 0 {
				t.pool.Put(buf)
				return fmt.Errorf("btree check: leaf %d key %q below separator %q", pg, k, lo)
			}
			if hi != nil && bytes.Compare(k, hi) >= 0 {
				t.pool.Put(buf)
				return fmt.Errorf("btree check: leaf %d key %q at or above separator %q", pg, k, hi)
			}
			prev = append(prev[:0], k...)
			*count++
		}
		*leaves = append(*leaves, pg)
		t.pool.Put(buf)
		return nil
	case typeInternal:
		nk := n.nkeys()
		if nk == 0 {
			t.pool.Put(buf)
			return fmt.Errorf("btree check: internal page %d has no keys", pg)
		}
		keys := make([][]byte, nk)
		childs := make([]uint32, nk+1)
		childs[0] = n.child0()
		for i := 0; i < nk; i++ {
			keys[i] = append([]byte(nil), n.intKey(i)...)
			childs[i+1] = n.intChild(i)
			if i > 0 && bytes.Compare(keys[i-1], keys[i]) >= 0 {
				t.pool.Put(buf)
				return fmt.Errorf("btree check: internal %d keys out of order at %d", pg, i)
			}
		}
		t.pool.Put(buf)
		for i := 0; i <= nk; i++ {
			clo, chi := lo, hi
			if i > 0 {
				clo = keys[i-1]
			}
			if i < nk {
				chi = keys[i]
			}
			if err := t.checkNode(childs[i], clo, chi, depth+1, leaves, count); err != nil {
				return err
			}
		}
		return nil
	default:
		t.pool.Put(buf)
		return fmt.Errorf("btree check: page %d has type %#x in the tree", pg, typ)
	}
}

// checkLeafChain verifies that the sibling chain matches the in-order
// leaf list from the tree walk.
func (t *Tree) checkLeafChain(leaves []uint32) error {
	first, err := t.leftmostLeaf()
	if err != nil {
		return err
	}
	pg := first
	prev := uint32(0)
	for i := 0; pg != 0; i++ {
		if i >= len(leaves) {
			return fmt.Errorf("btree check: leaf chain longer than the tree (%d leaves)", len(leaves))
		}
		if pg != leaves[i] {
			return fmt.Errorf("btree check: leaf chain[%d] = %d, tree walk says %d", i, pg, leaves[i])
		}
		buf, err := t.fetch(pg)
		if err != nil {
			return err
		}
		n := node(buf.Page)
		if n.prevLeaf() != prev {
			t.pool.Put(buf)
			return fmt.Errorf("btree check: leaf %d back link = %d, want %d", pg, n.prevLeaf(), prev)
		}
		next := n.nextLeaf()
		t.pool.Put(buf)
		prev, pg = pg, next
	}
	if prev != leaves[len(leaves)-1] {
		return fmt.Errorf("btree check: leaf chain ended at %d, tree walk at %d", prev, leaves[len(leaves)-1])
	}
	return nil
}

package btree

import (
	"fmt"
	"math/rand"
	"testing"
)

func TestCheckAfterRandomWorkload(t *testing.T) {
	for _, ps := range []int{128, 256, 2048} {
		t.Run(fmt.Sprintf("pagesize=%d", ps), func(t *testing.T) {
			tr := mustOpen(t, "", &Options{PageSize: ps})
			defer tr.Close()
			rng := rand.New(rand.NewSource(int64(ps) * 7))
			for op := 0; op < 8000; op++ {
				k := []byte(fmt.Sprintf("key%04d", rng.Intn(1500)))
				if rng.Intn(3) != 0 {
					if err := tr.Put(k, []byte(fmt.Sprintf("v%d", op))); err != nil {
						t.Fatal(err)
					}
				} else {
					_ = tr.Delete(k)
				}
				if op%1000 == 999 {
					if err := tr.Check(); err != nil {
						t.Fatalf("op %d: %v", op, err)
					}
				}
			}
			if err := tr.Check(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestCheckAfterReopen(t *testing.T) {
	tr := mustOpen(t, "", &Options{PageSize: 256})
	defer tr.Close()
	for i := 0; i < 5000; i++ {
		if err := tr.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestCheckDetectsCorruption(t *testing.T) {
	tr := mustOpen(t, "", &Options{PageSize: 128})
	defer tr.Close()
	for i := 0; i < 2000; i++ {
		if err := tr.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Sync(); err != nil {
		t.Fatal(err)
	}
	// Swap two keys' first bytes on a leaf page directly in the store,
	// breaking the ordering invariant.
	s := tr.Store()
	buf := make([]byte, s.PageSize())
	corrupted := false
	for pg := uint32(1); pg < tr.nextPage; pg++ {
		if err := s.ReadPage(pg, buf); err != nil {
			continue
		}
		n := node(buf)
		if n.typ() != typeLeaf || n.nkeys() < 2 {
			continue
		}
		// Swap the keys' last bytes (their first bytes are equal, so
		// swapping those would be a no-op).
		k0 := n.leafKey(0)
		k1 := n.leafKey(1)
		k0[len(k0)-1], k1[len(k1)-1] = k1[len(k1)-1], k0[len(k0)-1]
		if err := s.WritePage(pg, buf); err != nil {
			t.Fatal(err)
		}
		corrupted = true
		break
	}
	if !corrupted {
		t.Fatal("found no leaf to corrupt")
	}
	// Drop cached pages so the check reads the corrupted store.
	if err := tr.pool.InvalidateAll(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Check(); err == nil {
		t.Fatal("Check did not detect swapped keys")
	}
}

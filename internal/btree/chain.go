package btree

import (
	"fmt"
)

// Big-data overflow chains. A pair whose data would crowd a leaf (more
// than half its capacity together with the key) keeps only an 8-byte
// reference on the leaf; the data lives on a chain of whole pages drawn
// from the same allocator as tree nodes, mirroring how the hash access
// method shares its overflow mechanism between chaining and big pairs.
//
// Chain page layout: uint16 type, 2 pad bytes, uint32 next, payload.

// writeChain stores data on a fresh chain and returns its first page.
func (t *Tree) writeChain(data []byte) (uint32, error) {
	cap_ := t.pagesize - chainHdr
	npages := (len(data) + cap_ - 1) / cap_
	if npages == 0 {
		npages = 1
	}
	pages := make([]uint32, npages)
	for i := range pages {
		pg, err := t.allocPage(func(n node) {
			le.PutUint16(n[0:2], typeChain)
		})
		if err != nil {
			for _, p := range pages[:i] {
				_ = t.freePage(p)
			}
			return 0, err
		}
		pages[i] = pg
	}
	for i, pg := range pages {
		buf, err := t.fetch(pg)
		if err != nil {
			return 0, err
		}
		next := uint32(0)
		if i+1 < npages {
			next = pages[i+1]
		}
		le.PutUint32(buf.Page[4:8], next)
		lo := i * cap_
		hi := lo + cap_
		if hi > len(data) {
			hi = len(data)
		}
		copy(buf.Page[chainHdr:], data[lo:hi])
		buf.Dirty.Store(true)
		t.pool.Put(buf)
	}
	return pages[0], nil
}

// readChain materializes total bytes starting at page pg.
func (t *Tree) readChain(pg uint32, total int) ([]byte, error) {
	out := make([]byte, 0, total)
	for pg != 0 && len(out) < total {
		buf, err := t.fetch(pg)
		if err != nil {
			return nil, err
		}
		n := node(buf.Page)
		if n.typ() != typeChain {
			t.pool.Put(buf)
			return nil, fmt.Errorf("%w: page %d in chain has type %#x", ErrCorrupt, pg, n.typ())
		}
		next := le.Uint32(buf.Page[4:8])
		take := t.pagesize - chainHdr
		if take > total-len(out) {
			take = total - len(out)
		}
		out = append(out, buf.Page[chainHdr:chainHdr+take]...)
		t.pool.Put(buf)
		pg = next
	}
	if len(out) != total {
		return nil, fmt.Errorf("%w: chain truncated (%d of %d bytes)", ErrCorrupt, len(out), total)
	}
	return out, nil
}

// freeChain returns every page of the chain to the free list.
func (t *Tree) freeChain(pg uint32) error {
	for pg != 0 {
		buf, err := t.fetch(pg)
		if err != nil {
			return err
		}
		if node(buf.Page).typ() != typeChain {
			t.pool.Put(buf)
			return fmt.Errorf("%w: freeing non-chain page %d", ErrCorrupt, pg)
		}
		next := le.Uint32(buf.Page[4:8])
		t.pool.Put(buf)
		if err := t.freePage(pg); err != nil {
			return err
		}
		pg = next
	}
	return nil
}

package btree

import (
	"bytes"
)

// Cursor walks pairs in ascending key order along the leaf chain. Like
// the hash iterator it holds no pins between calls: the current position
// is (leaf page, key), re-validated on each advance, so mutation during
// a scan is safe (a concurrently inserted or deleted key may be seen or
// missed, never corrupted).
type Cursor struct {
	t             *Tree
	started       bool
	seekInclusive bool // lastKey itself is still wanted (set by Seek)
	lastKey       []byte
	key           []byte
	val           []byte
	err           error
	done          bool
}

// Cursor returns a cursor positioned before the smallest key.
func (t *Tree) Cursor() *Cursor { return &Cursor{t: t} }

// Seek positions the cursor so the next call to Next returns the first
// key >= from.
func (t *Tree) Seek(from []byte) *Cursor {
	c := &Cursor{t: t, started: true}
	c.lastKey = append([]byte(nil), from...)
	c.seekInclusive = true
	return c
}

// Next advances to the next pair, reporting false at the end or on error.
func (c *Cursor) Next() bool {
	if c.done || c.err != nil {
		return false
	}
	c.t.mu.Lock()
	defer c.t.mu.Unlock()
	if err := c.t.checkOpen(); err != nil {
		c.err = err
		return false
	}

	var target []byte
	inclusive := false
	if !c.started {
		c.started = true
		target = nil // before everything
		inclusive = true
	} else {
		target = c.lastKey
		inclusive = c.seekInclusive
	}
	c.seekInclusive = false

	k, v, ok, err := c.t.next(target, inclusive)
	if err != nil {
		c.err = err
		return false
	}
	if !ok {
		c.done = true
		return false
	}
	c.key = append(c.key[:0], k...)
	c.val = v
	c.lastKey = append(c.lastKey[:0], k...)
	return true
}

// next finds the first pair with key > target (or >= target when
// inclusive), descending fresh from the root so stale positions cannot
// mislead it.
func (t *Tree) next(target []byte, inclusive bool) (k, v []byte, ok bool, err error) {
	var leaf uint32
	if target == nil {
		leaf, err = t.leftmostLeaf()
		if err != nil {
			return nil, nil, false, err
		}
	} else {
		leaf, _, err = t.descend(target)
		if err != nil {
			return nil, nil, false, err
		}
	}
	for leaf != 0 {
		buf, err := t.fetch(leaf)
		if err != nil {
			return nil, nil, false, err
		}
		n := node(buf.Page)
		i := 0
		if target != nil {
			i = sortSearch(n.nkeys(), func(j int) bool {
				cmp := bytes.Compare(n.leafKey(j), target)
				if inclusive {
					return cmp >= 0
				}
				return cmp > 0
			})
		}
		if i < n.nkeys() {
			key := append([]byte(nil), n.leafKey(i)...)
			val, err := t.materialize(n, i)
			t.pool.Put(buf)
			if err != nil {
				return nil, nil, false, err
			}
			return key, val, true, nil
		}
		next := n.nextLeaf()
		t.pool.Put(buf)
		leaf = next
		// Once we moved past the target's leaf, every remaining key
		// compares greater; stop filtering so empty leaves are skipped
		// but the first entry of the next non-empty leaf is taken.
		target = nil
	}
	return nil, nil, false, nil
}

// leftmostLeaf descends along child0 links.
func (t *Tree) leftmostLeaf() (uint32, error) {
	pg := t.root
	for depth := 0; depth <= 64; depth++ {
		buf, err := t.fetch(pg)
		if err != nil {
			return 0, err
		}
		n := node(buf.Page)
		switch n.typ() {
		case typeLeaf:
			t.pool.Put(buf)
			return pg, nil
		case typeInternal:
			child := n.child0()
			t.pool.Put(buf)
			pg = child
		default:
			t.pool.Put(buf)
			return 0, ErrCorrupt
		}
	}
	return 0, ErrCorrupt
}

// Key returns the current pair's key; the slice is reused by Next.
func (c *Cursor) Key() []byte { return c.key }

// Value returns the current pair's data.
func (c *Cursor) Value() []byte { return c.val }

// Err reports the error that terminated the scan, if any.
func (c *Cursor) Err() error { return c.err }

//go:build unix

package btree

import (
	"errors"
	"path/filepath"
	"testing"

	"unixhash/internal/pagefile"
)

func TestLockExcludesSecondWriter(t *testing.T) {
	path := filepath.Join(t.TempDir(), "locked.bt")
	w := mustOpen(t, path, &Options{Lock: true})
	defer w.Close()
	if err := w.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, &Options{Lock: true}); !errors.Is(err, pagefile.ErrLocked) {
		t.Fatalf("second writer = %v, want ErrLocked", err)
	}
}

func TestSharedReaders(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shared.bt")
	w := mustOpen(t, path, nil)
	w.Put([]byte("k"), []byte("v"))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r1 := mustOpen(t, path, &Options{Lock: true, ReadOnly: true})
	defer r1.Close()
	r2 := mustOpen(t, path, &Options{Lock: true, ReadOnly: true})
	defer r2.Close()
	if _, err := r1.Get([]byte("k")); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, &Options{Lock: true}); !errors.Is(err, pagefile.ErrLocked) {
		t.Fatalf("writer during reads = %v, want ErrLocked", err)
	}
}

// Package btree implements the btree access method that the paper's
// conclusion announces alongside the hash package: "It will include a
// btree access method as well as fixed and variable length record access
// methods in addition to the hashed support presented here. All of the
// access methods are based on a key/data pair interface."
//
// This is a page-oriented B+tree over the same pagefile/buffer substrate
// as the hash table: variable-length keys and data in slotted pages,
// leaves linked for ordered scans, large data values on overflow-page
// chains, and an LRU buffer pool. Keys are compared as byte strings
// (bytes.Compare order).
package btree

import (
	"encoding/binary"
)

var le = binary.LittleEndian

// Page types, stored in the first two bytes of every page so the file is
// self-describing.
const (
	typeMeta     = 0xB401
	typeInternal = 0xB402
	typeLeaf     = 0xB403
	typeChain    = 0xB404 // big-data overflow chain page
	typeFree     = 0xB405 // on the free list
)

// Leaf page layout:
//
//	0..1   uint16 type (typeLeaf)
//	2..3   uint16 nkeys
//	4..5   uint16 low       — lowest used data byte
//	6..7   (pad)
//	8..11  uint32 prev leaf (0 = none)
//	12..15 uint32 next leaf (0 = none)
//	16..   slot array, three uint16 per entry: keyOff, dataOff, flags
//	...    key/data bytes packed downward from the page end
//
// Entry i's key occupies [keyOff, prevLow) and its data [dataOff,
// keyOff), where prevLow is entry i-1's dataOff (or the page size).
// flags bit 0 set means the on-page "data" is an 8-byte reference
// (uint32 chain page, uint32 total length) to an overflow chain.
const (
	leafHdr      = 16
	leafSlotSize = 6

	flagBigData = 1
)

// Internal page layout:
//
//	0..1   uint16 type (typeInternal)
//	2..3   uint16 nkeys
//	4..5   uint16 low
//	6..7   (pad)
//	8..11  uint32 child0   — subtree of keys < key[0]
//	12..   slot array, three uint16 per entry: keyOff, childHi, childLo
//	...    key bytes packed downward from the page end
//
// Entry i holds key[i] and child[i+1]: the subtree of keys >= key[i]
// (and < key[i+1] if present).
const (
	intHdr      = 12
	intSlotSize = 6
)

// Chain page layout: type, (pad), next uint32, payload.
const chainHdr = 8

type node []byte

func (n node) typ() int       { return int(le.Uint16(n[0:2])) }
func (n node) setTyp(t int)   { le.PutUint16(n[0:2], uint16(t)) }
func (n node) nkeys() int     { return int(le.Uint16(n[2:4])) }
func (n node) setNkeys(k int) { le.PutUint16(n[2:4], uint16(k)) }
func (n node) low() int       { return int(le.Uint16(n[4:6])) }
func (n node) setLow(v int)   { le.PutUint16(n[4:6], uint16(v)) }

// --- leaf accessors ---

func initLeaf(n node) {
	clear(n)
	n.setTyp(typeLeaf)
	n.setLow(len(n))
}

func (n node) prevLeaf() uint32     { return le.Uint32(n[8:12]) }
func (n node) setPrevLeaf(p uint32) { le.PutUint32(n[8:12], p) }
func (n node) nextLeaf() uint32     { return le.Uint32(n[12:16]) }
func (n node) setNextLeaf(p uint32) { le.PutUint32(n[12:16], p) }

func (n node) leafSlot(i int) (koff, doff, flags int) {
	base := leafHdr + i*leafSlotSize
	return int(le.Uint16(n[base:])), int(le.Uint16(n[base+2:])), int(le.Uint16(n[base+4:]))
}

func (n node) setLeafSlot(i, koff, doff, flags int) {
	base := leafHdr + i*leafSlotSize
	le.PutUint16(n[base:], uint16(koff))
	le.PutUint16(n[base+2:], uint16(doff))
	le.PutUint16(n[base+4:], uint16(flags))
}

// leafBound returns entry i's upper byte boundary.
func (n node) leafBound(i int) int {
	if i == 0 {
		return len(n)
	}
	_, doff, _ := n.leafSlot(i - 1)
	return doff
}

// leafKey returns a view of entry i's key.
func (n node) leafKey(i int) []byte {
	koff, _, _ := n.leafSlot(i)
	return n[koff:n.leafBound(i)]
}

// leafData returns entry i's on-page data bytes and its flags.
func (n node) leafData(i int) ([]byte, int) {
	koff, doff, flags := n.leafSlot(i)
	return n[doff:koff], flags
}

func (n node) leafFree() int {
	return n.low() - leafHdr - n.nkeys()*leafSlotSize
}

// leafFits reports whether a pair with the given on-page sizes fits.
func (n node) leafFits(klen, dlen int) bool {
	return leafSlotSize+klen+dlen <= n.leafFree()
}

// leafInsert places a pair at position i (0..nkeys), shifting later
// slots. The caller must have checked leafFits.
func (n node) leafInsert(i int, key, data []byte, flags int) {
	nk := n.nkeys()
	// Shift byte regions of entries i..nk-1 down by the new pair's size.
	size := len(key) + len(data)
	low := n.low()
	bound := n.leafBound(i)
	copy(n[low-size:bound-size], n[low:bound])
	// Shift slots up and adjust moved entries' offsets.
	for j := nk - 1; j >= i; j-- {
		koff, doff, fl := n.leafSlot(j)
		n.setLeafSlot(j+1, koff-size, doff-size, fl)
	}
	ko := bound - len(key)
	do := ko - len(data)
	copy(n[ko:bound], key)
	copy(n[do:ko], data)
	n.setLeafSlot(i, ko, do, flags)
	n.setNkeys(nk + 1)
	n.setLow(low - size)
}

// leafRemove deletes entry i.
func (n node) leafRemove(i int) {
	nk := n.nkeys()
	_, doff, _ := n.leafSlot(i)
	bound := n.leafBound(i)
	size := bound - doff
	low := n.low()
	copy(n[low+size:bound], n[low:doff])
	for j := i + 1; j < nk; j++ {
		ko, do, fl := n.leafSlot(j)
		n.setLeafSlot(j-1, ko+size, do+size, fl)
	}
	n.setNkeys(nk - 1)
	n.setLow(low + size)
}

// --- internal accessors ---

func initInternal(n node) {
	clear(n)
	n.setTyp(typeInternal)
	n.setLow(len(n))
}

func (n node) child0() uint32     { return le.Uint32(n[8:12]) }
func (n node) setChild0(p uint32) { le.PutUint32(n[8:12], p) }

func (n node) intSlot(i int) (koff int, child uint32) {
	base := intHdr + i*intSlotSize
	koff = int(le.Uint16(n[base:]))
	child = uint32(le.Uint16(n[base+2:]))<<16 | uint32(le.Uint16(n[base+4:]))
	return
}

func (n node) setIntSlot(i, koff int, child uint32) {
	base := intHdr + i*intSlotSize
	le.PutUint16(n[base:], uint16(koff))
	le.PutUint16(n[base+2:], uint16(child>>16))
	le.PutUint16(n[base+4:], uint16(child))
}

func (n node) intBound(i int) int {
	if i == 0 {
		return len(n)
	}
	koff, _ := n.intSlot(i - 1)
	return koff
}

func (n node) intKey(i int) []byte {
	koff, _ := n.intSlot(i)
	return n[koff:n.intBound(i)]
}

func (n node) intChild(i int) uint32 {
	if i < 0 {
		return n.child0()
	}
	_, c := n.intSlot(i)
	return c
}

func (n node) intFree() int {
	return n.low() - intHdr - n.nkeys()*intSlotSize
}

func (n node) intFits(klen int) bool {
	return intSlotSize+klen <= n.intFree()
}

// intInsert places (key, child) at position i.
func (n node) intInsert(i int, key []byte, child uint32) {
	nk := n.nkeys()
	size := len(key)
	low := n.low()
	bound := n.intBound(i)
	copy(n[low-size:bound-size], n[low:bound])
	for j := nk - 1; j >= i; j-- {
		ko, c := n.intSlot(j)
		n.setIntSlot(j+1, ko-size, c)
	}
	ko := bound - size
	copy(n[ko:bound], key)
	n.setIntSlot(i, ko, child)
	n.setNkeys(nk + 1)
	n.setLow(low - size)
}

package btree

import (
	"bytes"
	"errors"
	"fmt"
	"sync"

	"unixhash/internal/buffer"
	"unixhash/internal/pagefile"
)

// Errors returned by Tree operations.
var (
	ErrNotFound  = errors.New("btree: key not found")
	ErrKeyExists = errors.New("btree: key already exists")
	ErrKeyTooBig = errors.New("btree: key exceeds the maximum key size")
	ErrEmptyKey  = errors.New("btree: empty key")
	ErrClosed    = errors.New("btree: tree is closed")
	ErrReadOnly  = errors.New("btree: tree is read-only")
	ErrBadMagic  = errors.New("btree: not a btree file")
	ErrCorrupt   = errors.New("btree: file is corrupt")
)

// Meta page layout (page 0): type, (pad), magic, version, pagesize,
// root, nextPage, freeHead, nrecords.
const (
	metaMagic   = 0xB7EE0001
	metaVersion = 1

	DefaultPageSize  = 4096
	MinPageSize      = 128
	MaxPageSize      = 32768
	DefaultCacheSize = 256 * 1024
)

// Options parameterizes a Tree at creation time.
type Options struct {
	// PageSize is the node size in bytes; power of two in
	// [MinPageSize, MaxPageSize]. Default 4096.
	PageSize int
	// CacheSize is the buffer-pool budget in bytes. Default 256 KB.
	CacheSize int
	// ReadOnly opens an existing tree for reading only.
	ReadOnly bool
	// Store overrides the backing store (caller-owned); path is ignored.
	Store pagefile.Store
	// Cost is the simulated I/O cost model for self-created stores.
	Cost pagefile.CostModel
	// Lock takes an advisory whole-file lock on file-backed trees:
	// shared for read-only opens, exclusive otherwise (see the hash
	// table's identical option).
	Lock bool
}

// Validate checks the option fields without applying defaults: a zero
// value means "use the default" and always passes. It reports the first
// offending field by name (see db.ErrBadOptions).
func (o *Options) Validate() error {
	if o == nil {
		return nil
	}
	if o.PageSize != 0 && (o.PageSize < MinPageSize || o.PageSize > MaxPageSize || o.PageSize&(o.PageSize-1) != 0) {
		return fmt.Errorf("PageSize: %d must be a power of two in [%d, %d]", o.PageSize, MinPageSize, MaxPageSize)
	}
	if o.CacheSize < 0 {
		return fmt.Errorf("CacheSize: %d must not be negative", o.CacheSize)
	}
	return nil
}

// Tree is a B+tree of byte-string key/data pairs in bytes.Compare order.
// All methods are safe for concurrent use (operations serialize).
type Tree struct {
	mu sync.Mutex

	store    pagefile.Store
	pool     *buffer.Pool
	ownStore bool
	readonly bool
	closed   bool

	pagesize int
	root     uint32
	nextPage uint32
	freeHead uint32
	nrecords int64
	dirtyMet bool

	maxKey  int // keys larger than this are rejected
	maxPair int // larger pairs put their data on a chain

	// Operation counters for TreeStats. Every operation holds mu, so
	// plain fields suffice.
	nGets, nGetMisses, nPuts, nDels, nSyncs int64
}

// Open opens or creates the btree at path. An empty path creates a
// memory-resident tree.
func Open(path string, o *Options) (*Tree, error) {
	var opts Options
	if o != nil {
		opts = *o
	}
	if err := o.Validate(); err != nil {
		return nil, fmt.Errorf("btree: invalid option %w", err)
	}
	if opts.PageSize == 0 {
		opts.PageSize = DefaultPageSize
	}
	if opts.CacheSize == 0 {
		opts.CacheSize = DefaultCacheSize
	}

	t := &Tree{pagesize: opts.PageSize, readonly: opts.ReadOnly}
	existing := false
	switch {
	case opts.Store != nil:
		t.store = opts.Store
		existing = t.store.NPages() > 0
		if t.store.PageSize() != opts.PageSize && existing {
			// Trust the store's page size for existing trees.
			t.pagesize = t.store.PageSize()
		}
	case path == "":
		t.store = pagefile.NewMem(opts.PageSize, opts.Cost)
		t.ownStore = true
	default:
		ps, exists, err := peekPageSize(path)
		if err != nil {
			return nil, err
		}
		if exists {
			t.pagesize = ps
			existing = true
		} else if opts.ReadOnly {
			return nil, fmt.Errorf("btree: %s does not exist", path)
		}
		fs, err := pagefile.OpenFile(path, t.pagesize, opts.Cost)
		if err != nil {
			return nil, err
		}
		if opts.Lock {
			if err := fs.Lock(!opts.ReadOnly); err != nil {
				fs.Close()
				return nil, err
			}
		}
		t.store = fs
		t.ownStore = true
	}

	// A quarter page bounds keys so internal nodes hold several; pairs
	// above half a leaf's capacity put their data on a chain.
	t.maxKey = (t.pagesize - leafHdr) / 4
	t.maxPair = (t.pagesize - leafHdr - 2*leafSlotSize) / 2

	t.pool = buffer.New(t.store, opts.CacheSize, func(a buffer.Addr) uint32 { return a.N })

	var err error
	if existing {
		err = t.readMeta()
	} else {
		t.root = 1
		t.nextPage = 2
		t.dirtyMet = true
		err = t.withNew(1, initLeaf, func(node) error { return nil })
	}
	if err != nil {
		if t.ownStore {
			t.store.Close()
		}
		return nil, err
	}
	return t, nil
}

func peekPageSize(path string) (int, bool, error) {
	// The meta page stores the page size at a fixed offset; read the
	// smallest legal page worth of bytes to find it.
	fs, err := pagefile.OpenFile(path, MinPageSize, pagefile.CostModel{})
	if err != nil {
		return 0, false, err
	}
	defer fs.Close()
	if fs.NPages() == 0 {
		return 0, false, nil
	}
	buf := make([]byte, MinPageSize)
	if err := fs.ReadPage(0, buf); err != nil {
		return 0, false, err
	}
	if le.Uint32(buf[4:]) != metaMagic {
		return 0, false, ErrBadMagic
	}
	ps := int(le.Uint32(buf[12:]))
	if ps < MinPageSize || ps > MaxPageSize || ps&(ps-1) != 0 {
		return 0, false, ErrCorrupt
	}
	return ps, true, nil
}

func (t *Tree) readMeta() error {
	buf := make([]byte, t.pagesize)
	if err := t.store.ReadPage(0, buf); err != nil {
		return err
	}
	if le.Uint32(buf[4:]) != metaMagic {
		return ErrBadMagic
	}
	if v := le.Uint32(buf[8:]); v != metaVersion {
		return fmt.Errorf("%w: version %d", ErrBadMagic, v)
	}
	if int(le.Uint32(buf[12:])) != t.pagesize {
		return fmt.Errorf("%w: page size mismatch", ErrCorrupt)
	}
	t.root = le.Uint32(buf[16:])
	t.nextPage = le.Uint32(buf[20:])
	t.freeHead = le.Uint32(buf[24:])
	t.nrecords = int64(le.Uint64(buf[28:]))
	if t.root == 0 || t.root >= t.nextPage || t.nrecords < 0 {
		return fmt.Errorf("%w: meta root=%d next=%d n=%d", ErrCorrupt, t.root, t.nextPage, t.nrecords)
	}
	return nil
}

func (t *Tree) writeMeta() error {
	buf := make([]byte, t.pagesize)
	le.PutUint16(buf[0:], typeMeta)
	le.PutUint32(buf[4:], metaMagic)
	le.PutUint32(buf[8:], metaVersion)
	le.PutUint32(buf[12:], uint32(t.pagesize))
	le.PutUint32(buf[16:], t.root)
	le.PutUint32(buf[20:], t.nextPage)
	le.PutUint32(buf[24:], t.freeHead)
	le.PutUint64(buf[28:], uint64(t.nrecords))
	if err := t.store.WritePage(0, buf); err != nil {
		return err
	}
	t.dirtyMet = false
	return nil
}

// --- page plumbing ---

func pgAddr(pg uint32) buffer.Addr { return buffer.Addr{N: pg} }

// fetch pins page pg.
func (t *Tree) fetch(pg uint32) (*buffer.Buf, error) {
	return t.pool.Get(pgAddr(pg), nil, false)
}

// allocPage takes a page from the free list or extends the file,
// initializes it with init, runs fn on it pinned, and unpins.
func (t *Tree) allocPage(init func(node)) (uint32, error) {
	var pg uint32
	if t.freeHead != 0 {
		pg = t.freeHead
		buf, err := t.fetch(pg)
		if err != nil {
			return 0, err
		}
		if node(buf.Page).typ() != typeFree {
			t.pool.Put(buf)
			return 0, fmt.Errorf("%w: free-list page %d is not free", ErrCorrupt, pg)
		}
		t.freeHead = le.Uint32(buf.Page[4:])
		init(node(buf.Page))
		buf.Dirty.Store(true)
		t.pool.Put(buf)
	} else {
		pg = t.nextPage
		t.nextPage++
		if err := t.withNew(pg, init, func(node) error { return nil }); err != nil {
			return 0, err
		}
	}
	t.dirtyMet = true
	return pg, nil
}

// withNew creates page pg fresh in the pool, initializes it and runs fn.
func (t *Tree) withNew(pg uint32, init func(node), fn func(node) error) error {
	buf, err := t.pool.Get(pgAddr(pg), nil, true)
	if err != nil {
		return err
	}
	clear(buf.Page)
	init(node(buf.Page))
	buf.Dirty.Store(true)
	err = fn(node(buf.Page))
	t.pool.Put(buf)
	return err
}

// freePage puts pg on the free list.
func (t *Tree) freePage(pg uint32) error {
	buf, err := t.pool.Get(pgAddr(pg), nil, true)
	if err != nil {
		return err
	}
	clear(buf.Page)
	le.PutUint16(buf.Page[0:], typeFree)
	le.PutUint32(buf.Page[4:], t.freeHead)
	buf.Dirty.Store(true)
	t.pool.Put(buf)
	t.freeHead = pg
	t.dirtyMet = true
	return nil
}

// --- search ---

// pathElem records the descent through an internal node: the page and
// the child index taken (-1 = child0).
type pathElem struct {
	pg  uint32
	idx int
}

// descend walks from the root to the leaf that owns key, returning the
// leaf page number and the internal path.
func (t *Tree) descend(key []byte) (uint32, []pathElem, error) {
	pg := t.root
	var path []pathElem
	for depth := 0; ; depth++ {
		if depth > 64 {
			return 0, nil, fmt.Errorf("%w: tree deeper than 64 levels", ErrCorrupt)
		}
		buf, err := t.fetch(pg)
		if err != nil {
			return 0, nil, err
		}
		n := node(buf.Page)
		switch n.typ() {
		case typeLeaf:
			t.pool.Put(buf)
			return pg, path, nil
		case typeInternal:
			// Find the largest i with key >= key[i]; take child[i].
			i := sortSearch(n.nkeys(), func(i int) bool {
				return bytes.Compare(key, n.intKey(i)) < 0
			}) - 1
			child := n.intChild(i)
			t.pool.Put(buf)
			if child == 0 || child >= t.nextPage {
				return 0, nil, fmt.Errorf("%w: bad child %d from page %d", ErrCorrupt, child, pg)
			}
			path = append(path, pathElem{pg: pg, idx: i})
			pg = child
		default:
			t.pool.Put(buf)
			return 0, nil, fmt.Errorf("%w: page %d type %#x in descent", ErrCorrupt, pg, n.typ())
		}
	}
}

// sortSearch is sort.Search without the package dependency.
func sortSearch(n int, f func(int) bool) int {
	lo, hi := 0, n
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if !f(mid) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// leafSearch finds key in a leaf: (index, found).
func leafSearch(n node, key []byte) (int, bool) {
	i := sortSearch(n.nkeys(), func(i int) bool {
		return bytes.Compare(n.leafKey(i), key) >= 0
	})
	if i < n.nkeys() && bytes.Equal(n.leafKey(i), key) {
		return i, true
	}
	return i, false
}

// --- public API ---

func (t *Tree) checkOpen() error {
	if t.closed {
		return ErrClosed
	}
	return nil
}

func (t *Tree) checkWritable() error {
	if t.closed {
		return ErrClosed
	}
	if t.readonly {
		return ErrReadOnly
	}
	return nil
}

// Get returns a copy of the data stored under key.
func (t *Tree) Get(key []byte) ([]byte, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.checkOpen(); err != nil {
		return nil, err
	}
	if len(key) == 0 {
		return nil, ErrEmptyKey
	}
	t.nGets++
	leaf, _, err := t.descend(key)
	if err != nil {
		return nil, err
	}
	buf, err := t.fetch(leaf)
	if err != nil {
		return nil, err
	}
	defer t.pool.Put(buf)
	n := node(buf.Page)
	i, found := leafSearch(n, key)
	if !found {
		t.nGetMisses++
		return nil, ErrNotFound
	}
	return t.materialize(n, i)
}

// materialize copies entry i's data, following a chain reference.
func (t *Tree) materialize(n node, i int) ([]byte, error) {
	data, flags := n.leafData(i)
	if flags&flagBigData == 0 {
		return append([]byte(nil), data...), nil
	}
	if len(data) != 8 {
		return nil, fmt.Errorf("%w: big-data ref is %d bytes", ErrCorrupt, len(data))
	}
	return t.readChain(le.Uint32(data[0:]), int(le.Uint32(data[4:])))
}

// Has reports whether key is present.
func (t *Tree) Has(key []byte) (bool, error) {
	_, err := t.Get(key)
	if errors.Is(err, ErrNotFound) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	return true, nil
}

// Put stores data under key, replacing any existing value.
func (t *Tree) Put(key, data []byte) error { return t.put(key, data, true) }

// PutNew stores data under key, failing with ErrKeyExists if present.
func (t *Tree) PutNew(key, data []byte) error { return t.put(key, data, false) }

func (t *Tree) put(key, data []byte, replace bool) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.checkWritable(); err != nil {
		return err
	}
	if len(key) == 0 {
		return ErrEmptyKey
	}
	if len(key) > t.maxKey {
		return fmt.Errorf("%w (%d > %d)", ErrKeyTooBig, len(key), t.maxKey)
	}
	t.nPuts++

	leaf, path, err := t.descend(key)
	if err != nil {
		return err
	}
	buf, err := t.fetch(leaf)
	if err != nil {
		return err
	}
	n := node(buf.Page)
	i, found := leafSearch(n, key)
	if found && !replace {
		t.pool.Put(buf)
		return ErrKeyExists
	}
	if found {
		if err := t.removeLeafEntry(n, i); err != nil {
			t.pool.Put(buf)
			return err
		}
		buf.Dirty.Store(true)
		t.nrecords--
		t.dirtyMet = true
	}

	// Decide the on-page representation.
	onPage := data
	flags := 0
	if len(key)+len(data) > t.maxPair {
		chain, err := t.writeChain(data)
		if err != nil {
			t.pool.Put(buf)
			return err
		}
		ref := make([]byte, 8)
		le.PutUint32(ref[0:], chain)
		le.PutUint32(ref[4:], uint32(len(data)))
		onPage, flags = ref, flagBigData
	}

	if n.leafFits(len(key), len(onPage)) {
		n.leafInsert(i, key, onPage, flags)
		buf.Dirty.Store(true)
		t.pool.Put(buf)
	} else {
		t.pool.Put(buf)
		if err := t.splitLeafAndInsert(leaf, path, i, key, onPage, flags); err != nil {
			return err
		}
	}
	t.nrecords++
	t.dirtyMet = true
	return nil
}

// removeLeafEntry removes entry i, freeing its chain if it has one.
func (t *Tree) removeLeafEntry(n node, i int) error {
	data, flags := n.leafData(i)
	if flags&flagBigData != 0 {
		if len(data) != 8 {
			return fmt.Errorf("%w: big-data ref is %d bytes", ErrCorrupt, len(data))
		}
		if err := t.freeChain(le.Uint32(data[0:])); err != nil {
			return err
		}
	}
	n.leafRemove(i)
	return nil
}

// splitLeafAndInsert splits the full leaf, inserts the pair into the
// correct half, and promotes the split key to the parent.
func (t *Tree) splitLeafAndInsert(leafPg uint32, path []pathElem, i int, key, onPage []byte, flags int) error {
	buf, err := t.fetch(leafPg)
	if err != nil {
		return err
	}
	n := node(buf.Page)

	// Collect entries (views are invalidated by rebuilding, so copy).
	type ent struct {
		k, d  []byte
		flags int
	}
	nk := n.nkeys()
	ents := make([]ent, 0, nk+1)
	for j := 0; j < nk; j++ {
		d, fl := n.leafData(j)
		ents = append(ents, ent{
			k:     append([]byte(nil), n.leafKey(j)...),
			d:     append([]byte(nil), d...),
			flags: fl,
		})
	}
	ents = append(ents[:i:i], append([]ent{{k: key, d: onPage, flags: flags}}, ents[i:]...)...)

	// Split at the byte midpoint.
	total := 0
	for _, e := range ents {
		total += leafSlotSize + len(e.k) + len(e.d)
	}
	splitAt, acc := 0, 0
	for j, e := range ents {
		acc += leafSlotSize + len(e.k) + len(e.d)
		if acc >= total/2 && j+1 < len(ents) {
			splitAt = j + 1
			break
		}
	}
	if splitAt == 0 {
		splitAt = len(ents) / 2
		if splitAt == 0 {
			splitAt = 1
		}
	}

	oldNext := n.nextLeaf()
	rightPg, err := t.allocPage(initLeaf)
	if err != nil {
		t.pool.Put(buf)
		return err
	}

	// Rebuild the left leaf.
	prev := n.prevLeaf()
	initLeaf(n)
	n.setPrevLeaf(prev)
	n.setNextLeaf(rightPg)
	for _, e := range ents[:splitAt] {
		if !n.leafFits(len(e.k), len(e.d)) {
			t.pool.Put(buf)
			return fmt.Errorf("%w: left half does not fit after split", ErrCorrupt)
		}
		n.leafInsert(n.nkeys(), e.k, e.d, e.flags)
	}
	buf.Dirty.Store(true)
	t.pool.Put(buf)

	// Build the right leaf.
	rbuf, err := t.fetch(rightPg)
	if err != nil {
		return err
	}
	rn := node(rbuf.Page)
	rn.setPrevLeaf(leafPg)
	rn.setNextLeaf(oldNext)
	for _, e := range ents[splitAt:] {
		if !rn.leafFits(len(e.k), len(e.d)) {
			t.pool.Put(rbuf)
			return fmt.Errorf("%w: right half does not fit after split", ErrCorrupt)
		}
		rn.leafInsert(rn.nkeys(), e.k, e.d, e.flags)
	}
	sepKey := append([]byte(nil), rn.leafKey(0)...)
	rbuf.Dirty.Store(true)
	t.pool.Put(rbuf)

	// Fix the old right sibling's back link.
	if oldNext != 0 {
		nb, err := t.fetch(oldNext)
		if err != nil {
			return err
		}
		node(nb.Page).setPrevLeaf(rightPg)
		nb.Dirty.Store(true)
		t.pool.Put(nb)
	}

	return t.insertIntoParent(path, leafPg, sepKey, rightPg)
}

// insertIntoParent adds (sepKey -> rightPg) beside leftPg in its parent,
// splitting internal nodes upward as needed.
func (t *Tree) insertIntoParent(path []pathElem, leftPg uint32, sepKey []byte, rightPg uint32) error {
	if len(path) == 0 {
		// leftPg was the root: grow the tree by one level.
		newRoot, err := t.allocPage(initInternal)
		if err != nil {
			return err
		}
		buf, err := t.fetch(newRoot)
		if err != nil {
			return err
		}
		n := node(buf.Page)
		n.setChild0(leftPg)
		n.intInsert(0, sepKey, rightPg)
		buf.Dirty.Store(true)
		t.pool.Put(buf)
		t.root = newRoot
		t.dirtyMet = true
		return nil
	}

	parent := path[len(path)-1]
	buf, err := t.fetch(parent.pg)
	if err != nil {
		return err
	}
	n := node(buf.Page)
	at := parent.idx + 1 // the new entry goes right after the taken child
	if n.intFits(len(sepKey)) {
		n.intInsert(at, sepKey, rightPg)
		buf.Dirty.Store(true)
		t.pool.Put(buf)
		return nil
	}

	// Split the internal node. Collect (key, child) entries plus child0.
	nk := n.nkeys()
	keys := make([][]byte, 0, nk+1)
	childs := make([]uint32, 0, nk+2)
	childs = append(childs, n.child0())
	for j := 0; j < nk; j++ {
		keys = append(keys, append([]byte(nil), n.intKey(j)...))
		childs = append(childs, n.intChild(j))
	}
	// Insert the new separator at position `at`.
	keys = append(keys[:at:at], append([][]byte{sepKey}, keys[at:]...)...)
	childs = append(childs[:at+1:at+1], append([]uint32{rightPg}, childs[at+1:]...)...)

	mid := len(keys) / 2
	promote := keys[mid]

	rightInt, err := t.allocPage(initInternal)
	if err != nil {
		t.pool.Put(buf)
		return err
	}

	// Rebuild left: keys[:mid], childs[:mid+1].
	initInternal(n)
	n.setChild0(childs[0])
	for j := 0; j < mid; j++ {
		n.intInsert(j, keys[j], childs[j+1])
	}
	buf.Dirty.Store(true)
	t.pool.Put(buf)

	// Build right: keys[mid+1:], childs[mid+1:].
	rbuf, err := t.fetch(rightInt)
	if err != nil {
		return err
	}
	rn := node(rbuf.Page)
	rn.setChild0(childs[mid+1])
	for j := mid + 1; j < len(keys); j++ {
		rn.intInsert(j-mid-1, keys[j], childs[j+1])
	}
	rbuf.Dirty.Store(true)
	t.pool.Put(rbuf)

	return t.insertIntoParent(path[:len(path)-1], parent.pg, promote, rightInt)
}

// Delete removes key, returning ErrNotFound if absent. Space within the
// leaf is reclaimed immediately and reused by later inserts; emptied
// leaves stay in place (scans skip them) and internal separators remain —
// the tree does not shrink, as in the 1.85-era implementation.
func (t *Tree) Delete(key []byte) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.checkWritable(); err != nil {
		return err
	}
	if len(key) == 0 {
		return ErrEmptyKey
	}
	t.nDels++
	leaf, _, err := t.descend(key)
	if err != nil {
		return err
	}
	buf, err := t.fetch(leaf)
	if err != nil {
		return err
	}
	n := node(buf.Page)
	i, found := leafSearch(n, key)
	if !found {
		t.pool.Put(buf)
		return ErrNotFound
	}
	if err := t.removeLeafEntry(n, i); err != nil {
		t.pool.Put(buf)
		return err
	}
	buf.Dirty.Store(true)
	t.pool.Put(buf)
	t.nrecords--
	t.dirtyMet = true
	return nil
}

// Len returns the number of stored pairs.
func (t *Tree) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return int(t.nrecords)
}

// Sync flushes dirty pages and the meta page.
func (t *Tree) Sync() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.checkOpen(); err != nil {
		return err
	}
	if t.readonly {
		return nil
	}
	return t.syncLocked()
}

func (t *Tree) syncLocked() error {
	if err := t.pool.Flush(); err != nil {
		return err
	}
	if t.dirtyMet {
		if err := t.writeMeta(); err != nil {
			return err
		}
	}
	err := t.store.Sync()
	if err == nil {
		t.nSyncs++
	}
	return err
}

// Close flushes (unless read-only) and closes the tree.
func (t *Tree) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil
	}
	var err error
	if !t.readonly {
		err = t.syncLocked()
	}
	if e := t.pool.InvalidateAll(); err == nil {
		err = e
	}
	if t.ownStore {
		if e := t.store.Close(); err == nil {
			err = e
		}
	}
	t.closed = true
	return err
}

// Store exposes the backing store for tests and benchmarks.
func (t *Tree) Store() pagefile.Store { return t.store }

// TreeStats reports the tree's shape, operation counts and cache
// behaviour for the uniform db.Stats view.
type TreeStats struct {
	Keys      int64
	Pages     uint32 // pages ever allocated, including the meta page
	FreePages int    // pages on the free list awaiting reuse
	Depth     int    // levels from root to leaf (1 = root is a leaf)
	PageSize  int
	Gets      int64
	GetMisses int64
	Puts      int64
	Deletes   int64
	Syncs     int64
	Cache     buffer.PoolCounters
}

// Stats computes the tree's statistics. The free list is walked (its
// pages are cached like any others); a closed tree returns ErrClosed.
func (t *Tree) Stats() (TreeStats, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.checkOpen(); err != nil {
		return TreeStats{}, err
	}
	s := TreeStats{
		Keys: t.nrecords, Pages: t.nextPage, PageSize: t.pagesize,
		Gets: t.nGets, GetMisses: t.nGetMisses, Puts: t.nPuts,
		Deletes: t.nDels, Syncs: t.nSyncs,
		Cache: t.pool.Counters(),
	}
	for pg, hops := t.freeHead, 0; pg != 0; hops++ {
		if hops > int(t.nextPage) {
			return TreeStats{}, fmt.Errorf("%w: free list cycles", ErrCorrupt)
		}
		buf, err := t.fetch(pg)
		if err != nil {
			return TreeStats{}, err
		}
		s.FreePages++
		pg = le.Uint32(buf.Page[4:])
		t.pool.Put(buf)
	}
	for pg := t.root; ; s.Depth++ {
		buf, err := t.fetch(pg)
		if err != nil {
			return TreeStats{}, err
		}
		n := node(buf.Page)
		typ := n.typ()
		next := uint32(0)
		if typ == typeInternal {
			next = n.intChild(-1)
		}
		t.pool.Put(buf)
		if typ == typeLeaf {
			s.Depth++
			return s, nil
		}
		if typ != typeInternal || next == 0 || next >= t.nextPage {
			return TreeStats{}, fmt.Errorf("%w: page %d type %#x in depth walk", ErrCorrupt, pg, typ)
		}
		pg = next
	}
}

package btree

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"testing"
	"testing/quick"
)

func mustOpen(t *testing.T, path string, opts *Options) *Tree {
	t.Helper()
	tr, err := Open(path, opts)
	if err != nil {
		t.Fatalf("Open(%q): %v", path, err)
	}
	return tr
}

func key(i int) []byte { return []byte(fmt.Sprintf("key-%06d", i)) }
func val(i int) []byte { return []byte(fmt.Sprintf("value-%d", i)) }

func TestPutGetRoundtrip(t *testing.T) {
	tr := mustOpen(t, "", nil)
	defer tr.Close()
	if err := tr.Put([]byte("hello"), []byte("world")); err != nil {
		t.Fatal(err)
	}
	got, err := tr.Get([]byte("hello"))
	if err != nil || string(got) != "world" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if _, err := tr.Get([]byte("missing")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get missing = %v", err)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestReplaceAndPutNew(t *testing.T) {
	tr := mustOpen(t, "", nil)
	defer tr.Close()
	tr.Put([]byte("k"), []byte("v1"))
	tr.Put([]byte("k"), []byte("v2"))
	if tr.Len() != 1 {
		t.Fatalf("Len = %d", tr.Len())
	}
	got, _ := tr.Get([]byte("k"))
	if string(got) != "v2" {
		t.Fatalf("Get = %q", got)
	}
	if err := tr.PutNew([]byte("k"), []byte("v3")); !errors.Is(err, ErrKeyExists) {
		t.Fatalf("PutNew dup = %v", err)
	}
	got, _ = tr.Get([]byte("k"))
	if string(got) != "v2" {
		t.Fatalf("PutNew clobbered: %q", got)
	}
}

func TestManyKeysWithSplits(t *testing.T) {
	const n = 20000
	tr := mustOpen(t, "", &Options{PageSize: 256})
	defer tr.Close()
	// Insert in a shuffled order so splits happen everywhere.
	order := rand.New(rand.NewSource(1)).Perm(n)
	for _, i := range order {
		if err := tr.Put(key(i), val(i)); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d", tr.Len())
	}
	for i := 0; i < n; i++ {
		got, err := tr.Get(key(i))
		if err != nil || !bytes.Equal(got, val(i)) {
			t.Fatalf("Get %d = %q, %v", i, got, err)
		}
	}
}

func TestOrderedScan(t *testing.T) {
	const n = 5000
	tr := mustOpen(t, "", &Options{PageSize: 512})
	defer tr.Close()
	order := rand.New(rand.NewSource(2)).Perm(n)
	for _, i := range order {
		if err := tr.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	c := tr.Cursor()
	var prev []byte
	count := 0
	for c.Next() {
		if prev != nil && bytes.Compare(prev, c.Key()) >= 0 {
			t.Fatalf("scan out of order: %q then %q", prev, c.Key())
		}
		prev = append(prev[:0], c.Key()...)
		count++
	}
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("scan saw %d, want %d", count, n)
	}
}

func TestSeek(t *testing.T) {
	tr := mustOpen(t, "", &Options{PageSize: 256})
	defer tr.Close()
	for i := 0; i < 1000; i += 2 { // even keys only
		if err := tr.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Seek to an existing key.
	c := tr.Seek(key(100))
	if !c.Next() || !bytes.Equal(c.Key(), key(100)) {
		t.Fatalf("Seek(existing) -> %q", c.Key())
	}
	if !c.Next() || !bytes.Equal(c.Key(), key(102)) {
		t.Fatalf("Next after seek -> %q", c.Key())
	}
	// Seek between keys lands on the successor.
	c = tr.Seek(key(101))
	if !c.Next() || !bytes.Equal(c.Key(), key(102)) {
		t.Fatalf("Seek(between) -> %q", c.Key())
	}
	// Seek past the end.
	c = tr.Seek(key(9999))
	if c.Next() {
		t.Fatalf("Seek(past end) -> %q", c.Key())
	}
	if c.Err() != nil {
		t.Fatal(c.Err())
	}
}

func TestDelete(t *testing.T) {
	const n = 3000
	tr := mustOpen(t, "", &Options{PageSize: 256})
	defer tr.Close()
	for i := 0; i < n; i++ {
		if err := tr.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i += 2 {
		if err := tr.Delete(key(i)); err != nil {
			t.Fatalf("Delete %d: %v", i, err)
		}
	}
	if tr.Len() != n/2 {
		t.Fatalf("Len = %d", tr.Len())
	}
	for i := 0; i < n; i++ {
		_, err := tr.Get(key(i))
		if i%2 == 0 && !errors.Is(err, ErrNotFound) {
			t.Fatalf("deleted %d: %v", i, err)
		}
		if i%2 == 1 && err != nil {
			t.Fatalf("kept %d: %v", i, err)
		}
	}
	// Scan skips deleted keys and stays ordered.
	c := tr.Cursor()
	count := 0
	for c.Next() {
		count++
	}
	if c.Err() != nil || count != n/2 {
		t.Fatalf("scan after delete: %d, %v", count, c.Err())
	}
	if err := tr.Delete(key(0)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete = %v", err)
	}
}

func TestDeleteEverythingThenReuse(t *testing.T) {
	tr := mustOpen(t, "", &Options{PageSize: 256})
	defer tr.Close()
	for round := 0; round < 3; round++ {
		for i := 0; i < 2000; i++ {
			if err := tr.Put(key(i), val(i)); err != nil {
				t.Fatalf("round %d Put %d: %v", round, i, err)
			}
		}
		for i := 0; i < 2000; i++ {
			if err := tr.Delete(key(i)); err != nil {
				t.Fatalf("round %d Delete %d: %v", round, i, err)
			}
		}
		if tr.Len() != 0 {
			t.Fatalf("round %d: Len = %d", round, tr.Len())
		}
		c := tr.Cursor()
		if c.Next() {
			t.Fatalf("round %d: scan of empty tree returned %q", round, c.Key())
		}
	}
}

func TestBigValues(t *testing.T) {
	tr := mustOpen(t, "", &Options{PageSize: 256})
	defer tr.Close()
	sizes := []int{100, 200, 1000, 10000, 200000}
	for _, sz := range sizes {
		k := []byte(fmt.Sprintf("big-%d", sz))
		v := bytes.Repeat([]byte{byte(sz)}, sz)
		if err := tr.Put(k, v); err != nil {
			t.Fatalf("Put %d bytes: %v", sz, err)
		}
	}
	for _, sz := range sizes {
		k := []byte(fmt.Sprintf("big-%d", sz))
		got, err := tr.Get(k)
		if err != nil || len(got) != sz || (sz > 0 && got[0] != byte(sz)) {
			t.Fatalf("Get %d bytes: got %d, %v", sz, len(got), err)
		}
	}
	// Replacing a big value frees its chain (pages go to the free list
	// and are reused, so the file stops growing).
	before := tr.nextPage
	for i := 0; i < 10; i++ {
		if err := tr.Put([]byte("big-200000"), bytes.Repeat([]byte{7}, 200000)); err != nil {
			t.Fatal(err)
		}
	}
	after := tr.nextPage
	if after > before+5 {
		t.Fatalf("chain pages leaked: nextPage %d -> %d over 10 rewrites", before, after)
	}
	// Big values survive a cursor scan too.
	c := tr.Cursor()
	found := 0
	for c.Next() {
		found++
	}
	if c.Err() != nil || found != len(sizes) {
		t.Fatalf("scan: %d, %v", found, c.Err())
	}
}

func TestKeyTooBig(t *testing.T) {
	tr := mustOpen(t, "", &Options{PageSize: 256})
	defer tr.Close()
	big := bytes.Repeat([]byte("k"), 256)
	if err := tr.Put(big, []byte("v")); !errors.Is(err, ErrKeyTooBig) {
		t.Fatalf("huge key = %v", err)
	}
	// Maximum legal key works.
	ok := bytes.Repeat([]byte("k"), tr.maxKey)
	if err := tr.Put(ok, []byte("v")); err != nil {
		t.Fatalf("max key: %v", err)
	}
	got, err := tr.Get(ok)
	if err != nil || string(got) != "v" {
		t.Fatalf("max key Get: %v", err)
	}
}

func TestEmptyKeyRejected(t *testing.T) {
	tr := mustOpen(t, "", nil)
	defer tr.Close()
	if err := tr.Put(nil, []byte("v")); !errors.Is(err, ErrEmptyKey) {
		t.Fatalf("Put(nil) = %v", err)
	}
	if _, err := tr.Get(nil); !errors.Is(err, ErrEmptyKey) {
		t.Fatalf("Get(nil) = %v", err)
	}
}

func TestPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bt.db")
	const n = 5000
	tr := mustOpen(t, path, &Options{PageSize: 512})
	for i := 0; i < n; i++ {
		if err := tr.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Put([]byte("big"), bytes.Repeat([]byte("B"), 50000)); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	tr = mustOpen(t, path, nil) // page size read from the file
	defer tr.Close()
	if tr.pagesize != 512 {
		t.Fatalf("reopened page size = %d", tr.pagesize)
	}
	if tr.Len() != n+1 {
		t.Fatalf("Len after reopen = %d", tr.Len())
	}
	for i := 0; i < n; i += 97 {
		got, err := tr.Get(key(i))
		if err != nil || !bytes.Equal(got, val(i)) {
			t.Fatalf("Get %d after reopen: %v", i, err)
		}
	}
	big, err := tr.Get([]byte("big"))
	if err != nil || len(big) != 50000 {
		t.Fatalf("big value after reopen: %d bytes, %v", len(big), err)
	}
}

func TestReadOnly(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ro.db")
	tr := mustOpen(t, path, nil)
	tr.Put([]byte("k"), []byte("v"))
	tr.Close()

	tr = mustOpen(t, path, &Options{ReadOnly: true})
	defer tr.Close()
	if _, err := tr.Get([]byte("k")); err != nil {
		t.Fatal(err)
	}
	if err := tr.Put([]byte("k2"), nil); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Put on read-only = %v", err)
	}
	if err := tr.Delete([]byte("k")); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Delete on read-only = %v", err)
	}
}

func TestOpenGarbageFails(t *testing.T) {
	store := mustOpen(t, "", nil)
	store.Put([]byte("k"), []byte("v"))
	s := store.Store()
	store.Close()
	buf := make([]byte, s.PageSize())
	s.ReadPage(0, buf)
	le.PutUint32(buf[4:], 0x12345678)
	s.WritePage(0, buf)
	if _, err := Open("", &Options{Store: s, PageSize: s.PageSize()}); err == nil {
		t.Fatal("opened corrupt meta page")
	}
}

func TestModelEquivalence(t *testing.T) {
	for _, ps := range []int{128, 512, 4096} {
		t.Run(fmt.Sprintf("pagesize=%d", ps), func(t *testing.T) {
			tr := mustOpen(t, "", &Options{PageSize: ps})
			defer tr.Close()
			rng := rand.New(rand.NewSource(int64(ps)))
			model := map[string][]byte{}
			for op := 0; op < 6000; op++ {
				k := fmt.Sprintf("k%04d", rng.Intn(800))
				switch rng.Intn(4) {
				case 0, 1:
					var v []byte
					if rng.Intn(15) == 0 {
						v = bytes.Repeat([]byte{byte(op)}, 500+rng.Intn(3000))
					} else {
						v = []byte(fmt.Sprintf("v%d", op))
					}
					if err := tr.Put([]byte(k), v); err != nil {
						t.Fatalf("op %d Put: %v", op, err)
					}
					model[k] = v
				case 2:
					err := tr.Delete([]byte(k))
					if _, ok := model[k]; ok && err != nil {
						t.Fatalf("op %d Delete: %v", op, err)
					}
					delete(model, k)
				case 3:
					got, err := tr.Get([]byte(k))
					want, ok := model[k]
					if ok && (err != nil || !bytes.Equal(got, want)) {
						t.Fatalf("op %d Get: %d bytes, %v; want %d", op, len(got), err, len(want))
					}
					if !ok && !errors.Is(err, ErrNotFound) {
						t.Fatalf("op %d Get missing: %v", op, err)
					}
				}
				if tr.Len() != len(model) {
					t.Fatalf("op %d: Len=%d model=%d", op, tr.Len(), len(model))
				}
			}
			// Ordered full-scan equivalence.
			keys := make([]string, 0, len(model))
			for k := range model {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			c := tr.Cursor()
			idx := 0
			for c.Next() {
				if idx >= len(keys) {
					t.Fatalf("scan returned extra key %q", c.Key())
				}
				if string(c.Key()) != keys[idx] {
					t.Fatalf("scan[%d] = %q, want %q", idx, c.Key(), keys[idx])
				}
				if !bytes.Equal(c.Value(), model[keys[idx]]) {
					t.Fatalf("scan value for %q wrong", c.Key())
				}
				idx++
			}
			if c.Err() != nil || idx != len(keys) {
				t.Fatalf("scan ended at %d of %d: %v", idx, len(keys), c.Err())
			}
		})
	}
}

// Property: sorted insertion order equals scan order for arbitrary keys.
func TestQuickScanOrder(t *testing.T) {
	f := func(raw [][]byte) bool {
		tr, err := Open("", &Options{PageSize: 128})
		if err != nil {
			return false
		}
		defer tr.Close()
		model := map[string]bool{}
		for _, k := range raw {
			if len(k) == 0 || len(k) > tr.maxKey {
				continue
			}
			if err := tr.Put(k, nil); err != nil {
				return false
			}
			model[string(k)] = true
		}
		want := make([]string, 0, len(model))
		for k := range model {
			want = append(want, k)
		}
		sort.Strings(want)
		c := tr.Cursor()
		i := 0
		for c.Next() {
			if i >= len(want) || string(c.Key()) != want[i] {
				return false
			}
			i++
		}
		return c.Err() == nil && i == len(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCursorDuringMutation(t *testing.T) {
	tr := mustOpen(t, "", &Options{PageSize: 256})
	defer tr.Close()
	for i := 0; i < 1000; i++ {
		tr.Put(key(i), val(i))
	}
	c := tr.Cursor()
	n := 0
	for c.Next() {
		n++
		if n%7 == 0 {
			_ = tr.Delete(key(n))
			_ = tr.Put([]byte(fmt.Sprintf("zz-new-%d", n)), nil)
		}
	}
	if c.Err() != nil {
		t.Fatalf("cursor during mutation: %v", c.Err())
	}
	// Integrity afterwards.
	c2 := tr.Cursor()
	count := 0
	var prev []byte
	for c2.Next() {
		if prev != nil && bytes.Compare(prev, c2.Key()) >= 0 {
			t.Fatal("order violated after mutation storm")
		}
		prev = append(prev[:0], c2.Key()...)
		count++
	}
	if c2.Err() != nil || count != tr.Len() {
		t.Fatalf("rescan: %d vs Len %d, %v", count, tr.Len(), c2.Err())
	}
}

func TestSequentialInsertAscendingAndDescending(t *testing.T) {
	for _, dir := range []string{"asc", "desc"} {
		t.Run(dir, func(t *testing.T) {
			tr := mustOpen(t, "", &Options{PageSize: 128})
			defer tr.Close()
			const n = 5000
			for i := 0; i < n; i++ {
				j := i
				if dir == "desc" {
					j = n - 1 - i
				}
				if err := tr.Put(key(j), val(j)); err != nil {
					t.Fatalf("Put %d: %v", j, err)
				}
			}
			if tr.Len() != n {
				t.Fatalf("Len = %d", tr.Len())
			}
			for i := 0; i < n; i += 53 {
				if _, err := tr.Get(key(i)); err != nil {
					t.Fatalf("Get %d: %v", i, err)
				}
			}
		})
	}
}

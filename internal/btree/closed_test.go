package btree

import (
	"errors"
	"testing"
)

func TestOperationsOnClosedTree(t *testing.T) {
	tr := mustOpen(t, "", nil)
	tr.Put([]byte("k"), []byte("v"))
	c := tr.Cursor()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("double Close = %v", err)
	}
	if c.Next() {
		t.Fatal("cursor advanced on a closed tree")
	}
	if !errors.Is(c.Err(), ErrClosed) {
		t.Fatalf("cursor error = %v", c.Err())
	}
	if _, err := tr.Get([]byte("k")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Get = %v", err)
	}
	if err := tr.Put([]byte("k"), nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Put = %v", err)
	}
	if err := tr.Delete([]byte("k")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Delete = %v", err)
	}
	if err := tr.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Sync = %v", err)
	}
	if err := tr.Check(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Check = %v", err)
	}
}

func TestHasHelper(t *testing.T) {
	tr := mustOpen(t, "", nil)
	defer tr.Close()
	tr.Put([]byte("k"), []byte("v"))
	if ok, err := tr.Has([]byte("k")); err != nil || !ok {
		t.Fatalf("Has present = %v, %v", ok, err)
	}
	if ok, err := tr.Has([]byte("zz")); err != nil || ok {
		t.Fatalf("Has absent = %v, %v", ok, err)
	}
}

package telemetry

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"unixhash/internal/metrics"
	"unixhash/internal/trace"
)

func get(t *testing.T, h http.Handler, path string) (int, string) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	body, _ := io.ReadAll(rec.Result().Body)
	return rec.Code, string(body)
}

// TestHandlerFull exercises every endpoint with all sources attached.
func TestHandlerFull(t *testing.T) {
	reg := metrics.New()
	reg.Counter("test_ops_total").Add(3)
	tr := trace.New(64)
	tr.Emit(trace.EvSplitBegin, 1, 2, 3, 0)
	tr.Emit(trace.EvSyncBegin, 7, 0, 0, 0)
	h := NewHandler(Options{
		Registry: reg,
		Tracer:   tr,
		Stats:    func() (any, error) { return map[string]int{"keys": 42}, nil },
		Heatmap:  func() (any, error) { return map[string]int{"buckets": 4}, nil },
	})

	if code, body := get(t, h, "/"); code != 200 || !strings.Contains(body, "/metrics") {
		t.Fatalf("index: %d %q", code, body)
	}
	if code, body := get(t, h, "/metrics"); code != 200 || !strings.Contains(body, "test_ops_total 3") {
		t.Fatalf("/metrics: %d %q", code, body)
	}
	if code, body := get(t, h, "/stats"); code != 200 || !strings.Contains(body, `"keys": 42`) {
		t.Fatalf("/stats: %d %q", code, body)
	}
	if code, body := get(t, h, "/debug/heatmap"); code != 200 || !strings.Contains(body, `"buckets": 4`) {
		t.Fatalf("/debug/heatmap: %d %q", code, body)
	}

	code, body := get(t, h, "/debug/events")
	if code != 200 {
		t.Fatalf("/debug/events: %d %q", code, body)
	}
	var evs struct {
		NextSeq uint64            `json:"next_seq"`
		Count   int               `json:"count"`
		Events  []json.RawMessage `json:"events"`
	}
	if err := json.Unmarshal([]byte(body), &evs); err != nil {
		t.Fatalf("/debug/events not JSON: %v", err)
	}
	if evs.Count != 2 || evs.NextSeq != 2 {
		t.Fatalf("/debug/events: count=%d next=%d, want 2/2", evs.Count, evs.NextSeq)
	}

	// Filter: only the sync event.
	if code, body := get(t, h, "/debug/events?type=sync-begin"); code != 200 || strings.Contains(body, "split-begin") {
		t.Fatalf("filtered events leaked other types: %d %q", code, body)
	}
	if code, _ := get(t, h, "/debug/events?type=bogus"); code != http.StatusBadRequest {
		t.Fatalf("unknown type filter: %d, want 400", code)
	}
	if code, _ := get(t, h, "/debug/events?n=abc"); code != http.StatusBadRequest {
		t.Fatalf("bad n: %d, want 400", code)
	}
	if code, _ := get(t, h, "/debug/slowops"); code != 200 {
		t.Fatalf("/debug/slowops: %d", code)
	}
	if code, _ := get(t, h, "/debug/pprof/"); code != 200 {
		t.Fatalf("/debug/pprof/: %d", code)
	}
	if code, _ := get(t, h, "/no/such/path"); code != http.StatusNotFound {
		t.Fatalf("unknown path: %d, want 404", code)
	}
}

// TestHandlerEmpty: every optional source missing answers 404 with an
// explanatory body, never a panic or a 500.
func TestHandlerEmpty(t *testing.T) {
	h := NewHandler(Options{})
	for _, path := range []string{"/metrics", "/stats", "/debug/events", "/debug/slowops", "/debug/heatmap"} {
		code, body := get(t, h, path)
		if code != http.StatusNotFound || body == "" {
			t.Fatalf("%s with no source: %d %q, want 404 with body", path, code, body)
		}
	}
}

// TestHandlerStatsError: a failing stats source is a 500 carrying the
// error text.
func TestHandlerStatsError(t *testing.T) {
	h := NewHandler(Options{Stats: func() (any, error) { return nil, errors.New("table closed") }})
	code, body := get(t, h, "/stats")
	if code != http.StatusInternalServerError || !strings.Contains(body, "table closed") {
		t.Fatalf("/stats error: %d %q", code, body)
	}
}

// TestServeLifecycle: Serve listens on a real port, answers, and stops
// answering after Close; double Close is safe.
func TestServeLifecycle(t *testing.T) {
	s, err := Serve("127.0.0.1:0", Options{Stats: func() (any, error) { return "ok", nil }})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(s.URL() + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("live /stats: %d", resp.StatusCode)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := http.Get(s.URL() + "/stats"); err == nil {
		t.Fatal("server still answering after Close")
	}
}

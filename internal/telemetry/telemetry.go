// Package telemetry is the hashing package's live observation surface:
// an opt-in HTTP server that exposes the metrics registry in Prometheus
// text format, a JSON stats view, the trace ring and slow-op history,
// a per-bucket heatmap, and net/http/pprof — everything needed to watch
// and debug a table under load without stopping it.
//
// The package is deliberately generic: it serves closures and interfaces
// (a *metrics.Registry, a *trace.Tracer, stats/heatmap functions), so
// both the core table (Options.TelemetryAddr) and the cross-method db
// layer (db.ServeTelemetry) can mount their own views without an import
// cycle. Handlers only ever read — a scrape never takes the table's
// write lock — and every endpoint is safe to hit while a workload runs.
//
// Endpoints:
//
//	/                      index of everything below
//	/metrics               Prometheus text exposition (metrics.WriteProm)
//	/stats                 JSON statistics snapshot
//	/debug/events          recent trace ring contents; ?type=NAME (repeatable)
//	                       filters by event type, ?n=N caps the count
//	/debug/slowops         captured slow-operation spans
//	/debug/heatmap         per-bucket fill factor and chain depth
//	/debug/oplog           per-command, per-shard phase-latency summary
//	/debug/oplog/exemplars slowest request ledgers per command per window
//	/debug/pprof/...       the standard runtime profiles
package telemetry

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"time"

	"unixhash/internal/metrics"
	"unixhash/internal/trace"
)

// Options selects what a telemetry handler serves. Nil fields disable
// their endpoint (it answers 404 with an explanatory body).
type Options struct {
	// Registry backs /metrics.
	Registry *metrics.Registry
	// Tracer backs /debug/events and /debug/slowops.
	Tracer *trace.Tracer
	// Stats computes the /stats JSON payload per request.
	Stats func() (any, error)
	// Heatmap computes the /debug/heatmap JSON payload per request.
	Heatmap func() (any, error)
	// Oplog computes the /debug/oplog JSON payload (per-command,
	// per-shard phase-latency summary) per request.
	Oplog func() (any, error)
	// OplogExemplars computes the /debug/oplog/exemplars JSON payload
	// (slowest full ledgers per command per window) per request.
	OplogExemplars func() (any, error)
}

// NewHandler builds the telemetry endpoint tree.
func NewHandler(o Options) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, "unixhash telemetry\n\n"+
			"/metrics          Prometheus text format\n"+
			"/stats            JSON statistics\n"+
			"/debug/events     trace ring (?type=NAME&n=N)\n"+
			"/debug/slowops    slow-operation spans\n"+
			"/debug/heatmap    per-bucket fill and chain depth\n"+
			"/debug/oplog      per-command phase-latency summary\n"+
			"/debug/oplog/exemplars  slowest request ledgers per window\n"+
			"/debug/pprof/     runtime profiles\n")
	})

	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if o.Registry == nil {
			http.Error(w, "no metrics registry attached", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := o.Registry.WriteProm(w); err != nil {
			// Headers are gone; all we can do is cut the response short.
			return
		}
	})

	mux.HandleFunc("/stats", jsonEndpoint(o.Stats, "no stats source attached"))
	mux.HandleFunc("/debug/heatmap", jsonEndpoint(o.Heatmap, "no heatmap source attached"))
	mux.HandleFunc("/debug/oplog", jsonEndpoint(o.Oplog, "no op ledger recorder attached"))
	mux.HandleFunc("/debug/oplog/exemplars", jsonEndpoint(o.OplogExemplars, "no op ledger recorder attached"))

	mux.HandleFunc("/debug/events", func(w http.ResponseWriter, r *http.Request) {
		if o.Tracer == nil {
			http.Error(w, "no tracer attached", http.StatusNotFound)
			return
		}
		q := r.URL.Query()
		max := 0
		if s := q.Get("n"); s != "" {
			n, err := strconv.Atoi(s)
			if err != nil || n < 0 {
				http.Error(w, "bad n: "+s, http.StatusBadRequest)
				return
			}
			max = n
		}
		var types []trace.Type
		for _, name := range q["type"] {
			ty := trace.ParseType(name)
			if ty == trace.EvNone {
				http.Error(w, "unknown event type: "+name, http.StatusBadRequest)
				return
			}
			types = append(types, ty)
		}
		evs := o.Tracer.Events(max, types...)
		writeJSON(w, struct {
			NextSeq uint64        `json:"next_seq"`
			Count   int           `json:"count"`
			Events  []trace.Event `json:"events"`
		}{o.Tracer.Ring().Next(), len(evs), evs})
	})

	mux.HandleFunc("/debug/slowops", func(w http.ResponseWriter, r *http.Request) {
		if o.Tracer == nil {
			http.Error(w, "no tracer attached", http.StatusNotFound)
			return
		}
		ops, seen := o.Tracer.SlowOps()
		writeJSON(w, struct {
			ThresholdNS int64          `json:"threshold_ns"`
			Seen        uint64         `json:"seen"`
			Retained    int            `json:"retained"`
			Ops         []trace.SlowOp `json:"ops"`
		}{int64(o.Tracer.SlowOpThreshold()), seen, len(ops), ops})
	})

	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// jsonEndpoint adapts a payload closure into a JSON GET handler.
func jsonEndpoint(src func() (any, error), missing string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if src == nil {
			http.Error(w, missing, http.StatusNotFound)
			return
		}
		v, err := src()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, v)
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// Server is a running telemetry listener.
type Server struct {
	ln   net.Listener
	srv  *http.Server
	once sync.Once

	mu  sync.Mutex
	err error // Serve's exit error, if any
}

// Serve starts a telemetry server on addr (host:port; ":0" picks a free
// port — read the choice back with Addr). It returns once the listener
// is accepting.
func Serve(addr string, o Options) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	s := &Server{ln: ln, srv: &http.Server{
		Handler:           NewHandler(o),
		ReadHeaderTimeout: 10 * time.Second,
	}}
	go func() {
		err := s.srv.Serve(ln)
		if err != nil && err != http.ErrServerClosed {
			s.mu.Lock()
			s.err = err
			s.mu.Unlock()
		}
	}()
	return s, nil
}

// Addr reports the server's actual listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// URL reports the server's base URL.
func (s *Server) URL() string { return "http://" + s.Addr() }

// Close stops the listener and closes open connections immediately. It
// does not wait for in-flight handlers — the sources being served may
// be shutting down behind locks those handlers are queued on. Safe to
// call more than once.
func (s *Server) Close() error {
	var err error
	s.once.Do(func() { err = s.srv.Close() })
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

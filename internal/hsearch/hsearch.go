// Package hsearch is a clean-room Go port of the System V hsearch(3)
// routines as the paper describes them: a fixed-size, memory-resident
// hash table created with an element-count estimate, using Knuth's
// multiplicative hashing for the primary bucket address and a secondary
// multiplicative hash for the probe interval (double hashing). If no
// empty bucket is found an insertion fails with a "table full" condition.
//
// The AT&T compile-time options are reproduced as runtime options:
//
//	DIV      — division hashing with linear probing
//	BRENT    — Brent's insertion-time rearrangement [BRE73], shortening
//	           long probe sequences by lengthening short ones
//	CHAINED  — linked-list collision resolution, optionally with
//	           SORTUP/SORTDOWN chain ordering
//
// The port keeps hsearch's documented shortcomings, which the paper's
// comparison depends on: one fixed-size table, inserts fail when it
// fills, and nothing can be stored to disk.
package hsearch

import (
	"errors"

	"unixhash/internal/hashfunc"
)

// Errors returned by table operations.
var (
	ErrTableFull = errors.New("hsearch: table full")
	ErrNotFound  = errors.New("hsearch: key not found")
)

// Method selects the collision-resolution strategy.
type Method int

// Collision-resolution strategies (the AT&T compile options).
const (
	DoubleHash Method = iota // default: multiplicative hash, secondary probe interval
	Div                      // "DIV": division hash, linear probing
	Chained                  // "CHAINED": linked lists
)

// ChainOrder orders chains in Chained mode.
type ChainOrder int

// Chain orderings ("SORTUP"/"SORTDOWN"); Unsorted prepends, the default.
const (
	Unsorted ChainOrder = iota
	SortUp
	SortDown
)

// Options configures a Table beyond the element-count estimate.
type Options struct {
	Method Method
	// Brent enables Brent's rearrangement (open-addressing methods only).
	Brent bool
	// Order sorts chains in Chained mode.
	Order ChainOrder
	// Threshold is the probe-chain length beyond which Brent's
	// rearrangement kicks in; Brent suggests 2 (the default).
	Threshold int
	// Hash overrides the primary hash function — the AT&T "USCR"
	// compile option ("users may specify their own hash function"),
	// exposed at runtime.
	Hash hashfunc.Func
}

type slot struct {
	key  string
	data []byte
	used bool
}

type chainNode struct {
	key  string
	data []byte
	next *chainNode
}

// Table is a fixed-size hsearch hash table.
type Table struct {
	opts  Options
	size  int
	count int

	slots  []slot       // open addressing
	chains []*chainNode // chained

	// Probes counts every slot inspection, for the comparison harness.
	Probes int64
}

// New creates a table sized for about nelem elements. As in hsearch, the
// size is fixed: for open addressing the table holds at most its size and
// insertion beyond that fails. The size is rounded up to a prime so the
// double-hashing probe interval is coprime with it.
func New(nelem int, opts *Options) *Table {
	var o Options
	if opts != nil {
		o = *opts
	}
	if o.Threshold <= 0 {
		o.Threshold = 2
	}
	if nelem < 1 {
		nelem = 1
	}
	t := &Table{opts: o, size: nextPrime(nelem)}
	if o.Method == Chained {
		t.chains = make([]*chainNode, t.size)
	} else {
		t.slots = make([]slot, t.size)
	}
	return t
}

// Size returns the (fixed) table size.
func (t *Table) Size() int { return t.size }

// Len returns the number of stored entries.
func (t *Table) Len() int { return t.count }

// primary returns the primary bucket index for key.
func (t *Table) primary(key string) int {
	if t.opts.Hash != nil {
		return int(t.opts.Hash([]byte(key)) % uint32(t.size))
	}
	if t.opts.Method == Div {
		return int(hashfunc.Division([]byte(key)) % uint32(t.size))
	}
	return int(hashfunc.KnuthMultiplicative([]byte(key)) % uint32(t.size))
}

// interval returns the probe interval for key: 1 for linear probing, a
// secondary multiplicative hash otherwise. The table size is prime, so
// any interval in [1, size) visits every slot.
func (t *Table) interval(key string) int {
	if t.opts.Method == Div {
		return 1
	}
	if t.size <= 2 {
		return 1
	}
	h2 := hashfunc.FNV1a([]byte(key)) // an independent mix for the interval
	return 1 + int(h2%uint32(t.size-1))
}

// Find returns the data stored under key.
func (t *Table) Find(key string) ([]byte, bool) {
	if t.opts.Method == Chained {
		for n := t.chains[t.primary(key)]; n != nil; n = n.next {
			t.Probes++
			if n.key == key {
				return n.data, true
			}
			if t.opts.Order == SortUp && n.key > key {
				return nil, false
			}
			if t.opts.Order == SortDown && n.key < key {
				return nil, false
			}
		}
		return nil, false
	}
	pos := t.primary(key)
	step := t.interval(key)
	for i := 0; i < t.size; i++ {
		t.Probes++
		s := &t.slots[pos]
		if !s.used {
			return nil, false
		}
		if s.key == key {
			return s.data, true
		}
		pos = (pos + step) % t.size
	}
	return nil, false
}

// Enter stores data under key (hsearch's ENTER action). An existing
// entry's data is replaced, matching hsearch's return-the-entry
// behaviour. It fails with ErrTableFull when no slot is free.
func (t *Table) Enter(key string, data []byte) error {
	if t.opts.Method == Chained {
		return t.enterChained(key, data)
	}
	return t.enterOpen(key, data)
}

func (t *Table) enterChained(key string, data []byte) error {
	b := t.primary(key)
	var prev *chainNode
	for n := t.chains[b]; n != nil; n = n.next {
		t.Probes++
		if n.key == key {
			n.data = data
			return nil
		}
		if t.opts.Order == SortUp && n.key > key {
			break
		}
		if t.opts.Order == SortDown && n.key < key {
			break
		}
		prev = n
	}
	node := &chainNode{key: key, data: data}
	switch {
	case t.opts.Order == Unsorted || prev == nil:
		// By default new entries go at the head of the chain; a sorted
		// insertion before the first node also lands at the head.
		node.next = t.chains[b]
		t.chains[b] = node
	default:
		node.next = prev.next
		prev.next = node
	}
	t.count++
	return nil
}

func (t *Table) enterOpen(key string, data []byte) error {
	pos := t.primary(key)
	step := t.interval(key)
	probeSeq := make([]int, 0, 8)
	for i := 0; i < t.size; i++ {
		t.Probes++
		s := &t.slots[pos]
		if !s.used {
			if t.opts.Brent && i > t.opts.Threshold {
				if t.brentRearrange(probeSeq, i, key, data) {
					t.count++
					return nil
				}
			}
			t.slots[pos] = slot{key: key, data: data, used: true}
			t.count++
			return nil
		}
		if s.key == key {
			s.data = data
			return nil
		}
		probeSeq = append(probeSeq, pos)
		pos = (pos + step) % t.size
	}
	return ErrTableFull
}

// brentRearrange attempts Brent's improvement: instead of placing the new
// key at probe depth d, move a colliding key (one appearing earlier in
// the new key's probe sequence) one or more steps along its own sequence
// to a free slot, if the total probe cost drops. Returns true if the new
// key was placed by rearrangement.
func (t *Table) brentRearrange(probeSeq []int, d int, key string, data []byte) bool {
	bestCost := d // cost of simply placing the new key at depth d
	bestI, bestTarget := -1, -1
	for i, pos := range probeSeq {
		occ := t.slots[pos]
		step := t.interval(occ.key)
		// Try moving the occupant up to (bestCost - i - 1) further steps.
		p := pos
		for j := 1; i+j < bestCost; j++ {
			p = (p + step) % t.size
			t.Probes++
			if !t.slots[p].used {
				bestCost = i + j
				bestI, bestTarget = i, p
				break
			}
			if t.slots[p].key == key {
				break // never hop over the key being inserted
			}
		}
	}
	if bestI < 0 {
		return false
	}
	from := probeSeq[bestI]
	t.slots[bestTarget] = t.slots[from]
	t.slots[from] = slot{key: key, data: data, used: true}
	return true
}

// Delete removes key. (System V hsearch had no delete; it is provided for
// the test harness and marked as an extension. In open addressing the
// slot is re-filled by re-inserting the cluster that follows it, keeping
// probe sequences intact.)
func (t *Table) Delete(key string) error {
	if t.opts.Method == Chained {
		b := t.primary(key)
		var prev *chainNode
		for n := t.chains[b]; n != nil; n = n.next {
			if n.key == key {
				if prev == nil {
					t.chains[b] = n.next
				} else {
					prev.next = n.next
				}
				t.count--
				return nil
			}
			prev = n
		}
		return ErrNotFound
	}
	// Open addressing: find the slot, vacate it, then re-enter every
	// entry whose probe path could have crossed it. With double hashing
	// the only safe general approach is to re-insert all entries that
	// follow in any cluster; simplest correct form: rebuild.
	pos := t.primary(key)
	step := t.interval(key)
	found := -1
	for i := 0; i < t.size; i++ {
		s := &t.slots[pos]
		if !s.used {
			break
		}
		if s.key == key {
			found = pos
			break
		}
		pos = (pos + step) % t.size
	}
	if found < 0 {
		return ErrNotFound
	}
	old := t.slots
	t.slots = make([]slot, t.size)
	t.count = 0
	for i, s := range old {
		if !s.used || i == found {
			continue
		}
		if err := t.enterOpen(s.key, s.data); err != nil {
			// Cannot happen: we are re-inserting fewer entries.
			t.slots = old
			return err
		}
	}
	return nil
}

// ForEach visits every entry.
func (t *Table) ForEach(fn func(key string, data []byte) bool) {
	if t.opts.Method == Chained {
		for _, c := range t.chains {
			for n := c; n != nil; n = n.next {
				if !fn(n.key, n.data) {
					return
				}
			}
		}
		return
	}
	for i := range t.slots {
		if t.slots[i].used {
			if !fn(t.slots[i].key, t.slots[i].data) {
				return
			}
		}
	}
}

// MaxChain returns the longest chain (Chained) or 0; used by tests.
func (t *Table) MaxChain() int {
	maxLen := 0
	for _, c := range t.chains {
		n := 0
		for node := c; node != nil; node = node.next {
			n++
		}
		if n > maxLen {
			maxLen = n
		}
	}
	return maxLen
}

// nextPrime returns the smallest prime >= n.
func nextPrime(n int) int {
	if n <= 2 {
		return 2
	}
	if n%2 == 0 {
		n++
	}
	for ; ; n += 2 {
		if isPrime(n) {
			return n
		}
	}
}

func isPrime(n int) bool {
	if n < 2 {
		return false
	}
	if n%2 == 0 {
		return n == 2
	}
	for d := 3; d*d <= n; d += 2 {
		if n%d == 0 {
			return false
		}
	}
	return true
}

package hsearch

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func allMethods() map[string]*Options {
	return map[string]*Options{
		"double":         {Method: DoubleHash},
		"double+brent":   {Method: DoubleHash, Brent: true},
		"div":            {Method: Div},
		"div+brent":      {Method: Div, Brent: true},
		"chained":        {Method: Chained},
		"chained+sortup": {Method: Chained, Order: SortUp},
		"chained+sortdn": {Method: Chained, Order: SortDown},
	}
}

func TestEnterFind(t *testing.T) {
	for name, opts := range allMethods() {
		t.Run(name, func(t *testing.T) {
			tbl := New(100, opts)
			for i := 0; i < 50; i++ {
				if err := tbl.Enter(fmt.Sprintf("key%d", i), []byte(fmt.Sprintf("v%d", i))); err != nil {
					t.Fatalf("Enter %d: %v", i, err)
				}
			}
			if tbl.Len() != 50 {
				t.Fatalf("Len = %d", tbl.Len())
			}
			for i := 0; i < 50; i++ {
				got, ok := tbl.Find(fmt.Sprintf("key%d", i))
				if !ok || string(got) != fmt.Sprintf("v%d", i) {
					t.Fatalf("Find %d = %q, %v", i, got, ok)
				}
			}
			if _, ok := tbl.Find("missing"); ok {
				t.Fatal("found missing key")
			}
		})
	}
}

func TestEnterReplaces(t *testing.T) {
	for name, opts := range allMethods() {
		t.Run(name, func(t *testing.T) {
			tbl := New(10, opts)
			tbl.Enter("k", []byte("v1"))
			tbl.Enter("k", []byte("v2"))
			if tbl.Len() != 1 {
				t.Fatalf("Len = %d", tbl.Len())
			}
			got, _ := tbl.Find("k")
			if string(got) != "v2" {
				t.Fatalf("Find = %q", got)
			}
		})
	}
}

func TestTableFull(t *testing.T) {
	// The paper: "If no bucket is found, an insertion fails with a
	// 'table full' condition." Open addressing only; chains grow forever.
	for _, name := range []string{"double", "double+brent", "div", "div+brent"} {
		opts := allMethods()[name]
		t.Run(name, func(t *testing.T) {
			tbl := New(10, opts)
			size := tbl.Size()
			var fullErr error
			for i := 0; i < size*2; i++ {
				if err := tbl.Enter(fmt.Sprintf("key%d", i), []byte("v")); err != nil {
					fullErr = err
					break
				}
			}
			if !errors.Is(fullErr, ErrTableFull) {
				t.Fatalf("overfilling = %v, want ErrTableFull", fullErr)
			}
			if tbl.Len() != size {
				t.Fatalf("Len = %d, want %d (size)", tbl.Len(), size)
			}
			// Everything entered before the failure is still findable.
			for i := 0; i < tbl.Len(); i++ {
				if _, ok := tbl.Find(fmt.Sprintf("key%d", i)); !ok {
					t.Fatalf("key%d lost after table filled", i)
				}
			}
		})
	}
}

func TestChainedNeverFull(t *testing.T) {
	tbl := New(4, &Options{Method: Chained})
	for i := 0; i < 1000; i++ {
		if err := tbl.Enter(fmt.Sprintf("key%d", i), []byte("v")); err != nil {
			t.Fatalf("chained Enter %d: %v", i, err)
		}
	}
	if tbl.Len() != 1000 {
		t.Fatalf("Len = %d", tbl.Len())
	}
}

func TestSortedChains(t *testing.T) {
	for _, order := range []ChainOrder{SortUp, SortDown} {
		tbl := New(1, &Options{Method: Chained, Order: order}) // one bucket: everything chains
		keys := []string{"delta", "alpha", "echo", "bravo", "charlie"}
		for _, k := range keys {
			if err := tbl.Enter(k, []byte(k)); err != nil {
				t.Fatal(err)
			}
		}
		var got []string
		tbl.ForEach(func(k string, _ []byte) bool {
			got = append(got, k)
			return true
		})
		for i := 1; i < len(got); i++ {
			if order == SortUp && got[i-1] > got[i] {
				t.Fatalf("SortUp chain out of order: %v", got)
			}
			if order == SortDown && got[i-1] < got[i] {
				t.Fatalf("SortDown chain out of order: %v", got)
			}
		}
		// All keys present.
		for _, k := range keys {
			if _, ok := tbl.Find(k); !ok {
				t.Fatalf("%q lost in sorted chain", k)
			}
		}
	}
}

func TestBrentReducesRetrievalProbes(t *testing.T) {
	// Brent's rearrangement exists to shorten retrieval probe sequences
	// on loaded tables. Compare total Find probes with and without it.
	keys := make([]string, 0, 900)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 900; i++ {
		keys = append(keys, fmt.Sprintf("key-%d-%d", i, rng.Int()))
	}

	probes := func(brent bool) int64 {
		tbl := New(1000, &Options{Method: DoubleHash, Brent: brent})
		for _, k := range keys {
			if err := tbl.Enter(k, []byte("v")); err != nil {
				t.Fatal(err)
			}
		}
		tbl.Probes = 0
		for _, k := range keys {
			if _, ok := tbl.Find(k); !ok {
				t.Fatalf("%q lost", k)
			}
		}
		return tbl.Probes
	}

	plain := probes(false)
	brent := probes(true)
	if brent > plain {
		t.Fatalf("Brent increased retrieval probes: %d > %d", brent, plain)
	}
}

func TestDelete(t *testing.T) {
	for name, opts := range allMethods() {
		t.Run(name, func(t *testing.T) {
			tbl := New(200, opts)
			for i := 0; i < 100; i++ {
				tbl.Enter(fmt.Sprintf("key%d", i), []byte("v"))
			}
			for i := 0; i < 100; i += 2 {
				if err := tbl.Delete(fmt.Sprintf("key%d", i)); err != nil {
					t.Fatalf("Delete %d: %v", i, err)
				}
			}
			if tbl.Len() != 50 {
				t.Fatalf("Len = %d", tbl.Len())
			}
			for i := 0; i < 100; i++ {
				_, ok := tbl.Find(fmt.Sprintf("key%d", i))
				if i%2 == 0 && ok {
					t.Fatalf("deleted key%d still found", i)
				}
				if i%2 == 1 && !ok {
					t.Fatalf("kept key%d lost", i)
				}
			}
			if err := tbl.Delete("key0"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("double delete = %v", err)
			}
		})
	}
}

func TestModelEquivalence(t *testing.T) {
	for name, opts := range allMethods() {
		t.Run(name, func(t *testing.T) {
			tbl := New(500, opts)
			rng := rand.New(rand.NewSource(21))
			model := map[string]string{}
			for op := 0; op < 3000; op++ {
				k := fmt.Sprintf("k%d", rng.Intn(200))
				switch rng.Intn(3) {
				case 0, 1:
					v := fmt.Sprintf("v%d", op)
					if err := tbl.Enter(k, []byte(v)); err != nil {
						t.Fatalf("op %d: %v", op, err)
					}
					model[k] = v
				case 2:
					err := tbl.Delete(k)
					if _, ok := model[k]; ok && err != nil {
						t.Fatalf("op %d: Delete: %v", op, err)
					}
					delete(model, k)
				}
				if tbl.Len() != len(model) {
					t.Fatalf("op %d: Len=%d model=%d", op, tbl.Len(), len(model))
				}
			}
			for k, v := range model {
				got, ok := tbl.Find(k)
				if !ok || string(got) != v {
					t.Fatalf("Find(%q) = %q,%v want %q", k, got, ok, v)
				}
			}
		})
	}
}

func TestUserHashFunction(t *testing.T) {
	// The "USCR" option: a user hash function drives placement. A
	// constant function forces every key through one probe chain —
	// observable as a probe count far above the default's.
	calls := 0
	constant := func([]byte) uint32 { calls++; return 7 }
	tbl := New(100, &Options{Hash: constant})
	for i := 0; i < 50; i++ {
		if err := tbl.Enter(fmt.Sprintf("key%d", i), nil); err != nil {
			t.Fatal(err)
		}
	}
	if calls == 0 {
		t.Fatal("user hash function never called")
	}
	for i := 0; i < 50; i++ {
		if _, ok := tbl.Find(fmt.Sprintf("key%d", i)); !ok {
			t.Fatalf("key%d lost under user hash", i)
		}
	}
	def := New(100, nil)
	def.Probes = 0
	for i := 0; i < 50; i++ {
		def.Enter(fmt.Sprintf("key%d", i), nil)
	}
	if tbl.Probes <= def.Probes {
		t.Fatalf("constant hash probes (%d) not above default (%d) — user hash ignored?",
			tbl.Probes, def.Probes)
	}
}

func TestNextPrime(t *testing.T) {
	cases := map[int]int{1: 2, 2: 2, 3: 3, 4: 5, 10: 11, 100: 101, 1000: 1009}
	for in, want := range cases {
		if got := nextPrime(in); got != want {
			t.Errorf("nextPrime(%d) = %d, want %d", in, got, want)
		}
	}
	f := func(n uint16) bool {
		p := nextPrime(int(n))
		return p >= int(n) && isPrime(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestForEachVisitsAll(t *testing.T) {
	for name, opts := range allMethods() {
		t.Run(name, func(t *testing.T) {
			tbl := New(100, opts)
			want := map[string]bool{}
			for i := 0; i < 60; i++ {
				k := fmt.Sprintf("key%d", i)
				tbl.Enter(k, []byte("v"))
				want[k] = true
			}
			got := map[string]bool{}
			tbl.ForEach(func(k string, _ []byte) bool {
				got[k] = true
				return true
			})
			if len(got) != len(want) {
				t.Fatalf("ForEach visited %d, want %d", len(got), len(want))
			}
		})
	}
}

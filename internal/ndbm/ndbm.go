// Package ndbm is a clean-room Go port of the dbm/ndbm algorithm as the
// paper describes it (Ken Thompson's design [THOM90, TOR88, WAL84]):
// fixed-size disk buckets, a 32-bit bit-randomizing hash, and an
// in-memory bitmap tracing the split history. Only as many bits of the
// hash value as necessary are revealed to locate a bucket in a single
// disk access:
//
//	hash = calchash(key);
//	mask = 0;
//	while (isbitset((hash & mask) + mask))
//		mask = (mask << 1) + 1;
//	bucket = hash & mask;
//
// The port deliberately reproduces dbm's shortcomings, which the paper's
// evaluation depends on: a single-page cache (nearly every access costs a
// disk operation), no overflow pages (a store fails when colliding keys
// exceed a page), and a hard limit on key+data size (one page).
package ndbm

import (
	"errors"
	"fmt"
	"os"

	"unixhash/internal/dpage"
	"unixhash/internal/hashfunc"
	"unixhash/internal/pagefile"
)

// Errors returned by DB operations.
var (
	ErrNotFound  = errors.New("ndbm: key not found")
	ErrKeyExists = errors.New("ndbm: key already exists")
	ErrTooBig    = errors.New("ndbm: key/data pair exceeds the page size")
	ErrSplit     = errors.New("ndbm: cannot split bucket (too many colliding keys)")
	ErrClosed    = errors.New("ndbm: database is closed")
)

// DefaultPageSize is dbm's classic PBLKSIZ.
const DefaultPageSize = 1024

const maxSplitBits = 30 // the split loop gives up past this many mask bits

// Options parameterizes Open.
type Options struct {
	// PageSize is the fixed bucket size (dbm's PBLKSIZ). Default 1024.
	PageSize int
	// Store overrides the .pag backing store; the caller retains
	// ownership and the path argument is ignored.
	Store pagefile.Store
	// Cost is the simulated I/O cost model for self-created stores.
	Cost pagefile.CostModel
}

// DB is an ndbm database: a page file of buckets plus the split-history
// bitmap (persisted in a .dir file when file-backed).
type DB struct {
	store    pagefile.Store
	ownStore bool
	dirPath  string
	pagesize int

	bitmap []byte // split-history bits, as in the .dir file

	// dbm's single-page cache: the last page touched.
	cacheNo dpage.Page
	cacheBn uint32
	cached  bool
	dirty   bool

	closed bool
}

// Open opens or creates the database stored in path+".pag" and
// path+".dir". An empty path with opts.Store unset creates a
// memory-backed database (used in tests and benchmarks).
func Open(path string, opts *Options) (*DB, error) {
	var o Options
	if opts != nil {
		o = *opts
	}
	if o.PageSize == 0 {
		o.PageSize = DefaultPageSize
	}
	db := &DB{pagesize: o.PageSize}
	switch {
	case o.Store != nil:
		db.store = o.Store
	case path == "":
		db.store = pagefile.NewMem(o.PageSize, o.Cost)
		db.ownStore = true
	default:
		fs, err := pagefile.OpenFile(path+".pag", o.PageSize, o.Cost)
		if err != nil {
			return nil, err
		}
		db.store = fs
		db.ownStore = true
		db.dirPath = path + ".dir"
		bm, err := os.ReadFile(db.dirPath)
		if err != nil && !errors.Is(err, os.ErrNotExist) {
			fs.Close()
			return nil, err
		}
		db.bitmap = bm
	}
	if db.store.PageSize() != o.PageSize {
		return nil, fmt.Errorf("ndbm: store page size %d != requested %d", db.store.PageSize(), o.PageSize)
	}
	return db, nil
}

func (db *DB) isbitset(bit uint64) bool {
	i := bit / 8
	if i >= uint64(len(db.bitmap)) {
		return false
	}
	return db.bitmap[i]&(1<<(bit%8)) != 0
}

func (db *DB) setbit(bit uint64) {
	i := bit / 8
	for uint64(len(db.bitmap)) <= i {
		db.bitmap = append(db.bitmap, 0)
	}
	db.bitmap[i] |= 1 << (bit % 8)
}

// calc runs Thompson's access function: reveal hash bits until the split
// history says the bucket exists unsplit.
func (db *DB) calc(hash uint32) (bucket uint32, mask uint32, nbits int) {
	for db.isbitset(uint64(hash&mask) + uint64(mask)) {
		mask = mask<<1 + 1
		nbits++
	}
	return hash & mask, mask, nbits
}

// fetchPage reads bucket bn through the single-page cache.
func (db *DB) fetchPage(bn uint32) (dpage.Page, error) {
	if db.cached && db.cacheBn == bn {
		return db.cacheNo, nil
	}
	if err := db.flushCache(); err != nil {
		return nil, err
	}
	buf := make([]byte, db.pagesize)
	err := db.store.ReadPage(bn, buf)
	if err != nil && !errors.Is(err, pagefile.ErrNotAllocated) {
		return nil, err
	}
	p := dpage.Page(buf)
	p.InitIfNew()
	db.cacheNo, db.cacheBn, db.cached, db.dirty = p, bn, true, false
	return p, nil
}

func (db *DB) flushCache() error {
	if !db.cached || !db.dirty {
		return nil
	}
	if err := db.store.WritePage(db.cacheBn, db.cacheNo); err != nil {
		return err
	}
	db.dirty = false
	return nil
}

// writePage writes a page immediately (dbm semantics: stores hit disk).
func (db *DB) writePage(bn uint32, p dpage.Page) error {
	if err := db.store.WritePage(bn, p); err != nil {
		return err
	}
	if db.cached && db.cacheBn == bn {
		db.dirty = false
	}
	return nil
}

// Fetch returns a copy of the data stored under key.
func (db *DB) Fetch(key []byte) ([]byte, error) {
	if db.closed {
		return nil, ErrClosed
	}
	bucket, _, _ := db.calc(hashfunc.DBM(key))
	p, err := db.fetchPage(bucket)
	if err != nil {
		return nil, err
	}
	i := p.Find(key)
	if i < 0 {
		return nil, ErrNotFound
	}
	_, data := p.Pair(i)
	return append([]byte(nil), data...), nil
}

// Store inserts key/data. With replace false it fails on duplicates
// (DBM_INSERT); with replace true it overwrites (DBM_REPLACE). It fails
// with ErrTooBig when the pair exceeds a page and with ErrSplit when the
// colliding keys in a bucket cannot be separated — dbm's documented
// shortcomings.
func (db *DB) Store(key, data []byte, replace bool) error {
	if db.closed {
		return ErrClosed
	}
	if len(key)+len(data) > dpage.MaxPair(db.pagesize) {
		return ErrTooBig
	}
	hash := hashfunc.DBM(key)
	for splits := 0; ; splits++ {
		bucket, mask, nbits := db.calc(hash)
		p, err := db.fetchPage(bucket)
		if err != nil {
			return err
		}
		if i := p.Find(key); i >= 0 {
			if !replace {
				return ErrKeyExists
			}
			if err := p.Remove(i); err != nil {
				return err
			}
			db.dirty = true
		}
		if p.Fits(len(key), len(data)) {
			p.Insert(key, data)
			db.dirty = true
			return db.flushCache()
		}
		if nbits >= maxSplitBits || splits >= maxSplitBits {
			return ErrSplit
		}
		if err := db.split(bucket, mask, nbits); err != nil {
			return err
		}
	}
}

// split divides bucket's contents between bucket and bucket|(mask+1) by
// the next hash bit, and marks the bucket split in the bitmap.
func (db *DB) split(bucket, mask uint32, nbits int) error {
	p, err := db.fetchPage(bucket)
	if err != nil {
		return err
	}
	newBit := mask + 1 // == 1 << nbits
	oldPage := dpage.Page(make([]byte, db.pagesize))
	newPage := dpage.Page(make([]byte, db.pagesize))
	oldPage.Init()
	newPage.Init()
	// dbm splits even when every key lands on one side; the caller's
	// split counter bounds the retry loop.
	p.ForEach(func(i int, k, v []byte) bool {
		if hashfunc.DBM(k)&newBit != 0 {
			newPage.Insert(k, v)
		} else {
			oldPage.Insert(k, v)
		}
		return true
	})
	db.setbit(uint64(bucket) + uint64(mask))
	if err := db.writePage(bucket|newBit, newPage); err != nil {
		return err
	}
	if err := db.writePage(bucket, oldPage); err != nil {
		return err
	}
	// Refresh the cache with the rewritten old bucket.
	copy(db.cacheNo, oldPage)
	db.dirty = false
	return nil
}

// Delete removes key.
func (db *DB) Delete(key []byte) error {
	if db.closed {
		return ErrClosed
	}
	bucket, _, _ := db.calc(hashfunc.DBM(key))
	p, err := db.fetchPage(bucket)
	if err != nil {
		return err
	}
	i := p.Find(key)
	if i < 0 {
		return ErrNotFound
	}
	if err := p.Remove(i); err != nil {
		return err
	}
	db.dirty = true
	return db.flushCache()
}

// Cursor iterates keys in storage order, the Firstkey/Nextkey interface.
// As with ndbm, only keys are returned; fetching data costs a second
// call (the asymmetry the paper's sequential-retrieval test measures).
type Cursor struct {
	db     *DB
	bn     uint32
	i      int
	primed bool
}

// First returns a cursor positioned at the first key.
func (db *DB) First() *Cursor { return &Cursor{db: db} }

// Next returns the next key, or nil at the end of the database.
func (c *Cursor) Next() ([]byte, error) {
	if c.db.closed {
		return nil, ErrClosed
	}
	for {
		if c.bn >= c.db.npages() {
			return nil, nil
		}
		p, err := c.db.fetchPage(c.bn)
		if err != nil {
			return nil, err
		}
		if c.i < p.N() {
			k, _ := p.Pair(c.i)
			c.i++
			return append([]byte(nil), k...), nil
		}
		c.bn++
		c.i = 0
	}
}

func (db *DB) npages() uint32 {
	n := db.store.NPages()
	if n == 0 {
		return 1 // bucket 0 always logically exists
	}
	return n
}

// Len counts the pairs by scanning (dbm keeps no count).
func (db *DB) Len() (int, error) {
	n := 0
	c := db.First()
	for {
		k, err := c.Next()
		if err != nil {
			return 0, err
		}
		if k == nil {
			return n, nil
		}
		n++
	}
}

// Sync flushes the page cache and persists the split bitmap.
func (db *DB) Sync() error {
	if db.closed {
		return ErrClosed
	}
	if err := db.flushCache(); err != nil {
		return err
	}
	if db.dirPath != "" {
		if err := os.WriteFile(db.dirPath, db.bitmap, 0o644); err != nil {
			return err
		}
	}
	return db.store.Sync()
}

// Close flushes and closes the database.
func (db *DB) Close() error {
	if db.closed {
		return nil
	}
	err := db.Sync()
	db.closed = true
	if db.ownStore {
		if e := db.store.Close(); err == nil {
			err = e
		}
	}
	return err
}

// PageStore returns the backing page store (for benchmark accounting).
func (db *DB) PageStore() pagefile.Store { return db.store }

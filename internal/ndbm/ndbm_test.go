package ndbm

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"

	"unixhash/internal/hashfunc"
)

func mustOpen(t *testing.T, path string, opts *Options) *DB {
	t.Helper()
	db, err := Open(path, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return db
}

func TestStoreFetch(t *testing.T) {
	db := mustOpen(t, "", nil)
	defer db.Close()
	if err := db.Store([]byte("key"), []byte("value"), true); err != nil {
		t.Fatal(err)
	}
	got, err := db.Fetch([]byte("key"))
	if err != nil || string(got) != "value" {
		t.Fatalf("Fetch = %q, %v", got, err)
	}
	if _, err := db.Fetch([]byte("nope")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Fetch missing = %v", err)
	}
}

func TestInsertVsReplace(t *testing.T) {
	db := mustOpen(t, "", nil)
	defer db.Close()
	if err := db.Store([]byte("k"), []byte("v1"), false); err != nil {
		t.Fatal(err)
	}
	if err := db.Store([]byte("k"), []byte("v2"), false); !errors.Is(err, ErrKeyExists) {
		t.Fatalf("insert over existing = %v", err)
	}
	if err := db.Store([]byte("k"), []byte("v3"), true); err != nil {
		t.Fatal(err)
	}
	got, _ := db.Fetch([]byte("k"))
	if string(got) != "v3" {
		t.Fatalf("Fetch = %q", got)
	}
}

func TestManyKeysSplitting(t *testing.T) {
	db := mustOpen(t, "", &Options{PageSize: 256})
	defer db.Close()
	const n = 3000
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key-%05d", i))
		if err := db.Store(k, []byte(fmt.Sprintf("val-%d", i)), true); err != nil {
			t.Fatalf("Store %d: %v", i, err)
		}
	}
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key-%05d", i))
		got, err := db.Fetch(k)
		if err != nil || string(got) != fmt.Sprintf("val-%d", i) {
			t.Fatalf("Fetch %d = %q, %v", i, got, err)
		}
	}
	cnt, err := db.Len()
	if err != nil || cnt != n {
		t.Fatalf("Len = %d, %v", cnt, err)
	}
}

func TestDelete(t *testing.T) {
	db := mustOpen(t, "", &Options{PageSize: 256})
	defer db.Close()
	for i := 0; i < 500; i++ {
		db.Store([]byte(fmt.Sprintf("k%d", i)), []byte("v"), true)
	}
	for i := 0; i < 500; i += 2 {
		if err := db.Delete([]byte(fmt.Sprintf("k%d", i))); err != nil {
			t.Fatalf("Delete %d: %v", i, err)
		}
	}
	for i := 0; i < 500; i++ {
		_, err := db.Fetch([]byte(fmt.Sprintf("k%d", i)))
		if i%2 == 0 && !errors.Is(err, ErrNotFound) {
			t.Fatalf("deleted key %d still present: %v", i, err)
		}
		if i%2 == 1 && err != nil {
			t.Fatalf("kept key %d lost: %v", i, err)
		}
	}
	if err := db.Delete([]byte("k0")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete = %v", err)
	}
}

func TestTooBigRejected(t *testing.T) {
	// The paper: "dbm cannot store data items whose total key and data
	// size exceed the page size".
	db := mustOpen(t, "", &Options{PageSize: 256})
	defer db.Close()
	big := bytes.Repeat([]byte("x"), 300)
	if err := db.Store([]byte("k"), big, true); !errors.Is(err, ErrTooBig) {
		t.Fatalf("oversized store = %v, want ErrTooBig", err)
	}
	// Just-fits is accepted.
	ok := bytes.Repeat([]byte("y"), 256-4-4-1)
	if err := db.Store([]byte("k"), ok, true); err != nil {
		t.Fatalf("max-size store: %v", err)
	}
}

func TestCollidingKeysOverflowFails(t *testing.T) {
	// The paper: "if two or more keys produce the same hash value and
	// their total size exceeds the page size, the table cannot store all
	// the colliding keys". Identical hashes cannot be split apart, so
	// enough same-hash keys must eventually fail.
	db := mustOpen(t, "", &Options{PageSize: 256})
	defer db.Close()

	// Splitting can reveal at most maxSplitBits hash bits, so two keys
	// agreeing on their low 30 bits can never be separated. Find such a
	// pair by birthday collision.
	const mask = 1<<maxSplitBits - 1
	seen := make(map[uint32][]byte)
	var colliders [][]byte
	for i := 0; i < 2_000_000; i++ {
		k := []byte(fmt.Sprintf("collide-%d", i))
		h := hash32(k) & mask
		if prev, ok := seen[h]; ok {
			colliders = [][]byte{prev, k}
			break
		}
		seen[h] = k
	}
	if colliders == nil {
		t.Skip("no 30-bit collision found in 2M keys")
	}
	// Each pair is ~124 bytes; two of them exceed the 256-byte page.
	var failed bool
	for _, k := range colliders {
		if err := db.Store(k, bytes.Repeat([]byte("v"), 120), true); err != nil {
			failed = true
			break
		}
	}
	if !failed {
		t.Fatal("colliding keys exceeding a page were all stored")
	}
}

// hash32 mirrors the package's hash for collision construction.
func hash32(k []byte) uint32 { return hashfunc.DBM(k) }

func TestPersistence(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "db")
	db := mustOpen(t, path, &Options{PageSize: 512})
	const n = 1000
	for i := 0; i < n; i++ {
		if err := db.Store([]byte(fmt.Sprintf("key%d", i)), []byte(fmt.Sprintf("val%d", i)), true); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db = mustOpen(t, path, &Options{PageSize: 512})
	defer db.Close()
	for i := 0; i < n; i++ {
		got, err := db.Fetch([]byte(fmt.Sprintf("key%d", i)))
		if err != nil || string(got) != fmt.Sprintf("val%d", i) {
			t.Fatalf("Fetch %d after reopen = %q, %v", i, got, err)
		}
	}
}

func TestCursor(t *testing.T) {
	db := mustOpen(t, "", &Options{PageSize: 256})
	defer db.Close()
	want := map[string]bool{}
	for i := 0; i < 800; i++ {
		k := fmt.Sprintf("key%d", i)
		if err := db.Store([]byte(k), []byte("v"), true); err != nil {
			t.Fatal(err)
		}
		want[k] = true
	}
	got := map[string]bool{}
	c := db.First()
	for {
		k, err := c.Next()
		if err != nil {
			t.Fatal(err)
		}
		if k == nil {
			break
		}
		if got[string(k)] {
			t.Fatalf("cursor repeated %q", k)
		}
		got[string(k)] = true
	}
	if len(got) != len(want) {
		t.Fatalf("cursor saw %d keys, want %d", len(got), len(want))
	}
}

func TestModelEquivalence(t *testing.T) {
	db := mustOpen(t, "", &Options{PageSize: 512})
	defer db.Close()
	rng := rand.New(rand.NewSource(3))
	model := map[string]string{}
	for op := 0; op < 4000; op++ {
		k := fmt.Sprintf("k%03d", rng.Intn(300))
		switch rng.Intn(3) {
		case 0, 1:
			v := fmt.Sprintf("v%d", op)
			if err := db.Store([]byte(k), []byte(v), true); err != nil {
				t.Fatalf("op %d: Store: %v", op, err)
			}
			model[k] = v
		case 2:
			err := db.Delete([]byte(k))
			if _, ok := model[k]; ok && err != nil {
				t.Fatalf("op %d: Delete: %v", op, err)
			}
			delete(model, k)
		}
	}
	for k, v := range model {
		got, err := db.Fetch([]byte(k))
		if err != nil || string(got) != v {
			t.Fatalf("Fetch(%q) = %q, %v; want %q", k, got, err, v)
		}
	}
	n, err := db.Len()
	if err != nil || n != len(model) {
		t.Fatalf("Len = %d, %v; model %d", n, err, len(model))
	}
}

// Package oplog is the per-request op ledger: allocation-free phase
// attribution for one command as it crosses the stack — server decode,
// write coalescing, shard routing, bucket latching, split assists, WAL
// marshalling and group commit, buffer-pool traffic, filter consults
// and the reply flush. The paper evaluates its package by attributing
// cost to concrete mechanisms (overflow chains, splits, page faults);
// the ledger does the same for a live request, so a slow op names the
// layer that ate the time instead of vanishing into a global histogram.
//
// A Ledger is a small fixed-size struct owned by whoever starts the
// request (a server connection, or the db adapter when direct-call
// ledgers are enabled). It is threaded down the layers as a pointer;
// every recording method is nil-receiver-safe, so an unenabled path
// pays one predictable branch and zero clock reads — the same contract
// the trace package establishes with its nil-tracer checks. Phase
// counters are updated with atomic adds because one ledger can be
// visible to several goroutines at once (a sharded PutBatch fans out,
// a group-commit follower parks while the leader syncs).
//
// Finished ledgers are folded into a Recorder: per-phase latency
// histograms that merge into the shared metrics registry (the
// oplog_phase_* / oplog_op_* series), per-command × per-shard
// breakdowns for the /debug/oplog endpoint, and a ring of exemplars —
// the slowest complete ledger per command per window, carrying the
// trace-ring sequence span of the op so the exemplar can be joined
// back to its individual trace events.
package oplog

import (
	"sync/atomic"
	"time"
)

// Phase indices. A phase is one named place time goes; the taxonomy is
// deliberately flat and small so a ledger stays a few cache lines.
const (
	// PhaseParse is server command decode: bytes already buffered on
	// the connection to a parsed argument vector. Network wait is
	// excluded — an idle connection is not a slow parser.
	PhaseParse = iota
	// PhaseCoalesce is the time a staged PUT spent parked in the
	// connection's write-coalescing buffer before its batch flushed.
	PhaseCoalesce
	// PhaseRoute is shard selection and fan-out bookkeeping in the
	// sharded db front end.
	PhaseRoute
	// PhaseLatchWait is bucket-latch acquisition: stripe lock waits on
	// the read and write paths, including a transaction's ascending
	// latch sweep at commit.
	PhaseLatchWait
	// PhaseSplitAssist is cooperative split work done on this
	// request's dime: helping or triggering an incremental bucket
	// split after an insert.
	PhaseSplitAssist
	// PhaseWALMarshal is transaction frame encoding plus the log
	// append write.
	PhaseWALMarshal
	// PhaseWALFsyncLead is a WAL group-commit fsync performed by this
	// request as the leader.
	PhaseWALFsyncLead
	// PhaseWALFsyncJoin is the follower side: parked waiting for a
	// leader's fsync to cover this request's commit offset.
	PhaseWALFsyncJoin
	// PhaseBufHit is buffer-pool time for pages served from memory.
	PhaseBufHit
	// PhaseBufFault is buffer-pool time for pages faulted from the
	// store (allocation, eviction and the read itself).
	PhaseBufFault
	// PhasePrefetch is the vectored chain read-ahead issued before a
	// chain walk descends.
	PhasePrefetch
	// PhaseFilter is the per-bucket tag-filter consult on the read
	// path.
	PhaseFilter
	// PhaseReply is reply serialization and the pipeline-window flush
	// back to the client.
	PhaseReply

	NumPhases
)

// phaseNames index the metric / JSON names for each phase.
var phaseNames = [NumPhases]string{
	"parse", "coalesce_wait", "shard_route", "latch_wait", "split_assist",
	"wal_marshal", "wal_fsync_lead", "wal_fsync_join",
	"buffer_hit", "buffer_fault", "prefetch", "filter", "reply_write",
}

// phaseHelp is the registry HELP line per phase.
var phaseHelp = [NumPhases]string{
	"Command decode time (bytes buffered to parsed argument vector).",
	"Time a staged PUT waited in the connection's coalescing buffer.",
	"Shard selection and fan-out time in the sharded front end.",
	"Bucket-latch (stripe lock) acquisition wait.",
	"Cooperative bucket-split work charged to this request.",
	"WAL transaction frame marshal and log append write.",
	"WAL group-commit fsync performed as leader.",
	"WAL group-commit wait as a follower joining a leader's fsync.",
	"Buffer-pool time for pages served from memory.",
	"Buffer-pool time for pages faulted from the store.",
	"Vectored overflow-chain read-ahead.",
	"Per-bucket tag filter consult on the read path.",
	"Reply serialization and pipeline-window flush.",
}

// PhaseName returns the metric/JSON name of phase p.
func PhaseName(p int) string {
	if p < 0 || p >= NumPhases {
		return "unknown"
	}
	return phaseNames[p]
}

// Cmd classifies the request the ledger describes.
type Cmd uint8

const (
	CmdGet Cmd = iota
	CmdPut
	CmdDelete
	CmdBatch
	CmdTxn
	CmdStats
	CmdOther // window flushes, PING, and anything unclassified

	NumCmds
)

var cmdNames = [NumCmds]string{"get", "put", "delete", "batch", "txn", "stats", "other"}

// CmdName returns the metric/JSON name of command c.
func CmdName(c Cmd) string {
	if c >= NumCmds {
		return "other"
	}
	return cmdNames[c]
}

// clockBase anchors the package clock; Clock values are monotonic
// nanoseconds since process start (time.Since reads the monotonic
// clock and allocates nothing).
var clockBase = time.Now()

// Clock reads the monotonic clock. Callers stamp phase starts with it
// and settle durations with Ledger.Add; a disabled path never calls it.
func Clock() int64 { return int64(time.Since(clockBase)) }

// keyPrefixLen bounds the key bytes an exemplar retains.
const keyPrefixLen = 24

// Ledger accumulates one request's phase timings. The struct is fixed
// size and pointer-free so a copy (into an exemplar) is a memmove, and
// all mutation is by atomic add so concurrent helpers (sharded fan-out
// goroutines) can charge phases to the same ledger without tearing.
type Ledger struct {
	ns    [NumPhases]int64  // accumulated nanoseconds per phase
	count [NumPhases]uint32 // events per phase
	start int64             // Clock() at StartOp
	end   int64             // Clock() at Finish
	seq0  uint64            // trace-ring sequence span covering the op
	seq1  uint64
	shard int32 // -1 until routed
	cmd   Cmd
	klen  uint8
	key   [keyPrefixLen]byte // prefix of the request key, for exemplars
}

// StartOp resets the ledger for a new request. Safe on a nil receiver.
func (l *Ledger) StartOp(cmd Cmd, key []byte) {
	if l == nil {
		return
	}
	*l = Ledger{cmd: cmd, shard: -1, start: Clock()}
	n := copy(l.key[:], key)
	l.klen = uint8(n)
}

// Add charges d nanoseconds (one event) to phase p. Safe on a nil
// receiver; negative durations (clock retreat) are dropped.
func (l *Ledger) Add(p int, d int64) {
	if l == nil || d < 0 {
		return
	}
	atomic.AddInt64(&l.ns[p], d)
	atomic.AddUint32(&l.count[p], 1)
}

// AddN charges d nanoseconds covering n events to phase p (a coalesced
// batch settles one wait over its members). Safe on a nil receiver.
func (l *Ledger) AddN(p int, d int64, n int) {
	if l == nil || d < 0 || n <= 0 {
		return
	}
	atomic.AddInt64(&l.ns[p], d)
	atomic.AddUint32(&l.count[p], uint32(n))
}

// Since charges Clock()-st to phase p. Safe on a nil receiver.
func (l *Ledger) Since(p int, st int64) {
	if l == nil {
		return
	}
	l.Add(p, Clock()-st)
}

// SetShard records which shard served the request. Safe on a nil
// receiver.
func (l *Ledger) SetShard(s int) {
	if l == nil {
		return
	}
	atomic.StoreInt32(&l.shard, int32(s))
}

// SetTraceSpan records the trace-ring sequence window [seq0, seq1)
// covering the op, linking an exemplar to its trace events. Safe on a
// nil receiver.
func (l *Ledger) SetTraceSpan(seq0, seq1 uint64) {
	if l == nil {
		return
	}
	l.seq0, l.seq1 = seq0, seq1
}

// Finish stamps the end of the request. Safe on a nil receiver.
func (l *Ledger) Finish() {
	if l == nil {
		return
	}
	atomic.StoreInt64(&l.end, Clock())
}

// Elapsed is the end-to-end duration of a finished ledger.
func (l *Ledger) Elapsed() int64 {
	if l == nil || l.end == 0 {
		return 0
	}
	return l.end - l.start
}

// PhaseNS returns the nanoseconds charged to phase p.
func (l *Ledger) PhaseNS(p int) int64 { return atomic.LoadInt64(&l.ns[p]) }

// PhaseCount returns the events charged to phase p.
func (l *Ledger) PhaseCount(p int) uint32 { return atomic.LoadUint32(&l.count[p]) }

// PhaseTotal sums the nanoseconds charged across all phases. Phases on
// a single-threaded request are disjoint, so the total is comparable
// to Elapsed (the overhead contract the oplog bench gates: the sum
// must stay within 10% of end-to-end for exemplar ops).
func (l *Ledger) PhaseTotal() int64 {
	var t int64
	for p := 0; p < NumPhases; p++ {
		t += atomic.LoadInt64(&l.ns[p])
	}
	return t
}

// Key returns the retained key prefix.
func (l *Ledger) Key() []byte { return l.key[:l.klen] }

// Shard returns the recorded shard, or -1 if the request never routed.
func (l *Ledger) Shard() int { return int(atomic.LoadInt32(&l.shard)) }

// Cmd returns the command classification.
func (l *Ledger) Command() Cmd { return l.cmd }

// TraceSpan returns the recorded trace-ring sequence window.
func (l *Ledger) TraceSpan() (uint64, uint64) { return l.seq0, l.seq1 }

package oplog

import (
	"sync"
	"sync/atomic"
	"time"

	"unixhash/internal/metrics"
)

// exemplarWindow is how long one "slowest ledger per command" slot
// accumulates before it is pushed into the exemplar ring and reset:
// long enough that a burst does not wash the ring, short enough that
// the ring still covers the recent past.
const exemplarWindow = time.Second

// exemplarRingCap bounds the retained exemplar history.
const exemplarRingCap = 64

// cmdPhase is the full latency breakdown one shard keeps: a histogram
// per command × phase plus an end-to-end histogram per command. All of
// them are registered into the shared registry (merged across shards
// by name), so /metrics carries the aggregate while Snapshot exposes
// the per-shard split.
type shardRec struct {
	phase [NumCmds][NumPhases]metrics.Histogram
	op    [NumCmds]metrics.Histogram
}

// Recorder folds finished ledgers into histograms and exemplars. One
// Recorder spans the process: shard -1 (requests that never routed,
// e.g. STATS) and one slot per database shard.
type Recorder struct {
	shards []*shardRec // index 0 = unrouted, 1..N = shard 0..N-1

	mu       sync.Mutex
	winStart atomic.Int64          // Clock() at the current window's start
	cur      [NumCmds]Exemplar     // slowest ledger per command this window
	slowest  [NumCmds]atomic.Int64 // lock-free admission threshold
	ring     [exemplarRingCap]Exemplar
	ringLen  int
	ringPos  int
	dropped  atomic.Int64 // ledgers recorded with an out-of-range shard
}

// Exemplar is one retained ledger: the slowest complete request of its
// command in one window, with enough context to join it back to the
// trace ring.
type Exemplar struct {
	Ledger Ledger
	Wall   time.Time // wall-clock stamp at record time
}

// NewRecorder creates a Recorder for nshards database shards and
// registers its histograms into reg (which may be nil for a
// registry-less recorder, e.g. in tests). Series:
//
//	oplog_op_<cmd>_seconds          end-to-end latency per command
//	oplog_phase_<phase>_seconds     per-phase latency, all commands
func NewRecorder(reg *metrics.Registry, nshards int) *Recorder {
	if nshards < 0 {
		nshards = 0
	}
	r := &Recorder{shards: make([]*shardRec, nshards+1)}
	r.winStart.Store(Clock())
	for i := range r.shards {
		sr := &shardRec{}
		r.shards[i] = sr
		if reg == nil {
			continue
		}
		for c := Cmd(0); c < NumCmds; c++ {
			name := "oplog_op_" + cmdNames[c] + "_seconds"
			reg.AddHistogram(name, &sr.op[c])
			reg.Help(name, "End-to-end latency of "+cmdNames[c]+" requests through the op ledger.")
			for p := 0; p < NumPhases; p++ {
				pname := "oplog_phase_" + phaseNames[p] + "_seconds"
				reg.AddHistogram(pname, &sr.phase[c][p])
				reg.Help(pname, phaseHelp[p])
			}
		}
	}
	return r
}

// NShards reports the number of database-shard slots (excluding the
// unrouted slot).
func (r *Recorder) NShards() int {
	if r == nil {
		return 0
	}
	return len(r.shards) - 1
}

// Record folds a finished ledger into the recorder. Safe on a nil
// recorder and hot-path cheap: per non-empty phase one histogram
// observe, plus a lock-free exemplar admission check that takes the
// mutex only for a new per-window maximum or a window rotation.
func (r *Recorder) Record(led *Ledger) {
	if r == nil || led == nil {
		return
	}
	slot := led.Shard() + 1
	if slot < 0 || slot >= len(r.shards) {
		r.dropped.Add(1)
		slot = 0
	}
	sr := r.shards[slot]
	c := led.cmd
	if c >= NumCmds {
		c = CmdOther
	}
	el := led.Elapsed()
	sr.op[c].Observe(time.Duration(el))
	for p := 0; p < NumPhases; p++ {
		if n := atomic.LoadUint32(&led.count[p]); n > 0 {
			sr.phase[c][p].Observe(time.Duration(atomic.LoadInt64(&led.ns[p])))
		}
	}

	// Exemplar admission: only a new per-window slowest (or a due
	// rotation) takes the lock.
	now := led.end
	if el <= r.slowest[c].Load() && now-r.winStart.Load() < int64(exemplarWindow) {
		return
	}
	r.mu.Lock()
	if now-r.winStart.Load() >= int64(exemplarWindow) {
		r.rotateLocked(now)
	}
	if el > r.cur[c].Ledger.Elapsed() || r.cur[c].Wall.IsZero() {
		r.cur[c] = Exemplar{Ledger: *led, Wall: time.Now()}
		r.slowest[c].Store(el)
	}
	r.mu.Unlock()
}

// rotateLocked pushes the current window's per-command maxima into the
// ring and opens a new window. Caller holds r.mu.
func (r *Recorder) rotateLocked(now int64) {
	for c := range r.cur {
		if r.cur[c].Wall.IsZero() {
			continue
		}
		r.ring[r.ringPos] = r.cur[c]
		r.ringPos = (r.ringPos + 1) % exemplarRingCap
		if r.ringLen < exemplarRingCap {
			r.ringLen++
		}
		r.cur[c] = Exemplar{}
		r.slowest[c].Store(0)
	}
	r.winStart.Store(now)
}

// PhaseStat is one command × phase summary in a snapshot.
type PhaseStat struct {
	Phase string  `json:"phase"`
	Count int64   `json:"count"`
	P50us float64 `json:"p50_us"`
	P99us float64 `json:"p99_us"`
	Mean  float64 `json:"mean_us"`
	Total float64 `json:"total_ms"`
}

// CmdStat is one command's summary: end-to-end latency plus its phase
// breakdown, largest phase first.
type CmdStat struct {
	Cmd    string      `json:"cmd"`
	Count  int64       `json:"count"`
	P50us  float64     `json:"p50_us"`
	P99us  float64     `json:"p99_us"`
	Mean   float64     `json:"mean_us"`
	Phases []PhaseStat `json:"phases,omitempty"`
}

// ShardStat is one shard's command summaries. Shard -1 collects
// requests that never routed to a database shard.
type ShardStat struct {
	Shard int       `json:"shard"`
	Cmds  []CmdStat `json:"cmds,omitempty"`
}

// Summary is the /debug/oplog document.
type Summary struct {
	Commands []CmdStat   `json:"commands"` // aggregated across shards
	Shards   []ShardStat `json:"shards,omitempty"`
	Dropped  int64       `json:"dropped,omitempty"`
}

// Snapshot summarizes the recorder: per-command end-to-end and phase
// percentiles aggregated across shards, plus the per-shard split for
// shards that saw traffic.
func (r *Recorder) Snapshot() Summary {
	if r == nil {
		return Summary{}
	}
	var s Summary
	// Aggregate across shards by summing snapshots.
	for c := Cmd(0); c < NumCmds; c++ {
		var op metrics.HistogramSnapshot
		var phases [NumPhases]metrics.HistogramSnapshot
		for _, sr := range r.shards {
			op = sumSnap(op, sr.op[c].Snapshot())
			for p := 0; p < NumPhases; p++ {
				phases[p] = sumSnap(phases[p], sr.phase[c][p].Snapshot())
			}
		}
		if cs, ok := cmdStat(c, op, phases[:]); ok {
			s.Commands = append(s.Commands, cs)
		}
	}
	for i, sr := range r.shards {
		var ss ShardStat
		ss.Shard = i - 1
		for c := Cmd(0); c < NumCmds; c++ {
			var phases [NumPhases]metrics.HistogramSnapshot
			for p := 0; p < NumPhases; p++ {
				phases[p] = sr.phase[c][p].Snapshot()
			}
			if cs, ok := cmdStat(c, sr.op[c].Snapshot(), phases[:]); ok {
				ss.Cmds = append(ss.Cmds, cs)
			}
		}
		if len(ss.Cmds) > 0 {
			s.Shards = append(s.Shards, ss)
		}
	}
	s.Dropped = r.dropped.Load()
	return s
}

func cmdStat(c Cmd, op metrics.HistogramSnapshot, phases []metrics.HistogramSnapshot) (CmdStat, bool) {
	if op.Count == 0 {
		return CmdStat{}, false
	}
	cs := CmdStat{
		Cmd:   cmdNames[c],
		Count: op.Count,
		P50us: pctUS(op, 0.50),
		P99us: pctUS(op, 0.99),
		Mean:  float64(op.Mean()) / 1e3,
	}
	for p := range phases {
		ps := phases[p]
		if ps.Count == 0 {
			continue
		}
		cs.Phases = append(cs.Phases, PhaseStat{
			Phase: phaseNames[p],
			Count: ps.Count,
			P50us: pctUS(ps, 0.50),
			P99us: pctUS(ps, 0.99),
			Mean:  float64(ps.Mean()) / 1e3,
			Total: float64(ps.SumNanos) / 1e6,
		})
	}
	return cs, true
}

// sumSnap merges two histogram snapshots bucket-wise.
func sumSnap(a, b metrics.HistogramSnapshot) metrics.HistogramSnapshot {
	if b.Count == 0 {
		return a
	}
	if a.Count == 0 {
		return b
	}
	a.Count += b.Count
	a.SumNanos += b.SumNanos
	merged := map[time.Duration]int64{}
	for _, bc := range a.Buckets {
		merged[bc.Bound] += bc.Count
	}
	for _, bc := range b.Buckets {
		merged[bc.Bound] += bc.Count
	}
	out := a.Buckets[:0:0]
	for i := 0; ; i++ {
		bound := metrics.BucketBound(i)
		if n := merged[bound]; n > 0 {
			out = append(out, metrics.BucketCount{Bound: bound, Count: n})
		}
		if bound < 0 {
			break
		}
	}
	a.Buckets = out
	return a
}

// pctUS estimates percentile q (0..1) from a snapshot's power-of-two
// buckets, in microseconds: linear interpolation within the winning
// bucket (whose lower bound is half its upper — the snapshot omits
// empty buckets, so the bound must be derived, not carried).
func pctUS(s metrics.HistogramSnapshot, q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	target := q * float64(s.Count)
	cum := int64(0)
	lastFinite := time.Duration(0)
	for _, bc := range s.Buckets {
		hi := bc.Bound
		if hi < 0 { // +Inf bucket: report the largest finite bound seen
			return float64(lastFinite) / 1e3
		}
		lo := time.Duration(0)
		if hi > time.Microsecond {
			lo = hi / 2
		}
		if float64(cum+bc.Count) >= target {
			frac := (target - float64(cum)) / float64(bc.Count)
			return (float64(lo) + frac*float64(hi-lo)) / 1e3
		}
		cum += bc.Count
		lastFinite = hi
	}
	return float64(lastFinite) / 1e3
}

// ExemplarView is the JSON shape of one exemplar: the retained ledger
// unpacked for human consumption.
type ExemplarView struct {
	Cmd       string      `json:"cmd"`
	Key       string      `json:"key,omitempty"`
	Shard     int         `json:"shard"`
	Wall      time.Time   `json:"wall"`
	ElapsedUS float64     `json:"elapsed_us"`
	PhaseUS   float64     `json:"phase_sum_us"`
	Phases    []PhaseStat `json:"phases,omitempty"`
	TraceSeq0 uint64      `json:"trace_seq0"`
	TraceSeq1 uint64      `json:"trace_seq1"`
}

// Exemplars returns the retained exemplars, newest first, including
// the still-open window's current maxima.
func (r *Recorder) Exemplars() []ExemplarView {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	exs := make([]Exemplar, 0, r.ringLen+int(NumCmds))
	for c := range r.cur {
		if !r.cur[c].Wall.IsZero() {
			exs = append(exs, r.cur[c])
		}
	}
	for i := 0; i < r.ringLen; i++ {
		exs = append(exs, r.ring[(r.ringPos-1-i+exemplarRingCap)%exemplarRingCap])
	}
	r.mu.Unlock()

	out := make([]ExemplarView, 0, len(exs))
	for i := range exs {
		out = append(out, viewOf(&exs[i]))
	}
	return out
}

func viewOf(e *Exemplar) ExemplarView {
	l := &e.Ledger
	v := ExemplarView{
		Cmd:       CmdName(l.cmd),
		Key:       string(l.Key()),
		Shard:     l.Shard(),
		Wall:      e.Wall,
		ElapsedUS: float64(l.Elapsed()) / 1e3,
		PhaseUS:   float64(l.PhaseTotal()) / 1e3,
		TraceSeq0: l.seq0,
		TraceSeq1: l.seq1,
	}
	for p := 0; p < NumPhases; p++ {
		if n := l.PhaseCount(p); n > 0 {
			v.Phases = append(v.Phases, PhaseStat{
				Phase: phaseNames[p],
				Count: int64(n),
				Total: float64(l.PhaseNS(p)) / 1e6,
				Mean:  float64(l.PhaseNS(p)) / float64(n) / 1e3,
			})
		}
	}
	return v
}

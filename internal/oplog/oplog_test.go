package oplog

import (
	"strings"
	"sync"
	"testing"
	"time"

	"unixhash/internal/metrics"
)

// TestNilLedgerZeroAlloc is the disabled-path contract: every recording
// method on a nil ledger (and a nil recorder) must be a branch, not an
// allocation or a clock read.
func TestNilLedgerZeroAlloc(t *testing.T) {
	var led *Ledger
	var rec *Recorder
	key := []byte("key")
	allocs := testing.AllocsPerRun(1000, func() {
		led.StartOp(CmdGet, key)
		led.Add(PhaseLatchWait, 10)
		led.AddN(PhaseCoalesce, 10, 4)
		led.Since(PhaseFilter, 0)
		led.SetShard(3)
		led.SetTraceSpan(1, 2)
		led.Finish()
		rec.Record(led)
	})
	if allocs != 0 {
		t.Fatalf("nil ledger path allocated %.1f times per op, want 0", allocs)
	}
}

// TestLedgerAccounting checks phases accumulate and the end-to-end
// elapsed brackets the phase total.
func TestLedgerAccounting(t *testing.T) {
	var led Ledger
	led.StartOp(CmdPut, []byte("a-key-longer-than-the-retained-prefix-window"))
	st := Clock()
	time.Sleep(2 * time.Millisecond)
	led.Since(PhaseBufFault, st)
	led.Add(PhaseLatchWait, 1000)
	led.AddN(PhaseCoalesce, 5000, 3)
	led.SetShard(2)
	led.Finish()

	if got := led.PhaseCount(PhaseBufFault); got != 1 {
		t.Fatalf("fault count = %d", got)
	}
	if got := led.PhaseNS(PhaseBufFault); got < int64(2*time.Millisecond) {
		t.Fatalf("fault ns = %d, want >= 2ms", got)
	}
	if got := led.PhaseCount(PhaseCoalesce); got != 3 {
		t.Fatalf("coalesce count = %d", got)
	}
	if led.Elapsed() < led.PhaseNS(PhaseBufFault) {
		t.Fatalf("elapsed %d < fault phase %d", led.Elapsed(), led.PhaseNS(PhaseBufFault))
	}
	if want := led.PhaseNS(PhaseBufFault) + 1000 + 5000; led.PhaseTotal() != want {
		t.Fatalf("phase total %d, want %d", led.PhaseTotal(), want)
	}
	if got := len(led.Key()); got != keyPrefixLen {
		t.Fatalf("key prefix len = %d, want %d", got, keyPrefixLen)
	}
	if led.Shard() != 2 {
		t.Fatalf("shard = %d", led.Shard())
	}
}

// TestRecorderHistograms checks recorded ledgers land in the registry
// series and in the snapshot summary.
func TestRecorderHistograms(t *testing.T) {
	reg := metrics.New()
	rec := NewRecorder(reg, 2)
	for i := 0; i < 10; i++ {
		var led Ledger
		led.StartOp(CmdGet, []byte("k"))
		led.Add(PhaseLatchWait, int64(50*time.Microsecond))
		led.Add(PhaseBufHit, int64(10*time.Microsecond))
		led.SetShard(i % 2)
		led.Finish()
		rec.Record(&led)
	}
	// The registry aggregates the per-shard histograms under one name;
	// the shard-local counts must sum to the traffic.
	var opCount, latchCount int64
	for _, sr := range rec.shards {
		opCount += sr.op[CmdGet].Count()
		latchCount += sr.phase[CmdGet][PhaseLatchWait].Count()
	}
	if opCount != 10 || latchCount != 10 {
		t.Fatalf("op count = %d, latch count = %d, want 10 each", opCount, latchCount)
	}
	var prom strings.Builder
	if err := reg.WriteProm(&prom); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prom.String(), "oplog_op_get_seconds_count 10") {
		t.Fatalf("registry dump missing aggregated oplog series:\n%.800s", prom.String())
	}
	s := rec.Snapshot()
	if len(s.Commands) != 1 || s.Commands[0].Cmd != "get" || s.Commands[0].Count != 10 {
		t.Fatalf("snapshot commands = %+v", s.Commands)
	}
	if s.Commands[0].P50us <= 0 {
		t.Fatalf("p50 = %v, want > 0", s.Commands[0].P50us)
	}
	if len(s.Shards) != 2 {
		t.Fatalf("snapshot shards = %d, want 2 (both saw traffic)", len(s.Shards))
	}
}

// TestRecorderExemplars checks the slowest ledger of a window wins the
// exemplar slot and survives a window rotation into the ring.
func TestRecorderExemplars(t *testing.T) {
	rec := NewRecorder(nil, 1)
	record := func(key string, elapsed time.Duration) {
		var led Ledger
		led.StartOp(CmdGet, []byte(key))
		led.start = Clock() - int64(elapsed) // backdate to control Elapsed
		led.SetShard(0)
		led.SetTraceSpan(7, 9)
		led.Finish()
		rec.Record(&led)
	}
	record("fast", 10*time.Microsecond)
	record("slow", 10*time.Millisecond)
	record("mid", 1*time.Millisecond)

	exs := rec.Exemplars()
	if len(exs) != 1 {
		t.Fatalf("exemplars = %d, want 1 (one command, one window)", len(exs))
	}
	if exs[0].Key != "slow" {
		t.Fatalf("exemplar key = %q, want the slowest", exs[0].Key)
	}
	if exs[0].TraceSeq0 != 7 || exs[0].TraceSeq1 != 9 {
		t.Fatalf("trace span = %d..%d", exs[0].TraceSeq0, exs[0].TraceSeq1)
	}

	// Force a rotation by recording a ledger whose end is a window later.
	var led Ledger
	led.StartOp(CmdPut, []byte("next-window"))
	led.SetShard(0)
	led.Finish()
	led.end = led.start + int64(2*exemplarWindow)
	rec.Record(&led)

	exs = rec.Exemplars()
	// "slow" rotated into the ring; "next-window" is the open window's max.
	var keys []string
	for _, e := range exs {
		keys = append(keys, e.Key)
	}
	if len(exs) != 2 || exs[0].Key != "next-window" || exs[1].Key != "slow" {
		t.Fatalf("exemplars after rotation = %v", keys)
	}
}

// TestPercentileEstimate sanity-checks the bucket interpolation: a
// cluster of identical observations must report a percentile within
// its power-of-two bucket.
func TestPercentileEstimate(t *testing.T) {
	var h metrics.Histogram
	for i := 0; i < 100; i++ {
		h.Observe(300 * time.Microsecond) // bucket (256us, 512us]
	}
	p50 := pctUS(h.Snapshot(), 0.50)
	if p50 <= 256 || p50 > 512 {
		t.Fatalf("p50 = %.1fus, want within (256, 512]", p50)
	}
}

// TestLedgerTearingRace is the -race stress for the advertised
// concurrency contract: many goroutines charging phases to one ledger
// (the sharded fan-out shape) while another records finished ledgers
// into a shared recorder and readers snapshot it.
func TestLedgerTearingRace(t *testing.T) {
	rec := NewRecorder(metrics.New(), 4)
	const writers = 8
	var wg, readers sync.WaitGroup
	stop := make(chan struct{})

	// Snapshot + exemplar readers.
	for i := 0; i < 2; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					rec.Snapshot()
					rec.Exemplars()
				}
			}
		}()
	}

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			key := []byte("race-key")
			for i := 0; i < 400; i++ {
				var led Ledger
				led.StartOp(CmdBatch, key)
				var inner sync.WaitGroup
				// Fan out: concurrent helpers charge the same ledger.
				for g := 0; g < 4; g++ {
					inner.Add(1)
					go func(g int) {
						defer inner.Done()
						led.Add(PhaseLatchWait, int64(g+1))
						led.Add(PhaseBufHit, 100)
						led.SetShard(g)
					}(g)
				}
				inner.Wait()
				led.Finish()
				rec.Record(&led)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	s := rec.Snapshot()
	if len(s.Commands) == 0 || s.Commands[0].Count != writers*400 {
		t.Fatalf("snapshot = %+v, want %d batch ops", s.Commands, writers*400)
	}
}

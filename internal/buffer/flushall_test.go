package buffer

import (
	"math/rand"
	"testing"

	"unixhash/internal/pagefile"
)

// recordingStore wraps a MemStore and records the order and shape of
// every write it receives, so tests can assert FlushAll's scheduling:
// ascending file offsets with adjacent pages coalesced into vectored
// writes.
type recordingStore struct {
	*pagefile.MemStore
	writes []writeRec // one per WritePage / WritePages call
}

type writeRec struct {
	pageno uint32
	npages int
}

func (r *recordingStore) WritePage(pageno uint32, buf []byte) error {
	r.writes = append(r.writes, writeRec{pageno, 1})
	return r.MemStore.WritePage(pageno, buf)
}

func (r *recordingStore) WritePages(pageno uint32, buf []byte) error {
	r.writes = append(r.writes, writeRec{pageno, len(buf) / r.PageSize()})
	return r.MemStore.WritePages(pageno, buf)
}

// plainStore hides the MemStore's VectorWriter implementation, forcing
// FlushAll down the per-page fallback. The no-arg WritePages shadows the
// promoted method with a non-matching signature, so plainStore does not
// satisfy pagefile.VectorWriter.
type plainStore struct {
	*recordingStore
}

func (p *plainStore) WritePages() {}

var _ pagefile.VectorWriter = (*recordingStore)(nil)

// TestFlushAllOrderAndCoalescing dirties pages in a scrambled order and
// checks the flush hits the store as ascending, coalesced runs.
func TestFlushAllOrderAndCoalescing(t *testing.T) {
	rs := &recordingStore{MemStore: pagefile.NewMem(64, pagefile.CostModel{})}
	p := New(rs, 64*256, identityMap)

	// Pages 0..39 and a disjoint run 100..109 (overflow pages land at
	// 1000+o under identityMap, so use bucket addresses throughout).
	var pages []uint32
	for i := 0; i < 40; i++ {
		pages = append(pages, uint32(i))
	}
	for i := 100; i < 110; i++ {
		pages = append(pages, uint32(i))
	}
	rng := rand.New(rand.NewSource(7))
	rng.Shuffle(len(pages), func(i, j int) { pages[i], pages[j] = pages[j], pages[i] })
	for _, pg := range pages {
		b, err := p.Get(Addr{N: pg}, nil, true)
		if err != nil {
			t.Fatal(err)
		}
		b.Page[0] = byte(pg)
		b.Dirty.Store(true)
		p.Put(b)
	}

	rs.writes = nil
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}

	if len(rs.writes) == 0 {
		t.Fatal("flush performed no writes")
	}
	total := 0
	last := int64(-1)
	for _, w := range rs.writes {
		if int64(w.pageno) <= last {
			t.Fatalf("writes not in ascending page order: %v", rs.writes)
		}
		last = int64(w.pageno) + int64(w.npages) - 1
		total += w.npages
	}
	if total != len(pages) {
		t.Fatalf("flushed %d pages, want %d", total, len(pages))
	}
	// 50 dirty pages in two contiguous runs must not take 50 calls. With
	// everything resident, exactly 2 vectored writes.
	if len(rs.writes) != 2 {
		t.Errorf("flush used %d writes, want 2 coalesced runs: %v", len(rs.writes), rs.writes)
	}

	// Everything clean now: a second FlushAll writes nothing.
	rs.writes = nil
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if len(rs.writes) != 0 {
		t.Fatalf("second flush rewrote clean pages: %v", rs.writes)
	}

	// The data really landed.
	buf := make([]byte, 64)
	for _, pg := range pages {
		if err := rs.ReadPage(identityMap(Addr{N: pg}), buf); err != nil {
			t.Fatal(err)
		}
		if buf[0] != byte(pg) {
			t.Fatalf("page %d content = %d", pg, buf[0])
		}
	}
}

// TestFlushAllRunCap: a contiguous dirty run longer than the coalescing
// cap is split into cap-sized writes, still in ascending order.
func TestFlushAllRunCap(t *testing.T) {
	rs := &recordingStore{MemStore: pagefile.NewMem(64, pagefile.CostModel{})}
	p := New(rs, 64*512, identityMap)
	const n = maxCoalesce + 10
	for i := 0; i < n; i++ {
		b, err := p.Get(Addr{N: uint32(i)}, nil, true)
		if err != nil {
			t.Fatal(err)
		}
		b.Dirty.Store(true)
		p.Put(b)
	}
	rs.writes = nil
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if len(rs.writes) != 2 {
		t.Fatalf("flush used %d writes, want 2 (cap %d): %v", len(rs.writes), maxCoalesce, rs.writes)
	}
	if rs.writes[0].npages != maxCoalesce || rs.writes[1].npages != 10 {
		t.Fatalf("run split = %v, want [%d, 10]", rs.writes, maxCoalesce)
	}
}

// TestFlushAllPlainStore: a store without WritePages gets ordered
// per-page writes.
func TestFlushAllPlainStore(t *testing.T) {
	rs := &recordingStore{MemStore: pagefile.NewMem(64, pagefile.CostModel{})}
	ps := &plainStore{recordingStore: rs}
	p := New(ps, 64*256, identityMap)
	for _, pg := range []uint32{9, 3, 7, 4, 5} {
		b, err := p.Get(Addr{N: pg}, nil, true)
		if err != nil {
			t.Fatal(err)
		}
		b.Dirty.Store(true)
		p.Put(b)
	}
	rs.writes = nil
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	want := []writeRec{{3, 1}, {4, 1}, {5, 1}, {7, 1}, {9, 1}}
	if len(rs.writes) != len(want) {
		t.Fatalf("writes = %v, want %v", rs.writes, want)
	}
	for i, w := range want {
		if rs.writes[i] != w {
			t.Fatalf("writes = %v, want %v", rs.writes, want)
		}
	}
}

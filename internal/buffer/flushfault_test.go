package buffer

import (
	"errors"
	"testing"

	"unixhash/internal/pagefile"
)

// TestFlushAllPartialRunFailure pins FlushAll's failure contract: when a
// coalesced vectored run fails mid-way (some of its pages reached the
// store, some did not), no page of that run may have its dirty flag
// cleared — a cleared flag on an unwritten page would silently lose the
// mutation at the next sync. Runs that completed before the failure are
// clean; runs after it were never attempted and stay dirty.
func TestFlushAllPartialRunFailure(t *testing.T) {
	errBoom := errors.New("injected write failure")
	fs := pagefile.NewFault(pagefile.NewMem(64, pagefile.CostModel{}))
	p := New(fs, 64*256, identityMap)

	// Two coalesced runs: 0..5 and 8..13. The fault hits page 10, so the
	// second run fails after pages 8 and 9 already reached the store.
	dirty := func(pages ...uint32) {
		t.Helper()
		for _, pg := range pages {
			b, err := p.Get(Addr{N: pg}, nil, true)
			if err != nil {
				t.Fatal(err)
			}
			b.Page[0] = byte(pg + 1)
			b.Dirty.Store(true)
			p.Put(b)
		}
	}
	dirty(0, 1, 2, 3, 4, 5, 8, 9, 10, 11, 12, 13)
	fs.Inject(pagefile.Fault{Op: pagefile.OpWrite, After: 1, Err: errBoom, Page: 10})

	if err := p.FlushAll(); !errors.Is(err, errBoom) {
		t.Fatalf("FlushAll error = %v, want %v", err, errBoom)
	}
	for _, pg := range []uint32{0, 1, 2, 3, 4, 5} {
		if b := p.Lookup(Addr{N: pg}); b == nil || b.Dirty.Load() {
			t.Fatalf("page %d of the completed run still dirty", pg)
		}
	}
	for _, pg := range []uint32{8, 9, 10, 11, 12, 13} {
		if b := p.Lookup(Addr{N: pg}); b == nil || !b.Dirty.Load() {
			t.Fatalf("page %d of the failed run was dirty-cleared", pg)
		}
	}

	// Retrying after the fault clears writes every page of the failed
	// run again — including 8 and 9, which the partial run did write:
	// staying dirty costs a rewrite, clearing early would cost the data.
	fs.Clear()
	if err := p.FlushAll(); err != nil {
		t.Fatalf("retry FlushAll: %v", err)
	}
	buf := make([]byte, 64)
	for _, pg := range []uint32{0, 1, 2, 3, 4, 5, 8, 9, 10, 11, 12, 13} {
		if b := p.Lookup(Addr{N: pg}); b == nil || b.Dirty.Load() {
			t.Fatalf("page %d dirty after successful retry", pg)
		}
		if err := fs.ReadPage(pg, buf); err != nil {
			t.Fatalf("read page %d: %v", pg, err)
		}
		if buf[0] != byte(pg+1) {
			t.Fatalf("page %d content %d, want %d", pg, buf[0], pg+1)
		}
	}
}

// TestFlushAllFaultAtEveryRunBoundary sweeps the fault across every page
// of a multi-run flush and checks the invariant at each position: a page
// is clean only if its whole run was written.
func TestFlushAllFaultAtEveryRunBoundary(t *testing.T) {
	errBoom := errors.New("injected write failure")
	pages := []uint32{0, 1, 2, 3, 4, 5, 8, 9, 10, 11, 12, 13, 20}
	runOf := func(pg uint32) int {
		switch {
		case pg <= 5:
			return 0
		case pg <= 13:
			return 1
		default:
			return 2
		}
	}
	for _, faultPage := range pages {
		fs := pagefile.NewFault(pagefile.NewMem(64, pagefile.CostModel{}))
		p := New(fs, 64*256, identityMap)
		for _, pg := range pages {
			b, err := p.Get(Addr{N: pg}, nil, true)
			if err != nil {
				t.Fatal(err)
			}
			b.Dirty.Store(true)
			p.Put(b)
		}
		fs.Inject(pagefile.Fault{Op: pagefile.OpWrite, After: 1, Err: errBoom, Page: faultPage})
		if err := p.FlushAll(); !errors.Is(err, errBoom) {
			t.Fatalf("fault at %d: FlushAll error = %v", faultPage, err)
		}
		for _, pg := range pages {
			b := p.Lookup(Addr{N: pg})
			if b == nil {
				t.Fatalf("fault at %d: page %d not resident", faultPage, pg)
			}
			// Clean iff the page's run completed — i.e. the run comes
			// strictly before the faulted page's run.
			wantClean := runOf(pg) < runOf(faultPage)
			if got := !b.Dirty.Load(); got != wantClean {
				t.Fatalf("fault at %d: page %d clean=%v, want %v", faultPage, pg, got, wantClean)
			}
		}
	}
}

package buffer

import (
	"fmt"
	"testing"

	"unixhash/internal/pagefile"
)

// identityMap places bucket n at page n and overflow page o at page
// 1000+o — a trivial layout adequate for pool tests.
func identityMap(a Addr) uint32 {
	if a.Ovfl {
		return 1000 + a.N
	}
	return a.N
}

func newTestPool(t *testing.T, maxBytes int) (*Pool, *pagefile.MemStore) {
	t.Helper()
	store := pagefile.NewMem(64, pagefile.CostModel{})
	return New(store, maxBytes, identityMap), store
}

func TestPoolGetCreate(t *testing.T) {
	p, store := newTestPool(t, 64*16)
	b, err := p.Get(Addr{N: 3}, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Dirty.Load() {
		t.Fatal("fresh page not marked dirty")
	}
	if !b.Pinned() {
		t.Fatal("returned buffer not pinned")
	}
	copy(b.Page, "hello")
	p.Put(b)

	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	if err := store.ReadPage(3, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf[:5]) != "hello" {
		t.Fatalf("flushed page = %q", buf[:5])
	}
}

func TestPoolGetNoCreate(t *testing.T) {
	p, _ := newTestPool(t, 64*16)
	if _, err := p.Get(Addr{N: 9}, nil, false); err == nil {
		t.Fatal("Get of missing page without create succeeded")
	}
}

func TestPoolHitMiss(t *testing.T) {
	p, _ := newTestPool(t, 64*16)
	b, err := p.Get(Addr{N: 1}, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	p.Put(b)
	b2, err := p.Get(Addr{N: 1}, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	p.Put(b2)
	if b != b2 {
		t.Fatal("second Get returned a different buffer")
	}
	if c := p.Counters(); c.Hits != 1 || c.Misses != 1 {
		t.Fatalf("hits=%d misses=%d", c.Hits, c.Misses)
	}
}

func TestPoolLRUEviction(t *testing.T) {
	p, store := newTestPool(t, 1) // MinBuffers pages
	cap_ := p.MaxBuffers()

	// Fill the pool, unpinning everything.
	for i := 0; i < cap_; i++ {
		b, err := p.Get(Addr{N: uint32(i)}, nil, true)
		if err != nil {
			t.Fatal(err)
		}
		b.Page[0] = byte(i)
		p.Put(b)
	}
	if p.Resident() != cap_ {
		t.Fatalf("resident = %d, want %d", p.Resident(), cap_)
	}
	// Touch page 0 so page 1 is the LRU victim.
	b, _ := p.Get(Addr{N: 0}, nil, false)
	p.Put(b)

	nb, err := p.Get(Addr{N: 100}, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	p.Put(nb)
	if c := p.Counters(); c.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", c.Evictions)
	}
	if p.Lookup(Addr{N: 1}) != nil {
		t.Fatal("LRU page 1 still resident")
	}
	if p.Lookup(Addr{N: 0}) == nil {
		t.Fatal("recently used page 0 evicted")
	}
	// The evicted dirty page must have been written.
	buf := make([]byte, 64)
	if err := store.ReadPage(1, buf); err != nil || buf[0] != 1 {
		t.Fatalf("evicted page not flushed: %v %d", err, buf[0])
	}
}

func TestPoolPinnedNotEvicted(t *testing.T) {
	p, _ := newTestPool(t, 1)
	cap_ := p.MaxBuffers()

	pinned, err := p.Get(Addr{N: 0}, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	// Fill past capacity; page 0 stays pinned throughout.
	for i := 1; i < cap_*3; i++ {
		b, err := p.Get(Addr{N: uint32(i)}, nil, true)
		if err != nil {
			t.Fatal(err)
		}
		p.Put(b)
	}
	if p.Lookup(Addr{N: 0}) != pinned {
		t.Fatal("pinned buffer was evicted")
	}
	p.Put(pinned)
}

func TestPoolOvercommitWhenAllPinned(t *testing.T) {
	p, _ := newTestPool(t, 1)
	cap_ := p.MaxBuffers()

	var bufs []*Buf
	for i := 0; i < cap_+3; i++ {
		b, err := p.Get(Addr{N: uint32(i)}, nil, true)
		if err != nil {
			t.Fatalf("Get %d with all pinned: %v", i, err)
		}
		bufs = append(bufs, b)
	}
	if p.Counters().Overcommits == 0 {
		t.Fatal("no overcommit recorded")
	}
	for _, b := range bufs {
		p.Put(b)
	}
}

func TestPoolChainEviction(t *testing.T) {
	p, _ := newTestPool(t, 1)
	cap_ := p.MaxBuffers()

	// Build a primary with two chained overflow buffers.
	prim, err := p.Get(Addr{N: 0}, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	o1, err := p.Get(Addr{N: 5, Ovfl: true}, prim, true)
	if err != nil {
		t.Fatal(err)
	}
	o2, err := p.Get(Addr{N: 6, Ovfl: true}, o1, true)
	if err != nil {
		t.Fatal(err)
	}
	if prim.Ovfl() != o1 || o1.Ovfl() != o2 {
		t.Fatal("chain links not recorded")
	}
	p.Put(o2)
	p.Put(o1)
	p.Put(prim)

	// Force the primary out: its whole chain must leave with it.
	for i := 1; i < cap_*3; i++ {
		b, err := p.Get(Addr{N: uint32(i)}, nil, true)
		if err != nil {
			t.Fatal(err)
		}
		p.Put(b)
	}
	if p.Lookup(Addr{N: 0}) != nil {
		t.Fatal("primary still resident after pressure")
	}
	if p.Lookup(Addr{N: 5, Ovfl: true}) != nil || p.Lookup(Addr{N: 6, Ovfl: true}) != nil {
		t.Fatal("overflow buffers outlived their primary")
	}
}

func TestPoolChainPinnedBlocksEviction(t *testing.T) {
	p, _ := newTestPool(t, 1)
	cap_ := p.MaxBuffers()

	prim, err := p.Get(Addr{N: 0}, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	o1, err := p.Get(Addr{N: 5, Ovfl: true}, prim, true)
	if err != nil {
		t.Fatal(err)
	}
	p.Put(prim) // primary unpinned, but its chain tail stays pinned

	for i := 1; i < cap_*2; i++ {
		b, err := p.Get(Addr{N: uint32(i)}, nil, true)
		if err != nil {
			t.Fatal(err)
		}
		p.Put(b)
	}
	if p.Lookup(Addr{N: 0}) == nil {
		t.Fatal("primary evicted while a chained successor was pinned")
	}
	p.Put(o1)
}

func TestPoolDrop(t *testing.T) {
	p, store := newTestPool(t, 64*16)
	prim, _ := p.Get(Addr{N: 0}, nil, true)
	o1, _ := p.Get(Addr{N: 5, Ovfl: true}, prim, true)
	o2, _ := p.Get(Addr{N: 6, Ovfl: true}, o1, true)
	p.Put(o2)
	p.Put(o1)

	o1.Page[0] = 0xEE // would be written if flushed
	p.Drop(prim, o1)
	if prim.Ovfl() != o2 {
		t.Fatal("Drop did not relink predecessor to successor")
	}
	if p.Lookup(Addr{N: 5, Ovfl: true}) != nil {
		t.Fatal("dropped buffer still resident")
	}
	p.Put(prim)
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	// The dropped page must not have been written.
	buf := make([]byte, 64)
	if err := store.ReadPage(1005, buf); err == nil && buf[0] == 0xEE {
		t.Fatal("dropped dirty page leaked to store")
	}
}

func TestPoolDiscard(t *testing.T) {
	p, _ := newTestPool(t, 64*16)
	prim, _ := p.Get(Addr{N: 0}, nil, true)
	o1, _ := p.Get(Addr{N: 5, Ovfl: true}, prim, true)
	p.Put(o1)
	p.Put(prim)

	p.Discard(Addr{N: 5, Ovfl: true})
	if p.Lookup(Addr{N: 5, Ovfl: true}) != nil {
		t.Fatal("discarded buffer still resident")
	}
	if prim.Ovfl() != nil {
		t.Fatal("predecessor link not cleared by Discard")
	}
	// Discard of a non-resident address is a no-op.
	p.Discard(Addr{N: 99, Ovfl: true})
}

func TestPoolInvalidateAll(t *testing.T) {
	p, store := newTestPool(t, 64*16)
	for i := 0; i < 5; i++ {
		b, _ := p.Get(Addr{N: uint32(i)}, nil, true)
		b.Page[0] = byte(i + 1)
		p.Put(b)
	}
	if err := p.InvalidateAll(); err != nil {
		t.Fatal(err)
	}
	if p.Resident() != 0 {
		t.Fatalf("resident = %d after InvalidateAll", p.Resident())
	}
	buf := make([]byte, 64)
	for i := uint32(0); i < 5; i++ {
		if err := store.ReadPage(i, buf); err != nil || buf[0] != byte(i+1) {
			t.Fatalf("page %d not flushed by InvalidateAll: %v", i, err)
		}
	}

	b, _ := p.Get(Addr{N: 0}, nil, false)
	p.Put(b)

	pinned, _ := p.Get(Addr{N: 1}, nil, false)
	if err := p.InvalidateAll(); err == nil {
		t.Fatal("InvalidateAll with pinned buffer succeeded")
	}
	p.Put(pinned)
}

func TestPoolPrimaryWithPrevRejected(t *testing.T) {
	p, _ := newTestPool(t, 64*16)
	b, _ := p.Get(Addr{N: 0}, nil, true)
	defer p.Put(b)
	if _, err := p.Get(Addr{N: 1}, b, true); err == nil {
		t.Fatal("primary fetch with predecessor accepted")
	}
}

func TestUnpinPanicsWhenNotPinned(t *testing.T) {
	p, _ := newTestPool(t, 64*16)
	b, _ := p.Get(Addr{N: 0}, nil, true)
	p.Put(b)
	defer func() {
		if recover() == nil {
			t.Fatal("double unpin did not panic")
		}
	}()
	p.Put(b)
}

func TestPoolManyPages(t *testing.T) {
	p, store := newTestPool(t, 64*32)
	const n = 500
	for i := 0; i < n; i++ {
		b, err := p.Get(Addr{N: uint32(i)}, nil, true)
		if err != nil {
			t.Fatal(err)
		}
		copy(b.Page, fmt.Sprintf("page-%d", i))
		p.Put(b)
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	for i := 0; i < n; i++ {
		if err := store.ReadPage(uint32(i), buf); err != nil {
			t.Fatalf("page %d: %v", i, err)
		}
		want := fmt.Sprintf("page-%d", i)
		if string(buf[:len(want)]) != want {
			t.Fatalf("page %d = %q", i, buf[:len(want)])
		}
	}
	if p.Resident() > p.MaxBuffers() {
		t.Fatalf("resident %d exceeds max %d with no pins", p.Resident(), p.MaxBuffers())
	}
}

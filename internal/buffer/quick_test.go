package buffer

import (
	"fmt"
	"math/rand"
	"testing"

	"unixhash/internal/pagefile"
)

// TestPoolCoherence drives random reads and writes through pools of many
// sizes and verifies that what comes back through the pool always
// reflects the latest write, regardless of evictions — the fundamental
// buffer-manager property.
func TestPoolCoherence(t *testing.T) {
	for _, maxBytes := range []int{1, 64 * 10, 64 * 100} {
		maxBytes := maxBytes
		t.Run(fmt.Sprintf("maxBytes=%d", maxBytes), func(t *testing.T) {
			store := pagefile.NewMem(64, pagefile.CostModel{})
			p := New(store, maxBytes, identityMap)
			rng := rand.New(rand.NewSource(int64(maxBytes)))

			// model[n] is the last value written to page n (0 = never).
			model := map[uint32]byte{}
			for op := 0; op < 20000; op++ {
				n := uint32(rng.Intn(200))
				addr := Addr{N: n}
				if rng.Intn(4) == 0 && n < 100 {
					addr = Addr{N: n, Ovfl: true}
				}
				var b *Buf
				var err error
				if addr.Ovfl {
					// The pool requires overflow fetches to name their owning
					// bucket; use the page number itself as a stable owner.
					b, err = p.GetOwned(addr, addr.N, true)
				} else {
					b, err = p.Get(addr, nil, true)
				}
				if err != nil {
					t.Fatalf("op %d: Get(%v): %v", op, addr, err)
				}
				id := addr.N
				if addr.Ovfl {
					id += 10000
				}
				if want := model[id]; want != 0 && b.Page[0] != want {
					t.Fatalf("op %d: page %v reads %d, last write was %d",
						op, addr, b.Page[0], want)
				}
				if rng.Intn(2) == 0 { // write
					v := byte(rng.Intn(254) + 1)
					b.Page[0] = v
					b.Dirty.Store(true)
					model[id] = v
				}
				p.Put(b)
			}
			// Flush everything and verify the store directly.
			if err := p.InvalidateAll(); err != nil {
				t.Fatal(err)
			}
			buf := make([]byte, 64)
			for id, want := range model {
				pageno := id
				if id >= 10000 {
					pageno = 1000 + (id - 10000)
				}
				if err := store.ReadPage(pageno, buf); err != nil {
					t.Fatalf("store read %d: %v", pageno, err)
				}
				if buf[0] != want {
					t.Fatalf("store page %d = %d, want %d", pageno, buf[0], want)
				}
			}
		})
	}
}

// TestPoolRecycleKeepsDataIntact exercises the evicted-buffer free list:
// reuse must never alias a live buffer's memory.
func TestPoolRecycleKeepsDataIntact(t *testing.T) {
	store := pagefile.NewMem(64, pagefile.CostModel{})
	p := New(store, 1, identityMap) // MinBuffers pages
	cap_ := p.MaxBuffers()

	// Write distinct pages through heavy eviction pressure.
	for round := 0; round < 20; round++ {
		for i := 0; i < cap_*3; i++ {
			b, err := p.Get(Addr{N: uint32(i)}, nil, true)
			if err != nil {
				t.Fatal(err)
			}
			b.Page[0] = byte(i + 1)
			b.Page[1] = byte(round)
			b.Dirty.Store(true)
			p.Put(b)
		}
		for i := 0; i < cap_*3; i++ {
			b, err := p.Get(Addr{N: uint32(i)}, nil, false)
			if err != nil {
				t.Fatal(err)
			}
			if b.Page[0] != byte(i+1) || b.Page[1] != byte(round) {
				t.Fatalf("round %d page %d: got (%d,%d)", round, i, b.Page[0], b.Page[1])
			}
			p.Put(b)
		}
	}
}

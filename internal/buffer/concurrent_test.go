package buffer

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"unixhash/internal/pagefile"
)

// These tests exercise the pool's concurrency contract: shard locking,
// atomic pins, chain/shard locality and overcommit under contention.
// Run them with -race. Page *contents* are not guarded by the pool (the
// table's RW lock does that), so every test either partitions pages per
// goroutine or treats shared pages as read-only after setup.

// TestPoolConcurrentPinBlocksEviction holds a pin on one page while
// other goroutines force evictions through every shard. The pinned
// buffer must survive with its identity and contents intact.
func TestPoolConcurrentPinBlocksEviction(t *testing.T) {
	store := pagefile.NewMem(64, pagefile.CostModel{})
	p := New(store, 64*8, identityMap) // 8 buffers, 1 shard
	pinned, err := p.Get(Addr{N: 0}, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	copy(pinned.Page, "keepme")

	var wg sync.WaitGroup
	workers := runtime.GOMAXPROCS(0) * 2
	if workers < 4 {
		workers = 4
	}
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each worker owns a disjoint page range so writes never race.
			base := uint32(1 + w*100)
			for i := 0; i < 500; i++ {
				b, err := p.Get(Addr{N: base + uint32(i%50)}, nil, true)
				if err != nil {
					errs <- err
					return
				}
				b.Page[0] = byte(w + 1)
				b.Dirty.Store(true)
				p.Put(b)
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if p.Counters().Evictions == 0 {
		t.Fatal("pressure produced no evictions; test is not testing anything")
	}
	if got := p.Lookup(Addr{N: 0}); got != pinned {
		t.Fatalf("pinned buffer replaced: %p != %p", got, pinned)
	}
	if string(pinned.Page[:6]) != "keepme" {
		t.Fatalf("pinned page contents clobbered: %q", pinned.Page[:6])
	}
	p.Put(pinned)
}

// TestPoolChainShardLocality verifies that however an overflow page is
// reached — chained through its predecessor or unlinked via GetOwned —
// it lands in its owning bucket's shard, so chain eviction never needs
// a second shard lock.
func TestPoolChainShardLocality(t *testing.T) {
	store := pagefile.NewMem(64, pagefile.CostModel{})
	p := New(store, 64*64, identityMap)
	if p.ShardCount() < 2 {
		t.Skipf("pool built only %d shard(s)", p.ShardCount())
	}
	for owner := uint32(0); owner < 32; owner++ {
		prim, err := p.Get(Addr{N: owner}, nil, true)
		if err != nil {
			t.Fatal(err)
		}
		o1, err := p.Get(Addr{N: owner*2 + 1, Ovfl: true}, prim, true)
		if err != nil {
			t.Fatal(err)
		}
		o2, err := p.GetOwned(Addr{N: owner*2 + 2, Ovfl: true}, owner, true)
		if err != nil {
			t.Fatal(err)
		}
		if o1.sh != prim.sh || o2.sh != prim.sh {
			t.Fatalf("owner %d: chain spread across shards", owner)
		}
		if o1.Owner() != owner || o2.Owner() != owner {
			t.Fatalf("owner %d: recorded owners %d, %d", owner, o1.Owner(), o2.Owner())
		}
		p.Put(o2)
		p.Put(o1)
		p.Put(prim)
	}
}

// TestPoolConcurrentChainEvictionOrdering builds chains in every shard,
// then applies concurrent eviction pressure. Whenever a primary has
// been evicted, its chained overflow buffers must be gone too — an
// overflow page never outlives its predecessor in the pool.
func TestPoolConcurrentChainEvictionOrdering(t *testing.T) {
	store := pagefile.NewMem(64, pagefile.CostModel{})
	p := New(store, 64*32, identityMap) // 32 buffers across shards
	const chains = 8
	for owner := uint32(0); owner < chains; owner++ {
		prim, err := p.Get(Addr{N: owner}, nil, true)
		if err != nil {
			t.Fatal(err)
		}
		o1, err := p.Get(Addr{N: owner + 100, Ovfl: true}, prim, true)
		if err != nil {
			t.Fatal(err)
		}
		p.Put(o1)
		p.Put(prim)
	}

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint32(1000 + w*500)
			for i := 0; i < 400; i++ {
				b, err := p.Get(Addr{N: base + uint32(i%200)}, nil, true)
				if err != nil {
					panic(err)
				}
				p.Put(b)
			}
		}(w)
	}
	wg.Wait()

	for owner := uint32(0); owner < chains; owner++ {
		prim := p.Lookup(Addr{N: owner})
		ovfl := p.Lookup(Addr{N: owner + 100, Ovfl: true})
		if prim == nil && ovfl != nil {
			t.Fatalf("owner %d: overflow buffer outlived its evicted primary", owner)
		}
	}
	if p.Counters().Evictions == 0 {
		t.Fatal("pressure produced no evictions; test is not testing anything")
	}
}

// TestPoolConcurrentOvercommit has every goroutine pin more buffers
// than its share of the pool simultaneously. The pool must overcommit
// rather than deadlock or fail, and every pinned page must keep the
// value its owner wrote.
func TestPoolConcurrentOvercommit(t *testing.T) {
	store := pagefile.NewMem(64, pagefile.CostModel{})
	p := New(store, 64*8, identityMap) // 8 buffers, 1 shard
	cap_ := p.MaxBuffers()

	var wg sync.WaitGroup
	const workers = 4
	errs := make(chan error, workers*2)
	var allPinned sync.WaitGroup // barrier: no unpin until every worker holds its quota
	allPinned.Add(workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint32(w * 1000)
			var held []*Buf
			// Together the workers pin 4*cap buffers at once.
			for i := 0; i < cap_; i++ {
				b, err := p.Get(Addr{N: base + uint32(i)}, nil, true)
				if err != nil {
					errs <- fmt.Errorf("worker %d pin %d: %w", w, i, err)
					break
				}
				b.Page[0] = byte(w + 1)
				b.Dirty.Store(true)
				held = append(held, b)
			}
			allPinned.Done()
			allPinned.Wait()
			for _, b := range held {
				if b.Page[0] != byte(w+1) {
					errs <- fmt.Errorf("worker %d: page %v clobbered", w, b.Addr)
				}
				p.Put(b)
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if p.Counters().Overcommits == 0 {
		t.Fatal("no overcommit recorded with all buffers pinned")
	}
}

// TestPoolConcurrentHammer drives random traffic from many goroutines:
// a shared read-only region plus a private writable region per worker.
// It exists to give the race detector surface area over the shard maps,
// LRU lists and pin counts.
func TestPoolConcurrentHammer(t *testing.T) {
	store := pagefile.NewMem(64, pagefile.CostModel{})
	p := New(store, 64*24, identityMap)

	// Shared pages, written once before the workers start.
	const shared = 40
	for i := uint32(0); i < shared; i++ {
		b, err := p.Get(Addr{N: i}, nil, true)
		if err != nil {
			t.Fatal(err)
		}
		b.Page[0] = byte(i + 1)
		b.Dirty.Store(true)
		p.Put(b)
	}

	var wg sync.WaitGroup
	workers := runtime.GOMAXPROCS(0) * 2
	if workers < 4 {
		workers = 4
	}
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			priv := uint32(10000 + w*1000)
			for i := 0; i < 2000; i++ {
				if rng.Intn(2) == 0 { // shared read
					n := uint32(rng.Intn(shared))
					b, err := p.Get(Addr{N: n}, nil, true)
					if err != nil {
						errs <- err
						return
					}
					if b.Page[0] != byte(n+1) {
						errs <- fmt.Errorf("shared page %d reads %d", n, b.Page[0])
						p.Put(b)
						return
					}
					p.Put(b)
				} else { // private write
					n := priv + uint32(rng.Intn(100))
					b, err := p.Get(Addr{N: n}, nil, true)
					if err != nil {
						errs <- err
						return
					}
					b.Page[1] = byte(w)
					b.Dirty.Store(true)
					p.Put(b)
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// Package buffer implements the hashing package's buffer manager: an LRU
// pool of page buffers over a pagefile.Store, as described in the paper's
// "Buffer Management" section, rebuilt for concurrent readers.
//
// The pool is split into N lock-striped shards. A page's shard is chosen
// by hashing the *bucket that owns it*: a primary page is owned by its own
// bucket number, and an overflow page is owned by the bucket whose chain
// it extends. Placing a whole chain in one shard preserves the paper's
// invariant — an overflow buffer is evicted together with its predecessor
// — with a single shard lock, and lets unrelated buckets fault, hit and
// evict pages in parallel.
//
// Primary pages are addressed by bucket number; overflow pages by their
// 16-bit overflow address. When an overflow page is fetched through its
// predecessor page, the predecessor's buffer header records the link, and
// evicting a buffer evicts the overflow buffers chained behind it — the
// paper's invariant that an overflow page is resident only while its
// predecessor is. Iterators and tools fetch overflow pages unlinked with
// GetOwned, naming the owning bucket so the fetch lands in the chain's
// shard. The buffer budget is pool-wide: a miss evicts from its own
// shard only once the whole pool is at capacity, so a skewed bucket
// distribution cannot strand capacity in cold shards. If the faulting
// shard has nothing evictable (everything pinned, or the pressure comes
// from hotter shards), it temporarily overcommits rather than failing,
// so arbitrarily long overflow chains work with small pools.
//
// Concurrency contract: all Pool methods are safe for concurrent use.
// Pin counts and Dirty flags are atomic; within a shard, the map, the
// LRU list and the chain links are guarded by the shard mutex. Page
// contents are NOT guarded by the pool — the owning table must ensure
// that a page is never written while another goroutine reads it (the
// hash table does so with per-bucket latches under its reader/writer
// table lock). The lock order is always table lock → bucket latch →
// shard lock; the pool never takes two shard locks at once.
package buffer

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"unixhash/internal/metrics"
	"unixhash/internal/oplog"
	"unixhash/internal/pagefile"
)

// Addr identifies a logical page: either a primary page (bucket number)
// or an overflow page (16-bit overflow address).
type Addr struct {
	N    uint32
	Ovfl bool
}

func (a Addr) String() string {
	if a.Ovfl {
		return fmt.Sprintf("ovfl %d/%d", a.N>>11, a.N&0x7ff)
	}
	return fmt.Sprintf("bucket %d", a.N)
}

// Buf is a buffer header: one page-sized buffer plus bookkeeping. The
// caller owns the Page contents while the buffer is pinned. Dirty may only
// be set by a caller that has exclusive use of the page (the table's
// bucket latch); concurrent readers must treat Page as read-only. Dirty
// is atomic so the flush paths can observe it without the page owner's
// latch.
type Buf struct {
	Addr  Addr
	Page  []byte
	Dirty atomic.Bool

	pins  atomic.Int32
	owner uint32 // bucket whose chain this page belongs to (shard key)
	sh    *shard
	ovfl  *Buf // resident successor overflow buffer, if any
	prev  *Buf // shard LRU list
	next  *Buf
}

// Pin marks the buffer in-use; a pinned buffer (and any chain containing
// it) cannot be evicted. Pins nest.
func (b *Buf) Pin() { b.pins.Add(1) }

// Unpin releases one pin.
func (b *Buf) Unpin() {
	if b.pins.Add(-1) < 0 {
		panic("buffer: unpin of unpinned buffer " + b.Addr.String())
	}
}

// Pinned reports whether the buffer is currently pinned.
func (b *Buf) Pinned() bool { return b.pins.Load() > 0 }

// Ovfl returns the resident successor overflow buffer, or nil.
func (b *Buf) Ovfl() *Buf { return b.ovfl }

// Owner returns the bucket that owns this page (its shard key).
func (b *Buf) Owner() uint32 { return b.owner }

// MapFunc translates a logical address into a physical page number in the
// store. The hash table supplies BUCKET_TO_PAGE / OADDR_TO_PAGE here.
type MapFunc func(Addr) uint32

// LoadFunc is called under the shard lock after a page is faulted in
// (whether read from the store or freshly created). It may initialize the
// page in place; returning true marks the buffer dirty. It runs exactly
// once per residency, so concurrent readers never race to format a page.
type LoadFunc func(Addr, []byte) bool

// Config carries optional pool parameters to NewConfig.
type Config struct {
	// Shards is the number of lock-striped shards; 0 picks a default.
	// The count is clamped so every shard holds at least MinBuffers
	// pages, and rounded down to a power of two.
	Shards int
	// OnLoad, if non-nil, post-processes every faulted-in page.
	OnLoad LoadFunc
	// OnEvict, if non-nil, observes every buffer evicted to make room
	// (not invalidations or drops): the evicted address and whether the
	// page was dirty (had to be written back) when chosen. It runs under
	// the shard lock and must not re-enter the pool.
	OnEvict func(Addr, bool)
}

// PoolCounters is the pool's event accounting. The counters are kept
// per shard — the hot path updates them as plain increments under the
// shard lock it already holds, so unrelated shards never contend or
// false-share on a counter cache line — and summed on read.
type PoolCounters struct {
	Hits        int64 // Get found the page resident
	Misses      int64 // Get faulted the page in
	Evictions   int64 // buffers evicted to make room
	NewPages    int64 // pages created fresh (not read from the store)
	Overcommits int64 // misses served beyond budget (nothing evictable)
	Pins        int64 // pin events (one per successful Get)
	Prefetched  int64 // pages installed by chain read-ahead
}

// Sub returns the component-wise difference c - o, for measuring one
// phase of a workload.
func (c PoolCounters) Sub(o PoolCounters) PoolCounters {
	return PoolCounters{
		Hits: c.Hits - o.Hits, Misses: c.Misses - o.Misses,
		Evictions: c.Evictions - o.Evictions, NewPages: c.NewPages - o.NewPages,
		Overcommits: c.Overcommits - o.Overcommits, Pins: c.Pins - o.Pins,
		Prefetched: c.Prefetched - o.Prefetched,
	}
}

// shard is one lock stripe of the pool: a private hash table, LRU list
// and free list over a slice of the buffer budget.
type shard struct {
	mu    sync.Mutex
	table map[Addr]*Buf
	lru   Buf          // sentinel: lru.next is most recent, lru.prev least recent
	free  []*Buf       // evicted buffers kept for reuse, as in the C package
	max   int          // this shard's slice of the budget (bounds the free list)
	n     PoolCounters // this stripe's slice of the event counters
}

// Pool is a sharded LRU buffer pool, safe for concurrent use.
type Pool struct {
	store      pagefile.Store
	mapAddr    MapFunc
	onLoad     LoadFunc
	onEvict    func(Addr, bool)
	pagesize   int
	shards     []shard
	shardShift uint32       // 32 - log2(len(shards))
	maxTotal   int          // pool-wide buffer budget
	resident   atomic.Int64 // pool-wide resident count (fast path for alloc)

	// prefetchBuf recycles the vectored-read scratch buffers used by
	// PrefetchChain (a pointer type, so Get/Put do not allocate).
	prefetchBuf sync.Pool
}

// Counters sums the per-shard event counters. Each shard is read under
// its own lock, so the totals never tear, though shards are sampled at
// slightly different instants.
func (p *Pool) Counters() PoolCounters {
	var c PoolCounters
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		c.Hits += sh.n.Hits
		c.Misses += sh.n.Misses
		c.Evictions += sh.n.Evictions
		c.NewPages += sh.n.NewPages
		c.Overcommits += sh.n.Overcommits
		c.Pins += sh.n.Pins
		c.Prefetched += sh.n.Prefetched
		sh.mu.Unlock()
	}
	return c
}

// HitRatio reports hits/(hits+misses), or 0 before any traffic.
func (c PoolCounters) HitRatio() float64 {
	if c.Hits+c.Misses == 0 {
		return 0
	}
	return float64(c.Hits) / float64(c.Hits+c.Misses)
}

// Pinned counts currently pinned buffers (a scrape-time scan; buffers
// are pinned only for the duration of one table operation).
func (p *Pool) Pinned() int {
	n := 0
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		for _, b := range sh.table {
			if b.Pinned() {
				n++
			}
		}
		sh.mu.Unlock()
	}
	return n
}

// RegisterMetrics exports the pool's counters and occupancy gauges into
// reg under prefix (e.g. "buffer_"). The counter funcs sum the shards at
// scrape time; nothing is added to the fault/hit hot path.
func (p *Pool) RegisterMetrics(reg *metrics.Registry, prefix string) {
	sum := func(pick func(PoolCounters) int64) func() int64 {
		return func() int64 { return pick(p.Counters()) }
	}
	reg.CounterFunc(prefix+"hits_total", sum(func(c PoolCounters) int64 { return c.Hits }))
	reg.CounterFunc(prefix+"misses_total", sum(func(c PoolCounters) int64 { return c.Misses }))
	reg.CounterFunc(prefix+"evictions_total", sum(func(c PoolCounters) int64 { return c.Evictions }))
	reg.CounterFunc(prefix+"new_pages_total", sum(func(c PoolCounters) int64 { return c.NewPages }))
	reg.CounterFunc(prefix+"overcommits_total", sum(func(c PoolCounters) int64 { return c.Overcommits }))
	reg.CounterFunc(prefix+"pins_total", sum(func(c PoolCounters) int64 { return c.Pins }))
	reg.CounterFunc(prefix+"prefetched_total", sum(func(c PoolCounters) int64 { return c.Prefetched }))
	reg.GaugeFunc(prefix+"resident", func() int64 { return p.resident.Load() })
	reg.GaugeFunc(prefix+"pinned", func() int64 { return int64(p.Pinned()) })
	reg.GaugeFunc(prefix+"capacity", func() int64 { return int64(p.maxTotal) })
	reg.GaugeFunc(prefix+"shards", func() int64 { return int64(len(p.shards)) })
}

// MinBuffers is the floor on per-shard size: a bucket split can touch the
// old chain, the new chain and an allocation simultaneously, so a shard
// must always be able to hold a handful of pinned pages.
const MinBuffers = 8

// defaultShards is the shard-count ceiling when Config.Shards is zero.
const defaultShards = 16

// New creates a pool of at most maxBytes of page buffers (rounded up to
// MinBuffers pages) over store, using mapAddr to place logical pages.
func New(store pagefile.Store, maxBytes int, mapAddr MapFunc) *Pool {
	return NewConfig(store, maxBytes, mapAddr, Config{})
}

// NewConfig creates a pool with explicit sharding and load-hook options.
func NewConfig(store pagefile.Store, maxBytes int, mapAddr MapFunc, cfg Config) *Pool {
	ps := store.PageSize()
	total := maxBytes / ps
	if total < MinBuffers {
		total = MinBuffers
	}
	nshards := cfg.Shards
	if nshards <= 0 {
		nshards = defaultShards
	}
	if byBudget := total / MinBuffers; nshards > byBudget {
		nshards = byBudget
	}
	if nshards < 1 {
		nshards = 1
	}
	nshards = 1 << floorLog2(nshards) // power of two for mask arithmetic

	p := &Pool{
		store:      store,
		mapAddr:    mapAddr,
		onLoad:     cfg.OnLoad,
		onEvict:    cfg.OnEvict,
		pagesize:   ps,
		shards:     make([]shard, nshards),
		shardShift: 32 - uint32(floorLog2(nshards)),
		maxTotal:   total,
	}
	for i := range p.shards {
		sh := &p.shards[i]
		sh.max = total / nshards
		if i < total%nshards {
			sh.max++
		}
		sh.table = make(map[Addr]*Buf, sh.max)
		sh.lru.next = &sh.lru
		sh.lru.prev = &sh.lru
	}
	return p
}

func floorLog2(n int) int {
	l := 0
	for n > 1 {
		n >>= 1
		l++
	}
	return l
}

// shardFor maps an owning bucket to its shard (Fibonacci hashing spreads
// consecutive bucket numbers across shards).
func (p *Pool) shardFor(owner uint32) *shard {
	return &p.shards[(owner*0x9E3779B1)>>p.shardShift]
}

// ShardCount reports the number of lock stripes.
func (p *Pool) ShardCount() int { return len(p.shards) }

// MaxBuffers reports the pool's capacity in pages.
func (p *Pool) MaxBuffers() int { return p.maxTotal }

// Resident reports the number of buffers currently held.
func (p *Pool) Resident() int {
	n := 0
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		n += len(sh.table)
		sh.mu.Unlock()
	}
	return n
}

func (sh *shard) lruInsert(b *Buf) {
	b.next = sh.lru.next
	b.prev = &sh.lru
	sh.lru.next.prev = b
	sh.lru.next = b
}

func (sh *shard) lruRemove(b *Buf) {
	b.prev.next = b.next
	b.next.prev = b.prev
	b.prev, b.next = nil, nil
}

func (sh *shard) touch(b *Buf) {
	sh.lruRemove(b)
	sh.lruInsert(b)
}

// Get returns a pinned buffer for addr. prev, if non-nil, is the
// predecessor buffer of an overflow page and receives the chain link;
// it also determines the shard, keeping a whole chain in its owning
// bucket's stripe. prev must be nil for primary pages and non-nil for
// overflow pages (use GetOwned for an unlinked overflow fetch). If create
// is set and the page is not in the store, a zeroed page is returned,
// marked dirty so it will eventually be written.
func (p *Pool) Get(addr Addr, prev *Buf, create bool) (*Buf, error) {
	if !addr.Ovfl && prev != nil {
		return nil, fmt.Errorf("buffer: primary page %v requested with predecessor", addr)
	}
	if addr.Ovfl && prev == nil {
		return nil, fmt.Errorf("buffer: overflow page %v requested without predecessor (use GetOwned)", addr)
	}
	owner := addr.N
	if prev != nil {
		owner = prev.owner
	}
	return p.get(addr, owner, prev, create, nil)
}

// GetOp is Get with op-ledger attribution: a pool-resident page charges
// a buffer-hit phase to led, a faulted page charges a buffer-fault
// phase (allocation, eviction and the store read included). A nil
// ledger is exactly Get — no clock reads, no extra work.
func (p *Pool) GetOp(led *oplog.Ledger, addr Addr, prev *Buf, create bool) (*Buf, error) {
	if led == nil {
		return p.Get(addr, prev, create)
	}
	if !addr.Ovfl && prev != nil {
		return nil, fmt.Errorf("buffer: primary page %v requested with predecessor", addr)
	}
	if addr.Ovfl && prev == nil {
		return nil, fmt.Errorf("buffer: overflow page %v requested without predecessor (use GetOwned)", addr)
	}
	owner := addr.N
	if prev != nil {
		owner = prev.owner
	}
	return p.get(addr, owner, prev, create, led)
}

// GetOwned returns a pinned buffer for an overflow page fetched outside
// its chain (iterators, tools), naming the bucket that owns it so the
// fetch uses the chain's shard.
func (p *Pool) GetOwned(addr Addr, owner uint32, create bool) (*Buf, error) {
	return p.GetOwnedOp(nil, addr, owner, create)
}

// GetOwnedOp is GetOwned with op-ledger attribution (see GetOp).
func (p *Pool) GetOwnedOp(led *oplog.Ledger, addr Addr, owner uint32, create bool) (*Buf, error) {
	if !addr.Ovfl {
		return nil, fmt.Errorf("buffer: GetOwned of primary page %v", addr)
	}
	return p.get(addr, owner, nil, create, led)
}

func (p *Pool) get(addr Addr, owner uint32, prev *Buf, create bool, led *oplog.Ledger) (*Buf, error) {
	var st int64
	if led != nil {
		st = oplog.Clock()
	}
	sh := p.shardFor(owner)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if b, ok := sh.table[addr]; ok {
		sh.n.Hits++
		sh.n.Pins++
		sh.touch(b)
		b.Pin()
		if prev != nil && prev.ovfl != b {
			prev.ovfl = b
		}
		if led != nil {
			led.Since(oplog.PhaseBufHit, st)
		}
		return b, nil
	}
	sh.n.Misses++
	if led != nil {
		defer led.Since(oplog.PhaseBufFault, st)
	}
	b, err := p.alloc(sh, addr, owner)
	if err != nil {
		return nil, err
	}
	pageno := p.mapAddr(addr)
	switch err := p.store.ReadPage(pageno, b.Page); {
	case err == nil:
	case errors.Is(err, pagefile.ErrNotAllocated) && create:
		clear(b.Page)
		b.Dirty.Store(true)
		sh.n.NewPages++
	case errors.Is(err, pagefile.ErrNotAllocated):
		sh.recycle(b)
		return nil, fmt.Errorf("buffer: %v: %w", addr, err)
	default:
		sh.recycle(b)
		return nil, err
	}
	if p.onLoad != nil && p.onLoad(addr, b.Page) {
		b.Dirty.Store(true)
	}
	sh.table[addr] = b
	sh.lruInsert(b)
	p.resident.Add(1)
	sh.n.Pins++
	b.Pin()
	if prev != nil {
		prev.ovfl = b
	}
	return b, nil
}

// alloc obtains a free buffer, evicting this shard's coldest evictable
// chain when the pool as a whole is at capacity — the budget is global,
// so a skewed bucket distribution cannot strand capacity in cold
// shards. If the shard has nothing evictable, it overcommits. Evicted
// buffers are recycled rather than reallocated. Called with sh.mu held.
func (p *Pool) alloc(sh *shard, addr Addr, owner uint32) (*Buf, error) {
	if int(p.resident.Load()) >= p.maxTotal {
		evicted := false
		for cand := sh.lru.prev; cand != &sh.lru; cand = cand.prev {
			if chainPinned(cand) {
				continue
			}
			if err := p.evict(sh, cand); err != nil {
				return nil, err
			}
			evicted = true
			break
		}
		if !evicted {
			sh.n.Overcommits++
		}
	}
	if n := len(sh.free); n > 0 {
		b := sh.free[n-1]
		sh.free = sh.free[:n-1]
		b.reset(addr, owner, sh)
		return b, nil
	}
	return &Buf{Addr: addr, Page: make([]byte, p.pagesize), owner: owner, sh: sh}, nil
}

// reset reinitializes a recycled buffer header in place (a struct
// assignment would copy the atomic pin counter, which go vet rejects).
func (b *Buf) reset(addr Addr, owner uint32, sh *shard) {
	b.Addr = addr
	b.Dirty.Store(false)
	b.pins.Store(0)
	b.owner = owner
	b.sh = sh
	b.ovfl, b.prev, b.next = nil, nil, nil
}

// recycle returns an evicted buffer's memory to the shard free list.
// Called with sh.mu held.
func (sh *shard) recycle(b *Buf) {
	if len(sh.free) < sh.max {
		sh.free = append(sh.free, b)
	}
}

// chainPinned reports whether b or any overflow buffer chained behind it
// is pinned.
func chainPinned(b *Buf) bool {
	for ; b != nil; b = b.ovfl {
		if b.Pinned() {
			return true
		}
	}
	return false
}

// evict flushes and drops head together with its resident overflow chain
// (the paper: an overflow page cannot stay in the pool when its
// predecessor leaves). The whole chain lives in sh by construction.
// Called with sh.mu held.
func (p *Pool) evict(sh *shard, head *Buf) error {
	// Capture the chain, then sever every pointer into it, as Discard
	// does. Demand walks keep a chain's head colder than its members, so
	// an eviction candidate used to be a whole-chain head by
	// construction; filter skips and read-ahead let a predecessor stay
	// hot while its successors go cold, and evicting such a suffix
	// without the sweep would leave the predecessor's chain pointer
	// dangling at a recycled (soon re-used) buffer. The capture is
	// bounded by the shard's residency so a corrupt linkage cannot hang
	// the sweep.
	chain := make([]*Buf, 0, 8)
	for m := head; m != nil && len(chain) <= len(sh.table); m = m.ovfl {
		chain = append(chain, m)
	}
	for _, other := range sh.table {
		if o := other.ovfl; o != nil {
			for _, m := range chain {
				if o == m {
					other.ovfl = nil
					break
				}
			}
		}
	}
	for _, b := range chain {
		dirty := b.Dirty.Load()
		if err := p.flushBuf(b); err != nil {
			return err
		}
		if sh.table[b.Addr] == b {
			sh.lruRemove(b)
			delete(sh.table, b.Addr)
			p.resident.Add(-1)
			sh.n.Evictions++
			if p.onEvict != nil {
				p.onEvict(b.Addr, dirty)
			}
			b.ovfl = nil
			sh.recycle(b)
		} else {
			b.ovfl = nil
		}
	}
	return nil
}

func (p *Pool) flushBuf(b *Buf) error {
	if !b.Dirty.Load() {
		return nil
	}
	if err := p.store.WritePage(p.mapAddr(b.Addr), b.Page); err != nil {
		return err
	}
	b.Dirty.Store(false)
	return nil
}

// MaxPrefetch caps the pages a single chain read-ahead fetches, bounding
// its scratch buffer and the residency it can claim at once.
const MaxPrefetch = 8

// PrefetchChain faults the overflow chain hanging off prev into the pool
// with one vectored store read, installing every fetched page in a
// single shard-lock epoch (the chain's whole shard state — residency
// check, device read, table inserts, chain links — mutates under one
// acquisition of the shard mutex, so no concurrent eviction can slip a
// newer page version between the read and the install). first is the
// chain's next address after prev; max bounds the pages fetched (the
// caller typically passes the primary filter's recorded chain length);
// nextAddr parses a page's trailing overflow link, returning ok=false at
// the end of the chain or on a page it does not trust.
//
// Only pages reached by walking links from prev are installed — the
// vectored read is a speculative contiguous span (overflow pages of one
// chain are allocated consecutively at a split point), and any page of
// the span the walk does not claim is discarded, so a neighboring
// bucket's page can never be installed into the wrong shard. Installed
// pages carry exactly the bytes a demand ReadPage would have returned
// and are left unpinned, to be re-pinned as hits by the caller's chain
// walk. Prefetch never writes: at capacity it evicts only clean,
// unpinned chains and otherwise stops early. Returns the number of pages
// installed. Best-effort: a read error installs nothing.
func (p *Pool) PrefetchChain(prev *Buf, first Addr, max int, nextAddr func([]byte) (Addr, bool)) int {
	vr, ok := p.store.(pagefile.VectorReader)
	if !ok || max <= 0 || prev == nil || !first.Ovfl {
		return 0
	}
	if max > MaxPrefetch {
		max = MaxPrefetch
	}
	owner := prev.owner
	sh := p.shardFor(owner)
	sh.mu.Lock()
	defer sh.mu.Unlock()

	// Skip the already-resident prefix of the chain.
	cur, pred, steps := first, prev, 0
	for steps < max {
		b, ok := sh.table[cur]
		if !ok {
			break
		}
		if pred.ovfl != b {
			pred.ovfl = b
		}
		nxt, ok := nextAddr(b.Page)
		if !ok || nxt == (Addr{}) {
			return 0 // chain fully resident (or untrusted)
		}
		pred, cur = b, nxt
		steps++
	}
	if steps >= max {
		return 0
	}

	// One vectored read of the span expected to hold the rest.
	k := max - steps
	base := p.mapAddr(cur)
	if np := p.store.NPages(); base >= np {
		return 0
	} else if uint32(k) > np-base {
		k = int(np - base)
	}
	bp, _ := p.prefetchBuf.Get().(*[]byte)
	if bp == nil || cap(*bp) < MaxPrefetch*p.pagesize {
		s := make([]byte, MaxPrefetch*p.pagesize)
		bp = &s
	}
	defer p.prefetchBuf.Put(bp)
	span := (*bp)[:k*p.pagesize]
	if err := vr.ReadPages(base, span); err != nil {
		return 0
	}

	installed := 0
	for steps < max {
		var pagebytes []byte
		if b, ok := sh.table[cur]; ok {
			// A later chain page can be resident while an earlier one is
			// not (iterators fetch overflow pages unlinked); follow it.
			if pred.ovfl != b {
				pred.ovfl = b
			}
			pagebytes = b.Page
			pred = b
		} else {
			pn := p.mapAddr(cur)
			if pn < base || pn >= base+uint32(k) {
				break // chain left the contiguous span
			}
			if int(p.resident.Load()) >= p.maxTotal && !p.evictClean(sh, owner) {
				break // never steal a dirty page for read-ahead
			}
			var b *Buf
			if n := len(sh.free); n > 0 {
				b = sh.free[n-1]
				sh.free = sh.free[:n-1]
				b.reset(cur, owner, sh)
			} else {
				b = &Buf{Addr: cur, Page: make([]byte, p.pagesize), owner: owner, sh: sh}
			}
			src := span[int(pn-base)*p.pagesize:]
			copy(b.Page, src[:p.pagesize])
			if p.onLoad != nil && p.onLoad(cur, b.Page) {
				b.Dirty.Store(true)
			}
			sh.table[cur] = b
			sh.lruInsert(b)
			p.resident.Add(1)
			pred.ovfl = b
			sh.n.Prefetched++
			installed++
			pagebytes = b.Page
			pred = b
		}
		nxt, ok := nextAddr(pagebytes)
		if !ok || nxt == (Addr{}) {
			break
		}
		cur = nxt
		steps++
	}
	return installed
}

// evictClean evicts the shard's coldest unpinned chain containing no
// dirty buffer, so the eviction performs no store write. Buffers owned
// by skipOwner are never candidates: the caller is mid-prefetch on that
// owner's chain and holds unpinned local references into it (the
// primary's pin protects only the buffers chained *behind* it, and the
// pages installed moments ago are clean and unpinned — evicting one
// would recycle a buffer the prefetch is about to link). Reports whether
// anything was evicted. Called with sh.mu held.
func (p *Pool) evictClean(sh *shard, skipOwner uint32) bool {
	for cand := sh.lru.prev; cand != &sh.lru; cand = cand.prev {
		if cand.owner == skipOwner || chainPinned(cand) || chainDirty(cand) {
			continue
		}
		if err := p.evict(sh, cand); err != nil {
			return false
		}
		return true
	}
	return false
}

// chainDirty reports whether b or any overflow buffer chained behind it
// is dirty.
func chainDirty(b *Buf) bool {
	for ; b != nil; b = b.ovfl {
		if b.Dirty.Load() {
			return true
		}
	}
	return false
}

// Put unpins a buffer obtained from Get.
func (p *Pool) Put(b *Buf) { b.Unpin() }

// Drop removes b from its chain and from the pool without writing it
// (its page was freed). prev, if non-nil, is re-linked to b's successor.
// b must be unpinned by the caller before or be held only by the caller;
// Drop clears its pins.
func (p *Pool) Drop(prev, b *Buf) {
	sh := b.sh
	sh.mu.Lock()
	defer sh.mu.Unlock()
	p.dropLocked(sh, prev, b)
}

// dropLocked is Drop with sh.mu held.
func (p *Pool) dropLocked(sh *shard, prev, b *Buf) {
	if prev != nil && prev.ovfl == b {
		prev.ovfl = b.ovfl
	}
	if sh.table[b.Addr] == b {
		sh.lruRemove(b)
		delete(sh.table, b.Addr)
		p.resident.Add(-1)
	}
	pinned := b.pins.Load() > 0
	b.ovfl = nil
	b.Dirty.Store(false)
	b.pins.Store(0)
	// An unpinned buffer can be recycled: once out of the table no new
	// pin can reach it. A pinned one may still be referenced by its
	// holder, so its memory is left to the collector.
	if !pinned {
		sh.recycle(b)
	}
}

// Discard drops the buffer for addr without writing it, if resident.
// Used for freed pages whose contents no longer matter. The owning shard
// is not known to every caller (a freed overflow page's bucket is gone),
// so all shards are searched; any predecessor links pointing at the
// buffer are cleared in its own shard, where the whole chain lives.
func (p *Pool) Discard(addr Addr) {
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		b, ok := sh.table[addr]
		if ok {
			for _, other := range sh.table {
				if other.ovfl == b {
					other.ovfl = b.ovfl
				}
			}
			p.dropLocked(sh, nil, b)
		}
		sh.mu.Unlock()
	}
}

// Flush writes every dirty buffer to the store. Buffers stay resident.
func (p *Pool) Flush() error { return p.FlushAll() }

// maxCoalesce caps the pages merged into one vectored write, bounding
// the scratch buffer (64 pages = 256 KB at the largest page size).
const maxCoalesce = 64

// FlushAll writes every dirty buffer to the store in ascending physical
// page order, coalescing runs of adjacent pages into single vectored
// writes when the store supports them (pagefile.VectorWriter). The LRU
// flush order the C package inherited from its pool is the worst case
// for a disk — page 900, page 3, page 412 — whereas a sorted flush is
// one forward pass; on stores without vectored writes the sorted order
// still turns the flush into sequential WritePage calls. Buffers stay
// resident. Collected buffers are pinned across the write pass so a
// concurrent fault cannot evict (and recycle) them mid-flush; the Dirty
// flag is cleared after a successful write. On error, buffers not yet
// written keep their Dirty flag, so a later flush retries them.
func (p *Pool) FlushAll() error {
	type dirtyRef struct {
		b      *Buf
		pageno uint32
	}
	var refs []dirtyRef
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		for b := sh.lru.prev; b != &sh.lru; b = b.prev {
			if b.Dirty.Load() {
				b.Pin()
				refs = append(refs, dirtyRef{b: b, pageno: p.mapAddr(b.Addr)})
			}
		}
		sh.mu.Unlock()
	}
	sort.Slice(refs, func(i, j int) bool { return refs[i].pageno < refs[j].pageno })

	vw, _ := p.store.(pagefile.VectorWriter)
	var scratch []byte
	writeRun := func(run []dirtyRef) error {
		if len(run) == 1 || vw == nil {
			for _, r := range run {
				if err := p.store.WritePage(r.pageno, r.b.Page); err != nil {
					return err
				}
			}
			return nil
		}
		need := len(run) * p.pagesize
		if cap(scratch) < need {
			scratch = make([]byte, need)
		}
		buf := scratch[:need]
		for k, r := range run {
			copy(buf[k*p.pagesize:(k+1)*p.pagesize], r.b.Page)
		}
		return vw.WritePages(run[0].pageno, buf)
	}

	var err error
	for lo := 0; lo < len(refs) && err == nil; {
		hi := lo + 1
		for hi < len(refs) && hi-lo < maxCoalesce && refs[hi].pageno == refs[hi-1].pageno+1 {
			hi++
		}
		if err = writeRun(refs[lo:hi]); err == nil {
			for _, r := range refs[lo:hi] {
				r.b.Dirty.Store(false)
			}
		}
		lo = hi
	}
	for _, r := range refs {
		r.b.Unpin()
	}
	return err
}

// InvalidateAll flushes and drops every buffer; pinned buffers are an
// error. Used by Close and by tests that reopen stores.
func (p *Pool) InvalidateAll() error {
	if err := p.Flush(); err != nil {
		return err
	}
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		for addr, b := range sh.table {
			if b.Pinned() {
				sh.mu.Unlock()
				return fmt.Errorf("buffer: invalidate with pinned buffer %v", addr)
			}
		}
		for b := sh.lru.next; b != &sh.lru; {
			next := b.next
			b.prev, b.next, b.ovfl = nil, nil, nil
			b = next
		}
		sh.lru.next = &sh.lru
		sh.lru.prev = &sh.lru
		p.resident.Add(-int64(len(sh.table)))
		sh.table = make(map[Addr]*Buf)
		sh.mu.Unlock()
	}
	return nil
}

// Lookup returns the resident buffer for addr without pinning it, or nil.
// Intended for tests and the dump tool; it searches every shard.
func (p *Pool) Lookup(addr Addr) *Buf {
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		b := sh.table[addr]
		sh.mu.Unlock()
		if b != nil {
			return b
		}
	}
	return nil
}

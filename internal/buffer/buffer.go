// Package buffer implements the hashing package's buffer manager: an LRU
// pool of page buffers over a pagefile.Store, as described in the paper's
// "Buffer Management" section.
//
// Primary pages are addressed by bucket number; overflow pages by their
// 16-bit overflow address. When an overflow page is fetched through its
// predecessor page, the predecessor's buffer header records the link, and
// evicting a buffer evicts the overflow buffers chained behind it — the
// paper's invariant that an overflow page is resident only while its
// predecessor is. Iterators and tools may also fetch overflow pages
// unlinked. If every buffer is pinned when a new page is needed, the pool
// temporarily overcommits rather than failing, so arbitrarily long
// overflow chains work with small pools.
package buffer

import (
	"errors"
	"fmt"

	"unixhash/internal/pagefile"
)

// Addr identifies a logical page: either a primary page (bucket number)
// or an overflow page (16-bit overflow address).
type Addr struct {
	N    uint32
	Ovfl bool
}

func (a Addr) String() string {
	if a.Ovfl {
		return fmt.Sprintf("ovfl %d/%d", a.N>>11, a.N&0x7ff)
	}
	return fmt.Sprintf("bucket %d", a.N)
}

// Buf is a buffer header: one page-sized buffer plus bookkeeping. The
// caller owns the Page contents while the buffer is pinned.
type Buf struct {
	Addr  Addr
	Page  []byte
	Dirty bool

	pins int
	ovfl *Buf // resident successor overflow buffer, if any
	prev *Buf // LRU list
	next *Buf
}

// Pin marks the buffer in-use; a pinned buffer (and any chain containing
// it) cannot be evicted. Pins nest.
func (b *Buf) Pin() { b.pins++ }

// Unpin releases one pin.
func (b *Buf) Unpin() {
	if b.pins <= 0 {
		panic("buffer: unpin of unpinned buffer " + b.Addr.String())
	}
	b.pins--
}

// Pinned reports whether the buffer is currently pinned.
func (b *Buf) Pinned() bool { return b.pins > 0 }

// Ovfl returns the resident successor overflow buffer, or nil.
func (b *Buf) Ovfl() *Buf { return b.ovfl }

// MapFunc translates a logical address into a physical page number in the
// store. The hash table supplies BUCKET_TO_PAGE / OADDR_TO_PAGE here.
type MapFunc func(Addr) uint32

// Pool is an LRU buffer pool. It is not safe for concurrent use; the
// owning table serializes access.
type Pool struct {
	store    pagefile.Store
	mapAddr  MapFunc
	pagesize int
	max      int // maximum resident buffers (soft: see Overcommits)

	table map[Addr]*Buf
	lru   Buf    // sentinel: lru.next is most recent, lru.prev least recent
	free  []*Buf // evicted buffers kept for reuse, as in the C package

	// Counters for tests and the benchmark harness.
	Hits        int64
	Misses      int64
	Evictions   int64
	NewPages    int64
	Overcommits int64
}

// MinBuffers is the floor on pool size: a bucket split can touch the old
// chain, the new chain and an allocation simultaneously, so the pool must
// always be able to hold a handful of pinned pages.
const MinBuffers = 8

// New creates a pool of at most maxBytes of page buffers (rounded up to
// MinBuffers pages) over store, using mapAddr to place logical pages.
func New(store pagefile.Store, maxBytes int, mapAddr MapFunc) *Pool {
	ps := store.PageSize()
	n := maxBytes / ps
	if n < MinBuffers {
		n = MinBuffers
	}
	p := &Pool{
		store:    store,
		mapAddr:  mapAddr,
		pagesize: ps,
		max:      n,
		table:    make(map[Addr]*Buf, n),
	}
	p.lru.next = &p.lru
	p.lru.prev = &p.lru
	return p
}

// MaxBuffers reports the pool's capacity in pages.
func (p *Pool) MaxBuffers() int { return p.max }

// Resident reports the number of buffers currently held.
func (p *Pool) Resident() int { return len(p.table) }

func (p *Pool) lruInsert(b *Buf) {
	b.next = p.lru.next
	b.prev = &p.lru
	p.lru.next.prev = b
	p.lru.next = b
}

func (p *Pool) lruRemove(b *Buf) {
	b.prev.next = b.next
	b.next.prev = b.prev
	b.prev, b.next = nil, nil
}

func (p *Pool) touch(b *Buf) {
	p.lruRemove(b)
	p.lruInsert(b)
}

// Get returns a pinned buffer for addr. prev, if non-nil, is the
// predecessor buffer of an overflow page and receives the chain link;
// nil performs an unlinked fetch. prev must be nil for primary pages.
// If create is set and the page is not in the store, a zeroed page is
// returned, marked dirty so it will eventually be written.
func (p *Pool) Get(addr Addr, prev *Buf, create bool) (*Buf, error) {
	if !addr.Ovfl && prev != nil {
		return nil, fmt.Errorf("buffer: primary page %v requested with predecessor", addr)
	}
	if b, ok := p.table[addr]; ok {
		p.Hits++
		p.touch(b)
		b.Pin()
		if prev != nil && prev.ovfl != b {
			prev.ovfl = b
		}
		return b, nil
	}
	p.Misses++
	b, err := p.alloc(addr)
	if err != nil {
		return nil, err
	}
	pageno := p.mapAddr(addr)
	switch err := p.store.ReadPage(pageno, b.Page); {
	case err == nil:
	case errors.Is(err, pagefile.ErrNotAllocated) && create:
		clear(b.Page)
		b.Dirty = true
		p.NewPages++
	case errors.Is(err, pagefile.ErrNotAllocated):
		return nil, fmt.Errorf("buffer: %v: %w", addr, err)
	default:
		return nil, err
	}
	p.table[addr] = b
	p.lruInsert(b)
	b.Pin()
	if prev != nil {
		prev.ovfl = b
	}
	return b, nil
}

// alloc obtains a free buffer, evicting the coldest evictable chain if
// the pool is full. If everything is pinned, the pool overcommits.
// Evicted buffers are recycled rather than reallocated.
func (p *Pool) alloc(addr Addr) (*Buf, error) {
	if len(p.table) >= p.max {
		evicted := false
		for cand := p.lru.prev; cand != &p.lru; cand = cand.prev {
			if chainPinned(cand) {
				continue
			}
			if err := p.evict(cand); err != nil {
				return nil, err
			}
			evicted = true
			break
		}
		if !evicted {
			p.Overcommits++
		}
	}
	if n := len(p.free); n > 0 {
		b := p.free[n-1]
		p.free = p.free[:n-1]
		*b = Buf{Addr: addr, Page: b.Page}
		return b, nil
	}
	return &Buf{Addr: addr, Page: make([]byte, p.pagesize)}, nil
}

// recycle returns an evicted buffer's memory to the free list.
func (p *Pool) recycle(b *Buf) {
	if len(p.free) < p.max {
		p.free = append(p.free, b)
	}
}

// chainPinned reports whether b or any overflow buffer chained behind it
// is pinned.
func chainPinned(b *Buf) bool {
	for ; b != nil; b = b.ovfl {
		if b.Pinned() {
			return true
		}
	}
	return false
}

// evict flushes and drops b together with its resident overflow chain
// (the paper: an overflow page cannot stay in the pool when its
// predecessor leaves).
func (p *Pool) evict(b *Buf) error {
	for b != nil {
		next := b.ovfl
		if err := p.flushBuf(b); err != nil {
			return err
		}
		if p.table[b.Addr] == b {
			p.lruRemove(b)
			delete(p.table, b.Addr)
			p.Evictions++
			b.ovfl = nil
			p.recycle(b)
		} else {
			b.ovfl = nil
		}
		b = next
	}
	return nil
}

func (p *Pool) flushBuf(b *Buf) error {
	if !b.Dirty {
		return nil
	}
	if err := p.store.WritePage(p.mapAddr(b.Addr), b.Page); err != nil {
		return err
	}
	b.Dirty = false
	return nil
}

// Put unpins a buffer obtained from Get.
func (p *Pool) Put(b *Buf) { b.Unpin() }

// Drop removes b from its chain and from the pool without writing it
// (its page was freed). prev, if non-nil, is re-linked to b's successor.
// b must be unpinned by the caller before or be held only by the caller;
// Drop clears its pins.
func (p *Pool) Drop(prev, b *Buf) {
	if prev != nil && prev.ovfl == b {
		prev.ovfl = b.ovfl
	}
	if p.table[b.Addr] == b {
		p.lruRemove(b)
		delete(p.table, b.Addr)
	}
	b.ovfl = nil
	b.Dirty = false
	b.pins = 0
}

// Discard drops the buffer for addr without writing it, if resident.
// Used for freed pages whose contents no longer matter.
func (p *Pool) Discard(addr Addr) {
	b, ok := p.table[addr]
	if !ok {
		return
	}
	for _, other := range p.table {
		if other.ovfl == b {
			other.ovfl = b.ovfl
		}
	}
	p.Drop(nil, b)
}

// Flush writes every dirty buffer to the store. Buffers stay resident.
func (p *Pool) Flush() error {
	for b := p.lru.prev; b != &p.lru; b = b.prev {
		if err := p.flushBuf(b); err != nil {
			return err
		}
	}
	return nil
}

// InvalidateAll flushes and drops every buffer; pinned buffers are an
// error. Used by Close and by tests that reopen stores.
func (p *Pool) InvalidateAll() error {
	if err := p.Flush(); err != nil {
		return err
	}
	for addr, b := range p.table {
		if b.Pinned() {
			return fmt.Errorf("buffer: invalidate with pinned buffer %v", addr)
		}
	}
	for b := p.lru.next; b != &p.lru; {
		next := b.next
		b.prev, b.next, b.ovfl = nil, nil, nil
		b = next
	}
	p.lru.next = &p.lru
	p.lru.prev = &p.lru
	p.table = make(map[Addr]*Buf)
	return nil
}

// Lookup returns the resident buffer for addr without pinning it, or nil.
// Intended for tests and the dump tool.
func (p *Pool) Lookup(addr Addr) *Buf {
	return p.table[addr]
}

// Package gdbm is a clean-room Go port of the gdbm algorithm as the
// paper describes it: extensible hashing (Fagin et al. [FAG79]), in which
// a directory — a collapsed array representation of sdbm's radix search
// trie — holds 2^depth bucket addresses. A hash value indexed by depth
// bits yields a bucket address in one step; multiple directory entries
// may share one bucket, and splitting a bucket whose depth equals the
// directory's doubles the directory.
//
// The database is a singular, non-sparse file (unlike dbm's): a header
// page, bucket pages, and the serialized directory.
package gdbm

import (
	"encoding/binary"
	"errors"
	"fmt"

	"unixhash/internal/dpage"
	"unixhash/internal/hashfunc"
	"unixhash/internal/pagefile"
)

// Errors returned by DB operations.
var (
	ErrNotFound  = errors.New("gdbm: key not found")
	ErrKeyExists = errors.New("gdbm: key already exists")
	ErrTooBig    = errors.New("gdbm: key/data pair exceeds the page size")
	ErrSplit     = errors.New("gdbm: cannot split bucket (too many colliding keys)")
	ErrClosed    = errors.New("gdbm: database is closed")
	ErrCorrupt   = errors.New("gdbm: file is corrupt")
)

// DefaultPageSize is the default bucket size.
const DefaultPageSize = 1024

const (
	gdbmMagic  = 0x67646d31 // "gdm1"
	maxDirBits = 24         // directory up to 16M entries; bounds split loops
)

var le = binary.LittleEndian

// Bucket pages carry their depth in a 4-byte prefix before the slotted
// payload.
const bucketHdr = 4

type bucketPage []byte

func (b bucketPage) depth() int     { return int(le.Uint16(b[0:2])) }
func (b bucketPage) setDepth(d int) { le.PutUint16(b[0:2], uint16(d)) }
func (b bucketPage) data() dpage.Page {
	return dpage.Page(b[bucketHdr:])
}

// Options parameterizes Open.
type Options struct {
	PageSize int
	Store    pagefile.Store
	Cost     pagefile.CostModel
}

// DB is a gdbm database.
type DB struct {
	store    pagefile.Store
	ownStore bool
	pagesize int

	depth    int      // directory depth
	dir      []uint32 // 2^depth bucket page numbers
	nextPage uint32   // file allocation high-water mark
	count    int64

	closed bool
}

// Open opens or creates the database at path (a single file). An empty
// path with opts.Store unset is memory-backed.
func Open(path string, opts *Options) (*DB, error) {
	var o Options
	if opts != nil {
		o = *opts
	}
	if o.PageSize == 0 {
		o.PageSize = DefaultPageSize
	}
	if o.PageSize < 64 {
		return nil, fmt.Errorf("gdbm: page size %d too small", o.PageSize)
	}
	db := &DB{pagesize: o.PageSize}
	switch {
	case o.Store != nil:
		db.store = o.Store
	case path == "":
		db.store = pagefile.NewMem(o.PageSize, o.Cost)
		db.ownStore = true
	default:
		fs, err := pagefile.OpenFile(path, o.PageSize, o.Cost)
		if err != nil {
			return nil, err
		}
		db.store = fs
		db.ownStore = true
	}
	if db.store.PageSize() != o.PageSize {
		return nil, fmt.Errorf("gdbm: store page size %d != requested %d", db.store.PageSize(), o.PageSize)
	}
	if db.store.NPages() > 0 {
		if err := db.load(); err != nil {
			if db.ownStore {
				db.store.Close()
			}
			return nil, err
		}
	} else {
		// Fresh database: depth 0, one bucket at page 1.
		db.depth = 0
		db.nextPage = 2
		db.dir = []uint32{1}
		b := db.newBucket(0)
		if err := db.writeBucket(1, b); err != nil {
			return nil, err
		}
	}
	return db, nil
}

func (db *DB) newBucket(depth int) bucketPage {
	b := bucketPage(make([]byte, db.pagesize))
	b.setDepth(depth)
	b.data().Init()
	return b
}

// Header page layout: magic, pagesize, depth, nextPage, count, dirStart,
// dirPages. The directory follows at pages [dirStart, dirStart+dirPages).
func (db *DB) flushMeta() error {
	dirBytes := make([]byte, 4*len(db.dir))
	for i, p := range db.dir {
		le.PutUint32(dirBytes[4*i:], p)
	}
	dirPages := (len(dirBytes) + db.pagesize - 1) / db.pagesize
	if dirPages == 0 {
		dirPages = 1
	}
	dirStart := db.nextPage

	hdr := make([]byte, db.pagesize)
	le.PutUint32(hdr[0:], gdbmMagic)
	le.PutUint32(hdr[4:], uint32(db.pagesize))
	le.PutUint32(hdr[8:], uint32(db.depth))
	le.PutUint32(hdr[12:], db.nextPage)
	le.PutUint64(hdr[16:], uint64(db.count))
	le.PutUint32(hdr[24:], dirStart)
	le.PutUint32(hdr[28:], uint32(dirPages))
	if err := db.store.WritePage(0, hdr); err != nil {
		return err
	}
	buf := make([]byte, db.pagesize)
	for i := 0; i < dirPages; i++ {
		clear(buf)
		lo := i * db.pagesize
		hi := lo + db.pagesize
		if hi > len(dirBytes) {
			hi = len(dirBytes)
		}
		copy(buf, dirBytes[lo:hi])
		if err := db.store.WritePage(dirStart+uint32(i), buf); err != nil {
			return err
		}
	}
	return nil
}

func (db *DB) load() error {
	hdr := make([]byte, db.pagesize)
	if err := db.store.ReadPage(0, hdr); err != nil {
		return err
	}
	if le.Uint32(hdr[0:]) != gdbmMagic {
		return ErrCorrupt
	}
	if int(le.Uint32(hdr[4:])) != db.pagesize {
		return fmt.Errorf("%w: page size mismatch", ErrCorrupt)
	}
	db.depth = int(le.Uint32(hdr[8:]))
	db.nextPage = le.Uint32(hdr[12:])
	db.count = int64(le.Uint64(hdr[16:]))
	dirStart := le.Uint32(hdr[24:])
	dirPages := int(le.Uint32(hdr[28:]))
	if db.depth > maxDirBits || db.nextPage == 0 {
		return ErrCorrupt
	}
	n := 1 << uint(db.depth)
	dirBytes := make([]byte, 0, dirPages*db.pagesize)
	buf := make([]byte, db.pagesize)
	for i := 0; i < dirPages; i++ {
		if err := db.store.ReadPage(dirStart+uint32(i), buf); err != nil {
			return err
		}
		dirBytes = append(dirBytes, buf...)
	}
	if len(dirBytes) < 4*n {
		return fmt.Errorf("%w: directory truncated", ErrCorrupt)
	}
	db.dir = make([]uint32, n)
	for i := range db.dir {
		db.dir[i] = le.Uint32(dirBytes[4*i:])
		if db.dir[i] == 0 {
			return fmt.Errorf("%w: directory entry %d is the header page", ErrCorrupt, i)
		}
	}
	return nil
}

func (db *DB) readBucket(pg uint32) (bucketPage, error) {
	buf := make([]byte, db.pagesize)
	if err := db.store.ReadPage(pg, buf); err != nil {
		return nil, err
	}
	b := bucketPage(buf)
	b.data().InitIfNew()
	return b, nil
}

func (db *DB) writeBucket(pg uint32, b bucketPage) error {
	return db.store.WritePage(pg, b)
}

func (db *DB) dirIndex(h uint32) int {
	return int(h & (1<<uint(db.depth) - 1))
}

// Fetch returns a copy of the data stored under key.
func (db *DB) Fetch(key []byte) ([]byte, error) {
	if db.closed {
		return nil, ErrClosed
	}
	b, err := db.readBucket(db.dir[db.dirIndex(hashfunc.Default(key))])
	if err != nil {
		return nil, err
	}
	p := b.data()
	i := p.Find(key)
	if i < 0 {
		return nil, ErrNotFound
	}
	_, data := p.Pair(i)
	return append([]byte(nil), data...), nil
}

// Store inserts key/data, splitting buckets (and doubling the directory
// when a bucket's depth exceeds it) until the pair fits.
func (db *DB) Store(key, data []byte, replace bool) error {
	if db.closed {
		return ErrClosed
	}
	if len(key)+len(data) > dpage.MaxPair(db.pagesize-bucketHdr) {
		return ErrTooBig
	}
	h := hashfunc.Default(key)
	for {
		pg := db.dir[db.dirIndex(h)]
		b, err := db.readBucket(pg)
		if err != nil {
			return err
		}
		p := b.data()
		if i := p.Find(key); i >= 0 {
			if !replace {
				return ErrKeyExists
			}
			if err := p.Remove(i); err != nil {
				return err
			}
			db.count--
		}
		if p.Fits(len(key), len(data)) {
			p.Insert(key, data)
			db.count++
			return db.writeBucket(pg, b)
		}
		if b.depth() >= maxDirBits {
			return ErrSplit
		}
		if err := db.splitBucket(pg, b); err != nil {
			return err
		}
	}
}

// splitBucket splits the bucket stored at page pg, doubling the
// directory if the bucket's depth already equals the directory's.
func (db *DB) splitBucket(pg uint32, b bucketPage) error {
	nb := b.depth()
	if nb == db.depth {
		// Double the directory: each entry is duplicated; depth grows.
		if db.depth >= maxDirBits {
			return ErrSplit
		}
		newDir := make([]uint32, 2*len(db.dir))
		for i, p := range db.dir {
			newDir[i] = p
			newDir[i+len(db.dir)] = p
		}
		db.dir = newDir
		db.depth++
	}
	// Split by bit nb (the next hash bit beyond the bucket's depth).
	newPg := db.nextPage
	db.nextPage++
	oldB := db.newBucket(nb + 1)
	newB := db.newBucket(nb + 1)
	bit := uint32(1) << uint(nb)
	b.data().ForEach(func(i int, k, v []byte) bool {
		if hashfunc.Default(k)&bit != 0 {
			newB.data().Insert(k, v)
		} else {
			oldB.data().Insert(k, v)
		}
		return true
	})
	// Redirect the directory entries whose bit nb is set from pg to the
	// new page.
	for i := range db.dir {
		if db.dir[i] == pg && uint32(i)&bit != 0 {
			db.dir[i] = newPg
		}
	}
	if err := db.writeBucket(newPg, newB); err != nil {
		return err
	}
	return db.writeBucket(pg, oldB)
}

// Delete removes key.
func (db *DB) Delete(key []byte) error {
	if db.closed {
		return ErrClosed
	}
	pg := db.dir[db.dirIndex(hashfunc.Default(key))]
	b, err := db.readBucket(pg)
	if err != nil {
		return err
	}
	p := b.data()
	i := p.Find(key)
	if i < 0 {
		return ErrNotFound
	}
	if err := p.Remove(i); err != nil {
		return err
	}
	db.count--
	return db.writeBucket(pg, b)
}

// Len returns the number of stored pairs.
func (db *DB) Len() int { return int(db.count) }

// ForEach visits every pair, visiting each bucket once even when several
// directory entries share it.
func (db *DB) ForEach(fn func(key, data []byte) bool) error {
	if db.closed {
		return ErrClosed
	}
	seen := make(map[uint32]bool)
	for _, pg := range db.dir {
		if seen[pg] {
			continue
		}
		seen[pg] = true
		b, err := db.readBucket(pg)
		if err != nil {
			return err
		}
		stop := false
		b.data().ForEach(func(i int, k, v []byte) bool {
			if !fn(k, v) {
				stop = true
				return false
			}
			return true
		})
		if stop {
			return nil
		}
	}
	return nil
}

// Sync persists the header and directory.
func (db *DB) Sync() error {
	if db.closed {
		return ErrClosed
	}
	if err := db.flushMeta(); err != nil {
		return err
	}
	return db.store.Sync()
}

// Close flushes and closes the database.
func (db *DB) Close() error {
	if db.closed {
		return nil
	}
	err := db.Sync()
	db.closed = true
	if db.ownStore {
		if e := db.store.Close(); err == nil {
			err = e
		}
	}
	return err
}

// Depth returns the directory depth (for tests).
func (db *DB) Depth() int { return db.depth }

// DirSize returns the directory entry count (for tests).
func (db *DB) DirSize() int { return len(db.dir) }

// PageStore returns the backing page store (for benchmark accounting).
func (db *DB) PageStore() pagefile.Store { return db.store }

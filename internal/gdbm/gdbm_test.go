package gdbm

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"
)

func mustOpen(t *testing.T, path string, opts *Options) *DB {
	t.Helper()
	db, err := Open(path, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return db
}

func TestStoreFetchDelete(t *testing.T) {
	db := mustOpen(t, "", nil)
	defer db.Close()
	if err := db.Store([]byte("key"), []byte("value"), true); err != nil {
		t.Fatal(err)
	}
	got, err := db.Fetch([]byte("key"))
	if err != nil || string(got) != "value" {
		t.Fatalf("Fetch = %q, %v", got, err)
	}
	if db.Len() != 1 {
		t.Fatalf("Len = %d", db.Len())
	}
	if err := db.Delete([]byte("key")); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Fetch([]byte("key")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Fetch after delete = %v", err)
	}
	if db.Len() != 0 {
		t.Fatalf("Len = %d", db.Len())
	}
}

func TestDirectoryDoubling(t *testing.T) {
	db := mustOpen(t, "", &Options{PageSize: 128})
	defer db.Close()
	if db.Depth() != 0 || db.DirSize() != 1 {
		t.Fatalf("fresh: depth=%d dir=%d", db.Depth(), db.DirSize())
	}
	const n = 2000
	for i := 0; i < n; i++ {
		if err := db.Store([]byte(fmt.Sprintf("key-%05d", i)), []byte("v"), true); err != nil {
			t.Fatalf("Store %d: %v", i, err)
		}
	}
	if db.Depth() == 0 {
		t.Fatal("directory never doubled")
	}
	if db.DirSize() != 1<<uint(db.Depth()) {
		t.Fatalf("dir size %d != 2^depth %d", db.DirSize(), 1<<uint(db.Depth()))
	}
	for i := 0; i < n; i++ {
		if _, err := db.Fetch([]byte(fmt.Sprintf("key-%05d", i))); err != nil {
			t.Fatalf("Fetch %d: %v", i, err)
		}
	}
}

func TestSharedBucketsInDirectory(t *testing.T) {
	// After a doubling, unsplit buckets are addressed by multiple
	// directory entries (the paper's L1 example).
	db := mustOpen(t, "", &Options{PageSize: 128})
	defer db.Close()
	for i := 0; i < 300; i++ {
		db.Store([]byte(fmt.Sprintf("key-%d", i)), []byte("v"), true)
	}
	counts := map[uint32]int{}
	for _, pg := range db.dir {
		counts[pg]++
	}
	shared := false
	for _, c := range counts {
		if c > 1 {
			shared = true
		}
	}
	if !shared && db.Depth() > 0 {
		// With a skewed enough trie some bucket is always shared; if all
		// buckets are at full depth the test is inconclusive but the
		// invariant below still must hold.
		t.Log("no shared buckets at this size (all buckets at full depth)")
	}
	// Directory-count invariant: a bucket of depth nb appears exactly
	// 2^(depth-nb) times.
	for pg, c := range counts {
		b, err := db.readBucket(pg)
		if err != nil {
			t.Fatal(err)
		}
		want := 1 << uint(db.Depth()-b.depth())
		if c != want {
			t.Fatalf("bucket at page %d (depth %d) appears %d times, want %d", pg, b.depth(), c, want)
		}
	}
}

func TestInsertVsReplace(t *testing.T) {
	db := mustOpen(t, "", nil)
	defer db.Close()
	db.Store([]byte("k"), []byte("v1"), false)
	if err := db.Store([]byte("k"), []byte("v2"), false); !errors.Is(err, ErrKeyExists) {
		t.Fatalf("insert over existing = %v", err)
	}
	db.Store([]byte("k"), []byte("v3"), true)
	got, _ := db.Fetch([]byte("k"))
	if string(got) != "v3" {
		t.Fatalf("Fetch = %q", got)
	}
	if db.Len() != 1 {
		t.Fatalf("Len = %d", db.Len())
	}
}

func TestTooBig(t *testing.T) {
	db := mustOpen(t, "", &Options{PageSize: 128})
	defer db.Close()
	if err := db.Store([]byte("k"), bytes.Repeat([]byte("x"), 130), true); !errors.Is(err, ErrTooBig) {
		t.Fatalf("oversized = %v", err)
	}
}

func TestPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.db")
	db := mustOpen(t, path, &Options{PageSize: 256})
	const n = 1500
	for i := 0; i < n; i++ {
		if err := db.Store([]byte(fmt.Sprintf("key%d", i)), []byte(fmt.Sprintf("val%d", i)), true); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db = mustOpen(t, path, &Options{PageSize: 256})
	defer db.Close()
	if db.Len() != n {
		t.Fatalf("Len after reopen = %d", db.Len())
	}
	for i := 0; i < n; i++ {
		got, err := db.Fetch([]byte(fmt.Sprintf("key%d", i)))
		if err != nil || string(got) != fmt.Sprintf("val%d", i) {
			t.Fatalf("Fetch %d = %q, %v", i, got, err)
		}
	}
}

func TestForEach(t *testing.T) {
	db := mustOpen(t, "", &Options{PageSize: 256})
	defer db.Close()
	want := map[string]string{}
	for i := 0; i < 700; i++ {
		k, v := fmt.Sprintf("key%d", i), fmt.Sprintf("val%d", i)
		db.Store([]byte(k), []byte(v), true)
		want[k] = v
	}
	got := map[string]string{}
	err := db.ForEach(func(k, v []byte) bool {
		if _, dup := got[string(k)]; dup {
			t.Fatalf("ForEach repeated %q", k)
		}
		got[string(k)] = string(v)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("ForEach saw %d, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("got[%q] = %q, want %q", k, got[k], v)
		}
	}
}

func TestModelEquivalence(t *testing.T) {
	db := mustOpen(t, "", &Options{PageSize: 512})
	defer db.Close()
	rng := rand.New(rand.NewSource(23))
	model := map[string]string{}
	for op := 0; op < 4000; op++ {
		k := fmt.Sprintf("k%03d", rng.Intn(300))
		if rng.Intn(3) != 2 {
			v := fmt.Sprintf("v%d", op)
			if err := db.Store([]byte(k), []byte(v), true); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
			model[k] = v
		} else {
			err := db.Delete([]byte(k))
			if _, ok := model[k]; ok && err != nil {
				t.Fatalf("op %d: Delete: %v", op, err)
			}
			delete(model, k)
		}
		if db.Len() != len(model) {
			t.Fatalf("op %d: Len = %d, model %d", op, db.Len(), len(model))
		}
	}
	for k, v := range model {
		got, err := db.Fetch([]byte(k))
		if err != nil || string(got) != v {
			t.Fatalf("Fetch(%q) = %q, %v; want %q", k, got, err, v)
		}
	}
}

func TestOpenGarbage(t *testing.T) {
	store := mustOpen(t, "", nil) // make a valid db, then corrupt magic
	store.Store([]byte("k"), []byte("v"), true)
	s := store.PageStore()
	store.Close()
	buf := make([]byte, s.PageSize())
	if err := s.ReadPage(0, buf); err != nil {
		t.Fatal(err)
	}
	buf[0] ^= 0xFF
	if err := s.WritePage(0, buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Open("", &Options{Store: s, PageSize: s.PageSize()}); err == nil {
		t.Fatal("opened corrupt database")
	}
}

package recno

import (
	"errors"
	"testing"
)

func TestOperationsOnClosedFile(t *testing.T) {
	f := mustOpen(t, "", nil)
	f.Append([]byte("r"))
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("double Close = %v", err)
	}
	if _, err := f.Get(0); !errors.Is(err, ErrClosed) {
		t.Fatalf("Get = %v", err)
	}
	if err := f.Put(0, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Put = %v", err)
	}
	if _, err := f.Append(nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append = %v", err)
	}
	if err := f.Delete(0); !errors.Is(err, ErrClosed) {
		t.Fatalf("Delete = %v", err)
	}
	if err := f.Insert(0, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Insert = %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Sync = %v", err)
	}
}

func TestBadOptions(t *testing.T) {
	if _, err := Open("", &Options{Reclen: -1}); err == nil {
		t.Fatal("negative reclen accepted")
	}
	if _, err := Open("", &Options{ReadOnly: true}); err == nil {
		t.Fatal("read-only memory file accepted")
	}
}

package recno

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func mustOpen(t *testing.T, path string, opts *Options) *File {
	t.Helper()
	f, err := Open(path, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return f
}

func TestVariableBasics(t *testing.T) {
	f := mustOpen(t, "", nil)
	defer f.Close()
	for i := 0; i < 10; i++ {
		n, err := f.Append([]byte(fmt.Sprintf("record %d", i)))
		if err != nil || n != i {
			t.Fatalf("Append %d = %d, %v", i, n, err)
		}
	}
	if f.Len() != 10 {
		t.Fatalf("Len = %d", f.Len())
	}
	for i := 0; i < 10; i++ {
		got, err := f.Get(i)
		if err != nil || string(got) != fmt.Sprintf("record %d", i) {
			t.Fatalf("Get %d = %q, %v", i, got, err)
		}
	}
	if _, err := f.Get(10); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get out of range = %v", err)
	}
	if _, err := f.Get(-1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(-1) = %v", err)
	}
}

func TestPutReplaceAndExtend(t *testing.T) {
	f := mustOpen(t, "", nil)
	defer f.Close()
	if err := f.Put(0, []byte("first")); err != nil { // append via Put at Len
		t.Fatal(err)
	}
	if err := f.Put(0, []byte("replaced")); err != nil {
		t.Fatal(err)
	}
	got, _ := f.Get(0)
	if string(got) != "replaced" {
		t.Fatalf("Get = %q", got)
	}
	if err := f.Put(5, []byte("gap")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Put past end = %v", err)
	}
}

func TestDeleteRenumbers(t *testing.T) {
	f := mustOpen(t, "", nil)
	defer f.Close()
	for i := 0; i < 5; i++ {
		f.Append([]byte(fmt.Sprintf("r%d", i)))
	}
	if err := f.Delete(1); err != nil {
		t.Fatal(err)
	}
	want := []string{"r0", "r2", "r3", "r4"}
	for i, w := range want {
		got, err := f.Get(i)
		if err != nil || string(got) != w {
			t.Fatalf("after delete, Get(%d) = %q, %v; want %q", i, got, err, w)
		}
	}
	if f.Len() != 4 {
		t.Fatalf("Len = %d", f.Len())
	}
}

func TestInsertRenumbers(t *testing.T) {
	f := mustOpen(t, "", nil)
	defer f.Close()
	f.Append([]byte("a"))
	f.Append([]byte("c"))
	if err := f.Insert(1, []byte("b")); err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b", "c"}
	for i, w := range want {
		got, _ := f.Get(i)
		if string(got) != w {
			t.Fatalf("Get(%d) = %q", i, got)
		}
	}
	// Insert at both ends.
	if err := f.Insert(0, []byte("head")); err != nil {
		t.Fatal(err)
	}
	if err := f.Insert(f.Len(), []byte("tail")); err != nil {
		t.Fatal(err)
	}
	got, _ := f.Get(0)
	if string(got) != "head" {
		t.Fatalf("head = %q", got)
	}
	got, _ = f.Get(f.Len() - 1)
	if string(got) != "tail" {
		t.Fatalf("tail = %q", got)
	}
}

func TestVariableRejectsDelimiter(t *testing.T) {
	f := mustOpen(t, "", nil)
	defer f.Close()
	if _, err := f.Append([]byte("line\nwith newline")); !errors.Is(err, ErrHasBval) {
		t.Fatalf("record with bval = %v", err)
	}
}

func TestVariablePersistenceIsAFlatTextFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "lines.txt")
	f := mustOpen(t, path, nil)
	f.Append([]byte("alpha"))
	f.Append([]byte("beta"))
	f.Append([]byte("")) // empty records are legal
	f.Append([]byte("delta"))
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != "alpha\nbeta\n\ndelta\n" {
		t.Fatalf("flat file = %q", raw)
	}

	f = mustOpen(t, path, nil)
	defer f.Close()
	if f.Len() != 4 {
		t.Fatalf("Len after reopen = %d", f.Len())
	}
	got, _ := f.Get(3)
	if string(got) != "delta" {
		t.Fatalf("Get(3) = %q", got)
	}
	got, _ = f.Get(2)
	if len(got) != 0 {
		t.Fatalf("empty record = %q", got)
	}
}

func TestPlainTextFileIsARecnoDatabase(t *testing.T) {
	// The 4.4BSD property: any text file is a recno database of lines.
	path := filepath.Join(t.TempDir(), "plain.txt")
	if err := os.WriteFile(path, []byte("one\ntwo\nthree"), 0o644); err != nil {
		t.Fatal(err)
	}
	f := mustOpen(t, path, &Options{ReadOnly: true})
	defer f.Close()
	if f.Len() != 3 {
		t.Fatalf("Len = %d", f.Len())
	}
	got, _ := f.Get(2) // no trailing newline: last record still counts
	if string(got) != "three" {
		t.Fatalf("Get(2) = %q", got)
	}
	if err := f.Put(0, []byte("x")); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Put on read-only = %v", err)
	}
}

func TestFixedLength(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fixed.db")
	f := mustOpen(t, path, &Options{Reclen: 8, Bval: ' '})
	if _, err := f.Append([]byte("12345678")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Append([]byte("ab")); err != nil { // padded
		t.Fatal(err)
	}
	if _, err := f.Append(bytes.Repeat([]byte("x"), 9)); !errors.Is(err, ErrBadReclen) {
		t.Fatalf("oversized fixed record = %v", err)
	}
	got, _ := f.Get(1)
	if string(got) != "ab      " {
		t.Fatalf("padded record = %q", got)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	// The file is exactly 2 records of 8 bytes.
	raw, _ := os.ReadFile(path)
	if string(raw) != "12345678ab      " {
		t.Fatalf("fixed flat file = %q", raw)
	}

	f = mustOpen(t, path, &Options{Reclen: 8, Bval: ' '})
	defer f.Close()
	if f.Len() != 2 {
		t.Fatalf("Len after reopen = %d", f.Len())
	}
}

func TestFixedRejectsMisalignedFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.db")
	os.WriteFile(path, []byte("12345"), 0o644)
	if _, err := Open(path, &Options{Reclen: 4}); err == nil {
		t.Fatal("opened misaligned fixed-length file")
	}
}

func TestModelEquivalence(t *testing.T) {
	f := mustOpen(t, "", nil)
	defer f.Close()
	rng := rand.New(rand.NewSource(31))
	var model [][]byte
	for op := 0; op < 5000; op++ {
		switch r := rng.Intn(10); {
		case r < 4: // append
			rec := []byte(fmt.Sprintf("rec-%d", op))
			f.Append(rec)
			model = append(model, rec)
		case r < 6 && len(model) > 0: // replace
			i := rng.Intn(len(model))
			rec := []byte(fmt.Sprintf("rep-%d", op))
			if err := f.Put(i, rec); err != nil {
				t.Fatal(err)
			}
			model[i] = rec
		case r < 8 && len(model) > 0: // delete
			i := rng.Intn(len(model))
			if err := f.Delete(i); err != nil {
				t.Fatal(err)
			}
			model = append(model[:i], model[i+1:]...)
		default: // insert
			i := rng.Intn(len(model) + 1)
			rec := []byte(fmt.Sprintf("ins-%d", op))
			if err := f.Insert(i, rec); err != nil {
				t.Fatal(err)
			}
			model = append(model, nil)
			copy(model[i+1:], model[i:])
			model[i] = rec
		}
		if f.Len() != len(model) {
			t.Fatalf("op %d: Len = %d, model %d", op, f.Len(), len(model))
		}
	}
	for i, want := range model {
		got, err := f.Get(i)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("Get(%d) = %q, %v; want %q", i, got, err, want)
		}
	}
	seen := 0
	f.ForEach(func(i int, rec []byte) bool {
		if !bytes.Equal(rec, model[i]) {
			t.Fatalf("ForEach(%d) mismatch", i)
		}
		seen++
		return true
	})
	if seen != len(model) {
		t.Fatalf("ForEach visited %d of %d", seen, len(model))
	}
}

func TestSyncDurability(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sync.db")
	f := mustOpen(t, path, nil)
	defer f.Close()
	f.Append([]byte("persisted"))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	// A second handle sees the synced state.
	g := mustOpen(t, path, &Options{ReadOnly: true})
	defer g.Close()
	if g.Len() != 1 {
		t.Fatalf("reader Len = %d", g.Len())
	}
}

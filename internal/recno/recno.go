// Package recno implements the record-number access methods the paper's
// conclusion announces alongside hash and btree: fixed and variable
// length records addressed by record number.
//
// As in the 4.4BSD implementation, a recno file is a flat file: variable
// length records are delimited by a byte value (bval, default '\n', so a
// plain text file is a recno database of its lines), fixed length
// records are stored back to back, padded with bval. Records are read
// into memory at open and written back on sync — recno is the in-memory
// access method of the family, with the flat file as its durable form.
// Record numbers are zero-based here (the C library was one-based) and
// deleting a record renumbers those after it.
package recno

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"sync"
)

// Errors returned by File operations.
var (
	ErrNotFound  = errors.New("recno: record number out of range")
	ErrReadOnly  = errors.New("recno: file is read-only")
	ErrClosed    = errors.New("recno: file is closed")
	ErrBadReclen = errors.New("recno: record does not match the fixed record length")
	ErrHasBval   = errors.New("recno: variable-length record contains the delimiter byte")
)

// Options parameterizes Open.
type Options struct {
	// Reclen, when nonzero, selects fixed-length records of that size;
	// shorter records are padded with Bval on storage. Zero selects
	// variable-length (delimited) records.
	Reclen int
	// Bval is the delimiter (variable) or pad (fixed) byte. Default '\n'.
	Bval byte
	// ReadOnly opens for reading only.
	ReadOnly bool
}

// Validate checks the option fields without applying defaults: a zero
// value means "use the default" and always passes. It reports the first
// offending field by name (see db.ErrBadOptions).
func (o *Options) Validate() error {
	if o == nil {
		return nil
	}
	if o.Reclen < 0 {
		return fmt.Errorf("Reclen: %d must not be negative", o.Reclen)
	}
	return nil
}

// File is an open recno database.
type File struct {
	mu sync.Mutex

	path     string
	reclen   int
	bval     byte
	readonly bool
	closed   bool
	dirty    bool

	recs [][]byte

	// Operation counters for FileStats. Every operation holds mu, so
	// plain fields suffice.
	nGets, nGetMisses, nPuts, nDels, nSyncs int64
}

// Open opens or creates the recno file at path. An empty path keeps the
// records purely in memory (Sync is then a no-op).
func Open(path string, o *Options) (*File, error) {
	var opts Options
	if o != nil {
		opts = *o
	}
	if err := o.Validate(); err != nil {
		return nil, fmt.Errorf("recno: invalid option %w", err)
	}
	if opts.Bval == 0 {
		opts.Bval = '\n'
	}
	f := &File{path: path, reclen: opts.Reclen, bval: opts.Bval, readonly: opts.ReadOnly}
	if path == "" {
		if opts.ReadOnly {
			return nil, errors.New("recno: read-only memory file would always be empty")
		}
		return f, nil
	}
	raw, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		if opts.ReadOnly {
			return nil, err
		}
		return f, nil
	}
	if err != nil {
		return nil, err
	}
	if err := f.parse(raw); err != nil {
		return nil, err
	}
	return f, nil
}

// parse splits the flat file into records.
func (f *File) parse(raw []byte) error {
	if f.reclen > 0 {
		if len(raw)%f.reclen != 0 {
			return fmt.Errorf("recno: %s: %d bytes is not a multiple of the record length %d",
				f.path, len(raw), f.reclen)
		}
		for off := 0; off < len(raw); off += f.reclen {
			rec := make([]byte, f.reclen)
			copy(rec, raw[off:off+f.reclen])
			f.recs = append(f.recs, rec)
		}
		return nil
	}
	if len(raw) == 0 {
		return nil
	}
	// Variable: split on bval; a trailing delimiter ends the last
	// record (a file without one still yields its final record, as the
	// C library behaved).
	for len(raw) > 0 {
		i := bytes.IndexByte(raw, f.bval)
		if i < 0 {
			f.recs = append(f.recs, append([]byte(nil), raw...))
			break
		}
		f.recs = append(f.recs, append([]byte(nil), raw[:i]...))
		raw = raw[i+1:]
	}
	return nil
}

func (f *File) checkWritable() error {
	if f.closed {
		return ErrClosed
	}
	if f.readonly {
		return ErrReadOnly
	}
	return nil
}

// normalize validates and (for fixed mode) pads a record.
func (f *File) normalize(rec []byte) ([]byte, error) {
	if f.reclen > 0 {
		if len(rec) > f.reclen {
			return nil, fmt.Errorf("%w: %d > %d", ErrBadReclen, len(rec), f.reclen)
		}
		out := make([]byte, f.reclen)
		n := copy(out, rec)
		for i := n; i < f.reclen; i++ {
			out[i] = f.bval
		}
		return out, nil
	}
	if bytes.IndexByte(rec, f.bval) >= 0 {
		return nil, ErrHasBval
	}
	return append([]byte(nil), rec...), nil
}

// Len returns the number of records.
func (f *File) Len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.recs)
}

// Get returns a copy of record i.
func (f *File) Get(i int) ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil, ErrClosed
	}
	f.nGets++
	if i < 0 || i >= len(f.recs) {
		f.nGetMisses++
		return nil, fmt.Errorf("%w: %d of %d", ErrNotFound, i, len(f.recs))
	}
	return append([]byte(nil), f.recs[i]...), nil
}

// Put replaces record i, or appends when i equals the record count.
func (f *File) Put(i int, rec []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.checkWritable(); err != nil {
		return err
	}
	if i < 0 || i > len(f.recs) {
		return fmt.Errorf("%w: %d of %d", ErrNotFound, i, len(f.recs))
	}
	norm, err := f.normalize(rec)
	if err != nil {
		return err
	}
	f.nPuts++
	if i == len(f.recs) {
		f.recs = append(f.recs, norm)
	} else {
		f.recs[i] = norm
	}
	f.dirty = true
	return nil
}

// Append adds a record at the end and returns its number.
func (f *File) Append(rec []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.checkWritable(); err != nil {
		return 0, err
	}
	norm, err := f.normalize(rec)
	if err != nil {
		return 0, err
	}
	f.nPuts++
	f.recs = append(f.recs, norm)
	f.dirty = true
	return len(f.recs) - 1, nil
}

// Insert places a record at position i, shifting later records up (they
// are renumbered).
func (f *File) Insert(i int, rec []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.checkWritable(); err != nil {
		return err
	}
	if i < 0 || i > len(f.recs) {
		return fmt.Errorf("%w: %d of %d", ErrNotFound, i, len(f.recs))
	}
	norm, err := f.normalize(rec)
	if err != nil {
		return err
	}
	f.recs = append(f.recs, nil)
	copy(f.recs[i+1:], f.recs[i:])
	f.recs[i] = norm
	f.dirty = true
	return nil
}

// Delete removes record i; later records are renumbered.
func (f *File) Delete(i int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.checkWritable(); err != nil {
		return err
	}
	if i < 0 || i >= len(f.recs) {
		return fmt.Errorf("%w: %d of %d", ErrNotFound, i, len(f.recs))
	}
	f.nDels++
	f.recs = append(f.recs[:i], f.recs[i+1:]...)
	f.dirty = true
	return nil
}

// ForEach visits records in order.
func (f *File) ForEach(fn func(i int, rec []byte) bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for i, r := range f.recs {
		if !fn(i, r) {
			return
		}
	}
}

// Sync writes the flat file back to disk.
func (f *File) Sync() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return ErrClosed
	}
	if f.readonly || f.path == "" || !f.dirty {
		return nil
	}
	return f.syncLocked()
}

func (f *File) syncLocked() error {
	var buf bytes.Buffer
	for _, r := range f.recs {
		buf.Write(r)
		if f.reclen == 0 {
			buf.WriteByte(f.bval)
		}
	}
	tmp := f.path + ".tmp"
	if err := os.WriteFile(tmp, buf.Bytes(), 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, f.path); err != nil {
		os.Remove(tmp)
		return err
	}
	f.dirty = false
	f.nSyncs++
	return nil
}

// FileStats reports the file's shape and operation counts for the
// uniform db.Stats view.
type FileStats struct {
	Records   int64
	Bytes     int64 // total record payload bytes held in memory
	Reclen    int   // 0 = variable-length records
	Bval      byte
	Gets      int64
	GetMisses int64
	Puts      int64
	Deletes   int64
	Syncs     int64
}

// Stats reports the file's statistics; a closed file returns ErrClosed.
func (f *File) Stats() (FileStats, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return FileStats{}, ErrClosed
	}
	s := FileStats{
		Records: int64(len(f.recs)), Reclen: f.reclen, Bval: f.bval,
		Gets: f.nGets, GetMisses: f.nGetMisses, Puts: f.nPuts,
		Deletes: f.nDels, Syncs: f.nSyncs,
	}
	for _, r := range f.recs {
		s.Bytes += int64(len(r))
	}
	return s, nil
}

// Close syncs (when writable and file-backed) and closes.
func (f *File) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil
	}
	var err error
	if !f.readonly && f.path != "" && f.dirty {
		err = f.syncLocked()
	}
	f.closed = true
	return err
}

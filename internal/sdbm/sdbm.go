// Package sdbm is a clean-room Go port of Ozan Yigit's sdbm library as
// the paper describes it: a simplified implementation of Larson's 1978
// dynamic hashing [LAR78], using a single linearized radix trie, a
// bit-randomizing hash function in place of the boolean pseudo-random
// generator, and the hash bits exposed during trie traversal as the
// bucket address:
//
//	tbit = 0; hbit = 0; mask = 0;
//	for (mask = 0; isbitset(tbit); mask = (mask << 1) + 1)
//		if (hash & (1 << hbit++))
//			tbit = 2 * tbit + 2;   /* right son */
//		else
//			tbit = 2 * tbit + 1;   /* left son */
//	bucket = hash & mask;
//
// The interface and the externally visible shortcomings match ndbm's (one
// page per bucket, no overflow pages, single-page cache), but the two are
// incompatible at the database level: different access function, bucket
// address calculation, and hash function.
package sdbm

import (
	"errors"
	"fmt"
	"os"

	"unixhash/internal/dpage"
	"unixhash/internal/hashfunc"
	"unixhash/internal/pagefile"
)

// Errors returned by DB operations.
var (
	ErrNotFound  = errors.New("sdbm: key not found")
	ErrKeyExists = errors.New("sdbm: key already exists")
	ErrTooBig    = errors.New("sdbm: key/data pair exceeds the page size")
	ErrSplit     = errors.New("sdbm: cannot split bucket (too many colliding keys)")
	ErrClosed    = errors.New("sdbm: database is closed")
)

// DefaultPageSize matches sdbm's PBLKSIZ.
const DefaultPageSize = 1024

const maxDepth = 28 // trie depth bound; the split loop gives up past it

// Options parameterizes Open.
type Options struct {
	PageSize int
	Store    pagefile.Store
	Cost     pagefile.CostModel
}

// DB is an sdbm database: bucket pages plus the linearized radix trie
// (persisted in a .dir file when file-backed).
type DB struct {
	store    pagefile.Store
	ownStore bool
	dirPath  string
	pagesize int

	trie []byte // linearized radix trie bits

	cacheNo dpage.Page
	cacheBn uint32
	cached  bool
	dirty   bool

	closed bool
}

// Open opens or creates the database stored in path+".pag" and
// path+".dir". An empty path with opts.Store unset is memory-backed.
func Open(path string, opts *Options) (*DB, error) {
	var o Options
	if opts != nil {
		o = *opts
	}
	if o.PageSize == 0 {
		o.PageSize = DefaultPageSize
	}
	db := &DB{pagesize: o.PageSize}
	switch {
	case o.Store != nil:
		db.store = o.Store
	case path == "":
		db.store = pagefile.NewMem(o.PageSize, o.Cost)
		db.ownStore = true
	default:
		fs, err := pagefile.OpenFile(path+".pag", o.PageSize, o.Cost)
		if err != nil {
			return nil, err
		}
		db.store = fs
		db.ownStore = true
		db.dirPath = path + ".dir"
		bm, err := os.ReadFile(db.dirPath)
		if err != nil && !errors.Is(err, os.ErrNotExist) {
			fs.Close()
			return nil, err
		}
		db.trie = bm
	}
	if db.store.PageSize() != o.PageSize {
		return nil, fmt.Errorf("sdbm: store page size %d != requested %d", db.store.PageSize(), o.PageSize)
	}
	return db, nil
}

func (db *DB) isbitset(bit uint64) bool {
	i := bit / 8
	if i >= uint64(len(db.trie)) {
		return false
	}
	return db.trie[i]&(1<<(bit%8)) != 0
}

func (db *DB) setbit(bit uint64) {
	i := bit / 8
	for uint64(len(db.trie)) <= i {
		db.trie = append(db.trie, 0)
	}
	db.trie[i] |= 1 << (bit % 8)
}

// calc walks the linearized radix trie with the hash bits, returning the
// bucket, the external node's trie index, and the number of bits used.
func (db *DB) calc(hash uint32) (bucket uint32, tbit uint64, hbit int) {
	var mask uint32
	for db.isbitset(tbit) {
		if hash&(1<<uint(hbit)) != 0 {
			tbit = 2*tbit + 2 // right son
		} else {
			tbit = 2*tbit + 1 // left son
		}
		hbit++
		mask = mask<<1 | 1
	}
	return hash & mask, tbit, hbit
}

func (db *DB) fetchPage(bn uint32) (dpage.Page, error) {
	if db.cached && db.cacheBn == bn {
		return db.cacheNo, nil
	}
	if err := db.flushCache(); err != nil {
		return nil, err
	}
	buf := make([]byte, db.pagesize)
	err := db.store.ReadPage(bn, buf)
	if err != nil && !errors.Is(err, pagefile.ErrNotAllocated) {
		return nil, err
	}
	p := dpage.Page(buf)
	p.InitIfNew()
	db.cacheNo, db.cacheBn, db.cached, db.dirty = p, bn, true, false
	return p, nil
}

func (db *DB) flushCache() error {
	if !db.cached || !db.dirty {
		return nil
	}
	if err := db.store.WritePage(db.cacheBn, db.cacheNo); err != nil {
		return err
	}
	db.dirty = false
	return nil
}

func (db *DB) writePage(bn uint32, p dpage.Page) error {
	if err := db.store.WritePage(bn, p); err != nil {
		return err
	}
	if db.cached && db.cacheBn == bn {
		db.dirty = false
	}
	return nil
}

// Fetch returns a copy of the data stored under key.
func (db *DB) Fetch(key []byte) ([]byte, error) {
	if db.closed {
		return nil, ErrClosed
	}
	bucket, _, _ := db.calc(hashfunc.SDBM(key))
	p, err := db.fetchPage(bucket)
	if err != nil {
		return nil, err
	}
	i := p.Find(key)
	if i < 0 {
		return nil, ErrNotFound
	}
	_, data := p.Pair(i)
	return append([]byte(nil), data...), nil
}

// Store inserts key/data, splitting buckets through the trie until the
// pair fits. It reproduces the dbm-family failure modes (ErrTooBig,
// ErrSplit).
func (db *DB) Store(key, data []byte, replace bool) error {
	if db.closed {
		return ErrClosed
	}
	if len(key)+len(data) > dpage.MaxPair(db.pagesize) {
		return ErrTooBig
	}
	hash := hashfunc.SDBM(key)
	for {
		bucket, tbit, hbit := db.calc(hash)
		p, err := db.fetchPage(bucket)
		if err != nil {
			return err
		}
		if i := p.Find(key); i >= 0 {
			if !replace {
				return ErrKeyExists
			}
			if err := p.Remove(i); err != nil {
				return err
			}
			db.dirty = true
		}
		if p.Fits(len(key), len(data)) {
			p.Insert(key, data)
			db.dirty = true
			return db.flushCache()
		}
		if hbit >= maxDepth {
			return ErrSplit
		}
		if err := db.split(bucket, tbit, hbit); err != nil {
			return err
		}
	}
}

// split turns the external node at tbit into an internal node, dividing
// the bucket's contents by hash bit hbit.
func (db *DB) split(bucket uint32, tbit uint64, hbit int) error {
	p, err := db.fetchPage(bucket)
	if err != nil {
		return err
	}
	newBit := uint32(1) << uint(hbit)
	oldPage := dpage.Page(make([]byte, db.pagesize))
	newPage := dpage.Page(make([]byte, db.pagesize))
	oldPage.Init()
	newPage.Init()
	p.ForEach(func(i int, k, v []byte) bool {
		if hashfunc.SDBM(k)&newBit != 0 {
			newPage.Insert(k, v)
		} else {
			oldPage.Insert(k, v)
		}
		return true
	})
	db.setbit(tbit)
	if err := db.writePage(bucket|newBit, newPage); err != nil {
		return err
	}
	if err := db.writePage(bucket, oldPage); err != nil {
		return err
	}
	copy(db.cacheNo, oldPage)
	db.dirty = false
	return nil
}

// Delete removes key.
func (db *DB) Delete(key []byte) error {
	if db.closed {
		return ErrClosed
	}
	bucket, _, _ := db.calc(hashfunc.SDBM(key))
	p, err := db.fetchPage(bucket)
	if err != nil {
		return err
	}
	i := p.Find(key)
	if i < 0 {
		return ErrNotFound
	}
	if err := p.Remove(i); err != nil {
		return err
	}
	db.dirty = true
	return db.flushCache()
}

// Cursor iterates keys in storage order.
type Cursor struct {
	db *DB
	bn uint32
	i  int
}

// First returns a cursor positioned at the first key.
func (db *DB) First() *Cursor { return &Cursor{db: db} }

// Next returns the next key, or nil at the end.
func (c *Cursor) Next() ([]byte, error) {
	if c.db.closed {
		return nil, ErrClosed
	}
	for {
		if c.bn >= c.db.npages() {
			return nil, nil
		}
		p, err := c.db.fetchPage(c.bn)
		if err != nil {
			return nil, err
		}
		if c.i < p.N() {
			k, _ := p.Pair(c.i)
			c.i++
			return append([]byte(nil), k...), nil
		}
		c.bn++
		c.i = 0
	}
}

func (db *DB) npages() uint32 {
	n := db.store.NPages()
	if n == 0 {
		return 1
	}
	return n
}

// Len counts the pairs by scanning.
func (db *DB) Len() (int, error) {
	n := 0
	c := db.First()
	for {
		k, err := c.Next()
		if err != nil {
			return 0, err
		}
		if k == nil {
			return n, nil
		}
		n++
	}
}

// Sync flushes the page cache and persists the trie.
func (db *DB) Sync() error {
	if db.closed {
		return ErrClosed
	}
	if err := db.flushCache(); err != nil {
		return err
	}
	if db.dirPath != "" {
		if err := os.WriteFile(db.dirPath, db.trie, 0o644); err != nil {
			return err
		}
	}
	return db.store.Sync()
}

// Close flushes and closes the database.
func (db *DB) Close() error {
	if db.closed {
		return nil
	}
	err := db.Sync()
	db.closed = true
	if db.ownStore {
		if e := db.store.Close(); err == nil {
			err = e
		}
	}
	return err
}

// PageStore returns the backing page store (for benchmark accounting).
func (db *DB) PageStore() pagefile.Store { return db.store }

package sdbm

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"
)

func mustOpen(t *testing.T, path string, opts *Options) *DB {
	t.Helper()
	db, err := Open(path, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return db
}

func TestStoreFetchDelete(t *testing.T) {
	db := mustOpen(t, "", nil)
	defer db.Close()
	if err := db.Store([]byte("key"), []byte("value"), true); err != nil {
		t.Fatal(err)
	}
	got, err := db.Fetch([]byte("key"))
	if err != nil || string(got) != "value" {
		t.Fatalf("Fetch = %q, %v", got, err)
	}
	if err := db.Delete([]byte("key")); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Fetch([]byte("key")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Fetch after delete = %v", err)
	}
	if err := db.Delete([]byte("key")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete = %v", err)
	}
}

func TestInsertVsReplace(t *testing.T) {
	db := mustOpen(t, "", nil)
	defer db.Close()
	db.Store([]byte("k"), []byte("v1"), false)
	if err := db.Store([]byte("k"), []byte("v2"), false); !errors.Is(err, ErrKeyExists) {
		t.Fatalf("insert over existing = %v", err)
	}
	if err := db.Store([]byte("k"), []byte("v2"), true); err != nil {
		t.Fatal(err)
	}
	got, _ := db.Fetch([]byte("k"))
	if string(got) != "v2" {
		t.Fatalf("Fetch = %q", got)
	}
}

func TestTrieSplitting(t *testing.T) {
	db := mustOpen(t, "", &Options{PageSize: 128})
	defer db.Close()
	const n = 2000
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key-%05d", i))
		if err := db.Store(k, []byte(fmt.Sprintf("v%d", i)), true); err != nil {
			t.Fatalf("Store %d: %v", i, err)
		}
	}
	if len(db.trie) == 0 {
		t.Fatal("trie never grew")
	}
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key-%05d", i))
		got, err := db.Fetch(k)
		if err != nil || string(got) != fmt.Sprintf("v%d", i) {
			t.Fatalf("Fetch %d = %q, %v", i, got, err)
		}
	}
	cnt, err := db.Len()
	if err != nil || cnt != n {
		t.Fatalf("Len = %d, %v", cnt, err)
	}
}

func TestTooBig(t *testing.T) {
	db := mustOpen(t, "", &Options{PageSize: 128})
	defer db.Close()
	if err := db.Store([]byte("k"), bytes.Repeat([]byte("x"), 200), true); !errors.Is(err, ErrTooBig) {
		t.Fatalf("oversized = %v", err)
	}
}

func TestPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db")
	db := mustOpen(t, path, &Options{PageSize: 256})
	const n = 800
	for i := 0; i < n; i++ {
		if err := db.Store([]byte(fmt.Sprintf("key%d", i)), []byte(fmt.Sprintf("val%d", i)), true); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db = mustOpen(t, path, &Options{PageSize: 256})
	defer db.Close()
	for i := 0; i < n; i++ {
		got, err := db.Fetch([]byte(fmt.Sprintf("key%d", i)))
		if err != nil || string(got) != fmt.Sprintf("val%d", i) {
			t.Fatalf("Fetch %d after reopen = %q, %v", i, got, err)
		}
	}
}

func TestCursorSeesEverything(t *testing.T) {
	db := mustOpen(t, "", &Options{PageSize: 256})
	defer db.Close()
	want := map[string]bool{}
	for i := 0; i < 500; i++ {
		k := fmt.Sprintf("key%d", i)
		db.Store([]byte(k), []byte("v"), true)
		want[k] = true
	}
	got := map[string]bool{}
	c := db.First()
	for {
		k, err := c.Next()
		if err != nil {
			t.Fatal(err)
		}
		if k == nil {
			break
		}
		got[string(k)] = true
	}
	if len(got) != len(want) {
		t.Fatalf("cursor saw %d, want %d", len(got), len(want))
	}
}

func TestModelEquivalence(t *testing.T) {
	db := mustOpen(t, "", &Options{PageSize: 512})
	defer db.Close()
	rng := rand.New(rand.NewSource(13))
	model := map[string]string{}
	for op := 0; op < 4000; op++ {
		k := fmt.Sprintf("k%03d", rng.Intn(300))
		if rng.Intn(3) != 2 {
			v := fmt.Sprintf("v%d", op)
			if err := db.Store([]byte(k), []byte(v), true); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
			model[k] = v
		} else {
			err := db.Delete([]byte(k))
			if _, ok := model[k]; ok && err != nil {
				t.Fatalf("op %d: Delete: %v", op, err)
			}
			delete(model, k)
		}
	}
	for k, v := range model {
		got, err := db.Fetch([]byte(k))
		if err != nil || string(got) != v {
			t.Fatalf("Fetch(%q) = %q, %v; want %q", k, got, err, v)
		}
	}
}

func TestIncompatibleWithNdbmHash(t *testing.T) {
	// The paper: sdbm and ndbm are "incompatible at the database level"
	// because of different hash functions and address calculations. The
	// trie walk must at least be deterministic for a given hash.
	db := mustOpen(t, "", &Options{PageSize: 128})
	defer db.Close()
	for i := 0; i < 100; i++ {
		db.Store([]byte(fmt.Sprintf("key%d", i)), []byte("v"), true)
	}
	b1, t1, h1 := db.calc(0xDEADBEEF)
	b2, t2, h2 := db.calc(0xDEADBEEF)
	if b1 != b2 || t1 != t2 || h1 != h2 {
		t.Fatal("calc is not deterministic")
	}
	// The revealed bits must select the bucket.
	if h1 > 0 && b1 != 0xDEADBEEF&(1<<uint(h1)-1) {
		t.Fatalf("bucket %d disagrees with %d revealed bits", b1, h1)
	}
}

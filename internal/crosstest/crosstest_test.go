// Package crosstest drives every key/data store in the repository — the
// new hashing package, the btree, and all five baselines — through the
// same operation stream and asserts they agree wherever they succeed.
// The paper's systems differ in interface, failure modes and layout, but
// on the operations all of them accept, they are all the same abstract
// map; this test pins that.
package crosstest

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"unixhash/internal/btree"
	"unixhash/internal/core"
	"unixhash/internal/dynahash"
	"unixhash/internal/gdbm"
	"unixhash/internal/hsearch"
	"unixhash/internal/ndbm"
	"unixhash/internal/sdbm"
)

// store is the least common denominator: put-replace, get, delete.
// ok=false from put means the implementation refused the pair (a
// documented shortcoming), not an error.
type store interface {
	name() string
	put(k, v []byte) (ok bool, err error)
	get(k []byte) ([]byte, bool, error)
	del(k []byte) (bool, error)
	close() error
}

type hashStore struct{ t *core.Table }

func (s hashStore) name() string { return "hash" }
func (s hashStore) put(k, v []byte) (bool, error) {
	return true, s.t.Put(k, v)
}
func (s hashStore) get(k []byte) ([]byte, bool, error) {
	v, err := s.t.Get(k)
	if errors.Is(err, core.ErrNotFound) {
		return nil, false, nil
	}
	return v, err == nil, err
}
func (s hashStore) del(k []byte) (bool, error) {
	err := s.t.Delete(k)
	if errors.Is(err, core.ErrNotFound) {
		return false, nil
	}
	return err == nil, err
}
func (s hashStore) close() error { return s.t.Close() }

type btreeStore struct{ t *btree.Tree }

func (s btreeStore) name() string { return "btree" }
func (s btreeStore) put(k, v []byte) (bool, error) {
	err := s.t.Put(k, v)
	if errors.Is(err, btree.ErrKeyTooBig) {
		return false, nil
	}
	return err == nil, err
}
func (s btreeStore) get(k []byte) ([]byte, bool, error) {
	v, err := s.t.Get(k)
	if errors.Is(err, btree.ErrNotFound) {
		return nil, false, nil
	}
	return v, err == nil, err
}
func (s btreeStore) del(k []byte) (bool, error) {
	err := s.t.Delete(k)
	if errors.Is(err, btree.ErrNotFound) {
		return false, nil
	}
	return err == nil, err
}
func (s btreeStore) close() error { return s.t.Close() }

type ndbmStore struct{ db *ndbm.DB }

func (s ndbmStore) name() string { return "ndbm" }
func (s ndbmStore) put(k, v []byte) (bool, error) {
	err := s.db.Store(k, v, true)
	if errors.Is(err, ndbm.ErrTooBig) || errors.Is(err, ndbm.ErrSplit) {
		return false, nil
	}
	return err == nil, err
}
func (s ndbmStore) get(k []byte) ([]byte, bool, error) {
	v, err := s.db.Fetch(k)
	if errors.Is(err, ndbm.ErrNotFound) {
		return nil, false, nil
	}
	return v, err == nil, err
}
func (s ndbmStore) del(k []byte) (bool, error) {
	err := s.db.Delete(k)
	if errors.Is(err, ndbm.ErrNotFound) {
		return false, nil
	}
	return err == nil, err
}
func (s ndbmStore) close() error { return s.db.Close() }

type sdbmStore struct{ db *sdbm.DB }

func (s sdbmStore) name() string { return "sdbm" }
func (s sdbmStore) put(k, v []byte) (bool, error) {
	err := s.db.Store(k, v, true)
	if errors.Is(err, sdbm.ErrTooBig) || errors.Is(err, sdbm.ErrSplit) {
		return false, nil
	}
	return err == nil, err
}
func (s sdbmStore) get(k []byte) ([]byte, bool, error) {
	v, err := s.db.Fetch(k)
	if errors.Is(err, sdbm.ErrNotFound) {
		return nil, false, nil
	}
	return v, err == nil, err
}
func (s sdbmStore) del(k []byte) (bool, error) {
	err := s.db.Delete(k)
	if errors.Is(err, sdbm.ErrNotFound) {
		return false, nil
	}
	return err == nil, err
}
func (s sdbmStore) close() error { return s.db.Close() }

type gdbmStore struct{ db *gdbm.DB }

func (s gdbmStore) name() string { return "gdbm" }
func (s gdbmStore) put(k, v []byte) (bool, error) {
	err := s.db.Store(k, v, true)
	if errors.Is(err, gdbm.ErrTooBig) || errors.Is(err, gdbm.ErrSplit) {
		return false, nil
	}
	return err == nil, err
}
func (s gdbmStore) get(k []byte) ([]byte, bool, error) {
	v, err := s.db.Fetch(k)
	if errors.Is(err, gdbm.ErrNotFound) {
		return nil, false, nil
	}
	return v, err == nil, err
}
func (s gdbmStore) del(k []byte) (bool, error) {
	err := s.db.Delete(k)
	if errors.Is(err, gdbm.ErrNotFound) {
		return false, nil
	}
	return err == nil, err
}
func (s gdbmStore) close() error { return s.db.Close() }

type dynaStore struct{ t *dynahash.Table }

func (s dynaStore) name() string { return "dynahash" }
func (s dynaStore) put(k, v []byte) (bool, error) {
	s.t.Enter(string(k), append([]byte(nil), v...))
	return true, nil
}
func (s dynaStore) get(k []byte) ([]byte, bool, error) {
	v, ok := s.t.Find(string(k))
	return v, ok, nil
}
func (s dynaStore) del(k []byte) (bool, error) { return s.t.Delete(string(k)), nil }
func (s dynaStore) close() error               { return nil }

type hsearchStore struct{ t *hsearch.Table }

func (s hsearchStore) name() string { return "hsearch" }
func (s hsearchStore) put(k, v []byte) (bool, error) {
	err := s.t.Enter(string(k), append([]byte(nil), v...))
	if errors.Is(err, hsearch.ErrTableFull) {
		return false, nil
	}
	return err == nil, err
}
func (s hsearchStore) get(k []byte) ([]byte, bool, error) {
	v, ok := s.t.Find(string(k))
	return v, ok, nil
}
func (s hsearchStore) del(k []byte) (bool, error) {
	err := s.t.Delete(string(k))
	if errors.Is(err, hsearch.ErrNotFound) {
		return false, nil
	}
	return err == nil, err
}
func (s hsearchStore) close() error { return nil }

func openAll(t *testing.T) []store {
	t.Helper()
	ht, err := core.Open("", &core.Options{Bsize: 256, Ffactor: 8})
	if err != nil {
		t.Fatal(err)
	}
	bt, err := btree.Open("", &btree.Options{PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	nd, err := ndbm.Open("", &ndbm.Options{PageSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	sd, err := sdbm.Open("", &sdbm.Options{PageSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	gd, err := gdbm.Open("", &gdbm.Options{PageSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	return []store{
		hashStore{ht}, btreeStore{bt}, ndbmStore{nd}, sdbmStore{sd},
		gdbmStore{gd}, dynaStore{dynahash.New(64, 0)},
		hsearchStore{hsearch.New(4000, nil)},
	}
}

// TestAllStoresAgree runs one operation stream over all seven stores.
// A per-store "present" model tracks which pairs each accepted; wherever
// a store holds a key, its value must match the stream's latest write.
func TestAllStoresAgree(t *testing.T) {
	stores := openAll(t)
	defer func() {
		for _, s := range stores {
			if err := s.close(); err != nil {
				t.Errorf("%s close: %v", s.name(), err)
			}
		}
	}()

	rng := rand.New(rand.NewSource(2026))
	latest := map[string]string{}                   // latest written value per key
	present := make([]map[string]bool, len(stores)) // which keys each store holds
	for i := range present {
		present[i] = map[string]bool{}
	}

	for op := 0; op < 4000; op++ {
		k := fmt.Sprintf("key-%03d", rng.Intn(400))
		switch rng.Intn(4) {
		case 0, 1: // put
			v := fmt.Sprintf("val-%d", op)
			if rng.Intn(30) == 0 {
				v = string(bytes.Repeat([]byte("L"), 600)) // over ndbm/sdbm page budgets at small pages, fine elsewhere
			}
			latest[k] = v
			for i, s := range stores {
				ok, err := s.put([]byte(k), []byte(v))
				if err != nil {
					t.Fatalf("op %d: %s put: %v", op, s.name(), err)
				}
				if ok {
					present[i][k] = true
				} else {
					delete(present[i], k) // refused: store may or may not hold an older value; drop it to be safe
					_, _ = s.del([]byte(k))
				}
			}
		case 2: // delete
			delete(latest, k)
			for i, s := range stores {
				had := present[i][k]
				ok, err := s.del([]byte(k))
				if err != nil {
					t.Fatalf("op %d: %s del: %v", op, s.name(), err)
				}
				if had && !ok {
					t.Fatalf("op %d: %s lost key %q before delete", op, s.name(), k)
				}
				delete(present[i], k)
			}
		case 3: // get
			for i, s := range stores {
				v, ok, err := s.get([]byte(k))
				if err != nil {
					t.Fatalf("op %d: %s get: %v", op, s.name(), err)
				}
				if present[i][k] {
					if !ok {
						t.Fatalf("op %d: %s dropped key %q", op, s.name(), k)
					}
					if string(v) != latest[k] {
						t.Fatalf("op %d: %s[%q] = %q, want %q", op, s.name(), k, v, latest[k])
					}
				}
			}
		}
	}

	// Final sweep: every store agrees with the stream on every key it
	// accepted.
	agree := 0
	for i, s := range stores {
		for k := range present[i] {
			v, ok, err := s.get([]byte(k))
			if err != nil || !ok || string(v) != latest[k] {
				t.Fatalf("final: %s[%q] = %q, %v, %v; want %q", s.name(), k, v, ok, err, latest[k])
			}
			agree++
		}
	}
	if agree == 0 {
		t.Fatal("nothing to compare: the stream never succeeded anywhere")
	}
}

// Package dataset generates the paper's two evaluation workloads
// deterministically, replacing data we cannot ship:
//
//   - The "online dictionary" data set: 24,474 unique words (the paper
//     used /usr/dict/words); the data value for each key is an ASCII
//     string for an integer from 1 to 24,474 inclusive.
//   - The password file: roughly 300 accounts with two records per
//     account — one keyed by login name with the remainder of the entry
//     as data, one keyed by uid with the entire entry as data.
//
// The generators are seeded constants: every run of every benchmark sees
// exactly the same keys, so comparisons between access methods and
// parameter sweeps are apples-to-apples. The words follow an
// English-like length distribution (mean near 7), which is what drives
// page-fill behaviour; the actual spellings are irrelevant to a
// bit-randomizing hash function.
package dataset

import (
	"fmt"
)

// DictionarySize is the paper's dictionary key count.
const DictionarySize = 24474

// PasswdAccounts is the paper's approximate password-file size.
const PasswdAccounts = 300

// Pair is one key/data record.
type Pair struct {
	Key  []byte
	Data []byte
}

// rng is a small deterministic xorshift64* generator, so the package
// needs nothing beyond the standard library and never varies between
// runs or platforms.
type rng uint64

func newRng(seed uint64) *rng {
	r := rng(seed)
	if r == 0 {
		r = 0x9E3779B97F4A7C15
	}
	return &r
}

func (r *rng) next() uint64 {
	x := uint64(*r)
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	*r = rng(x)
	return x * 0x2545F4914F6CDD1D
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// letterFreq approximates English letter frequency (per mille); words
// drawn from it look like dictionary words to a page-fill calculation.
var letterFreq = []struct {
	c byte
	w int
}{
	{'e', 127}, {'t', 91}, {'a', 82}, {'o', 75}, {'i', 70}, {'n', 67},
	{'s', 63}, {'h', 61}, {'r', 60}, {'d', 43}, {'l', 40}, {'c', 28},
	{'u', 28}, {'m', 24}, {'w', 24}, {'f', 22}, {'g', 20}, {'y', 20},
	{'p', 19}, {'b', 15}, {'v', 10}, {'k', 8}, {'j', 2}, {'x', 2},
	{'q', 1}, {'z', 1},
}

var letterTotal = func() int {
	n := 0
	for _, lf := range letterFreq {
		n += lf.w
	}
	return n
}()

func (r *rng) letter() byte {
	n := r.intn(letterTotal)
	for _, lf := range letterFreq {
		n -= lf.w
		if n < 0 {
			return lf.c
		}
	}
	return 'e'
}

// wordLen draws an English-dictionary-like word length: roughly normal
// around 7-8, clamped to [2, 18] (as in /usr/dict/words).
func (r *rng) wordLen() int {
	// Sum of three small uniforms approximates the bell shape.
	n := 2 + r.intn(6) + r.intn(6) + r.intn(7)
	return n
}

// Dictionary returns n unique pseudo-words with their 1-based ASCII
// integer values, the paper's dictionary workload. Dictionary(0) returns
// the full 24,474-entry data set.
func Dictionary(n int) []Pair {
	if n <= 0 {
		n = DictionarySize
	}
	r := newRng(0x5eed5eed)
	seen := make(map[string]bool, n)
	out := make([]Pair, 0, n)
	for len(out) < n {
		l := r.wordLen()
		w := make([]byte, l)
		for i := range w {
			w[i] = r.letter()
		}
		if seen[string(w)] {
			continue
		}
		seen[string(w)] = true
		out = append(out, Pair{Key: w, Data: []byte(fmt.Sprintf("%d", len(out)+1))})
	}
	return out
}

// PasswdEntry is one synthetic password-file account.
type PasswdEntry struct {
	Login string
	UID   int
	GID   int
	Gecos string
	Home  string
	Shell string
}

// Line renders the entry in passwd(5) format.
func (p PasswdEntry) Line() string {
	return fmt.Sprintf("%s:*:%d:%d:%s:%s:%s", p.Login, p.UID, p.GID, p.Gecos, p.Home, p.Shell)
}

// Rest renders the entry without the login (the paper's first record
// kind: login as key, "the remainder of the password entry" as data).
func (p PasswdEntry) Rest() string {
	return fmt.Sprintf("*:%d:%d:%s:%s:%s", p.UID, p.GID, p.Gecos, p.Home, p.Shell)
}

var shells = []string{"/bin/sh", "/bin/csh", "/usr/local/bin/tcsh", "/bin/ksh"}

var firstNames = []string{
	"alice", "bob", "carol", "dave", "erin", "frank", "grace", "heidi",
	"ivan", "judy", "karl", "laura", "mallory", "nina", "oscar", "peggy",
	"quentin", "rita", "steve", "trudy", "ursula", "victor", "wendy",
	"xavier", "yolanda", "zach",
}

var lastNames = []string{
	"smith", "jones", "brown", "taylor", "wilson", "davis", "clark",
	"hall", "young", "king", "wright", "hill", "green", "baker", "adams",
	"nelson", "carter", "moore", "allen", "scott",
}

// Passwd returns n synthetic accounts. Passwd(0) returns the paper's
// ~300-account file.
func Passwd(n int) []PasswdEntry {
	if n <= 0 {
		n = PasswdAccounts
	}
	r := newRng(0x9a55d011) // distinct seed from Dictionary
	out := make([]PasswdEntry, 0, n)
	seen := make(map[string]bool, n)
	for len(out) < n {
		fn := firstNames[r.intn(len(firstNames))]
		ln := lastNames[r.intn(len(lastNames))]
		login := fmt.Sprintf("%c%s%d", fn[0], ln, r.intn(100))
		if seen[login] {
			continue
		}
		seen[login] = true
		uid := 1000 + len(out)
		out = append(out, PasswdEntry{
			Login: login,
			UID:   uid,
			GID:   100 + r.intn(20),
			Gecos: fmt.Sprintf("%s %s", title(fn), title(ln)),
			Home:  "/home/" + login,
			Shell: shells[r.intn(len(shells))],
		})
	}
	return out
}

func title(s string) string {
	if s == "" {
		return s
	}
	b := []byte(s)
	if b[0] >= 'a' && b[0] <= 'z' {
		b[0] -= 'a' - 'A'
	}
	return string(b)
}

// PasswdPairs renders the paper's two records per account: the first
// keyed by login with the remainder of the entry as data, the second
// keyed by uid with the entire entry as data.
func PasswdPairs(entries []PasswdEntry) []Pair {
	out := make([]Pair, 0, 2*len(entries))
	for _, e := range entries {
		out = append(out, Pair{Key: []byte(e.Login), Data: []byte(e.Rest())})
		out = append(out, Pair{Key: []byte(fmt.Sprintf("%d", e.UID)), Data: []byte(e.Line())})
	}
	return out
}

package dataset

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func TestDictionaryShape(t *testing.T) {
	d := Dictionary(0)
	if len(d) != DictionarySize {
		t.Fatalf("len = %d, want %d", len(d), DictionarySize)
	}
	seen := make(map[string]bool, len(d))
	totalLen := 0
	for i, p := range d {
		if len(p.Key) < 2 || len(p.Key) > 18 {
			t.Fatalf("word %d has length %d", i, len(p.Key))
		}
		if seen[string(p.Key)] {
			t.Fatalf("duplicate word %q", p.Key)
		}
		seen[string(p.Key)] = true
		totalLen += len(p.Key)
		// Data is the ASCII integer i+1, as in the paper.
		if string(p.Data) != strconv.Itoa(i+1) {
			t.Fatalf("data[%d] = %q", i, p.Data)
		}
		for _, c := range p.Key {
			if c < 'a' || c > 'z' {
				t.Fatalf("word %q contains %q", p.Key, c)
			}
		}
	}
	mean := float64(totalLen) / float64(len(d))
	if mean < 5 || mean > 11 {
		t.Fatalf("mean word length %.2f outside dictionary-like range", mean)
	}
}

func TestDictionaryDeterministic(t *testing.T) {
	a := Dictionary(1000)
	b := Dictionary(1000)
	for i := range a {
		if !bytes.Equal(a[i].Key, b[i].Key) || !bytes.Equal(a[i].Data, b[i].Data) {
			t.Fatalf("run difference at %d", i)
		}
	}
	// A prefix request yields a prefix of the full set.
	full := Dictionary(2000)
	for i := range a {
		if !bytes.Equal(a[i].Key, full[i].Key) {
			t.Fatalf("prefix mismatch at %d", i)
		}
	}
}

func TestPasswdShape(t *testing.T) {
	es := Passwd(0)
	if len(es) != PasswdAccounts {
		t.Fatalf("len = %d", len(es))
	}
	logins := map[string]bool{}
	for _, e := range es {
		if logins[e.Login] {
			t.Fatalf("duplicate login %q", e.Login)
		}
		logins[e.Login] = true
		line := e.Line()
		if strings.Count(line, ":") != 6 {
			t.Fatalf("Line %q not passwd(5) shaped", line)
		}
		if !strings.HasPrefix(line, e.Login+":") {
			t.Fatalf("Line %q does not start with login", line)
		}
		if e.Rest() != line[len(e.Login)+1:] {
			t.Fatalf("Rest %q is not line minus login", e.Rest())
		}
	}
}

func TestPasswdPairs(t *testing.T) {
	es := Passwd(10)
	pairs := PasswdPairs(es)
	if len(pairs) != 20 {
		t.Fatalf("pairs = %d, want 2 per account", len(pairs))
	}
	keys := map[string]bool{}
	for _, p := range pairs {
		if keys[string(p.Key)] {
			t.Fatalf("duplicate pair key %q", p.Key)
		}
		keys[string(p.Key)] = true
	}
	// Even indexes keyed by login, odd by uid.
	if string(pairs[0].Key) != es[0].Login {
		t.Fatalf("pair 0 key = %q", pairs[0].Key)
	}
	if string(pairs[1].Key) != strconv.Itoa(es[0].UID) {
		t.Fatalf("pair 1 key = %q", pairs[1].Key)
	}
	if string(pairs[1].Data) != es[0].Line() {
		t.Fatalf("pair 1 data = %q", pairs[1].Data)
	}
}

func TestRngDistribution(t *testing.T) {
	r := newRng(12345)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		counts[r.intn(10)]++
	}
	for i, c := range counts {
		if c < 8000 || c > 12000 {
			t.Fatalf("bucket %d count %d far from uniform", i, c)
		}
	}
}

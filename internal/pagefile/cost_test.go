package pagefile

import (
	"strings"
	"testing"
	"time"
)

func TestDefaultCostModel(t *testing.T) {
	c := DefaultCostModel()
	if c.ReadCost <= 0 || c.WriteCost <= 0 {
		t.Fatalf("default cost model = %+v", c)
	}
	if c.Sleep {
		t.Fatal("default cost model sleeps")
	}
}

func TestSleepingCostModel(t *testing.T) {
	// With Sleep set, operations really take at least their cost.
	s := NewMem(64, CostModel{WriteCost: 5 * time.Millisecond, Sleep: true})
	start := time.Now()
	buf := make([]byte, 64)
	for i := uint32(0); i < 4; i++ {
		if err := s.WritePage(i, buf); err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Fatalf("4 sleeping writes took %v, want >= 20ms", elapsed)
	}
	if got := s.Stats().Snapshot().IOTime; got != 20*time.Millisecond {
		t.Fatalf("IOTime = %v", got)
	}
}

func TestSnapshotString(t *testing.T) {
	s := NewMem(64, CostModel{})
	s.WritePage(0, make([]byte, 64))
	out := s.Stats().Snapshot().String()
	if !strings.Contains(out, "writes=1") {
		t.Fatalf("String = %q", out)
	}
}

func TestOpString(t *testing.T) {
	cases := map[Op]string{OpRead: "read", OpWrite: "write", OpSync: "sync", Op(9): "unknown"}
	for op, want := range cases {
		if got := op.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(op), got, want)
		}
	}
}

func TestInvalidPageSize(t *testing.T) {
	if _, err := OpenFile("/tmp/never-created.pg", 0, CostModel{}); err == nil {
		t.Fatal("OpenFile with page size 0 succeeded")
	}
	if _, err := OpenFile("/tmp/never-created.pg", -4, CostModel{}); err == nil {
		t.Fatal("OpenFile with negative page size succeeded")
	}
}

func TestFaultStorePassthroughMethods(t *testing.T) {
	inner := NewMem(128, CostModel{})
	f := NewFault(inner)
	if f.PageSize() != 128 {
		t.Fatalf("PageSize = %d", f.PageSize())
	}
	buf := make([]byte, 128)
	if err := f.WritePage(3, buf); err != nil {
		t.Fatal(err)
	}
	if f.NPages() != 4 {
		t.Fatalf("NPages = %d", f.NPages())
	}
	if f.Stats() != inner.Stats() {
		t.Fatal("Stats not passed through")
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// Package pagefile provides page-granular storage for the hashing package
// and its disk-based baselines.
//
// The paper's system ran on a raw UNIX file over an HP7959S disk and
// measured user/system/elapsed time with getrusage. This substrate
// preserves what drives those measurements — the number of pages moved
// between the buffer pool and the disk — by counting every page read,
// write and sync, and by charging a configurable per-operation cost that
// the benchmark harness reports as "system time". Stores may be backed by
// a real file (FileStore) or by memory (MemStore), and a fault-injecting
// wrapper (FaultStore) is provided for failure testing.
package pagefile

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"unixhash/internal/metrics"
	"unixhash/internal/trace"
)

// ErrNotAllocated is returned by ReadPage when the requested page lies
// entirely beyond the end of the store. Callers treat such pages as fresh
// (all-zero) pages to be initialized.
var ErrNotAllocated = errors.New("pagefile: page not allocated")

// Store is a page-granular storage device. All pages have the same size,
// fixed when the store is created. Implementations must be safe for
// concurrent use by multiple goroutines.
type Store interface {
	// PageSize returns the fixed page size in bytes.
	PageSize() int
	// ReadPage fills buf (which must be PageSize bytes) with page pageno.
	// It returns ErrNotAllocated if the page has never been written.
	ReadPage(pageno uint32, buf []byte) error
	// WritePage writes buf (PageSize bytes) as page pageno, extending the
	// store if needed.
	WritePage(pageno uint32, buf []byte) error
	// NPages reports the current store length in pages.
	NPages() uint32
	// Sync forces written pages to stable storage.
	Sync() error
	// Close releases the store. For file-backed stores the file is synced
	// and closed; the data remains on disk.
	Close() error
	// Stats returns the store's I/O accounting. The returned pointer is
	// live: it keeps updating as the store is used.
	Stats() *Stats
}

// VectorWriter is an optional Store extension: a store that can write a
// run of consecutive pages in one device operation. buf holds the pages
// back to back (len(buf) must be a multiple of PageSize), destined for
// pages [pageno, pageno+len(buf)/PageSize). The buffer pool's FlushAll
// uses this to turn a sorted flush into large sequential writes; stores
// that do not implement it (notably the fault-injecting and journaling
// wrappers, whose page-granular accounting must see every write) are
// served page by page.
type VectorWriter interface {
	WritePages(pageno uint32, buf []byte) error
}

// VectorReader is the read-side counterpart of VectorWriter: a store
// that can read a run of consecutive pages in one device operation into
// buf (len(buf) a multiple of PageSize). Pages in the run that were
// never written are zero-filled rather than failing the whole read — a
// read-ahead over a chain must degrade to fresh pages, not errors. The
// buffer pool's chain prefetch uses this to fault a whole overflow
// chain in one seek. Stores that do not implement it are served page by
// page.
type VectorReader interface {
	ReadPages(pageno uint32, buf []byte) error
}

// CostModel assigns a simulated cost to each I/O operation, standing in
// for the 1991 disk the paper measured. Costs accumulate in Stats.IOTime;
// if Sleep is set the store also really sleeps, making wall-clock elapsed
// time track the simulation (useful for demos, off for benchmarks).
type CostModel struct {
	ReadCost  time.Duration
	WriteCost time.Duration
	SyncCost  time.Duration
	Sleep     bool
}

// DefaultCostModel approximates a late-1980s SCSI disk: dominated by
// seek/rotation, identical for read and write at hash-page sizes.
func DefaultCostModel() CostModel {
	return CostModel{ReadCost: 20 * time.Millisecond, WriteCost: 20 * time.Millisecond, SyncCost: time.Millisecond}
}

// Stats counts the I/O a store has performed. Reads, Writes and Syncs
// count *attempted* operations — an operation that fails (including one
// blocked by fault injection) still counts, and additionally increments
// Errors — so fault-injection runs report the I/O the caller asked for,
// not just the I/O that succeeded. All fields are protected by mu; use
// the accessor methods from concurrent contexts.
type Stats struct {
	mu           sync.Mutex
	Reads        int64
	Writes       int64
	Syncs        int64
	Errors       int64 // failed operations (real or injected)
	BytesRead    int64
	BytesWritten int64
	IOTime       time.Duration // accumulated simulated cost
	cost         CostModel

	// Real (wall-clock) latency of the underlying device operations,
	// recorded alongside the simulated cost model. The histograms are
	// atomic and may be read while the store is in use.
	ReadLatency  metrics.Histogram
	WriteLatency metrics.Histogram
	SyncLatency  metrics.Histogram

	// tr, when set, receives a slow-io trace event for every device
	// operation at or above the tracer's threshold. Loaded atomically so
	// SetTrace is safe against in-flight operations.
	tr atomic.Pointer[trace.Tracer]
}

// SetTrace attaches a tracer to the store's latency accounting: device
// operations whose wall-clock duration meets the tracer's slow-op
// threshold emit a trace.EvSlowIO event. A nil tracer detaches.
func (s *Stats) SetTrace(t *trace.Tracer) { s.tr.Store(t) }

// observeRead records one device read's latency and traces it if slow;
// likewise observeWrite and observeSync below. These sit on the I/O
// path, so the disabled-trace cost is one atomic pointer load.
func (s *Stats) observeRead(pageno uint32, bytes int, d time.Duration) {
	s.ReadLatency.Observe(d)
	s.tr.Load().SlowIO(trace.IORead, pageno, bytes, d)
}

func (s *Stats) observeWrite(pageno uint32, bytes int, d time.Duration) {
	s.WriteLatency.Observe(d)
	s.tr.Load().SlowIO(trace.IOWrite, pageno, bytes, d)
}

func (s *Stats) observeSync(d time.Duration) {
	s.SyncLatency.Observe(d)
	s.tr.Load().SlowIO(trace.IOSync, 0, 0, d)
}

// Register exports the store's counters and latency histograms into reg
// under the given name prefix (conventionally "pagefile_"). Counter
// values are computed at scrape time from the live Stats, so no extra
// work lands on the I/O path. First registration of a name wins; give
// distinct stores distinct prefixes if both must be visible.
func (s *Stats) Register(reg *metrics.Registry, prefix string) {
	get := func(pick func(*Stats) int64) func() int64 {
		return func() int64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return pick(s)
		}
	}
	reg.CounterFunc(prefix+"reads_total", get(func(s *Stats) int64 { return s.Reads }))
	reg.CounterFunc(prefix+"writes_total", get(func(s *Stats) int64 { return s.Writes }))
	reg.CounterFunc(prefix+"syncs_total", get(func(s *Stats) int64 { return s.Syncs }))
	reg.CounterFunc(prefix+"errors_total", get(func(s *Stats) int64 { return s.Errors }))
	reg.CounterFunc(prefix+"read_bytes_total", get(func(s *Stats) int64 { return s.BytesRead }))
	reg.CounterFunc(prefix+"written_bytes_total", get(func(s *Stats) int64 { return s.BytesWritten }))
	reg.CounterFunc(prefix+"simulated_io_seconds_total", get(func(s *Stats) int64 { return int64(s.IOTime.Seconds()) }))
	reg.AddHistogram(prefix+"read_seconds", &s.ReadLatency)
	reg.AddHistogram(prefix+"write_seconds", &s.WriteLatency)
	reg.AddHistogram(prefix+"sync_seconds", &s.SyncLatency)
}

func (s *Stats) addRead(n int) {
	s.mu.Lock()
	s.Reads++
	s.BytesRead += int64(n)
	s.IOTime += s.cost.ReadCost
	s.mu.Unlock()
	if s.cost.Sleep && s.cost.ReadCost > 0 {
		time.Sleep(s.cost.ReadCost)
	}
}

func (s *Stats) addWrite(n int) {
	s.mu.Lock()
	s.Writes++
	s.BytesWritten += int64(n)
	s.IOTime += s.cost.WriteCost
	s.mu.Unlock()
	if s.cost.Sleep && s.cost.WriteCost > 0 {
		time.Sleep(s.cost.WriteCost)
	}
}

func (s *Stats) addSync() {
	s.mu.Lock()
	s.Syncs++
	s.IOTime += s.cost.SyncCost
	s.mu.Unlock()
	if s.cost.Sleep && s.cost.SyncCost > 0 {
		time.Sleep(s.cost.SyncCost)
	}
}

// addWriteVec accounts a vectored write of npages pages (n bytes total)
// exactly as npages individual page writes: the stats model deliberately
// measures pages moved and charges the cost model per page, so
// coalescing never changes a benchmark's simulated I/O time or write
// count. The real savings — one syscall, one seek — show up in wall
// clock and in the WriteLatency histogram, which records one observation
// per device operation.
func (s *Stats) addWriteVec(npages, n int) {
	s.mu.Lock()
	s.Writes += int64(npages)
	s.BytesWritten += int64(n)
	s.IOTime += time.Duration(npages) * s.cost.WriteCost
	s.mu.Unlock()
	if s.cost.Sleep && s.cost.WriteCost > 0 {
		time.Sleep(time.Duration(npages) * s.cost.WriteCost)
	}
}

// addReadVec accounts a vectored read exactly as npages individual page
// reads, mirroring addWriteVec: the simulated model charges pages
// moved, so read-ahead never changes a benchmark's simulated I/O time;
// the real savings show up in wall clock and the ReadLatency histogram
// (one observation per device operation).
func (s *Stats) addReadVec(npages, n int) {
	s.mu.Lock()
	s.Reads += int64(npages)
	s.BytesRead += int64(n)
	s.IOTime += time.Duration(npages) * s.cost.ReadCost
	s.mu.Unlock()
	if s.cost.Sleep && s.cost.ReadCost > 0 {
		time.Sleep(time.Duration(npages) * s.cost.ReadCost)
	}
}

func (s *Stats) addError() {
	s.mu.Lock()
	s.Errors++
	s.mu.Unlock()
}

// Snapshot returns a consistent copy of the counters.
func (s *Stats) Snapshot() StatsSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return StatsSnapshot{
		Reads: s.Reads, Writes: s.Writes, Syncs: s.Syncs, Errors: s.Errors,
		BytesRead: s.BytesRead, BytesWritten: s.BytesWritten, IOTime: s.IOTime,
	}
}

// Reset zeroes the counters (the cost model is kept).
func (s *Stats) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.Reads, s.Writes, s.Syncs, s.Errors = 0, 0, 0, 0
	s.BytesRead, s.BytesWritten = 0, 0
	s.IOTime = 0
}

// StatsSnapshot is a point-in-time copy of a Stats.
type StatsSnapshot struct {
	Reads        int64
	Writes       int64
	Syncs        int64
	Errors       int64
	BytesRead    int64
	BytesWritten int64
	IOTime       time.Duration
}

// Sub returns the component-wise difference s - o, for measuring the I/O
// attributable to one phase of a benchmark.
func (s StatsSnapshot) Sub(o StatsSnapshot) StatsSnapshot {
	return StatsSnapshot{
		Reads: s.Reads - o.Reads, Writes: s.Writes - o.Writes, Syncs: s.Syncs - o.Syncs,
		Errors:    s.Errors - o.Errors,
		BytesRead: s.BytesRead - o.BytesRead, BytesWritten: s.BytesWritten - o.BytesWritten,
		IOTime: s.IOTime - o.IOTime,
	}
}

// Ops reports the total page operations in the snapshot.
func (s StatsSnapshot) Ops() int64 { return s.Reads + s.Writes }

func (s StatsSnapshot) String() string {
	return fmt.Sprintf("reads=%d writes=%d syncs=%d errors=%d iotime=%v",
		s.Reads, s.Writes, s.Syncs, s.Errors, s.IOTime)
}

func validPageSize(n int) error {
	if n <= 0 {
		return fmt.Errorf("pagefile: invalid page size %d", n)
	}
	return nil
}

// ---------------------------------------------------------------------------
// FileStore

// FileStore is a Store backed by an operating-system file.
type FileStore struct {
	mu       sync.Mutex
	f        *os.File
	pagesize int
	npages   uint32
	stats    Stats
	closed   bool
}

// OpenFile opens (creating if necessary) a file-backed store at path. An
// existing file must have a length that is a multiple of pagesize.
func OpenFile(path string, pagesize int, cost CostModel) (*FileStore, error) {
	if err := validPageSize(pagesize); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if fi.Size()%int64(pagesize) != 0 {
		f.Close()
		return nil, fmt.Errorf("pagefile: %s: size %d is not a multiple of page size %d", path, fi.Size(), pagesize)
	}
	fs := &FileStore{f: f, pagesize: pagesize, npages: uint32(fi.Size() / int64(pagesize))}
	fs.stats.cost = cost
	return fs, nil
}

// PageSize implements Store.
func (fs *FileStore) PageSize() int { return fs.pagesize }

// NPages implements Store.
func (fs *FileStore) NPages() uint32 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.npages
}

// Stats implements Store.
func (fs *FileStore) Stats() *Stats { return &fs.stats }

// ReadPage implements Store.
func (fs *FileStore) ReadPage(pageno uint32, buf []byte) error {
	if len(buf) != fs.pagesize {
		return fmt.Errorf("pagefile: read buffer is %d bytes, want %d", len(buf), fs.pagesize)
	}
	fs.mu.Lock()
	if fs.closed {
		fs.mu.Unlock()
		return os.ErrClosed
	}
	if pageno >= fs.npages {
		fs.mu.Unlock()
		return ErrNotAllocated
	}
	fs.mu.Unlock()
	fs.stats.addRead(fs.pagesize)
	t0 := time.Now()
	n, err := fs.f.ReadAt(buf, int64(pageno)*int64(fs.pagesize))
	fs.stats.observeRead(pageno, fs.pagesize, time.Since(t0))
	if err == io.EOF && n == fs.pagesize {
		err = nil
	}
	if err != nil {
		fs.stats.addError()
		return fmt.Errorf("pagefile: read page %d: %w", pageno, err)
	}
	return nil
}

// ReadPages implements VectorReader: one positioned read covers the
// whole run; any portion beyond the end of the file is zero-filled.
// The stats count one read per page — see addReadVec.
func (fs *FileStore) ReadPages(pageno uint32, buf []byte) error {
	if len(buf) == 0 || len(buf)%fs.pagesize != 0 {
		return fmt.Errorf("pagefile: vector read of %d bytes is not a multiple of page size %d", len(buf), fs.pagesize)
	}
	fs.mu.Lock()
	if fs.closed {
		fs.mu.Unlock()
		return os.ErrClosed
	}
	fs.mu.Unlock()
	fs.stats.addReadVec(len(buf)/fs.pagesize, len(buf))
	t0 := time.Now()
	n, err := fs.f.ReadAt(buf, int64(pageno)*int64(fs.pagesize))
	fs.stats.observeRead(pageno, len(buf), time.Since(t0))
	if err == io.EOF {
		// Short run: the tail pages were never written; serve them fresh.
		for i := n; i < len(buf); i++ {
			buf[i] = 0
		}
		err = nil
	}
	if err != nil {
		fs.stats.addError()
		return fmt.Errorf("pagefile: read pages %d..%d: %w", pageno, pageno+uint32(len(buf)/fs.pagesize)-1, err)
	}
	return nil
}

// WritePage implements Store.
func (fs *FileStore) WritePage(pageno uint32, buf []byte) error {
	if len(buf) != fs.pagesize {
		return fmt.Errorf("pagefile: write buffer is %d bytes, want %d", len(buf), fs.pagesize)
	}
	fs.mu.Lock()
	if fs.closed {
		fs.mu.Unlock()
		return os.ErrClosed
	}
	fs.mu.Unlock()
	fs.stats.addWrite(fs.pagesize)
	t0 := time.Now()
	_, err := fs.f.WriteAt(buf, int64(pageno)*int64(fs.pagesize))
	fs.stats.observeWrite(pageno, fs.pagesize, time.Since(t0))
	if err != nil {
		fs.stats.addError()
		return fmt.Errorf("pagefile: write page %d: %w", pageno, err)
	}
	fs.mu.Lock()
	if pageno >= fs.npages {
		fs.npages = pageno + 1
	}
	fs.mu.Unlock()
	return nil
}

// WritePages implements VectorWriter: one positioned write (one syscall,
// one seek on a real device) covers the whole run. The stats still count
// one write per page — see addWriteVec.
func (fs *FileStore) WritePages(pageno uint32, buf []byte) error {
	if len(buf) == 0 || len(buf)%fs.pagesize != 0 {
		return fmt.Errorf("pagefile: vector write of %d bytes is not a multiple of page size %d", len(buf), fs.pagesize)
	}
	fs.mu.Lock()
	if fs.closed {
		fs.mu.Unlock()
		return os.ErrClosed
	}
	fs.mu.Unlock()
	fs.stats.addWriteVec(len(buf)/fs.pagesize, len(buf))
	t0 := time.Now()
	_, err := fs.f.WriteAt(buf, int64(pageno)*int64(fs.pagesize))
	fs.stats.observeWrite(pageno, len(buf), time.Since(t0))
	if err != nil {
		fs.stats.addError()
		return fmt.Errorf("pagefile: write pages %d..%d: %w", pageno, pageno+uint32(len(buf)/fs.pagesize)-1, err)
	}
	fs.mu.Lock()
	if last := pageno + uint32(len(buf)/fs.pagesize); last > fs.npages {
		fs.npages = last
	}
	fs.mu.Unlock()
	return nil
}

// Sync implements Store.
func (fs *FileStore) Sync() error {
	fs.mu.Lock()
	if fs.closed {
		fs.mu.Unlock()
		return os.ErrClosed
	}
	fs.mu.Unlock()
	fs.stats.addSync()
	t0 := time.Now()
	err := fs.f.Sync()
	fs.stats.observeSync(time.Since(t0))
	if err != nil {
		fs.stats.addError()
		return err
	}
	return nil
}

// Close implements Store. Per the Store contract the file is synced
// before it is closed, so a table shut down without an explicit Sync
// still reaches stable storage.
func (fs *FileStore) Close() error {
	fs.mu.Lock()
	if fs.closed {
		fs.mu.Unlock()
		return nil
	}
	fs.closed = true
	fs.mu.Unlock()
	fs.stats.addSync()
	t0 := time.Now()
	err := fs.f.Sync()
	fs.stats.observeSync(time.Since(t0))
	if err != nil {
		fs.stats.addError()
	}
	if cerr := fs.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// ---------------------------------------------------------------------------
// MemStore

// MemStore is a Store kept entirely in memory. It is used for pure
// in-memory hash tables (the hsearch replacement mode) and for benchmarks
// where the cost model, not a real disk, supplies the I/O cost.
type MemStore struct {
	mu       sync.Mutex
	pages    map[uint32][]byte
	pagesize int
	npages   uint32
	stats    Stats
}

// NewMem creates an empty in-memory store.
func NewMem(pagesize int, cost CostModel) *MemStore {
	ms := &MemStore{pages: make(map[uint32][]byte), pagesize: pagesize}
	ms.stats.cost = cost
	return ms
}

// PageSize implements Store.
func (ms *MemStore) PageSize() int { return ms.pagesize }

// NPages implements Store.
func (ms *MemStore) NPages() uint32 {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	return ms.npages
}

// Stats implements Store.
func (ms *MemStore) Stats() *Stats { return &ms.stats }

// ReadPage implements Store.
func (ms *MemStore) ReadPage(pageno uint32, buf []byte) error {
	if len(buf) != ms.pagesize {
		return fmt.Errorf("pagefile: read buffer is %d bytes, want %d", len(buf), ms.pagesize)
	}
	ms.mu.Lock()
	p, ok := ms.pages[pageno]
	ms.mu.Unlock()
	if !ok {
		return ErrNotAllocated
	}
	t0 := time.Now()
	copy(buf, p)
	ms.stats.observeRead(pageno, ms.pagesize, time.Since(t0))
	ms.stats.addRead(ms.pagesize)
	return nil
}

// ReadPages implements VectorReader with the same per-page stats
// accounting as the file-backed store (see addReadVec). Pages never
// written are zero-filled.
func (ms *MemStore) ReadPages(pageno uint32, buf []byte) error {
	if len(buf) == 0 || len(buf)%ms.pagesize != 0 {
		return fmt.Errorf("pagefile: vector read of %d bytes is not a multiple of page size %d", len(buf), ms.pagesize)
	}
	t0 := time.Now()
	ms.mu.Lock()
	for off := 0; off < len(buf); off += ms.pagesize {
		pn := pageno + uint32(off/ms.pagesize)
		dst := buf[off : off+ms.pagesize]
		if p, ok := ms.pages[pn]; ok {
			copy(dst, p)
		} else {
			for i := range dst {
				dst[i] = 0
			}
		}
	}
	ms.mu.Unlock()
	ms.stats.observeRead(pageno, len(buf), time.Since(t0))
	ms.stats.addReadVec(len(buf)/ms.pagesize, len(buf))
	return nil
}

// WritePage implements Store.
func (ms *MemStore) WritePage(pageno uint32, buf []byte) error {
	if len(buf) != ms.pagesize {
		return fmt.Errorf("pagefile: write buffer is %d bytes, want %d", len(buf), ms.pagesize)
	}
	t0 := time.Now()
	ms.mu.Lock()
	p, ok := ms.pages[pageno]
	if !ok {
		p = make([]byte, ms.pagesize)
		ms.pages[pageno] = p
	}
	copy(p, buf)
	if pageno >= ms.npages {
		ms.npages = pageno + 1
	}
	ms.mu.Unlock()
	ms.stats.observeWrite(pageno, ms.pagesize, time.Since(t0))
	ms.stats.addWrite(ms.pagesize)
	return nil
}

// WritePages implements VectorWriter with the same per-page stats
// accounting as the file-backed store (see addWriteVec), so benchmarks
// over MemStore report identical simulated I/O.
func (ms *MemStore) WritePages(pageno uint32, buf []byte) error {
	if len(buf) == 0 || len(buf)%ms.pagesize != 0 {
		return fmt.Errorf("pagefile: vector write of %d bytes is not a multiple of page size %d", len(buf), ms.pagesize)
	}
	t0 := time.Now()
	ms.mu.Lock()
	for off := 0; off < len(buf); off += ms.pagesize {
		pn := pageno + uint32(off/ms.pagesize)
		p, ok := ms.pages[pn]
		if !ok {
			p = make([]byte, ms.pagesize)
			ms.pages[pn] = p
		}
		copy(p, buf[off:off+ms.pagesize])
		if pn >= ms.npages {
			ms.npages = pn + 1
		}
	}
	ms.mu.Unlock()
	ms.stats.observeWrite(pageno, len(buf), time.Since(t0))
	ms.stats.addWriteVec(len(buf)/ms.pagesize, len(buf))
	return nil
}

// Sync implements Store. A memory store has nothing to flush, but the
// sync is still counted and its (near-zero) latency observed so that
// metric series exist regardless of backing device.
func (ms *MemStore) Sync() error {
	t0 := time.Now()
	ms.stats.addSync()
	ms.stats.observeSync(time.Since(t0))
	return nil
}

// Close implements Store.
func (ms *MemStore) Close() error { return nil }

// ---------------------------------------------------------------------------
// FaultStore

// Op identifies a store operation for fault injection.
type Op int

// Operations that can be made to fail.
const (
	OpRead Op = iota
	OpWrite
	OpSync
)

func (o Op) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpSync:
		return "sync"
	}
	return "unknown"
}

// Fault describes one injected failure: the After'th occurrence (1-based)
// of Op fails with Err. A Page of ^uint32(0) matches any page. Sync is a
// whole-store operation with no page of its own, so OpSync faults ignore
// the Page field entirely — a fault targeted at page 0 never spuriously
// matches a sync.
type Fault struct {
	Op    Op
	After int64
	Err   error
	Page  uint32
}

// AnyPage matches every page number in a Fault.
const AnyPage = ^uint32(0)

// FaultStore wraps a Store, failing selected operations. It is only used
// in tests and failure-injection benchmarks.
type FaultStore struct {
	Inner Store

	mu     sync.Mutex
	faults []Fault
	counts map[Op]int64
}

// NewFault wraps inner with an empty fault set.
func NewFault(inner Store) *FaultStore {
	return &FaultStore{Inner: inner, counts: make(map[Op]int64)}
}

// Inject adds a fault to the set. Faults are permanent: once an
// operation's count passes After, every matching operation fails.
func (f *FaultStore) Inject(fl Fault) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.faults = append(f.faults, fl)
}

// Clear removes all injected faults.
func (f *FaultStore) Clear() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.faults = nil
}

func (f *FaultStore) check(op Op, page uint32) error {
	f.mu.Lock()
	f.counts[op]++
	n := f.counts[op]
	var ferr error
	for _, fl := range f.faults {
		if fl.Op != op {
			continue
		}
		// Sync faults are page-less: Page is ignored for OpSync.
		if op != OpSync && fl.Page != AnyPage && fl.Page != page {
			continue
		}
		if n >= fl.After {
			ferr = fl.Err
			break
		}
	}
	f.mu.Unlock()
	if ferr != nil {
		// The blocked operation was still attempted by the caller: count
		// it, and the failure, in the shared stats.
		s := f.Inner.Stats()
		s.mu.Lock()
		switch op {
		case OpRead:
			s.Reads++
		case OpWrite:
			s.Writes++
		case OpSync:
			s.Syncs++
		}
		s.Errors++
		s.mu.Unlock()
	}
	return ferr
}

// PageSize implements Store.
func (f *FaultStore) PageSize() int { return f.Inner.PageSize() }

// NPages implements Store.
func (f *FaultStore) NPages() uint32 { return f.Inner.NPages() }

// Stats implements Store.
func (f *FaultStore) Stats() *Stats { return f.Inner.Stats() }

// ReadPage implements Store.
func (f *FaultStore) ReadPage(pageno uint32, buf []byte) error {
	if err := f.check(OpRead, pageno); err != nil {
		return err
	}
	return f.Inner.ReadPage(pageno, buf)
}

// WritePage implements Store.
func (f *FaultStore) WritePage(pageno uint32, buf []byte) error {
	if err := f.check(OpWrite, pageno); err != nil {
		return err
	}
	return f.Inner.WritePage(pageno, buf)
}

// WritePages implements VectorWriter with a per-page fault check and
// partial application: pages before the faulted one reach the inner
// store, modeling a coalesced run interrupted mid-way. Flush paths must
// therefore treat a failed run as an unknown mixture of written and
// unwritten pages — exactly what the real positioned-write stores leave
// behind on a short write.
func (f *FaultStore) WritePages(pageno uint32, buf []byte) error {
	ps := f.PageSize()
	for i := 0; i*ps < len(buf); i++ {
		p := pageno + uint32(i)
		if err := f.check(OpWrite, p); err != nil {
			return err
		}
		if err := f.Inner.WritePage(p, buf[i*ps:(i+1)*ps]); err != nil {
			return err
		}
	}
	return nil
}

// ReadPages implements VectorReader with a per-page fault check, so a
// read fault injected on any page of the run fails the whole read-ahead
// exactly as the positioned-read stores would. Unallocated pages are
// zero-filled per the VectorReader contract.
func (f *FaultStore) ReadPages(pageno uint32, buf []byte) error {
	ps := f.PageSize()
	for i := 0; i*ps < len(buf); i++ {
		p := pageno + uint32(i)
		dst := buf[i*ps : (i+1)*ps]
		if err := f.check(OpRead, p); err != nil {
			return err
		}
		if err := f.Inner.ReadPage(p, dst); err != nil {
			if !errors.Is(err, ErrNotAllocated) {
				return err
			}
			for j := range dst {
				dst[j] = 0
			}
		}
	}
	return nil
}

// Sync implements Store. Sync faults are page-less: only the Op and
// After fields of an injected Fault are consulted.
func (f *FaultStore) Sync() error {
	if err := f.check(OpSync, AnyPage); err != nil {
		return err
	}
	return f.Inner.Sync()
}

// Close implements Store.
func (f *FaultStore) Close() error { return f.Inner.Close() }

var (
	_ Store        = (*FileStore)(nil)
	_ Store        = (*MemStore)(nil)
	_ Store        = (*FaultStore)(nil)
	_ VectorWriter = (*FileStore)(nil)
	_ VectorWriter = (*MemStore)(nil)
	_ VectorWriter = (*FaultStore)(nil)
	_ VectorReader = (*FileStore)(nil)
	_ VectorReader = (*MemStore)(nil)
	_ VectorReader = (*FaultStore)(nil)
)

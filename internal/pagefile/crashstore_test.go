package pagefile

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"
)

// Regression: the Store contract says Close syncs the file before
// closing it. FileStore.Close used to skip the sync entirely.
func TestFileStoreCloseSyncs(t *testing.T) {
	fs, err := OpenFile(filepath.Join(t.TempDir(), "close.pg"), 64, CostModel{})
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.WritePage(0, make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	before := fs.Stats().Snapshot().Syncs
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	if got := fs.Stats().Snapshot().Syncs; got != before+1 {
		t.Fatalf("Close performed %d syncs, want 1", got-before)
	}
	// A second Close is a no-op and must not sync again.
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	if got := fs.Stats().Snapshot().Syncs; got != before+1 {
		t.Fatalf("double Close synced again (%d syncs)", got-before)
	}
}

// Regression: FaultStore.Sync used to pass page 0 to the fault matcher,
// so a fault targeted at page 0 spuriously fired on syncs. Sync faults
// are page-less: a page-targeted fault must never match a sync, and a
// sync fault must fire regardless of its Page field.
func TestFaultStoreSyncIsPageless(t *testing.T) {
	errBoom := errors.New("boom")
	fs := NewFault(NewMem(64, CostModel{}))

	// A write fault aimed at page 0 must not block syncs (distinct ops),
	// and a read fault aimed at page 0 must not either.
	fs.Inject(Fault{Op: OpWrite, After: 1, Err: errBoom, Page: 0})
	fs.Inject(Fault{Op: OpRead, After: 1, Err: errBoom, Page: 0})
	if err := fs.Sync(); err != nil {
		t.Fatalf("sync blocked by page-targeted fault: %v", err)
	}

	// A sync fault with an arbitrary Page still fires: Page is ignored.
	fs.Clear()
	fs.Inject(Fault{Op: OpSync, After: 1, Err: errBoom, Page: 12345})
	if err := fs.Sync(); !errors.Is(err, errBoom) {
		t.Fatalf("sync fault with stray Page field did not fire: %v", err)
	}
}

// Injected faults count as attempted — and failed — I/O, so
// fault-injection runs report what the caller asked for.
func TestStatsCountFaultedAttempts(t *testing.T) {
	errBoom := errors.New("boom")
	inner := NewMem(64, CostModel{})
	fs := NewFault(inner)
	buf := make([]byte, 64)

	if err := fs.WritePage(0, buf); err != nil {
		t.Fatal(err)
	}
	fs.Inject(Fault{Op: OpWrite, After: 2, Err: errBoom, Page: AnyPage})
	fs.Inject(Fault{Op: OpSync, After: 1, Err: errBoom})
	if err := fs.WritePage(1, buf); !errors.Is(err, errBoom) {
		t.Fatalf("write = %v, want boom", err)
	}
	if err := fs.Sync(); !errors.Is(err, errBoom) {
		t.Fatalf("sync = %v, want boom", err)
	}

	s := inner.Stats().Snapshot()
	if s.Writes != 2 {
		t.Fatalf("Writes = %d, want 2 (attempts, not successes)", s.Writes)
	}
	if s.Syncs != 1 {
		t.Fatalf("Syncs = %d, want 1", s.Syncs)
	}
	if s.Errors != 2 {
		t.Fatalf("Errors = %d, want 2", s.Errors)
	}
	if got := s.String(); !bytes.Contains([]byte(got), []byte("errors=2")) {
		t.Fatalf("String does not surface errors: %q", got)
	}
}

func TestCrashStoreJournalAndMaterialize(t *testing.T) {
	cs := NewCrash(NewMem(64, CostModel{}))
	page := func(fill byte) []byte { return bytes.Repeat([]byte{fill}, 64) }

	if err := cs.WritePage(0, page(1)); err != nil {
		t.Fatal(err)
	}
	if err := cs.WritePage(1, page(2)); err != nil {
		t.Fatal(err)
	}
	if err := cs.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := cs.WritePage(0, page(3)); err != nil {
		t.Fatal(err)
	}
	if cs.Len() != 4 {
		t.Fatalf("journal has %d events, want 4", cs.Len())
	}

	// Prefix 0: nothing survives.
	ms, err := cs.Materialize(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ms.NPages() != 0 {
		t.Fatalf("empty prefix has %d pages", ms.NPages())
	}

	// Prefix 2: both initial writes, no rewrite of page 0.
	ms, err = cs.Materialize(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	if err := ms.ReadPage(0, buf); err != nil || !bytes.Equal(buf, page(1)) {
		t.Fatalf("prefix 2 page 0 = %v %v", buf[0], err)
	}

	// Full prefix: the rewrite of page 0 lands.
	ms, err = cs.Materialize(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := ms.ReadPage(0, buf); err != nil || !bytes.Equal(buf, page(3)) {
		t.Fatalf("full prefix page 0 = %v %v", buf[0], err)
	}

	// Torn final write: first 10 bytes new, tail keeps the old content.
	ms, err = cs.Materialize(4, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := ms.ReadPage(0, buf); err != nil {
		t.Fatal(err)
	}
	want := page(1)
	copy(want[:10], page(3))
	if !bytes.Equal(buf, want) {
		t.Fatalf("torn page 0 = %v", buf)
	}

	// Torn write to a never-written page: tail is zeros.
	cs2 := NewCrash(NewMem(64, CostModel{}))
	if err := cs2.WritePage(5, page(7)); err != nil {
		t.Fatal(err)
	}
	ms, err = cs2.Materialize(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := ms.ReadPage(5, buf); err != nil {
		t.Fatal(err)
	}
	want = make([]byte, 64)
	copy(want[:3], page(7))
	if !bytes.Equal(buf, want) {
		t.Fatalf("torn fresh page = %v", buf)
	}

	// Out-of-range prefixes are rejected.
	if _, err := cs.Materialize(5, 0); err == nil {
		t.Fatal("materialized past the journal end")
	}
	if _, err := cs.Materialize(-1, 0); err == nil {
		t.Fatal("materialized a negative prefix")
	}
}

package pagefile

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
	"time"
)

func testStores(t *testing.T, pagesize int) map[string]Store {
	t.Helper()
	fs, err := OpenFile(filepath.Join(t.TempDir(), "store.pg"), pagesize, CostModel{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fs.Close() })
	return map[string]Store{
		"file": fs,
		"mem":  NewMem(pagesize, CostModel{}),
	}
}

func TestStoreReadWrite(t *testing.T) {
	for name, s := range testStores(t, 128) {
		t.Run(name, func(t *testing.T) {
			if s.PageSize() != 128 {
				t.Fatalf("PageSize = %d", s.PageSize())
			}
			buf := make([]byte, 128)
			if err := s.ReadPage(0, buf); !errors.Is(err, ErrNotAllocated) {
				t.Fatalf("read of unallocated page = %v, want ErrNotAllocated", err)
			}
			w := bytes.Repeat([]byte{0xAB}, 128)
			if err := s.WritePage(3, w); err != nil {
				t.Fatal(err)
			}
			if got := s.NPages(); got != 4 {
				t.Fatalf("NPages = %d, want 4", got)
			}
			if err := s.ReadPage(3, buf); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf, w) {
				t.Fatal("read back wrong bytes")
			}
			// Pages within range but never written read as zero (file
			// hole) or ErrNotAllocated (mem) — both are accepted by the
			// buffer layer; here just check no crash and full-size read.
			err := s.ReadPage(1, buf)
			if err != nil && !errors.Is(err, ErrNotAllocated) {
				t.Fatalf("hole read: %v", err)
			}
			if err == nil && !bytes.Equal(buf, make([]byte, 128)) {
				t.Fatal("hole read returned nonzero bytes")
			}
			if err := s.Sync(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestStoreRejectsWrongBufferSize(t *testing.T) {
	for name, s := range testStores(t, 128) {
		t.Run(name, func(t *testing.T) {
			if err := s.WritePage(0, make([]byte, 64)); err == nil {
				t.Fatal("short write buffer accepted")
			}
			if err := s.ReadPage(0, make([]byte, 256)); err == nil {
				t.Fatal("long read buffer accepted")
			}
		})
	}
}

func TestStoreStats(t *testing.T) {
	s := NewMem(64, CostModel{ReadCost: time.Millisecond, WriteCost: 2 * time.Millisecond})
	buf := make([]byte, 64)
	for i := uint32(0); i < 10; i++ {
		if err := s.WritePage(i, buf); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint32(0); i < 5; i++ {
		if err := s.ReadPage(i, buf); err != nil {
			t.Fatal(err)
		}
	}
	s.Sync()
	snap := s.Stats().Snapshot()
	if snap.Writes != 10 || snap.Reads != 5 || snap.Syncs != 1 {
		t.Fatalf("stats = %+v", snap)
	}
	if snap.BytesWritten != 640 || snap.BytesRead != 320 {
		t.Fatalf("byte counts = %+v", snap)
	}
	if want := 10*2*time.Millisecond + 5*time.Millisecond; snap.IOTime != want {
		t.Fatalf("IOTime = %v, want %v", snap.IOTime, want)
	}
	if snap.Ops() != 15 {
		t.Fatalf("Ops = %d", snap.Ops())
	}

	base := snap
	s.ReadPage(0, buf)
	diff := s.Stats().Snapshot().Sub(base)
	if diff.Reads != 1 || diff.Writes != 0 {
		t.Fatalf("Sub = %+v", diff)
	}

	s.Stats().Reset()
	if got := s.Stats().Snapshot(); got.Reads != 0 || got.IOTime != 0 {
		t.Fatalf("after Reset: %+v", got)
	}
}

func TestFilePersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "persist.pg")
	fs, err := OpenFile(path, 256, CostModel{})
	if err != nil {
		t.Fatal(err)
	}
	w := bytes.Repeat([]byte{7}, 256)
	if err := fs.WritePage(2, w); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}

	fs2, err := OpenFile(path, 256, CostModel{})
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	if fs2.NPages() != 3 {
		t.Fatalf("NPages after reopen = %d", fs2.NPages())
	}
	buf := make([]byte, 256)
	if err := fs2.ReadPage(2, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, w) {
		t.Fatal("page lost across reopen")
	}
}

func TestFileRejectsMisalignedFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "odd.pg")
	if err := os.WriteFile(path, make([]byte, 100), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(path, 64, CostModel{}); err == nil {
		t.Fatal("opened file whose size is not a page multiple")
	}
}

func TestFileClosedOps(t *testing.T) {
	fs, err := OpenFile(filepath.Join(t.TempDir(), "c.pg"), 64, CostModel{})
	if err != nil {
		t.Fatal(err)
	}
	fs.WritePage(0, make([]byte, 64))
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
	if err := fs.WritePage(0, make([]byte, 64)); err == nil {
		t.Fatal("write after close succeeded")
	}
	if err := fs.ReadPage(0, make([]byte, 64)); err == nil {
		t.Fatal("read after close succeeded")
	}
	if err := fs.Sync(); err == nil {
		t.Fatal("sync after close succeeded")
	}
}

func TestFaultStore(t *testing.T) {
	inner := NewMem(64, CostModel{})
	fs := NewFault(inner)
	errBoom := errors.New("boom")

	fs.Inject(Fault{Op: OpWrite, After: 3, Err: errBoom, Page: AnyPage})
	buf := make([]byte, 64)
	if err := fs.WritePage(0, buf); err != nil {
		t.Fatal(err)
	}
	if err := fs.WritePage(1, buf); err != nil {
		t.Fatal(err)
	}
	if err := fs.WritePage(2, buf); !errors.Is(err, errBoom) {
		t.Fatalf("third write = %v, want boom", err)
	}
	// Faults are permanent once triggered.
	if err := fs.WritePage(3, buf); !errors.Is(err, errBoom) {
		t.Fatalf("fourth write = %v, want boom", err)
	}
	fs.Clear()
	if err := fs.WritePage(3, buf); err != nil {
		t.Fatalf("write after Clear: %v", err)
	}

	// Page-specific fault.
	fs.Inject(Fault{Op: OpRead, After: 1, Err: errBoom, Page: 7})
	if err := fs.ReadPage(0, buf); err != nil {
		t.Fatalf("read of non-faulted page: %v", err)
	}
	fs.WritePage(7, buf)
	if err := fs.ReadPage(7, buf); !errors.Is(err, errBoom) {
		t.Fatalf("read of faulted page = %v, want boom", err)
	}

	// Sync faults.
	fs.Clear()
	fs.Inject(Fault{Op: OpSync, After: 1, Err: errBoom})
	if err := fs.Sync(); !errors.Is(err, errBoom) {
		t.Fatalf("sync = %v, want boom", err)
	}
}

// Property: what you write to any page is what you read back, for both
// backends.
func TestQuickRoundtrip(t *testing.T) {
	const ps = 128
	fs, err := OpenFile(filepath.Join(t.TempDir(), "q.pg"), ps, CostModel{})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	ms := NewMem(ps, CostModel{})

	f := func(pageno uint16, content [ps]byte) bool {
		for _, s := range []Store{fs, ms} {
			if err := s.WritePage(uint32(pageno), content[:]); err != nil {
				return false
			}
			buf := make([]byte, ps)
			if err := s.ReadPage(uint32(pageno), buf); err != nil {
				return false
			}
			if !bytes.Equal(buf, content[:]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

//go:build unix

package pagefile

import (
	"errors"
	"fmt"
	"syscall"
)

// ErrLocked is returned when another process holds a conflicting lock.
var ErrLocked = errors.New("pagefile: file is locked by another process")

// Lock takes an advisory whole-file lock on the store's file: exclusive
// for writers, shared for readers. It does not block; a conflicting
// holder yields ErrLocked. The lock is released when the file is closed.
//
// This is the paper's "multi-user access could be incorporated
// relatively easily" extension: many readers or one writer per table
// file across processes.
func (fs *FileStore) Lock(exclusive bool) error {
	how := syscall.LOCK_SH
	if exclusive {
		how = syscall.LOCK_EX
	}
	err := syscall.Flock(int(fs.f.Fd()), how|syscall.LOCK_NB)
	if errors.Is(err, syscall.EWOULDBLOCK) {
		return ErrLocked
	}
	if err != nil {
		return fmt.Errorf("pagefile: flock: %w", err)
	}
	return nil
}

// Unlock drops the advisory lock before close (rarely needed: Close
// releases it implicitly).
func (fs *FileStore) Unlock() error {
	return syscall.Flock(int(fs.f.Fd()), syscall.LOCK_UN)
}

package pagefile

import (
	"fmt"
	"sync"
)

// CrashStore wraps a Store and journals every WritePage and Sync in
// order. The journal lets a test materialize the file exactly as it
// would exist after a power cut at any point in the write stream —
// including a torn (partially persisted) final page — and reopen it to
// verify crash recovery. Reads pass through untouched.
//
// The crash model is an ordered write stream: a power cut preserves a
// prefix of the journaled writes and loses the rest. This is the model
// the table's two-phase sync protocol is designed against (data pages,
// then barrier, then header); see the Durability model section of
// DESIGN.md. CrashStore must wrap the store from its creation (an empty
// file), so the journal is the complete history of the file.
type CrashStore struct {
	Inner Store

	mu     sync.Mutex
	events []CrashEvent
}

// CrashEvent is one journaled store operation: either a page write
// (with a private copy of the written bytes) or a sync barrier.
type CrashEvent struct {
	Sync bool
	Page uint32
	Data []byte // nil for sync events
}

// NewCrash wraps inner, which must be empty, with an empty journal.
func NewCrash(inner Store) *CrashStore {
	return &CrashStore{Inner: inner}
}

// PageSize implements Store.
func (c *CrashStore) PageSize() int { return c.Inner.PageSize() }

// NPages implements Store.
func (c *CrashStore) NPages() uint32 { return c.Inner.NPages() }

// Stats implements Store.
func (c *CrashStore) Stats() *Stats { return c.Inner.Stats() }

// ReadPage implements Store.
func (c *CrashStore) ReadPage(pageno uint32, buf []byte) error {
	return c.Inner.ReadPage(pageno, buf)
}

// WritePage implements Store, journaling a copy of the written page.
func (c *CrashStore) WritePage(pageno uint32, buf []byte) error {
	if err := c.Inner.WritePage(pageno, buf); err != nil {
		return err
	}
	c.mu.Lock()
	c.events = append(c.events, CrashEvent{Page: pageno, Data: append([]byte(nil), buf...)})
	c.mu.Unlock()
	return nil
}

// Sync implements Store, journaling a sync barrier.
func (c *CrashStore) Sync() error {
	if err := c.Inner.Sync(); err != nil {
		return err
	}
	c.mu.Lock()
	c.events = append(c.events, CrashEvent{Sync: true})
	c.mu.Unlock()
	return nil
}

// Close implements Store. The journal survives Close so a test can
// materialize crash states after shutting the table down.
func (c *CrashStore) Close() error { return c.Inner.Close() }

// Events returns a snapshot of the journal.
func (c *CrashStore) Events() []CrashEvent {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]CrashEvent(nil), c.events...)
}

// Len reports the number of journaled events (writes and syncs).
func (c *CrashStore) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.events)
}

// Materialize builds an in-memory store holding the file as a power cut
// after the first n journal events would leave it: the first n writes
// are applied in order, everything after is lost. If tornBytes is
// positive and the n'th event is a page write, only the first tornBytes
// bytes of that final write reach the page — the tail keeps whatever
// the page held before (zeros for a fresh page) — simulating a torn
// sector write. tornBytes >= the page size means the write lands whole.
func (c *CrashStore) Materialize(n int, tornBytes int) (*MemStore, error) {
	c.mu.Lock()
	events := c.events
	if n < 0 || n > len(events) {
		c.mu.Unlock()
		return nil, fmt.Errorf("pagefile: materialize prefix %d of %d events", n, len(events))
	}
	events = events[:n]
	c.mu.Unlock()

	ps := c.Inner.PageSize()
	ms := NewMem(ps, CostModel{})
	buf := make([]byte, ps)
	for i, ev := range events {
		if ev.Sync {
			continue
		}
		data := ev.Data
		if i == n-1 && tornBytes > 0 && tornBytes < ps {
			// Torn final write: old content (or zeros) with only the
			// first tornBytes of the new data applied.
			clear(buf)
			if err := ms.ReadPage(ev.Page, buf); err != nil && err != ErrNotAllocated {
				return nil, err
			}
			copy(buf[:tornBytes], data[:tornBytes])
			data = buf
		}
		if err := ms.WritePage(ev.Page, data); err != nil {
			return nil, err
		}
	}
	ms.Stats().Reset()
	return ms, nil
}

var _ Store = (*CrashStore)(nil)

package pagefile

import (
	"bytes"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
)

// TestConcurrentStoreAccess hammers each backend from many goroutines,
// each owning a disjoint page range; run with -race this validates the
// stores' concurrency claims.
func TestConcurrentStoreAccess(t *testing.T) {
	fs, err := OpenFile(filepath.Join(t.TempDir(), "conc.pg"), 128, CostModel{})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	stores := map[string]Store{"file": fs, "mem": NewMem(128, CostModel{})}

	for name, s := range stores {
		s := s
		t.Run(name, func(t *testing.T) {
			var wg sync.WaitGroup
			for w := 0; w < 8; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					buf := make([]byte, 128)
					base := uint32(w * 100)
					for i := 0; i < 200; i++ {
						pg := base + uint32(i%100)
						copy(buf, fmt.Sprintf("w%d-i%d", w, i))
						if err := s.WritePage(pg, buf); err != nil {
							t.Errorf("write: %v", err)
							return
						}
						got := make([]byte, 128)
						if err := s.ReadPage(pg, got); err != nil {
							t.Errorf("read: %v", err)
							return
						}
						if !bytes.Equal(got[:8], buf[:8]) {
							t.Errorf("w%d page %d: got %q want %q", w, pg, got[:8], buf[:8])
							return
						}
					}
				}(w)
			}
			wg.Wait()
			// Stats must account for every operation without racing.
			snap := s.Stats().Snapshot()
			if snap.Writes < 8*200 || snap.Reads < 8*200 {
				t.Fatalf("stats lost operations: %+v", snap)
			}
		})
	}
}

// TestConcurrentStatsReaders checks that Snapshot is safe against
// concurrent operations.
func TestConcurrentStatsReaders(t *testing.T) {
	s := NewMem(64, CostModel{})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := make([]byte, 64)
		for i := uint32(0); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			s.WritePage(i%50, buf)
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				snap := s.Stats().Snapshot()
				if snap.Writes < 0 {
					t.Error("negative writes")
					return
				}
			}
		}()
	}
	for i := 0; i < 4000; i++ {
		_ = s.Stats().Snapshot()
	}
	close(stop)
	wg.Wait()
}

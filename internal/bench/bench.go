// Package bench is the experiment harness that regenerates every figure
// in the paper's evaluation section (Figures 5a-c, 6, 7, 8a, 8b) plus
// ablations of the design choices.
//
// Timing model. The paper reports getrusage user/system time and wall
// clock on an HP 9000/370 with an HP7959S disk. This harness substitutes:
//
//	user    — measured wall time of the workload (no real I/O happens:
//	          stores are memory-backed, so this is CPU time in the
//	          structures, the analogue of user time);
//	sys     — the simulated cost of the I/O the workload performed:
//	          counted page reads/writes times a per-operation disk cost
//	          (the analogue of system+disk time, which in 1991 was
//	          dominated by the disk);
//	elapsed — user + sys (single-user machine, synchronous I/O).
//
// Who wins and by what factor is therefore driven by exactly what drove
// the paper's numbers — how many pages move and how much CPU the
// algorithms burn — while absolute values reflect the configured cost
// model rather than 1990 hardware.
package bench

import (
	"fmt"
	"time"

	"unixhash/internal/pagefile"
)

// DiskCost is the per-page-I/O cost charged as simulated system time in
// the disk-based suites: a late-1980s SCSI disk seek+rotate+transfer.
var DiskCost = pagefile.CostModel{
	ReadCost:  20 * time.Millisecond,
	WriteCost: 20 * time.Millisecond,
	SyncCost:  time.Millisecond,
}

// MemCost is the cost model for the memory-resident suite, where pages
// swapped out of the bounded pool go "to temporary storage in the file
// system" (the paper) — that is, to the OS buffer cache: a syscall, not
// a disk seek. The value is calibrated so the ratio of swap cost to the
// package's per-operation CPU cost matches the paper's machine (sys
// 1.1s vs user 6.6s over ~49k ops with ~1.3 page I/Os each); a modern
// syscall is a few hundred nanoseconds against per-op user time of a few
// hundred nanoseconds, the same order.
var MemCost = pagefile.CostModel{
	ReadCost:  100 * time.Nanosecond,
	WriteCost: 100 * time.Nanosecond,
}

// Timing is one measured phase.
type Timing struct {
	User    time.Duration
	Sys     time.Duration
	Elapsed time.Duration
	Reads   int64
	Writes  int64
}

// Add accumulates another timing (for multi-phase totals).
func (t Timing) Add(o Timing) Timing {
	return Timing{
		User: t.User + o.User, Sys: t.Sys + o.Sys, Elapsed: t.Elapsed + o.Elapsed,
		Reads: t.Reads + o.Reads, Writes: t.Writes + o.Writes,
	}
}

// Improvement returns the paper's improvement metric,
// 100 * (old - new) / old, in percent.
func Improvement(oldT, newT time.Duration) float64 {
	if oldT == 0 {
		return 0
	}
	return 100 * float64(oldT-newT) / float64(oldT)
}

// Measure runs fn against the given stores, charging their I/O delta as
// simulated system time.
func Measure(stores []pagefile.Store, fn func() error) (Timing, error) {
	before := make([]pagefile.StatsSnapshot, len(stores))
	for i, s := range stores {
		before[i] = s.Stats().Snapshot()
	}
	start := time.Now()
	err := fn()
	user := time.Since(start)
	var tm Timing
	tm.User = user
	for i, s := range stores {
		d := s.Stats().Snapshot().Sub(before[i])
		tm.Sys += d.IOTime
		tm.Reads += d.Reads
		tm.Writes += d.Writes
	}
	tm.Elapsed = tm.User + tm.Sys
	return tm, err
}

// Seconds formats a duration as the paper prints times.
func Seconds(d time.Duration) string {
	return fmt.Sprintf("%.1f", d.Seconds())
}

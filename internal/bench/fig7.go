package bench

import (
	"fmt"
	"strings"

	"unixhash/internal/dataset"
)

// Figure 7: the impact of the buffer pool size, with the bucket size at
// 256 bytes and the fill factor at 16. The paper's conclusion: user time
// is virtually insensitive to the pool size, while system and elapsed
// time are inversely proportional to it; with 1 MB of buffer space the
// package performed no I/O for this data set.

// Fig7Point is one buffer-pool size measurement.
type Fig7Point struct {
	BufBytes int
	T        Timing // create + read combined
	IOOps    int64  // total page reads+writes
}

// Fig7Result holds the sweep.
type Fig7Result struct {
	N      int
	Points []Fig7Point
}

// DefaultFig7Buffers are the paper's x-axis points (0 means "the minimum
// number of pages required to be buffered").
var DefaultFig7Buffers = []int{0, 128 << 10, 256 << 10, 512 << 10, 768 << 10, 1 << 20}

// Fig7 runs the sweep. n <= 0 selects the full dictionary.
func Fig7(n int, bufs []int) (*Fig7Result, error) {
	pairs := dataset.Dictionary(n)
	if len(bufs) == 0 {
		bufs = DefaultFig7Buffers
	}
	res := &Fig7Result{N: len(pairs)}
	for _, bufBytes := range bufs {
		cache := bufBytes
		if cache <= 0 {
			cache = 1 // rounds up to the pool's minimum
		}
		r, err := newHashRun(HashParams{Bsize: 256, Ffactor: 16, CacheSize: cache, Nelem: len(pairs)})
		if err != nil {
			return nil, err
		}
		ct, err := r.enterAll(pairs)
		if err != nil {
			return nil, fmt.Errorf("fig7 buf=%d create: %w", bufBytes, err)
		}
		rt, err := r.readAll(pairs)
		if err != nil {
			return nil, fmt.Errorf("fig7 buf=%d read: %w", bufBytes, err)
		}
		tot := ct.Add(rt)
		if err := r.close(); err != nil {
			return nil, err
		}
		res.Points = append(res.Points, Fig7Point{
			BufBytes: bufBytes, T: tot, IOOps: tot.Reads + tot.Writes,
		})
	}
	return res, nil
}

// String renders the sweep.
func (r *Fig7Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7 — buffer pool size sweep, dictionary (%d keys), bsize 256, ffactor 16\n\n", r.N)
	fmt.Fprintf(&b, "%12s %9s %9s %9s %10s\n", "buffer (KB)", "user", "sys", "elapsed", "page I/Os")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%12d %9.2f %9.2f %9.2f %10d\n",
			p.BufBytes/1024, p.T.User.Seconds(), p.T.Sys.Seconds(), p.T.Elapsed.Seconds(), p.IOOps)
	}
	b.WriteString("\n(paper: user flat; sys and elapsed inversely proportional to pool size)\n")
	return b.String()
}

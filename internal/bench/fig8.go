package bench

import (
	"bytes"
	"fmt"
	"strings"

	"unixhash/internal/dataset"
	"unixhash/internal/hsearch"
	"unixhash/internal/ndbm"
	"unixhash/internal/pagefile"
)

// Figures 8a and 8b: the relative performance of the new package.
//
// The disk-based suite (bucket size 1024, fill factor 32) compares
// against ndbm on five tests: create (enter all pairs and flush the file),
// read (a lookup per key), verify (lookup plus comparison against the
// stored data), sequential (ndbm returns only keys), and sequential with
// data retrieval (ndbm needs a second call per key; the new package
// returns both in one pass, so its single run serves both rows).
//
// The memory-resident suite (bucket size 256, fill factor 8) compares
// against hsearch on a combined create/read test: the table is created
// by inserting all pairs, each pair is retrieved, and the table is
// destroyed. As in the paper, hsearch is created with nelem equal to the
// data set size — so it runs at ~100% load — while the new package
// bounds its main memory use and pages to temporary storage.
//
// Figure 8a uses the dictionary data set, Figure 8b the password file.

// Fig8Row is one test's timings for both parties.
type Fig8Row struct {
	Test string
	Hash Timing
	Old  Timing // ndbm or hsearch
}

// Improvement returns the paper's %change for the row's elapsed time.
func (r Fig8Row) Improvement() float64 { return Improvement(r.Old.Elapsed, r.Hash.Elapsed) }

// Fig8Result is one dataset's full comparison.
type Fig8Result struct {
	Dataset  string
	N        int
	DiskRows []Fig8Row // vs ndbm
	MemRows  []Fig8Row // vs hsearch
}

// Fig8Dict runs Figure 8a. n <= 0 selects the full dictionary.
func Fig8Dict(n int) (*Fig8Result, error) {
	pairs := dataset.Dictionary(n)
	return fig8(pairs, "dictionary")
}

// Fig8Passwd runs Figure 8b. n <= 0 selects the paper's ~300 accounts.
func Fig8Passwd(n int) (*Fig8Result, error) {
	pairs := dataset.PasswdPairs(dataset.Passwd(n))
	return fig8(pairs, "password")
}

func fig8(pairs []dataset.Pair, name string) (*Fig8Result, error) {
	res := &Fig8Result{Dataset: name, N: len(pairs)}
	disk, err := fig8Disk(pairs)
	if err != nil {
		return nil, fmt.Errorf("fig8 %s disk: %w", name, err)
	}
	res.DiskRows = disk
	mem, err := fig8Mem(pairs)
	if err != nil {
		return nil, fmt.Errorf("fig8 %s memory: %w", name, err)
	}
	res.MemRows = mem
	return res, nil
}

func fig8Disk(pairs []dataset.Pair) ([]Fig8Row, error) {
	// --- the new package ---
	hr, err := newHashRun(HashParams{Bsize: 1024, Ffactor: 32, CacheSize: 1 << 20, Nelem: len(pairs)})
	if err != nil {
		return nil, err
	}
	defer hr.close()
	hCreate, err := hr.createAll(pairs)
	if err != nil {
		return nil, err
	}
	hRead, err := hr.readAll(pairs)
	if err != nil {
		return nil, err
	}
	hVerify, err := hr.verifyAll(pairs)
	if err != nil {
		return nil, err
	}
	hSeq, err := hr.seqAll(len(pairs))
	if err != nil {
		return nil, err
	}

	// --- ndbm ---
	store := pagefile.NewMem(ndbm.DefaultPageSize, DiskCost)
	db, err := ndbm.Open("", &ndbm.Options{Store: store})
	if err != nil {
		return nil, err
	}
	defer db.Close()
	stores := []pagefile.Store{store}

	nCreate, err := Measure(stores, func() error {
		for _, p := range pairs {
			if err := db.Store(p.Key, p.Data, true); err != nil {
				return err
			}
		}
		return db.Sync()
	})
	if err != nil {
		return nil, err
	}
	nRead, err := Measure(stores, func() error {
		for _, p := range pairs {
			if _, err := db.Fetch(p.Key); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	nVerify, err := Measure(stores, func() error {
		for _, p := range pairs {
			got, err := db.Fetch(p.Key)
			if err != nil {
				return err
			}
			if !bytes.Equal(got, p.Data) {
				return fmt.Errorf("ndbm verify %q", p.Key)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Sequential, keys only: the ndbm interface does not return the data.
	nSeq, err := Measure(stores, func() error {
		n, sink := 0, 0
		c := db.First()
		for {
			k, err := c.Next()
			if err != nil {
				return err
			}
			if k == nil {
				break
			}
			sink += len(k)
			n++
		}
		if n != len(pairs) {
			return fmt.Errorf("ndbm scan saw %d keys, want %d", n, len(pairs))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Sequential with data retrieval: a second call per key.
	nSeqData, err := Measure(stores, func() error {
		c := db.First()
		for {
			k, err := c.Next()
			if err != nil {
				return err
			}
			if k == nil {
				return nil
			}
			if _, err := db.Fetch(k); err != nil {
				return err
			}
		}
	})
	if err != nil {
		return nil, err
	}

	return []Fig8Row{
		{Test: "CREATE", Hash: hCreate, Old: nCreate},
		{Test: "READ", Hash: hRead, Old: nRead},
		{Test: "VERIFY", Hash: hVerify, Old: nVerify},
		{Test: "SEQUENTIAL", Hash: hSeq, Old: nSeq},
		{Test: "SEQUENTIAL (with data retrieval)", Hash: hSeq, Old: nSeqData},
	}, nil
}

func fig8Mem(pairs []dataset.Pair) ([]Fig8Row, error) {
	// --- the new package, memory-resident with bounded cache; evicted
	// pages cost syscall-scale "swap" time, not disk time ---
	hr, err := newHashRun(HashParams{Bsize: 256, Ffactor: 8, CacheSize: 64 << 10, Nelem: len(pairs), Cost: MemCost})
	if err != nil {
		return nil, err
	}
	defer hr.close()
	hEnter, err := hr.enterAll(pairs)
	if err != nil {
		return nil, err
	}
	hRead, err := hr.readAll(pairs)
	if err != nil {
		return nil, err
	}

	// --- hsearch, sized exactly to the data set as its interface asks ---
	tbl := hsearch.New(len(pairs), nil)
	var zero []pagefile.Store
	sEnter, err := Measure(zero, func() error {
		for _, p := range pairs {
			if err := tbl.Enter(string(p.Key), p.Data); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sRead, err := Measure(zero, func() error {
		for _, p := range pairs {
			if _, ok := tbl.Find(string(p.Key)); !ok {
				return fmt.Errorf("hsearch lost %q", p.Key)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	return []Fig8Row{
		{Test: "CREATE/READ", Hash: hEnter.Add(hRead), Old: sEnter.Add(sRead)},
	}, nil
}

// String renders the paper's Figure 8 tables.
func (r *Fig8Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 8 — %s database (%d pairs)\n", r.Dataset, r.N)
	b.WriteString("\nDisk-based tests: hash (bsize 1024, ffactor 32) vs ndbm\n")
	writeFig8Rows(&b, r.DiskRows, "ndbm")
	b.WriteString("\nMemory-resident test: hash (bsize 256, ffactor 8) vs hsearch\n")
	writeFig8Rows(&b, r.MemRows, "hsearch")
	return b.String()
}

func writeFig8Rows(b *strings.Builder, rows []Fig8Row, oldName string) {
	fmt.Fprintf(b, "%-34s %-9s %9s %9s %9s\n", "", "", "hash", oldName, "%change")
	for _, row := range rows {
		pct := func(o, n float64) string {
			if o == 0 && n == 0 {
				return "0"
			}
			if o == 0 {
				return "-"
			}
			return fmt.Sprintf("%.0f", 100*(o-n)/o)
		}
		fmt.Fprintf(b, "%-34s\n", row.Test)
		fmt.Fprintf(b, "%-34s %-9s %9.2f %9.2f %9s\n", "", "user",
			row.Hash.User.Seconds(), row.Old.User.Seconds(),
			pct(row.Old.User.Seconds(), row.Hash.User.Seconds()))
		fmt.Fprintf(b, "%-34s %-9s %9.2f %9.2f %9s\n", "", "sys",
			row.Hash.Sys.Seconds(), row.Old.Sys.Seconds(),
			pct(row.Old.Sys.Seconds(), row.Hash.Sys.Seconds()))
		fmt.Fprintf(b, "%-34s %-9s %9.2f %9.2f %9s\n", "", "elapsed",
			row.Hash.Elapsed.Seconds(), row.Old.Elapsed.Seconds(),
			pct(row.Old.Elapsed.Seconds(), row.Hash.Elapsed.Seconds()))
	}
}

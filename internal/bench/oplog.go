package bench

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"strings"

	"unixhash/internal/oplog"
)

// Oplog measures the op ledger's overhead contract on the network
// front end: the serveload mixed phase (reads, coalesced writes, an
// occasional durable transaction over 8 WAL-backed shards on the
// sleeping simulated disks) runs twice over identical workloads —
// ledger off, then ledger on — and the result carries the throughput
// ratio between them plus the recorder's own evidence that the ledger
// measured something: the per-command phase summary and how much of
// each retained exemplar's end-to-end latency its phases explain.
//
// Two numbers gate (see Gate):
//
//   - on/off throughput ratio: attribution must cost no more than
//     (1-min) of mixed throughput. The phases sleep their I/O, so the
//     ratio isolates the ledger's bookkeeping from host speed.
//   - exemplar phase coverage: for each retained slowest-of-window
//     ledger, phase_sum/elapsed. The median must sit within 10% of
//     1.0 — phases that under-explain latency mean untimed holes in
//     the request path; phases that over-explain mean double counting.

// OplogCoverage summarizes how much of the exemplars' end-to-end
// latency the recorded phases explain.
type OplogCoverage struct {
	Exemplars int     `json:"exemplars"`
	Min       float64 `json:"min_phase_coverage"`
	Median    float64 `json:"median_phase_coverage"`
	Max       float64 `json:"max_phase_coverage"`
}

// OplogResult is the BENCH_obs.json payload.
type OplogResult struct {
	Conns           int           `json:"conns"`
	Pipeline        int           `json:"pipeline_depth"`
	WritePct        int           `json:"mixed_write_pct"`
	GOMAXPROCS      int           `json:"gomaxprocs"`
	NumCPU          int           `json:"numcpu"`
	Off             ServePhase    `json:"mixed_ledger_off"`
	On              ServePhase    `json:"mixed_ledger_on"`
	ThroughputRatio float64       `json:"on_off_throughput_ratio"`
	Coverage        OplogCoverage `json:"exemplar_coverage"`
	Summary         oplog.Summary `json:"oplog"`
}

// Oplog runs the mixed phase ledger-off then ledger-on. Zero or
// negative arguments select the serveload defaults (8 connections,
// depth 64, 30% writes).
func Oplog(conns, pipeline, writePct int) (*OplogResult, error) {
	if conns <= 0 {
		conns = 8
	}
	if pipeline <= 0 {
		pipeline = 64
	}
	if pipeline > 4096 {
		pipeline = 4096
	}
	if writePct <= 0 {
		writePct = 30
	}
	if writePct > 100 {
		writePct = 100
	}
	res := &OplogResult{
		Conns: conns, Pipeline: pipeline, WritePct: writePct,
		GOMAXPROCS: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU(),
	}

	var err error
	if res.Off, err = servePhaseMixed(serveShards, conns, pipeline, writePct, nil); err != nil {
		return nil, err
	}
	rec := oplog.NewRecorder(nil, serveShards)
	if res.On, err = servePhaseMixed(serveShards, conns, pipeline, writePct, rec); err != nil {
		return nil, err
	}
	res.ThroughputRatio = res.On.OpsPerSec / res.Off.OpsPerSec
	res.Summary = rec.Snapshot()
	res.Coverage = coverageOf(rec.Exemplars())
	return res, nil
}

// coverageOf computes phase_sum/elapsed per exemplar. STATS exemplars
// are excluded: the bench never issues STATS, but a deployment's
// stats-marshal time is deliberately unattributed.
func coverageOf(exs []oplog.ExemplarView) OplogCoverage {
	var ratios []float64
	for _, e := range exs {
		if e.Cmd == "stats" || e.ElapsedUS <= 0 {
			continue
		}
		ratios = append(ratios, e.PhaseUS/e.ElapsedUS)
	}
	cov := OplogCoverage{Exemplars: len(ratios)}
	if len(ratios) == 0 {
		return cov
	}
	sort.Float64s(ratios)
	cov.Min = ratios[0]
	cov.Median = ratios[len(ratios)/2]
	cov.Max = ratios[len(ratios)-1]
	return cov
}

// Gate fails if attribution cost more than its contract allows (on/off
// throughput below min), if the exemplars' phases explain less than
// 90% or more than 110% of end-to-end latency at the median, or if
// the recorder came back empty.
func (r *OplogResult) Gate(min float64) error {
	if r.ThroughputRatio < min {
		return fmt.Errorf("oplog: ledger-on throughput is %.2fx ledger-off, below the %.2fx gate",
			r.ThroughputRatio, min)
	}
	if len(r.Summary.Commands) == 0 {
		return fmt.Errorf("oplog: recorder snapshot is empty — no ledgers were recorded")
	}
	if r.Coverage.Exemplars == 0 {
		return fmt.Errorf("oplog: no exemplars were retained")
	}
	if r.Coverage.Median < 0.90 || r.Coverage.Median > 1.10 {
		return fmt.Errorf("oplog: median exemplar phase coverage %.2f is outside [0.90, 1.10]",
			r.Coverage.Median)
	}
	return nil
}

// JSON renders the BENCH_obs.json payload.
func (r *OplogResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

func (r *OplogResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Op-ledger overhead: mixed phase (%d%% writes), %d connections, pipeline depth %d, GOMAXPROCS=%d (NumCPU=%d)\n\n",
		r.WritePct, r.Conns, r.Pipeline, r.GOMAXPROCS, r.NumCPU)
	fmt.Fprintf(&b, "%-16s %10s %12s %12s %12s\n", "phase", "ops", "ops/sec", "win p50", "win p99")
	row := func(name string, p ServePhase) {
		fmt.Fprintf(&b, "%-16s %10d %12.0f %10dus %10dus\n",
			name, p.Ops, p.OpsPerSec, p.WindowP50US, p.WindowP99US)
	}
	row("ledger off", r.Off)
	row("ledger on", r.On)
	fmt.Fprintf(&b, "%-16s %10s %12s\n\n", "", "", fmt.Sprintf("%.2fx", r.ThroughputRatio))
	fmt.Fprintf(&b, "exemplar phase coverage (phase_sum/elapsed over %d exemplars): min %.2f  median %.2f  max %.2f\n\n",
		r.Coverage.Exemplars, r.Coverage.Min, r.Coverage.Median, r.Coverage.Max)
	fmt.Fprintf(&b, "%-8s %10s %10s %10s   largest phases (total ms)\n", "cmd", "count", "p50", "p99")
	for _, cs := range r.Summary.Commands {
		phases := append([]oplog.PhaseStat(nil), cs.Phases...)
		sort.Slice(phases, func(i, j int) bool { return phases[i].Total > phases[j].Total })
		var tops []string
		for i, ps := range phases {
			if i == 3 {
				break
			}
			tops = append(tops, fmt.Sprintf("%s %.1f", ps.Phase, ps.Total))
		}
		fmt.Fprintf(&b, "%-8s %10d %8.0fus %8.0fus   %s\n",
			cs.Cmd, cs.Count, cs.P50us, cs.P99us, strings.Join(tops, ", "))
	}
	return b.String()
}

package bench

import (
	"bytes"
	"fmt"

	"unixhash/internal/core"
	"unixhash/internal/dataset"
	"unixhash/internal/hashfunc"
	"unixhash/internal/pagefile"
)

// HashParams configures a hash-table run.
type HashParams struct {
	Bsize          int
	Ffactor        int
	CacheSize      int
	Nelem          int // 0: grow from a single bucket
	ControlledOnly bool
	Cost           pagefile.CostModel
}

// hashRun holds an open table and its accounting store.
type hashRun struct {
	t     *core.Table
	store pagefile.Store
}

func newHashRun(p HashParams) (*hashRun, error) {
	return newHashRunWithHash(p, nil)
}

func newHashRunWithHash(p HashParams, fn hashfunc.Func) (*hashRun, error) {
	cost := p.Cost
	if cost == (pagefile.CostModel{}) {
		cost = DiskCost
	}
	store := pagefile.NewMem(p.Bsize, cost)
	nelem := p.Nelem
	if nelem <= 0 {
		nelem = 1
	}
	t, err := core.Open("", &core.Options{
		Bsize: p.Bsize, Ffactor: p.Ffactor, CacheSize: p.CacheSize,
		Nelem: nelem, Store: store, ControlledOnly: p.ControlledOnly,
		Hash: fn,
	})
	if err != nil {
		return nil, err
	}
	return &hashRun{t: t, store: store}, nil
}

func (r *hashRun) stores() []pagefile.Store { return []pagefile.Store{r.store} }

// createAll inserts every pair and flushes the table to its store.
func (r *hashRun) createAll(pairs []dataset.Pair) (Timing, error) {
	return Measure(r.stores(), func() error {
		for _, p := range pairs {
			if err := r.t.Put(p.Key, p.Data); err != nil {
				return err
			}
		}
		return r.t.Sync()
	})
}

// enterAll inserts every pair without flushing (memory-resident use).
func (r *hashRun) enterAll(pairs []dataset.Pair) (Timing, error) {
	return Measure(r.stores(), func() error {
		for _, p := range pairs {
			if err := r.t.Put(p.Key, p.Data); err != nil {
				return err
			}
		}
		return nil
	})
}

// readAll looks up every pair.
func (r *hashRun) readAll(pairs []dataset.Pair) (Timing, error) {
	return Measure(r.stores(), func() error {
		for _, p := range pairs {
			if _, err := r.t.Get(p.Key); err != nil {
				return fmt.Errorf("read %q: %w", p.Key, err)
			}
		}
		return nil
	})
}

// verifyAll looks up every pair and compares the data returned against
// what was stored.
func (r *hashRun) verifyAll(pairs []dataset.Pair) (Timing, error) {
	return Measure(r.stores(), func() error {
		for _, p := range pairs {
			got, err := r.t.Get(p.Key)
			if err != nil {
				return err
			}
			if !bytes.Equal(got, p.Data) {
				return fmt.Errorf("verify %q: got %q want %q", p.Key, got, p.Data)
			}
		}
		return nil
	})
}

// seqAll retrieves all pairs in sequential order. The native interface
// returns both key and data in one call (unlike ndbm).
func (r *hashRun) seqAll(want int) (Timing, error) {
	return Measure(r.stores(), func() error {
		n := 0
		sink := 0
		it := r.t.Iter()
		for it.Next() {
			sink += len(it.Key()) + len(it.Value())
			n++
		}
		if err := it.Err(); err != nil {
			return err
		}
		if n != want {
			return fmt.Errorf("sequential scan saw %d pairs, want %d", n, want)
		}
		return nil
	})
}

func (r *hashRun) close() error { return r.t.Close() }

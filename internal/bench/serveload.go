package bench

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"unixhash/internal/core"
	"unixhash/internal/db"
	"unixhash/internal/oplog"
	"unixhash/internal/pagefile"
	"unixhash/internal/server"
	"unixhash/internal/wal"
)

// Serveload measures the network front end: real TCP connections
// speaking the wire protocol against internal/server, first over a
// single-shard database and then over serveShards shards, so the
// number that matters — how much write throughput sharding buys at
// equal client count — comes from the same code path a production
// client exercises.
//
// Like the txn harness, the shards run on in-memory stores with a
// SLEEPING simulated cost model (100us page I/O) and a deliberately
// tiny buffer pool, so every coalesced batch does its page I/O inside
// the table's exclusive batch section. That makes the phases measure
// lock-structure, not host core count: one shard must serialize every
// connection's batches behind one lock, while N shards overlap them —
// sleeps overlap even on GOMAXPROCS=1. The third phase runs a mixed
// read/write workload (with an occasional transaction paying the WAL's
// sleeping append+fsync costs) over the sharded database and reports
// pipeline-window round-trip latency percentiles: the time the tail
// command of a window waited for its reply.

var (
	serveStoreCost = pagefile.CostModel{
		ReadCost:  100 * time.Microsecond,
		WriteCost: 100 * time.Microsecond,
		SyncCost:  time.Millisecond,
		Sleep:     true,
	}
	serveWalCost = wal.CostModel{
		AppendCost: 50 * time.Microsecond,
		SyncCost:   500 * time.Microsecond,
		Sleep:      true,
	}
)

const (
	serveShards     = 8
	serveBsize      = 1024
	serveFfactor    = 8
	serveCache      = 16 << 10 // 16 pages per shard: batches must do I/O
	serveOpsPerConn = 1024
	servePreload    = 8192 // mixed-phase key space
)

// ServePhase is one measured workload phase.
type ServePhase struct {
	Shards      int     `json:"shards"`
	Ops         int     `json:"ops"`
	Seconds     float64 `json:"elapsed_seconds"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	WindowP50US int64   `json:"window_p50_us"`
	WindowP99US int64   `json:"window_p99_us"`
}

// ServeloadResult is the BENCH_serve.json payload.
type ServeloadResult struct {
	Conns        int        `json:"conns"`
	Pipeline     int        `json:"pipeline_depth"`
	WritePct     int        `json:"mixed_write_pct"`
	GOMAXPROCS   int        `json:"gomaxprocs"`
	NumCPU       int        `json:"numcpu"`
	WriteSingle  ServePhase `json:"write_1_shard"`
	WriteSharded ServePhase `json:"write_8_shards"`
	Mixed        ServePhase `json:"mixed_8_shards"`
	WriteSpeedup float64    `json:"write_speedup_8_vs_1"`
}

// Serveload runs the three phases with conns client connections each
// pipelining pipeline commands per window; writePct is the mixed
// phase's write percentage. Zero or negative arguments select the
// defaults (8 connections, depth 64, 30% writes).
func Serveload(conns, pipeline, writePct int) (*ServeloadResult, error) {
	if conns <= 0 {
		conns = 8
	}
	if pipeline <= 0 {
		pipeline = 64
	}
	if pipeline > 4096 {
		pipeline = 4096
	}
	if writePct <= 0 {
		writePct = 30
	}
	if writePct > 100 {
		writePct = 100
	}
	res := &ServeloadResult{
		Conns: conns, Pipeline: pipeline, WritePct: writePct,
		GOMAXPROCS: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU(),
	}

	var err error
	if res.WriteSingle, err = servePhaseWrite(1, conns, pipeline); err != nil {
		return nil, err
	}
	if res.WriteSharded, err = servePhaseWrite(serveShards, conns, pipeline); err != nil {
		return nil, err
	}
	if res.Mixed, err = servePhaseMixed(serveShards, conns, pipeline, writePct, nil); err != nil {
		return nil, err
	}
	res.WriteSpeedup = res.WriteSharded.OpsPerSec / res.WriteSingle.OpsPerSec
	return res, nil
}

// serveOpen starts a server over a fresh nshards in-memory database on
// the simulated disks; a non-nil rec turns on per-request attribution.
func serveOpen(nshards int, useWAL bool, rec *oplog.Recorder) (*db.Sharded, *server.Server, error) {
	opts := &core.Options{
		Bsize: serveBsize, Ffactor: serveFfactor, CacheSize: serveCache,
		Cost: serveStoreCost,
	}
	if useWAL {
		opts.WAL = true
		opts.WALCost = serveWalCost
	}
	d, err := db.OpenSharded("", nshards, &db.Config{Hash: opts})
	if err != nil {
		return nil, nil, err
	}
	s, err := server.Serve("127.0.0.1:0", server.Options{DB: d, Oplog: rec})
	if err != nil {
		d.Close()
		return nil, nil, err
	}
	return d, s, nil
}

// servePhaseWrite drives conns connections, each pipelining windows of
// PUTs over disjoint key ranges, and reports aggregate throughput.
func servePhaseWrite(nshards, conns, pipeline int) (ServePhase, error) {
	d, s, err := serveOpen(nshards, false, nil)
	if err != nil {
		return ServePhase{}, err
	}
	defer d.Close()
	defer s.Close()

	lats := make([][]time.Duration, conns)
	start := time.Now()
	err = serveClients(s.Addr(), conns, func(w int, c *serveConn) error {
		var ws []time.Duration
		for i := 0; i < serveOpsPerConn; i += pipeline {
			t0 := time.Now()
			n := min(pipeline, serveOpsPerConn-i)
			for j := 0; j < n; j++ {
				fmt.Fprintf(c.bw, "PUT w%d-%06d v%d\r\n", w, i+j, i+j)
			}
			if err := c.expectStatuses(n); err != nil {
				return err
			}
			ws = append(ws, time.Since(t0))
		}
		lats[w] = ws
		return nil
	})
	if err != nil {
		return ServePhase{}, err
	}
	elapsed := time.Since(start)
	if got, want := d.Len(), conns*serveOpsPerConn; got != want {
		return ServePhase{}, fmt.Errorf("serveload: %d-shard write phase stored %d keys, want %d", nshards, got, want)
	}
	return servePhaseResult(nshards, conns*serveOpsPerConn, elapsed, lats), nil
}

// servePhaseMixed preloads a key space, then drives a writePct-write /
// rest-read mix with one small transaction per 4 windows. A non-nil rec
// runs the phase with per-request attribution on.
func servePhaseMixed(nshards, conns, pipeline, writePct int, rec *oplog.Recorder) (ServePhase, error) {
	d, s, err := serveOpen(nshards, true, rec)
	if err != nil {
		return ServePhase{}, err
	}
	defer d.Close()
	defer s.Close()

	pre := make([]db.Pair, servePreload)
	for i := range pre {
		pre[i] = db.Pair{Key: []byte(fmt.Sprintf("pre-%06d", i)), Data: []byte("seed")}
	}
	if err := d.PutBatch(pre); err != nil {
		return ServePhase{}, err
	}

	lats := make([][]time.Duration, conns)
	ops := make([]int, conns)
	start := time.Now()
	err = serveClients(s.Addr(), conns, func(w int, c *serveConn) error {
		rng := rand.New(rand.NewSource(int64(w) + 1))
		var ws []time.Duration
		window := 0
		for done := 0; done < serveOpsPerConn; {
			t0 := time.Now()
			var kinds []byte // reply shape per command: 's'tatus, 'g'et
			n := min(pipeline, serveOpsPerConn-done)
			for j := 0; j < n; j++ {
				key := fmt.Sprintf("pre-%06d", rng.Intn(servePreload))
				if rng.Intn(100) < writePct {
					fmt.Fprintf(c.bw, "PUT %s fresh%d\r\n", key, j)
					kinds = append(kinds, 's')
				} else {
					fmt.Fprintf(c.bw, "GET %s\r\n", key)
					kinds = append(kinds, 'g')
				}
			}
			if window%4 == 3 { // an occasional durable transaction
				fmt.Fprintf(c.bw, "TXN BEGIN\r\nPUT txn-%d-%d committed\r\nDEL txn-%d-%d\r\nTXN COMMIT\r\n", w, window, w, window)
				kinds = append(kinds, 's', 's', 's', 's')
			}
			if err := c.expectReplies(kinds); err != nil {
				return err
			}
			ws = append(ws, time.Since(t0))
			done += n
			ops[w] += len(kinds)
			window++
		}
		lats[w] = ws
		return nil
	})
	if err != nil {
		return ServePhase{}, err
	}
	elapsed := time.Since(start)
	total := 0
	for _, n := range ops {
		total += n
	}
	return servePhaseResult(nshards, total, elapsed, lats), nil
}

func servePhaseResult(nshards, ops int, elapsed time.Duration, lats [][]time.Duration) ServePhase {
	var all []time.Duration
	for _, ws := range lats {
		all = append(all, ws...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) int64 {
		if len(all) == 0 {
			return 0
		}
		return all[int(p*float64(len(all)-1))].Microseconds()
	}
	return ServePhase{
		Shards:      nshards,
		Ops:         ops,
		Seconds:     elapsed.Seconds(),
		OpsPerSec:   float64(ops) / elapsed.Seconds(),
		WindowP50US: pct(0.50),
		WindowP99US: pct(0.99),
	}
}

// serveConn is the benchmark's wire-protocol client side.
type serveConn struct {
	bw *bufio.Writer
	br *bufio.Reader
}

// expectStatuses flushes the window and reads n single-line replies,
// failing on any -ERR.
func (c *serveConn) expectStatuses(n int) error {
	return c.expectReplies(make([]byte, n)) // zero byte: single-line reply
}

// expectReplies flushes and reads one reply per kind: 'g' may be a
// bulk value or nil, anything else is a single status/integer line.
func (c *serveConn) expectReplies(kinds []byte) error {
	if err := c.bw.Flush(); err != nil {
		return err
	}
	for _, k := range kinds {
		line, err := c.br.ReadString('\n')
		if err != nil {
			return err
		}
		if strings.HasPrefix(line, "-") {
			return fmt.Errorf("serveload: server replied %q", strings.TrimSpace(line))
		}
		if k == 'g' && strings.HasPrefix(line, "$") && !strings.HasPrefix(line, "$-1") {
			var n int
			if _, err := fmt.Sscanf(line, "$%d", &n); err != nil {
				return fmt.Errorf("serveload: bad bulk header %q", strings.TrimSpace(line))
			}
			if _, err := io.ReadFull(c.br, make([]byte, n+2)); err != nil {
				return err
			}
		}
	}
	return nil
}

// serveClients runs fn on conns parallel connections and joins the
// first error.
func serveClients(addr string, conns int, fn func(w int, c *serveConn) error) error {
	var wg sync.WaitGroup
	errs := make([]error, conns)
	for w := 0; w < conns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			nc, err := net.Dial("tcp", addr)
			if err != nil {
				errs[w] = err
				return
			}
			defer nc.Close()
			errs[w] = fn(w, &serveConn{bw: bufio.NewWriterSize(nc, 64<<10), br: bufio.NewReader(nc)})
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Gate fails if sharding bought less than min aggregate write
// throughput over a single shard at equal client count. The phases
// sleep their I/O, so the ratio reflects lock structure rather than
// host parallelism and is stable on small CI machines.
func (r *ServeloadResult) Gate(min float64) error {
	if r.WriteSpeedup < min {
		return fmt.Errorf("serveload: %d-shard write speedup %.2fx is below the %.2fx gate",
			serveShards, r.WriteSpeedup, min)
	}
	return nil
}

// JSON renders the BENCH_serve.json payload.
func (r *ServeloadResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

func (r *ServeloadResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Network front end: %d connections, pipeline depth %d, GOMAXPROCS=%d (NumCPU=%d)\n",
		r.Conns, r.Pipeline, r.GOMAXPROCS, r.NumCPU)
	fmt.Fprintf(&b, "simulated disk per shard: %v page I/O (slept), %d-byte cache\n\n",
		serveStoreCost.WriteCost, serveCache)
	fmt.Fprintf(&b, "%-16s %7s %10s %12s %12s %12s\n", "phase", "shards", "ops", "ops/sec", "win p50", "win p99")
	row := func(name string, p ServePhase) {
		fmt.Fprintf(&b, "%-16s %7d %10d %12.0f %10dus %10dus\n",
			name, p.Shards, p.Ops, p.OpsPerSec, p.WindowP50US, p.WindowP99US)
	}
	row("write", r.WriteSingle)
	row("write", r.WriteSharded)
	fmt.Fprintf(&b, "%-16s %7s %10s %12s\n", "", "", "", fmt.Sprintf("%.2fx", r.WriteSpeedup))
	row(fmt.Sprintf("mixed %d%%w", r.WritePct), r.Mixed)
	return b.String()
}

package bench

import (
	"fmt"
	"strings"
	"time"

	"unixhash/internal/dataset"
	"unixhash/internal/hashfunc"
)

// Ablations of the design choices DESIGN.md calls out:
//
//   - the hybrid split policy (uncontrolled + controlled) versus
//     dynahash's controlled-only splitting;
//   - the choice of hash function (the paper: the default "offered the
//     best performance in terms of cycles executed per call (it did not
//     produce the fewest collisions although it was within a small
//     percentage of the function that produced the fewest collisions)").

// SplitPolicyResult compares hybrid and controlled-only splitting.
type SplitPolicyResult struct {
	N      int
	Hybrid SplitPolicyArm
	CtlOnl SplitPolicyArm
}

// SplitPolicyArm is one policy's outcome.
type SplitPolicyArm struct {
	Create     Timing
	Read       Timing
	Expansions int64
	OvflAllocs int64
	OvflPages  int
}

// AblateSplitPolicy measures both policies over the dictionary. The
// fill factor (32) deliberately exceeds what a 256-byte page holds
// (about 11 dictionary pairs), so buckets overflow routinely: that is
// the regime where the uncontrolled half of the hybrid policy acts.
func AblateSplitPolicy(n int) (*SplitPolicyResult, error) {
	pairs := dataset.Dictionary(n)
	res := &SplitPolicyResult{N: len(pairs)}
	for _, controlled := range []bool{false, true} {
		r, err := newHashRun(HashParams{
			Bsize: 256, Ffactor: 32, CacheSize: 1 << 20,
			Nelem: 1, ControlledOnly: controlled,
		})
		if err != nil {
			return nil, err
		}
		ct, err := r.createAll(pairs)
		if err != nil {
			return nil, err
		}
		rt, err := r.readAll(pairs)
		if err != nil {
			return nil, err
		}
		ovfl, err := r.t.OverflowPages()
		if err != nil {
			return nil, err
		}
		st := r.t.Stats()
		arm := SplitPolicyArm{
			Create: ct, Read: rt,
			Expansions: st.Expansions, OvflAllocs: st.OvflAllocs, OvflPages: ovfl,
		}
		if err := r.close(); err != nil {
			return nil, err
		}
		if controlled {
			res.CtlOnl = arm
		} else {
			res.Hybrid = arm
		}
	}
	return res, nil
}

// String renders the comparison.
func (r *SplitPolicyResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation — split policy, dictionary (%d keys), bsize 256, ffactor 32, grown from one bucket\n\n", r.N)
	fmt.Fprintf(&b, "%-18s %12s %12s %12s %12s %12s\n",
		"policy", "create (s)", "read (s)", "splits", "ovfl allocs", "ovfl pages")
	row := func(name string, a SplitPolicyArm) {
		fmt.Fprintf(&b, "%-18s %12.2f %12.2f %12d %12d %12d\n",
			name, a.Create.Elapsed.Seconds(), a.Read.Elapsed.Seconds(),
			a.Expansions, a.OvflAllocs, a.OvflPages)
	}
	row("hybrid (paper)", r.Hybrid)
	row("controlled-only", r.CtlOnl)
	b.WriteString("\n(the hybrid policy trades a few extra splits for shorter overflow chains on reads)\n")
	return b.String()
}

// HashFuncResult is one hash function's profile on the dictionary.
type HashFuncResult struct {
	Name       string
	NsPerCall  float64
	Collisions int // pairs sharing a 16-bit masked value
	CreateRead time.Duration
}

// AblateHashFuncs profiles every registered function: cycles per call,
// masked collisions, and end-to-end create+read user time with the
// function installed as the table's hash.
func AblateHashFuncs(n int) ([]HashFuncResult, error) {
	pairs := dataset.Dictionary(n)
	names := []string{"default", "sdbm", "dbm", "knuth", "division", "fnv1a"}
	var out []HashFuncResult
	for _, name := range names {
		fn := hashfunc.ByName[name]

		// Cycles per call.
		const reps = 20
		start := time.Now()
		var sink uint32
		for rep := 0; rep < reps; rep++ {
			for _, p := range pairs {
				sink += fn(p.Key)
			}
		}
		perCall := float64(time.Since(start).Nanoseconds()) / float64(reps*len(pairs))
		_ = sink

		// Collisions under a 16-bit mask (bucket-collision proxy).
		seen := make(map[uint32]int, len(pairs))
		coll := 0
		for _, p := range pairs {
			h := fn(p.Key) & 0xFFFF
			if seen[h] > 0 {
				coll++
			}
			seen[h]++
		}

		// End-to-end with the function installed.
		r, err := newHashRunWithHash(HashParams{Bsize: 256, Ffactor: 8, CacheSize: 1 << 20, Nelem: len(pairs)}, fn)
		if err != nil {
			return nil, err
		}
		ct, err := r.enterAll(pairs)
		if err != nil {
			return nil, fmt.Errorf("hashfunc %s: %w", name, err)
		}
		rt, err := r.readAll(pairs)
		if err != nil {
			return nil, fmt.Errorf("hashfunc %s: %w", name, err)
		}
		if err := r.close(); err != nil {
			return nil, err
		}
		out = append(out, HashFuncResult{
			Name: name, NsPerCall: perCall, Collisions: coll,
			CreateRead: ct.User + rt.User,
		})
	}
	return out, nil
}

// FormatHashFuncs renders the profile table.
func FormatHashFuncs(rs []HashFuncResult, n int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation — hash functions over the dictionary (%d keys)\n\n", n)
	fmt.Fprintf(&b, "%-10s %12s %18s %18s\n", "function", "ns/call", "16-bit collisions", "create+read user")
	for _, r := range rs {
		fmt.Fprintf(&b, "%-10s %12.1f %18d %18s\n", r.Name, r.NsPerCall, r.Collisions,
			r.CreateRead.Round(time.Millisecond))
	}
	b.WriteString("\n(the paper chose its default for speed per call, not minimal collisions)\n")
	return b.String()
}

package bench

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"time"

	"unixhash/internal/core"
	"unixhash/internal/hashfunc"
	"unixhash/internal/pagefile"
)

// Misses measures the read-acceleration layer on its target workload:
// negative lookups against buckets with overflow chains. Without the
// per-bucket tag filter, a miss is the worst read in the table — the
// whole chain must be walked to prove absence — so miss cost grows
// linearly with chain depth. With the filter, the primary page's tag
// region answers "definitely absent" and the chain is never touched, so
// a depth-4 miss should cost the same single page read as a depth-0
// miss.
//
// The experiment builds one table per chain depth d (0..4): 256
// presized buckets that never split, each loaded with the same key
// count so every bucket carries a chain of exactly d overflow pages.
// Each table is reopened with a minimum-size buffer pool — far smaller
// than the table — so a miss faults the pages it touches, and a batch
// of absent keys (uniformly spread over the buckets) is timed twice:
// filter consulted, and filter ignored (Options.DisableFilter — the
// pages are identical, the option only gates the read side). A final
// scan phase reopens the deepest table with a cold full-size pool and
// iterates it, demonstrating the vectored chain read-ahead: each
// bucket's chain arrives in one ReadPages call, visible in the
// prefetch counters.
//
// Timing follows the harness's paper methodology: user is measured wall
// time, sys is the simulated cost of the pages moved, elapsed is their
// sum. The cost model charges vectored reads per page (see
// pagefile.Stats), so read-ahead never flatters the simulated time —
// its win is fewer device operations, reported as the prefetch counts.

// missesCost: 100µs per page I/O; syncs are irrelevant to a read bench.
var missesCost = pagefile.CostModel{
	ReadCost:  100 * time.Microsecond,
	WriteCost: 100 * time.Microsecond,
	SyncCost:  time.Millisecond,
}

// missesData is the stored value: 50 bytes, so a 256-byte page holds a
// few entries and a depth-4 chain stays well inside the primary page's
// 32-tag filter capacity. (Tiny entries pack so densely that a 4-page
// chain exceeds the tag region and saturates the filter — which is the
// designed degradation for pathologically overfull buckets, not the
// regime this experiment measures.)
var missesData = bytes.Repeat([]byte("x"), 50)

const (
	missesBsize   = 256
	missesBuckets = 256  // presized power of two: bucket = hash & 255
	missesFfactor = 1000 // never reached: chain depth is the variable
	missesPerRun  = 2000
	missesDepths  = 5 // chains of 0..4 overflow pages
)

// MissesSide is one timed miss batch (filters consulted or ignored).
type MissesSide struct {
	PerMissReads  float64 `json:"per_miss_page_reads"`
	PerMissMicros float64 `json:"per_miss_micros"`
	FilterSkips   int64   `json:"filter_skips"`
	FilterFPs     int64   `json:"filter_false_positives"`
}

// MissesPoint compares the two sides at one chain depth.
type MissesPoint struct {
	Depth       int        `json:"chain_depth"`
	KeysPerBkt  int        `json:"keys_per_bucket"`
	On          MissesSide `json:"filters_on"`
	Off         MissesSide `json:"filters_off"`
	MissesRun   int        `json:"misses"`
	ReadRatio   float64    `json:"off_over_on_reads"`
	ElapsedGain float64    `json:"off_over_on_elapsed"`
}

// MissesResult is the BENCH_misses.json payload.
type MissesResult struct {
	Bsize      int           `json:"bsize"`
	Buckets    int           `json:"buckets"`
	ReadCostUS int64         `json:"read_cost_us"`
	Points     []MissesPoint `json:"points"`
	// Depth4Over0 is the gated ratio: filtered depth-4 miss cost over
	// filtered depth-0 miss cost. The filter makes deep chains free to
	// miss, so this should sit near 1.0.
	Depth4Over0 float64 `json:"depth4_over_depth0_filtered"`
	// Scan phase: a cold full iteration of the depth-4 table.
	ScanPrefetches      int64 `json:"scan_prefetches"`
	ScanPrefetchedPages int64 `json:"scan_prefetched_pages"`
	ScanReads           int64 `json:"scan_page_reads"`
	ScanKeys            int   `json:"scan_keys"`
}

// missesOpts returns the fixed build geometry: 256 buckets presized,
// a fill factor the load never approaches, and overflow-triggered
// splits off, so the bucket count is pinned and chain depth is purely
// a function of keys inserted per bucket.
func missesOpts(store pagefile.Store) *core.Options {
	return &core.Options{
		Bsize: missesBsize, Ffactor: missesFfactor,
		Nelem: missesBuckets * missesFfactor, ControlledOnly: true,
		Store: store,
	}
}

// missesBucketKeys partitions a deterministic key stream by bucket and
// returns perBucket keys for each of the table's buckets. All keys are
// the same length, so equal counts build identical page layouts.
func missesBucketKeys(prefix string, perBucket int) [][][]byte {
	out := make([][][]byte, missesBuckets)
	filled := 0
	for i := 0; filled < missesBuckets; i++ {
		k := []byte(fmt.Sprintf("%s%07d", prefix, i))
		b := hashfunc.Default(k) & (missesBuckets - 1)
		if len(out[b]) < perBucket {
			out[b] = append(out[b], k)
			if len(out[b]) == perBucket {
				filled++
			}
		}
	}
	return out
}

// missesThresholds discovers, on a scratch table, the key count at
// which one bucket's chain first reaches each depth 1..maxDepth.
func missesThresholds(maxDepth int) ([]int, error) {
	t, err := core.Open("", missesOpts(pagefile.NewMem(missesBsize, pagefile.CostModel{})))
	if err != nil {
		return nil, err
	}
	defer t.Close()
	keys := missesBucketKeys("stored-", 4096/missesBuckets*8)
	thresholds := make([]int, 0, maxDepth)
	for i, k := range keys[0] {
		if err := t.Put(k, missesData); err != nil {
			return nil, err
		}
		hm, err := t.Heatmap()
		if err != nil {
			return nil, err
		}
		if d := hm.PerBucket[0].ChainPages; d > len(thresholds) {
			thresholds = append(thresholds, i+1)
			if d >= maxDepth {
				return thresholds, nil
			}
		}
	}
	return nil, fmt.Errorf("misses: key stream exhausted at thresholds %v", thresholds)
}

// missesBuild fills store with a table whose every bucket carries a
// chain of exactly depth overflow pages (perBucket keys each), and
// returns the total keys stored.
func missesBuild(store pagefile.Store, depth, perBucket int) (int, error) {
	t, err := core.Open("", missesOpts(store))
	if err != nil {
		return 0, err
	}
	defer t.Close()
	total := 0
	for _, bkeys := range missesBucketKeys("stored-", perBucket) {
		for _, k := range bkeys {
			if err := t.Put(k, missesData); err != nil {
				return 0, err
			}
			total++
		}
	}
	hm, err := t.Heatmap()
	if err != nil {
		return 0, err
	}
	if hm.Buckets != missesBuckets {
		return 0, fmt.Errorf("misses: built %d buckets, expected %d", hm.Buckets, missesBuckets)
	}
	for _, row := range hm.PerBucket {
		if row.ChainPages != depth {
			return 0, fmt.Errorf("misses: bucket %d chain is %d pages, wanted %d",
				row.Bucket, row.ChainPages, depth)
		}
	}
	return total, t.Sync()
}

// missesTime reopens store with a minimum-size pool (a table of 256+
// chains cannot stay resident, so misses fault the pages they touch)
// and times nmiss negative lookups spread uniformly over the buckets.
func missesTime(store *pagefile.MemStore, nmiss int, disableFilter bool) (MissesSide, error) {
	t, err := core.Open("", &core.Options{
		Store: store, CacheSize: missesBsize, // rounded up to the pool's 8-page floor
		DisableFilter: disableFilter, DisableReadAhead: disableFilter,
	})
	if err != nil {
		return MissesSide{}, err
	}
	defer t.Close()
	before := store.Stats().Snapshot()
	snapBefore, err := t.MetricsSnapshot()
	if err != nil {
		return MissesSide{}, err
	}
	start := time.Now()
	for i := 0; i < nmiss; i++ {
		k := []byte(fmt.Sprintf("absent-%07d", i))
		if _, err := t.Get(k); !errors.Is(err, core.ErrNotFound) {
			if err == nil {
				return MissesSide{}, fmt.Errorf("misses: %q unexpectedly present", k)
			}
			return MissesSide{}, err
		}
	}
	user := time.Since(start)
	after := store.Stats().Snapshot()
	snapAfter, err := t.MetricsSnapshot()
	if err != nil {
		return MissesSide{}, err
	}
	io := after.Sub(before)
	elapsed := user + io.IOTime
	return MissesSide{
		PerMissReads:  float64(io.Reads) / float64(nmiss),
		PerMissMicros: float64(elapsed.Microseconds()) / float64(nmiss),
		FilterSkips:   snapAfter.Counter(core.MetricFilterSkips) - snapBefore.Counter(core.MetricFilterSkips),
		FilterFPs:     snapAfter.Counter(core.MetricFilterFPs) - snapBefore.Counter(core.MetricFilterFPs),
	}, nil
}

// missesScan reopens store cold with a full-size pool and iterates the
// whole table, reporting the read-ahead counters of the scan.
func missesScan(store *pagefile.MemStore) (prefetches, pages, reads int64, keys int, err error) {
	t, err := core.Open("", &core.Options{Store: store})
	if err != nil {
		return 0, 0, 0, 0, err
	}
	defer t.Close()
	before := store.Stats().Snapshot()
	it := t.Iter()
	for it.Next() {
		keys++
	}
	if err := it.Err(); err != nil {
		return 0, 0, 0, 0, err
	}
	snap, err := t.MetricsSnapshot()
	if err != nil {
		return 0, 0, 0, 0, err
	}
	io := store.Stats().Snapshot().Sub(before)
	return snap.Counter(core.MetricPrefetches), snap.Counter(core.MetricPrefetchedPages),
		io.Reads, keys, nil
}

// Misses runs the full experiment. nmiss is the negative lookups per
// timed batch (0 = the default 2000).
func Misses(nmiss int) (*MissesResult, error) {
	if nmiss <= 0 {
		nmiss = missesPerRun
	}
	thresholds, err := missesThresholds(missesDepths - 1)
	if err != nil {
		return nil, err
	}
	res := &MissesResult{
		Bsize: missesBsize, Buckets: missesBuckets,
		ReadCostUS: missesCost.ReadCost.Microseconds(),
	}
	var deepStore *pagefile.MemStore
	for depth := 0; depth < missesDepths; depth++ {
		// Depth 0 loads the primary to the brink of overflow; depth d
		// stops at the key that first opened overflow page d.
		perBucket := thresholds[0] - 1
		if depth > 0 {
			perBucket = thresholds[depth-1]
		}
		store := pagefile.NewMem(missesBsize, missesCost)
		if _, err := missesBuild(store, depth, perBucket); err != nil {
			return nil, fmt.Errorf("depth %d: %w", depth, err)
		}
		on, err := missesTime(store, nmiss, false)
		if err != nil {
			return nil, fmt.Errorf("depth %d filters on: %w", depth, err)
		}
		off, err := missesTime(store, nmiss, true)
		if err != nil {
			return nil, fmt.Errorf("depth %d filters off: %w", depth, err)
		}
		pt := MissesPoint{Depth: depth, KeysPerBkt: perBucket, On: on, Off: off, MissesRun: nmiss}
		if on.PerMissReads > 0 {
			pt.ReadRatio = off.PerMissReads / on.PerMissReads
		}
		if on.PerMissMicros > 0 {
			pt.ElapsedGain = off.PerMissMicros / on.PerMissMicros
		}
		res.Points = append(res.Points, pt)
		if depth == missesDepths-1 {
			deepStore = store
		}
	}
	if d0, d4 := res.Points[0].On, res.Points[missesDepths-1].On; d0.PerMissMicros > 0 {
		res.Depth4Over0 = d4.PerMissMicros / d0.PerMissMicros
	}
	pf, pages, reads, keys, err := missesScan(deepStore)
	if err != nil {
		return nil, fmt.Errorf("scan: %w", err)
	}
	res.ScanPrefetches, res.ScanPrefetchedPages, res.ScanReads, res.ScanKeys = pf, pages, reads, keys
	return res, nil
}

// Gate enforces the CI regression bars: with filters on, a depth-4
// negative lookup must cost no more than maxRatio times a depth-0 one
// (the filter's whole point is making chain depth irrelevant to
// misses), and the scan phase must have moved chain pages through the
// vectored read-ahead path.
func (r *MissesResult) Gate(maxRatio float64) error {
	if len(r.Points) < missesDepths {
		return fmt.Errorf("misses: only %d points measured", len(r.Points))
	}
	if r.Depth4Over0 > maxRatio {
		return fmt.Errorf("misses: filtered depth-4 miss costs %.2fx a depth-0 miss, above the %.2fx ceiling",
			r.Depth4Over0, maxRatio)
	}
	if r.ScanPrefetchedPages <= 0 {
		return fmt.Errorf("misses: scan phase installed no pages through read-ahead (prefetched_pages=%d)",
			r.ScanPrefetchedPages)
	}
	return nil
}

// JSON renders the machine-readable BENCH_misses.json payload.
func (r *MissesResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// String renders a human-readable table in the style of the other
// hashbench experiments.
func (r *MissesResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Negative lookups vs overflow-chain depth: %d buckets, %d-byte pages, %dus/page read\n",
		r.Buckets, r.Bsize, r.ReadCostUS)
	fmt.Fprintf(&b, "(reads and elapsed are per miss; filters off also disables read-ahead)\n\n")
	fmt.Fprintf(&b, "  %-6s %-9s %14s %12s %14s %12s %8s\n",
		"depth", "keys/bkt", "on reads/miss", "on us/miss", "off reads/miss", "off us/miss", "off/on")
	for _, pt := range r.Points {
		fmt.Fprintf(&b, "  %-6d %-9d %14.2f %12.1f %14.2f %12.1f %7.1fx\n",
			pt.Depth, pt.KeysPerBkt, pt.On.PerMissReads, pt.On.PerMissMicros,
			pt.Off.PerMissReads, pt.Off.PerMissMicros, pt.ElapsedGain)
	}
	fmt.Fprintf(&b, "\n  filtered depth-4/depth-0 cost ratio: %.2fx\n", r.Depth4Over0)
	fmt.Fprintf(&b, "  cold scan of the depth-4 table: %d keys, %d page reads, %d prefetches moved %d pages\n",
		r.ScanKeys, r.ScanReads, r.ScanPrefetches, r.ScanPrefetchedPages)
	return b.String()
}

package bench

import (
	"fmt"
	"strings"

	"unixhash/internal/btree"
	"unixhash/internal/dataset"
	"unixhash/internal/pagefile"
)

// Access-method comparison: the paper's conclusion places the hash
// package inside a generic access-method family ("it will include a
// btree access method..."). This experiment runs the dictionary workload
// over both keyed methods with the same page size and pool, showing the
// classic tradeoff: hashing wins random lookups, the btree adds ordered
// scans and prefix locality at the cost of log-depth page touches.

// MethodsRow is one access method's measurements.
type MethodsRow struct {
	Method string
	Create Timing
	Read   Timing
	Scan   Timing
	Pages  uint32 // file size in pages after create
}

// MethodsResult holds the comparison.
type MethodsResult struct {
	N     int
	Bsize int
	Rows  []MethodsRow
}

// Methods runs the comparison. n <= 0 selects the full dictionary.
func Methods(n int) (*MethodsResult, error) {
	pairs := dataset.Dictionary(n)
	const bsize = 1024
	res := &MethodsResult{N: len(pairs), Bsize: bsize}

	// --- hash ---
	hr, err := newHashRun(HashParams{Bsize: bsize, Ffactor: 32, CacheSize: 1 << 20, Nelem: len(pairs)})
	if err != nil {
		return nil, err
	}
	hc, err := hr.createAll(pairs)
	if err != nil {
		return nil, err
	}
	hg, err := hr.readAll(pairs)
	if err != nil {
		return nil, err
	}
	hs, err := hr.seqAll(len(pairs))
	if err != nil {
		return nil, err
	}
	hPages := hr.store.NPages()
	if err := hr.close(); err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, MethodsRow{Method: "hash", Create: hc, Read: hg, Scan: hs, Pages: hPages})

	// --- btree ---
	store := pagefile.NewMem(bsize, DiskCost)
	bt, err := btree.Open("", &btree.Options{PageSize: bsize, CacheSize: 1 << 20, Store: store})
	if err != nil {
		return nil, err
	}
	defer bt.Close()
	stores := []pagefile.Store{store}
	bc, err := Measure(stores, func() error {
		for _, p := range pairs {
			if err := bt.Put(p.Key, p.Data); err != nil {
				return err
			}
		}
		return bt.Sync()
	})
	if err != nil {
		return nil, err
	}
	bg, err := Measure(stores, func() error {
		for _, p := range pairs {
			if _, err := bt.Get(p.Key); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	bs, err := Measure(stores, func() error {
		c := bt.Cursor()
		count := 0
		for c.Next() {
			count++
		}
		if err := c.Err(); err != nil {
			return err
		}
		if count != len(pairs) {
			return fmt.Errorf("btree scan saw %d of %d", count, len(pairs))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, MethodsRow{Method: "btree", Create: bc, Read: bg, Scan: bs, Pages: store.NPages()})
	return res, nil
}

// String renders the comparison.
func (r *MethodsResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Access methods — dictionary (%d keys), page size %d, 1 MB pool\n\n", r.N, r.Bsize)
	fmt.Fprintf(&b, "%-8s %12s %12s %12s %10s\n", "method", "create (s)", "read (s)", "scan (s)", "pages")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-8s %12.2f %12.2f %12.2f %10d\n",
			row.Method, row.Create.Elapsed.Seconds(), row.Read.Elapsed.Seconds(),
			row.Scan.Elapsed.Seconds(), row.Pages)
	}
	b.WriteString("\n(hash: O(1) page touches per lookup, unordered scan;" +
		" btree: ordered scan, log-depth lookups)\n")
	return b.String()
}

package bench

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestTxnShape runs the txn harness at a small size and checks the
// acceptance bar end to end: the WAL durable put must be at least 10x
// cheaper than the full sync protocol on the simulated cost model, and
// the payload must carry the latency percentiles and counters.
func TestTxnShape(t *testing.T) {
	res, err := Txn(60)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Gate(10); err != nil {
		t.Fatal(err)
	}
	if res.WalTxn.WalAppends != 60 || res.WalTxn.WalFsyncs == 0 {
		t.Fatalf("waltxn log counters: %+v", res.WalTxn)
	}
	if res.FullSync.WalAppends != 0 {
		t.Fatalf("fullsync touched a log: %+v", res.FullSync)
	}
	if res.FullSync.CommitP50US <= res.WalTxn.CommitP50US {
		t.Fatalf("full-sync p50 %dus not above WAL p50 %dus",
			res.FullSync.CommitP50US, res.WalTxn.CommitP50US)
	}
	data, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back TxnResult
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.WalSpeedup != res.WalSpeedup {
		t.Fatalf("JSON roundtrip lost the speedup: %v != %v", back.WalSpeedup, res.WalSpeedup)
	}
	if s := res.String(); !strings.Contains(s, "WAL speedup") {
		t.Fatalf("String() missing summary: %q", s)
	}
}

package bench

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"time"

	"unixhash/internal/core"
	"unixhash/internal/pagefile"
)

// Bulkload measures the batched write pipeline against the one-Put-at-a-
// time baseline on a durable-ingestion workload: every strategy must
// load n records such that each is acknowledged durable (synced) before
// the loader moves past it — the contract an ingest service gives its
// clients. What varies is the unit of acknowledgement, which is exactly
// what PutBatch and group commit change:
//
//	looped       — Put + Sync per record: per-record durability, the
//	               only contract the pre-batch API could offer without
//	               the caller inventing its own batching.
//	batch        — PutBatch of a DefaultBatchSize chunk + one Sync per
//	               chunk: one lock acquisition, one dirty epoch and one
//	               sync barrier amortized over the whole chunk.
//	presized     — one PutBatch of the entire load + one Sync: the
//	               presize fast path jumps straight to the final
//	               geometry, so no splits ever run.
//	groupcommit  — four concurrent writers doing chunked PutBatch +
//	               Sync with Options.GroupCommit: overlapping syncs
//	               join one shared barrier instead of each paying
//	               their own.
//
// Timing follows the harness's paper methodology (see the package doc):
// user is measured wall time, sys is the simulated cost of the I/O
// performed, elapsed = user + sys. The cost model is a commodity disk
// whose streamed page writes are cheap but whose sync barriers are
// rotational: per-record durability drowns in sync cost, and the JSON
// reports the write/sync/split counters per strategy so the mechanism
// behind each ratio is visible, not just the ratio.

// bulkloadCost: 100µs per page I/O (streamed writes), 5ms per sync
// barrier (flush + rotational settle).
var bulkloadCost = pagefile.CostModel{
	ReadCost:  100 * time.Microsecond,
	WriteCost: 100 * time.Microsecond,
	SyncCost:  5 * time.Millisecond,
}

// BulkloadStrategy is one measured load at one size.
type BulkloadStrategy struct {
	UserSeconds float64 `json:"user_seconds"`
	IOSeconds   float64 `json:"io_seconds"`
	Seconds     float64 `json:"elapsed_seconds"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	Writes      int64   `json:"store_writes"`
	Syncs       int64   `json:"store_syncs"`
	Splits      int64   `json:"splits"`
	Presizes    int64   `json:"presizes"`
	GroupJoins  int64   `json:"group_commit_joins"`
}

// BulkloadPoint compares the strategies at one key count.
type BulkloadPoint struct {
	Keys            int              `json:"keys"`
	Looped          BulkloadStrategy `json:"put_sync_each"`
	Batch           BulkloadStrategy `json:"putbatch_sync_per_chunk"`
	Presized        BulkloadStrategy `json:"putbatch_presized"`
	GroupCommit     BulkloadStrategy `json:"putbatch_group_commit_4w"`
	BatchSpeedup    float64          `json:"batch_speedup_vs_looped"`
	PresizedSpeedup float64          `json:"presized_speedup_vs_looped"`
}

// BulkloadResult is the BENCH_bulkload.json payload.
type BulkloadResult struct {
	Bsize                int             `json:"bsize"`
	Ffactor              int             `json:"ffactor"`
	BatchSize            int             `json:"batch_size"`
	ReadCostUS           int64           `json:"read_cost_us"`
	WriteCostUS          int64           `json:"write_cost_us"`
	SyncCostUS           int64           `json:"sync_cost_us"`
	Points               []BulkloadPoint `json:"points"`
	SpeedupAtMax         float64         `json:"batch_speedup_at_max_keys"`
	PresizedBeatsUnsized bool            `json:"presized_beats_unsized_at_max_keys"`
}

// bulkloadSizes are the measured key counts; Bulkload truncates the list
// to maxKeys so smoke runs stay fast.
var bulkloadSizes = []int{10_000, 100_000, 1_000_000}

const (
	bulkloadBsize   = 1024
	bulkloadFfactor = 16
)

// bulkloadPairs builds n deterministic pairs (~30 bytes each; 1M keys is
// a ~64 MB table at the bulkload geometry).
func bulkloadPairs(n int) []core.Pair {
	pairs := make([]core.Pair, n)
	for i := range pairs {
		pairs[i] = core.Pair{
			Key:  []byte(fmt.Sprintf("bulk-key-%08d", i)),
			Data: []byte(fmt.Sprintf("value-%08d", i)),
		}
	}
	return pairs
}

// bulkloadRun loads pairs with fn into a fresh table and fills a
// BulkloadStrategy from the wall clock and the store/table counters. fn
// owns the sync schedule; a final Sync guarantees every strategy ends
// durable.
func bulkloadRun(n int, groupCommit bool, fn func(*core.Table) error) (BulkloadStrategy, error) {
	store := pagefile.NewMem(bulkloadBsize, bulkloadCost)
	t, err := core.Open("", &core.Options{
		Bsize: bulkloadBsize, Ffactor: bulkloadFfactor,
		CacheSize: 1 << 26, Store: store, GroupCommit: groupCommit,
	})
	if err != nil {
		return BulkloadStrategy{}, err
	}
	start := time.Now()
	if err := fn(t); err != nil {
		t.Close()
		return BulkloadStrategy{}, err
	}
	if err := t.Sync(); err != nil {
		t.Close()
		return BulkloadStrategy{}, err
	}
	user := time.Since(start)
	if got := t.Len(); got != n {
		t.Close()
		return BulkloadStrategy{}, fmt.Errorf("bulkload: loaded %d keys, want %d", got, n)
	}
	snap, err := t.MetricsSnapshot()
	if err != nil {
		t.Close()
		return BulkloadStrategy{}, err
	}
	st := store.Stats().Snapshot()
	elapsed := user + st.IOTime
	s := BulkloadStrategy{
		UserSeconds: user.Seconds(),
		IOSeconds:   st.IOTime.Seconds(),
		Seconds:     elapsed.Seconds(),
		OpsPerSec:   float64(n) / elapsed.Seconds(),
		Writes:      st.Writes,
		Syncs:       st.Syncs,
		Splits:      snap.Counter(core.MetricSplitsControlled) + snap.Counter(core.MetricSplitsUncontrolled),
		Presizes:    snap.Counter(core.MetricPresizes),
		GroupJoins:  snap.Counter(core.MetricGroupJoins),
	}
	return s, t.Close()
}

// Bulkload measures every size up to maxKeys (0 = all sizes).
func Bulkload(maxKeys int) (*BulkloadResult, error) {
	res := &BulkloadResult{
		Bsize: bulkloadBsize, Ffactor: bulkloadFfactor, BatchSize: core.DefaultBatchSize,
		ReadCostUS:  bulkloadCost.ReadCost.Microseconds(),
		WriteCostUS: bulkloadCost.WriteCost.Microseconds(),
		SyncCostUS:  bulkloadCost.SyncCost.Microseconds(),
	}
	sizes := bulkloadSizes
	if maxKeys > 0 {
		sizes = nil
		for _, n := range bulkloadSizes {
			if n <= maxKeys {
				sizes = append(sizes, n)
			}
		}
		if len(sizes) == 0 {
			sizes = []int{maxKeys} // e.g. -quick: one small point
		}
	}
	for _, n := range sizes {
		pairs := bulkloadPairs(n)

		looped, err := bulkloadRun(n, false, func(t *core.Table) error {
			for _, p := range pairs {
				if err := t.Put(p.Key, p.Data); err != nil {
					return err
				}
				if err := t.Sync(); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("looped at %d: %w", n, err)
		}

		batch, err := bulkloadRun(n, false, func(t *core.Table) error {
			for lo := 0; lo < len(pairs); lo += core.DefaultBatchSize {
				hi := min(lo+core.DefaultBatchSize, len(pairs))
				if err := t.PutBatch(pairs[lo:hi]); err != nil {
					return err
				}
				if err := t.Sync(); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("batch at %d: %w", n, err)
		}

		presized, err := bulkloadRun(n, false, func(t *core.Table) error {
			return t.PutBatch(pairs)
		})
		if err != nil {
			return nil, fmt.Errorf("presized at %d: %w", n, err)
		}

		const writers = 4
		gc, err := bulkloadRun(n, true, func(t *core.Table) error {
			var wg sync.WaitGroup
			errs := make([]error, writers)
			per := (n + writers - 1) / writers
			for w := 0; w < writers; w++ {
				lo, hi := w*per, min((w+1)*per, n)
				if lo >= hi {
					continue
				}
				wg.Add(1)
				go func(w, lo, hi int) {
					defer wg.Done()
					for a := lo; a < hi; a += core.DefaultBatchSize {
						b := min(a+core.DefaultBatchSize, hi)
						if err := t.PutBatch(pairs[a:b]); err != nil {
							errs[w] = err
							return
						}
						if err := t.Sync(); err != nil {
							errs[w] = err
							return
						}
					}
				}(w, lo, hi)
			}
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("group commit at %d: %w", n, err)
		}

		pt := BulkloadPoint{Keys: n, Looped: looped, Batch: batch, Presized: presized, GroupCommit: gc}
		if batch.Seconds > 0 {
			pt.BatchSpeedup = looped.Seconds / batch.Seconds
		}
		if presized.Seconds > 0 {
			pt.PresizedSpeedup = looped.Seconds / presized.Seconds
		}
		res.Points = append(res.Points, pt)
	}
	if len(res.Points) > 0 {
		last := res.Points[len(res.Points)-1]
		res.SpeedupAtMax = last.BatchSpeedup
		res.PresizedBeatsUnsized = last.Presized.Seconds < last.Batch.Seconds
	}
	return res, nil
}

// Gate enforces the CI regression bars: PutBatch must not regress below
// looped Put at the largest measured size, and the presize fast path
// must beat the unsized batch load. minSpeedup is the required
// batch-vs-looped ratio (CI uses a floor well under the acceptance
// target of 3.0 at 1M keys, so wall-clock noise in the user component
// cannot flake the job; the sync-count asymmetry puts the real ratio
// orders of magnitude above either bar).
func (r *BulkloadResult) Gate(minSpeedup float64) error {
	if len(r.Points) == 0 {
		return fmt.Errorf("bulkload: no points measured")
	}
	last := r.Points[len(r.Points)-1]
	if last.BatchSpeedup < minSpeedup {
		return fmt.Errorf("bulkload: PutBatch speedup %.2fx at %d keys is below the %.2fx floor",
			last.BatchSpeedup, last.Keys, minSpeedup)
	}
	if !r.PresizedBeatsUnsized {
		return fmt.Errorf("bulkload: presized PutBatch (%.3fs) did not beat unsized (%.3fs) at %d keys",
			last.Presized.Seconds, last.Batch.Seconds, last.Keys)
	}
	return nil
}

// JSON renders the machine-readable BENCH_bulkload.json payload.
func (r *BulkloadResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// String renders a human-readable table in the style of the other
// hashbench experiments.
func (r *BulkloadResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Durable bulk load: %d-byte pages, ffactor %d, batch size %d\n",
		r.Bsize, r.Ffactor, r.BatchSize)
	fmt.Fprintf(&b, "(user = measured CPU, sys = simulated I/O at %dus/page + %dus/sync, elapsed = user+sys)\n",
		r.WriteCostUS, r.SyncCostUS)
	fmt.Fprintf(&b, "\n  %-9s %-12s %12s %10s %8s %8s %8s %9s\n",
		"keys", "strategy", "ops/sec", "elapsed", "writes", "syncs", "splits", "speedup")
	row := func(keys int, name string, s BulkloadStrategy, speedup float64) {
		sp := "        -"
		if speedup > 0 {
			sp = fmt.Sprintf("%8.1fx", speedup)
		}
		fmt.Fprintf(&b, "  %-9d %-12s %12.0f %9.2fs %8d %8d %8d %9s\n",
			keys, name, s.OpsPerSec, s.Seconds, s.Writes, s.Syncs, s.Splits, sp)
	}
	for _, pt := range r.Points {
		row(pt.Keys, "looped", pt.Looped, 0)
		row(pt.Keys, "batch", pt.Batch, pt.BatchSpeedup)
		row(pt.Keys, "presized", pt.Presized, pt.PresizedSpeedup)
		gcName := "groupcommit"
		if pt.GroupCommit.GroupJoins > 0 {
			gcName = fmt.Sprintf("gc(%d joins)", pt.GroupCommit.GroupJoins)
		}
		row(pt.Keys, gcName, pt.GroupCommit, 0)
	}
	fmt.Fprintf(&b, "\n  batch speedup at %d keys: %.1fx; presized beats unsized: %v\n",
		r.Points[len(r.Points)-1].Keys, r.SpeedupAtMax, r.PresizedBeatsUnsized)
	return b.String()
}

package bench

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"unixhash/internal/core"
	"unixhash/internal/dataset"
	"unixhash/internal/pagefile"
)

// Concurrency measures operation scaling: ops/sec against a warm
// memory-resident table at 1, 2, 4 and 8 goroutines, for a read-only
// workload, the classic 95% read / 5% write mix, a write-heavy workload
// (100% Put rewriting existing pairs) and a hot-key workload (zipfian
// key choice, so traffic piles onto a few contended buckets). Reads and
// writes both take the table's shared lock and latch only the bucket
// they touch, so writes are expected to scale near-linearly too. Unlike
// the paper-figure experiments this measures real wall-clock throughput,
// not simulated I/O time, so the cost model is zero.

// ConcurrencyPoint is one (goroutine count, workload) measurement.
type ConcurrencyPoint struct {
	Goroutines int     `json:"goroutines"`
	Ops        int64   `json:"ops"`
	Seconds    float64 `json:"seconds"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	Speedup    float64 `json:"speedup_vs_1"`
}

// ConcurrencyResult aggregates the workloads plus the machine context
// needed to interpret the scaling numbers (no speedup is possible when
// GOMAXPROCS is 1 — Warning records that in the payload itself).
type ConcurrencyResult struct {
	Keys       int                `json:"keys"`
	Bsize      int                `json:"bsize"`
	GOMAXPROCS int                `json:"gomaxprocs"`
	NumCPU     int                `json:"num_cpu"`
	Warning    string             `json:"warning,omitempty"`
	ReadOnly   []ConcurrencyPoint `json:"read_only"`
	Mixed      []ConcurrencyPoint `json:"mixed_95_read_5_write"`
	Write      []ConcurrencyPoint `json:"write_heavy"`
	HotKey     []ConcurrencyPoint `json:"hot_key_zipf"`
}

// concurrencyGoroutines are the fan-out levels measured.
var concurrencyGoroutines = []int{1, 2, 4, 8}

// Concurrency builds and warms an n-key table and measures both
// workloads at every goroutine count. n <= 0 selects the paper's
// dictionary size. dur is the sampling window per point (0 = 250ms).
func Concurrency(n int, dur time.Duration) (*ConcurrencyResult, error) {
	if dur <= 0 {
		dur = 250 * time.Millisecond
	}
	pairs := dataset.Dictionary(n)
	const bsize = 4096
	r, err := newHashRun(HashParams{
		Bsize: bsize, Ffactor: 32, CacheSize: 1 << 22,
		Nelem: len(pairs), Cost: pagefile.CostModel{},
	})
	if err != nil {
		return nil, err
	}
	defer r.close()
	for _, p := range pairs {
		if err := r.t.Put(p.Key, p.Data); err != nil {
			return nil, err
		}
	}
	// Warm the pool so every point measures in-memory lookups.
	for _, p := range pairs {
		if _, err := r.t.Get(p.Key); err != nil {
			return nil, err
		}
	}

	res := &ConcurrencyResult{
		Keys:       len(pairs),
		Bsize:      bsize,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	if res.GOMAXPROCS == 1 {
		res.Warning = "GOMAXPROCS=1: goroutines cannot run in parallel on this host; speedup figures are meaningless"
	}
	sections := []struct {
		out        *[]ConcurrencyPoint
		writeOneIn int
		zipf       bool
	}{
		{&res.ReadOnly, 0, false},
		{&res.Mixed, 20, false},
		{&res.Write, 1, false},
		{&res.HotKey, 1, true},
	}
	for _, sec := range sections {
		for _, g := range concurrencyGoroutines {
			pt, err := concurrencyPoint(r.t, pairs, g, dur, sec.writeOneIn, sec.zipf)
			if err != nil {
				return nil, err
			}
			*sec.out = append(*sec.out, pt)
		}
		fillSpeedups(*sec.out)
	}
	return res, nil
}

// concurrencyPoint runs g goroutines against t for roughly dur and
// returns the throughput. writeOneIn = 0 means read-only; k > 0 makes
// one op in k a Put that rewrites an existing pair (so the table never
// grows and the point stays comparable across goroutine counts);
// writeOneIn = 1 is therefore 100% Put. zipf skews the key choice to a
// zipfian distribution so every goroutine hammers the same few hot
// buckets.
func concurrencyPoint(t *core.Table, pairs []dataset.Pair, g int, dur time.Duration, writeOneIn int, zipf bool) (ConcurrencyPoint, error) {
	var stop atomic.Bool
	var ops atomic.Int64
	var firstErr atomic.Value
	var wg sync.WaitGroup

	start := time.Now()
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			var zf *rand.Zipf
			if zipf {
				zf = rand.NewZipf(rng, 1.3, 4, uint64(len(pairs)-1))
			}
			dst := make([]byte, 0, 256)
			local := int64(0)
			for !stop.Load() {
				for i := 0; i < 64; i++ {
					var p dataset.Pair
					if zipf {
						p = pairs[zf.Uint64()]
					} else {
						p = pairs[rng.Intn(len(pairs))]
					}
					var err error
					if writeOneIn > 0 && rng.Intn(writeOneIn) == 0 {
						err = t.Put(p.Key, p.Data)
					} else {
						dst, err = t.GetBuf(p.Key, dst)
					}
					if err != nil {
						firstErr.CompareAndSwap(nil, err)
						stop.Store(true)
						return
					}
					local++
				}
			}
			ops.Add(local)
		}(int64(seedBase(writeOneIn)) + int64(g)*1000 + int64(w))
	}
	timer := time.AfterFunc(dur, func() { stop.Store(true) })
	wg.Wait()
	timer.Stop()
	elapsed := time.Since(start)

	if err, _ := firstErr.Load().(error); err != nil {
		return ConcurrencyPoint{}, err
	}
	n := ops.Load()
	return ConcurrencyPoint{
		Goroutines: g,
		Ops:        n,
		Seconds:    elapsed.Seconds(),
		OpsPerSec:  float64(n) / elapsed.Seconds(),
	}, nil
}

func seedBase(writeOneIn int) int {
	if writeOneIn > 0 {
		return 7919
	}
	return 104729
}

// fillSpeedups normalizes each point against the 1-goroutine baseline.
func fillSpeedups(pts []ConcurrencyPoint) {
	if len(pts) == 0 || pts[0].OpsPerSec == 0 {
		return
	}
	base := pts[0].OpsPerSec
	for i := range pts {
		pts[i].Speedup = pts[i].OpsPerSec / base
	}
}

// JSON renders the result as the machine-readable BENCH_concurrency.json
// payload.
func (r *ConcurrencyResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// String renders a human-readable table in the style of the other
// hashbench experiments.
func (r *ConcurrencyResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Concurrent read scaling: %d keys, %d-byte pages, GOMAXPROCS=%d (NumCPU=%d)\n",
		r.Keys, r.Bsize, r.GOMAXPROCS, r.NumCPU)
	writeSection := func(title string, pts []ConcurrencyPoint) {
		fmt.Fprintf(&b, "\n%s\n", title)
		fmt.Fprintf(&b, "  %-11s %12s %10s\n", "goroutines", "ops/sec", "speedup")
		for _, p := range pts {
			fmt.Fprintf(&b, "  %-11d %12.0f %9.2fx\n", p.Goroutines, p.OpsPerSec, p.Speedup)
		}
	}
	writeSection("read-only", r.ReadOnly)
	writeSection("95% read / 5% write", r.Mixed)
	writeSection("write-heavy (100% put)", r.Write)
	writeSection("hot-key (zipfian, 100% put)", r.HotKey)
	if r.Warning != "" {
		fmt.Fprintf(&b, "\nWARNING: %s\n", r.Warning)
	}
	return b.String()
}

// Gate enforces the write-scaling regression bar: the 8-goroutine
// write-heavy speedup must reach min (CI uses 3.0). On a single-core
// host no parallel speedup is possible, so the gate is skipped with an
// explanation rather than failing on hardware.
func (r *ConcurrencyResult) Gate(min float64) error {
	if r.GOMAXPROCS == 1 {
		fmt.Printf("concurrency gate skipped: %s\n", r.Warning)
		return nil
	}
	var at8 *ConcurrencyPoint
	for i := range r.Write {
		if r.Write[i].Goroutines == 8 {
			at8 = &r.Write[i]
		}
	}
	if at8 == nil {
		return fmt.Errorf("concurrency gate: no 8-goroutine write-heavy point")
	}
	if at8.Speedup < min {
		return fmt.Errorf("concurrency gate: 8-goroutine write speedup %.2fx < %.2fx", at8.Speedup, min)
	}
	return nil
}

package bench

import (
	"fmt"
	"strings"

	"unixhash/internal/dataset"
)

// Figure 6: the difference between storing keys in a table whose
// ultimate size is known at creation (left bars) and growing the table
// from a single bucket (right bars), across fill factors. The paper's
// conclusion: once the fill factor is sufficiently high for the page
// size (8), growing the table dynamically does little to degrade
// performance.

// Fig6Point is one fill-factor comparison.
type Fig6Point struct {
	Ffactor int
	Known   Timing // nelem given at creation
	Grown   Timing // grown from a single bucket
}

// Fig6Result holds the sweep.
type Fig6Result struct {
	N      int
	Bsize  int
	Points []Fig6Point
}

// DefaultFig6Ffactors are the paper's Figure 6 fill factors.
var DefaultFig6Ffactors = []int{4, 8, 16, 32, 64}

// Fig6 runs the comparison. n <= 0 selects the full dictionary.
func Fig6(n int, ffactors []int) (*Fig6Result, error) {
	pairs := dataset.Dictionary(n)
	if len(ffactors) == 0 {
		ffactors = DefaultFig6Ffactors
	}
	const bsize = 256
	res := &Fig6Result{N: len(pairs), Bsize: bsize}
	for _, ff := range ffactors {
		var tims [2]Timing
		for mode := 0; mode < 2; mode++ {
			nelem := len(pairs)
			if mode == 1 {
				nelem = 1
			}
			r, err := newHashRun(HashParams{Bsize: bsize, Ffactor: ff, CacheSize: 1 << 20, Nelem: nelem})
			if err != nil {
				return nil, err
			}
			tm, err := r.createAll(pairs)
			if err != nil {
				return nil, fmt.Errorf("fig6 ff=%d mode=%d: %w", ff, mode, err)
			}
			if err := r.close(); err != nil {
				return nil, err
			}
			tims[mode] = tm
		}
		res.Points = append(res.Points, Fig6Point{Ffactor: ff, Known: tims[0], Grown: tims[1]})
	}
	return res, nil
}

// String renders the paper's grouped bars as a table.
func (r *Fig6Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6 — known final size (left) vs dynamically grown (right), dictionary (%d keys), bsize %d\n\n",
		r.N, r.Bsize)
	fmt.Fprintf(&b, "%8s %28s %28s %9s\n", "", "known size", "grown from one bucket", "elapsed")
	fmt.Fprintf(&b, "%8s %9s %9s %8s %9s %9s %8s %9s\n",
		"ffactor", "user", "sys", "elapsed", "user", "sys", "elapsed", "penalty")
	for _, p := range r.Points {
		penalty := 0.0
		if p.Known.Elapsed > 0 {
			penalty = 100 * (p.Grown.Elapsed - p.Known.Elapsed).Seconds() / p.Known.Elapsed.Seconds()
		}
		fmt.Fprintf(&b, "%8d %9.2f %9.2f %8.2f %9.2f %9.2f %8.2f %8.1f%%\n",
			p.Ffactor,
			p.Known.User.Seconds(), p.Known.Sys.Seconds(), p.Known.Elapsed.Seconds(),
			p.Grown.User.Seconds(), p.Grown.Sys.Seconds(), p.Grown.Elapsed.Seconds(),
			penalty)
	}
	b.WriteString("\n(paper: the penalty nearly vanishes once ffactor >= 8)\n")
	return b.String()
}

package bench

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"

	"unixhash/internal/core"
	"unixhash/internal/dataset"
	"unixhash/internal/metrics"
)

// Metrics runs a fixed, fully instrumented workload — load the
// dictionary, read every key back, delete a tenth, sync — against a
// memory-backed table grown from a single bucket, and captures the
// complete metric registry. The snapshot lands in BENCH_metrics.json so
// the repo's performance trajectory (splits taken, chain lengths probed,
// cache behaviour, sync latency) is machine-readable run over run.

// MetricsResult is the workload's parameters plus the registry snapshot.
type MetricsResult struct {
	Keys      int              `json:"keys"`
	Bsize     int              `json:"bsize"`
	Ffactor   int              `json:"ffactor"`
	CacheSize int              `json:"cache_size"`
	Metrics   metrics.Snapshot `json:"metrics"`
}

// MetricsRun executes the workload. n <= 0 selects the paper's
// dictionary size.
func MetricsRun(n int) (*MetricsResult, error) {
	pairs := dataset.Dictionary(n)
	const (
		bsize     = 1024
		ffactor   = 16
		cacheSize = 1 << 20
	)
	reg := metrics.New()
	t, err := core.Open("", &core.Options{
		Bsize: bsize, Ffactor: ffactor, CacheSize: cacheSize, Metrics: reg,
	})
	if err != nil {
		return nil, err
	}
	defer t.Close()

	for _, p := range pairs {
		if err := t.Put(p.Key, p.Data); err != nil {
			return nil, err
		}
	}
	dst := make([]byte, 0, 256)
	for _, p := range pairs {
		if dst, err = t.GetBuf(p.Key, dst); err != nil {
			return nil, err
		}
	}
	for i := 0; i < len(pairs); i += 10 {
		if err := t.Delete(pairs[i].Key); err != nil {
			return nil, err
		}
	}
	if err := t.Sync(); err != nil {
		return nil, err
	}

	return &MetricsResult{
		Keys: len(pairs), Bsize: bsize, Ffactor: ffactor, CacheSize: cacheSize,
		Metrics: reg.Snapshot(),
	}, nil
}

// JSON renders the result as the BENCH_metrics.json payload.
func (r *MetricsResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// String renders a human-readable digest: the headline counters plus
// the sync-latency shape.
func (r *MetricsResult) String() string {
	var b strings.Builder
	s := r.Metrics
	fmt.Fprintf(&b, "Metrics workload: %d keys, %d-byte pages, ffactor %d, %d KB cache\n",
		r.Keys, r.Bsize, r.Ffactor, r.CacheSize/1024)

	fmt.Fprintf(&b, "\n  %-32s %12s\n", "counter", "value")
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&b, "  %-32s %12d\n", name, s.Counters[name])
	}

	hits, misses := s.Counter("buffer_hits_total"), s.Counter("buffer_misses_total")
	if total := hits + misses; total > 0 {
		fmt.Fprintf(&b, "\n  buffer hit ratio: %.1f%%\n", 100*float64(hits)/float64(total))
	}
	if h, ok := s.Histograms[core.MetricSyncLatency]; ok && h.Count > 0 {
		fmt.Fprintf(&b, "  sync latency: %d syncs, mean %v\n", h.Count, h.Mean().Round(time.Microsecond))
	}
	return b.String()
}

package bench

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"unixhash/internal/core"
	"unixhash/internal/pagefile"
	"unixhash/internal/wal"
)

// Txn measures what the write-ahead log buys a durable single Put. Every
// strategy gives the same contract — each record is acknowledged durable
// before the writer moves past it — and what varies is the durability
// mechanism:
//
//	fullsync  — Put + Sync per record: the pre-WAL durable put. Every
//	            acknowledgement pays the full two-phase sync protocol
//	            (flush, barrier, header write, barrier) on the page
//	            store.
//	waltxn    — Begin/Put/Commit per record: one sequential log append
//	            plus one log fsync per acknowledgement; pages ride in
//	            the buffer pool until a periodic checkpoint.
//	grouptxn  — four concurrent committers: overlapping commits join
//	            one shared log fsync (the WAL group-commit round), so
//	            even the per-commit log fsync is amortized.
//
// Unlike the bulkload harness, the txn harness SLEEPS its simulated I/O
// costs (CostModel.Sleep): a commit really waits out its barriers, so
// the reported commit p50/p99 are true latencies and group commit's
// fsync-sharing shows up in the percentiles, not just in the counters.
// The store is the bulkload commodity disk (100us page I/O, 5ms sync
// barrier); the log is a dedicated sequential device — no seeks, short
// tail to settle — at 50us per append and 500us per fsync.

var (
	txnStoreCost = pagefile.CostModel{
		ReadCost:  100 * time.Microsecond,
		WriteCost: 100 * time.Microsecond,
		SyncCost:  5 * time.Millisecond,
		Sleep:     true,
	}
	txnWalCost = wal.CostModel{
		AppendCost: 50 * time.Microsecond,
		SyncCost:   500 * time.Microsecond,
		Sleep:      true,
	}
)

const (
	txnBsize           = 1024
	txnFfactor         = 16
	txnDefaultOps      = 400
	txnCheckpointEvery = 100 // commits between checkpoints (waltxn/grouptxn)
	txnWriters         = 4   // grouptxn concurrency
)

// TxnStrategy is one measured durability mechanism.
type TxnStrategy struct {
	Seconds     float64 `json:"elapsed_seconds"`
	IOSeconds   float64 `json:"io_seconds"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	CommitP50US int64   `json:"commit_p50_us"`
	CommitP99US int64   `json:"commit_p99_us"`
	StoreWrites int64   `json:"store_writes"`
	StoreSyncs  int64   `json:"store_syncs"`
	WalAppends  int64   `json:"wal_appends"`
	WalFsyncs   int64   `json:"wal_fsyncs"`
	WalJoins    int64   `json:"wal_fsync_joins"`
	Checkpoints int64   `json:"checkpoints"`
}

// TxnResult is the BENCH_txn.json payload.
type TxnResult struct {
	Keys            int         `json:"keys"`
	Bsize           int         `json:"bsize"`
	Ffactor         int         `json:"ffactor"`
	CheckpointEvery int         `json:"checkpoint_every"`
	StoreSyncUS     int64       `json:"store_sync_cost_us"`
	WalAppendUS     int64       `json:"wal_append_cost_us"`
	WalFsyncUS      int64       `json:"wal_fsync_cost_us"`
	FullSync        TxnStrategy `json:"put_sync_each"`
	WalTxn          TxnStrategy `json:"wal_txn_commit"`
	GroupTxn        TxnStrategy `json:"wal_txn_group_4w"`
	WalSpeedup      float64     `json:"wal_speedup_vs_full_sync"`
	GroupSpeedup    float64     `json:"group_speedup_vs_full_sync"`
}

// txnRun opens a fresh table (with a WAL when useWAL is set), runs fn
// (which returns the per-commit latencies), verifies the load, and fills
// a TxnStrategy. Because the cost models sleep, wall time already
// contains the simulated I/O, so elapsed IS the wall time; IOSeconds is
// reported alongside to show how much of it was simulated waiting.
func txnRun(n int, useWAL bool, fn func(*core.Table) ([]time.Duration, error)) (TxnStrategy, error) {
	store := pagefile.NewMem(txnBsize, txnStoreCost)
	opts := &core.Options{
		Bsize: txnBsize, Ffactor: txnFfactor,
		CacheSize: 1 << 26, Store: store,
	}
	if useWAL {
		opts.WAL = true
		opts.WALCost = txnWalCost
	}
	t, err := core.Open("", opts)
	if err != nil {
		return TxnStrategy{}, err
	}
	start := time.Now()
	lats, err := fn(t)
	if err != nil {
		t.Close()
		return TxnStrategy{}, err
	}
	if err := t.Sync(); err != nil {
		t.Close()
		return TxnStrategy{}, err
	}
	elapsed := time.Since(start)
	if got := t.Len(); got != n {
		t.Close()
		return TxnStrategy{}, fmt.Errorf("txn: loaded %d keys, want %d", got, n)
	}
	snap, err := t.MetricsSnapshot()
	if err != nil {
		t.Close()
		return TxnStrategy{}, err
	}
	st := store.Stats().Snapshot()
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(p float64) int64 {
		if len(lats) == 0 {
			return 0
		}
		i := int(p * float64(len(lats)-1))
		return lats[i].Microseconds()
	}
	ws, _ := t.WALStats()
	s := TxnStrategy{
		Seconds:     elapsed.Seconds(),
		IOSeconds:   (st.IOTime + ws.IOTime).Seconds(),
		OpsPerSec:   float64(n) / elapsed.Seconds(),
		CommitP50US: pct(0.50),
		CommitP99US: pct(0.99),
		StoreWrites: st.Writes,
		StoreSyncs:  st.Syncs,
		WalAppends:  ws.Appends,
		WalFsyncs:   ws.Fsyncs,
		WalJoins:    ws.FsyncJoins,
		Checkpoints: snap.Counter(core.MetricCheckpoints),
	}
	return s, t.Close()
}

// Txn measures n durable single Puts under each strategy (0 = the
// default 400; the sleeping cost model makes larger runs linear in n).
func Txn(n int) (*TxnResult, error) {
	if n <= 0 || n > txnDefaultOps {
		n = txnDefaultOps
	}
	pairs := bulkloadPairs(n)
	res := &TxnResult{
		Keys: n, Bsize: txnBsize, Ffactor: txnFfactor,
		CheckpointEvery: txnCheckpointEvery,
		StoreSyncUS:     txnStoreCost.SyncCost.Microseconds(),
		WalAppendUS:     txnWalCost.AppendCost.Microseconds(),
		WalFsyncUS:      txnWalCost.SyncCost.Microseconds(),
	}

	fullsync, err := txnRun(n, false, func(t *core.Table) ([]time.Duration, error) {
		lats := make([]time.Duration, 0, n)
		for _, p := range pairs {
			c0 := time.Now()
			if err := t.Put(p.Key, p.Data); err != nil {
				return nil, err
			}
			if err := t.Sync(); err != nil {
				return nil, err
			}
			lats = append(lats, time.Since(c0))
		}
		return lats, nil
	})
	if err != nil {
		return nil, fmt.Errorf("fullsync: %w", err)
	}
	res.FullSync = fullsync

	waltxn, err := txnRun(n, true, func(t *core.Table) ([]time.Duration, error) {
		lats := make([]time.Duration, 0, n)
		for i, p := range pairs {
			c0 := time.Now()
			x, err := t.Begin()
			if err != nil {
				return nil, err
			}
			if err := x.Put(p.Key, p.Data); err != nil {
				return nil, err
			}
			if err := x.Commit(); err != nil {
				return nil, err
			}
			lats = append(lats, time.Since(c0))
			if (i+1)%txnCheckpointEvery == 0 {
				if err := t.Sync(); err != nil {
					return nil, err
				}
			}
		}
		return lats, nil
	})
	if err != nil {
		return nil, fmt.Errorf("waltxn: %w", err)
	}
	res.WalTxn = waltxn

	grouptxn, err := txnRun(n, true, func(t *core.Table) ([]time.Duration, error) {
		var (
			wg   sync.WaitGroup
			mu   sync.Mutex
			lats = make([]time.Duration, 0, n)
			errs = make([]error, txnWriters)
		)
		per := (n + txnWriters - 1) / txnWriters
		for w := 0; w < txnWriters; w++ {
			lo, hi := w*per, min((w+1)*per, n)
			if lo >= hi {
				continue
			}
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				mine := make([]time.Duration, 0, hi-lo)
				for i := lo; i < hi; i++ {
					c0 := time.Now()
					x, err := t.Begin()
					if err == nil {
						if err = x.Put(pairs[i].Key, pairs[i].Data); err == nil {
							err = x.Commit()
						}
					}
					if err != nil {
						errs[w] = err
						return
					}
					mine = append(mine, time.Since(c0))
					if (i-lo+1)%txnCheckpointEvery == 0 {
						if err := t.Sync(); err != nil {
							errs[w] = err
							return
						}
					}
				}
				mu.Lock()
				lats = append(lats, mine...)
				mu.Unlock()
			}(w, lo, hi)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		return lats, nil
	})
	if err != nil {
		return nil, fmt.Errorf("grouptxn: %w", err)
	}
	res.GroupTxn = grouptxn

	// The speedups compare simulated I/O cost, not wall time: the cost
	// model is deterministic (counted barriers times fixed costs), so
	// the gate cannot flake on scheduler or sleep-granularity noise the
	// way the slept wall clock can.
	if res.WalTxn.IOSeconds > 0 {
		res.WalSpeedup = res.FullSync.IOSeconds / res.WalTxn.IOSeconds
	}
	if res.GroupTxn.IOSeconds > 0 {
		res.GroupSpeedup = res.FullSync.IOSeconds / res.GroupTxn.IOSeconds
	}
	return res, nil
}

// Gate enforces the CI regression bar: a durable single Put through the
// WAL must be at least minSpeedup times cheaper than one through the
// full sync protocol. (The acceptance target is 10x; the asymmetry in
// barrier counts — one 500us log fsync versus two 5ms store barriers
// plus the dirty-mark — puts the real ratio comfortably above it.)
func (r *TxnResult) Gate(minSpeedup float64) error {
	if r.WalSpeedup < minSpeedup {
		return fmt.Errorf("txn: WAL durable-put speedup %.2fx at %d keys is below the %.2fx floor",
			r.WalSpeedup, r.Keys, minSpeedup)
	}
	return nil
}

// JSON renders the machine-readable BENCH_txn.json payload.
func (r *TxnResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// String renders a human-readable table in the style of the other
// hashbench experiments.
func (r *TxnResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Durable single Put: %d keys, %d-byte pages, ffactor %d, checkpoint every %d commits\n",
		r.Keys, r.Bsize, r.Ffactor, r.CheckpointEvery)
	fmt.Fprintf(&b, "(simulated costs are slept: store sync %dus barrier, log %dus append + %dus fsync)\n",
		r.StoreSyncUS, r.WalAppendUS, r.WalFsyncUS)
	fmt.Fprintf(&b, "\n  %-9s %9s %9s %9s %8s %8s %8s %8s %8s\n",
		"strategy", "ops/sec", "p50", "p99", "writes", "syncs", "appends", "fsyncs", "joins")
	row := func(name string, s TxnStrategy) {
		fmt.Fprintf(&b, "  %-9s %9.0f %7dus %7dus %8d %8d %8d %8d %8d\n",
			name, s.OpsPerSec, s.CommitP50US, s.CommitP99US,
			s.StoreWrites, s.StoreSyncs, s.WalAppends, s.WalFsyncs, s.WalJoins)
	}
	row("fullsync", r.FullSync)
	row("waltxn", r.WalTxn)
	row("grouptxn", r.GroupTxn)
	fmt.Fprintf(&b, "\n  WAL speedup vs full sync: %.1fx; group-commit speedup: %.1fx\n",
		r.WalSpeedup, r.GroupSpeedup)
	return b.String()
}
